// Example: the Convolve kernel itself, executed for real on the host, plus
// the cache-behaviour measurement that selected the paper's CacheFriendly /
// CacheUnfriendly configurations (the cachegrind step).
//
//   ./build/examples/example_convolve_host
#include <chrono>
#include <cstdio>

#include "smilab/smilab.h"

using namespace smilab;

int main() {
  // 1. Real threaded convolution: correctness + host-side scaling.
  std::printf("Host-side Convolve (real std::thread execution)\n");
  const Image image = make_test_image(512, 512, 42);
  const Kernel kernel = Kernel::gaussian(9);
  const Image reference = convolve_reference(image, kernel);

  for (const int threads : {1, 2, 4, 8}) {
    const auto start = std::chrono::steady_clock::now();
    const Image out = convolve_threaded(image, kernel, 64, 64, threads);
    const auto elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();
    double max_err = 0;
    for (int y = 0; y < out.height(); ++y) {
      for (int x = 0; x < out.width(); ++x) {
        max_err = std::max(max_err,
                           static_cast<double>(std::abs(out.at(x, y) - reference.at(x, y))));
      }
    }
    std::printf("  %d thread%s: %.3fs  max error vs reference %.2g\n", threads,
                threads == 1 ? " " : "s", elapsed, max_err);
  }

  // 2. The cachegrind step: replay the access stream through the cache
  // hierarchy model to verify the CF/CU selection.
  std::printf("\nCache-behaviour measurement (the paper's cachegrind step, "
              "20M refs)\n");
  for (const bool friendly : {true, false}) {
    const ConvolveConfig config = friendly ? ConvolveConfig::cache_friendly()
                                           : ConvolveConfig::cache_unfriendly();
    const CacheMeasurement m =
        measure_convolve_cache(config, CacheHierarchy::e5620());
    std::printf("  %-15s image %dx%d, %dx%d tiles, %dx%d kernel: %s, "
                "%.1f cycles/ref\n",
                friendly ? "CacheFriendly" : "CacheUnfriendly", config.image_w,
                config.image_h, config.block_w, config.block_h,
                config.kernel_size, config.kernel_size,
                m.stats.summary().c_str(), m.avg_latency_cycles);
  }
  std::printf("\nPaper targets: ~1%% misses (CF) vs ~70%% misses (CU); see\n"
              "EXPERIMENTS.md for the discussion of the CU gap.\n");
  return 0;
}
