// Example: a self-contained MPI noise study using the public API.
//
// Builds a synthetic iterative MPI application (compute + allreduce per
// iteration, like most solvers), runs it across 1-16 nodes under each SMI
// regime, and prints how the noise amplifies with scale — the paper's
// Section III story in ~80 lines of user code.
//
//   ./build/examples/example_mpi_noise_study
#include <cstdio>

#include "smilab/smilab.h"

using namespace smilab;

namespace {

/// 50 iterations of 100 ms compute + an 8 KB allreduce, per rank — produced
/// chunk-by-chunk (one iteration per chunk) so each rank's program never
/// exists in full: the streaming form of the classic build-then-run loop.
RankSourceFactory make_solver(int ranks) {
  return chunked_rank_sources(ranks, [](int) {
    return [](int chunk, RankProgram& rp, TagAllocator& tags) {
      if (chunk >= 50) return false;
      rp.compute(milliseconds(100));
      allreduce(rp, 8 * 1024, tags);
      return true;
    };
  });
}

double run(int nodes, const SmiConfig& smi, std::uint64_t seed) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.node_count = nodes;
  cfg.net = NetworkParams::wyeast();
  cfg.smi = smi;
  cfg.seed = seed;
  System sys{cfg};
  const MpiJobResult result =
      run_mpi_job_streaming(sys, nodes, make_solver(nodes),
                            block_placement(nodes, 1),
                            WorkloadProfile::dense_fp(), "solver");
  return result.elapsed.seconds();
}

}  // namespace

int main() {
  std::printf("Synthetic MPI solver (50 x [100ms compute + allreduce]) under "
              "SMI noise\n\n");
  std::printf("%6s  %10s  %12s  %12s  %12s\n", "nodes", "no SMIs",
              "short SMIs", "long SMIs", "long, synced");
  const ExperimentRunner runner{4};
  for (const int nodes : {1, 2, 4, 8, 16}) {
    const OnlineStats base =
        runner.run([&](std::uint64_t s) { return run(nodes, SmiConfig::none(), s); });
    const OnlineStats shrt = runner.run(
        [&](std::uint64_t s) { return run(nodes, SmiConfig::short_every_second(), s); });
    const OnlineStats lng = runner.run(
        [&](std::uint64_t s) { return run(nodes, SmiConfig::long_every_second(), s); });
    SmiConfig synced = SmiConfig::long_every_second();
    synced.synchronized_across_nodes = true;
    const OnlineStats sync =
        runner.run([&](std::uint64_t s) { return run(nodes, synced, s); });
    std::printf("%6d  %9.2fs  %+10.2f%%  %+10.2f%%  %+10.2f%%\n", nodes,
                base.mean(), (shrt.mean() / base.mean() - 1) * 100,
                (lng.mean() / base.mean() - 1) * 100,
                (sync.mean() / base.mean() - 1) * 100);
  }
  std::printf(
      "\nReading: short SMIs are negligible at any scale; long SMIs start at\n"
      "the ~10.5%% duty cycle on one node and amplify with node count because\n"
      "each allreduce waits for whichever node froze most recently. Firmware-\n"
      "synchronized SMIs (last column) remove the amplification — evidence\n"
      "that phase independence, not residency itself, drives the scaling.\n");
  return 0;
}
