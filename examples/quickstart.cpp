// Quickstart: inject long SMIs into a simple compute task and observe the
// slowdown plus the OS-level time misattribution the paper warns about.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart
#include <cstdio>

#include "smilab/sim/system.h"
#include "smilab/smm/smi_controller.h"

using namespace smilab;

namespace {

/// Run 10 s of pure compute on one core and report wall time.
TaskStats run_once(const SmiConfig& smi) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::poweredge_r410_e5620();
  cfg.node_count = 1;
  cfg.smi = smi;
  cfg.seed = 1;
  System sys{cfg};

  std::vector<Action> program;
  program.push_back(Compute{seconds(10)});
  const TaskId id = sys.spawn(TaskSpec::with_actions("worker", /*node=*/0,
                                                     std::move(program)));
  sys.run();
  return sys.task_stats(id);
}

}  // namespace

int main() {
  std::printf("smilab quickstart: 10s of compute, with and without SMIs\n\n");

  const TaskStats base = run_once(SmiConfig::none());
  const TaskStats shrt = run_once(SmiConfig::short_every_second());
  const TaskStats lng = run_once(SmiConfig::long_every_second());

  auto report = [](const char* label, const TaskStats& s, const TaskStats& ref) {
    const double wall = (s.end_time - s.start_time).seconds();
    const double ref_wall = (ref.end_time - ref.start_time).seconds();
    std::printf("%-22s wall %7.3fs  (%+5.1f%%)  os-view cpu %7.3fs  true cpu %7.3fs"
                "  stolen-by-SMM %6.3fs  SMM hits %lld\n",
                label, wall, (wall / ref_wall - 1.0) * 100.0,
                s.os_view_cpu_time.seconds(), s.true_cpu_time.seconds(),
                s.smm_stolen_time.seconds(),
                static_cast<long long>(s.smm_hits));
  };
  report("no SMIs", base, base);
  report("short SMIs (1-3ms/s)", shrt, base);
  report("long SMIs (100-110ms/s)", lng, base);

  std::printf(
      "\nNote how the OS-view CPU time exceeds the true CPU time under SMIs:\n"
      "the kernel charges the task for time it spent frozen in SMM, so any\n"
      "conventional profiler would misattribute that time to user code.\n");
  return 0;
}
