// Example: run the real UnixBench-style microkernels on the host and
// compare their measured rates to the workload-model constants used for
// Figure 2. This is how the per-test rates in apps/unixbench/unixbench.h
// were sanity-checked (they describe a 2.4 GHz Westmere, so a modern host
// should come out faster by a roughly uniform factor).
//
//   ./build/examples/example_host_unixbench
#include <cstdio>

#include "smilab/apps/unixbench/kernels.h"
#include "smilab/apps/unixbench/unixbench.h"

using namespace smilab;

int main() {
  std::printf("Host microkernel rates vs the Figure-2 model constants\n\n");
  std::printf("%-30s %14s %14s %8s\n", "test", "host ops/s", "model ops/s",
              "ratio");

  struct Row {
    UbTest test;
    KernelRun run;
  };
  const Row rows[] = {
      {UbTest::kDhrystone, run_dhrystone_like(2'000'000)},
      {UbTest::kWhetstone, run_whetstone_like(50'000)},
      {UbTest::kPipeThroughput, run_pipe_throughput(200'000)},
      {UbTest::kPipeContextSwitch, run_pipe_context_switch(20'000)},
      {UbTest::kSyscallOverhead, run_syscall_overhead(2'000'000)},
  };
  for (const Row& row : rows) {
    const UbTestSpec& spec =
        ub_test_specs()[static_cast<std::size_t>(row.test)];
    std::printf("%-30s %14.0f %14.0f %7.2fx  (checksum %llu)\n",
                to_string(row.test), row.run.ops_per_second,
                spec.base_ops_per_s,
                row.run.ops_per_second / spec.base_ops_per_s,
                static_cast<unsigned long long>(row.run.checksum));
  }
  std::printf(
      "\nNote: the Whetstone unit here is one module-mix pass, not a WIPS;\n"
      "compare ratios across tests rather than absolute rates. A uniform\n"
      "ratio means the model's relative per-test weights are sound for\n"
      "this host class.\n");
  return 0;
}
