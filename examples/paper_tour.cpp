// A guided tour of the paper's findings in one short run — each section
// demonstrates one claim with a minimal experiment. The full-fidelity
// reproductions live in bench/; this is the five-minute version.
//
//   ./build/examples/example_paper_tour
#include <cstdio>

#include "smilab/smilab.h"

using namespace smilab;

namespace {

double compute_wall(const SmiConfig& smi, int nodes, std::uint64_t seed,
                    bool synchronizing) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.node_count = nodes;
  cfg.net = NetworkParams::wyeast();
  cfg.smi = smi;
  cfg.seed = seed;
  System sys{cfg};
  sys.set_online_cpus(cfg.machine.cores());  // HTT off, like Tables 1-3
  // Streamed one iteration per chunk (per-rank allreduce form): the same
  // sequences the retained build produced, without materializing them.
  const auto factory =
      chunked_rank_sources(nodes, [nodes, synchronizing](int) {
        return [nodes, synchronizing](int chunk, RankProgram& rp,
                                      TagAllocator& tags) {
          if (chunk >= 25) return false;
          rp.compute(milliseconds(200));
          if (synchronizing && nodes > 1) allreduce(rp, 4096, tags);
          return true;
        };
      });
  return run_mpi_job_streaming(sys, nodes, factory, block_placement(nodes, 1),
                               WorkloadProfile::dense_fp())
      .elapsed.seconds();
}

}  // namespace

int main() {
  std::printf("smilab: the paper's findings, in order\n");
  std::printf("======================================\n\n");

  std::printf("1. Short SMIs are (nearly) free; long SMIs cost their duty "
              "cycle.\n");
  {
    const double base = compute_wall(SmiConfig::none(), 1, 1, false);
    const double shrt = compute_wall(SmiConfig::short_every_second(), 1, 1, false);
    const double lng = compute_wall(SmiConfig::long_every_second(), 1, 1, false);
    std::printf("   5s of compute: short SMIs %+0.2f%%, long SMIs %+0.2f%% "
                "(duty cycle 105/1000 = 10.5%%)\n\n",
                (shrt / base - 1) * 100, (lng / base - 1) * 100);
  }

  std::printf("2. Synchronization amplifies long-SMI noise with node count.\n");
  std::printf("   nodes:  ");
  for (const int nodes : {1, 4, 16}) {
    const double base = compute_wall(SmiConfig::none(), nodes, 2, true);
    const double lng = compute_wall(SmiConfig::long_every_second(), nodes, 2, true);
    std::printf("%d -> %+0.1f%%   ", nodes, (lng / base - 1) * 100);
  }
  std::printf("\n   (each allreduce waits for whichever node froze last)\n\n");

  std::printf("3. The OS misattributes SMM time to the running task.\n");
  {
    SystemConfig cfg;
    cfg.machine = MachineSpec::poweredge_r410_e5620();
    cfg.smi = SmiConfig::long_every_second();
    cfg.seed = 3;
    System sys{cfg};
    std::vector<Action> prog;
    prog.push_back(Compute{seconds(10)});
    const TaskId id = sys.spawn(TaskSpec::with_actions("victim", 0, std::move(prog)));
    sys.run();
    const AttributionReport report = AttributionReport::from(sys.task_stats(id));
    std::printf("   profiler view: %.3fs of CPU; truth: %.3fs compute + "
                "%.3fs frozen in SMM (%.1f%% misattributed)\n\n",
                report.os_view.seconds(), report.true_time.seconds(),
                report.misattributed.seconds(),
                report.misattribution_fraction * 100);
  }

  std::printf("4. ...but a TSC-gap detector sees every SMI.\n");
  {
    SystemConfig cfg;
    cfg.machine = MachineSpec::poweredge_r410_e5620();
    cfg.smi = SmiConfig::long_every_second();
    cfg.seed = 4;
    System sys{cfg};
    HwlatConfig config;
    config.duration = seconds(15);
    config.window = seconds(1);
    config.period = seconds(1);
    const HwlatReport report = run_hwlat_detector(sys, config);
    std::printf("   hwlat: %lld/%lld SMIs detected, gap mean %.1f ms (true "
                "band 100-110 ms)\n\n",
                static_cast<long long>(report.hits),
                static_cast<long long>(report.true_smis_during_windows),
                report.gap_us.mean() / 1e3);
  }

  std::printf("5. HTT interacts: compute pays extra warm-up, comm-heavy jobs "
              "recover faster.\n");
  {
    NasRunOptions options;
    options.trials = 2;
    const NasCellResult ep_off =
        run_nas_cell({NasBenchmark::kEP, NasClass::kA, 1, 4, false}, options);
    const NasCellResult ep_on =
        run_nas_cell({NasBenchmark::kEP, NasClass::kA, 1, 4, true}, options);
    const NasCellResult ft_off =
        run_nas_cell({NasBenchmark::kFT, NasClass::kC, 8, 4, false}, options);
    const NasCellResult ft_on =
        run_nas_cell({NasBenchmark::kFT, NasClass::kC, 8, 4, true}, options);
    std::printf("   EP A under long SMIs: HTT %+0.1f%% (paper +4.8%%); "
                "FT C x8 nodes: HTT %+0.1f%% (paper -4.5%%)\n\n",
                (ep_on.smm2.mean() / ep_off.smm2.mean() - 1) * 100,
                (ft_on.smm2.mean() / ft_off.smm2.mean() - 1) * 100);
  }

  std::printf("6. The 600 ms knee: SMI gaps below it hurt multithreaded "
              "codes badly.\n   gap(ms) -> slowdown: ");
  for (const int gap : {1200, 600, 200, 50}) {
    const auto workload = ConvolveWorkload::cache_unfriendly_workload();
    const double base = run_convolve_sim(workload, 4, SmiConfig::none(), 6).seconds;
    const double noisy =
        run_convolve_sim(workload, 4, SmiConfig::long_with_gap(gap), 6).seconds;
    std::printf("%d:%.2fx  ", gap, noisy / base);
  }
  std::printf("\n\nSee bench/ for the full tables and figures, and "
              "EXPERIMENTS.md for the\npaper-vs-measured record.\n");
  return 0;
}
