// Example: detecting SMIs from inside the machine, like the tools the
// paper cites latency-sensitive users running [21].
//
// Runs the hwlat-style TSC-gap detector and the FTQ characterization
// against short and long SMI regimes, scoring each against the simulator's
// ground truth — including the phase-locking pitfall where a detector
// whose sampling period matches the SMI interval sees nothing at all.
//
//   ./build/examples/example_smi_detector
#include <cstdio>

#include "smilab/smilab.h"

using namespace smilab;

namespace {

void detect(const char* label, const SmiConfig& smi, SimDuration window,
            SimDuration period) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::poweredge_r410_e5620();
  cfg.smi = smi;
  cfg.seed = 99;
  System sys{cfg};
  HwlatConfig config;
  config.duration = seconds(30);
  config.window = window;
  config.period = period;
  const HwlatReport report = run_hwlat_detector(sys, config);
  std::printf("  %-26s hits %3lld / %3lld in-window SMIs (recall %4.0f%%)  ",
              label, static_cast<long long>(report.hits),
              static_cast<long long>(report.true_smis_during_windows),
              report.recall * 100.0);
  if (report.hits > 0) {
    std::printf("gap mean %.2f ms (true band: %s-%s), duration error %.1f us\n",
                report.gap_us.mean() / 1e3,
                smi.kind == SmiKind::kLong ? "100" : "1",
                smi.kind == SmiKind::kLong ? "110" : "3",
                report.mean_duration_error_us);
  } else {
    std::printf("nothing detected\n");
  }
}

}  // namespace

int main() {
  std::printf("hwlat-style SMI detection (TSC-gap), 30s runs\n\n");
  std::printf("Continuous sampling:\n");
  detect("long SMIs @ 1/s", SmiConfig::long_every_second(), seconds(1), seconds(1));
  detect("short SMIs @ 1/s", SmiConfig::short_every_second(), seconds(1), seconds(1));

  std::printf("\nWindowed sampling (300ms of each 700ms):\n");
  detect("long SMIs @ 1/s", SmiConfig::long_every_second(), milliseconds(300),
         milliseconds(700));

  std::printf("\nWindowed sampling with period == SMI interval (the trap):\n");
  detect("long SMIs @ 1/s", SmiConfig::long_every_second(), milliseconds(400),
         seconds(1));
  std::printf(
      "  ^ a sleep that expires mid-SMM is serviced exactly at SMM exit, so\n"
      "    the schedules phase-lock and every SMI hides in the sleep. Pick a\n"
      "    sampling period incommensurate with any suspected SMI interval.\n");

  std::printf("\nFTQ noise characterization (1 ms quanta, 30s):\n");
  for (const auto kind : {SmiKind::kNone, SmiKind::kShort, SmiKind::kLong}) {
    SmiConfig smi;
    smi.kind = kind;
    SystemConfig cfg;
    cfg.machine = MachineSpec::poweredge_r410_e5620();
    cfg.smi = smi;
    cfg.seed = 7;
    System sys{cfg};
    FtqConfig config;
    config.duration = seconds(30);
    const FtqReport report = run_ftq(sys, config);
    std::printf("  %-10s quanta %6lld  mean slip %8.1f us  max slip %9.1f us"
                "  big slips %lld  noise share %.2f%%\n",
                to_string(kind), static_cast<long long>(report.quanta),
                report.slip_us.mean(), report.max_slip_us,
                static_cast<long long>(report.big_slips),
                report.noise_fraction(config.quantum) * 100.0);
  }
  std::printf(
      "\nReading: SMIs appear as rare, enormous slips — a profile no OS-level\n"
      "noise source produces, and the signature tool developers can key on.\n");

  // Timekeeping skew: the jiffy clock loses every tick due during SMM,
  // while the TSC keeps counting (IISWC'13's "time scaling discrepancies").
  std::printf("\nTick-clock skew vs TSC over a 60s run (1000 Hz timer):\n");
  for (const auto kind : {SmiKind::kShort, SmiKind::kLong}) {
    SmiConfig smi;
    smi.kind = kind;
    SystemConfig cfg;
    cfg.machine = MachineSpec::poweredge_r410_e5620();
    cfg.smi = smi;
    cfg.seed = 3;
    System sys{cfg};
    std::vector<Action> prog;
    prog.push_back(Compute{seconds(60)});
    sys.spawn(TaskSpec::with_actions("t", 0, std::move(prog)));
    sys.run();
    const auto skew = analyze_clock_skew(sys.smm_accounting(), 0,
                                         sys.last_finish_time(), kJiffy);
    std::printf("  %-6s SMIs: lost %lld of %lld ticks -> jiffy clock %.1f ms "
                "behind (%.2f%% of wall)\n",
                to_string(kind), static_cast<long long>(skew.lost_ticks),
                static_cast<long long>(skew.expected_ticks),
                skew.tick_clock_behind.seconds() * 1e3,
                skew.skew_fraction * 100.0);
  }
  std::printf(
      "Any timestamp pipeline mixing tick time with TSC time inherits this\n"
      "drift — another way SMIs corrupt measurements silently.\n");
  return 0;
}
