// Example: Hyper-Threading x SMI interaction on one node.
//
// Runs a fixed multithreaded workload (8 threads of dense-FP compute) on
// 4 logical CPUs (HTT off) and 8 logical CPUs (HTT on), with and without
// long SMIs, and separates the three effects the paper tangles together:
// SMT throughput, the post-SMI warm-up cost, and run-to-run variance.
//
//   ./build/examples/example_htt_study
#include <cstdio>

#include "smilab/smilab.h"

using namespace smilab;

namespace {

double run(int online_cpus, const SmiConfig& smi, double htt_efficiency,
           std::uint64_t seed) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::poweredge_r410_e5620();
  cfg.smi = smi;
  cfg.seed = seed;
  System sys{cfg};
  sys.set_online_cpus(online_cpus);
  for (int t = 0; t < 8; ++t) {
    std::vector<Action> prog(50, Action{Compute{milliseconds(100)}});
    TaskSpec spec;
    spec.name = "worker" + std::to_string(t);
    spec.node = 0;
    spec.profile = WorkloadProfile::dense_fp();
    spec.profile.htt_efficiency = htt_efficiency;
    spec.wait_policy = WaitPolicy::kBlock;
    spec.actions = std::make_unique<VectorActions>(std::move(prog));
    sys.spawn(std::move(spec));
  }
  sys.run();
  return sys.last_finish_time().seconds();
}

void study(const char* label, double htt_efficiency) {
  const ExperimentRunner runner{6};
  std::printf("%s (per-sibling efficiency %.2f):\n", label, htt_efficiency);
  for (const bool smi_on : {false, true}) {
    const SmiConfig smi =
        smi_on ? SmiConfig::long_every_second() : SmiConfig::none();
    const OnlineStats ht_off = runner.run(
        [&](std::uint64_t s) { return run(4, smi, htt_efficiency, s); });
    const OnlineStats ht_on = runner.run(
        [&](std::uint64_t s) { return run(8, smi, htt_efficiency, s); });
    std::printf("  %-9s  HTT off %6.2fs (+-%.2f)   HTT on %6.2fs (+-%.2f)   "
                "HTT speedup %5.1f%%\n",
                smi_on ? "long SMIs" : "no SMIs", ht_off.mean(),
                ht_off.ci95_half_width(), ht_on.mean(),
                ht_on.ci95_half_width(),
                (ht_off.mean() / ht_on.mean() - 1.0) * 100.0);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("8 dense-FP threads on an E5620 (4 cores x 2 HTT), long SMIs @ "
              "1/s\n\n");
  study("FP-saturating threads (no SMT headroom, Leng et al.)", 0.52);
  study("Stall-heavy threads (SMT fills the gaps)", 0.66);
  std::printf(
      "Reading: whether HTT helps depends on the workload's issue-slot\n"
      "headroom — and under long SMIs the HTT configurations pay an extra\n"
      "residency-proportional warm-up with larger run-to-run spread, the\n"
      "variance the paper set out to explain in its future work.\n");
  return 0;
}
