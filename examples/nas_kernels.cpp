// Example: the real NAS computations under the workload models.
//
// Runs the actual EP deviate kernel, the 3-D FFT (FT's compute), and a
// production-size block-tridiagonal line solve (BT's compute) on the host,
// verifying each and relating measured per-op costs back to the simulator's
// calibrated per-class work.
//
//   ./build/examples/example_nas_kernels
#include <chrono>
#include <cstdio>

#include "smilab/apps/nas/kernels/block_tridiag.h"
#include "smilab/apps/nas/kernels/ep_kernel.h"
#include "smilab/apps/nas/kernels/fft.h"
#include "smilab/apps/nas/kernels/npb_random.h"
#include "smilab/apps/nas/nas.h"

using namespace smilab;

namespace {

double time_seconds(const auto& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  // --- EP -------------------------------------------------------------------
  const std::int64_t pairs = 1 << 22;  // 1/64 of class A
  EpResult ep;
  const double ep_seconds = time_seconds([&] { ep = run_ep_kernel(pairs); });
  const double ns_per_pair = ep_seconds / static_cast<double>(pairs) * 1e9;
  std::printf("EP: %lld pairs in %.3fs (%.1f ns/pair)\n",
              static_cast<long long>(pairs), ep_seconds, ns_per_pair);
  std::printf("    acceptance %.4f (pi/4 = 0.7854), sx %.4f, sy %.4f\n",
              static_cast<double>(ep.gaussian_pairs) / static_cast<double>(pairs),
              ep.sx, ep.sy);
  const double class_a_pairs =
      static_cast<double>(nas_grid_points(NasBenchmark::kEP, NasClass::kA));
  std::printf("    projected class A (2^28 pairs) on this host: %.1fs; the\n"
              "    paper's 2.27 GHz E5520 measured %.2fs\n\n",
              ns_per_pair * class_a_pairs / 1e9,
              nas_serial_work_seconds(NasBenchmark::kEP, NasClass::kA));

  // --- FT's 3-D FFT ------------------------------------------------------------
  Grid3 grid{64, 64, 32};
  grid.fill_random(NpbRandom::kDefaultSeed);
  const Complex before = ft_checksum(grid);
  double fft_seconds = 0.0;
  Complex after{};
  fft_seconds = time_seconds([&] {
    fft3d(grid);
    after = ft_checksum(grid);
    fft3d(grid, /*inverse=*/true);
  });
  const Complex restored = ft_checksum(grid);
  std::printf("FT: 64x64x32 forward+inverse 3-D FFT in %.3fs\n", fft_seconds);
  std::printf("    checksum %.6f%+.6fi -> %.6f%+.6fi -> restored "
              "%.6f%+.6fi (|err| %.2g)\n\n",
              before.real(), before.imag(), after.real(), after.imag(),
              restored.real(), restored.imag(), std::abs(restored - before));

  // --- BT's block-tridiagonal line solve ----------------------------------------
  const std::size_t cells = 162;  // class C grid edge
  BlockTriSystem system = BlockTriSystem::random(cells, 2016);
  std::vector<std::array<double, 5>> solution;
  const double bt_seconds =
      time_seconds([&] { solution = solve_block_tridiag(system); });
  std::printf("BT: %zu-cell 5x5 block-tridiagonal line solve in %.6fs, "
              "residual %.2e\n",
              cells, bt_seconds, block_tridiag_residual(system, solution));
  std::printf("    (BT class C performs ~3 x 162^2 such line solves per "
              "iteration, 200 iterations)\n");
  return 0;
}
