// Extension ablation: does communication/computation overlap hide SMI
// noise?
//
// Same exchange volume and compute per iteration, two formulations:
//   blocking:     pairwise sendrecv rounds (the lowering Tables 1-3 use)
//   nonblocking:  post-all-irecv, start-all-isend, waitall (MPI_Ialltoall)
// Under desynchronized long SMIs the blocking rounds serialize on every
// frozen partner in turn, while the nonblocking form lets a frozen node
// delay only its own transfers. Quantifies how much of the paper's
// amplification an application could buy back by restructuring.
#include <cstdio>

#include "nas_table.h"
#include "smilab/mpi/collectives.h"
#include "smilab/mpi/job.h"

using namespace smilab;

namespace {

double run(int nodes, bool nonblocking, const SmiConfig& smi,
           std::uint64_t seed) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.node_count = nodes;
  cfg.net = NetworkParams::wyeast();
  cfg.smi = smi;
  cfg.seed = seed;
  System sys{cfg};
  // Streamed: one iteration per chunk via the per-rank collective forms —
  // the same action/tag sequences the retained span build produced.
  const auto factory = chunked_rank_sources(nodes, [nonblocking](int) {
    return [nonblocking](int chunk, RankProgram& rp, TagAllocator& tags) {
      if (chunk >= 20) return false;
      rp.compute(milliseconds(80));
      if (nonblocking) {
        alltoall_nonblocking(rp, 1 << 17, tags);
      } else {
        alltoall(rp, 1 << 17, tags);
      }
      return true;
    };
  });
  return run_mpi_job_streaming(sys, nodes, factory, block_placement(nodes, 1),
                               WorkloadProfile::dense_fp())
      .elapsed.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = smilab::benchtool::BenchArgs::parse(argc, argv);
  const int trials = args.quick ? 2 : 4;
  std::printf("=== Ablation: does nonblocking overlap hide SMI noise? "
              "(20 x [80ms compute + 128KB-per-pair alltoall], long SMIs @ "
              "1/s, %d trials) ===\n\n", trials);
  std::printf("%6s  %22s  %22s\n", "nodes", "blocking alltoall", "nonblocking alltoall");
  for (const int nodes : {4, 8, 16}) {
    OnlineStats blocking_base, blocking_noisy, nb_base, nb_noisy;
    for (int t = 0; t < trials; ++t) {
      const auto seed = static_cast<std::uint64_t>(nodes * 977 + t * 131);
      blocking_base.add(run(nodes, false, SmiConfig::none(), seed));
      blocking_noisy.add(run(nodes, false, SmiConfig::long_every_second(), seed));
      nb_base.add(run(nodes, true, SmiConfig::none(), seed));
      nb_noisy.add(run(nodes, true, SmiConfig::long_every_second(), seed));
    }
    std::printf("%6d  %13.2fs %+6.1f%%  %13.2fs %+6.1f%%\n", nodes,
                blocking_base.mean(),
                (blocking_noisy.mean() / blocking_base.mean() - 1) * 100,
                nb_base.mean(),
                (nb_noisy.mean() / nb_base.mean() - 1) * 100);
    std::fflush(stdout);
  }
  std::printf(
      "\nReading: restructuring for overlap recovers part (not all) of the\n"
      "SMI amplification — the all-core freeze still steals the duty cycle\n"
      "and the NIC outage still serializes that node's transfers.\n");
  return 0;
}
