// Extension bench: the operator's mitigation menu.
//
// Given a fleet that *must* run SMM work (say, a 64 MB/s integrity-scanning
// budget per node), what are the options and what do they cost a
// synchronizing MPI job? Each row keeps the same total SMM work per second
// and changes only how it is delivered:
//   A. one 105 ms SMI per second (the paper's long regime)
//   B. many short SMIs (4 x ~26 ms)
//   C. very fine slicing (32 x ~3.3 ms)
//   D. one long SMI per second, firmware-synchronized across nodes
//   E. half the scanning rate (one 105 ms SMI every 2 s)
#include <cstdio>

#include "nas_table.h"
#include "smilab/mpi/collectives.h"
#include "smilab/mpi/job.h"

using namespace smilab;

namespace {

double run(const SmiConfig& smi, std::uint64_t seed) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.node_count = 8;
  cfg.net = NetworkParams::wyeast();
  cfg.smi = smi;
  cfg.seed = seed;
  System sys{cfg};
  sys.set_online_cpus(4);
  // Streamed: one iteration per chunk via the per-rank allreduce form.
  const auto factory = chunked_rank_sources(8, [](int) {
    return [](int chunk, RankProgram& rp, TagAllocator& tags) {
      if (chunk >= 40) return false;
      rp.compute(milliseconds(120));
      allreduce(rp, 8192, tags);
      return true;
    };
  });
  return run_mpi_job_streaming(sys, 8, factory, block_placement(8, 1),
                               WorkloadProfile::dense_fp())
      .elapsed.seconds();
}

SmiConfig sliced(std::int64_t slice_ms, std::int64_t gap_ms) {
  SmiConfig smi;
  smi.kind = SmiKind::kLong;  // band overridden
  smi.long_min = milliseconds(slice_ms) - microseconds(200);
  smi.long_max = milliseconds(slice_ms) + microseconds(200);
  smi.interval_jiffies = gap_ms;
  return smi;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = smilab::benchtool::BenchArgs::parse(argc, argv);
  const int trials = args.quick ? 2 : 4;
  std::printf("=== Mitigation menu: same SMM budget, different delivery "
              "(8-node allreduce solver, %d trials) ===\n\n", trials);

  struct Row {
    const char* label;
    SmiConfig smi;
  };
  SmiConfig synced = SmiConfig::long_every_second();
  synced.synchronized_across_nodes = true;
  SmiConfig half_rate = SmiConfig::long_with_gap(2000);
  const Row rows[] = {
      {"A. 105 ms x 1/s (the paper's long regime)", SmiConfig::long_every_second()},
      {"B. ~26 ms x 4/s (same budget, sliced)", sliced(26, 250)},
      {"C. ~3.3 ms x 32/s (finely sliced)", sliced(3, 31)},
      {"D. 105 ms x 1/s, synchronized across nodes", synced},
      {"E. 105 ms x 1/2s (half the scanning rate)", half_rate},
  };

  OnlineStats base;
  for (int t = 0; t < trials; ++t) {
    base.add(run(SmiConfig::none(), static_cast<std::uint64_t>(100 + t)));
  }
  std::printf("no SMIs: %.2fs\n\n", base.mean());
  for (const Row& row : rows) {
    OnlineStats stats;
    for (int t = 0; t < trials; ++t) {
      stats.add(run(row.smi, static_cast<std::uint64_t>(100 + t)));
    }
    std::printf("%-46s %+7.2f%%\n", row.label,
                (stats.mean() / base.mean() - 1.0) * 100.0);
    std::fflush(stdout);
  }
  std::printf(
      "\nReading: for the same SMM budget, slicing the work into short\n"
      "intervals (C) converts an amplified, synchronized loss into roughly\n"
      "the raw duty cycle — short residencies neither trigger TCP recovery\n"
      "nor evict much cache, and sub-quantum freezes are absorbed. Firmware\n"
      "synchronization (D) removes the max-of-N term. Halving the rate (E)\n"
      "halves detection coverage for a proportional saving.\n");
  return 0;
}
