// Reproduces Table 2: NAS EP under no/short/long SMM intervals, classes
// A/B/C, 1-16 nodes, 1 or 4 MPI ranks per node.
//
// Usage: table2_ep [--trials=N] [--quick] [--jobs=N] [--retained]
#include "nas_table.h"

int main(int argc, char** argv) {
  using namespace smilab;
  const auto args = benchtool::BenchArgs::parse(argc, argv);
  NasRunOptions options;
  options.trials = args.trials;
  options.jobs = args.jobs;
  options.trace_mode = args.trace_mode();
  benchtool::BenchJson json{"table2_ep"};
  benchtool::print_nas_table(
      "Table 2: EP with no (0), short (1) and long (2) SMM intervals",
      NasBenchmark::kEP, {1, 2, 4, 8, 16}, options, &json);
  json.write();
  return 0;
}
