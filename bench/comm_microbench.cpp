// Message-path micro-suite: throughput of the simulator's point-to-point
// transport under the four shapes that stress it differently:
//
//  * ping-pong        — latency-bound alternating eager traffic; exercises
//                       inject -> NIC -> arrival -> match with a queue depth
//                       of one.
//  * unexpected flood — one receiver accumulates a deep unexpected queue
//                       (distinct tags) and drains it in REVERSE order, so
//                       every match hits the far end. The old mailbox scan
//                       plus front-only compaction made this quadratic; the
//                       bucketed queues make it O(1) per message.
//  * rendezvous ack storm — rings of nonblocking rendezvous sends keep many
//                       completion acks outstanding at once; exercises the
//                       ack-key routing, posted-receive index, waitall
//                       progress counters, and lazy ack maturation.
//  * egress burst     — one sender blasts back-to-back eager bursts at a
//                       single NIC egress server; exercises the pipeline
//                       booking fast path (batched interval booking, one
//                       armed event per server direction).
//
// The storm and burst shapes are also measured with the transport fast
// paths disabled (System::set_transport_fast_paths(false)) and with the
// engine's same-instant lane disabled (Engine::set_same_instant_lane), so
// the JSON artifact records the pipelined-vs-classic and lane-vs-heap
// deltas on the same machine; the fast-path golden tests and the lane
// equality suite prove each pair produces bit-identical simulations.
//
// A small grid re-profile rides along: a sweep of independent storm cells
// timed at --jobs=1 and at hardware concurrency, recording cells/s for both
// so the grid-level parallel speedup is tracked next to the per-cell rates.
//
// Always writes BENCH_comm_microbench.json with messages/s headline numbers,
// the pool's bounded-memory evidence, and the CI floor values the perf-smoke
// job gates on.
//
// Usage: comm_microbench [--quick] [--classic]
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_json.h"
#include "smilab/core/sweep.h"
#include "smilab/mpi/job.h"
#include "smilab/sim/system.h"
#include "smilab/trace/action_arena.h"

namespace {

using namespace smilab;

// Floors for the CI perf-smoke gate, recorded in the JSON artifact. Local
// Release rates are ~2M (flood), ~1.4M (storm), ~2M (burst) msgs/s; the
// floors sit far below so only a reversion to quadratic matching or a
// gross regression trips them on slow shared runners.
constexpr double kFloodFloor = 400'000.0;
constexpr double kAckStormFloor = 500'000.0;
constexpr double kEgressBurstFloor = 600'000.0;

SystemConfig base_cfg(int nodes) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.node_count = nodes;
  cfg.net = NetworkParams::wyeast();
  cfg.seed = 7;
  return cfg;
}

struct Rate {
  double msgs_per_s = 0;
  TransportStats stats;
};

/// Eager ping-pong between two ranks on distinct nodes.
Rate measure_ping_pong(int round_trips, bool fast_paths) {
  ActionArena arena;
  ActionArena::Scope scope{arena};
  System sys{base_cfg(2)};
  sys.set_transport_fast_paths(fast_paths);
  const GroupId g = sys.create_group(2);
  std::vector<Action> a, b;
  for (int i = 0; i < round_trips; ++i) {
    a.push_back(Send{1, 1024, 1});
    a.push_back(Recv{1, 2});
    b.push_back(Recv{0, 1});
    b.push_back(Send{0, 1024, 2});
  }
  sys.spawn_member(g, 0, TaskSpec::with_actions("a", 0, std::move(a)));
  sys.spawn_member(g, 1, TaskSpec::with_actions("b", 1, std::move(b)));
  benchtool::CpuTimer timer;
  sys.run();
  Rate r;
  r.msgs_per_s = 2.0 * round_trips / timer.seconds();
  r.stats = sys.transport_stats();
  return r;
}

/// Deep unexpected queue drained out of order: `tags` eager messages with
/// distinct tags pile up while the receiver computes, then are received in
/// reverse tag order; repeated for `rounds`.
Rate measure_unexpected_flood(int tags, int rounds, bool fast_paths) {
  ActionArena arena;
  ActionArena::Scope scope{arena};
  System sys{base_cfg(2)};
  sys.set_transport_fast_paths(fast_paths);
  const GroupId g = sys.create_group(2);
  std::vector<Action> recv_prog, send_prog;
  for (int round = 0; round < rounds; ++round) {
    for (int tg = 0; tg < tags; ++tg) send_prog.push_back(Send{0, 512, tg});
    send_prog.push_back(Compute{milliseconds(400)});
    recv_prog.push_back(Compute{milliseconds(350)});
    for (int tg = tags - 1; tg >= 0; --tg) recv_prog.push_back(Recv{1, tg});
  }
  sys.spawn_member(g, 0,
                   TaskSpec::with_actions("recv", 0, std::move(recv_prog)));
  sys.spawn_member(g, 1,
                   TaskSpec::with_actions("send", 1, std::move(send_prog)));
  benchtool::CpuTimer timer;
  sys.run();
  Rate r;
  r.msgs_per_s = static_cast<double>(tags) * rounds / timer.seconds();
  r.stats = sys.transport_stats();
  return r;
}

/// Nonblocking rendezvous ring: every rank isends `burst` rendezvous-sized
/// messages to its successor and irecvs as many from its predecessor, then
/// waits on everything — keeping burst*p completion acks in flight.
Rate measure_ack_storm(int ranks, int burst, int rounds, bool fast_paths,
                       bool lane = true) {
  ActionArena arena;
  ActionArena::Scope scope{arena};
  System sys{base_cfg(ranks)};
  sys.set_transport_fast_paths(fast_paths);
  sys.engine().set_same_instant_lane(lane);
  auto programs = make_rank_programs(ranks);
  std::int64_t messages = 0;
  for (int round = 0; round < rounds; ++round) {
    for (auto& rp : programs) {
      const int next = (rp.rank() + 1) % ranks;
      std::vector<int> handles;
      for (int i = 0; i < burst; ++i) {
        rp.isend(next, 128 * 1024, 10 + i, /*handle=*/i);
        rp.irecv_any(10 + i, /*handle=*/burst + i);
        handles.push_back(i);
        handles.push_back(burst + i);
      }
      rp.waitall(std::move(handles));
    }
    messages += static_cast<std::int64_t>(ranks) * burst;
  }
  benchtool::CpuTimer timer;
  auto result = run_mpi_job(sys, std::move(programs),
                            block_placement(ranks, 1), WorkloadProfile{});
  Rate r;
  r.msgs_per_s = static_cast<double>(messages) / timer.seconds();
  r.stats = result.transport;
  return r;
}

/// Back-to-back eager bursts at one egress server: each round the sender
/// blasts `burst` eager isends into its NIC (booked as one batch by the
/// pipeline), then waits for the receiver's short done message before the
/// next round — so the in-flight window stays one burst deep and the
/// measurement tracks per-burst booking cost rather than backlog memory.
Rate measure_egress_burst(int burst, int rounds, bool fast_paths,
                          bool lane = true) {
  ActionArena arena;
  ActionArena::Scope scope{arena};
  System sys{base_cfg(2)};
  sys.set_transport_fast_paths(fast_paths);
  sys.engine().set_same_instant_lane(lane);
  auto programs = make_rank_programs(2);
  const int done_tag = 1 << 20;
  for (int round = 0; round < rounds; ++round) {
    std::vector<int> send_handles, recv_handles;
    for (int i = 0; i < burst; ++i) {
      programs[0].isend(1, 4096, /*tag=*/i, /*handle=*/i);
      send_handles.push_back(i);
      programs[1].irecv(0, /*tag=*/i, /*handle=*/i);
      recv_handles.push_back(i);
    }
    programs[0].waitall(std::move(send_handles));
    programs[0].recv(1, done_tag);
    programs[1].waitall(std::move(recv_handles));
    programs[1].send(0, 64, done_tag);
  }
  const std::int64_t messages = static_cast<std::int64_t>(burst) * rounds;
  benchtool::CpuTimer timer;
  auto result = run_mpi_job(sys, std::move(programs), block_placement(2, 1),
                            WorkloadProfile{});
  Rate r;
  r.msgs_per_s = static_cast<double>(messages) / timer.seconds();
  r.stats = result.transport;
  return r;
}

/// Grid re-profile: `cells` independent ack-storm cells (seed = cell index)
/// fanned over `jobs` sweep workers; returns cells/s by wall clock (the
/// workers run concurrently, so thread CPU time would mismeasure).
double measure_grid_cells_per_s(int jobs, int cells, int rounds) {
  const benchtool::WallTimer timer;
  const ExperimentSweep sweep{jobs};
  sweep.for_each(cells, [&](int i) {
    ActionArena arena;
    ActionArena::Scope scope{arena};
    SystemConfig cfg = base_cfg(8);
    cfg.seed = 1000 + static_cast<std::uint64_t>(i);
    System sys{cfg};
    auto programs = make_rank_programs(8);
    for (int round = 0; round < rounds; ++round) {
      for (auto& rp : programs) {
        const int next = (rp.rank() + 1) % 8;
        std::vector<int> handles;
        for (int b = 0; b < 16; ++b) {
          rp.isend(next, 128 * 1024, 10 + b, /*handle=*/b);
          rp.irecv_any(10 + b, /*handle=*/16 + b);
          handles.push_back(b);
          handles.push_back(16 + b);
        }
        rp.waitall(std::move(handles));
      }
    }
    (void)run_mpi_job(sys, std::move(programs), block_placement(8, 1),
                      WorkloadProfile{});
  });
  return static_cast<double>(cells) / timer.seconds();
}

/// Best-of-N wall-clock: the simulation is deterministic, so every
/// repetition does identical work and the fastest run is the least
/// machine-noise-contaminated estimate.
template <typename Fn>
Rate best_of(int reps, Fn&& measure) {
  Rate best = measure();
  for (int i = 1; i < reps; ++i) {
    Rate r = measure();
    if (r.msgs_per_s > best.msgs_per_s) best = r;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool classic = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--classic") == 0) classic = true;
    // --jobs=/--trials=/--csv=: accepted-and-ignored shared driver flags.
  }
  const int scale = quick ? 1 : 4;
  const int reps = quick ? 1 : 3;
  const bool fast = !classic;

  const Rate ping =
      best_of(reps, [&] { return measure_ping_pong(20'000 * scale, fast); });
  std::printf("ping-pong:        %12.0f msgs/s\n", ping.msgs_per_s);
  const Rate flood = best_of(
      reps, [&] { return measure_unexpected_flood(1500, 4 * scale, fast); });
  std::printf("unexpected flood: %12.0f msgs/s  (pool capacity %lld for %lld msgs)\n",
              flood.msgs_per_s,
              static_cast<long long>(flood.stats.pool_capacity),
              static_cast<long long>(flood.stats.messages_allocated));
  const Rate storm =
      best_of(reps, [&] { return measure_ack_storm(8, 48, 2 * scale, fast); });
  std::printf("rendezvous storm: %12.0f msgs/s  (%lld ack routes at exit)\n",
              storm.msgs_per_s,
              static_cast<long long>(storm.stats.ack_routes));
  const Rate burst = best_of(
      reps, [&] { return measure_egress_burst(64, 300 * scale, fast); });
  std::printf("egress burst:     %12.0f msgs/s  (peak in flight %lld)\n",
              burst.msgs_per_s,
              static_cast<long long>(burst.stats.peak_in_flight));

  // Classic-transport reference points for the two fast-path shapes (same
  // machine, same process), so the artifact carries the delta.
  const Rate storm_classic =
      best_of(reps, [&] { return measure_ack_storm(8, 48, 2 * scale, false); });
  const Rate burst_classic = best_of(
      reps, [&] { return measure_egress_burst(64, 300 * scale, false); });
  std::printf("  (classic transport: storm %.0f, burst %.0f msgs/s)\n",
              storm_classic.msgs_per_s, burst_classic.msgs_per_s);

  // Same-instant-lane reference points: the same two dispatch-heavy shapes
  // with the engine's now-lane disabled (every wakeup sifts the heap). The
  // lane equality tests pin both orderings bit-identical.
  const Rate storm_nolane = best_of(
      reps, [&] { return measure_ack_storm(8, 48, 2 * scale, fast, false); });
  const Rate burst_nolane = best_of(reps, [&] {
    return measure_egress_burst(64, 300 * scale, fast, false);
  });
  std::printf("  (lane off:          storm %.0f, burst %.0f msgs/s)\n",
              storm_nolane.msgs_per_s, burst_nolane.msgs_per_s);

  // Grid-level parallel speedup: independent cells across sweep workers.
  const int grid_cells = quick ? 8 : 24;
  const int grid_rounds = 4 * scale;
  const int grid_jobs = effective_jobs(0);
  const double grid_j1 = measure_grid_cells_per_s(1, grid_cells, grid_rounds);
  const double grid_jn =
      measure_grid_cells_per_s(grid_jobs, grid_cells, grid_rounds);
  std::printf("grid re-profile:  %8.1f cells/s at jobs=1, %8.1f at jobs=%d "
              "(%.1fx)\n",
              grid_j1, grid_jn, grid_jobs, grid_jn / grid_j1);

  smilab::benchtool::BenchJson json{"comm_microbench"};
  json.set("quick", quick);
  json.set("classic", classic);
  json.set("ping_pong_msgs_per_s", ping.msgs_per_s);
  json.set("unexpected_flood_msgs_per_s", flood.msgs_per_s);
  json.set("ack_storm_msgs_per_s", storm.msgs_per_s);
  json.set("egress_burst_msgs_per_s", burst.msgs_per_s);
  json.set("ack_storm_classic_msgs_per_s", storm_classic.msgs_per_s);
  json.set("egress_burst_classic_msgs_per_s", burst_classic.msgs_per_s);
  json.set("ack_storm_lane_off_msgs_per_s", storm_nolane.msgs_per_s);
  json.set("egress_burst_lane_off_msgs_per_s", burst_nolane.msgs_per_s);
  json.set("grid_cells_per_s_jobs1", grid_j1);
  json.set("grid_cells_per_s_jobsN", grid_jn);
  json.set("grid_jobs_n", grid_jobs);
  // On a single-core box jobs=1 and jobs=N are the same configuration, so a
  // "speedup" key would just record run-to-run noise. Only emit it when the
  // grid actually fanned out.
  if (grid_jobs > 1) json.set("grid_parallel_speedup", grid_jn / grid_j1);
  json.set("flood_pool_capacity",
           static_cast<long long>(flood.stats.pool_capacity));
  json.set("flood_messages_allocated",
           static_cast<long long>(flood.stats.messages_allocated));
  json.set("flood_pool_live_at_exit",
           static_cast<long long>(flood.stats.pool_live));
  json.set("storm_peak_in_flight",
           static_cast<long long>(storm.stats.peak_in_flight));
  json.set("ci_floor_unexpected_flood_msgs_per_s", kFloodFloor);
  json.set("ci_floor_ack_storm_msgs_per_s", kAckStormFloor);
  json.set("ci_floor_egress_burst_msgs_per_s", kEgressBurstFloor);
  json.write();
  return 0;
}
