// Message-path micro-suite: throughput of the simulator's point-to-point
// transport under the three shapes that stress it differently:
//
//  * ping-pong        — latency-bound alternating eager traffic; exercises
//                       inject -> NIC -> arrival -> match with a queue depth
//                       of one.
//  * unexpected flood — one receiver accumulates a deep unexpected queue
//                       (distinct tags) and drains it in REVERSE order, so
//                       every match hits the far end. The old mailbox scan
//                       plus front-only compaction made this quadratic; the
//                       bucketed queues make it O(1) per message.
//  * rendezvous ack storm — rings of nonblocking rendezvous sends keep many
//                       completion acks outstanding at once; exercises the
//                       ack-key routing and handle-table paths.
//
// Always writes BENCH_comm_microbench.json with messages/s headline numbers
// and the pool's bounded-memory evidence, so CI can gate on a throughput
// floor and track the trajectory across PRs.
//
// Usage: comm_microbench [--quick]
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_json.h"
#include "smilab/mpi/job.h"
#include "smilab/sim/system.h"

namespace {

using namespace smilab;

SystemConfig base_cfg(int nodes) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.node_count = nodes;
  cfg.net = NetworkParams::wyeast();
  cfg.seed = 7;
  return cfg;
}

struct Rate {
  double msgs_per_s = 0;
  TransportStats stats;
};

/// Eager ping-pong between two ranks on distinct nodes.
Rate measure_ping_pong(int round_trips) {
  System sys{base_cfg(2)};
  const GroupId g = sys.create_group(2);
  std::vector<Action> a, b;
  for (int i = 0; i < round_trips; ++i) {
    a.push_back(Send{1, 1024, 1});
    a.push_back(Recv{1, 2});
    b.push_back(Recv{0, 1});
    b.push_back(Send{0, 1024, 2});
  }
  sys.spawn_member(g, 0, TaskSpec::with_actions("a", 0, std::move(a)));
  sys.spawn_member(g, 1, TaskSpec::with_actions("b", 1, std::move(b)));
  benchtool::WallTimer timer;
  sys.run();
  Rate r;
  r.msgs_per_s = 2.0 * round_trips / timer.seconds();
  r.stats = sys.transport_stats();
  return r;
}

/// Deep unexpected queue drained out of order: `tags` eager messages with
/// distinct tags pile up while the receiver computes, then are received in
/// reverse tag order; repeated for `rounds`.
Rate measure_unexpected_flood(int tags, int rounds) {
  System sys{base_cfg(2)};
  const GroupId g = sys.create_group(2);
  std::vector<Action> recv_prog, send_prog;
  for (int round = 0; round < rounds; ++round) {
    for (int tg = 0; tg < tags; ++tg) send_prog.push_back(Send{0, 512, tg});
    send_prog.push_back(Compute{milliseconds(400)});
    recv_prog.push_back(Compute{milliseconds(350)});
    for (int tg = tags - 1; tg >= 0; --tg) recv_prog.push_back(Recv{1, tg});
  }
  sys.spawn_member(g, 0,
                   TaskSpec::with_actions("recv", 0, std::move(recv_prog)));
  sys.spawn_member(g, 1,
                   TaskSpec::with_actions("send", 1, std::move(send_prog)));
  benchtool::WallTimer timer;
  sys.run();
  Rate r;
  r.msgs_per_s = static_cast<double>(tags) * rounds / timer.seconds();
  r.stats = sys.transport_stats();
  return r;
}

/// Nonblocking rendezvous ring: every rank isends `burst` rendezvous-sized
/// messages to its successor and irecvs as many from its predecessor, then
/// waits on everything — keeping burst*p completion acks in flight.
Rate measure_ack_storm(int ranks, int burst, int rounds) {
  System sys{base_cfg(ranks)};
  auto programs = make_rank_programs(ranks);
  std::int64_t messages = 0;
  for (int round = 0; round < rounds; ++round) {
    for (auto& rp : programs) {
      const int next = (rp.rank() + 1) % ranks;
      std::vector<int> handles;
      for (int i = 0; i < burst; ++i) {
        rp.isend(next, 128 * 1024, 10 + i, /*handle=*/i);
        rp.irecv_any(10 + i, /*handle=*/burst + i);
        handles.push_back(i);
        handles.push_back(burst + i);
      }
      rp.waitall(std::move(handles));
    }
    messages += static_cast<std::int64_t>(ranks) * burst;
  }
  benchtool::WallTimer timer;
  auto result = run_mpi_job(sys, std::move(programs),
                            block_placement(ranks, 1), WorkloadProfile{});
  Rate r;
  r.msgs_per_s = static_cast<double>(messages) / timer.seconds();
  r.stats = result.transport;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    // --jobs=/--trials=/--csv=: accepted-and-ignored shared driver flags.
  }
  const int scale = quick ? 1 : 4;

  const Rate ping = measure_ping_pong(20'000 * scale);
  std::printf("ping-pong:        %12.0f msgs/s\n", ping.msgs_per_s);
  const Rate flood = measure_unexpected_flood(1500, 4 * scale);
  std::printf("unexpected flood: %12.0f msgs/s  (pool capacity %lld for %lld msgs)\n",
              flood.msgs_per_s,
              static_cast<long long>(flood.stats.pool_capacity),
              static_cast<long long>(flood.stats.messages_allocated));
  const Rate storm = measure_ack_storm(8, 48, 2 * scale);
  std::printf("rendezvous storm: %12.0f msgs/s  (%lld ack routes at exit)\n",
              storm.msgs_per_s,
              static_cast<long long>(storm.stats.ack_routes));

  smilab::benchtool::BenchJson json{"comm_microbench"};
  json.set("quick", quick);
  json.set("ping_pong_msgs_per_s", ping.msgs_per_s);
  json.set("unexpected_flood_msgs_per_s", flood.msgs_per_s);
  json.set("ack_storm_msgs_per_s", storm.msgs_per_s);
  json.set("flood_pool_capacity",
           static_cast<long long>(flood.stats.pool_capacity));
  json.set("flood_messages_allocated",
           static_cast<long long>(flood.stats.messages_allocated));
  json.set("flood_pool_live_at_exit",
           static_cast<long long>(flood.stats.pool_live));
  json.set("storm_peak_in_flight",
           static_cast<long long>(storm.stats.peak_in_flight));
  json.write();
  return 0;
}
