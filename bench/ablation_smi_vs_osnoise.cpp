// Ablation: SMI noise vs ordinary OS noise at identical duty cycle.
//
// Section II.C's claim: SMIs are categorically worse than OS noise because
// (a) they stop EVERY logical CPU, (b) they stall the NIC (TCP), and (c)
// they cannot be deferred or masked. We compare long SMIs (105 ms every
// second, whole node) with single-CPU preemptions of the same duration and
// rate (Ferreira-style kernel noise injection) on a multithreaded workload
// and an MPI job.
#include <cstdio>

#include "nas_table.h"
#include "smilab/apps/convolve/workload.h"
#include "smilab/mpi/job.h"
#include "smilab/noise/injector.h"

using namespace smilab;

namespace {

double convolve_run(bool smi, bool os_noise, std::uint64_t seed) {
  const ConvolveWorkload workload = ConvolveWorkload::cache_unfriendly_workload();
  SystemConfig cfg;
  cfg.machine = MachineSpec::poweredge_r410_e5620();
  cfg.smi = smi ? SmiConfig::long_every_second() : SmiConfig::none();
  cfg.seed = seed;
  System sys{cfg};
  sys.set_online_cpus(4);
  std::unique_ptr<OsNoiseInjector> injector;
  if (os_noise) {
    OsNoiseConfig noise;  // one CPU, same duration/rate as the long SMIs
    noise.rotate_cpus = true;
    injector = std::make_unique<OsNoiseInjector>(sys, noise);
  }
  const double per_thread =
      workload.total_work_seconds(cfg.machine.ghz) / workload.threads;
  const int segments = 64;
  for (int t = 0; t < workload.threads; ++t) {
    std::vector<Action> actions(
        segments, Action{Compute{seconds_d(per_thread / segments)}});
    TaskSpec spec;
    spec.name = "w" + std::to_string(t);
    spec.node = 0;
    spec.profile = workload.profile;
    spec.wait_policy = WaitPolicy::kBlock;
    spec.actions = std::make_unique<VectorActions>(std::move(actions));
    sys.spawn(std::move(spec));
  }
  sys.run();
  return sys.last_finish_time().seconds();
}

double ft_run(bool smi, bool os_noise, std::uint64_t seed) {
  const NasJobSpec spec{NasBenchmark::kFT, NasClass::kA, 8, 1};
  static const NasKnob knob = calibrate_nas_knob(spec);
  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.node_count = spec.nodes;
  cfg.net = NetworkParams::wyeast();
  cfg.smi = smi ? SmiConfig::long_every_second() : SmiConfig::none();
  cfg.seed = seed;
  System sys{cfg};
  sys.set_online_cpus(4);
  std::unique_ptr<OsNoiseInjector> injector;
  if (os_noise) {
    OsNoiseConfig noise;
    noise.rotate_cpus = true;
    injector = std::make_unique<OsNoiseInjector>(sys, noise);
  }
  return run_mpi_job_streaming(sys, spec.ranks(),
                               make_nas_rank_sources(spec, knob),
                               block_placement(spec.ranks(), spec.ranks_per_node),
                               WorkloadProfile::dense_fp())
      .elapsed.seconds();
}

void report(const char* label, double(*run)(bool, bool, std::uint64_t),
            int trials, const ExperimentSweep& sweep) {
  // (variant, trial) cells are independent sims: fan them across the sweep
  // pool and fold back in serial order (byte-identical at any job count).
  const std::vector<double> runs = sweep.map<double>(3 * trials, [&](int i) {
    const int variant = i % 3;
    const auto seed = static_cast<std::uint64_t>(33 + (i / 3) * 101);
    return run(variant == 1, variant == 2, seed);
  });
  OnlineStats base, smi, osn;
  for (int t = 0; t < trials; ++t) {
    base.add(runs[static_cast<std::size_t>(t * 3)]);
    smi.add(runs[static_cast<std::size_t>(t * 3 + 1)]);
    osn.add(runs[static_cast<std::size_t>(t * 3 + 2)]);
  }
  std::printf("%-28s base %8.2fs | SMI noise +%6.2f%% | single-CPU OS noise "
              "+%6.2f%% | SMI/OS impact ratio %.1fx\n",
              label, base.mean(), (smi.mean() / base.mean() - 1.0) * 100.0,
              (osn.mean() / base.mean() - 1.0) * 100.0,
              (smi.mean() - base.mean()) /
                  std::max(1e-9, osn.mean() - base.mean()));
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = smilab::benchtool::BenchArgs::parse(argc, argv);
  const int trials = args.quick ? 2 : 4;
  const ExperimentSweep sweep{args.jobs};
  std::printf("=== Ablation: SMI vs OS noise at identical duty cycle "
              "(105 ms every 1 s, %d trials, %d jobs) ===\n\n", trials,
              sweep.jobs());
  report("Convolve CU, 24 thr, 4 CPU", convolve_run, trials, sweep);
  report("NAS FT A, 8 nodes", ft_run, trials, sweep);
  std::printf(
      "\nExpected: single-CPU noise of the same duty cycle is largely\n"
      "absorbed (idle balancing migrates work; the NIC keeps moving),\n"
      "while the SMI's whole-node + NIC freeze cannot be absorbed.\n");
  return 0;
}
