// Shared helpers for the NAS table benches (Tables 1-5).
#pragma once

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_json.h"
#include "smilab/apps/nas/nas.h"
#include "smilab/apps/nas/runner.h"
#include "smilab/core/paper_tables.h"
#include "smilab/core/sweep.h"
#include "smilab/stats/table.h"

namespace smilab::benchtool {

/// Parse "--trials=N" / "--quick" / "--jobs=N" style args shared by the
/// bench binaries.
struct BenchArgs {
  int trials = 6;  // the paper averaged six runs
  bool quick = false;
  std::string csv_prefix;  ///< --csv=PREFIX: also write series as CSV files
  /// Grid-cell worker threads (core/sweep.h). 0 = hardware concurrency;
  /// --jobs=1 reproduces the historical serial path exactly (results are
  /// byte-identical at any value either way).
  int jobs = 0;
  /// --retained: materialize whole rank programs instead of streaming
  /// chunks (the pre-streaming default; bit-identical results, higher
  /// peak RSS — useful for memory A/B runs).
  bool retained = false;

  [[nodiscard]] int effective_jobs() const {
    return smilab::effective_jobs(jobs);
  }

  [[nodiscard]] TraceMode trace_mode() const {
    return retained ? TraceMode::kRetained : TraceMode::kStreaming;
  }

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--trials=", 0) == 0) {
        args.trials = std::max(1, std::atoi(arg.c_str() + 9));
      } else if (arg.rfind("--jobs=", 0) == 0) {
        args.jobs = std::max(0, std::atoi(arg.c_str() + 7));
      } else if (arg.rfind("--csv=", 0) == 0) {
        args.csv_prefix = arg.substr(6);
      } else if (arg == "--retained") {
        args.retained = true;
      } else if (arg == "--quick") {
        args.quick = true;
        args.trials = 2;
      }
    }
    return args;
  }
};

/// Write `text` to `path`, reporting on stdout (used by the --csv flag).
inline void write_file_report(const std::string& path, const std::string& text) {
  if (FILE* f = std::fopen(path.c_str(), "w")) {
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("(csv written to %s)\n", path.c_str());
  } else {
    std::printf("(could not write %s)\n", path.c_str());
  }
}

inline std::string fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

/// Print one paper table (both rank-per-node halves) for `bench`:
/// measured SMM0/1/2 with deltas and percentages, next to the paper's
/// percentages for the same cells. Generation lives in
/// smilab/core/paper_tables.h (unit-tested); this only formats. If `json`
/// is non-null, the grid wall time and cell count are recorded there.
inline void print_nas_table(const char* title, NasBenchmark bench,
                            const std::vector<int>& node_rows,
                            const NasRunOptions& options,
                            BenchJson* json = nullptr) {
  std::printf("=== %s ===\n", title);
  std::printf("(measured = smilab simulation, %d trials, %d jobs; 'paper %%' "
              "columns are the published deltas)\n\n",
              options.trials, effective_jobs(options.jobs));
  const WallTimer timer;
  for (const int rpn : {1, 4}) {
    std::printf("--- %d MPI rank%s per node ---\n", rpn, rpn == 1 ? "" : "s");
    std::fflush(stdout);
    const Table table = build_nas_table(bench, node_rows, rpn, options);
    std::printf("%s\n", table.to_aligned_text().c_str());
    std::fflush(stdout);
  }
  if (json != nullptr) {
    json->set("trials", options.trials);
    json->set("jobs", effective_jobs(options.jobs));
    json->set("grid_wall_s", timer.seconds());
  }
}

/// Print a Table 4/5-style HTT comparison (4 ranks per node, ht=0 vs ht=1)
/// for `bench` under SMM 0/1/2.
inline void print_htt_table(const char* title, NasBenchmark bench,
                            const NasRunOptions& options,
                            BenchJson* json = nullptr) {
  std::printf("=== %s ===\n", title);
  std::printf("(ht=0: siblings offline; ht=1: all 8 logical CPUs online; "
              "%d trials, %d jobs; paper d%% is the published SMM2 HTT "
              "delta)\n\n",
              options.trials, effective_jobs(options.jobs));
  std::fflush(stdout);
  const WallTimer timer;
  const Table table = build_htt_table(bench, options);
  std::printf("%s\n", table.to_aligned_text().c_str());
  if (json != nullptr) {
    json->set("trials", options.trials);
    json->set("jobs", effective_jobs(options.jobs));
    json->set("grid_wall_s", timer.seconds());
  }
}

}  // namespace smilab::benchtool
