// Ablation: how much of the multi-node SMI amplification comes from TCP
// loss recovery after the NIC stall (DESIGN.md §5), swept over the
// recovery scale. Scale 0 isolates the pure freeze; the calibrated model
// uses 1.0.
#include <cstdio>

#include "nas_table.h"
#include "smilab/mpi/job.h"

using namespace smilab;

namespace {

double run_ft(double recovery_scale, const SmiConfig& smi, std::uint64_t seed,
              const NasJobSpec& spec, const NasKnob& knob) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.node_count = spec.nodes;
  cfg.net = NetworkParams::wyeast();
  cfg.net.tcp_recovery_scale = recovery_scale;
  cfg.smi = smi;
  cfg.seed = seed;
  System sys{cfg};
  sys.set_online_cpus(4);
  return run_mpi_job_streaming(sys, spec.ranks(),
                               make_nas_rank_sources(spec, knob),
                               block_placement(spec.ranks(), spec.ranks_per_node),
                               WorkloadProfile::dense_fp())
      .elapsed.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = smilab::benchtool::BenchArgs::parse(argc, argv);
  const int trials = args.quick ? 2 : 4;
  const NasJobSpec spec{NasBenchmark::kFT, NasClass::kA, 8, 1};
  const NasKnob knob = calibrate_nas_knob(spec);

  std::printf("=== Ablation: TCP loss-recovery contribution to SMI "
              "amplification (FT A, 8 nodes, long SMIs @ 1/s, %d trials) "
              "===\n\n", trials);
  std::printf("Note: the no-SMI baseline is calibrated with scale 1.0; other\n"
              "scales shift only the SMI response (recovery never fires\n"
              "without a freeze).\n\n");
  for (const double scale : {0.0, 0.5, 1.0, 2.0}) {
    OnlineStats base, noisy;
    for (int t = 0; t < trials; ++t) {
      const auto seed = static_cast<std::uint64_t>(51 + t * 997);
      base.add(run_ft(scale, SmiConfig::none(), seed, spec, knob));
      noisy.add(run_ft(scale, SmiConfig::long_every_second(), seed, spec, knob));
    }
    std::printf("recovery scale %.1f: base %6.2fs, long SMIs %6.2fs "
                "(+%5.1f%%)\n",
                scale, base.mean(), noisy.mean(),
                (noisy.mean() / base.mean() - 1.0) * 100.0);
  }
  return 0;
}
