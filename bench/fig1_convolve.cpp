// Reproduces Figure 1: the Convolve experiments.
//
// Left panels:  execution time vs time-between-SMIs (50-1500 ms, 50 ms
//               steps), one series per CPU configuration (1-8 logical
//               CPUs), 24 threads, long SMIs; CacheUnfriendly (top) and
//               CacheFriendly (bottom). Mean of 3 runs, like the paper.
// Right panels: execution time vs CPU configuration at a fixed 50 ms SMI
//               gap, with min/max across runs to show the variance the
//               paper highlights.
//
// The (gap, cpus) grid cells are independent simulations and fan across
// the sweep pool (--jobs); per-cell trial order is fixed, so the output is
// byte-identical at any job count.
//
// Usage: fig1_convolve [--trials=N] [--quick] [--jobs=N]
#include <cstdio>
#include <string>
#include <vector>

#include "nas_table.h"  // BenchArgs
#include "smilab/apps/convolve/workload.h"
#include "smilab/core/sweep.h"
#include "smilab/stats/ascii_chart.h"
#include "smilab/stats/online_stats.h"
#include "smilab/stats/table.h"

using namespace smilab;

namespace {

void run_case(const char* label, const ConvolveWorkload& workload, int trials,
              int gap_step_ms, const ExperimentSweep& sweep,
              const std::string& csv_prefix, benchtool::BenchJson* json) {
  std::printf("--- Convolve %s: L1 miss rate %.1f%%, %.1f cycles/ref, "
              "%d threads ---\n",
              label, workload.cache.l1_miss_rate * 100.0,
              workload.cache.avg_latency_cycles, workload.threads);

  std::vector<std::string> series_names;
  for (int cpus = 1; cpus <= 8; ++cpus) {
    series_names.push_back(std::to_string(cpus) + "cpu");
  }
  Series series{"gap_ms", series_names};

  const benchtool::WallTimer timer;

  // Baseline row (no SMIs) printed separately.
  const std::vector<double> baselines = sweep.map<double>(8, [&](int i) {
    return run_convolve_sim(workload, i + 1, SmiConfig::none(), 1).seconds;
  });
  std::printf("no-SMI baselines (s):");
  for (int cpus = 1; cpus <= 8; ++cpus) {
    std::printf(" %d:%.2f", cpus, baselines[static_cast<std::size_t>(cpus - 1)]);
  }
  std::printf("\n\n");

  // The swept grid: every (gap, cpus) cell runs `trials` sims with seeds
  // derived from the cell coordinates alone.
  std::vector<int> gaps;
  for (int gap = 50; gap <= 1500; gap += gap_step_ms) gaps.push_back(gap);
  const int cells = static_cast<int>(gaps.size()) * 8;
  const std::vector<OnlineStats> grid = sweep.map<OnlineStats>(
      cells, [&](int i) {
        const int gap = gaps[static_cast<std::size_t>(i / 8)];
        const int cpus = i % 8 + 1;
        OnlineStats stats;
        for (int trial = 0; trial < trials; ++trial) {
          stats.add(run_convolve_sim(
                        workload, cpus, SmiConfig::long_with_gap(gap),
                        static_cast<std::uint64_t>(gap * 131 + cpus * 17 + trial))
                        .seconds);
        }
        return stats;
      });

  for (std::size_t g = 0; g < gaps.size(); ++g) {
    std::vector<double> ys;
    ys.reserve(8);
    for (int c = 0; c < 8; ++c) ys.push_back(grid[g * 8 + static_cast<std::size_t>(c)].mean());
    series.add_point(gaps[g], ys);
  }
  ChartOptions chart;
  chart.y_label = "execution time (s)";
  std::printf("Execution time (s) vs SMI gap, long SMIs (left panel):\n%s\n%s\n",
              render_ascii_chart(series, chart).c_str(),
              series.to_aligned_text(2).c_str());
  if (!csv_prefix.empty()) {
    benchtool::write_file_report(csv_prefix + "_" + label + ".csv", series.to_csv());
  }

  // Right panel reuses the gap==50 cells (identical trial seeds and order).
  Table right{{"cpus", "mean s", "min s", "max s", "spread %"}};
  for (int cpus = 1; cpus <= 8; ++cpus) {
    const OnlineStats& stats = grid[static_cast<std::size_t>(cpus - 1)];
    right.row()
        .cell(static_cast<long long>(cpus))
        .cell(stats.mean())
        .cell(stats.min())
        .cell(stats.max())
        .cell((stats.max() - stats.min()) / stats.mean() * 100.0);
  }
  std::printf("Execution time at 50 ms gap vs CPU configuration (right panel):\n%s\n",
              right.to_aligned_text().c_str());

  if (json != nullptr) {
    json->set(std::string{label} + "_cells", cells);
    json->set(std::string{label} + "_grid_wall_s", timer.seconds());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchtool::BenchArgs::parse(argc, argv);
  const int trials = args.quick ? 2 : std::max(3, args.trials == 6 ? 3 : args.trials);
  const int gap_step = args.quick ? 250 : 50;
  const ExperimentSweep sweep{args.jobs};

  benchtool::BenchJson json{"fig1_convolve"};
  json.set("trials", trials);
  json.set("jobs", sweep.jobs());

  std::printf("=== Figure 1: Convolve experiments (24 threads, long SMIs, "
              "%d trials/point, %d jobs) ===\n\n", trials, sweep.jobs());
  run_case("CacheUnfriendly", ConvolveWorkload::cache_unfriendly_workload(),
           trials, gap_step, sweep, args.csv_prefix, &json);
  run_case("CacheFriendly", ConvolveWorkload::cache_friendly_workload(),
           trials, gap_step, sweep, args.csv_prefix, &json);

  // The paper also checked short SMIs: no visible effect at any rate.
  std::printf("Short-SMI check (CacheFriendly, 8 CPUs): ");
  const auto base = run_convolve_sim(ConvolveWorkload::cache_friendly_workload(),
                                     8, SmiConfig::none(), 5);
  const auto shrt = run_convolve_sim(ConvolveWorkload::cache_friendly_workload(),
                                     8, SmiConfig::short_with_gap(50), 5);
  std::printf("base %.3fs, short SMIs every 50ms %.3fs (%+.2f%%)\n",
              base.seconds, shrt.seconds,
              (shrt.seconds / base.seconds - 1.0) * 100.0);
  json.write();
  return 0;
}
