// Reproduces Table 1: NAS BT under no/short/long SMM intervals, classes
// A/B/C, 1/4/16 nodes, 1 or 4 MPI ranks per node.
//
// Usage: table1_bt [--trials=N] [--quick] [--jobs=N] [--retained]
#include "nas_table.h"

int main(int argc, char** argv) {
  using namespace smilab;
  const auto args = benchtool::BenchArgs::parse(argc, argv);
  NasRunOptions options;
  options.trials = args.trials;
  options.jobs = args.jobs;
  options.trace_mode = args.trace_mode();
  benchtool::BenchJson json{"table1_bt"};
  benchtool::print_nas_table(
      "Table 1: BT with no (0), short (1) and long (2) SMM intervals",
      NasBenchmark::kBT, {1, 4, 16}, options, &json);
  json.write();
  return 0;
}
