// Ablation: SMI re-arm policy — gap measured from SMM exit (the paper's
// driver) vs a fixed-period timer measured from entry. From exit, the
// worst-case availability is interval/(interval+duration) (~32% at 50 ms
// with long SMIs); from entry, intervals below the SMM duration starve the
// machine almost completely. This is why Figure 1's blow-up at 50 ms gaps
// is a ~3x slowdown rather than a hang.
#include <cstdio>

#include "nas_table.h"
#include "smilab/apps/convolve/workload.h"

using namespace smilab;

int main(int argc, char** argv) {
  const auto args = smilab::benchtool::BenchArgs::parse(argc, argv);
  (void)args;
  const ConvolveWorkload workload = ConvolveWorkload::cache_unfriendly_workload();
  const double base = run_convolve_sim(workload, 4, SmiConfig::none(), 1).seconds;

  std::printf("=== Ablation: SMI re-arm policy (Convolve CU, 4 CPUs, long "
              "SMIs) ===\n\nbase (no SMIs): %.2fs\n\n", base);
  std::printf("%8s  %16s  %16s\n", "gap ms", "from-exit slowdn", "from-entry slowdn");
  for (const int gap : {50, 120, 200, 400, 800}) {
    SmiConfig from_exit = SmiConfig::long_with_gap(gap);
    SmiConfig from_entry = from_exit;
    from_entry.rearm_from_entry = true;
    const double exit_s = run_convolve_sim(workload, 4, from_exit,
                                           static_cast<std::uint64_t>(gap)).seconds;
    const double entry_s = run_convolve_sim(workload, 4, from_entry,
                                            static_cast<std::uint64_t>(gap)).seconds;
    std::printf("%8d  %15.2fx  %15.2fx\n", gap, exit_s / base, entry_s / base);
  }
  std::printf("\nExpected: identical for gaps >> 105 ms; from-entry explodes "
              "once the\ngap approaches the SMM duration (105 ms), from-exit "
              "saturates at\n(gap+dur)/gap.\n");
  return 0;
}
