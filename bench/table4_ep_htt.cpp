// Reproduces Table 4: effect of HTT on EP with 4 MPI ranks per node, under
// no/short/long SMM intervals.
//
// Usage: table4_ep_htt [--trials=N] [--quick]
#include "nas_table.h"

int main(int argc, char** argv) {
  using namespace smilab;
  const auto args = benchtool::BenchArgs::parse(argc, argv);
  NasRunOptions options;
  options.trials = args.trials;
  benchtool::print_htt_table(
      "Table 4: Effect of HTT on EP with 4 MPI ranks per node",
      NasBenchmark::kEP, options);
  return 0;
}
