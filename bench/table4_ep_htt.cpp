// Reproduces Table 4: effect of HTT on EP with 4 MPI ranks per node, under
// no/short/long SMM intervals.
//
// Usage: table4_ep_htt [--trials=N] [--quick] [--jobs=N] [--retained]
#include "nas_table.h"

int main(int argc, char** argv) {
  using namespace smilab;
  const auto args = benchtool::BenchArgs::parse(argc, argv);
  NasRunOptions options;
  options.trials = args.trials;
  options.jobs = args.jobs;
  options.trace_mode = args.trace_mode();
  benchtool::BenchJson json{"table4_ep_htt"};
  benchtool::print_htt_table(
      "Table 4: Effect of HTT on EP with 4 MPI ranks per node",
      NasBenchmark::kEP, options, &json);
  json.write();
  return 0;
}
