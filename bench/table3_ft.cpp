// Reproduces Table 3: NAS FT under no/short/long SMM intervals, classes
// A/B/C, 1-16 nodes, 1 or 4 MPI ranks per node. The "-" rows mirror the
// cells the paper does not report (FT class C on 1-2 nodes with one rank
// per node); see EXPERIMENTS.md.
//
// Usage: table3_ft [--trials=N] [--quick] [--jobs=N] [--retained]
#include "nas_table.h"

int main(int argc, char** argv) {
  using namespace smilab;
  const auto args = benchtool::BenchArgs::parse(argc, argv);
  NasRunOptions options;
  options.trials = args.trials;
  options.jobs = args.jobs;
  options.trace_mode = args.trace_mode();
  benchtool::BenchJson json{"table3_ft"};
  benchtool::print_nas_table(
      "Table 3: FT with no (0), short (1) and long (2) SMM intervals",
      NasBenchmark::kFT, {1, 2, 4, 8, 16}, options, &json);
  json.write();
  return 0;
}
