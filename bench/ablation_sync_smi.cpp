// Ablation: synchronized vs desynchronized SMI phases across nodes.
//
// DESIGN.md's max-of-N claim: the MPI amplification in Tables 1-3 comes
// from per-node SMI phases being independent, so every synchronizing
// operation waits for the most recently frozen node. If firmware fired all
// nodes' SMIs at the same instant, a synchronized job would lose only the
// duty cycle. This bench measures FT and BT with both phase policies.
#include <cstdio>

#include "nas_table.h"
#include "smilab/core/sweep.h"

using namespace smilab;

namespace {

void run_case(NasBenchmark bench, NasClass cls, int nodes, int rpn, int trials,
              const ExperimentSweep& sweep) {
  const NasJobSpec spec{bench, cls, nodes, rpn};
  const NasKnob knob = calibrate_nas_knob(spec);

  // 3 regimes x trials independent sims, swept in parallel and folded back
  // in serial order (byte-identical to the serial loop).
  const std::vector<double> runs = sweep.map<double>(3 * trials, [&](int i) {
    const int regime = i % 3;
    const auto seed = static_cast<std::uint64_t>(1000 + (i / 3) * 7919);
    if (regime == 0) return simulate_nas_once(spec, knob, SmiConfig::none(), seed, 0.0);
    if (regime == 1) {
      return simulate_nas_once(spec, knob, SmiConfig::long_every_second(), seed, 0.0);
    }
    SmiConfig synced = SmiConfig::long_every_second();
    synced.synchronized_across_nodes = true;
    return simulate_nas_once(spec, knob, synced, seed, 0.0);
  });
  OnlineStats base, desync, sync;
  for (int t = 0; t < trials; ++t) {
    base.add(runs[static_cast<std::size_t>(t * 3)]);
    desync.add(runs[static_cast<std::size_t>(t * 3 + 1)]);
    sync.add(runs[static_cast<std::size_t>(t * 3 + 2)]);
  }
  std::printf("%-2s %s %2d nodes x %d rpn: base %8.2fs | desync +%6.2f%% | "
              "sync +%6.2f%% | amplification attributable to phase "
              "independence: %.2fx\n",
              to_string(bench), to_string(cls), nodes, rpn, base.mean(),
              (desync.mean() / base.mean() - 1.0) * 100.0,
              (sync.mean() / base.mean() - 1.0) * 100.0,
              (desync.mean() - base.mean()) /
                  std::max(1e-9, sync.mean() - base.mean()));
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = smilab::benchtool::BenchArgs::parse(argc, argv);
  const int trials = args.quick ? 2 : 4;
  const ExperimentSweep sweep{args.jobs};
  std::printf("=== Ablation: synchronized vs desynchronized SMI phases "
              "(long SMIs @ 1/s, %d trials, %d jobs) ===\n\n", trials,
              sweep.jobs());
  run_case(NasBenchmark::kFT, NasClass::kA, 8, 1, trials, sweep);
  run_case(NasBenchmark::kFT, NasClass::kB, 8, 1, trials, sweep);
  run_case(NasBenchmark::kBT, NasClass::kA, 16, 1, trials, sweep);
  run_case(NasBenchmark::kEP, NasClass::kA, 16, 1, trials, sweep);
  std::printf(
      "\nExpected: desynchronized phases amplify the impact well past the\n"
      "~10.5%% duty cycle for synchronizing codes (FT/BT); synchronized\n"
      "firing collapses it back toward the duty cycle; EP barely changes\n"
      "(no mid-run synchronization to amplify).\n");
  return 0;
}
