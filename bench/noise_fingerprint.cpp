// Extension bench: the noise *fingerprint* — what each noise source looks
// like to FTQ and hwlat instrumentation. This is the tool-developer payoff
// of the paper's conclusions: SMIs are identifiable by rare, enormous,
// duration-banded gaps that no OS-level source produces.
//
// Renders the FTQ slip timeline (1 ms quanta over 20 s) for: a quiet
// machine, OS noise, short SMIs, and long SMIs — plus the detector's
// latency histogram per SMI kind.
#include <cstdio>
#include <string>

#include "nas_table.h"
#include "smilab/noise/ftq.h"
#include "smilab/noise/hwlat.h"
#include "smilab/noise/injector.h"
#include "smilab/stats/ascii_chart.h"

using namespace smilab;

namespace {

void fingerprint(const char* label, const SmiConfig& smi, bool os_noise) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::poweredge_r410_e5620();
  cfg.smi = smi;
  cfg.seed = 41;
  System sys{cfg};
  std::unique_ptr<OsNoiseInjector> injector;
  if (os_noise) {
    OsNoiseConfig noise;
    noise.duration = milliseconds(105);
    noise.interval = seconds(1);
    noise.cpu = 0;  // the FTQ task's CPU: worst case for single-CPU noise
    injector = std::make_unique<OsNoiseInjector>(sys, noise);
  }
  FtqConfig config;
  config.duration = seconds(20);
  config.pinned_cpu = 0;
  const FtqReport report = run_ftq(sys, config);

  // Downsample the slip timeline into a plottable series (max per bucket:
  // a rare 100 ms spike must survive the reduction).
  const std::size_t buckets = 120;
  Series series{"quantum#", {"slip_ms"}};
  const std::size_t n = report.slips_us.size();
  for (std::size_t b = 0; b < buckets && n > 0; ++b) {
    const std::size_t lo = b * n / buckets;
    const std::size_t hi = std::max(lo + 1, (b + 1) * n / buckets);
    double peak = 0.0;
    for (std::size_t i = lo; i < hi && i < n; ++i) {
      peak = std::max(peak, report.slips_us[i]);
    }
    series.add_point(static_cast<double>(lo), {peak / 1e3});
  }
  ChartOptions options;
  options.height = 10;
  options.y_label = "max slip per bucket (ms)";
  std::printf("--- %s ---\n", label);
  std::printf("quanta %lld, mean slip %.1f us, max %.1f ms, big slips %lld, "
              "noise share %.2f%%\n",
              static_cast<long long>(report.quanta), report.slip_us.mean(),
              report.max_slip_us / 1e3, static_cast<long long>(report.big_slips),
              report.noise_fraction(config.quantum) * 100.0);
  std::printf("%s\n", render_ascii_chart(series, options).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  std::printf("=== Noise fingerprints: FTQ slip timelines (1 ms quanta, 20 s) "
              "===\n\n");
  fingerprint("quiet machine", SmiConfig::none(), false);
  fingerprint("OS noise, 105 ms on this CPU every 1 s", SmiConfig::none(), true);
  fingerprint("short SMIs @ 1/s", SmiConfig::short_every_second(), false);
  fingerprint("long SMIs @ 1/s", SmiConfig::long_every_second(), false);

  std::printf("Detector accuracy per SMI kind (continuous hwlat, 30 s):\n");
  for (const auto kind : {SmiKind::kShort, SmiKind::kLong}) {
    SystemConfig cfg;
    cfg.machine = MachineSpec::poweredge_r410_e5620();
    cfg.smi.kind = kind;
    cfg.seed = 42;
    System sys{cfg};
    HwlatConfig config;
    config.duration = seconds(30);
    config.window = seconds(1);
    config.period = seconds(1);
    const HwlatReport report = run_hwlat_detector(sys, config);
    std::printf("  %-6s recall %5.1f%%  gap mean %8.2f ms  duration error "
                "%6.1f us\n",
                to_string(kind), report.recall * 100.0,
                report.gap_us.mean() / 1e3, report.mean_duration_error_us);
  }
  std::printf(
      "\nReading: OS noise at identical duty cycle looks like SMI noise to\n"
      "a single-CPU FTQ probe — distinguishing them requires either multi-\n"
      "CPU correlation (SMIs hit every core at once) or the OS's own\n"
      "accounting (SMM time is invisible to it; OS noise is not).\n");
  return 0;
}
