// Machine-readable bench output: each bench binary writes a flat
// BENCH_<name>.json next to its stdout report (event throughput, cache-sim
// refs/sec, end-to-end grid wall time, jobs used), so the perf trajectory
// is tracked across PRs by diffing artifacts instead of scraping stdout.
#pragma once

#include <chrono>
#include <cstdio>
#include <ctime>
#include <string>
#include <utility>
#include <vector>

namespace smilab::benchtool {

/// Wall-clock timer for end-to-end grid timings.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Per-thread CPU time. For single-threaded deterministic work this is far
/// more stable than wall clock on shared machines: time stolen by other
/// processes does not count against the measurement.
class CpuTimer {
 public:
  CpuTimer() : start_(read()) {}
  [[nodiscard]] double seconds() const { return read() - start_; }

 private:
  static double read() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
#else
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
#endif
  }

  double start_;
};

/// Flat JSON object accumulated in insertion order and written as
/// BENCH_<name>.json in the working directory.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {
    set("bench", name_);
  }

  void set(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + escaped(value) + "\"");
  }
  void set(const std::string& key, const char* value) {
    set(key, std::string{value});
  }
  void set(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    fields_.emplace_back(key, buf);
  }
  void set(const std::string& key, long long value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void set(const std::string& key, int value) {
    set(key, static_cast<long long>(value));
  }
  void set(const std::string& key, bool value) {
    fields_.emplace_back(key, value ? "true" : "false");
  }

  /// Writes BENCH_<name>.json; reports the path (or failure) on stdout.
  void write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::printf("(could not write %s)\n", path.c_str());
      return;
    }
    std::fputs("{\n", f);
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      std::fprintf(f, "  \"%s\": %s%s\n", escaped(fields_[i].first).c_str(),
                   fields_[i].second.c_str(),
                   i + 1 < fields_.size() ? "," : "");
    }
    std::fputs("}\n", f);
    std::fclose(f);
    std::printf("(bench json written to %s)\n", path.c_str());
  }

 private:
  static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out.push_back(c);
    }
    return out;
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace smilab::benchtool
