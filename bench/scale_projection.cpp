// Extension bench: the paper's future work — "test additional parallel
// applications at larger scales". Projects the long-SMI amplification of a
// synchronizing solver from the paper's 16 nodes out to 128, for several
// synchronization frequencies.
#include <cstdio>
#include <string>

#include "nas_table.h"
#include "smilab/mpi/collectives.h"
#include "smilab/mpi/job.h"
#include "smilab/stats/table.h"

using namespace smilab;

namespace {

double run(int nodes, int sync_per_10s, bool smi, std::uint64_t seed) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.node_count = nodes;
  cfg.net = NetworkParams::wyeast();
  cfg.smi = smi ? SmiConfig::long_every_second() : SmiConfig::none();
  cfg.seed = seed;
  System sys{cfg};
  auto programs = make_rank_programs(nodes);
  TagAllocator tags;
  const SimDuration step = seconds(10) / sync_per_10s;
  for (int i = 0; i < sync_per_10s; ++i) {
    for (auto& rp : programs) rp.compute(step);
    allreduce(programs, 8192, tags);
  }
  return run_mpi_job(sys, std::move(programs), block_placement(nodes, 1),
                     WorkloadProfile::dense_fp())
      .elapsed.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = smilab::benchtool::BenchArgs::parse(argc, argv);
  const int trials = args.quick ? 1 : 3;
  std::printf("=== Scale projection: long SMIs @ 1/s on a 10s solver, "
              "1 rank/node (%d trials) ===\n\n", trials);
  std::printf("Slowdown %% by node count and synchronization frequency:\n\n");
  Table table{{"nodes", "10 syncs", "100 syncs", "1000 syncs"}};
  for (const int nodes : {4, 16, 64, 128}) {
    table.row().cell(static_cast<long long>(nodes));
    for (const int syncs : {10, 100, 1000}) {
      OnlineStats base, noisy;
      for (int t = 0; t < trials; ++t) {
        const auto seed = static_cast<std::uint64_t>(nodes * 131 + syncs + t);
        base.add(run(nodes, syncs, false, seed));
        noisy.add(run(nodes, syncs, true, seed));
      }
      table.cell((noisy.mean() / base.mean() - 1.0) * 100.0, 1);
    }
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_aligned_text().c_str());
  std::printf(
      "Reading: amplification grows with both node count and sync rate; at\n"
      "fine-grained synchronization and >=64 nodes the job effectively\n"
      "inherits the worst node's noise at every step — exactly the\n"
      "extreme-scale concern of Petrini et al. and Ferreira et al., now\n"
      "driven by firmware instead of the OS.\n");
  return 0;
}
