// Extension bench: the paper's future work — "test additional parallel
// applications at larger scales" — in two parts.
//
//  1. Projection table (original): long-SMI amplification of a
//     synchronizing solver from the paper's 16 nodes out to 128, for
//     several synchronization frequencies.
//
//  2. Rank-scaling sweep + RSS pair (streaming sources): a ring-exchange
//     halo solver run at 16 -> 4096 ranks through streaming action sources
//     (mpi/streaming.h), reporting cells/s and actions/s per rank count,
//     then an A/B memory measurement at the top rank count: the same cell
//     is run in a forked child per trace mode (streaming first), each child
//     reporting its stats hash and getrusage peak-RSS delta. The parent
//     asserts the hashes are EQUAL (streaming is a pure memory change) and
//     records the retained/streaming RSS ratio. CI gates on the ci_floor_*/
//     ci_ceiling_* keys in BENCH_scale_projection.json: the ratio floor is
//     the headline — peak residency O(ranks), not O(ranks x actions).
//
// Usage: scale_projection [--quick] [--no-table] [--max-ranks=N]
//
// The rank sweep runs 16 -> min(4096, N) by default; passing
// --max-ranks=65536 adds the 16384- and 65536-rank legs plus a 65536-rank
// streaming RSS cell gated against the committed ceiling. CI perf-smoke
// uses the 4096 default so its budget is unchanged; the committed artifact
// is regenerated locally with the full projection.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#ifdef __unix__
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "bench_json.h"
#include "nas_table.h"
#include "smilab/mpi/collectives.h"
#include "smilab/mpi/job.h"
#include "smilab/stats/table.h"

using namespace smilab;

namespace {

// CI gate values, recorded in the JSON artifact. Floors/ceilings sit far
// from local Release numbers so only a real regression (retained residency
// creeping back into the streaming path, or a throughput collapse) trips
// them on slow shared runners.
constexpr double kRssRatioFloor = 10.0;
constexpr long long kStreamingRssCeilingKb = 131'072;  // 128 MB
constexpr double kActionsPerSFloor = 300'000.0;
// Scale-flatness: actions/s at 4096 ranks over actions/s at 16 ranks. A
// rank-independent per-action cost keeps this near 1.0; the pre-ladder
// core scored 0.40 (event-queue and matching costs grew with rank count).
constexpr double kFlatnessRatioFloor = 0.45;

// --- Part 1: the original SMI amplification projection ---------------------

double projection_run(int nodes, int sync_per_10s, bool smi,
                      std::uint64_t seed) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.node_count = nodes;
  cfg.net = NetworkParams::wyeast();
  cfg.smi = smi ? SmiConfig::long_every_second() : SmiConfig::none();
  cfg.seed = seed;
  System sys{cfg};
  auto programs = make_rank_programs(nodes);
  TagAllocator tags;
  const SimDuration step = seconds(10) / sync_per_10s;
  for (int i = 0; i < sync_per_10s; ++i) {
    for (auto& rp : programs) rp.compute(step);
    allreduce(programs, 8192, tags);
  }
  return run_mpi_job(sys, std::move(programs), block_placement(nodes, 1),
                     WorkloadProfile::dense_fp())
      .elapsed.seconds();
}

void print_projection_table(int trials) {
  std::printf("=== Scale projection: long SMIs @ 1/s on a 10s solver, "
              "1 rank/node (%d trials) ===\n\n", trials);
  std::printf("Slowdown %% by node count and synchronization frequency:\n\n");
  Table table{{"nodes", "10 syncs", "100 syncs", "1000 syncs"}};
  for (const int nodes : {4, 16, 64, 128}) {
    table.row().cell(static_cast<long long>(nodes));
    for (const int syncs : {10, 100, 1000}) {
      OnlineStats base, noisy;
      for (int t = 0; t < trials; ++t) {
        const auto seed = static_cast<std::uint64_t>(nodes * 131 + syncs + t);
        base.add(projection_run(nodes, syncs, false, seed));
        noisy.add(projection_run(nodes, syncs, true, seed));
      }
      table.cell((noisy.mean() / base.mean() - 1.0) * 100.0, 1);
    }
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_aligned_text().c_str());
  std::printf(
      "Reading: amplification grows with both node count and sync rate; at\n"
      "fine-grained synchronization and >=64 nodes the job effectively\n"
      "inherits the worst node's noise at every step — exactly the\n"
      "extreme-scale concern of Petrini et al. and Ferreira et al., now\n"
      "driven by firmware instead of the OS.\n\n");
}

// --- Part 2: rank-scaling sweep with streaming sources ---------------------

/// Ring halo-exchange solver: per iteration every rank computes, then
/// sendrecvs with both neighbours (the dependency chain that propagates
/// noise ring-wide). One iteration == one streaming chunk, so a rank's
/// retained footprint is 3 actions regardless of iteration count.
struct RingSolver {
  int ranks = 0;
  int iters = 0;
  std::int64_t bytes = 64 * 1024;
  SimDuration step = microseconds(200);

  [[nodiscard]] std::int64_t total_actions() const {
    return static_cast<std::int64_t>(ranks) * iters * 3;
  }
};

constexpr int kRanksPerNode = 8;  // wyeast_e5520 core count: no time-sharing

bool emit_ring_chunk(const RingSolver& s, int rank, int chunk, RankProgram& rp,
                     TagAllocator& tags) {
  if (chunk >= s.iters) return false;
  const int base = tags.allocate(2);
  const int next = (rank + 1) % s.ranks;
  const int prev = (rank + s.ranks - 1) % s.ranks;
  rp.compute(s.step);
  rp.sendrecv(next, s.bytes, base, prev, base);
  rp.sendrecv(prev, s.bytes, base + 1, next, base + 1);
  return true;
}

/// Retained build: the same emitter looped to completion per rank, so the
/// two modes share one program definition (bit-identical sequences).
std::vector<RankProgram> build_ring(const RingSolver& s) {
  auto programs = make_rank_programs(s.ranks);
  for (auto& rp : programs) {
    TagAllocator tags;
    for (int c = 0; emit_ring_chunk(s, rp.rank(), c, rp, tags); ++c) {
    }
  }
  return programs;
}

RankSourceFactory ring_sources(const RingSolver& s) {
  // The per-rank emitter captures a pointer + an int: 16 bytes, inside
  // std::function's inline buffer, so 65536 rank sources cost zero
  // closure heap (a by-value RingSolver capture was ~5 MB of allocations
  // at that scale). Safe: `s` outlives the job — every caller's solver is
  // a local that spans the run_*_job call.
  return chunked_rank_sources(s.ranks, [sp = &s](int rank) {
    return [sp, rank](int chunk, RankProgram& rp, TagAllocator& tags) {
      return emit_ring_chunk(*sp, rank, chunk, rp, tags);
    };
  });
}

System make_ring_system(const RingSolver& s) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.node_count = node_count_for(s.ranks, kRanksPerNode);
  cfg.net = NetworkParams::wyeast();
  cfg.smi = SmiConfig::none();
  cfg.seed = 42;
  return System{cfg};
}

// FNV-1a over the observable outcome (per-rank stats + system counters +
// elapsed) — the idiom of tests/streaming_equality_test.cpp, recomputed here
// so the A/B children prove "equal statistics" across process boundaries.
class TraceHash {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= 0x100000001b3ull;
    }
  }
  void mix_signed(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

std::uint64_t outcome_hash(const System& sys, const MpiJobResult& result) {
  TraceHash h;
  h.mix_signed(result.elapsed.ns());
  for (int t = 0; t < sys.task_count(); ++t) {
    const TaskStats& s = sys.task_stats(TaskId{t});
    h.mix_signed(s.end_time.ns());
    h.mix_signed(s.os_view_cpu_time.ns());
    h.mix_signed(s.true_cpu_time.ns());
    h.mix_signed(s.smm_stolen_time.ns());
    h.mix_signed(s.messages_sent);
    h.mix_signed(s.messages_received);
    h.mix_signed(s.bytes_sent);
    h.mix(s.finished ? 1 : 0);
  }
  h.mix_signed(sys.inter_node_bytes());
  h.mix_signed(sys.peak_in_flight_messages());
  return h.value();
}

struct CellResult {
  double cpu_s = 0;
  std::uint64_t hash = 0;
  std::int64_t peak_program_actions = 0;
};

CellResult run_ring_cell(const RingSolver& s, TraceMode mode) {
  System sys = make_ring_system(s);
  benchtool::CpuTimer timer;
  const MpiJobResult result =
      mode == TraceMode::kStreaming
          ? run_mpi_job_streaming(sys, s.ranks, ring_sources(s),
                                  block_placement(s.ranks, kRanksPerNode),
                                  WorkloadProfile{})
          : run_mpi_job(sys, build_ring(s),
                        block_placement(s.ranks, kRanksPerNode),
                        WorkloadProfile{});
  CellResult r;
  r.cpu_s = timer.seconds();
  r.hash = outcome_hash(sys, result);
  r.peak_program_actions = sys.peak_program_actions();
  return r;
}

// --- The A/B RSS pair ------------------------------------------------------

struct RssReport {
  double cpu_s = 0;
  std::uint64_t hash = 0;
  std::int64_t peak_program_actions = 0;
  long long rss_delta_kb = 0;  ///< getrusage maxrss growth over the cell
  bool measured = false;       ///< false: platform had no fork/getrusage
};

#ifdef __unix__

long long max_rss_kb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<long long>(usage.ru_maxrss);  // KB on Linux
}

/// Runs the cell in a forked child so each mode's peak RSS is measured in a
/// pristine address space (the parent's heap high-water mark can't mask the
/// delta). The child reports {cpu_ns, hash, peak_program_actions, rss} over
/// a pipe. Must run before the parent allocates anything sizeable.
RssReport measure_rss(const RingSolver& s, TraceMode mode) {
  struct Wire {
    std::int64_t cpu_ns;
    std::uint64_t hash;
    std::int64_t peak_program_actions;
    long long rss_delta_kb;
  };
  int fd[2];
  if (pipe(fd) != 0) return {};
  const pid_t pid = fork();
  if (pid < 0) {
    close(fd[0]);
    close(fd[1]);
    return {};
  }
  if (pid == 0) {
    close(fd[0]);
    const long long base_kb = max_rss_kb();
    const CellResult cell = run_ring_cell(s, mode);
    const Wire wire{static_cast<std::int64_t>(cell.cpu_s * 1e9), cell.hash,
                    cell.peak_program_actions, max_rss_kb() - base_kb};
    const ssize_t wrote = write(fd[1], &wire, sizeof wire);
    close(fd[1]);
    _exit(wrote == static_cast<ssize_t>(sizeof wire) ? 0 : 1);
  }
  close(fd[1]);
  Wire wire{};
  std::size_t got = 0;
  while (got < sizeof wire) {
    const ssize_t n =
        read(fd[0], reinterpret_cast<char*>(&wire) + got, sizeof wire - got);
    if (n <= 0) break;
    got += static_cast<std::size_t>(n);
  }
  close(fd[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (got != sizeof wire || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    return {};
  }
  RssReport report;
  report.cpu_s = static_cast<double>(wire.cpu_ns) / 1e9;
  report.hash = wire.hash;
  report.peak_program_actions = wire.peak_program_actions;
  report.rss_delta_kb = wire.rss_delta_kb;
  report.measured = true;
  return report;
}

#else

/// No fork on this platform: run in-process for the hash/peak comparison;
/// RSS stays unmeasured and the JSON says so.
RssReport measure_rss(const RingSolver& s, TraceMode mode) {
  const CellResult cell = run_ring_cell(s, mode);
  RssReport report;
  report.cpu_s = cell.cpu_s;
  report.hash = cell.hash;
  report.peak_program_actions = cell.peak_program_actions;
  return report;
}

#endif

}  // namespace

int main(int argc, char** argv) {
  const auto args = smilab::benchtool::BenchArgs::parse(argc, argv);
  bool no_table = false;
  int max_ranks = 4096;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-table") == 0) no_table = true;
    if (std::strncmp(argv[i], "--max-ranks=", 12) == 0) {
      max_ranks = std::atoi(argv[i] + 12);
    }
  }

  smilab::benchtool::BenchJson json{"scale_projection"};
  json.set("quick", args.quick);

  // RSS pair first: fork while the parent's own footprint is still tiny so
  // the children's getrusage deltas attribute cleanly to the cell.
  RingSolver pair;
  pair.ranks = args.quick ? 512 : 4096;
  pair.iters = args.quick ? 300 : 600;
  std::printf("=== Trace-residency A/B: %d-rank ring exchange, %d iterations "
              "(%lld actions) ===\n\n",
              pair.ranks, pair.iters,
              static_cast<long long>(pair.total_actions()));
  const RssReport streaming = measure_rss(pair, TraceMode::kStreaming);
  const RssReport retained = measure_rss(pair, TraceMode::kRetained);
  const bool hash_match =
      streaming.hash != 0 && streaming.hash == retained.hash;
  const double rss_ratio =
      streaming.measured && retained.measured && streaming.rss_delta_kb > 0
          ? static_cast<double>(retained.rss_delta_kb) /
                static_cast<double>(streaming.rss_delta_kb)
          : 0.0;
  std::printf("  streaming: peak RSS delta %8lld KB, peak %9lld actions "
              "resident, %6.2f cpu s%s\n",
              streaming.rss_delta_kb,
              static_cast<long long>(streaming.peak_program_actions),
              streaming.cpu_s, streaming.measured ? "" : "  (rss unmeasured)");
  std::printf("  retained:  peak RSS delta %8lld KB, peak %9lld actions "
              "resident, %6.2f cpu s%s\n",
              retained.rss_delta_kb,
              static_cast<long long>(retained.peak_program_actions),
              retained.cpu_s, retained.measured ? "" : "  (rss unmeasured)");
  std::printf("  statistics hash: %s   RSS ratio (retained/streaming): "
              "%.1fx\n\n",
              hash_match ? "EQUAL" : "MISMATCH", rss_ratio);
  if (!hash_match) {
    std::printf("FAIL: streaming and retained cells disagree\n");
    return 1;
  }

  // 64k-rank residency cell (still before the parent grows): streaming
  // mode only — retained at this scale would hold 39M actions. Gated
  // against the same committed ceiling as the 4096-rank pair, proving the
  // O(ranks) bound holds another 16x out.
  RssReport big{};
  const bool run_big = !args.quick && max_ranks >= 65536;
  if (run_big) {
    RingSolver giant;
    giant.ranks = 65536;
    giant.iters = 200;
    std::printf("=== 65536-rank streaming residency: %lld actions ===\n\n",
                static_cast<long long>(giant.total_actions()));
    big = measure_rss(giant, TraceMode::kStreaming);
    std::printf("  streaming: peak RSS delta %8lld KB (ceiling %lld KB), "
                "peak %9lld actions resident, %6.2f cpu s%s\n\n",
                big.rss_delta_kb, kStreamingRssCeilingKb,
                static_cast<long long>(big.peak_program_actions), big.cpu_s,
                big.measured ? "" : "  (rss unmeasured)");
    if (big.measured && big.rss_delta_kb > kStreamingRssCeilingKb) {
      std::printf("FAIL: 65536-rank streaming cell exceeds the RSS ceiling\n");
      return 1;
    }
  }

  // Rank-scaling sweep (streaming): cells/s and actions/s by rank count.
  std::vector<int> rank_counts = args.quick
                                     ? std::vector<int>{16, 64, 256}
                                     : std::vector<int>{16, 64, 256, 1024};
  if (!args.quick) {
    for (const int big_ranks : {4096, 16384, 65536}) {
      if (big_ranks <= max_ranks) rank_counts.push_back(big_ranks);
    }
  }
  const int sweep_iters = args.quick ? 60 : 200;
  std::printf("=== Streaming rank sweep: ring exchange, %d iterations ===\n\n",
              sweep_iters);
  Table sweep_table{{"ranks", "actions", "cpu s", "Mact/s", "cells/s",
                     "peak resident"}};
  std::map<int, double> rate_by_ranks;
  for (const int ranks : rank_counts) {
    RingSolver s;
    s.ranks = ranks;
    s.iters = sweep_iters;
    const CellResult cell = run_ring_cell(s, TraceMode::kStreaming);
    const double actions_per_s =
        static_cast<double>(s.total_actions()) / cell.cpu_s;
    sweep_table.row()
        .cell(static_cast<long long>(ranks))
        .cell(static_cast<long long>(s.total_actions()))
        .cell(cell.cpu_s, 3)
        .cell(actions_per_s / 1e6, 2)
        .cell(1.0 / cell.cpu_s, 2)
        .cell(static_cast<long long>(cell.peak_program_actions));
    rate_by_ranks[ranks] = actions_per_s;
    json.set("streaming_cpu_s_" + std::to_string(ranks), cell.cpu_s);
    json.set("streaming_actions_per_s_" + std::to_string(ranks),
             actions_per_s);
    json.set("cells_per_s_" + std::to_string(ranks), 1.0 / cell.cpu_s);
    json.set("streaming_peak_program_actions_" + std::to_string(ranks),
             static_cast<long long>(cell.peak_program_actions));
    std::fflush(stdout);
  }
  std::printf("%s\n", sweep_table.to_aligned_text().c_str());
  std::printf("Reading: resident actions stay O(ranks) — 3 per rank, one\n"
              "chunk — while total actions grow without bound; retained mode\n"
              "would hold every action for the whole run.\n\n");

  // Scale-flatness: per-action throughput at 4096 ranks relative to 16.
  // The committed headline metric — near 1.0 means the event core's
  // per-action cost is rank-independent.
  if (rate_by_ranks.count(16) != 0 && rate_by_ranks.count(4096) != 0) {
    const double flatness = rate_by_ranks[4096] / rate_by_ranks[16];
    std::printf("Scale flatness (actions/s @4096 / @16): %.2f\n\n", flatness);
    json.set("flatness_ratio_4096_over_16", flatness);
    json.set("ci_floor_flatness_ratio", kFlatnessRatioFloor);
  }
  if (rate_by_ranks.count(16) != 0 && rate_by_ranks.count(65536) != 0) {
    json.set("flatness_ratio_65536_over_16",
             rate_by_ranks[65536] / rate_by_ranks[16]);
  }

  if (!no_table) print_projection_table(args.quick ? 1 : 3);

  const int top_ranks = rank_counts.back();
  json.set("sweep_iters", sweep_iters);
  json.set("sweep_max_ranks", top_ranks);
  json.set("pair_ranks", pair.ranks);
  json.set("pair_iters", pair.iters);
  json.set("pair_total_actions", static_cast<long long>(pair.total_actions()));
  json.set("pair_hash_match", hash_match);
  json.set("pair_rss_measured", streaming.measured && retained.measured);
  json.set("streaming_rss_delta_kb", streaming.rss_delta_kb);
  json.set("retained_rss_delta_kb", retained.rss_delta_kb);
  json.set("rss_ratio", rss_ratio);
  json.set("pair_streaming_cpu_s", streaming.cpu_s);
  json.set("pair_retained_cpu_s", retained.cpu_s);
  json.set("pair_streaming_peak_program_actions",
           static_cast<long long>(streaming.peak_program_actions));
  json.set("pair_retained_peak_program_actions",
           static_cast<long long>(retained.peak_program_actions));
  json.set("ci_floor_rss_ratio", kRssRatioFloor);
  json.set("ci_ceiling_streaming_rss_kb", kStreamingRssCeilingKb);
  json.set("ci_floor_streaming_actions_per_s", kActionsPerSFloor);
  json.set("max_ranks", max_ranks);
  if (run_big && big.measured) {
    json.set("streaming_rss_delta_kb_65536", big.rss_delta_kb);
    json.set("streaming_peak_program_actions_65536_cell",
             static_cast<long long>(big.peak_program_actions));
  }
  json.write();
  return 0;
}
