// Ablation: which modelled mechanism carries each HTT observation of
// Tables 4-5. Sweeps the HTT refill fraction (the EP-side cost) and the
// HTT NIC-recovery factor (the FT-side benefit), plus the alternative
// residency-scaling hypothesis DESIGN.md discusses.
#include <cstdio>

#include "nas_table.h"
#include "smilab/mpi/job.h"

using namespace smilab;

namespace {

double run_cell(const NasJobSpec& spec, const NasKnob& knob, bool smi,
                std::uint64_t seed, double refill_fraction,
                double recovery_factor, double residency_factor) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.node_count = spec.nodes;
  cfg.net = NetworkParams::wyeast();
  cfg.smi = smi ? SmiConfig::long_every_second() : SmiConfig::none();
  cfg.seed = seed;
  cfg.htt_refill_fraction = refill_fraction;
  cfg.htt_nic_recovery_factor = recovery_factor;
  cfg.smm_htt_residency_factor = residency_factor;
  System sys{cfg};
  sys.set_online_cpus(spec.htt ? cfg.machine.logical_cpus()
                               : cfg.machine.cores());
  return run_mpi_job_streaming(sys, spec.ranks(),
                               make_nas_rank_sources(spec, knob),
                               block_placement(spec.ranks(), spec.ranks_per_node),
                               WorkloadProfile::dense_fp())
      .elapsed.seconds();
}

void sweep(const char* label, const NasJobSpec& base_spec, int trials,
           double refill_fraction, double recovery_factor,
           double residency_factor) {
  const NasKnob knob = calibrate_nas_knob(base_spec);
  NasJobSpec off = base_spec;
  off.htt = false;
  NasJobSpec on = base_spec;
  on.htt = true;
  OnlineStats ht0, ht1;
  for (int t = 0; t < trials; ++t) {
    const auto seed = static_cast<std::uint64_t>(7 + t * 811);
    ht0.add(run_cell(off, knob, true, seed, refill_fraction, recovery_factor,
                     residency_factor));
    ht1.add(run_cell(on, knob, true, seed, refill_fraction, recovery_factor,
                     residency_factor));
  }
  std::printf("  %-44s ht0 %7.2fs  ht1 %7.2fs  HTT delta %+6.2f%%\n", label,
              ht0.mean(), ht1.mean(), (ht1.mean() / ht0.mean() - 1.0) * 100.0);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = smilab::benchtool::BenchArgs::parse(argc, argv);
  const int trials = args.quick ? 2 : 4;

  std::printf("=== Ablation: HTT mechanism decomposition (long SMIs @ 1/s, "
              "%d trials) ===\n", trials);

  const NasJobSpec ep{NasBenchmark::kEP, NasClass::kB, 1, 4};
  std::printf("\nEP B, 1 node x 4 ranks (paper HTT delta: +3.7%%):\n");
  sweep("no HTT mechanisms", ep, trials, 0.0, 1.0, 1.0);
  sweep("refill fraction 0.38 (calibrated)", ep, trials, 0.38, 0.35, 1.0);
  sweep("residency x1.38 instead of refill", ep, trials, 0.0, 1.0, 1.38);

  const NasJobSpec ft{NasBenchmark::kFT, NasClass::kC, 8, 4};
  std::printf("\nFT C, 8 nodes x 4 ranks (paper HTT delta: -4.5%%):\n");
  sweep("no HTT mechanisms", ft, trials, 0.0, 1.0, 1.0);
  sweep("refill only (no recovery offload)", ft, trials, 0.38, 1.0, 1.0);
  sweep("refill + recovery offload (calibrated)", ft, trials, 0.38, 0.35, 1.0);
  sweep("residency x1.38 instead of refill", ft, trials, 0.0, 0.35, 1.38);

  std::printf(
      "\nExpected: the refill fraction produces EP's positive HTT delta;\n"
      "the NIC-recovery offload flips comm-heavy FT negative; scaling the\n"
      "SMM residency instead would also stall the NIC longer and push FT\n"
      "positive — which is why the calibrated model keeps the cost on the\n"
      "CPU side (see DESIGN.md).\n");
  return 0;
}
