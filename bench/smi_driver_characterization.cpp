// Section III.B: characterization of the blackbox SMI driver — TSC-measured
// SMM residency for the "short" (1-3 ms) and "long" (100-110 ms) settings,
// plus the BIOSBITS 150 us violation check.
#include <cstdio>

#include "smilab/sim/system.h"
#include "smilab/smm/smi_controller.h"
#include "smilab/stats/histogram.h"

using namespace smilab;

namespace {

void characterize(SmiKind kind) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.node_count = 1;
  cfg.smi.kind = kind;
  cfg.smi.interval_jiffies = 100;  // fast sampling: one SMI every 100 ms
  cfg.seed = 7;
  System sys{cfg};

  // An idle-ish background task so the run has something to perturb.
  std::vector<Action> prog;
  prog.push_back(Compute{seconds(60)});
  sys.spawn(TaskSpec::with_actions("victim", 0, std::move(prog)));
  sys.run();

  const auto& acct = sys.smm_accounting();
  const auto& stats = acct.duration_stats();
  std::printf("kind=%s  SMIs=%lld  residency mean=%.3f ms  min=%.3f ms  "
              "max=%.3f ms  BIOSBITS(150us) violations=%lld\n",
              to_string(kind), static_cast<long long>(acct.total_smi_count()),
              stats.mean() * 1e3, stats.min() * 1e3, stats.max() * 1e3,
              static_cast<long long>(acct.biosbits_violations()));
  std::printf("%s\n", acct.duration_histogram_ms().render(48).c_str());
}

}  // namespace

int main() {
  std::printf("=== SMI driver characterization (paper Section III.B) ===\n\n");
  characterize(SmiKind::kShort);
  characterize(SmiKind::kLong);
  std::printf("Paper: short SMIs 1-3 ms, long SMIs 100-110 ms, both far over\n"
              "the BIOSBITS 150 us guidance; every interval should violate.\n");
  return 0;
}
