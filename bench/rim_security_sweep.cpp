// Extension bench: the security trade-off the paper's introduction frames.
//
// Runtime Integrity Measurement (HyperSentry/HyperCheck/SPECTRE-style)
// hashes hypervisor state from SMM. Sweeping the bytes measured per check
// maps the trade between detection latency (security) and application
// slowdown (the paper's noise), including the BIOSBITS 150 us guidance and
// energy overhead.
#include <cstdio>

#include "nas_table.h"
#include "smilab/cpu/energy.h"
#include "smilab/mpi/collectives.h"
#include "smilab/mpi/job.h"
#include "smilab/smm/rim.h"
#include "smilab/stats/table.h"

using namespace smilab;

namespace {

struct RimImpact {
  double solo_pct;     // single-node compute slowdown
  double mpi_pct;      // 8-node allreduce-chain slowdown
  double energy_pct;   // single-node energy overhead
  std::int64_t biosbits;
};

RimImpact measure(const RimConfig& rim, int trials) {
  RimImpact impact{};
  OnlineStats solo_base, solo_noisy, mpi_base, mpi_noisy, e_base, e_noisy;
  for (int t = 0; t < trials; ++t) {
    const auto seed = static_cast<std::uint64_t>(17 + 131 * t);
    // Single-node compute.
    for (const bool noisy : {false, true}) {
      SystemConfig cfg;
      cfg.machine = MachineSpec::wyeast_e5520();
      cfg.smi = noisy ? rim.to_smi_config() : SmiConfig::none();
      cfg.seed = seed;
      System sys{cfg};
      std::vector<Action> prog;
      prog.push_back(Compute{seconds(20)});
      sys.spawn(TaskSpec::with_actions("app", 0, std::move(prog)));
      sys.run();
      (noisy ? solo_noisy : solo_base).add(sys.last_finish_time().seconds());
      (noisy ? e_noisy : e_base).add(estimate_energy(sys, PowerModel{}).joules);
      if (noisy && t == 0) {
        impact.biosbits = sys.smm_accounting().biosbits_violations();
      }
    }
    // 8-node synchronizing MPI job.
    for (const bool noisy : {false, true}) {
      SystemConfig cfg;
      cfg.machine = MachineSpec::wyeast_e5520();
      cfg.node_count = 8;
      cfg.net = NetworkParams::wyeast();
      cfg.smi = noisy ? rim.to_smi_config() : SmiConfig::none();
      cfg.seed = seed;
      System sys{cfg};
      // Streamed: one iteration per chunk via the per-rank allreduce form.
      const auto factory = chunked_rank_sources(8, [](int) {
        return [](int chunk, RankProgram& rp, TagAllocator& tags) {
          if (chunk >= 40) return false;
          rp.compute(milliseconds(100));
          allreduce(rp, 8192, tags);
          return true;
        };
      });
      const auto result = run_mpi_job_streaming(sys, 8, factory,
                                                block_placement(8, 1),
                                                WorkloadProfile::dense_fp());
      (noisy ? mpi_noisy : mpi_base).add(result.elapsed.seconds());
    }
  }
  impact.solo_pct = (solo_noisy.mean() / solo_base.mean() - 1) * 100;
  impact.mpi_pct = (mpi_noisy.mean() / mpi_base.mean() - 1) * 100;
  impact.energy_pct = (e_noisy.mean() / e_base.mean() - 1) * 100;
  return impact;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = smilab::benchtool::BenchArgs::parse(argc, argv);
  const int trials = args.quick ? 1 : 3;
  std::printf("=== RIM security-check sweep: integrity scanning from SMM, "
              "one check/second (%d trials) ===\n\n", trials);
  std::printf("Hypervisor state to cover: 256 MB; scan bandwidth in SMM: "
              "1.5 GB/s.\n\n");
  Table table{{"scan/check", "SMM ms", "duty %", "detect latency s",
               "solo +%", "MPI x8 +%", "energy +%", "BIOSBITS"}};
  for (const double mb : {1.0, 4.0, 16.0, 64.0}) {
    RimConfig rim;
    rim.scanned_bytes = mb * 1e6;
    const RimImpact impact = measure(rim, trials);
    table.row()
        .cell(std::to_string(static_cast<int>(mb)) + " MB")
        .cell(rim.smm_duration().seconds() * 1e3, 2)
        .cell(rim.duty_cycle() * 100.0, 2)
        .cell(rim.detection_latency(256e6).seconds(), 1)
        .cell(impact.solo_pct, 2)
        .cell(impact.mpi_pct, 2)
        .cell(impact.energy_pct, 2)
        .cell(static_cast<long long>(impact.biosbits));
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_aligned_text().c_str());
  std::printf(
      "Reading: small per-check scans keep applications (and BIOSBITS)\n"
      "happy but take minutes to cover the hypervisor; big scans detect\n"
      "tampering in seconds but cost synchronizing MPI jobs far more than\n"
      "the raw duty cycle. Every configuration violates the 150 us\n"
      "guidance — the paper's core warning about repurposing SMM.\n");
  return 0;
}
