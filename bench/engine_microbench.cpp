// google-benchmark micro-suite for the simulator itself: event engine
// throughput, cache-model access rate, collective lowering, and small
// end-to-end system runs. These guard the simulator's own performance —
// the table benches run hundreds of simulations per invocation.
#include <benchmark/benchmark.h>

#include "smilab/apps/nas/nas.h"
#include "smilab/cache/cache.h"
#include "smilab/mpi/collectives.h"
#include "smilab/mpi/job.h"
#include "smilab/sim/event_queue.h"
#include "smilab/sim/system.h"
#include "smilab/time/rng.h"

namespace {

using namespace smilab;

void BM_EngineScheduleRun(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine engine;
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      engine.schedule_at(SimTime{(i * 7919) % n}, [&fired] { ++fired; });
    }
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1 << 10)->Arg(1 << 16);

void BM_EngineCancelHalf(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine engine;
    std::vector<EventId> ids;
    ids.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      ids.push_back(engine.schedule_at(SimTime{i}, [] {}));
    }
    for (int i = 0; i < n; i += 2) engine.cancel(ids[static_cast<std::size_t>(i)]);
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineCancelHalf)->Arg(1 << 14);

void BM_CacheHierarchyAccess(benchmark::State& state) {
  CacheHierarchy hierarchy = CacheHierarchy::e5620();
  Rng rng{1};
  for (auto _ : state) {
    // 64 MB working set: plenty of misses at every level.
    benchmark::DoNotOptimize(
        hierarchy.access(rng.next_u64() % (64ull << 20)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHierarchyAccess);

void BM_CollectiveLowering(benchmark::State& state) {
  const auto p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto programs = make_rank_programs(p);
    TagAllocator tags;
    alltoall(programs, 65536, tags);
    allreduce(programs, 1024, tags);
    benchmark::DoNotOptimize(programs[0].size());
  }
}
BENCHMARK(BM_CollectiveLowering)->Arg(16)->Arg(64);

void BM_NasTraceBuild(benchmark::State& state) {
  const NasJobSpec spec{NasBenchmark::kBT, NasClass::kA, 16, 1};
  for (auto _ : state) {
    auto programs = build_nas_trace(spec, NasKnob{4096, 0});
    benchmark::DoNotOptimize(programs.size());
  }
}
BENCHMARK(BM_NasTraceBuild);

void BM_SystemComputeRun(benchmark::State& state) {
  for (auto _ : state) {
    SystemConfig cfg;
    cfg.machine = MachineSpec::poweredge_r410_e5620();
    cfg.smi = SmiConfig::long_every_second();
    System sys{cfg};
    std::vector<Action> prog(100, Action{Compute{milliseconds(100)}});
    sys.spawn(TaskSpec::with_actions("t", 0, std::move(prog)));
    sys.run();
    benchmark::DoNotOptimize(sys.last_finish_time());
  }
}
BENCHMARK(BM_SystemComputeRun);

void BM_MpiJobAlltoall(benchmark::State& state) {
  for (auto _ : state) {
    SystemConfig cfg;
    cfg.machine = MachineSpec::wyeast_e5520();
    cfg.node_count = 8;
    cfg.net = NetworkParams::wyeast();
    cfg.smi = SmiConfig::long_every_second();
    System sys{cfg};
    auto programs = make_rank_programs(8);
    TagAllocator tags;
    for (int iter = 0; iter < 10; ++iter) {
      for (auto& rp : programs) rp.compute(milliseconds(50));
      alltoall(programs, 65536, tags);
    }
    auto result = run_mpi_job(sys, std::move(programs), block_placement(8, 1),
                              WorkloadProfile::dense_fp());
    benchmark::DoNotOptimize(result.elapsed);
  }
}
BENCHMARK(BM_MpiJobAlltoall);

}  // namespace

BENCHMARK_MAIN();
