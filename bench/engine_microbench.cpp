// google-benchmark micro-suite for the simulator itself: event engine
// throughput, cache-model access rate, collective lowering, and small
// end-to-end system runs. These guard the simulator's own performance —
// the table benches run hundreds of simulations per invocation.
//
// Besides the google-benchmark tables, the binary always writes
// BENCH_engine_microbench.json with hand-timed headline numbers (events/s,
// cache refs/s) so CI can track the perf trajectory across PRs.
//
// Usage: engine_microbench [--quick] [gbench flags...]
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <vector>

#include "bench_json.h"
#include "smilab/apps/nas/nas.h"
#include "smilab/cache/cache.h"
#include "smilab/mpi/collectives.h"
#include "smilab/mpi/job.h"
#include "smilab/sim/event_queue.h"
#include "smilab/sim/system.h"
#include "smilab/time/rng.h"

namespace {

using namespace smilab;

void BM_EngineScheduleRun(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine engine;
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      engine.schedule_at(SimTime{(i * 7919) % n}, [&fired] { ++fired; });
    }
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1 << 10)->Arg(1 << 16);

void BM_EngineCancelHalf(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine engine;
    std::vector<EventId> ids;
    ids.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      ids.push_back(engine.schedule_at(SimTime{i}, [] {}));
    }
    for (int i = 0; i < n; i += 2) engine.cancel(ids[static_cast<std::size_t>(i)]);
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineCancelHalf)->Arg(1 << 14);

// Steady-state slab churn: a bounded pending set with events rescheduling
// themselves, the shape of quantum timers and periodic SMI sources. The
// rebuilt engine runs this allocation-free (slot free list + inline
// callbacks).
void BM_EngineSteadyState(benchmark::State& state) {
  const int chains = 64;
  for (auto _ : state) {
    Engine engine;
    std::int64_t fired = 0;
    const std::int64_t quota = 100'000;
    std::function<void(int)> arm = [&](int lane) {
      if (++fired >= quota) return;
      engine.schedule_after(SimDuration{1 + lane % 7},
                            [&arm, lane] { arm(lane); });
    };
    for (int lane = 0; lane < chains; ++lane) {
      engine.schedule_at(SimTime{lane}, [&arm, lane] { arm(lane); });
    }
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_EngineSteadyState);

// Heap-vs-ladder A/B over a schedule/drain/cancel mix at a fixed live-set
// size: every firing reschedules itself (drain+schedule), and every fourth
// firing also schedules-then-cancels a decoy (the tombstone path). The
// live-set sizes bracket the regimes that matter: 1k (everything cache
// resident either way), 100k (heap levels spill L2), 1M (pointer-chase
// territory, where the ladder's bucket locality pays).
//
// Reschedule deltas spread over [1, 1 ms) — the simulator's actual event
// horizon (compute steps are hundreds of µs, network hops µs). Packing
// the whole live set into a ~1 µs span instead would stuff thousands of
// entries into each ladder bucket and measure the sorted-bucket memmove
// worst case, a shape no sim workload produces.
inline constexpr std::uint32_t kMixSpanNs = 1'000'000;

template <Engine::Scheduler S>
void BM_EngineMix(benchmark::State& state) {
  const auto live = static_cast<int>(state.range(0));
  const std::int64_t quota = live * 4;
  for (auto _ : state) {
    Engine engine;
    engine.set_scheduler(S);
    std::int64_t fired = 0;
    EventId decoy{};
    std::function<void(int)> arm = [&](int lane) {
      if (++fired >= quota) return;
      engine.schedule_after(SimDuration{1 + (lane * 2654435761u) % kMixSpanNs},
                            [&arm, lane] { arm(lane); });
      if ((fired & 3) == 0) {
        if (decoy.valid()) engine.cancel(decoy);
        decoy = engine.schedule_after(SimDuration{1 << 20}, [] {});
      }
    };
    for (int lane = 0; lane < live; ++lane) {
      engine.schedule_at(SimTime{(lane * 7919) % live}, [&arm, lane] { arm(lane); });
    }
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * quota);
}
BENCHMARK(BM_EngineMix<Engine::Scheduler::kLadder>)
    ->Arg(1 << 10)->Arg(100'000)->Arg(1 << 20)
    ->Name("BM_EngineMixLadder");
BENCHMARK(BM_EngineMix<Engine::Scheduler::kHeap>)
    ->Arg(1 << 10)->Arg(100'000)->Arg(1 << 20)
    ->Name("BM_EngineMixHeap");

void BM_CacheHierarchyAccess(benchmark::State& state) {
  CacheHierarchy hierarchy = CacheHierarchy::e5620();
  Rng rng{1};
  for (auto _ : state) {
    // 64 MB working set: plenty of misses at every level.
    benchmark::DoNotOptimize(
        hierarchy.access(rng.next_u64() % (64ull << 20)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHierarchyAccess);

// Unit-stride replay through the scalar entry point vs the batched one:
// the convolve access stream's dominant shape.
void BM_CacheUnitStrideScalar(benchmark::State& state) {
  CacheHierarchy hierarchy = CacheHierarchy::e5620();
  std::uint64_t addr = 0;
  for (auto _ : state) {
    hierarchy.access(addr);
    addr = (addr + 4) % (24 << 10);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheUnitStrideScalar);

void BM_CacheAccessRunBatched(benchmark::State& state) {
  CacheHierarchy hierarchy = CacheHierarchy::e5620();
  const std::int64_t refs = 1 << 12;
  for (auto _ : state) {
    hierarchy.access_run(0, refs, 4);
    benchmark::DoNotOptimize(hierarchy.stats().accesses);
  }
  state.SetItemsProcessed(state.iterations() * refs);
}
BENCHMARK(BM_CacheAccessRunBatched);

void BM_CollectiveLowering(benchmark::State& state) {
  const auto p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto programs = make_rank_programs(p);
    TagAllocator tags;
    alltoall(programs, 65536, tags);
    allreduce(programs, 1024, tags);
    benchmark::DoNotOptimize(programs[0].size());
  }
}
BENCHMARK(BM_CollectiveLowering)->Arg(16)->Arg(64);

void BM_NasTraceBuild(benchmark::State& state) {
  const NasJobSpec spec{NasBenchmark::kBT, NasClass::kA, 16, 1};
  for (auto _ : state) {
    auto programs = build_nas_trace(spec, NasKnob{4096, 0});
    benchmark::DoNotOptimize(programs.size());
  }
}
BENCHMARK(BM_NasTraceBuild);

void BM_SystemComputeRun(benchmark::State& state) {
  for (auto _ : state) {
    SystemConfig cfg;
    cfg.machine = MachineSpec::poweredge_r410_e5620();
    cfg.smi = SmiConfig::long_every_second();
    System sys{cfg};
    std::vector<Action> prog(100, Action{Compute{milliseconds(100)}});
    sys.spawn(TaskSpec::with_actions("t", 0, std::move(prog)));
    sys.run();
    benchmark::DoNotOptimize(sys.last_finish_time());
  }
}
BENCHMARK(BM_SystemComputeRun);

void BM_MpiJobAlltoall(benchmark::State& state) {
  for (auto _ : state) {
    SystemConfig cfg;
    cfg.machine = MachineSpec::wyeast_e5520();
    cfg.node_count = 8;
    cfg.net = NetworkParams::wyeast();
    cfg.smi = SmiConfig::long_every_second();
    System sys{cfg};
    auto programs = make_rank_programs(8);
    TagAllocator tags;
    for (int iter = 0; iter < 10; ++iter) {
      for (auto& rp : programs) rp.compute(milliseconds(50));
      alltoall(programs, 65536, tags);
    }
    auto result = run_mpi_job(sys, std::move(programs), block_placement(8, 1),
                              WorkloadProfile::dense_fp());
    benchmark::DoNotOptimize(result.elapsed);
  }
}
BENCHMARK(BM_MpiJobAlltoall);

// --- Hand-timed headline probes for BENCH_engine_microbench.json ---------

double wall_seconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Events/second through a schedule-then-drain cycle (scrambled times).
double measure_event_throughput(int n, int rounds) {
  std::int64_t events = 0;
  const double s = wall_seconds([&] {
    for (int round = 0; round < rounds; ++round) {
      Engine engine;
      std::int64_t fired = 0;
      for (int i = 0; i < n; ++i) {
        engine.schedule_at(SimTime{(i * 7919) % n}, [&fired] { ++fired; });
      }
      engine.run();
      events += fired;
    }
  });
  return static_cast<double>(events) / s;
}

/// Events/second in steady state: bounded pending set, self-rescheduling.
double measure_steady_state_throughput(std::int64_t quota) {
  const double s = wall_seconds([&] {
    Engine engine;
    std::int64_t fired = 0;
    std::function<void(int)> arm = [&](int lane) {
      if (++fired >= quota) return;
      engine.schedule_after(SimDuration{1 + lane % 7},
                            [&arm, lane] { arm(lane); });
    };
    for (int lane = 0; lane < 64; ++lane) {
      engine.schedule_at(SimTime{lane}, [&arm, lane] { arm(lane); });
    }
    engine.run();
  });
  return static_cast<double>(quota) / s;
}

/// Events/second through the schedule/drain/cancel mix of BM_EngineMix at
/// a fixed live-set size, under the given scheduler.
double measure_mix_throughput(Engine::Scheduler sched, int live,
                              std::int64_t quota) {
  std::int64_t fired = 0;
  const double s = wall_seconds([&] {
    Engine engine;
    engine.set_scheduler(sched);
    EventId decoy{};
    std::function<void(int)> arm = [&](int lane) {
      if (++fired >= quota) return;
      engine.schedule_after(SimDuration{1 + (lane * 2654435761u) % kMixSpanNs},
                            [&arm, lane] { arm(lane); });
      if ((fired & 3) == 0) {
        if (decoy.valid()) engine.cancel(decoy);
        decoy = engine.schedule_after(SimDuration{1 << 20}, [] {});
      }
    };
    for (int lane = 0; lane < live; ++lane) {
      engine.schedule_at(SimTime{(lane * 7919) % live}, [&arm, lane] { arm(lane); });
    }
    engine.run();
  });
  return static_cast<double>(fired) / s;
}

/// Cache-model references/second for the convolve-shaped unit-stride replay.
double measure_cache_refs_per_s(std::int64_t refs) {
  CacheHierarchy hierarchy = CacheHierarchy::e5620();
  const double s = wall_seconds([&] {
    hierarchy.access_interleaved(0x1000'0000ull, 4, 0x7000'0000ull, 4, refs / 2);
  });
  benchmark::DoNotOptimize(hierarchy.stats().accesses);
  return static_cast<double>(refs) / s;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip flags google-benchmark does not know (the CI bench loop passes
  // --quick to every bench binary) before handing argv over.
  bool quick = false;
  std::vector<char*> passthrough;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      continue;
    }
    if (std::strncmp(argv[i], "--jobs=", 7) == 0 ||
        std::strncmp(argv[i], "--trials=", 9) == 0 ||
        std::strncmp(argv[i], "--csv=", 6) == 0) {
      continue;  // accepted-and-ignored: shared bench-driver flags
    }
    passthrough.push_back(argv[i]);
  }
  int pass_argc = static_cast<int>(passthrough.size());
  if (quick && pass_argc == 1) {
    // Keep the CI smoke run snappy: one representative benchmark each from
    // the engine and cache families.
    static char filter[] =
        "--benchmark_filter=BM_EngineScheduleRun/1024|BM_CacheAccessRunBatched";
    passthrough.push_back(filter);
    pass_argc = 2;
  }
  passthrough.push_back(nullptr);
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const int scale = quick ? 1 : 4;
  smilab::benchtool::BenchJson json{"engine_microbench"};
  json.set("quick", quick);
  json.set("event_throughput_per_s",
           measure_event_throughput(1 << 16, 4 * scale));
  json.set("event_steady_state_per_s",
           measure_steady_state_throughput(400'000LL * scale));
  json.set("cache_refs_per_s", measure_cache_refs_per_s(4'000'000LL * scale));

  // Heap-vs-ladder A/B at three live-set sizes. The ladder floors are the
  // CI trajectory gates (set ~4x under local Release so only a real
  // regression trips on shared runners); the heap keys exist so the A/B
  // ratio stays visible in the artifact history.
  struct MixPoint {
    const char* tag;
    int live;
  };
  constexpr MixPoint kMixPoints[] = {
      {"1k", 1 << 10}, {"100k", 100'000}, {"1m", 1 << 20}};
  for (const MixPoint& p : kMixPoints) {
    const std::int64_t quota =
        static_cast<std::int64_t>(p.live) * (quick ? 2 : 4);
    json.set(std::string("ladder_mix_per_s_") + p.tag,
             measure_mix_throughput(Engine::Scheduler::kLadder, p.live, quota));
    json.set(std::string("heap_mix_per_s_") + p.tag,
             measure_mix_throughput(Engine::Scheduler::kHeap, p.live, quota));
  }
  json.set("ci_floor_ladder_mix_per_s_100k", 600'000.0);
  json.set("ci_floor_ladder_mix_per_s_1m", 300'000.0);
  json.write();
  return 0;
}
