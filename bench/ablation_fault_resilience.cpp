// Ablation: is SMI noise just "the node stops for a while"? Compare long
// SMIs @ 1/s against injected fault stalls with the SAME duty cycle
// (105 ms/s per node, desynchronized) on NAS FT A over 8 nodes. The SMI
// path additionally pays the SMM-specific machinery — cache refill, OS-view
// misattribution, TCP loss recovery on resume — so the gap between the two
// rows is the part of the paper's MPI amplification that a generic
// "blackout" model cannot explain. Also sweeps transport drop rates and a
// slow-node straggler through the same resilient-runtime path: the job must
// finish (retransmissions, not hangs) or print its diagnosis.
#include <cstdio>

#include "nas_table.h"
#include "smilab/fault/fault_injector.h"
#include "smilab/mpi/job.h"

using namespace smilab;

namespace {

struct RunOutcome {
  double seconds = 0.0;
  bool ok = false;
  std::int64_t retransmissions = 0;
};

MpiJobRunResult run_nas_job(System& sys, const NasJobSpec& spec,
                            const NasKnob& knob) {
  return try_run_mpi_job_streaming(
      sys, spec.ranks(), make_nas_rank_sources(spec, knob),
      block_placement(spec.ranks(), spec.ranks_per_node),
      WorkloadProfile::dense_fp());
}

RunOutcome run_ft(const SmiConfig& smi, const FaultPlan& plan,
                  std::uint64_t seed, const NasJobSpec& spec,
                  const NasKnob& knob) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.node_count = spec.nodes;
  cfg.net = NetworkParams::wyeast();
  cfg.smi = smi;
  cfg.seed = seed;
  System sys{cfg};
  sys.set_online_cpus(4);
  const FaultInjector injector{sys, plan};
  const MpiJobRunResult result =
      run_nas_job(sys, spec, knob);
  RunOutcome out;
  out.ok = result.ok();
  out.seconds = result.job.elapsed.seconds();
  out.retransmissions = sys.retransmissions();
  if (!out.ok) std::printf("  STUCK: %s\n", result.run.to_string().c_str());
  return out;
}

/// Per-node periodic freezes with the duty cycle of long SMIs @ 1/s:
/// 105 ms every 1105 ms (the SMI driver re-arms one interval after SMM
/// *exit*, so its period includes the residency). `staggered` spreads the
/// phases across nodes so stalls never overlap (worst case for a tightly
/// coupled job); otherwise every node stalls at the same instant.
FaultPlan equal_duty_freezes(int nodes, double horizon_s, bool staggered) {
  FaultPlan plan;
  const SimDuration residency = milliseconds(105);
  const SimDuration period = milliseconds(1105);
  for (int n = 0; n < nodes; ++n) {
    const SimDuration phase =
        staggered ? SimDuration{period.ns() * n / nodes} : SimDuration::zero();
    for (SimTime at = SimTime::zero() + phase;
         at < SimTime::zero() + seconds_d(horizon_s); at = at + period) {
      plan.freeze(n, at, residency);
    }
  }
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = smilab::benchtool::BenchArgs::parse(argc, argv);
  const int trials = args.quick ? 1 : 3;
  const NasJobSpec spec{NasBenchmark::kFT, NasClass::kA, 8, 1};
  const NasKnob knob = calibrate_nas_knob(spec);

  std::printf("=== Ablation: SMI noise vs equal-duty-cycle fault stalls "
              "(NAS FT A, 8 nodes, %d trial(s)) ===\n\n", trials);

  OnlineStats base;
  for (int t = 0; t < trials; ++t) {
    const auto seed = static_cast<std::uint64_t>(71 + t * 997);
    base.add(run_ft(SmiConfig::none(), {}, seed, spec, knob).seconds);
  }
  std::printf("%-38s %7.2fs\n", "baseline (no SMIs, no faults)", base.mean());

  OnlineStats smi_desync, smi_sync;
  for (int t = 0; t < trials; ++t) {
    const auto seed = static_cast<std::uint64_t>(71 + t * 997);
    smi_desync.add(
        run_ft(SmiConfig::long_every_second(), {}, seed, spec, knob).seconds);
    SmiConfig sync = SmiConfig::long_every_second();
    sync.synchronized_across_nodes = true;
    smi_sync.add(run_ft(sync, {}, seed, spec, knob).seconds);
  }
  std::printf("%-38s %7.2fs  (+%5.1f%%)\n", "long SMIs @ 1/s (independent)",
              smi_desync.mean(),
              (smi_desync.mean() / base.mean() - 1.0) * 100.0);
  std::printf("%-38s %7.2fs  (+%5.1f%%)\n", "long SMIs @ 1/s (synchronized)",
              smi_sync.mean(), (smi_sync.mean() / base.mean() - 1.0) * 100.0);

  // Same per-node blackout duty cycle, none of the SMM side effects
  // (no refill, no OS-view charge) — with both phase structures.
  OnlineStats stall_sync, stall_stagger;
  const double horizon = 3.0 * smi_desync.mean() + 10.0;
  for (int t = 0; t < trials; ++t) {
    const auto seed = static_cast<std::uint64_t>(71 + t * 997);
    stall_sync.add(
        run_ft(SmiConfig::none(),
               equal_duty_freezes(spec.nodes, horizon, /*staggered=*/false),
               seed, spec, knob)
            .seconds);
    stall_stagger.add(
        run_ft(SmiConfig::none(),
               equal_duty_freezes(spec.nodes, horizon, /*staggered=*/true),
               seed, spec, knob)
            .seconds);
  }
  std::printf("%-38s %7.2fs  (+%5.1f%%)\n", "equal-duty stalls (synchronized)",
              stall_sync.mean(),
              (stall_sync.mean() / base.mean() - 1.0) * 100.0);
  std::printf("%-38s %7.2fs  (+%5.1f%%)\n", "equal-duty stalls (staggered)",
              stall_stagger.mean(),
              (stall_stagger.mean() / base.mean() - 1.0) * 100.0);
  std::printf("  -> SMM-specific overhead (sync SMIs vs sync stalls):  "
              "%+5.1f%% of baseline\n",
              (smi_sync.mean() - stall_sync.mean()) / base.mean() * 100.0);
  std::printf("  -> desynchronization amplification (stalls alone):    "
              "%+5.1f%% of baseline\n\n",
              (stall_stagger.mean() - stall_sync.mean()) / base.mean() *
                  100.0);

  std::printf("--- transport drop-rate sweep (retransmission resilience) "
              "---\n");
  for (const double drop : {0.001, 0.01, 0.05}) {
    OnlineStats t_noisy;
    std::int64_t retrans = 0;
    for (int t = 0; t < trials; ++t) {
      const auto seed = static_cast<std::uint64_t>(71 + t * 997);
      FaultPlan plan;
      plan.drop(drop);
      const RunOutcome o = run_ft(SmiConfig::none(), plan, seed, spec, knob);
      t_noisy.add(o.seconds);
      retrans += o.retransmissions;
    }
    std::printf("drop %.3f: %7.2fs  (+%5.1f%%), %lld retransmission(s)\n",
                drop, t_noisy.mean(),
                (t_noisy.mean() / base.mean() - 1.0) * 100.0,
                static_cast<long long>(retrans / trials));
  }

  std::printf("\n--- slow-node straggler (node 0 at 0.8x for the whole run) "
              "---\n");
  OnlineStats slow;
  for (int t = 0; t < trials; ++t) {
    const auto seed = static_cast<std::uint64_t>(71 + t * 997);
    FaultPlan plan;
    plan.slow(0, SimTime::zero(), seconds(3600), 0.8);
    slow.add(run_ft(SmiConfig::none(), plan, seed, spec, knob).seconds);
  }
  std::printf("straggler: %7.2fs  (+%5.1f%%) — the whole job inherits the "
              "slowest rank\n",
              slow.mean(), (slow.mean() / base.mean() - 1.0) * 100.0);
  return 0;
}
