// Model-checker throughput: how many complete schedules per second the
// Explorer (src/smilab/mc/) can push through its stateless re-run loop.
//
// Two measurements per corpus case, repeated over the whole corpus:
//
//  * explore — full DFS at the corpus budgets (the `smilab check` gate and
//    the mc test suite pay exactly this cost), pruning on.
//  * replay  — the canonical schedule alone, which isolates the fixed
//    per-schedule overhead (System construction + spawn + run + hash)
//    from the DFS bookkeeping.
//
// The headline number is aggregate schedules/s across the corpus: the
// checker's cost model is "one schedule = one full simulation", so this is
// the budget a CI exploration buys per wall-clock second. Writes
// BENCH_mc_explore.json.
//
// Usage: mc_explore [--quick]
#include <cstdio>
#include <cstring>

#include "bench_json.h"
#include "smilab/mc/corpus.h"
#include "smilab/mc/explorer.h"
#include "smilab/mc/schedule_trace.h"

namespace {

using namespace smilab;

struct Totals {
  std::size_t schedules = 0;
  std::size_t pruned = 0;
  std::size_t choice_points = 0;
  double seconds = 0;
  [[nodiscard]] double rate() const {
    return seconds > 0 ? static_cast<double>(schedules) / seconds : 0;
  }
};

/// One full-corpus exploration pass at the corpus budgets.
Totals explore_pass() {
  Totals t;
  mc::ExplorerOptions opts;
  opts.max_schedules = mc::kCorpusMaxSchedules;
  opts.max_depth = mc::kCorpusMaxDepth;
  const benchtool::CpuTimer timer;
  for (const mc::McCase& c : mc::corpus()) {
    mc::Explorer explorer{c.target, opts};
    const mc::ExplorationReport rep = explorer.explore();
    t.schedules += rep.schedules_run;
    t.pruned += rep.schedules_pruned;
    t.choice_points += rep.choice_points;
  }
  t.seconds = timer.seconds();
  return t;
}

/// One canonical replay per corpus case: the per-schedule floor.
Totals replay_pass() {
  Totals t;
  mc::ExplorerOptions opts;
  const mc::ScheduleTrace canonical;  // empty: every decision canonical
  const benchtool::CpuTimer timer;
  for (const mc::McCase& c : mc::corpus()) {
    mc::Explorer explorer{c.target, opts};
    const mc::ExplorationReport rep = explorer.replay(canonical);
    t.schedules += rep.schedules_run;
  }
  t.seconds = timer.seconds();
  return t;
}

/// Best-of-N: exploration is deterministic, so the fastest pass is the
/// least machine-noise-contaminated estimate.
template <typename Fn>
Totals best_of(int reps, Fn&& measure) {
  Totals best = measure();
  for (int i = 1; i < reps; ++i) {
    Totals t = measure();
    if (t.rate() > best.rate()) best = t;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    // --jobs=/--trials=/--csv=: accepted-and-ignored shared driver flags.
  }
  const int reps = quick ? 2 : 10;

  const Totals explore = best_of(reps, explore_pass);
  const Totals replay = best_of(reps, replay_pass);

  std::printf("corpus explore:  %8.0f schedules/s  (%zu schedules, %zu pruned, "
              "%zu choice points per pass)\n",
              explore.rate(), explore.schedules, explore.pruned,
              explore.choice_points);
  std::printf("canonical replay: %7.0f schedules/s  (%zu single-schedule runs "
              "per pass)\n",
              replay.rate(), replay.schedules);

  smilab::benchtool::BenchJson json{"mc_explore"};
  json.set("quick", quick);
  json.set("corpus_cases",
           static_cast<long long>(smilab::mc::corpus().size()));
  json.set("explore_schedules_per_s", explore.rate());
  json.set("explore_schedules_per_pass",
           static_cast<long long>(explore.schedules));
  json.set("explore_pruned_per_pass", static_cast<long long>(explore.pruned));
  json.set("explore_choice_points_per_pass",
           static_cast<long long>(explore.choice_points));
  json.set("replay_schedules_per_s", replay.rate());
  json.write();
  return 0;
}
