// Reproduces Figure 2: UnixBench total index score vs SMI gap (100-1600 ms
// at 500 ms increments) for CPU configurations 1-8, long SMIs; plus the
// short-SMI flatness check reported in the text.
//
// The (gap, cpus) grid fans across the sweep pool (--jobs); output is
// byte-identical at any job count.
//
// Usage: fig2_unixbench [--trials=N] [--quick] [--jobs=N]
#include <cstdio>
#include <string>
#include <vector>

#include "nas_table.h"  // BenchArgs
#include "smilab/apps/unixbench/unixbench.h"
#include "smilab/core/sweep.h"
#include "smilab/stats/ascii_chart.h"
#include "smilab/stats/online_stats.h"
#include "smilab/stats/table.h"

using namespace smilab;

int main(int argc, char** argv) {
  const auto args = benchtool::BenchArgs::parse(argc, argv);
  const int iterations = args.quick ? 1 : (args.trials == 6 ? 3 : args.trials);
  const ExperimentSweep sweep{args.jobs};

  benchtool::BenchJson json{"fig2_unixbench"};
  json.set("iterations", iterations);
  json.set("jobs", sweep.jobs());

  std::printf("=== Figure 2: UnixBench index vs SMI gap, long SMIs "
              "(%d iterations/point, %d jobs; higher is better) ===\n\n",
              iterations, sweep.jobs());

  // Per-test single-copy sanity row (no SMIs, 1 CPU).
  {
    UnixBenchOptions opts;
    opts.online_cpus = 1;
    const UnixBenchResult r = run_unixbench(opts);
    std::printf("Single-copy, 1 CPU, no SMIs:\n");
    for (int i = 0; i < kUbTestCount; ++i) {
      std::printf("  %-30s %12.0f ops/s  score %8.1f\n",
                  to_string(static_cast<UbTest>(i)),
                  r.ops_per_s[static_cast<std::size_t>(i)],
                  r.score[static_cast<std::size_t>(i)]);
    }
    std::printf("  total index: %.1f\n\n", r.index);
  }

  std::vector<std::string> names;
  for (int cpus = 1; cpus <= 8; ++cpus) names.push_back(std::to_string(cpus) + "cpu");
  Series series{"gap_ms", names};

  const benchtool::WallTimer timer;
  const std::vector<int> gaps{100, 600, 1100, 1600};
  const int cells = static_cast<int>(gaps.size()) * 8;
  const std::vector<double> grid = sweep.map<double>(cells, [&](int i) {
    const int gap = gaps[static_cast<std::size_t>(i / 8)];
    const int cpus = i % 8 + 1;
    OnlineStats stats;
    for (int it = 0; it < iterations; ++it) {
      UnixBenchOptions opts;
      opts.online_cpus = cpus;
      opts.smi = SmiConfig::long_with_gap(gap);
      opts.seed = static_cast<std::uint64_t>(gap * 37 + cpus * 11 + it);
      stats.add(run_unixbench(opts).index);
    }
    return stats.mean();
  });
  for (std::size_t g = 0; g < gaps.size(); ++g) {
    std::vector<double> ys;
    for (int c = 0; c < 8; ++c) ys.push_back(grid[g * 8 + static_cast<std::size_t>(c)]);
    series.add_point(gaps[g], ys);
  }
  // No-SMI reference points (the asymptote the curves approach).
  {
    const std::vector<double> ys = sweep.map<double>(8, [&](int i) {
      UnixBenchOptions opts;
      opts.online_cpus = i + 1;
      return run_unixbench(opts).index;
    });
    series.add_point(1e9, ys);  // "infinite gap" row
  }
  json.set("cells", cells);
  json.set("grid_wall_s", timer.seconds());

  // Chart only the finite gaps (drop the "infinite gap" sentinel row).
  Series finite{"gap_ms", names};
  for (std::size_t i = 0; i + 1 < series.point_count(); ++i) {
    std::vector<double> ys;
    for (std::size_t s = 0; s < names.size(); ++s) ys.push_back(series.y(s, i));
    finite.add_point(series.x(i), ys);
  }
  ChartOptions chart;
  chart.y_label = "UnixBench total index (higher is better)";
  std::printf("UnixBench total index vs SMI gap (last row = no SMIs):\n%s\n%s\n",
              render_ascii_chart(finite, chart).c_str(),
              series.to_aligned_text(1).c_str());
  if (!args.csv_prefix.empty()) {
    benchtool::write_file_report(args.csv_prefix + "_unixbench.csv", series.to_csv());
  }

  // Short-SMI check: the paper saw no change in score at any short-SMI rate.
  std::printf("Short-SMI check (8 CPUs): ");
  UnixBenchOptions base_opts;
  base_opts.online_cpus = 8;
  const double base = run_unixbench(base_opts).index;
  UnixBenchOptions short_opts = base_opts;
  short_opts.smi = SmiConfig::short_with_gap(100);
  const double with_short = run_unixbench(short_opts).index;
  std::printf("no SMIs %.1f, short SMIs every 100ms %.1f (%+.2f%%)\n", base,
              with_short, (with_short / base - 1.0) * 100.0);
  json.write();
  return 0;
}
