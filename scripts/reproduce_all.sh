#!/usr/bin/env sh
# Reproduce every paper table/figure plus the ablations and extensions,
# collecting the outputs the repository documents.
#
#   scripts/reproduce_all.sh [results-dir]
#
# Takes ~10 minutes at the paper's 6 trials. Pass --quick through the env:
#   SMILAB_BENCH_FLAGS="--quick" scripts/reproduce_all.sh
set -eu

RESULTS="${1:-results}"
FLAGS="${SMILAB_BENCH_FLAGS:-}"

cmake -B build -G Ninja
cmake --build build

mkdir -p "$RESULTS"

echo "== tests =="
ctest --test-dir build 2>&1 | tee "$RESULTS/test_output.txt" | tail -3

echo "== benches =="
: > "$RESULTS/bench_output.txt"
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name=$(basename "$b")
  echo "===== $name ====="
  { echo "===== $name ====="; "$b" $FLAGS; } >> "$RESULTS/bench_output.txt" 2>&1
done

echo "== figure CSVs =="
./build/bench/fig1_convolve $FLAGS --csv="$RESULTS/fig1" > /dev/null
./build/bench/fig2_unixbench $FLAGS --csv="$RESULTS/fig2" > /dev/null

echo "done; outputs in $RESULTS/"
