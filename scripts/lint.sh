#!/usr/bin/env bash
# Run the lint gate locally: smilint (determinism rules D1-D6) and, when
# available, clang-tidy over the exported compilation database — the same
# two checks the CI `lint` job enforces.
#
#   scripts/lint.sh [--json] [smilint args...]
#
# Environment: BUILD_DIR overrides the build tree (default: <repo>/build).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
cmake --build "$BUILD" --target smilint -j "$(nproc)" >/dev/null

echo "== smilint (tools/smilint/smilint.rules)"
"$BUILD/tools/smilint/smilint" --root "$ROOT" "$@"

TIDY="$(command -v run-clang-tidy || command -v run-clang-tidy-18 || \
        command -v run-clang-tidy-15 || command -v run-clang-tidy-14 || true)"
if [ -n "$TIDY" ] && [ -f "$BUILD/compile_commands.json" ]; then
  echo "== clang-tidy (.clang-tidy, compile_commands.json)"
  "$TIDY" -quiet -p "$BUILD" "$ROOT/(src|bench|tools)/" || {
    echo "clang-tidy reported errors" >&2
    exit 1
  }
else
  echo "== clang-tidy not installed; skipped (CI runs it)"
fi

echo "lint: OK"
