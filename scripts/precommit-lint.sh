#!/usr/bin/env bash
# Fast pre-commit lint: run smilint over the files staged for commit (plus
# the full cross-file pass those files participate in) and refuse the
# commit on any NEW unsuppressed finding. Install as a git hook with:
#
#   ln -s ../../scripts/precommit-lint.sh .git/hooks/pre-commit
#
# The scan honors the committed baseline (tools/smilint/smilint.baseline),
# so pre-existing, deliberately-baselined findings never block a commit —
# only findings your staged change introduces do. Skip once with
# `git commit --no-verify` (CI will still gate).
#
# Environment: BUILD_DIR overrides the build tree (default: <repo>/build).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
SMILINT="$BUILD/tools/smilint/smilint"

# Only C++ sources under the scanned roots matter to smilint.
staged="$(git -C "$ROOT" diff --cached --name-only --diff-filter=ACMR -- \
  'src/**/*.h' 'src/**/*.cpp' 'bench/**/*.h' 'bench/**/*.cpp' \
  'tools/**/*.h' 'tools/**/*.cpp' || true)"
if [ -z "$staged" ]; then
  exit 0
fi

if [ ! -x "$SMILINT" ]; then
  cmake -B "$BUILD" -S "$ROOT" >/dev/null
  cmake --build "$BUILD" --target smilint -j "$(nproc)" >/dev/null
fi

# Cross-file rules (D7 taint, C1 guarded-by) need the whole index, so scan
# the default roots rather than just the staged files: a staged change to a
# helper can create a finding in an unstaged caller, and vice versa.
echo "pre-commit: smilint (staged C++ change detected)"
"$SMILINT" --root "$ROOT" || {
  echo >&2
  echo "pre-commit: smilint found NEW violations (see above)." >&2
  echo "pre-commit: fix them, add a reasoned '// smilint: allow(...)'," >&2
  echo "pre-commit: or bypass once with 'git commit --no-verify'." >&2
  exit 1
}
