// OS interaction cost model: context switches, system calls, pipe
// operations, and the scheduler quantum. These feed the UnixBench workload
// models and the oversubscribed-thread scheduling in the Convolve study.
#pragma once

#include "smilab/time/sim_time.h"

namespace smilab {

struct OsCosts {
  /// Direct cost of a context switch (state save/restore + cache residue).
  SimDuration context_switch = microseconds(3);

  /// Entry/exit cost of a trivial system call (getpid-class).
  SimDuration syscall = nanoseconds(250);

  /// CPU cost of writing or reading a small pipe buffer (one side).
  SimDuration pipe_op = nanoseconds(900);

  /// Round-robin timeslice when a CPU is oversubscribed. Approximates CFS
  /// sched_latency on the paper's kernels.
  SimDuration quantum = milliseconds(6);

  /// Tickless kernel (CONFIG_NO_HZ): no periodic timer interrupt when a
  /// CPU runs a single task. The multithreaded study ran tickless.
  bool tickless = true;

  /// Per-tick kernel overhead when not tickless (1000 Hz kernels).
  SimDuration tick_cost = microseconds(2);
  SimDuration tick_period = milliseconds(1);
};

}  // namespace smilab
