// Runtime Integrity Measurement (RIM) workload model.
//
// The paper's motivation (Section I): security proposals — HyperSentry
// [10], HyperCheck [16], SPECTRE [17] — repurpose SMM to periodically hash
// hypervisor/kernel code from a vantage point malware cannot reach. The
// SMM residency of such a check is set by how many bytes it measures and
// how fast SMM code can hash them; that residency is exactly the "long
// SMI" knob of this library. This header converts a RIM deployment into an
// SmiConfig, so every experiment can be re-run under a concrete security
// policy instead of a synthetic duration band.
#pragma once

#include <algorithm>
#include <cstdint>

#include "smilab/smm/smi_config.h"

namespace smilab {

struct RimConfig {
  /// Bytes measured per check (hypervisor text + static data). SPECTRE
  /// reports checking windows in the tens of MB.
  double scanned_bytes = 16e6;

  /// Hash throughput inside SMM (no caches warm, SMRAM access, often
  /// single-threaded): well below normal memory bandwidth.
  double scan_bandwidth = 1.5e9;

  /// SMI rendezvous + context save/restore + attestation bookkeeping.
  SimDuration fixed_overhead = microseconds(200);

  /// One check every this many jiffies (1 jiffy = 1 ms).
  std::int64_t check_interval_jiffies = 1000;

  /// Residency jitter (fraction) across checks: +-5% by default.
  double duration_jitter = 0.05;

  /// SMM residency of one check.
  [[nodiscard]] SimDuration smm_duration() const {
    return fixed_overhead + seconds_d(scanned_bytes / scan_bandwidth);
  }

  /// Fraction of wall time the platform spends measuring.
  [[nodiscard]] double duty_cycle() const {
    const SimDuration d = smm_duration();
    return d / (d + jiffies(check_interval_jiffies));
  }

  /// Time to cover `total_bytes` of hypervisor state at this policy — the
  /// security-side metric a deployment trades against application slowdown
  /// (scanning less per check detects tampering later).
  [[nodiscard]] SimDuration detection_latency(double total_bytes) const {
    const double checks = std::max(1.0, total_bytes / scanned_bytes);
    return scale(jiffies(check_interval_jiffies) + smm_duration(),
                 checks);
  }

  /// Express this policy as an SMI regime for the injection engine.
  [[nodiscard]] SmiConfig to_smi_config() const {
    SmiConfig smi;
    smi.kind = SmiKind::kLong;  // band is overridden below
    smi.interval_jiffies = check_interval_jiffies;
    const SimDuration d = smm_duration();
    const SimDuration half_band = scale(d, duration_jitter);
    smi.long_min = std::max(SimDuration{1}, d - half_band);
    smi.long_max = d + std::max(SimDuration{1}, half_band);
    return smi;
  }
};

}  // namespace smilab
