#include "smilab/smm/clock_skew.h"

#include <algorithm>

namespace smilab {

ClockSkewReport analyze_clock_skew(const SmmAccounting& acct, int node,
                                   SimTime wall, SimDuration tick_period) {
  ClockSkewReport report;
  const std::int64_t period = tick_period.ns();
  if (period <= 0 || wall <= SimTime::zero()) return report;
  report.expected_ticks = wall.ns() / period;

  std::int64_t lost = 0;
  for (const SmmInterval& interval : acct.intervals()) {
    if (interval.node != node) continue;
    if (interval.enter >= wall) continue;
    const SimTime end = std::min(interval.exit, wall);
    // Ticks due in (enter, end]: they could not fire. The first tick due
    // after exit is serviced (the deferred wake-up), so it is not lost.
    const std::int64_t first_due = interval.enter.ns() / period + 1;
    const std::int64_t last_due = end.ns() / period;
    if (last_due >= first_due) lost += last_due - first_due + 1;
  }
  report.lost_ticks = lost;
  report.observed_ticks = report.expected_ticks - lost;
  report.tick_clock_behind = SimDuration{lost * period};
  report.skew_fraction =
      static_cast<double>(report.tick_clock_behind.ns()) /
      static_cast<double>(wall.ns());
  return report;
}

}  // namespace smilab
