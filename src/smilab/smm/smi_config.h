// SMI injection configuration, mirroring the paper's blackbox driver knobs.
//
// The driver produces two SMI kinds: "short" (1-3 ms total SMM residency)
// and "long" (100-110 ms), firing one SMI every `interval` jiffies. On the
// paper's systems 1 jiffy = 1 ms. The gap is measured from SMM *exit*: the
// driver re-arms its timer after the handler returns, so at very short
// intervals the machine alternates gap/SMM rather than disappearing
// entirely — this is what bounds the Convolve blow-up at 50 ms gaps.
#pragma once

#include <cstdint>
#include <string>

#include "smilab/time/sim_time.h"

namespace smilab {

/// SMM interval kind, matching the paper's SMM column coding:
/// 0 = none, 1 = short, 2 = long.
enum class SmiKind { kNone = 0, kShort = 1, kLong = 2 };

[[nodiscard]] constexpr const char* to_string(SmiKind kind) {
  switch (kind) {
    case SmiKind::kNone:
      return "none";
    case SmiKind::kShort:
      return "short";
    case SmiKind::kLong:
      return "long";
  }
  return "?";
}

struct SmiConfig {
  SmiKind kind = SmiKind::kNone;

  /// Gap between SMM exit and the next SMI, in jiffies (1 jiffy = 1 ms).
  std::int64_t interval_jiffies = 1000;

  /// Duration bounds per kind; sampled uniformly per SMI like the real
  /// driver's observed 1-3 ms / 100-110 ms TSC measurements.
  SimDuration short_min = milliseconds(1);
  SimDuration short_max = milliseconds(3);
  SimDuration long_min = milliseconds(100);
  SimDuration long_max = milliseconds(110);

  /// If true, all nodes receive SMIs at the same instants (e.g. firmware
  /// synchronized via a management controller). The paper's per-node
  /// drivers are independent, so the default is false; the sync-vs-desync
  /// ablation quantifies how much of the MPI amplification comes from
  /// phase independence.
  bool synchronized_across_nodes = false;

  /// First SMI fires at a random phase within one interval unless >= 0.
  SimDuration fixed_initial_phase = SimDuration{-1};

  /// Re-arm policy. The paper's driver re-arms `interval` after SMM *exit*
  /// (false, the default), which bounds the worst-case availability at
  /// interval/(interval+duration). A timer-driven source that fires every
  /// `interval` from SMM *entry* (true) starves the machine once the
  /// interval drops below the SMM duration — the rearm-policy ablation
  /// quantifies the difference.
  bool rearm_from_entry = false;

  [[nodiscard]] bool enabled() const { return kind != SmiKind::kNone; }
  [[nodiscard]] SimDuration interval() const { return jiffies(interval_jiffies); }
  [[nodiscard]] SimDuration mean_duration() const {
    switch (kind) {
      case SmiKind::kNone:
        return SimDuration::zero();
      case SmiKind::kShort:
        return (short_min + short_max) / 2;
      case SmiKind::kLong:
        return (long_min + long_max) / 2;
    }
    return SimDuration::zero();
  }

  [[nodiscard]] static SmiConfig none() { return SmiConfig{}; }
  /// The MPI study's settings: one SMI per second.
  [[nodiscard]] static SmiConfig short_every_second() {
    SmiConfig cfg;
    cfg.kind = SmiKind::kShort;
    cfg.interval_jiffies = 1000;
    return cfg;
  }
  [[nodiscard]] static SmiConfig long_every_second() {
    SmiConfig cfg;
    cfg.kind = SmiKind::kLong;
    cfg.interval_jiffies = 1000;
    return cfg;
  }
  /// Multithreaded-study sweeps: long SMIs at a configurable gap.
  [[nodiscard]] static SmiConfig long_with_gap(std::int64_t gap_jiffies) {
    SmiConfig cfg;
    cfg.kind = SmiKind::kLong;
    cfg.interval_jiffies = gap_jiffies;
    return cfg;
  }
  [[nodiscard]] static SmiConfig short_with_gap(std::int64_t gap_jiffies) {
    SmiConfig cfg;
    cfg.kind = SmiKind::kShort;
    cfg.interval_jiffies = gap_jiffies;
    return cfg;
  }
};

}  // namespace smilab
