// SMI injection engine: the simulator-side equivalent of the paper's
// "Blackbox SMI" kernel driver [7].
//
// Per node, an independent periodic process: fire an SMI, hold every online
// logical CPU of the node in SMM for a sampled duration (uniform in the
// configured short/long band), then re-arm `interval` jiffies after SMM
// *exit*. Phases are independent across nodes unless
// `synchronized_across_nodes` is set — the phase independence is what
// produces the max-of-N amplification on synchronizing MPI codes.
#pragma once

#include <vector>

#include "smilab/smm/smi_config.h"
#include "smilab/time/rng.h"
#include "smilab/time/sim_time.h"

namespace smilab {

class System;

class SmiController {
 public:
  /// Construct and schedule the first SMIs. `sys` must outlive this.
  SmiController(System& sys, SmiConfig cfg);

  [[nodiscard]] const SmiConfig& config() const { return cfg_; }

  /// Sampled SMM residency for the configured kind (exposed for tests and
  /// the driver-characterization bench).
  [[nodiscard]] SimDuration sample_duration(Rng& rng) const;

  /// Number of SMIs fired so far, summed over nodes.
  [[nodiscard]] std::int64_t fired() const { return fired_; }

 private:
  void arm_node(int node, SimDuration delay);
  void fire_node(int node);
  void arm_all(SimDuration delay);
  void fire_all();

  System& sys_;
  SmiConfig cfg_;
  std::vector<Rng> node_rng_;
  Rng shared_rng_;
  std::int64_t fired_ = 0;
};

}  // namespace smilab
