#include "smilab/smm/smi_controller.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "smilab/sim/system.h"

namespace smilab {

SmiController::SmiController(System& sys, SmiConfig cfg)
    : sys_(sys), cfg_(cfg), shared_rng_(sys.make_rng("smi.shared")) {
  assert(cfg_.enabled());
  assert(cfg_.interval_jiffies > 0);
  const int nodes = sys_.cluster().node_count();
  node_rng_.reserve(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    node_rng_.push_back(sys.make_rng("smi.node." + std::to_string(n)));
  }

  if (cfg_.synchronized_across_nodes) {
    const SimDuration phase =
        cfg_.fixed_initial_phase >= SimDuration::zero()
            ? cfg_.fixed_initial_phase
            : shared_rng_.uniform_duration(SimDuration::zero(), cfg_.interval());
    arm_all(phase);
  } else {
    for (int n = 0; n < nodes; ++n) {
      const SimDuration phase =
          cfg_.fixed_initial_phase >= SimDuration::zero()
              ? cfg_.fixed_initial_phase
              : node_rng_[static_cast<std::size_t>(n)].uniform_duration(
                    SimDuration::zero(), cfg_.interval());
      arm_node(n, phase);
    }
  }
}

SimDuration SmiController::sample_duration(Rng& rng) const {
  switch (cfg_.kind) {
    case SmiKind::kShort:
      return rng.uniform_duration(cfg_.short_min, cfg_.short_max);
    case SmiKind::kLong:
      return rng.uniform_duration(cfg_.long_min, cfg_.long_max);
    case SmiKind::kNone:
      break;
  }
  return SimDuration::zero();
}

void SmiController::arm_node(int node, SimDuration delay) {
  sys_.engine().schedule_after(delay, [this, node] { fire_node(node); });
}

void SmiController::fire_node(int node) {
  if (sys_.node_crashed(node)) return;  // dead silicon: stop firing
  if (sys_.node_fault_frozen(node)) {
    // The injected stall absorbs the SMI (nothing on the node can observe
    // it); keep the periodic source armed for after the fault clears.
    arm_node(node, cfg_.interval());
    return;
  }
  ++fired_;
  const SimTime enter = sys_.now();
  SimDuration residency =
      sample_duration(node_rng_[static_cast<std::size_t>(node)]);
  // The SMI rendezvous pulls every logical processor into SMM; with HTT
  // siblings online there are twice as many contexts to gather and release,
  // so residency stretches proportionally (see SystemConfig).
  if (sys_.node_htt_active(node)) {
    residency = scale(residency, sys_.config().smm_htt_residency_factor);
  }
  sys_.smm_enter(node);
  sys_.engine().schedule_after(residency, [this, node, enter, residency] {
    sys_.smm_exit(node, SmmInterval{node, enter, enter + residency});
    SimDuration delay = cfg_.interval();
    if (cfg_.rearm_from_entry) {
      // Timer-driven firing: the next SMI was due `interval` after entry;
      // if the handler overran that, fire again almost immediately.
      delay = std::max(cfg_.interval() - residency, microseconds(100));
    }
    arm_node(node, delay);
  });
}

void SmiController::arm_all(SimDuration delay) {
  sys_.engine().schedule_after(delay, [this] { fire_all(); });
}

void SmiController::fire_all() {
  const int nodes = sys_.cluster().node_count();
  const SimTime enter = sys_.now();
  const SimDuration residency = sample_duration(shared_rng_);
  // Crashed or fault-frozen nodes sit this broadcast out; remember exactly
  // which nodes entered so the exit pass releases the same set even if
  // fault state changes during the residency.
  std::vector<bool> entered(static_cast<std::size_t>(nodes), false);
  for (int n = 0; n < nodes; ++n) {
    if (sys_.node_crashed(n) || sys_.node_fault_frozen(n)) continue;
    entered[static_cast<std::size_t>(n)] = true;
    ++fired_;
    sys_.smm_enter(n);
  }
  sys_.engine().schedule_after(
      residency, [this, nodes, enter, residency, entered] {
        for (int n = 0; n < nodes; ++n) {
          if (!entered[static_cast<std::size_t>(n)]) continue;
          sys_.smm_exit(n, SmmInterval{n, enter, enter + residency});
        }
        arm_all(cfg_.interval());
      });
}

}  // namespace smilab
