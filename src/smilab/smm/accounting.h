// SMM residency accounting: what the firmware knows, what the OS cannot see.
//
// Mirrors the observable counters on real hardware (MSR_SMI_COUNT, the
// driver's TSC-based residency measurement) and adds the ground truth only
// a simulator has, so the misattribution of SMM time by OS-level tools can
// be quantified exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "smilab/stats/histogram.h"
#include "smilab/stats/online_stats.h"
#include "smilab/time/sim_time.h"

namespace smilab {

/// One completed SMM interval on a node.
struct SmmInterval {
  int node = 0;
  SimTime enter;
  SimTime exit;
  [[nodiscard]] SimDuration duration() const { return exit - enter; }
};

/// Per-node and global SMM residency bookkeeping.
class SmmAccounting {
 public:
  explicit SmmAccounting(int node_count)
      : per_node_count_(static_cast<std::size_t>(node_count), 0),
        per_node_residency_(static_cast<std::size_t>(node_count),
                            SimDuration::zero()) {}

  void record(const SmmInterval& interval) {
    intervals_.push_back(interval);
    per_node_count_[static_cast<std::size_t>(interval.node)] += 1;
    per_node_residency_[static_cast<std::size_t>(interval.node)] +=
        interval.duration();
    duration_stats_.add(interval.duration().seconds());
  }

  /// MSR_SMI_COUNT equivalent for one node.
  [[nodiscard]] std::int64_t smi_count(int node) const {
    return per_node_count_.at(static_cast<std::size_t>(node));
  }
  [[nodiscard]] SimDuration residency(int node) const {
    return per_node_residency_.at(static_cast<std::size_t>(node));
  }
  [[nodiscard]] std::int64_t total_smi_count() const {
    return static_cast<std::int64_t>(intervals_.size());
  }
  [[nodiscard]] const std::vector<SmmInterval>& intervals() const {
    return intervals_;
  }
  [[nodiscard]] const OnlineStats& duration_stats() const {
    return duration_stats_;
  }

  /// BIOSBITS warns when any single SMM interval exceeds 150 us [15].
  /// Returns the number of violating intervals.
  [[nodiscard]] std::int64_t biosbits_violations(
      SimDuration threshold = microseconds(150)) const {
    std::int64_t n = 0;
    for (const auto& iv : intervals_) n += iv.duration() > threshold ? 1 : 0;
    return n;
  }

  /// Latency histogram in milliseconds (for the driver characterization).
  [[nodiscard]] Histogram duration_histogram_ms(double hi_ms = 120.0) const {
    Histogram h{0.0, hi_ms, 120};
    for (const auto& iv : intervals_) h.add(iv.duration().seconds() * 1e3);
    return h;
  }

 private:
  std::vector<SmmInterval> intervals_;
  std::vector<std::int64_t> per_node_count_;
  std::vector<SimDuration> per_node_residency_;
  OnlineStats duration_stats_;
};

}  // namespace smilab
