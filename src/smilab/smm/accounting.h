// SMM residency accounting: what the firmware knows, what the OS cannot see.
//
// Mirrors the observable counters on real hardware (MSR_SMI_COUNT, the
// driver's TSC-based residency measurement) and adds the ground truth only
// a simulator has, so the misattribution of SMM time by OS-level tools can
// be quantified exactly.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "smilab/stats/histogram.h"
#include "smilab/stats/online_stats.h"
#include "smilab/time/sim_time.h"

namespace smilab {

/// One completed SMM interval on a node.
struct SmmInterval {
  int node = 0;
  SimTime enter;
  SimTime exit;
  [[nodiscard]] SimDuration duration() const { return exit - enter; }
};

/// Per-node and global SMM residency bookkeeping.
///
/// By default every interval is retained (the historical behaviour; the
/// trace renderers and the driver characterization read the full list). For
/// memory-bounded runs, set_ring_capacity keeps only the most recent
/// intervals as a diagnostic window while all aggregate queries — counts,
/// residency, duration stats, BIOSBITS violations, the latency histogram —
/// stay exact: they accumulate online in record(), not from the list.
class SmmAccounting {
 public:
  explicit SmmAccounting(int node_count)
      : per_node_count_(static_cast<std::size_t>(node_count), 0),
        per_node_residency_(static_cast<std::size_t>(node_count),
                            SimDuration::zero()) {}

  /// Keep at most `capacity` recent intervals (0 = retain everything,
  /// the default). Aggregates stay exact either way.
  void set_ring_capacity(std::size_t capacity) { ring_capacity_ = capacity; }

  void record(const SmmInterval& interval) {
    total_ += 1;
    per_node_count_[static_cast<std::size_t>(interval.node)] += 1;
    per_node_residency_[static_cast<std::size_t>(interval.node)] +=
        interval.duration();
    duration_stats_.add(interval.duration().seconds());
    biosbits_count_ += interval.duration() > kBiosbitsThreshold ? 1 : 0;
    hist_ms_.add(interval.duration().seconds() * 1e3);
    intervals_.push_back(interval);
    if (ring_capacity_ > 0 && intervals_.size() > ring_capacity_) {
      // SMI rates are ~1/s per node, so the occasional O(capacity) shift
      // is noise next to the simulation work between SMIs.
      intervals_.erase(intervals_.begin());
    }
  }

  /// MSR_SMI_COUNT equivalent for one node.
  [[nodiscard]] std::int64_t smi_count(int node) const {
    return per_node_count_.at(static_cast<std::size_t>(node));
  }
  [[nodiscard]] SimDuration residency(int node) const {
    return per_node_residency_.at(static_cast<std::size_t>(node));
  }
  [[nodiscard]] std::int64_t total_smi_count() const { return total_; }
  /// Retained intervals: everything ever recorded in the default mode, the
  /// most recent ring_capacity in bounded mode (a trace window).
  [[nodiscard]] const std::vector<SmmInterval>& intervals() const {
    return intervals_;
  }
  [[nodiscard]] const OnlineStats& duration_stats() const {
    return duration_stats_;
  }

  /// BIOSBITS warns when any single SMM interval exceeds 150 us [15].
  /// Returns the number of violating intervals.
  [[nodiscard]] std::int64_t biosbits_violations(
      SimDuration threshold = kBiosbitsThreshold) const {
    if (threshold == kBiosbitsThreshold) return biosbits_count_;
    // Non-default thresholds scan the retained list, which is only the
    // full history when the ring is unbounded.
    assert(ring_capacity_ == 0 ||
           intervals_.size() == static_cast<std::size_t>(total_));
    std::int64_t n = 0;
    for (const auto& iv : intervals_) n += iv.duration() > threshold ? 1 : 0;
    return n;
  }

  /// Latency histogram in milliseconds (for the driver characterization).
  [[nodiscard]] Histogram duration_histogram_ms(double hi_ms = kHistHiMs) const {
    if (hi_ms == kHistHiMs) return hist_ms_;
    assert(ring_capacity_ == 0 ||
           intervals_.size() == static_cast<std::size_t>(total_));
    Histogram h{0.0, hi_ms, 120};
    for (const auto& iv : intervals_) h.add(iv.duration().seconds() * 1e3);
    return h;
  }

  static constexpr SimDuration kBiosbitsThreshold = microseconds(150);
  static constexpr double kHistHiMs = 120.0;

 private:
  std::vector<SmmInterval> intervals_;
  std::size_t ring_capacity_ = 0;  // 0 = unbounded
  std::int64_t total_ = 0;
  std::int64_t biosbits_count_ = 0;
  std::vector<std::int64_t> per_node_count_;
  std::vector<SimDuration> per_node_residency_;
  OnlineStats duration_stats_;
  Histogram hist_ms_{0.0, kHistHiMs, 120};
};

}  // namespace smilab
