// Timekeeping skew under SMM: tick-counted kernel time vs the invariant
// TSC.
//
// The predecessor study (Delgado & Karavanic, IISWC'13) reports "time
// scaling discrepancies" under SMIs; the mechanism is that periodic-timer
// interrupts cannot fire while the CPUs sit in SMM, so a jiffy/tick-based
// clock silently loses every tick that should have fired inside an SMM
// interval (on one-shot tickless kernels the deferred timer fires once,
// losing the remainder). The TSC keeps counting. Any software that mixes
// the two time bases — interval timers, process accounting, profilers
// sampling on the tick — drifts by exactly the lost-tick time.
//
// This analyzer reconstructs both clocks for a finished run from the SMM
// interval record.
#pragma once

#include <cstdint>

#include "smilab/smm/accounting.h"
#include "smilab/time/sim_time.h"

namespace smilab {

struct ClockSkewReport {
  std::int64_t expected_ticks = 0;  ///< wall / tick period
  std::int64_t observed_ticks = 0;  ///< ticks that actually fired
  std::int64_t lost_ticks = 0;
  SimDuration tick_clock_behind{};  ///< how far the jiffy clock lags the TSC
  double skew_fraction = 0.0;       ///< lag / wall
};

/// Reconstruct the tick-clock lag over [0, wall] on `node`, for a periodic
/// timer of `tick_period`. Each SMM interval swallows the ticks that were
/// due while the node was frozen, except the one serviced at SMM exit
/// (the deferred wake-up).
[[nodiscard]] ClockSkewReport analyze_clock_skew(const SmmAccounting& acct,
                                                 int node, SimTime wall,
                                                 SimDuration tick_period);

}  // namespace smilab
