// Simulator workload model for the Convolve study (Figure 1).
//
// The measured cache behaviour (access_stream.h) turns the convolution into
// per-thread work: refs x avg-latency-per-ref / clock. The experiment spawns
// the paper's 24 threads over 1-8 online logical CPUs and injects long SMIs
// at a configurable gap; execution time falls out of the simulation.
#pragma once

#include <cstdint>

#include "smilab/apps/convolve/access_stream.h"
#include "smilab/cpu/workload_profile.h"
#include "smilab/smm/smi_config.h"
#include "smilab/time/sim_time.h"

namespace smilab {

struct ConvolveWorkload {
  ConvolveConfig config;
  CacheMeasurement cache;   ///< measured through the hierarchy model
  WorkloadProfile profile;  ///< HTT/refill behaviour derived from the miss profile
  int threads = 24;         ///< the paper limits Convolve to 24 threads
  int repeats = 1;          ///< passes over the image (extends the run)

  /// Total compute demand across all threads, in seconds of one nominal core.
  [[nodiscard]] double total_work_seconds(double ghz) const {
    return static_cast<double>(config.total_refs()) * cache.avg_latency_cycles /
           (ghz * 1e9) * repeats;
  }

  /// The paper's two configurations with their measured cache behaviour.
  /// `repeats` chosen so a single-CPU run takes tens of seconds, long
  /// enough to average several SMI periods at every swept gap.
  static ConvolveWorkload cache_friendly_workload();
  static ConvolveWorkload cache_unfriendly_workload();
};

struct ConvolveRunResult {
  double seconds = 0.0;           ///< wall time of the threaded region
  double smm_stolen_seconds = 0.0;
  std::int64_t smi_hits = 0;
};

/// Run the workload on an E5620 node with `online_cpus` logical CPUs (the
/// paper's sysfs sweep: 1-4 = physical cores, 5-8 add HTT siblings) under
/// the given SMI regime.
ConvolveRunResult run_convolve_sim(const ConvolveWorkload& workload,
                                   int online_cpus, const SmiConfig& smi,
                                   std::uint64_t seed);

}  // namespace smilab
