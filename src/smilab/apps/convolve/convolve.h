// The paper's multithreaded application kernel: 2-D convolution (Section
// IV.B). Given an NxN image P and an MxM kernel Q (M odd), R = P * Q with
// zero padding at the borders. The parallel version splits R into blocks
// and assigns each block to a thread; blocks share only read-only inputs,
// so there is no locking.
//
// This header provides the *real* computation (used by tests and the
// host-side verification example) plus block decomposition helpers shared
// with the access-stream replay and the simulator workload model.
#pragma once

#include <cstdint>
#include <vector>

namespace smilab {

/// Row-major float image.
class Image {
 public:
  Image(int width, int height) : width_(width), height_(height),
        data_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height), 0.0f) {}

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] float at(int x, int y) const {
    return data_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(x)];
  }
  float& at(int x, int y) {
    return data_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(x)];
  }
  [[nodiscard]] std::size_t pixel_count() const { return data_.size(); }

 private:
  int width_;
  int height_;
  std::vector<float> data_;
};

/// Square convolution kernel with odd side length.
class Kernel {
 public:
  explicit Kernel(int size);

  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] int radius() const { return size_ / 2; }
  [[nodiscard]] float at(int i, int j) const {
    return weights_[static_cast<std::size_t>(j) * static_cast<std::size_t>(size_) +
                    static_cast<std::size_t>(i)];
  }
  float& at(int i, int j) {
    return weights_[static_cast<std::size_t>(j) * static_cast<std::size_t>(size_) +
                    static_cast<std::size_t>(i)];
  }

  /// Normalized Gaussian blur kernel (the paper simulates a Gaussian
  /// filter over an image).
  static Kernel gaussian(int size, double sigma = 0.0);

 private:
  int size_;
  std::vector<float> weights_;
};

/// Deterministic pseudo-random test image.
Image make_test_image(int width, int height, std::uint64_t seed);

/// Single-threaded reference convolution (zero padding outside P).
Image convolve_reference(const Image& input, const Kernel& kernel);

/// Convolve only the block [x0, x0+w) x [y0, y0+h) of the output.
void convolve_block(const Image& input, const Kernel& kernel, Image& output,
                    int x0, int y0, int w, int h);

/// Real multithreaded convolution: split the output into block_w x block_h
/// tiles and process them with `threads` std::threads pulling from a shared
/// atomic work index. Matches the reference result exactly.
Image convolve_threaded(const Image& input, const Kernel& kernel, int block_w,
                        int block_h, int threads);

/// A tile of the output assigned to a worker.
struct Block {
  int x0 = 0;
  int y0 = 0;
  int w = 0;
  int h = 0;
};

/// Decompose a width x height output into block_w x block_h tiles
/// (right/bottom edge tiles may be smaller).
std::vector<Block> decompose_blocks(int width, int height, int block_w,
                                    int block_h);

/// True when the kernel is (numerically) an outer product of a column and a
/// row vector — Gaussian kernels always are.
[[nodiscard]] bool is_separable(const Kernel& kernel, float tol = 1e-6f);

/// Separable convolution: factor the kernel into row/column passes,
/// reducing per-pixel work from O(M^2) to O(M). Only valid for separable
/// kernels; matches convolve_reference away from rounding. This is the
/// optimization an image pipeline would actually ship — and the reason the
/// paper's CacheFriendly configuration (61x61 Gaussian) is compute-heavy
/// only if implemented naively.
Image convolve_separable(const Image& input, const Kernel& kernel);

}  // namespace smilab
