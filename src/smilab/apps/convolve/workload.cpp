#include "smilab/apps/convolve/workload.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <vector>

#include "smilab/sim/system.h"
#include "smilab/thread/work_queue.h"

namespace smilab {

namespace {

/// Cache-behaviour measurements are pure functions of the configuration;
/// memoize them so repeated experiment construction stays cheap.
const CacheMeasurement& measured_cf() {
  static const CacheMeasurement m = measure_convolve_cache(
      ConvolveConfig::cache_friendly(), CacheHierarchy::e5620());
  return m;
}
const CacheMeasurement& measured_cu() {
  static const CacheMeasurement m = measure_convolve_cache(
      ConvolveConfig::cache_unfriendly(), CacheHierarchy::e5620());
  return m;
}

}  // namespace

ConvolveWorkload ConvolveWorkload::cache_friendly_workload() {
  ConvolveWorkload w;
  w.config = ConvolveConfig::cache_friendly();
  w.cache = measured_cf();
  w.profile = WorkloadProfile::cache_friendly();
  w.threads = 24;
  // ~3.6s of demand per pass on one 2.4 GHz core; 8 passes ~= 29s solo.
  w.repeats = 8;
  return w;
}

ConvolveWorkload ConvolveWorkload::cache_unfriendly_workload() {
  ConvolveWorkload w;
  w.config = ConvolveConfig::cache_unfriendly();
  w.cache = measured_cu();
  w.profile = WorkloadProfile::cache_unfriendly();
  w.threads = 24;
  // ~10.8s of demand per pass; 3 passes ~= 32s solo.
  w.repeats = 3;
  return w;
}

ConvolveRunResult run_convolve_sim(const ConvolveWorkload& workload,
                                   int online_cpus, const SmiConfig& smi,
                                   std::uint64_t seed) {
  assert(workload.threads >= 1);
  SystemConfig cfg;
  cfg.machine = MachineSpec::poweredge_r410_e5620();
  cfg.node_count = 1;
  cfg.os.tickless = true;  // the multithreaded study ran a tickless kernel
  cfg.smi = smi;
  cfg.seed = seed;
  assert(online_cpus >= 1 && online_cpus <= cfg.machine.logical_cpus());

  System sys{cfg};
  sys.set_online_cpus(online_cpus);

  // The paper's Convolve is a block work queue ("spawning a thread for
  // each" block, 24 scheduled simultaneously): model it as a pull queue of
  // tile-sized work items drained by 24 workers, which load-balances
  // dynamically under SMIs and HTT skew like the real program.
  const double total_work = workload.total_work_seconds(cfg.machine.ghz);
  const double per_thread = total_work / workload.threads;
  const double item_seconds = std::clamp(per_thread / 64.0, 0.002, 0.020);
  const int items = std::max(workload.threads,
                             static_cast<int>(total_work / item_seconds));

  WorkQueueSpec queue;
  queue.name = "convolve";
  queue.node = 0;
  queue.workers = workload.threads;
  queue.profile = workload.profile;
  set_even_items(queue, seconds_d(total_work), items);
  const WorkQueueResult run = run_work_queue(sys, std::move(queue));

  ConvolveRunResult result;
  result.seconds = run.finished.seconds();
  for (const TaskId id : run.workers) {
    const TaskStats& stats = sys.task_stats(id);
    result.smm_stolen_seconds += stats.smm_stolen_time.seconds();
    result.smi_hits += stats.smm_hits;
  }
  return result;
}

}  // namespace smilab
