// Cache-behaviour measurement for Convolve configurations (the paper's
// cachegrind step, Section IV.B).
//
// The paper selected two configurations "experimentally using cachegrind":
// one with ~1% misses (CacheFriendly) and one with ~70% misses
// (CacheUnfriendly), both over ~20M references. We reproduce the selection
// by replaying the convolution's exact data-reference stream through the
// cache hierarchy model. The memory layout and block traversal order are
// part of the configuration: high miss rates require defeating spatial
// locality (padded pixel records + scattered tile order), which is how
// image-processing pipelines with per-pixel records behave.
#pragma once

#include <cstdint>

#include "smilab/apps/convolve/convolve.h"
#include "smilab/cache/cache.h"

namespace smilab {

/// How pixels are laid out in memory for the access-stream replay.
enum class PixelLayout {
  kPackedFloat,   ///< 4-byte floats, row-major (dense array)
  kPaddedRecord,  ///< 64-byte per-pixel records (struct-of-everything style)
};

/// Order in which a worker visits its output tiles/pixels.
enum class Traversal {
  kRowMajor,
  kColumnMajor,
  kScatteredTiles,   ///< pseudo-random tile order (work-queue self-scheduling)
  kScatteredPixels,  ///< pseudo-random pixel order inside each tile: no
                     ///< window reuse between consecutive outputs at all
};

struct ConvolveConfig {
  int image_w = 0;
  int image_h = 0;
  int block_w = 0;
  int block_h = 0;
  int kernel_size = 0;
  PixelLayout layout = PixelLayout::kPackedFloat;
  Traversal traversal = Traversal::kRowMajor;

  /// Paper CF row: 0.5 megapixel image, 4x4 subimages, 61x61 kernel.
  static ConvolveConfig cache_friendly();
  /// Paper CU row: 16 megapixel image, 1 megapixel subimages, 3x3 kernel.
  static ConvolveConfig cache_unfriendly();

  /// Data references per output pixel: 2 loads per MAC plus one store.
  [[nodiscard]] std::int64_t refs_per_output_pixel() const {
    return 2LL * kernel_size * kernel_size + 1;
  }
  [[nodiscard]] std::int64_t output_pixels() const {
    return static_cast<std::int64_t>(image_w) * image_h;
  }
  [[nodiscard]] std::int64_t total_refs() const {
    return output_pixels() * refs_per_output_pixel();
  }
};

struct CacheMeasurement {
  HierarchyStats stats;
  double l1_miss_rate = 0.0;
  double avg_latency_cycles = 0.0;  ///< per data reference
};

/// Replay the convolution access stream (up to `max_refs` references) of
/// `config` through `hierarchy` and report miss behaviour plus the average
/// per-reference latency with Westmere-class level costs.
CacheMeasurement measure_convolve_cache(const ConvolveConfig& config,
                                        CacheHierarchy hierarchy,
                                        std::int64_t max_refs = 20'000'000);

}  // namespace smilab
