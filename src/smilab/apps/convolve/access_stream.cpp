#include "smilab/apps/convolve/access_stream.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <vector>

#include "smilab/time/rng.h"

namespace smilab {

ConvolveConfig ConvolveConfig::cache_friendly() {
  // 0.5 MP image (707x707), 4x4 subimages, 61x61 Gaussian kernel, dense
  // floats: the kernel (~15 KB) plus the sliding image window fit in L1/L2.
  ConvolveConfig cfg;
  cfg.image_w = 707;
  cfg.image_h = 707;
  cfg.block_w = 4;
  cfg.block_h = 4;
  cfg.kernel_size = 61;
  cfg.layout = PixelLayout::kPackedFloat;
  cfg.traversal = Traversal::kRowMajor;
  return cfg;
}

ConvolveConfig ConvolveConfig::cache_unfriendly() {
  // 16 MP image (4000x4000), 1 MP subimages, 3x3 kernel, padded per-pixel
  // records visited in scattered pixel order (fine-grained self-scheduled
  // work queue): consecutive outputs share no cached window, so nearly
  // every image reference and store touches a fresh line and the working
  // set dwarfs every cache level. See EXPERIMENTS.md for how the measured
  // miss rate compares with the paper's cachegrind figure.
  ConvolveConfig cfg;
  cfg.image_w = 4000;
  cfg.image_h = 4000;
  cfg.block_w = 1000;
  cfg.block_h = 1000;
  cfg.kernel_size = 3;
  cfg.layout = PixelLayout::kPaddedRecord;
  cfg.traversal = Traversal::kScatteredPixels;
  return cfg;
}

namespace {

constexpr std::uint64_t kImageBase = 0x1000'0000ULL;
constexpr std::uint64_t kKernelBase = 0x7000'0000ULL;
constexpr std::uint64_t kOutputBase = 0x9000'0000ULL;

struct AddressModel {
  const ConvolveConfig& cfg;
  std::uint64_t pixel_stride;

  explicit AddressModel(const ConvolveConfig& config)
      : cfg(config),
        pixel_stride(config.layout == PixelLayout::kPackedFloat ? 4 : 64) {}

  [[nodiscard]] std::uint64_t image(int x, int y) const {
    return kImageBase +
           (static_cast<std::uint64_t>(y) * static_cast<std::uint64_t>(cfg.image_w) +
            static_cast<std::uint64_t>(x)) * pixel_stride;
  }
  [[nodiscard]] std::uint64_t kernel(int i, int j) const {
    return kKernelBase +
           (static_cast<std::uint64_t>(j) * static_cast<std::uint64_t>(cfg.kernel_size) +
            static_cast<std::uint64_t>(i)) * 4;  // kernel is always dense
  }
  [[nodiscard]] std::uint64_t output(int x, int y) const {
    return kOutputBase +
           (static_cast<std::uint64_t>(y) * static_cast<std::uint64_t>(cfg.image_w) +
            static_cast<std::uint64_t>(x)) * pixel_stride;
  }
};

}  // namespace

CacheMeasurement measure_convolve_cache(const ConvolveConfig& config,
                                        CacheHierarchy hierarchy,
                                        std::int64_t max_refs) {
  assert(config.kernel_size % 2 == 1);
  const AddressModel addr{config};
  const int r = config.kernel_size / 2;

  std::vector<Block> blocks =
      decompose_blocks(config.image_w, config.image_h, config.block_w,
                       config.block_h);
  if (config.traversal == Traversal::kScatteredTiles ||
      config.traversal == Traversal::kScatteredPixels) {
    // Deterministic Fisher-Yates shuffle: models dynamic self-scheduling,
    // where successive tiles a worker grabs are far apart in the image.
    Rng rng{0xC0FFEE};
    for (std::size_t i = blocks.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(blocks[i - 1], blocks[j]);
    }
  }

  std::int64_t refs = 0;
  hierarchy.reset_stats();
  auto visit_pixel = [&](int x, int y) {
    for (int dy = -r; dy <= r; ++dy) {
      const int sy = y + dy;
      if (sy < 0 || sy >= config.image_h) continue;
      // The dx loop alternates one image load and one kernel load, both
      // streams contiguous; lower the whole (clipped) row to the batched
      // interleaved replay — bit-identical to the scalar loop, but
      // same-line stretches collapse to counter updates.
      const int dx0 = std::max(-r, -x);
      const int dx1 = std::min(r, config.image_w - 1 - x);
      if (dx0 > dx1) continue;
      const int n = dx1 - dx0 + 1;
      hierarchy.access_interleaved(addr.image(x + dx0, sy), addr.pixel_stride,
                                   addr.kernel(dx0 + r, dy + r), 4, n);
      refs += 2 * n;
    }
    hierarchy.access(addr.output(x, y));
    refs += 1;
  };

  for (const Block& b : blocks) {
    if (refs >= max_refs) break;
    const std::int64_t pixels =
        static_cast<std::int64_t>(b.w) * static_cast<std::int64_t>(b.h);
    if (config.traversal == Traversal::kScatteredPixels) {
      // Visit the tile's pixels in a deterministic uniform-random order —
      // the access pattern of a fine-grained self-scheduled work queue,
      // where successive outputs a worker grabs share no cached window.
      std::vector<std::int64_t> order(static_cast<std::size_t>(pixels));
      std::iota(order.begin(), order.end(), std::int64_t{0});
      // 32-bit modular spatial hash, sign-extended; int arithmetic here
      // overflows for large tiles.
      const std::uint32_t tile_hash =
          static_cast<std::uint32_t>(b.x0) * 73856093u +
          static_cast<std::uint32_t>(b.y0);
      Rng rng{0xBADCACE ^ static_cast<std::uint64_t>(
                              static_cast<std::int32_t>(tile_hash))};
      for (std::size_t i = order.size(); i > 1; --i) {
        const auto j = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
        std::swap(order[i - 1], order[j]);
      }
      for (std::int64_t i = 0; i < pixels && refs < max_refs; ++i) {
        const std::int64_t idx = order[static_cast<std::size_t>(i)];
        visit_pixel(b.x0 + static_cast<int>(idx % b.w),
                    b.y0 + static_cast<int>(idx / b.w));
      }
      continue;
    }
    // Row/column-major sweeps; scattered *tiles* use column-major inside.
    const bool column_major = config.traversal != Traversal::kRowMajor;
    const int outer_n = column_major ? b.w : b.h;
    const int inner_n = column_major ? b.h : b.w;
    for (int o = 0; o < outer_n && refs < max_refs; ++o) {
      for (int i = 0; i < inner_n && refs < max_refs; ++i) {
        visit_pixel(b.x0 + (column_major ? o : i),
                    b.y0 + (column_major ? i : o));
      }
    }
  }

  CacheMeasurement result;
  result.stats = hierarchy.stats();
  result.l1_miss_rate = result.stats.l1_miss_rate();
  // Westmere-class load-to-use costs (cycles): L1 4, L2 10, L3 ~40,
  // memory ~180. The convolve MACs overlap some of this, so these act as
  // effective per-reference costs, not absolute latencies.
  result.avg_latency_cycles =
      hierarchy.average_latency_cycles(1.0, 10.0, 40.0, 180.0);
  return result;
}

}  // namespace smilab
