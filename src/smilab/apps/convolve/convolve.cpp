#include "smilab/apps/convolve/convolve.h"

#include <atomic>
#include <cassert>
#include <cmath>
#include <thread>

#include "smilab/time/rng.h"

namespace smilab {

Kernel::Kernel(int size)
    : size_(size), weights_(static_cast<std::size_t>(size) * static_cast<std::size_t>(size), 0.0f) {
  assert(size >= 1 && size % 2 == 1);
}

Kernel Kernel::gaussian(int size, double sigma) {
  Kernel k{size};
  if (sigma <= 0.0) sigma = static_cast<double>(size) / 6.0;  // common default
  const int r = k.radius();
  double sum = 0.0;
  for (int j = 0; j < size; ++j) {
    for (int i = 0; i < size; ++i) {
      const double dx = i - r;
      const double dy = j - r;
      const double w = std::exp(-(dx * dx + dy * dy) / (2.0 * sigma * sigma));
      k.at(i, j) = static_cast<float>(w);
      sum += w;
    }
  }
  for (int j = 0; j < size; ++j) {
    for (int i = 0; i < size; ++i) {
      k.at(i, j) = static_cast<float>(k.at(i, j) / sum);
    }
  }
  return k;
}

Image make_test_image(int width, int height, std::uint64_t seed) {
  Image img{width, height};
  Rng rng{seed};
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      img.at(x, y) = static_cast<float>(rng.next_double());
    }
  }
  return img;
}

void convolve_block(const Image& input, const Kernel& kernel, Image& output,
                    int x0, int y0, int w, int h) {
  const int r = kernel.radius();
  const int iw = input.width();
  const int ih = input.height();
  for (int y = y0; y < y0 + h; ++y) {
    for (int x = x0; x < x0 + w; ++x) {
      float acc = 0.0f;
      for (int dy = -r; dy <= r; ++dy) {
        const int sy = y + dy;
        if (sy < 0 || sy >= ih) continue;  // zero padding
        for (int dx = -r; dx <= r; ++dx) {
          const int sx = x + dx;
          if (sx < 0 || sx >= iw) continue;
          acc += input.at(sx, sy) * kernel.at(dx + r, dy + r);
        }
      }
      output.at(x, y) = acc;
    }
  }
}

Image convolve_reference(const Image& input, const Kernel& kernel) {
  Image out{input.width(), input.height()};
  convolve_block(input, kernel, out, 0, 0, input.width(), input.height());
  return out;
}

std::vector<Block> decompose_blocks(int width, int height, int block_w,
                                    int block_h) {
  assert(block_w >= 1 && block_h >= 1);
  std::vector<Block> blocks;
  for (int y = 0; y < height; y += block_h) {
    for (int x = 0; x < width; x += block_w) {
      blocks.push_back(Block{x, y, std::min(block_w, width - x),
                             std::min(block_h, height - y)});
    }
  }
  return blocks;
}

namespace {

/// Factor a separable kernel K = col * row^T from its dominant column.
/// Returns false if any entry deviates from the rank-1 reconstruction.
bool factor_kernel(const Kernel& kernel, std::vector<float>& col,
                   std::vector<float>& row, float tol) {
  const int size = kernel.size();
  // Find the column with the largest peak to divide by.
  int ref_i = 0;
  float peak = 0.0f;
  for (int i = 0; i < size; ++i) {
    for (int j = 0; j < size; ++j) {
      if (std::abs(kernel.at(i, j)) > peak) {
        peak = std::abs(kernel.at(i, j));
        ref_i = i;
      }
    }
  }
  if (peak == 0.0f) return false;
  col.resize(static_cast<std::size_t>(size));
  row.resize(static_cast<std::size_t>(size));
  for (int j = 0; j < size; ++j) col[static_cast<std::size_t>(j)] = kernel.at(ref_i, j);
  // Normalize so that col[j0] * row[i] reproduces row j0.
  int ref_j = 0;
  for (int j = 0; j < size; ++j) {
    if (std::abs(col[static_cast<std::size_t>(j)]) >
        std::abs(col[static_cast<std::size_t>(ref_j)]))
      ref_j = j;
  }
  const float pivot = col[static_cast<std::size_t>(ref_j)];
  if (pivot == 0.0f) return false;
  for (int i = 0; i < size; ++i) {
    row[static_cast<std::size_t>(i)] = kernel.at(i, ref_j) / pivot;
  }
  for (int j = 0; j < size; ++j) {
    for (int i = 0; i < size; ++i) {
      const float reconstructed =
          col[static_cast<std::size_t>(j)] * row[static_cast<std::size_t>(i)];
      if (std::abs(reconstructed - kernel.at(i, j)) > tol) return false;
    }
  }
  return true;
}

}  // namespace

bool is_separable(const Kernel& kernel, float tol) {
  std::vector<float> col, row;
  return factor_kernel(kernel, col, row, tol);
}

Image convolve_separable(const Image& input, const Kernel& kernel) {
  std::vector<float> col, row;
  const bool ok = factor_kernel(kernel, col, row, 1e-6f);
  assert(ok && "kernel is not separable");
  (void)ok;
  const int r = kernel.radius();
  const int w = input.width();
  const int h = input.height();
  // Horizontal pass with the row factor.
  Image mid{w, h};
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      float acc = 0.0f;
      for (int dx = -r; dx <= r; ++dx) {
        const int sx = x + dx;
        if (sx < 0 || sx >= w) continue;
        acc += input.at(sx, y) * row[static_cast<std::size_t>(dx + r)];
      }
      mid.at(x, y) = acc;
    }
  }
  // Vertical pass with the column factor.
  Image out{w, h};
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      float acc = 0.0f;
      for (int dy = -r; dy <= r; ++dy) {
        const int sy = y + dy;
        if (sy < 0 || sy >= h) continue;
        acc += mid.at(x, sy) * col[static_cast<std::size_t>(dy + r)];
      }
      out.at(x, y) = acc;
    }
  }
  return out;
}

Image convolve_threaded(const Image& input, const Kernel& kernel, int block_w,
                        int block_h, int threads) {
  assert(threads >= 1);
  Image out{input.width(), input.height()};
  const std::vector<Block> blocks =
      decompose_blocks(input.width(), input.height(), block_w, block_h);
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= blocks.size()) return;
      const Block& b = blocks[i];
      convolve_block(input, kernel, out, b.x0, b.y0, b.w, b.h);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  return out;
}

}  // namespace smilab
