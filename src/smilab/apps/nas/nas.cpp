#include "smilab/apps/nas/nas.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "smilab/mpi/collectives.h"

namespace smilab {

const char* to_string(NasBenchmark bench) {
  switch (bench) {
    case NasBenchmark::kEP:
      return "EP";
    case NasBenchmark::kBT:
      return "BT";
    case NasBenchmark::kFT:
      return "FT";
  }
  return "?";
}

const char* to_string(NasClass cls) {
  switch (cls) {
    case NasClass::kA:
      return "A";
    case NasClass::kB:
      return "B";
    case NasClass::kC:
      return "C";
  }
  return "?";
}

namespace {
constexpr int class_index(NasClass cls) { return static_cast<int>(cls); }
}  // namespace

double nas_serial_work_seconds(NasBenchmark bench, NasClass cls) {
  // Single-rank SMM-0 baselines from Tables 1-3 (pure compute: one rank has
  // no inter-rank communication). FT class C was not measured at one rank;
  // extrapolated from class B by the grid-point ratio (4x points, ~4.05x
  // work including the log-factor of the FFT).
  static constexpr double kEp[3] = {23.12, 92.72, 370.67};
  static constexpr double kBt[3] = {86.87, 369.70, 1585.75};
  static constexpr double kFt[3] = {7.64, 95.48, 386.0};
  switch (bench) {
    case NasBenchmark::kEP:
      return kEp[class_index(cls)];
    case NasBenchmark::kBT:
      return kBt[class_index(cls)];
    case NasBenchmark::kFT:
      return kFt[class_index(cls)];
  }
  return 0.0;
}

int nas_iterations(NasBenchmark bench, NasClass cls) {
  switch (bench) {
    case NasBenchmark::kEP:
      return 1;  // one embarrassingly-parallel phase
    case NasBenchmark::kBT:
      return 200;  // NPB reference niter for A/B/C
    case NasBenchmark::kFT:
      return cls == NasClass::kA ? 6 : 20;  // NPB: A=6, B=20, C=20
  }
  return 1;
}

std::int64_t nas_grid_points(NasBenchmark bench, NasClass cls) {
  switch (bench) {
    case NasBenchmark::kEP: {
      // EP "grid" = number of random pairs: 2^28 / 2^30 / 2^32.
      static constexpr std::int64_t kPairs[3] = {1LL << 28, 1LL << 30, 1LL << 32};
      return kPairs[class_index(cls)];
    }
    case NasBenchmark::kBT: {
      static constexpr std::int64_t kSide[3] = {64, 102, 162};
      const std::int64_t n = kSide[class_index(cls)];
      return n * n * n;
    }
    case NasBenchmark::kFT: {
      static constexpr std::int64_t kPoints[3] = {
          256LL * 256 * 128, 512LL * 256 * 256, 512LL * 512 * 512};
      return kPoints[class_index(cls)];
    }
  }
  return 0;
}

double nas_work_units(NasBenchmark bench, NasClass cls) {
  const auto points = static_cast<double>(nas_grid_points(bench, cls));
  return points * nas_iterations(bench, cls);
}

const char* nas_work_unit_name(NasBenchmark bench) {
  return bench == NasBenchmark::kEP ? "pairs" : "cell updates";
}

double nas_bytes_per_rank(NasBenchmark bench, NasClass cls, int ranks) {
  assert(ranks >= 1);
  const auto points = static_cast<double>(nas_grid_points(bench, cls));
  switch (bench) {
    case NasBenchmark::kEP:
      // EP keeps only small per-rank tallies regardless of class.
      return 64.0 * 1024.0 * 1024.0;
    case NasBenchmark::kBT:
      // 5 solution variables + 5x5 block Jacobians, doubles.
      return points * (5.0 + 15.0) * 8.0 / ranks;
    case NasBenchmark::kFT:
      // u0/u1/u2 complex doubles + real twiddle factors (NPB does the
      // transpose through these arrays; MPI-internal staging is small).
      return points * (3.0 * 16.0 + 8.0) / ranks;
  }
  return 0.0;
}

bool nas_fits_memory(const NasJobSpec& spec, double node_ram_gb) {
  const double usable = node_ram_gb * 0.85 * 1e9;  // OS + filesystem residue
  const double per_node = nas_bytes_per_rank(spec.bench, spec.cls, spec.ranks()) *
                          spec.ranks_per_node;
  return per_node <= usable;
}

bool nas_paper_reports(const NasJobSpec& spec) {
  if (spec.bench == NasBenchmark::kFT && spec.cls == NasClass::kC &&
      spec.ranks_per_node == 1 && spec.nodes <= 2) {
    return false;  // the "-" cells of Table 3
  }
  return true;
}

bool nas_valid_rank_count(NasBenchmark bench, int ranks) {
  if (ranks < 1) return false;
  switch (bench) {
    case NasBenchmark::kEP:
      return true;
    case NasBenchmark::kBT: {
      const int q = static_cast<int>(std::lround(std::sqrt(ranks)));
      return q * q == ranks;
    }
    case NasBenchmark::kFT:
      return is_power_of_two(ranks);
  }
  return false;
}

namespace {

/// One paper table half: [class][node-row] -> {smm0, smm1, smm2}; a
/// negative smm0 marks an unreported cell. Node rows: EP/FT {1,2,4,8,16};
/// BT {1,4,16}.
using PaperHalf3 = double[3][3][3];
using PaperHalf5 = double[3][5][3];

// Table 2: EP, 1 rank per node and 4 ranks per node.
constexpr PaperHalf5 kEp1 = {
    {{23.12, 23.18, 25.66}, {11.69, 11.60, 13.15}, {5.84, 5.80, 6.77},
     {2.92, 2.94, 3.50}, {1.46, 1.47, 2.04}},
    {{92.72, 93.17, 102.50}, {46.35, 46.59, 52.58}, {23.33, 23.28, 26.71},
     {11.67, 11.74, 13.51}, {5.86, 5.90, 7.03}},
    {{370.67, 372.53, 411.19}, {185.10, 185.87, 210.03}, {93.36, 93.34, 106.47},
     {46.90, 47.09, 53.59}, {24.94, 25.16, 28.49}}};
constexpr PaperHalf5 kEp4 = {
    {{5.87, 5.87, 6.47}, {2.93, 2.93, 3.35}, {1.47, 1.47, 1.75},
     {0.73, 0.74, 0.95}, {0.37, 0.42, 0.65}},
    {{23.49, 23.42, 25.97}, {11.71, 11.66, 13.27}, {5.90, 5.93, 6.77},
     {2.96, 2.95, 3.58}, {1.59, 1.49, 2.06}},
    {{93.86, 93.33, 104.00}, {46.96, 46.85, 53.01}, {23.47, 23.48, 28.32},
     {11.78, 12.61, 13.66}, {5.91, 5.90, 7.53}}};

// Table 1: BT.
constexpr PaperHalf3 kBt1 = {
    {{86.87, 86.89, 96.24}, {27.44, 27.57, 39.53}, {48.51, 48.93, 95.23}},
    {{369.70, 369.55, 409.36}, {108.10, 108.58, 148.39}, {123.79, 124.44, 179.56}},
    {{1585.75, 1585.95, 1756.33}, {419.75, 420.67, 537.73}, {336.84, 336.58, 439.49}}};
constexpr PaperHalf3 kBt4 = {
    {{24.89, 24.88, 27.55}, {53.78, 50.93, 64.13}, {103.27, 102.39, 173.93}},
    {{103.44, 103.40, 114.52}, {85.53, 85.31, 108.94}, {173.78, 174.77, 262.97}},
    {{424.39, 424.51, 470.35}, {219.86, 218.90, 281.38}, {402.26, 403.79, 535.67}}};

// Table 3: FT (negative smm0 = the "-" cells).
constexpr PaperHalf5 kFt1 = {
    {{7.64, 7.61, 8.41}, {6.22, 6.21, 7.96}, {4.25, 4.24, 6.05},
     {2.22, 2.22, 4.32}, {6.50, 6.39, 10.43}},
    {{95.48, 95.65, 106.09}, {76.35, 76.31, 91.46}, {51.85, 51.73, 67.24},
     {26.74, 26.74, 41.52}, {82.18, 82.96, 110.93}},
    {{-1, -1, -1}, {-1, -1, -1}, {216.75, 216.58, 264.44},
     {111.31, 111.44, 145.04}, {315.42, 313.81, 419.34}}};
constexpr PaperHalf5 kFt4 = {
    {{2.49, 2.49, 2.78}, {3.34, 3.34, 4.21}, {5.69, 5.49, 6.96},
     {9.51, 9.22, 13.60}, {20.57, 20.51, 28.42}},
    {{31.20, 31.20, 34.53}, {40.46, 40.38, 49.97}, {39.46, 39.65, 52.37},
     {56.19, 58.01, 74.52}, {127.33, 127.28, 157.82}},
    {{135.96, 136.09, 150.59}, {163.06, 165.12, 200.84}, {125.66, 126.34, 163.17},
     {107.47, 107.88, 141.09}, {339.00, 337.92, 412.11}}};

// Tables 4-5: the HTT-on (ht=1) columns, 4 ranks per node only.
constexpr PaperHalf5 kEp4Htt = {
    {{5.81, 5.81, 6.78}, {2.91, 2.93, 3.45}, {1.46, 1.46, 1.77},
     {0.74, 0.74, 0.99}, {0.39, 0.39, 0.88}},
    {{23.30, 23.24, 26.94}, {11.69, 11.70, 13.56}, {5.86, 6.67, 6.85},
     {2.95, 2.94, 3.56}, {1.48, 1.50, 2.14}},
    {{93.24, 93.33, 108.20}, {46.43, 47.18, 53.94}, {23.44, 23.49, 27.39},
     {11.71, 11.76, 13.77}, {5.91, 5.93, 7.58}}};
constexpr PaperHalf5 kFt4Htt = {
    {{2.49, 2.49, 2.89}, {3.33, 3.33, 4.19}, {5.63, 5.28, 6.97},
     {9.78, 9.89, 12.33}, {20.21, 20.10, 25.69}},
    {{31.08, 31.13, 35.94}, {40.41, 40.30, 50.18}, {39.78, 39.41, 48.86},
     {57.09, 56.23, 69.18}, {127.74, 129.95, 154.64}},
    {{135.59, 135.50, 157.04}, {165.57, 164.33, 206.55}, {125.80, 125.57, 160.26},
     {108.15, 106.92, 134.80}, {331.25, 330.41, 392.96}}};

int node_row(NasBenchmark bench, int nodes) {
  if (bench == NasBenchmark::kBT) {
    switch (nodes) {
      case 1: return 0;
      case 4: return 1;
      case 16: return 2;
      default: return -1;
    }
  }
  switch (nodes) {
    case 1: return 0;
    case 2: return 1;
    case 4: return 2;
    case 8: return 3;
    case 16: return 4;
    default: return -1;
  }
}

}  // namespace

std::optional<NasPaperCell> nas_paper_cell(const NasJobSpec& spec) {
  const int ci = class_index(spec.cls);
  const int row = node_row(spec.bench, spec.nodes);
  if (row < 0) return std::nullopt;
  const double* cell = nullptr;
  if (spec.htt) {
    // Tables 4-5 report HTT on only for EP/FT with 4 ranks per node.
    if (spec.ranks_per_node != 4) return std::nullopt;
    if (spec.bench == NasBenchmark::kEP) {
      cell = kEp4Htt[ci][row];
    } else if (spec.bench == NasBenchmark::kFT) {
      cell = kFt4Htt[ci][row];
    } else {
      return std::nullopt;
    }
  } else if (spec.bench == NasBenchmark::kEP) {
    cell = (spec.ranks_per_node == 1 ? kEp1 : kEp4)[ci][row];
  } else if (spec.bench == NasBenchmark::kBT) {
    cell = (spec.ranks_per_node == 1 ? kBt1 : kBt4)[ci][row];
  } else {
    cell = (spec.ranks_per_node == 1 ? kFt1 : kFt4)[ci][row];
  }
  if (cell[0] < 0) return std::nullopt;
  return NasPaperCell{cell[0], cell[1], cell[2]};
}

std::optional<double> nas_paper_baseline(const NasJobSpec& spec) {
  NasJobSpec base = spec;
  base.htt = false;  // baselines come from the HTT-off tables
  const auto cell = nas_paper_cell(base);
  if (!cell) return std::nullopt;
  return cell->smm0;
}

namespace {

/// BT neighbour offsets on the logical torus: +/-1 (x faces), +/-q (y
/// faces), +/-P/2 (z faces of the multi-partition diagonal), deduplicated.
std::vector<int> bt_partner_offsets(int p) {
  std::vector<int> offsets;
  if (p <= 1) return offsets;
  const int q = static_cast<int>(std::lround(std::sqrt(p)));
  const int candidates[] = {1, p - 1, q, p - q, p / 2, p - p / 2};
  for (const int c : candidates) {
    const int off = c % p;
    if (off == 0) continue;
    if (std::find(offsets.begin(), offsets.end(), off) == offsets.end()) {
      offsets.push_back(off);
    }
  }
  return offsets;
}

/// Per-iteration compute, padded by the calibration residual; the pad may
/// be slightly negative but never below zero total work.
SimDuration nas_iter_work(const NasJobSpec& spec, const NasKnob& knob) {
  const double serial = nas_serial_work_seconds(spec.bench, spec.cls);
  const int niter = nas_iterations(spec.bench, spec.cls);
  const SimDuration nominal = seconds_d(serial / spec.ranks() / niter);
  return std::max(nominal + SimDuration{knob.iter_pad_ns},
                  SimDuration::zero());
}

}  // namespace

int nas_chunk_count(const NasJobSpec& spec) {
  switch (spec.bench) {
    case NasBenchmark::kEP:
      return 1;
    case NasBenchmark::kBT:
      return nas_iterations(spec.bench, spec.cls);
    case NasBenchmark::kFT:
      return nas_iterations(spec.bench, spec.cls) + 1;  // checksum epilogue
  }
  return 0;
}

bool emit_nas_chunk(const NasJobSpec& spec, const NasKnob& knob, int chunk,
                    RankProgram& rp, TagAllocator& tags) {
  const int p = spec.ranks();
  assert(rp.nranks() == p);
  if (chunk >= nas_chunk_count(spec)) return false;
  const SimDuration iter_work = nas_iter_work(spec, knob);

  switch (spec.bench) {
    case NasBenchmark::kEP: {
      // One compute phase, then the final tally allreduces: sx/sy sums and
      // the 10-bin Gaussian deviate counts.
      rp.compute(iter_work);
      allreduce(rp, 16, tags);  // sx, sy
      allreduce(rp, 80, tags);  // q[0..9]
      allreduce(rp, 8, tags);   // timer max
      break;
    }
    case NasBenchmark::kBT: {
      const auto offsets = bt_partner_offsets(p);
      const int base_tag = tags.allocate(static_cast<int>(offsets.size()));
      rp.compute(iter_work);
      const int r = rp.rank();
      for (std::size_t k = 0; k < offsets.size(); ++k) {
        const int off = offsets[k];
        const int dst = (r + off) % p;
        const int src = (r - off + p) % p;
        rp.sendrecv(dst, knob.exchange_bytes, base_tag + static_cast<int>(k),
                    src, base_tag + static_cast<int>(k));
      }
      break;
    }
    case NasBenchmark::kFT: {
      if (chunk < nas_iterations(spec.bench, spec.cls)) {
        rp.compute(iter_work);
        alltoall(rp, knob.exchange_bytes, tags);
      } else {
        // Checksum reduction at the end of every run.
        allreduce(rp, 16, tags);
      }
      break;
    }
  }
  return true;
}

std::unique_ptr<ActionSource> make_nas_rank_source(const NasJobSpec& spec,
                                                   const NasKnob& knob,
                                                   int rank) {
  return std::make_unique<ChunkedProgramSource>(
      rank, spec.ranks(),
      [spec, knob](int chunk, RankProgram& rp, TagAllocator& tags) {
        return emit_nas_chunk(spec, knob, chunk, rp, tags);
      });
}

RankSourceFactory make_nas_rank_sources(const NasJobSpec& spec,
                                        const NasKnob& knob) {
  return [spec, knob](int rank) {
    return make_nas_rank_source(spec, knob, rank);
  };
}

std::vector<RankProgram> build_nas_trace(const NasJobSpec& spec,
                                         const NasKnob& knob) {
  const int p = spec.ranks();
  assert(nas_valid_rank_count(spec.bench, p));
  std::vector<RankProgram> programs = make_rank_programs(p);
  // One pass of the chunk emitter per rank; a fresh allocator per rank
  // reproduces the historical shared-allocator tag sequence because every
  // rank advanced it in lockstep.
  for (auto& rp : programs) {
    TagAllocator tags;
    for (int c = 0; emit_nas_chunk(spec, knob, c, rp, tags); ++c) {
    }
  }
  return programs;
}

}  // namespace smilab
