// NAS cell execution: calibration of the communication knob against the
// paper's SMM-0 baseline, then multi-trial runs under each SMI regime.
//
// Calibration contract (see DESIGN.md): per-class compute volume and the
// paper's no-SMI baselines are inputs; everything the tables report under
// SMM 1/2 (the deltas) is produced by the simulation.
#pragma once

#include <cstdint>
#include <optional>

#include "smilab/apps/nas/nas.h"
#include "smilab/mpi/job.h"
#include "smilab/smm/smi_config.h"
#include "smilab/stats/online_stats.h"

namespace smilab {

struct NasRunOptions {
  int trials = 6;                  ///< the paper averaged six runs
  double node_speed_sigma = 0.003; ///< non-SMI run-to-run system noise
  std::uint64_t seed = 2016;
  bool synchronized_smis = false;  ///< ablation knob
  /// Worker threads for independent (regime, trial) sims inside a cell
  /// (and for whole cells in the table builders). 1 = historical serial
  /// path; <=0 = hardware concurrency. Results are byte-identical at any
  /// value: every sim derives from (spec, knob, smi, seed) alone and is
  /// collected in grid order (core/sweep.h).
  int jobs = 1;
  /// Program residency (mpi/job.h): streaming (the default — big grids
  /// hold one chunk per rank, peak RSS O(ranks)) or retained (the
  /// historical whole-program path, still selectable via --retained).
  /// Results are bit-identical either way — the streaming equality suite
  /// pins it, so the golden hashes do not move with this default.
  TraceMode trace_mode = TraceMode::kStreaming;
};

struct NasCellResult {
  NasJobSpec spec;
  std::optional<double> paper_baseline_s;
  NasKnob knob;  ///< calibrated exchange bytes + compute pad
  OnlineStats smm0;       ///< measured seconds, no SMIs
  OnlineStats smm1;       ///< short SMIs @ 1/s
  OnlineStats smm2;       ///< long SMIs @ 1/s

  [[nodiscard]] const OnlineStats& by_kind(SmiKind kind) const {
    switch (kind) {
      case SmiKind::kNone:
        return smm0;
      case SmiKind::kShort:
        return smm1;
      case SmiKind::kLong:
        return smm2;
    }
    return smm0;
  }
};

/// Simulate one run of a cell under the given calibrated knobs.
double simulate_nas_once(const NasJobSpec& spec, const NasKnob& knob,
                         const SmiConfig& smi, std::uint64_t seed,
                         double node_speed_sigma,
                         TraceMode mode = TraceMode::kRetained);

/// Fit the knobs so the simulated no-SMI runtime matches the paper baseline
/// (to ~0.1%): bracketed bisection on the exchange size, then a per-
/// iteration compute pad for the residual. Results are memoized per cell;
/// HTT state does not affect the no-SMI runtime, so both HTT variants share
/// a calibration. Cells the paper does not report use the model's own
/// analytic baseline (compute split plus physical network volume).
NasKnob calibrate_nas_knob(const NasJobSpec& spec);

/// Calibrate and measure a cell under SMM 0/1/2.
NasCellResult run_nas_cell(const NasJobSpec& spec, const NasRunOptions& options);

}  // namespace smilab
