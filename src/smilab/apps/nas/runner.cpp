#include "smilab/apps/nas/runner.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <mutex>
#include <tuple>

#include "smilab/core/sweep.h"
#include "smilab/mpi/job.h"
#include "smilab/sim/system.h"

namespace smilab {

double simulate_nas_once(const NasJobSpec& spec, const NasKnob& knob,
                         const SmiConfig& smi, std::uint64_t seed,
                         double node_speed_sigma, TraceMode mode) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.node_count = spec.nodes;
  cfg.net = NetworkParams::wyeast();
  cfg.smi = smi;
  cfg.seed = seed;
  cfg.node_speed_sigma = node_speed_sigma;
  System sys{cfg};
  sys.set_online_cpus(spec.htt ? cfg.machine.logical_cpus()
                               : cfg.machine.cores());

  const auto placement = block_placement(spec.ranks(), spec.ranks_per_node);
  const std::string name =
      std::string(to_string(spec.bench)) + "." + to_string(spec.cls);
  if (mode == TraceMode::kStreaming) {
    const MpiJobResult result = run_mpi_job_streaming(
        sys, spec.ranks(), make_nas_rank_sources(spec, knob), placement,
        WorkloadProfile::dense_fp(), name);
    return result.elapsed.seconds();
  }
  auto programs = build_nas_trace(spec, knob);
  const MpiJobResult result = run_mpi_job(
      sys, std::move(programs), placement, WorkloadProfile::dense_fp(), name);
  return result.elapsed.seconds();
}

namespace {

std::int64_t physical_exchange_bytes(const NasJobSpec& spec) {
  const auto points = static_cast<double>(nas_grid_points(spec.bench, spec.cls));
  const int p = spec.ranks();
  switch (spec.bench) {
    case NasBenchmark::kEP:
      return 0;
    case NasBenchmark::kBT: {
      // A face of the per-rank subdomain: 5 doubles per cell.
      const double side = std::cbrt(points);
      const double q = std::sqrt(static_cast<double>(p));
      return static_cast<std::int64_t>(side * side / q * 5.0 * 8.0);
    }
    case NasBenchmark::kFT:
      // Transpose: each rank sends grid/p^2 complex doubles to each peer.
      return static_cast<std::int64_t>(points * 16.0 /
                                       (static_cast<double>(p) * p));
  }
  return 0;
}

NasKnob calibrate_uncached(const NasJobSpec& spec) {
  const int p = spec.ranks();
  const int niter = nas_iterations(spec.bench, spec.cls);
  const double compute = nas_serial_work_seconds(spec.bench, spec.cls) / p;
  const auto paper = nas_paper_baseline(spec);

  const auto runtime = [&](NasKnob knob) {
    return simulate_nas_once(spec, knob, SmiConfig::none(), 1, 0.0);
  };
  const auto pad_residual = [&](NasKnob knob, double target) {
    // The pad enters the runtime additively (one pad per iteration on the
    // critical path), so one probe pins it down exactly.
    const double t = runtime(knob);
    const double per_iter = (target - t) / niter;
    knob.iter_pad_ns = static_cast<std::int64_t>(per_iter * 1e9);
    // Never drive the per-iteration compute negative.
    const auto floor_ns =
        -static_cast<std::int64_t>(compute / niter * 1e9) + 1000;
    knob.iter_pad_ns = std::max(knob.iter_pad_ns, floor_ns);
    return knob;
  };

  if (spec.bench == NasBenchmark::kEP) {
    NasKnob knob;
    if (!paper) return knob;
    return pad_residual(knob, *paper);
  }

  if (!paper) {
    // Unreported cell: fall back to the physical message volume.
    return NasKnob{std::max<std::int64_t>(64, physical_exchange_bytes(spec)), 0};
  }

  const double target = *paper;
  if (target <= compute) return pad_residual(NasKnob{1, 0}, target);

  // runtime(bytes) is monotone in bytes (more wire + copy work) but not
  // smooth (NIC queueing, rendezvous threshold), so bracket, bisect in log
  // space, then absorb the residual into the compute pad.
  std::int64_t lo = 1;
  double t_lo = runtime(NasKnob{lo, 0});
  if (t_lo >= target) return pad_residual(NasKnob{lo, 0}, target);
  std::int64_t hi =
      std::max<std::int64_t>(4096, physical_exchange_bytes(spec) / 4);
  double t_hi = runtime(NasKnob{hi, 0});
  while (t_hi < target && hi < (1LL << 33)) {
    lo = hi;
    t_lo = t_hi;
    hi *= 4;
    t_hi = runtime(NasKnob{hi, 0});
  }
  for (int iter = 0; iter < 20 && hi - lo > 1; ++iter) {
    const auto mid = static_cast<std::int64_t>(
        std::sqrt(static_cast<double>(lo) * static_cast<double>(hi)));
    if (mid <= lo || mid >= hi) break;
    const double t_mid = runtime(NasKnob{mid, 0});
    if (std::abs(t_mid - target) <= 0.002 * target) {
      return pad_residual(NasKnob{mid, 0}, target);
    }
    if (t_mid < target) {
      lo = mid;
      t_lo = t_mid;
    } else {
      hi = mid;
      t_hi = t_mid;
    }
  }
  // Prefer the under-shooting end so the pad stays non-negative.
  return pad_residual(NasKnob{lo, 0}, target);
}

}  // namespace

NasKnob calibrate_nas_knob(const NasJobSpec& spec) {
  using Key = std::tuple<int, int, int, int>;
  // The memo is shared across concurrently swept cells; calibration itself
  // runs outside the lock (it is a pure function of the spec, so a rare
  // duplicate computation by two first-comers yields the same knob).
  static std::mutex mu;
  static std::map<Key, NasKnob> cache;
  const Key key{static_cast<int>(spec.bench), static_cast<int>(spec.cls),
                spec.nodes, spec.ranks_per_node};
  {
    const std::lock_guard<std::mutex> lock{mu};
    const auto it = cache.find(key);
    if (it != cache.end()) return it->second;
  }
  NasJobSpec base = spec;
  base.htt = false;  // HTT does not change the no-SMI runtime
  const NasKnob knob = calibrate_uncached(base);
  const std::lock_guard<std::mutex> lock{mu};
  return cache.emplace(key, knob).first->second;
}

NasCellResult run_nas_cell(const NasJobSpec& spec, const NasRunOptions& options) {
  NasCellResult result;
  result.spec = spec;
  result.paper_baseline_s = nas_paper_baseline(spec);
  result.knob = calibrate_nas_knob(spec);

  const SmiConfig configs[3] = {SmiConfig::none(), SmiConfig::short_every_second(),
                                SmiConfig::long_every_second()};
  OnlineStats* stats[3] = {&result.smm0, &result.smm1, &result.smm2};
  // The 3 x trials sims are independent once the knob is fixed: fan them
  // across the sweep pool, then fold into the per-regime stats in the same
  // (regime, trial) order the serial loop used — byte-identical results.
  const ExperimentSweep sweep{options.jobs};
  const std::vector<double> seconds = sweep.map<double>(
      3 * options.trials, [&](int i) {
        const int k = i / options.trials;
        const int trial = i % options.trials;
        SmiConfig smi = configs[k];
        smi.synchronized_across_nodes = options.synchronized_smis;
        const std::uint64_t seed =
            options.seed * 2654435761u + static_cast<std::uint64_t>(k) * 97 +
            static_cast<std::uint64_t>(trial) * 1013904223u + (spec.htt ? 7 : 0);
        return simulate_nas_once(spec, result.knob, smi, seed,
                                 options.node_speed_sigma, options.trace_mode);
      });
  for (int k = 0; k < 3; ++k) {
    for (int trial = 0; trial < options.trials; ++trial) {
      stats[k]->add(seconds[static_cast<std::size_t>(k * options.trials + trial)]);
    }
  }
  return result;
}

}  // namespace smilab
