// NAS Parallel Benchmark workload models: EP, BT, FT (the paper's MPI
// study, Section III).
//
// Each benchmark is modelled by its real iteration/communication structure:
//   EP — embarrassingly parallel: one big compute, then small allreduces.
//   BT — block tri-diagonal: 200 iterations of compute + neighbour
//        exchanges on a logical torus (multi-partition face traffic).
//   FT — 3-D FFT: niter iterations of compute + a full all-to-all
//        transpose.
//
// Compute volume comes from the paper's single-rank baselines; the per-
// message exchange size is a calibration knob fitted so the simulated
// no-SMI runtime reproduces the paper's SMM-0 column (see runner.h). The
// SMI deltas are then emergent, not fitted.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "smilab/mpi/program.h"
#include "smilab/mpi/streaming.h"

namespace smilab {

enum class NasBenchmark { kEP, kBT, kFT };
enum class NasClass { kA, kB, kC };

[[nodiscard]] const char* to_string(NasBenchmark bench);
[[nodiscard]] const char* to_string(NasClass cls);

/// One cell of the paper's tables: a benchmark at a class, run on `nodes`
/// nodes with 1 or 4 ranks per node (the tables' "MPI rks" column counts
/// nodes; total ranks = nodes * ranks_per_node).
struct NasJobSpec {
  NasBenchmark bench = NasBenchmark::kEP;
  NasClass cls = NasClass::kA;
  int nodes = 1;
  int ranks_per_node = 1;
  bool htt = false;  ///< HTT siblings online on every node

  [[nodiscard]] int ranks() const { return nodes * ranks_per_node; }
};

/// Serial compute work (seconds on one Wyeast core), from the paper's
/// 1-rank SMM-0 baselines (FT class C extrapolated from B by grid ratio).
[[nodiscard]] double nas_serial_work_seconds(NasBenchmark bench, NasClass cls);

/// Timed iterations (NPB reference values: BT 200; FT 6/20/20; EP is a
/// single phase).
[[nodiscard]] int nas_iterations(NasBenchmark bench, NasClass cls);

/// Grid points of the class problem (for the FT memory-footprint model).
[[nodiscard]] std::int64_t nas_grid_points(NasBenchmark bench, NasClass cls);

/// "Work completed" units for the benchmark's throughput metric (the paper
/// records time, work completed, and Mop/s): EP counts random pairs
/// processed, BT and FT count cell updates (grid points x timed
/// iterations). Mop/s = this / elapsed / 1e6.
[[nodiscard]] double nas_work_units(NasBenchmark bench, NasClass cls);

/// Short label for the work unit ("pairs", "cell updates").
[[nodiscard]] const char* nas_work_unit_name(NasBenchmark bench);

/// Estimated resident bytes per rank (arrays + communication buffers).
[[nodiscard]] double nas_bytes_per_rank(NasBenchmark bench, NasClass cls,
                                        int ranks);

/// Whether the job fits in node memory (the constraint that gates large FT
/// configurations on 12 GB nodes).
[[nodiscard]] bool nas_fits_memory(const NasJobSpec& spec, double node_ram_gb);

/// Whether the paper reports this cell. FT class C on 1-2 nodes with one
/// rank per node appears as "-" in Table 3 (runs of ~25 minutes x 6 trials
/// x 3 SMM settings were evidently not measured); we mirror the table.
[[nodiscard]] bool nas_paper_reports(const NasJobSpec& spec);

/// Calibrated workload knobs for one cell (see runner.h): the exchange
/// payload reproduces the communication share of the paper baseline, and a
/// small per-iteration compute pad absorbs the residual the discrete
/// network model cannot hit exactly (rendezvous-threshold jumps).
struct NasKnob {
  std::int64_t exchange_bytes = 0;  ///< per message (BT) / per pair (FT)
  std::int64_t iter_pad_ns = 0;     ///< added to each iteration's compute
};

/// Build the per-rank traces for a cell under the given knobs (retained
/// mode; loops emit_nas_chunk per rank, so retained and streaming programs
/// are the same sequence by construction).
[[nodiscard]] std::vector<RankProgram> build_nas_trace(const NasJobSpec& spec,
                                                       const NasKnob& knob);

/// Number of streaming chunks in a cell's per-rank program: EP is a single
/// phase; BT one chunk per iteration; FT one per iteration plus the
/// checksum-allreduce epilogue.
[[nodiscard]] int nas_chunk_count(const NasJobSpec& spec);

/// Append chunk `chunk` (0-based) of rank `rp.rank()`'s program to `rp`,
/// advancing that rank's private tag stream. Returns false (appending
/// nothing) once `chunk` is past nas_chunk_count. Every rank's allocator
/// advances in lockstep, so per-rank tag sequences match the retained
/// shared-allocator build exactly.
[[nodiscard]] bool emit_nas_chunk(const NasJobSpec& spec, const NasKnob& knob,
                                  int chunk, RankProgram& rp,
                                  TagAllocator& tags);

/// Streaming source for one rank: a ChunkedProgramSource over
/// emit_nas_chunk, holding one iteration's actions at a time.
[[nodiscard]] std::unique_ptr<ActionSource> make_nas_rank_source(
    const NasJobSpec& spec, const NasKnob& knob, int rank);

/// Factory for run_mpi_job_streaming covering every rank of the cell.
[[nodiscard]] RankSourceFactory make_nas_rank_sources(const NasJobSpec& spec,
                                                      const NasKnob& knob);

/// The paper's measured SMM-0 baseline for a cell, if reported (seconds).
[[nodiscard]] std::optional<double> nas_paper_baseline(const NasJobSpec& spec);

/// A full paper table cell: measured seconds under no/short/long SMIs.
struct NasPaperCell {
  double smm0 = 0.0;
  double smm1 = 0.0;
  double smm2 = 0.0;
  [[nodiscard]] double short_pct() const { return (smm1 / smm0 - 1.0) * 100.0; }
  [[nodiscard]] double long_pct() const { return (smm2 / smm0 - 1.0) * 100.0; }
};

/// Paper values for a cell. `spec.htt` selects between the base tables
/// (1-3, HTT off) and the HTT-on columns of Tables 4-5 (EP/FT with 4 ranks
/// per node only). nullopt for cells the paper does not report.
[[nodiscard]] std::optional<NasPaperCell> nas_paper_cell(const NasJobSpec& spec);

/// BT requires a square rank count, FT a power of two; EP anything.
[[nodiscard]] bool nas_valid_rank_count(NasBenchmark bench, int ranks);

}  // namespace smilab
