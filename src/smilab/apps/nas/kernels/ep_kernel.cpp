#include "smilab/apps/nas/kernels/ep_kernel.h"

#include <cassert>
#include <cmath>

#include "smilab/apps/nas/kernels/npb_random.h"

namespace smilab {

EpResult run_ep_kernel(std::int64_t pairs, std::int64_t first_pair) {
  assert(pairs >= 0 && first_pair >= 0);
  EpResult result;
  NpbRandom rng;
  // Each pair consumes two draws; slices are contiguous in the stream.
  rng.jump(2ull * static_cast<std::uint64_t>(first_pair));
  for (std::int64_t k = 0; k < pairs; ++k) {
    const double x = 2.0 * rng.next() - 1.0;
    const double y = 2.0 * rng.next() - 1.0;
    const double t = x * x + y * y;
    if (t > 1.0) continue;  // outside the unit disk: rejected
    const double factor = std::sqrt(-2.0 * std::log(t) / t);
    const double gx = x * factor;
    const double gy = y * factor;
    result.sx += gx;
    result.sy += gy;
    result.gaussian_pairs += 1;
    const auto annulus =
        static_cast<std::size_t>(std::max(std::fabs(gx), std::fabs(gy)));
    if (annulus < result.q.size()) result.q[annulus] += 1;
  }
  return result;
}

EpResult run_ep_partitioned(std::int64_t total_pairs, int ranks) {
  assert(ranks >= 1);
  EpResult total;
  const std::int64_t per_rank = total_pairs / ranks;
  std::int64_t start = 0;
  for (int r = 0; r < ranks; ++r) {
    const std::int64_t slice =
        r == ranks - 1 ? total_pairs - start : per_rank;
    total.merge(run_ep_kernel(slice, start));
    start += slice;
  }
  return total;
}

}  // namespace smilab
