// Block-tridiagonal solver with 5x5 blocks — the line solve inside NAS BT
// (each spatial line couples 5 flow variables per cell to its neighbours).
//
// Solves A u = r where A is block tridiagonal with sub-diagonal blocks C,
// diagonal blocks D, and super-diagonal blocks E, via block Thomas
// elimination: forward-eliminate with 5x5 inverses, back-substitute.
// Verified against a dense Gaussian elimination of the assembled system.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace smilab {

/// Dense 5x5 block.
struct Block5 {
  std::array<std::array<double, 5>, 5> m{};

  [[nodiscard]] static Block5 identity();
  [[nodiscard]] static Block5 zero() { return Block5{}; }

  [[nodiscard]] Block5 operator*(const Block5& other) const;
  [[nodiscard]] Block5 operator-(const Block5& other) const;
  [[nodiscard]] std::array<double, 5> apply(const std::array<double, 5>& v) const;

  /// Inverse via Gauss-Jordan with partial pivoting. Asserts invertibility
  /// (BT's blocks are diagonally dominant by construction).
  [[nodiscard]] Block5 inverse() const;
};

/// One block-tridiagonal line system of `n` cells.
struct BlockTriSystem {
  std::vector<Block5> sub;    ///< C_i, i in [1, n) (sub[0] unused)
  std::vector<Block5> diag;   ///< D_i, i in [0, n)
  std::vector<Block5> super;  ///< E_i, i in [0, n-1) (super[n-1] unused)
  std::vector<std::array<double, 5>> rhs;

  [[nodiscard]] std::size_t cells() const { return diag.size(); }

  /// Deterministic diagonally-dominant random system (tests, demos).
  static BlockTriSystem random(std::size_t n, std::uint64_t seed);
};

/// Solve in place: returns the solution vector per cell. O(n) block ops.
std::vector<std::array<double, 5>> solve_block_tridiag(BlockTriSystem system);

/// Residual max-norm ||A u - r||_inf of a candidate solution (verification).
double block_tridiag_residual(const BlockTriSystem& system,
                              const std::vector<std::array<double, 5>>& u);

struct BtReferenceResult {
  std::vector<double> residuals;  ///< global residual after each sweep set
};

/// A BT-shaped reference solver: an n x n x n grid of 5-vectors coupled to
/// its six neighbours, relaxed by alternating-direction line sweeps — each
/// sweep solves every grid line with the block-tridiagonal kernel, exactly
/// the x_solve/y_solve/z_solve structure of NAS BT. Returns the global
/// residual after each iteration; it must decrease geometrically (the
/// property the tests pin).
[[nodiscard]] BtReferenceResult bt_reference_run(int n, int iterations,
                                                 std::uint64_t seed);

}  // namespace smilab
