#include "smilab/apps/nas/kernels/fft.h"

#include <cassert>
#include <cmath>
#include <numbers>

#include "smilab/apps/nas/kernels/npb_random.h"

namespace smilab {

namespace {

[[maybe_unused]] bool power_of_two(std::size_t n) {
  return n > 0 && (n & (n - 1)) == 0;
}

}  // namespace

void fft(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  assert(power_of_two(n));
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    const Complex wlen{std::cos(angle), std::sin(angle)};
    for (std::size_t i = 0; i < n; i += len) {
      Complex w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& value : data) value *= inv_n;
  }
}

std::vector<Complex> naive_dft(std::span<const Complex> data, bool inverse) {
  const std::size_t n = data.size();
  const double sign = inverse ? 1.0 : -1.0;
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = sign * 2.0 * std::numbers::pi *
                           static_cast<double>(k) * static_cast<double>(j) /
                           static_cast<double>(n);
      acc += data[j] * Complex{std::cos(angle), std::sin(angle)};
    }
    out[k] = inverse ? acc / static_cast<double>(n) : acc;
  }
  return out;
}

void Grid3::fill_random(std::uint64_t seed) {
  NpbRandom rng{seed};
  for (auto& value : data_) {
    const double re = rng.next();
    const double im = rng.next();
    value = Complex{re, im};
  }
}

void fft3d(Grid3& grid, bool inverse) {
  const int nx = grid.nx();
  const int ny = grid.ny();
  const int nz = grid.nz();
  // X lines are contiguous.
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      fft(std::span<Complex>{&grid.at(0, y, z), static_cast<std::size_t>(nx)},
          inverse);
    }
  }
  // Y and Z lines via gather/scatter through a scratch buffer (the local
  // half of what the MPI version does with its transpose alltoall).
  std::vector<Complex> line(static_cast<std::size_t>(std::max(ny, nz)));
  for (int z = 0; z < nz; ++z) {
    for (int x = 0; x < nx; ++x) {
      for (int y = 0; y < ny; ++y) line[static_cast<std::size_t>(y)] = grid.at(x, y, z);
      fft(std::span<Complex>{line.data(), static_cast<std::size_t>(ny)}, inverse);
      for (int y = 0; y < ny; ++y) grid.at(x, y, z) = line[static_cast<std::size_t>(y)];
    }
  }
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      for (int z = 0; z < nz; ++z) line[static_cast<std::size_t>(z)] = grid.at(x, y, z);
      fft(std::span<Complex>{line.data(), static_cast<std::size_t>(nz)}, inverse);
      for (int z = 0; z < nz; ++z) grid.at(x, y, z) = line[static_cast<std::size_t>(z)];
    }
  }
}

void ft_evolve(Grid3& grid, double t, double alpha) {
  const int nx = grid.nx();
  const int ny = grid.ny();
  const int nz = grid.nz();
  auto folded = [](int k, int n) {
    return k >= n / 2 ? k - n : k;  // wavenumber in [-n/2, n/2)
  };
  const double factor = -4.0 * alpha * std::numbers::pi * std::numbers::pi * t;
  for (int z = 0; z < nz; ++z) {
    const double kz = folded(z, nz);
    for (int y = 0; y < ny; ++y) {
      const double ky = folded(y, ny);
      for (int x = 0; x < nx; ++x) {
        const double kx = folded(x, nx);
        const double k2 = kx * kx + ky * ky + kz * kz;
        grid.at(x, y, z) *= std::exp(factor * k2);
      }
    }
  }
}

FtReferenceResult ft_reference_run(int nx, int ny, int nz, int timesteps) {
  Grid3 u{nx, ny, nz};
  u.fill_random(NpbRandom::kDefaultSeed);
  fft3d(u);  // to frequency space once; evolve applies per-step decay
  FtReferenceResult result;
  result.checksums.reserve(static_cast<std::size_t>(timesteps));
  for (int step = 1; step <= timesteps; ++step) {
    ft_evolve(u, 1.0);  // advance one time unit per step
    Grid3 snapshot = u;
    fft3d(snapshot, /*inverse=*/true);
    result.checksums.push_back(ft_checksum(snapshot));
  }
  return result;
}

Complex ft_checksum(const Grid3& grid) {
  // NPB FT checksum shape: 1024 strided samples with wrapping indices.
  Complex sum{0.0, 0.0};
  const int nx = grid.nx();
  const int ny = grid.ny();
  const int nz = grid.nz();
  for (int j = 1; j <= 1024; ++j) {
    const int x = j % nx;
    const int y = (3 * j) % ny;
    const int z = (5 * j) % nz;
    sum += grid.at(x, y, z);
  }
  return sum / static_cast<double>(grid.size());
}

}  // namespace smilab
