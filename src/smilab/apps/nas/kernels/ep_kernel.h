// The actual NAS EP (Embarrassingly Parallel) computation: generate pairs
// of uniform deviates with the NPB LCG, accept those inside the unit disk,
// transform them to Gaussian deviates (Marsaglia polar method), and tally
// sums plus the count of deviates in each unit annulus.
//
// This is the real kernel whose runtime the workload model in nas.h
// calibrates; having it executable makes the decomposition property (any
// rank partition produces bit-identical global results) a testable fact
// rather than an assumption.
#pragma once

#include <array>
#include <cstdint>

namespace smilab {

struct EpResult {
  double sx = 0.0;
  double sy = 0.0;
  std::array<std::int64_t, 10> q{};  ///< annulus counts
  std::int64_t gaussian_pairs = 0;

  void merge(const EpResult& other) {
    sx += other.sx;
    sy += other.sy;
    gaussian_pairs += other.gaussian_pairs;
    for (std::size_t i = 0; i < q.size(); ++i) q[i] += other.q[i];
  }
};

/// Process pairs [first_pair, first_pair + pairs) of the global EP stream,
/// exactly as one MPI rank would: jump the generator to the slice, then
/// run the rejection/transform loop.
EpResult run_ep_kernel(std::int64_t pairs, std::int64_t first_pair = 0);

/// Convenience: split `total_pairs` evenly across `ranks` slices and merge
/// (what EP's final allreduces compute).
EpResult run_ep_partitioned(std::int64_t total_pairs, int ranks);

}  // namespace smilab
