#include "smilab/apps/nas/kernels/block_tridiag.h"

#include <cassert>
#include <cmath>

#include "smilab/time/rng.h"

namespace smilab {

Block5 Block5::identity() {
  Block5 block;
  for (int i = 0; i < 5; ++i) block.m[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = 1.0;
  return block;
}

Block5 Block5::operator*(const Block5& other) const {
  Block5 out;
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t k = 0; k < 5; ++k) {
      const double a = m[i][k];
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < 5; ++j) out.m[i][j] += a * other.m[k][j];
    }
  }
  return out;
}

Block5 Block5::operator-(const Block5& other) const {
  Block5 out;
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) out.m[i][j] = m[i][j] - other.m[i][j];
  }
  return out;
}

std::array<double, 5> Block5::apply(const std::array<double, 5>& v) const {
  std::array<double, 5> out{};
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) out[i] += m[i][j] * v[j];
  }
  return out;
}

Block5 Block5::inverse() const {
  // Gauss-Jordan with partial pivoting on [M | I].
  std::array<std::array<double, 10>, 5> aug{};
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) aug[i][j] = m[i][j];
    aug[i][5 + i] = 1.0;
  }
  for (std::size_t col = 0; col < 5; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < 5; ++row) {
      if (std::fabs(aug[row][col]) > std::fabs(aug[pivot][col])) pivot = row;
    }
    assert(std::fabs(aug[pivot][col]) > 1e-12 && "singular 5x5 block");
    std::swap(aug[col], aug[pivot]);
    const double inv_p = 1.0 / aug[col][col];
    for (std::size_t j = 0; j < 10; ++j) aug[col][j] *= inv_p;
    for (std::size_t row = 0; row < 5; ++row) {
      if (row == col) continue;
      const double factor = aug[row][col];
      if (factor == 0.0) continue;
      for (std::size_t j = 0; j < 10; ++j) aug[row][j] -= factor * aug[col][j];
    }
  }
  Block5 out;
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) out.m[i][j] = aug[i][5 + j];
  }
  return out;
}

BlockTriSystem BlockTriSystem::random(std::size_t n, std::uint64_t seed) {
  assert(n >= 1);
  Rng rng{seed};
  BlockTriSystem system;
  system.sub.resize(n);
  system.diag.resize(n);
  system.super.resize(n);
  system.rhs.resize(n);
  auto random_block = [&rng](double scale) {
    Block5 block;
    for (auto& row : block.m) {
      for (auto& value : row) value = rng.uniform(-scale, scale);
    }
    return block;
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) system.sub[i] = random_block(0.2);
    if (i + 1 < n) system.super[i] = random_block(0.2);
    system.diag[i] = random_block(0.3);
    // Diagonal dominance: a strong identity component keeps every pivot
    // block invertible, like BT's implicit operator.
    for (std::size_t d = 0; d < 5; ++d) system.diag[i].m[d][d] += 4.0;
    for (auto& value : system.rhs[i]) value = rng.uniform(-1.0, 1.0);
  }
  return system;
}

std::vector<std::array<double, 5>> solve_block_tridiag(BlockTriSystem system) {
  const std::size_t n = system.cells();
  assert(n >= 1);
  // Forward elimination: D'_i = D_i - C_i D'^-1_{i-1} E_{i-1};
  //                      r'_i = r_i - C_i D'^-1_{i-1} r'_{i-1}.
  std::vector<Block5> diag_inv(n);
  diag_inv[0] = system.diag[0].inverse();
  for (std::size_t i = 1; i < n; ++i) {
    const Block5 factor = system.sub[i] * diag_inv[i - 1];
    system.diag[i] = system.diag[i] - factor * system.super[i - 1];
    const auto adj = factor.apply(system.rhs[i - 1]);
    for (std::size_t d = 0; d < 5; ++d) system.rhs[i][d] -= adj[d];
    diag_inv[i] = system.diag[i].inverse();
  }
  // Back substitution: u_n = D'^-1 r'; u_i = D'^-1 (r'_i - E_i u_{i+1}).
  std::vector<std::array<double, 5>> u(n);
  u[n - 1] = diag_inv[n - 1].apply(system.rhs[n - 1]);
  for (std::size_t i = n - 1; i-- > 0;) {
    const auto carry = system.super[i].apply(u[i + 1]);
    std::array<double, 5> adjusted = system.rhs[i];
    for (std::size_t d = 0; d < 5; ++d) adjusted[d] -= carry[d];
    u[i] = diag_inv[i].apply(adjusted);
  }
  return u;
}

namespace {

// The model problem: A u = b on an n^3 grid of 5-vectors with
//   A = D_c on the diagonal and -c*R on each of the six neighbour links,
// where R is a fixed mixing matrix coupling the 5 components and
// D_c = (1 + 6c)I + c*R keeps every line system strictly dominant.
constexpr double kCoupling = 0.12;

Block5 mixing_block() {
  // A fixed rotation-flavoured mixer: symmetric, spectral radius <= 1.
  Block5 r;
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      r.m[i][j] = i == j ? 0.6 : 0.1;
    }
  }
  return r;
}

Block5 scaled(const Block5& block, double factor) {
  Block5 out;
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) out.m[i][j] = block.m[i][j] * factor;
  }
  return out;
}

struct BtGrid {
  int n;
  std::vector<std::array<double, 5>> values;  // (z*n + y)*n + x

  std::array<double, 5>& at(int x, int y, int z) {
    return values[static_cast<std::size_t>((z * n + y) * n + x)];
  }
  [[nodiscard]] const std::array<double, 5>& at(int x, int y, int z) const {
    return const_cast<BtGrid*>(this)->at(x, y, z);
  }
};

void accumulate(std::array<double, 5>& into, const std::array<double, 5>& v,
                double sign) {
  for (std::size_t d = 0; d < 5; ++d) into[d] += sign * v[d];
}

}  // namespace

BtReferenceResult bt_reference_run(int n, int iterations, std::uint64_t seed) {
  assert(n >= 2);
  const Block5 mix = mixing_block();
  const Block5 neighbour = scaled(mix, -kCoupling);
  Block5 diag = Block5::identity();
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      diag.m[i][j] += 6.0 * kCoupling * (i == j ? 1.0 : 0.0) +
                      kCoupling * mix.m[i][j];
    }
  }

  Rng rng{seed};
  BtGrid b{n, std::vector<std::array<double, 5>>(
                  static_cast<std::size_t>(n) * n * n)};
  for (auto& cell : b.values) {
    for (auto& v : cell) v = rng.uniform(-1.0, 1.0);
  }
  BtGrid u{n, std::vector<std::array<double, 5>>(
                  static_cast<std::size_t>(n) * n * n)};

  auto apply_A = [&](const BtGrid& field, int x, int y, int z) {
    std::array<double, 5> out = diag.apply(field.at(x, y, z));
    auto add_link = [&](int nx, int ny, int nz) {
      if (nx < 0 || nx >= n || ny < 0 || ny >= n || nz < 0 || nz >= n) return;
      accumulate(out, neighbour.apply(field.at(nx, ny, nz)), 1.0);
    };
    add_link(x - 1, y, z);
    add_link(x + 1, y, z);
    add_link(x, y - 1, z);
    add_link(x, y + 1, z);
    add_link(x, y, z - 1);
    add_link(x, y, z + 1);
    return out;
  };
  auto global_residual = [&] {
    double worst = 0.0;
    for (int z = 0; z < n; ++z) {
      for (int y = 0; y < n; ++y) {
        for (int x = 0; x < n; ++x) {
          const auto lhs = apply_A(u, x, y, z);
          for (std::size_t d = 0; d < 5; ++d) {
            worst = std::max(worst, std::fabs(lhs[d] - b.at(x, y, z)[d]));
          }
        }
      }
    }
    return worst;
  };

  // One ADI iteration: for each dimension, solve every grid line exactly
  // with the block-tridiagonal kernel, folding the other two dimensions'
  // coupling into the right-hand side at current values (line Gauss-Seidel).
  auto sweep_dimension = [&](int dim) {
    for (int a = 0; a < n; ++a) {
      for (int c = 0; c < n; ++c) {
        BlockTriSystem line;
        line.sub.resize(static_cast<std::size_t>(n));
        line.super.resize(static_cast<std::size_t>(n));
        line.diag.assign(static_cast<std::size_t>(n), diag);
        line.rhs.resize(static_cast<std::size_t>(n));
        for (int i = 1; i < n; ++i) line.sub[static_cast<std::size_t>(i)] = neighbour;
        for (int i = 0; i + 1 < n; ++i) line.super[static_cast<std::size_t>(i)] = neighbour;
        auto coords = [&](int i) {
          switch (dim) {
            case 0: return std::array<int, 3>{i, a, c};
            case 1: return std::array<int, 3>{a, i, c};
            default: return std::array<int, 3>{a, c, i};
          }
        };
        for (int i = 0; i < n; ++i) {
          const auto [x, y, z] = coords(i);
          std::array<double, 5> rhs = b.at(x, y, z);
          auto fold = [&](int nx, int ny, int nz) {
            if (nx < 0 || nx >= n || ny < 0 || ny >= n || nz < 0 || nz >= n)
              return;
            accumulate(rhs, neighbour.apply(u.at(nx, ny, nz)), -1.0);
          };
          // Off-line neighbours (the two dimensions not being solved).
          if (dim != 0) { fold(x - 1, y, z); fold(x + 1, y, z); }
          if (dim != 1) { fold(x, y - 1, z); fold(x, y + 1, z); }
          if (dim != 2) { fold(x, y, z - 1); fold(x, y, z + 1); }
          line.rhs[static_cast<std::size_t>(i)] = rhs;
        }
        const auto solved = solve_block_tridiag(std::move(line));
        for (int i = 0; i < n; ++i) {
          const auto [x, y, z] = coords(i);
          u.at(x, y, z) = solved[static_cast<std::size_t>(i)];
        }
      }
    }
  };

  BtReferenceResult result;
  result.residuals.reserve(static_cast<std::size_t>(iterations));
  for (int iter = 0; iter < iterations; ++iter) {
    sweep_dimension(0);
    sweep_dimension(1);
    sweep_dimension(2);
    result.residuals.push_back(global_residual());
  }
  return result;
}

double block_tridiag_residual(const BlockTriSystem& system,
                              const std::vector<std::array<double, 5>>& u) {
  const std::size_t n = system.cells();
  assert(u.size() == n);
  double max_residual = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    std::array<double, 5> lhs = system.diag[i].apply(u[i]);
    if (i > 0) {
      const auto below = system.sub[i].apply(u[i - 1]);
      for (std::size_t d = 0; d < 5; ++d) lhs[d] += below[d];
    }
    if (i + 1 < n) {
      const auto above = system.super[i].apply(u[i + 1]);
      for (std::size_t d = 0; d < 5; ++d) lhs[d] += above[d];
    }
    for (std::size_t d = 0; d < 5; ++d) {
      max_residual = std::max(max_residual, std::fabs(lhs[d] - system.rhs[i][d]));
    }
  }
  return max_residual;
}

}  // namespace smilab
