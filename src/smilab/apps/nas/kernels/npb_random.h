// The NPB pseudo-random number generator (randlc): a linear congruential
// generator x_{k+1} = a * x_k mod 2^46 with a = 5^13, returning x / 2^46.
// Its key property for parallel benchmarks is O(log n) jump-ahead, which is
// how EP ranks claim disjoint streams without communication.
#pragma once

#include <cstdint>

namespace smilab {

class NpbRandom {
 public:
  static constexpr std::uint64_t kMultiplier = 1220703125ull;  // 5^13
  static constexpr std::uint64_t kModMask = (1ull << 46) - 1;
  static constexpr std::uint64_t kDefaultSeed = 271828183ull;  // NPB's "e"

  explicit NpbRandom(std::uint64_t seed = kDefaultSeed) : x_(seed & kModMask) {}

  /// Next value in (0, 1): x / 2^46 after advancing the state.
  double next() {
    x_ = mul_mod(kMultiplier, x_);
    return static_cast<double>(x_) * 0x1.0p-46;
  }

  /// Advance the state by `draws` next() calls in O(log draws).
  void jump(std::uint64_t draws) {
    x_ = mul_mod(pow_mod(kMultiplier, draws), x_);
  }

  [[nodiscard]] std::uint64_t state() const { return x_; }

  /// a^e mod 2^46.
  static std::uint64_t pow_mod(std::uint64_t a, std::uint64_t e) {
    std::uint64_t result = 1;
    std::uint64_t base = a & kModMask;
    while (e > 0) {
      if (e & 1) result = mul_mod(result, base);
      base = mul_mod(base, base);
      e >>= 1;
    }
    return result;
  }

  static std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(a) * b) & kModMask);
  }

 private:
  std::uint64_t x_;
};

}  // namespace smilab
