// Radix-2 FFT and the 3-D transform at the heart of NAS FT.
//
// Iterative in-place Cooley-Tukey over power-of-two lengths, plus a simple
// 3-D wrapper that transforms each dimension in turn (the step whose
// inter-rank data movement is FT's all-to-all transpose). Verified against
// the naive DFT, Parseval's identity, and round-tripping.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace smilab {

using Complex = std::complex<double>;

/// In-place FFT of a power-of-two-length signal. `inverse` applies the
/// conjugate transform and the 1/n normalization, so fft(fft(x), inverse)
/// returns x.
void fft(std::span<Complex> data, bool inverse = false);

/// O(n^2) reference DFT (tests and tiny sizes).
[[nodiscard]] std::vector<Complex> naive_dft(std::span<const Complex> data,
                                             bool inverse = false);

/// Dense 3-D array of complex values, row-major over (z, y, x).
class Grid3 {
 public:
  Grid3(int nx, int ny, int nz)
      : nx_(nx), ny_(ny), nz_(nz),
        data_(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
              static_cast<std::size_t>(nz)) {}

  [[nodiscard]] int nx() const { return nx_; }
  [[nodiscard]] int ny() const { return ny_; }
  [[nodiscard]] int nz() const { return nz_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] Complex& at(int x, int y, int z) {
    return data_[(static_cast<std::size_t>(z) * static_cast<std::size_t>(ny_) +
                  static_cast<std::size_t>(y)) * static_cast<std::size_t>(nx_) +
                 static_cast<std::size_t>(x)];
  }
  [[nodiscard]] const Complex& at(int x, int y, int z) const {
    return const_cast<Grid3*>(this)->at(x, y, z);
  }
  [[nodiscard]] std::span<Complex> raw() { return data_; }
  [[nodiscard]] std::span<const Complex> raw() const { return data_; }

  /// Fill with NPB-style pseudo-random values (both components uniform).
  void fill_random(std::uint64_t seed);

 private:
  int nx_;
  int ny_;
  int nz_;
  std::vector<Complex> data_;
};

/// 3-D FFT, dimension by dimension. All dims must be powers of two.
void fft3d(Grid3& grid, bool inverse = false);

/// NPB FT-style complex checksum over strided samples of the grid.
[[nodiscard]] Complex ft_checksum(const Grid3& grid);

/// The FT benchmark's evolve step: multiply each frequency-domain element
/// by exp(-4 alpha pi^2 |k~|^2 t), where k~ is the wavenumber folded into
/// [-n/2, n/2) per dimension — the analytic solution of the 3-D heat
/// equation advanced to time t.
void ft_evolve(Grid3& grid, double t, double alpha = 1e-6);

struct FtReferenceResult {
  std::vector<Complex> checksums;  ///< one per timestep, like NPB prints
};

/// The full FT reference cycle on one rank: fill u0 with NPB randoms,
/// forward 3-D FFT once, then for each timestep evolve in frequency space,
/// inverse-transform a copy, and record its checksum. This is the
/// computation whose distributed version (transpose = alltoall) the
/// workload model in nas.h times.
[[nodiscard]] FtReferenceResult ft_reference_run(int nx, int ny, int nz,
                                                 int timesteps);

}  // namespace smilab
