// Host-executable microkernels mirroring the five UnixBench tests the
// paper ran (Section IV.C). These are real computations/syscalls, used to
// (a) verify the workload-model constants in unixbench.h against the
// machine the library is built on, and (b) give tests something concrete
// to check: each kernel returns a checksum alongside its rate, so the
// work cannot be optimized away and correctness is assertable.
//
// They are faithful in spirit rather than line-by-line ports: the
// Dhrystone-style kernel exercises record assignment, string comparison
// and integer control flow; the Whetstone-style kernel runs the classic
// module mix (array ops, trig, exp/log/sqrt); the pipe kernels use real
// pipe(2) descriptors; the syscall kernel issues real trivial syscalls.
#pragma once

#include <cstdint>

namespace smilab {

struct KernelRun {
  double ops_per_second = 0.0;
  std::uint64_t checksum = 0;  ///< value-dependent digest of the work done
};

/// Dhrystone-flavoured integer/string/record loop. `iterations` whole
/// passes; each pass is one "dhrystone" op.
KernelRun run_dhrystone_like(std::int64_t iterations);

/// Whetstone-flavoured floating-point module mix. One op = one pass over
/// the module set (scaled to roughly a classic KWIPS unit of work).
KernelRun run_whetstone_like(std::int64_t iterations);

/// Pipe throughput: write+read `iterations` small buffers through a real
/// pipe within one thread (UnixBench's single-process pipe test).
KernelRun run_pipe_throughput(std::int64_t iterations);

/// Pipe-based context switching: two threads pass an incrementing token
/// back and forth through two pipes; one op = one round trip.
KernelRun run_pipe_context_switch(std::int64_t round_trips);

/// System call overhead: a tight loop of trivial syscalls (getpid-class).
KernelRun run_syscall_overhead(std::int64_t iterations);

}  // namespace smilab
