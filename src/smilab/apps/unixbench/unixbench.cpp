#include "smilab/apps/unixbench/unixbench.h"

#include <cassert>
#include <cmath>
#include <vector>

#include "smilab/sim/system.h"

namespace smilab {

const char* to_string(UbTest test) {
  switch (test) {
    case UbTest::kDhrystone:
      return "Dhrystone 2";
    case UbTest::kWhetstone:
      return "Whetstone";
    case UbTest::kPipeThroughput:
      return "Pipe Throughput";
    case UbTest::kPipeContextSwitch:
      return "Pipe-based Context Switching";
    case UbTest::kSyscallOverhead:
      return "System Call Overhead";
  }
  return "?";
}

const std::array<UbTestSpec, kUbTestCount>& ub_test_specs() {
  // Rates: Westmere-era single-core UnixBench results; baselines: the
  // stock UnixBench SPARCstation divisors. String/integer work is cache
  // resident; Whetstone saturates the FP ports (no SMT gain, Leng et al.);
  // the kernel-interaction tests stall often enough for SMT to pay.
  static const std::array<UbTestSpec, kUbTestCount> specs = {{
      {UbTest::kDhrystone, 11.0e6, 116700.0, WorkloadProfile::cache_friendly()},
      {UbTest::kWhetstone, 2100.0, 55.0, WorkloadProfile::dense_fp()},
      {UbTest::kPipeThroughput, 1.05e6, 12440.0, WorkloadProfile::syscall_heavy()},
      {UbTest::kPipeContextSwitch, 2.6e5, 4000.0, WorkloadProfile::syscall_heavy()},
      {UbTest::kSyscallOverhead, 2.4e6, 15000.0, WorkloadProfile::syscall_heavy()},
  }};
  return specs;
}

namespace {

/// Run one test: `copies` tasks each executing a fixed op budget in ~1 ms
/// batches; aggregate rate = total ops / last finish.
double run_one_test(const UbTestSpec& spec, const UnixBenchOptions& options,
                    int copies) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::poweredge_r410_e5620();
  cfg.node_count = 1;
  cfg.os.tickless = true;
  cfg.smi = options.smi;
  cfg.seed = options.seed ^ (static_cast<std::uint64_t>(spec.test) << 32);
  System sys{cfg};
  sys.set_online_cpus(options.online_cpus);

  const double per_copy_ops =
      spec.base_ops_per_s * options.per_test_duration.seconds();
  const SimDuration batch = milliseconds(1);
  const int batches = std::max(
      1, static_cast<int>(options.per_test_duration / batch));

  for (int c = 0; c < copies; ++c) {
    TaskSpec task;
    task.name = std::string{to_string(spec.test)} + "#" + std::to_string(c);
    task.node = 0;
    task.profile = spec.profile;
    task.wait_policy = WaitPolicy::kBlock;
    // Every batch is the identical Compute, so the whole budget streams
    // from one prototype instead of a `batches`-long vector per copy.
    task.actions =
        std::make_unique<RepeatActions>(Action{Compute{batch}}, batches);
    sys.spawn(std::move(task));
  }
  sys.run();
  const double elapsed = sys.last_finish_time().seconds();
  assert(elapsed > 0);
  return per_copy_ops * copies / elapsed;
}

}  // namespace

UnixBenchResult run_unixbench(const UnixBenchOptions& options) {
  assert(options.online_cpus >= 1 && options.online_cpus <= 8);
  const int copies =
      options.copies > 0 ? options.copies : options.online_cpus;

  UnixBenchResult result;
  double log_sum = 0.0;
  for (int i = 0; i < kUbTestCount; ++i) {
    const UbTestSpec& spec = ub_test_specs()[static_cast<std::size_t>(i)];
    const double rate = run_one_test(spec, options, copies);
    result.ops_per_s[static_cast<std::size_t>(i)] = rate;
    const double score = rate / spec.baseline_ops_per_s * 10.0;
    result.score[static_cast<std::size_t>(i)] = score;
    log_sum += std::log(score);
  }
  result.index = std::exp(log_sum / kUbTestCount);
  return result;
}

}  // namespace smilab
