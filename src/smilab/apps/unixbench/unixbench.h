// UnixBench subset model (Section IV.C, Figure 2).
//
// The paper runs five UnixBench tests — Dhrystone, Whetstone, Pipe
// Throughput, Pipe-based Context Switching, System Call Overhead — and
// reports the total index score (geometric mean of per-test scores against
// the SPARCstation 20-61 baseline, x10) across CPU configurations and SMI
// gaps.
//
// Each test is modelled as copies of a fixed-ops batch workload with a
// per-test nominal rate and workload profile (HTT efficiency, refill
// behaviour). Rates are calibration constants for a Westmere-class core;
// the SMI response of the score is emergent from the simulation. Baseline
// divisors are the real UnixBench ones, so index magnitudes are in the
// familiar range.
#pragma once

#include <array>
#include <string>

#include "smilab/cpu/workload_profile.h"
#include "smilab/smm/smi_config.h"
#include "smilab/time/sim_time.h"

namespace smilab {

enum class UbTest {
  kDhrystone = 0,
  kWhetstone,
  kPipeThroughput,
  kPipeContextSwitch,
  kSyscallOverhead,
};
inline constexpr int kUbTestCount = 5;

[[nodiscard]] const char* to_string(UbTest test);

struct UbTestSpec {
  UbTest test;
  /// Nominal single-copy rate on one dedicated E5620 core (ops/second).
  double base_ops_per_s;
  /// UnixBench index divisor for this test (SPARCstation 20-61 baseline).
  double baseline_ops_per_s;
  WorkloadProfile profile;
};

/// The five specs in UbTest order.
[[nodiscard]] const std::array<UbTestSpec, kUbTestCount>& ub_test_specs();

struct UnixBenchOptions {
  int online_cpus = 8;       ///< the sysfs sweep: 1-8 logical CPUs
  int copies = -1;           ///< -1: one copy per online CPU (UnixBench default)
  SimDuration per_test_duration = seconds(20);  ///< nominal measurement window
  SmiConfig smi{};
  std::uint64_t seed = 1;
};

struct UnixBenchResult {
  std::array<double, kUbTestCount> ops_per_s{};  ///< aggregate across copies
  std::array<double, kUbTestCount> score{};      ///< rate/baseline x 10
  double index = 0.0;                            ///< geometric mean of scores
};

/// Run the five-test suite on an E5620 node and compute the index.
UnixBenchResult run_unixbench(const UnixBenchOptions& options);

}  // namespace smilab
