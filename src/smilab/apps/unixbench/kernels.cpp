#include "smilab/apps/unixbench/kernels.h"

#include <unistd.h>

#include <array>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace smilab {

namespace {

// Host-side calibration clock. These kernels run on the REAL machine so
// examples/host_unixbench can sanity-check the simulator's calibrated
// rates against local hardware; they never touch simulated state. The
// sim-side UnixBench scoring (unixbench.cpp) derives purely from SimTime —
// UnixBenchGoldenTest.IndexPinnedAgainstSeed pins that score bit-for-bit.
double now_seconds() {
  // smilint: allow(wall-clock) reason=host calibration microbenchmark; measures the real machine, never simulated state
  const auto wall = std::chrono::steady_clock::now().time_since_epoch();
  // smilint: allow(wall-clock) reason=host calibration microbenchmark; measures the real machine, never simulated state
  return std::chrono::duration<double>(wall).count();
}

KernelRun finish(std::int64_t ops, double start, std::uint64_t checksum) {
  const double elapsed = now_seconds() - start;
  KernelRun run;
  run.ops_per_second = elapsed > 0 ? static_cast<double>(ops) / elapsed : 0.0;
  run.checksum = checksum;
  return run;
}

/// RAII pair of pipe file descriptors.
class Pipe {
 public:
  Pipe() {
    if (::pipe(fds_) != 0) throw std::runtime_error("pipe() failed");
  }
  ~Pipe() {
    ::close(fds_[0]);
    ::close(fds_[1]);
  }
  Pipe(const Pipe&) = delete;
  Pipe& operator=(const Pipe&) = delete;

  [[nodiscard]] int read_fd() const { return fds_[0]; }
  [[nodiscard]] int write_fd() const { return fds_[1]; }

 private:
  int fds_[2] = {-1, -1};
};

}  // namespace

KernelRun run_dhrystone_like(std::int64_t iterations) {
  // Record assignment, string comparison, enum-ish control flow and
  // integer arithmetic — the Dhrystone 2.1 ingredient list.
  struct Record {
    int discriminant;
    int int_comp;
    char string_comp[32];
  };
  Record glob{0, 0, "DHRYSTONE PROGRAM, SOME STRING"};
  Record next{2, 5, "DHRYSTONE PROGRAM, 2'ND STRING"};
  char buffer1[32] = "DHRYSTONE PROGRAM, 1'ST STRING";
  char buffer2[32];
  std::uint64_t checksum = 0;
  const double start = now_seconds();
  for (std::int64_t i = 0; i < iterations; ++i) {
    // Proc_1-ish: record copy plus field arithmetic.
    glob = next;
    glob.int_comp = next.int_comp + static_cast<int>(i % 7);
    glob.discriminant = glob.int_comp > 4 ? 1 : 0;
    // Func_2-ish: string compare decides a branch.
    std::memcpy(buffer2, buffer1, sizeof buffer2);
    buffer2[7] = static_cast<char>('A' + (i % 3));
    if (std::strcmp(buffer1, buffer2) < 0) {
      glob.int_comp += 1;
    }
    // Proc_7/8-ish: integer/array manipulation.
    int array[8] = {};
    array[(i + glob.int_comp) & 7] = glob.int_comp;
    checksum += static_cast<std::uint64_t>(array[i & 7] + glob.discriminant);
  }
  return finish(iterations, start, checksum);
}

KernelRun run_whetstone_like(std::int64_t iterations) {
  // The classic module mix: array elements, conditional jumps,
  // trigonometric and transcendental functions.
  double e1[4] = {1.0, -1.0, -1.0, -1.0};
  const double t = 0.499975;
  const double t1 = 0.50025;
  double x = 0.2;
  double y = 0.3;
  std::uint64_t checksum = 0;
  const double start = now_seconds();
  for (std::int64_t i = 0; i < iterations; ++i) {
    // Module 1/2: simple array arithmetic.
    for (int k = 0; k < 6; ++k) {
      e1[0] = (e1[0] + e1[1] + e1[2] - e1[3]) * t;
      e1[1] = (e1[0] + e1[1] - e1[2] + e1[3]) * t;
      e1[2] = (e1[0] - e1[1] + e1[2] + e1[3]) * t;
      e1[3] = (-e1[0] + e1[1] + e1[2] + e1[3]) * t;
    }
    // Module 7: trig.
    x = t * std::atan(2.0 * std::sin(x) * std::cos(x) /
                      (std::cos(x + y) + std::cos(x - y) - 1.0));
    y = t * std::atan(2.0 * std::sin(y) * std::cos(y) /
                      (std::cos(x + y) + std::cos(x - y) - 1.0));
    // Module 11: transcendental.
    double z = 0.75;
    for (int k = 0; k < 3; ++k) z = std::sqrt(std::exp(std::log(z) / t1));
    checksum += static_cast<std::uint64_t>((z + x + y + e1[3]) * 1e6) & 0xFFFF;
  }
  return finish(iterations, start, checksum);
}

KernelRun run_pipe_throughput(std::int64_t iterations) {
  Pipe pipe;
  char buffer[512];
  std::memset(buffer, 0x5A, sizeof buffer);
  std::uint64_t checksum = 0;
  const double start = now_seconds();
  for (std::int64_t i = 0; i < iterations; ++i) {
    buffer[0] = static_cast<char>(i & 0x7F);
    if (::write(pipe.write_fd(), buffer, sizeof buffer) !=
        static_cast<ssize_t>(sizeof buffer)) {
      throw std::runtime_error("pipe write failed");
    }
    char in[512];
    if (::read(pipe.read_fd(), in, sizeof in) !=
        static_cast<ssize_t>(sizeof in)) {
      throw std::runtime_error("pipe read failed");
    }
    checksum += static_cast<std::uint64_t>(in[0]);
  }
  return finish(iterations, start, checksum);
}

KernelRun run_pipe_context_switch(std::int64_t round_trips) {
  Pipe there;  // main -> echo
  Pipe back;   // echo -> main
  std::thread echo([&] {
    std::int64_t token = 0;
    while (true) {
      if (::read(there.read_fd(), &token, sizeof token) != sizeof token) return;
      if (token < 0) return;  // shutdown
      token += 1;
      if (::write(back.write_fd(), &token, sizeof token) != sizeof token) return;
    }
  });
  std::uint64_t checksum = 0;
  const double start = now_seconds();
  std::int64_t token = 0;
  for (std::int64_t i = 0; i < round_trips; ++i) {
    if (::write(there.write_fd(), &token, sizeof token) != sizeof token) break;
    if (::read(back.read_fd(), &token, sizeof token) != sizeof token) break;
    checksum += static_cast<std::uint64_t>(token & 0xFF);
  }
  const KernelRun run = finish(round_trips, start, checksum ^ static_cast<std::uint64_t>(token));
  const std::int64_t stop = -1;
  (void)!::write(there.write_fd(), &stop, sizeof stop);
  echo.join();
  return run;
}

KernelRun run_syscall_overhead(std::int64_t iterations) {
  std::uint64_t checksum = 0;
  const double start = now_seconds();
  for (std::int64_t i = 0; i < iterations; ++i) {
    checksum += static_cast<std::uint64_t>(::getpid());
  }
  return finish(iterations, start, checksum);
}

}  // namespace smilab
