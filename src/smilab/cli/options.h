// Tiny option parser for the smilab CLI: positional command + --key=value
// flags, with typed accessors and unknown-flag detection. Kept in the
// library so it is unit-testable.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace smilab {

class Options {
 public:
  /// Parse argv[1..): first non-flag token is the command, the rest must
  /// be --key or --key=value flags. Returns nullopt (with a message in
  /// *error) on malformed input.
  static std::optional<Options> parse(int argc, const char* const* argv,
                                      std::string* error);

  [[nodiscard]] const std::string& command() const { return command_; }

  [[nodiscard]] bool has(const std::string& key) const {
    return values_.contains(key);
  }
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] long long get_int(const std::string& key, long long fallback,
                                  std::string* error) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback,
                                  std::string* error) const;
  /// A bare `--flag` or `--flag=true/false`.
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Keys the caller never consumed (typo detection).
  [[nodiscard]] std::vector<std::string> unconsumed() const;

 private:
  std::string command_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> consumed_;
};

}  // namespace smilab
