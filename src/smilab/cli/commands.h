// The smilab CLI command layer: each subcommand runs an experiment from
// command-line knobs and writes a human-readable report (optionally plus a
// Chrome trace) to a stream. Kept in the library so commands are testable
// without spawning processes.
//
// Subcommands:
//   nas        one NAS table cell (EP/BT/FT x class x nodes x rpn x HTT)
//   convolve   the Figure-1 workload at one (cpus, gap) point
//   unixbench  the Figure-2 index at one (cpus, gap) point
//   detect     hwlat-style SMI detection scored against ground truth
//   rim        a RIM security policy's slowdown / detection-latency trade
//   faults     a ring-exchange MPI job under an injected fault plan
//   help       usage
//
// Exit codes: 0 success, 2 usage error, 3 simulation fault (run_cli maps
// SimulationError to 3 and prints the diagnosis to the error stream).
#pragma once

#include <ostream>

#include "smilab/cli/options.h"

namespace smilab {

/// Dispatch a parsed command line. Returns a process exit code.
int run_cli_command(const Options& options, std::ostream& out,
                    std::ostream& err);

/// Top-level entry used by tools/smilab_main.cpp.
int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err);

/// The usage text (exposed for tests).
const char* cli_usage();

}  // namespace smilab
