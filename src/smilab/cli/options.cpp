#include "smilab/cli/options.h"

#include <cstdlib>

namespace smilab {

std::optional<Options> Options::parse(int argc, const char* const* argv,
                                      std::string* error) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::string body = arg.substr(2);
      if (body.empty()) {
        if (error) *error = "empty flag '--'";
        return std::nullopt;
      }
      const auto eq = body.find('=');
      if (eq == std::string::npos) {
        options.values_[body] = "true";
      } else if (eq == 0) {
        if (error) *error = "flag with empty name: '" + arg + "'";
        return std::nullopt;
      } else {
        options.values_[body.substr(0, eq)] = body.substr(eq + 1);
      }
    } else if (options.command_.empty()) {
      options.command_ = arg;
    } else {
      if (error) *error = "unexpected positional argument '" + arg + "'";
      return std::nullopt;
    }
  }
  return options;
}

std::string Options::get(const std::string& key,
                         const std::string& fallback) const {
  consumed_[key] = true;
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

long long Options::get_int(const std::string& key, long long fallback,
                           std::string* error) const {
  consumed_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    if (error) *error = "flag --" + key + " expects an integer, got '" +
                        it->second + "'";
    return fallback;
  }
  return value;
}

double Options::get_double(const std::string& key, double fallback,
                           std::string* error) const {
  consumed_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    if (error) *error = "flag --" + key + " expects a number, got '" +
                        it->second + "'";
    return fallback;
  }
  return value;
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  consumed_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second != "false" && it->second != "0";
}

std::vector<std::string> Options::unconsumed() const {
  std::vector<std::string> extra;
  for (const auto& [key, value] : values_) {
    if (!consumed_.contains(key)) extra.push_back(key);
  }
  return extra;
}

}  // namespace smilab
