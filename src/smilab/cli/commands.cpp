#include "smilab/cli/commands.h"

#include <csignal>

#include <fstream>
#include <iostream>

#include "smilab/apps/convolve/workload.h"
#include "smilab/apps/nas/nas.h"
#include "smilab/apps/nas/runner.h"
#include "smilab/apps/unixbench/unixbench.h"
#include "smilab/core/sweep.h"
#include "smilab/cpu/energy.h"
#include "smilab/fault/fault_injector.h"
#include "smilab/mc/corpus.h"
#include "smilab/mc/explorer.h"
#include "smilab/mc/schedule_trace.h"
#include "smilab/mpi/job.h"
#include "smilab/mpi/program.h"
#include "smilab/noise/hwlat.h"
#include "smilab/serve/server.h"
#include "smilab/sim/system.h"
#include "smilab/smm/rim.h"
#include "smilab/trace/chrome_trace.h"

namespace smilab {

namespace {

constexpr const char* kUsage = R"(smilab — SMI noise laboratory

usage: smilab <command> [--flag=value ...]

commands:
  nas        --workload=ep|bt|ft --class=A|B|C [--nodes=N] [--ranks-per-node=1|4]
             [--htt] [--smi=none|short|long] [--interval-ms=N] [--trials=N]
             [--seed=N] [--jobs=N] [--retained]
             Run one NAS table cell (calibrated against the paper baseline)
             under the chosen SMI regime. Programs stream chunk-by-chunk by
             default (peak RSS O(ranks)); --retained materializes whole
             rank programs (bit-identical results).
  convolve   [--case=cf|cu] [--cpus=1..8] [--smi=none|short|long]
             [--gap-ms=N] [--seed=N]
             The Figure-1 multithreaded convolution at one sweep point.
  unixbench  [--cpus=1..8] [--smi=none|short|long] [--gap-ms=N] [--seed=N]
             The Figure-2 five-test index at one sweep point.
  detect     [--smi=short|long] [--gap-ms=N] [--duration-s=N]
             [--window-ms=N] [--period-ms=N]
             hwlat-style TSC-gap detection, scored against ground truth.
  rim        [--scan-mb=X] [--interval-ms=N] [--total-mb=X] [--nodes=N]
             A RIM (SMM integrity scanning) policy: residency, duty cycle,
             detection latency, and measured application slowdown.
  faults     [--nodes=N] [--iters=N] [--bytes=N] [--smi=none|short|long]
             [--gap-ms=N] [--seed=N] [--hang-timeout-s=N]
             [--freeze=node:at_ms:dur_ms] [--crash=node:at_ms]
             [--link-down=node:at_ms:dur_ms] [--slow=node:at_ms:dur_ms:scale]
             [--drop=P] [--dup=P]
             Ring halo-exchange job under an injected fault plan: transport
             drops/retransmissions, node freezes, fail-stop crashes. Each
             fault flag takes a comma-separated list of specs (e.g.
             --freeze=0:100:200,1:400:100). Prints the per-rank
             hang/deadlock diagnosis (and exits 3) if the faults stall the
             job.
  serve      [--socket=PATH] [--stdin-batch] [--workers=N] [--cache-mb=X]
             [--cache-shards=N]
             Persistent sweep service: newline-delimited JSON experiment
             requests, answered from a content-addressed result cache
             (hits replay bit-identical bytes with zero simulation) or
             simulated on a warm worker pool. --stdin-batch pumps stdin
             to stdout and exits at EOF (CI mode); otherwise listens on
             the Unix socket PATH ('@' prefix = Linux abstract namespace)
             until SIGINT/SIGTERM. See README "smilab serve" for the
             request schema.
  check      [--program=NAME] [--list] [--max-schedules=N] [--max-depth=N]
             [--no-prune] [--replay=TOKEN]
             Explore the schedule space of the model-checking corpus (or
             one named program) and report a determinism / deadlock
             verdict per case. Default budgets match the pinned corpus
             expectations, and any count or verdict drift fails the run.
             --replay re-executes exactly one schedule from its token
             (requires --program) and prints that run's outcome.
  help       This text.

common:
  --trace=FILE   write a Chrome trace of the (last) run to FILE.

exit codes: 0 success, 2 usage error, 3 the simulation itself faulted
(deadlock / hang / max_sim_time / invalid configuration).
)";

SmiConfig smi_from(const Options& options, std::string* error) {
  const std::string kind = options.get("smi", "long");
  const auto gap = options.get_int("gap-ms", options.get_int("interval-ms", 1000, error), error);
  if (kind == "none") return SmiConfig::none();
  if (kind == "short") return SmiConfig::short_with_gap(gap);
  if (kind == "long") return SmiConfig::long_with_gap(gap);
  *error = "unknown --smi kind '" + kind + "' (none|short|long)";
  return SmiConfig::none();
}

int fail(std::ostream& err, const std::string& message) {
  err << "smilab: " << message << "\n";
  return 2;
}

int check_leftovers(const Options& options, std::ostream& err) {
  const auto extra = options.unconsumed();
  if (extra.empty()) return 0;
  std::string message = "unknown flag(s):";
  for (const auto& key : extra) message += " --" + key;
  return fail(err, message);
}

void maybe_write_trace(const Options& options, const System& sys,
                       std::ostream& out, std::ostream& err) {
  const std::string path = options.get("trace", "");
  if (path.empty()) return;
  std::ofstream file{path};
  if (!file) {
    err << "smilab: cannot open trace file '" << path << "'\n";
    return;
  }
  file << to_chrome_trace(sys);
  out << "chrome trace written to " << path << "\n";
}

int cmd_nas(const Options& options, std::ostream& out, std::ostream& err) {
  std::string error;
  const std::string workload = options.get("workload", "ep");
  NasJobSpec spec;
  if (workload == "ep") spec.bench = NasBenchmark::kEP;
  else if (workload == "bt") spec.bench = NasBenchmark::kBT;
  else if (workload == "ft") spec.bench = NasBenchmark::kFT;
  else return fail(err, "unknown --workload '" + workload + "' (ep|bt|ft)");

  const std::string cls = options.get("class", "A");
  if (cls == "A") spec.cls = NasClass::kA;
  else if (cls == "B") spec.cls = NasClass::kB;
  else if (cls == "C") spec.cls = NasClass::kC;
  else return fail(err, "unknown --class '" + cls + "' (A|B|C)");

  spec.nodes = static_cast<int>(options.get_int("nodes", 4, &error));
  spec.ranks_per_node =
      static_cast<int>(options.get_int("ranks-per-node", 1, &error));
  spec.htt = options.get_bool("htt", false);
  const auto trials = static_cast<int>(options.get_int("trials", 3, &error));
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 2016, &error));
  const auto jobs = static_cast<int>(options.get_int("jobs", 1, &error));
  const TraceMode mode = options.get_bool("retained", false)
                             ? TraceMode::kRetained
                             : TraceMode::kStreaming;
  const SmiConfig smi = smi_from(options, &error);
  (void)options.get("trace", "");  // mark consumed
  if (!error.empty()) return fail(err, error);
  if (const int rc = check_leftovers(options, err)) return rc;
  if (!nas_valid_rank_count(spec.bench, spec.ranks())) {
    return fail(err, std::string(to_string(spec.bench)) +
                         " does not support " + std::to_string(spec.ranks()) +
                         " ranks (BT: square, FT: power of two)");
  }

  const NasKnob knob = calibrate_nas_knob(spec);
  // The (regime, trial) cells are independent sims: fan them across the
  // sweep pool (--jobs=N) and fold back in serial order, so the output is
  // byte-identical at any job count.
  const ExperimentSweep sweep{jobs};
  const std::vector<double> runs = sweep.map<double>(2 * trials, [&](int i) {
    const SmiConfig& cfg = (i % 2 == 0) ? SmiConfig::none() : smi;
    return simulate_nas_once(spec, knob, cfg,
                             seed + static_cast<std::uint64_t>(i / 2), 0.003,
                             mode);
  });
  OnlineStats base, noisy;
  for (int t = 0; t < trials; ++t) {
    base.add(runs[static_cast<std::size_t>(2 * t)]);
    noisy.add(runs[static_cast<std::size_t>(2 * t + 1)]);
  }
  out << "NAS " << to_string(spec.bench) << " class " << to_string(spec.cls)
      << ", " << spec.nodes << " node(s) x " << spec.ranks_per_node
      << " rank(s)/node" << (spec.htt ? ", HTT on" : "") << ", " << trials
      << " trial(s)\n";
  const auto paper = nas_paper_baseline(spec);
  const double work = nas_work_units(spec.bench, spec.cls);
  out << "  no SMIs:   " << base.mean() << " s";
  if (paper) out << "  (paper baseline " << *paper << " s)";
  out << ", " << work / base.mean() / 1e6 << " M" << nas_work_unit_name(spec.bench)
      << "/s";
  out << "\n  with SMIs: " << noisy.mean() << " s  ("
      << (noisy.mean() / base.mean() - 1.0) * 100.0 << "% slowdown), "
      << work / noisy.mean() / 1e6 << " M" << nas_work_unit_name(spec.bench)
      << "/s\n";
  return 0;
}

int cmd_convolve(const Options& options, std::ostream& out, std::ostream& err) {
  std::string error;
  const std::string which = options.get("case", "cu");
  ConvolveWorkload workload;
  if (which == "cf") workload = ConvolveWorkload::cache_friendly_workload();
  else if (which == "cu") workload = ConvolveWorkload::cache_unfriendly_workload();
  else return fail(err, "unknown --case '" + which + "' (cf|cu)");
  const auto cpus = static_cast<int>(options.get_int("cpus", 8, &error));
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1, &error));
  const SmiConfig smi = smi_from(options, &error);
  (void)options.get("trace", "");
  if (!error.empty()) return fail(err, error);
  if (const int rc = check_leftovers(options, err)) return rc;
  if (cpus < 1 || cpus > 8) return fail(err, "--cpus must be 1..8");

  const auto base = run_convolve_sim(workload, cpus, SmiConfig::none(), seed);
  const auto noisy = run_convolve_sim(workload, cpus, smi, seed);
  out << "Convolve " << (which == "cf" ? "CacheFriendly" : "CacheUnfriendly")
      << " (" << workload.cache.l1_miss_rate * 100.0 << "% L1 miss), "
      << workload.threads << " threads on " << cpus << " logical CPU(s)\n";
  out << "  no SMIs:   " << base.seconds << " s\n";
  out << "  with SMIs: " << noisy.seconds << " s  ("
      << (noisy.seconds / base.seconds - 1.0) * 100.0 << "% slowdown, "
      << noisy.smi_hits << " SMM hits)\n";
  return 0;
}

int cmd_unixbench(const Options& options, std::ostream& out, std::ostream& err) {
  std::string error;
  UnixBenchOptions ub;
  ub.online_cpus = static_cast<int>(options.get_int("cpus", 8, &error));
  ub.seed = static_cast<std::uint64_t>(options.get_int("seed", 1, &error));
  const SmiConfig smi = smi_from(options, &error);
  (void)options.get("trace", "");
  if (!error.empty()) return fail(err, error);
  if (const int rc = check_leftovers(options, err)) return rc;
  if (ub.online_cpus < 1 || ub.online_cpus > 8) {
    return fail(err, "--cpus must be 1..8");
  }

  const UnixBenchResult clean = run_unixbench(ub);
  ub.smi = smi;
  const UnixBenchResult noisy = run_unixbench(ub);
  out << "UnixBench, " << ub.online_cpus << " logical CPU(s)\n";
  for (int i = 0; i < kUbTestCount; ++i) {
    out << "  " << to_string(static_cast<UbTest>(i)) << ": "
        << clean.score[static_cast<std::size_t>(i)] << " -> "
        << noisy.score[static_cast<std::size_t>(i)] << "\n";
  }
  out << "  total index: " << clean.index << " -> " << noisy.index << "  ("
      << (noisy.index / clean.index - 1.0) * 100.0 << "%)\n";
  return 0;
}

int cmd_detect(const Options& options, std::ostream& out, std::ostream& err) {
  std::string error;
  HwlatConfig config;
  config.duration = seconds(options.get_int("duration-s", 30, &error));
  config.window = milliseconds(options.get_int("window-ms", 500, &error));
  config.period = milliseconds(options.get_int("period-ms", 1000, &error));
  const SmiConfig smi = smi_from(options, &error);
  (void)options.get("trace", "");
  if (!error.empty()) return fail(err, error);
  if (const int rc = check_leftovers(options, err)) return rc;

  SystemConfig cfg;
  cfg.machine = MachineSpec::poweredge_r410_e5620();
  cfg.smi = smi;
  cfg.seed = 1;
  System sys{cfg};
  const HwlatReport report = run_hwlat_detector(sys, config);
  out << "hwlat: " << report.hits << " detection(s) over "
      << report.true_smis_during_windows << " in-window SMI(s)  (recall "
      << report.recall * 100.0 << "%)\n";
  if (report.hits > 0) {
    out << "  gap mean " << report.gap_us.mean() / 1e3 << " ms, max "
        << report.gap_us.max() / 1e3 << " ms, duration error "
        << report.mean_duration_error_us << " us\n";
  }
  maybe_write_trace(options, sys, out, err);
  return 0;
}

int cmd_rim(const Options& options, std::ostream& out, std::ostream& err) {
  std::string error;
  RimConfig rim;
  rim.scanned_bytes = options.get_double("scan-mb", 16.0, &error) * 1e6;
  rim.check_interval_jiffies = options.get_int("interval-ms", 1000, &error);
  const double total_mb = options.get_double("total-mb", 256.0, &error);
  const auto nodes = static_cast<int>(options.get_int("nodes", 1, &error));
  (void)options.get("trace", "");
  if (!error.empty()) return fail(err, error);
  if (const int rc = check_leftovers(options, err)) return rc;

  out << "RIM policy: " << rim.scanned_bytes / 1e6 << " MB per check, every "
      << rim.check_interval_jiffies << " ms\n";
  out << "  SMM residency:      " << rim.smm_duration().seconds() * 1e3 << " ms\n";
  out << "  duty cycle:         " << rim.duty_cycle() * 100.0 << " %\n";
  out << "  detection latency:  " << rim.detection_latency(total_mb * 1e6).seconds()
      << " s to cover " << total_mb << " MB\n";

  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.node_count = nodes;
  cfg.smi = rim.to_smi_config();
  cfg.seed = 5;
  System sys{cfg};
  for (int n = 0; n < nodes; ++n) {
    std::vector<Action> prog;
    prog.push_back(Compute{seconds(20)});
    sys.spawn(TaskSpec::with_actions("app" + std::to_string(n), n, std::move(prog)));
  }
  sys.run();
  const double wall = sys.last_finish_time().seconds();
  out << "  measured slowdown:  " << (wall / 20.0 - 1.0) * 100.0
      << " % on a 20 s compute task\n";
  out << "  BIOSBITS(150us):    "
      << sys.smm_accounting().biosbits_violations() << " violation(s)\n";
  const EnergyReport energy = estimate_energy(sys, PowerModel{});
  out << "  energy:             " << energy.joules << " J ("
      << energy.average_watts << " W avg/node)\n";
  return 0;
}

/// Parse "a:b:c"-style numeric fault specs. Returns false (with *error set)
/// on malformed input.
bool parse_fields(const std::string& spec, const char* flag,
                  std::vector<double>* out, std::size_t expected,
                  std::string* error) {
  out->clear();
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t colon = spec.find(':', pos);
    const std::string field =
        spec.substr(pos, colon == std::string::npos ? colon : colon - pos);
    try {
      std::size_t used = 0;
      out->push_back(std::stod(field, &used));
      if (used != field.size()) throw std::invalid_argument(field);
    } catch (const std::exception&) {
      *error = std::string("--") + flag + ": bad number '" + field + "' in '" +
               spec + "'";
      return false;
    }
    if (colon == std::string::npos) break;
    pos = colon + 1;
  }
  if (out->size() != expected) {
    *error = std::string("--") + flag + ": expected " +
             std::to_string(expected) + " ':'-separated fields, got " +
             std::to_string(out->size()) + " in '" + spec + "'";
    return false;
  }
  return true;
}

/// Parse a comma-separated list of "a:b:c" specs, calling `add` per spec.
/// The Options map is last-wins for repeated flags, so the list form is the
/// only way to express several faults of one kind in a single command.
template <typename Add>
bool parse_spec_list(const std::string& list, const char* flag,
                     std::size_t expected, std::string* error, Add add) {
  std::vector<double> f;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::string spec =
        list.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!parse_fields(spec, flag, &f, expected, error)) return false;
    add(f);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return true;
}

int cmd_faults(const Options& options, std::ostream& out, std::ostream& err) {
  std::string error;
  const auto nodes = static_cast<int>(options.get_int("nodes", 4, &error));
  const auto iters = static_cast<int>(options.get_int("iters", 200, &error));
  const auto bytes = options.get_int("bytes", 32 * 1024, &error);
  const auto seed =
      static_cast<std::uint64_t>(options.get_int("seed", 1, &error));
  const double hang_timeout_s =
      options.get_double("hang-timeout-s", 10.0, &error);
  const std::string smi_kind = options.get("smi", "none");
  const auto gap =
      options.get_int("gap-ms", options.get_int("interval-ms", 1000, &error),
                      &error);

  FaultPlan plan;
  if (const std::string s = options.get("freeze", ""); !s.empty()) {
    if (!parse_spec_list(s, "freeze", 3, &error,
                         [&](const std::vector<double>& f) {
                           plan.freeze(static_cast<int>(f[0]),
                                       SimTime::zero() + seconds_d(f[1] / 1e3),
                                       seconds_d(f[2] / 1e3));
                         }))
      return fail(err, error);
  }
  if (const std::string s = options.get("crash", ""); !s.empty()) {
    if (!parse_spec_list(s, "crash", 2, &error,
                         [&](const std::vector<double>& f) {
                           plan.crash(static_cast<int>(f[0]),
                                      SimTime::zero() + seconds_d(f[1] / 1e3));
                         }))
      return fail(err, error);
  }
  if (const std::string s = options.get("link-down", ""); !s.empty()) {
    if (!parse_spec_list(s, "link-down", 3, &error,
                         [&](const std::vector<double>& f) {
                           plan.link_down(static_cast<int>(f[0]),
                                          SimTime::zero() + seconds_d(f[1] / 1e3),
                                          seconds_d(f[2] / 1e3));
                         }))
      return fail(err, error);
  }
  if (const std::string s = options.get("slow", ""); !s.empty()) {
    if (!parse_spec_list(s, "slow", 4, &error,
                         [&](const std::vector<double>& f) {
                           plan.slow(static_cast<int>(f[0]),
                                     SimTime::zero() + seconds_d(f[1] / 1e3),
                                     seconds_d(f[2] / 1e3), f[3]);
                         }))
      return fail(err, error);
  }
  plan.drop(options.get_double("drop", 0.0, &error));
  plan.duplicate(options.get_double("dup", 0.0, &error));
  (void)options.get("trace", "");
  if (!error.empty()) return fail(err, error);
  if (const int rc = check_leftovers(options, err)) return rc;
  if (nodes < 2) return fail(err, "--nodes must be >= 2 (ring exchange)");
  if (iters < 1) return fail(err, "--iters must be >= 1");

  SystemConfig cfg;
  cfg.node_count = nodes;
  cfg.seed = seed;
  cfg.hang_timeout = seconds_d(hang_timeout_s);
  if (smi_kind == "short") cfg.smi = SmiConfig::short_with_gap(gap);
  else if (smi_kind == "long") cfg.smi = SmiConfig::long_with_gap(gap);
  else if (smi_kind != "none") {
    return fail(err, "unknown --smi kind '" + smi_kind + "' (none|short|long)");
  }
  System sys{cfg};
  const FaultInjector injector{sys, plan};

  // Ring halo exchange: compute, then swap with both neighbours, per
  // iteration — every rank depends on every other within a few steps, so
  // any injected fault propagates job-wide.
  auto programs = make_rank_programs(nodes);
  TagAllocator tags;
  for (int it = 0; it < iters; ++it) {
    const int tag = tags.allocate(2);
    for (auto& prog : programs) {
      const int r = prog.rank();
      const int next = (r + 1) % nodes;
      const int prev = (r + nodes - 1) % nodes;
      prog.compute(microseconds(500));
      prog.sendrecv(next, bytes, tag, prev, tag);
      prog.sendrecv(prev, bytes, tag + 1, next, tag + 1);
    }
  }
  std::vector<int> placement(static_cast<std::size_t>(nodes));
  for (int r = 0; r < nodes; ++r) placement[static_cast<std::size_t>(r)] = r;

  const MpiJobRunResult result = try_run_mpi_job(
      sys, std::move(programs), placement, WorkloadProfile{}, "ring");

  out << "ring exchange: " << nodes << " rank(s), " << iters
      << " iteration(s), " << bytes << " B per hop\n";
  out << "  transport: " << sys.messages_dropped() << " dropped, "
      << sys.retransmissions() << " retransmission(s), "
      << sys.messages_duplicated() << " duplicate(s), "
      << sys.transport_failures() << " failure(s)\n";
  const TransportStats tstats = sys.transport_stats();
  out << "  message pool: " << tstats.messages_allocated << " allocated, "
      << tstats.pool_capacity << " slot(s), peak " << tstats.pool_peak_live
      << " live / " << tstats.peak_in_flight << " in flight, "
      << tstats.pool_live << " live at exit\n";
  out << "  program actions: peak " << sys.peak_program_actions()
      << " materialized\n";
  for (const FaultRecord& rec : sys.fault_log()) {
    out << "  fault: " << to_string(rec.kind) << " node " << rec.node
        << " at " << rec.start.seconds() << " s";
    if (rec.end >= rec.start && rec.kind != FaultRecord::Kind::kCrash) {
      out << " for " << (rec.end - rec.start).seconds() << " s";
    }
    out << "\n";
  }
  maybe_write_trace(options, sys, out, err);
  if (!result.ok()) {
    err << result.run.to_string() << "\n";
    return 3;
  }
  out << "  completed in " << result.job.elapsed.seconds() << " s\n";
  return 0;
}

int cmd_serve(const Options& options, std::ostream& out, std::ostream& err) {
  std::string error;
  serve::ServiceConfig cfg;
  cfg.workers = static_cast<int>(options.get_int("workers", 0, &error));
  cfg.cache_bytes = static_cast<std::int64_t>(
      options.get_double("cache-mb", 64.0, &error) * 1e6);
  cfg.cache_shards =
      static_cast<int>(options.get_int("cache-shards", 16, &error));
  const bool stdin_batch = options.get_bool("stdin-batch", false);
  const std::string socket_path = options.get("socket", "@smilab-serve");
  if (!error.empty()) return fail(err, error);
  if (const int rc = check_leftovers(options, err)) return rc;
  if (cfg.cache_bytes < 0) return fail(err, "--cache-mb must be >= 0");
  if (cfg.cache_shards < 1) return fail(err, "--cache-shards must be >= 1");

  serve::SweepService service{cfg};
  if (stdin_batch) {
    // CI mode: stdout carries exactly one response line per request line,
    // so the summary goes to stderr.
    const std::int64_t handled = serve::serve_stream(service, std::cin, out);
    const serve::ServiceStats stats = service.stats();
    err << "smilab serve: " << handled << " request(s), " << stats.simulations
        << " simulated, " << stats.cache.hits << " cache hit(s), "
        << stats.errors << " error(s)\n";
    return 0;
  }

  // Daemon mode: block the shutdown signals BEFORE the server (and its
  // handler threads) exist, so they are only ever delivered to sigwait.
  sigset_t shutdown_set;
  sigemptyset(&shutdown_set);
  sigaddset(&shutdown_set, SIGINT);
  sigaddset(&shutdown_set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &shutdown_set, nullptr);
  try {
    serve::SocketServer server{service, socket_path};
    server.start();
    out << "smilab serve: listening on " << socket_path << " ("
        << service.stats().workers << " worker(s), cache "
        << cfg.cache_bytes / 1000000 << " MB / " << cfg.cache_shards
        << " shard(s))\n";
    out.flush();
    int sig = 0;
    sigwait(&shutdown_set, &sig);
    server.stop();
    const serve::ServiceStats stats = service.stats();
    out << "smilab serve: shut down (" << server.connections_accepted()
        << " connection(s), " << stats.requests << " request(s), "
        << stats.simulations << " simulated, " << stats.cache.hits
        << " cache hit(s))\n";
  } catch (const std::runtime_error& e) {
    return fail(err, e.what());
  }
  return 0;
}

void print_report(const mc::ExplorationReport& rep, std::ostream& out) {
  out << "    verdict: " << mc::to_string(rep.verdict) << "\n";
  out << "    schedules: " << rep.schedules_run << " run, "
      << rep.schedules_pruned << " pruned, " << rep.choice_points
      << " choice point(s), max depth " << rep.max_depth_seen
      << (rep.exhausted() ? "" : "  [INCOMPLETE: budget or depth cap hit]")
      << "\n";
  if (rep.any_completed) {
    out << "    canonical hash: " << std::hex << rep.canonical_hash
        << std::dec << "\n";
  }
  if (rep.verdict == mc::Verdict::kDivergent) {
    out << "    divergent schedule: " << rep.divergent_token << " (hash "
        << std::hex << rep.divergent_hash << std::dec << ")\n";
    out << "    replay: smilab check --program=NAME --replay="
        << rep.divergent_token << "\n";
  }
  if (!rep.deadlock_token.empty()) {
    out << "    deadlocking schedule: " << rep.deadlock_token << " ("
        << to_string(rep.deadlock_status) << ")\n";
  }
  if (!rep.checker_note.empty()) {
    out << "    checker note: " << rep.checker_note << "\n";
  }
}

int cmd_check(const Options& options, std::ostream& out, std::ostream& err) {
  std::string error;
  const std::string program = options.get("program", "");
  const bool list = options.get_bool("list", false);
  const auto max_schedules = options.get_int(
      "max-schedules", static_cast<long long>(mc::kCorpusMaxSchedules),
      &error);
  const auto max_depth = options.get_int(
      "max-depth", static_cast<long long>(mc::kCorpusMaxDepth), &error);
  const bool no_prune = options.get_bool("no-prune", false);
  const std::string replay_token = options.get("replay", "");
  if (!error.empty()) return fail(err, error);
  if (const int rc = check_leftovers(options, err)) return rc;
  if (max_schedules < 1) return fail(err, "--max-schedules must be >= 1");
  if (max_depth < 1) return fail(err, "--max-depth must be >= 1");

  if (list) {
    for (const mc::McCase& c : mc::corpus()) {
      out << "  " << c.name << ": " << c.summary << "\n";
    }
    return 0;
  }

  mc::ExplorerOptions eopts;
  eopts.max_schedules = static_cast<std::size_t>(max_schedules);
  eopts.max_depth = static_cast<std::size_t>(max_depth);
  eopts.prune = !no_prune;
  // The pinned corpus counts are defined at the default budgets with
  // pruning on; a custom exploration is informative, not a gate.
  const bool gate = !options.has("max-schedules") && !options.has("max-depth");

  if (!replay_token.empty()) {
    if (program.empty()) return fail(err, "--replay requires --program=NAME");
    const mc::McCase* c = mc::find_case(program);
    if (c == nullptr) {
      return fail(err, "unknown program '" + program + "' (try --list)");
    }
    const auto trace = mc::ScheduleTrace::parse(replay_token);
    if (!trace) {
      return fail(err, "malformed replay token '" + replay_token + "'");
    }
    mc::Explorer explorer{c->target, eopts};
    const mc::ExplorationReport rep = explorer.replay(*trace);
    out << "replaying " << c->name << " schedule " << trace->to_token()
        << ":\n";
    print_report(rep, out);
    if (rep.verdict == mc::Verdict::kCheckerBug) return 3;
    if (!rep.deadlock_report.empty()) err << rep.deadlock_report << "\n";
    return rep.deadlock_token.empty() ? 0 : 3;
  }

  bool all_ok = true;
  std::size_t ran = 0;
  for (const mc::McCase& c : mc::corpus()) {
    if (!program.empty() && program != c.name) continue;
    ++ran;
    mc::Explorer explorer{c.target, eopts};
    const mc::ExplorationReport rep = explorer.explore();
    out << "  " << c.name << ":\n";
    print_report(rep, out);
    if (!gate) continue;
    const std::size_t want_schedules =
        no_prune ? c.expect_schedules_noprune : c.expect_schedules;
    const std::size_t want_pruned = no_prune ? 0 : c.expect_pruned;
    if (rep.verdict != c.expect_verdict) {
      err << "smilab: " << c.name << ": expected verdict '"
          << mc::to_string(c.expect_verdict) << "', got '"
          << mc::to_string(rep.verdict) << "'\n";
      all_ok = false;
    }
    if (rep.schedules_run != want_schedules ||
        rep.schedules_pruned != want_pruned) {
      err << "smilab: " << c.name << ": expected " << want_schedules
          << " schedule(s) (" << want_pruned << " pruned), got "
          << rep.schedules_run << " (" << rep.schedules_pruned
          << " pruned) — a choice point appeared or vanished\n";
      all_ok = false;
    }
    if (!rep.exhausted()) {
      err << "smilab: " << c.name
          << ": exploration did not finish within the corpus budgets\n";
      all_ok = false;
    }
  }
  if (ran == 0) {
    return fail(err, "unknown program '" + program + "' (try --list)");
  }
  if (!all_ok) return 3;
  out << (gate ? "all " : "") << std::to_string(ran)
      << " corpus case(s) explored" << (gate ? ", all pins hold" : "")
      << "\n";
  return 0;
}

}  // namespace

const char* cli_usage() { return kUsage; }

int run_cli_command(const Options& options, std::ostream& out,
                    std::ostream& err) {
  const std::string& command = options.command();
  if (command.empty() || command == "help") {
    out << kUsage;
    return command.empty() ? 2 : 0;
  }
  if (command == "nas") return cmd_nas(options, out, err);
  if (command == "convolve") return cmd_convolve(options, out, err);
  if (command == "unixbench") return cmd_unixbench(options, out, err);
  if (command == "detect") return cmd_detect(options, out, err);
  if (command == "rim") return cmd_rim(options, out, err);
  if (command == "faults") return cmd_faults(options, out, err);
  if (command == "serve") return cmd_serve(options, out, err);
  if (command == "check") return cmd_check(options, out, err);
  return fail(err, "unknown command '" + command + "' (see 'smilab help')");
}

int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err) {
  std::string error;
  const auto options = Options::parse(argc, argv, &error);
  if (!options) {
    err << "smilab: " << error << "\n" << kUsage;
    return 2;
  }
  // Degrade gracefully: a faulting simulation prints its diagnosis and
  // maps to exit code 3, distinct from usage errors (2).
  try {
    return run_cli_command(*options, out, err);
  } catch (const SimulationError& e) {
    err << "smilab: simulation fault (" << to_string(e.status()) << ")\n"
        << e.what() << "\n";
    return 3;
  } catch (const std::exception& e) {
    err << "smilab: error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace smilab
