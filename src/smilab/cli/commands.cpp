#include "smilab/cli/commands.h"

#include <fstream>

#include "smilab/apps/convolve/workload.h"
#include "smilab/apps/nas/nas.h"
#include "smilab/apps/nas/runner.h"
#include "smilab/apps/unixbench/unixbench.h"
#include "smilab/cpu/energy.h"
#include "smilab/noise/hwlat.h"
#include "smilab/sim/system.h"
#include "smilab/smm/rim.h"
#include "smilab/trace/chrome_trace.h"

namespace smilab {

namespace {

constexpr const char* kUsage = R"(smilab — SMI noise laboratory

usage: smilab <command> [--flag=value ...]

commands:
  nas        --workload=ep|bt|ft --class=A|B|C [--nodes=N] [--ranks-per-node=1|4]
             [--htt] [--smi=none|short|long] [--interval-ms=N] [--trials=N]
             [--seed=N]
             Run one NAS table cell (calibrated against the paper baseline)
             under the chosen SMI regime.
  convolve   [--case=cf|cu] [--cpus=1..8] [--smi=none|short|long]
             [--gap-ms=N] [--seed=N]
             The Figure-1 multithreaded convolution at one sweep point.
  unixbench  [--cpus=1..8] [--smi=none|short|long] [--gap-ms=N] [--seed=N]
             The Figure-2 five-test index at one sweep point.
  detect     [--smi=short|long] [--gap-ms=N] [--duration-s=N]
             [--window-ms=N] [--period-ms=N]
             hwlat-style TSC-gap detection, scored against ground truth.
  rim        [--scan-mb=X] [--interval-ms=N] [--total-mb=X] [--nodes=N]
             A RIM (SMM integrity scanning) policy: residency, duty cycle,
             detection latency, and measured application slowdown.
  help       This text.

common:
  --trace=FILE   write a Chrome trace of the (last) run to FILE.
)";

SmiConfig smi_from(const Options& options, std::string* error) {
  const std::string kind = options.get("smi", "long");
  const auto gap = options.get_int("gap-ms", options.get_int("interval-ms", 1000, error), error);
  if (kind == "none") return SmiConfig::none();
  if (kind == "short") return SmiConfig::short_with_gap(gap);
  if (kind == "long") return SmiConfig::long_with_gap(gap);
  *error = "unknown --smi kind '" + kind + "' (none|short|long)";
  return SmiConfig::none();
}

int fail(std::ostream& err, const std::string& message) {
  err << "smilab: " << message << "\n";
  return 2;
}

int check_leftovers(const Options& options, std::ostream& err) {
  const auto extra = options.unconsumed();
  if (extra.empty()) return 0;
  std::string message = "unknown flag(s):";
  for (const auto& key : extra) message += " --" + key;
  return fail(err, message);
}

void maybe_write_trace(const Options& options, const System& sys,
                       std::ostream& out, std::ostream& err) {
  const std::string path = options.get("trace", "");
  if (path.empty()) return;
  std::ofstream file{path};
  if (!file) {
    err << "smilab: cannot open trace file '" << path << "'\n";
    return;
  }
  file << to_chrome_trace(sys);
  out << "chrome trace written to " << path << "\n";
}

int cmd_nas(const Options& options, std::ostream& out, std::ostream& err) {
  std::string error;
  const std::string workload = options.get("workload", "ep");
  NasJobSpec spec;
  if (workload == "ep") spec.bench = NasBenchmark::kEP;
  else if (workload == "bt") spec.bench = NasBenchmark::kBT;
  else if (workload == "ft") spec.bench = NasBenchmark::kFT;
  else return fail(err, "unknown --workload '" + workload + "' (ep|bt|ft)");

  const std::string cls = options.get("class", "A");
  if (cls == "A") spec.cls = NasClass::kA;
  else if (cls == "B") spec.cls = NasClass::kB;
  else if (cls == "C") spec.cls = NasClass::kC;
  else return fail(err, "unknown --class '" + cls + "' (A|B|C)");

  spec.nodes = static_cast<int>(options.get_int("nodes", 4, &error));
  spec.ranks_per_node =
      static_cast<int>(options.get_int("ranks-per-node", 1, &error));
  spec.htt = options.get_bool("htt", false);
  const auto trials = static_cast<int>(options.get_int("trials", 3, &error));
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 2016, &error));
  const SmiConfig smi = smi_from(options, &error);
  (void)options.get("trace", "");  // mark consumed
  if (!error.empty()) return fail(err, error);
  if (const int rc = check_leftovers(options, err)) return rc;
  if (!nas_valid_rank_count(spec.bench, spec.ranks())) {
    return fail(err, std::string(to_string(spec.bench)) +
                         " does not support " + std::to_string(spec.ranks()) +
                         " ranks (BT: square, FT: power of two)");
  }

  const NasKnob knob = calibrate_nas_knob(spec);
  OnlineStats base, noisy;
  for (int t = 0; t < trials; ++t) {
    base.add(simulate_nas_once(spec, knob, SmiConfig::none(), seed + static_cast<std::uint64_t>(t), 0.003));
    noisy.add(simulate_nas_once(spec, knob, smi, seed + static_cast<std::uint64_t>(t), 0.003));
  }
  out << "NAS " << to_string(spec.bench) << " class " << to_string(spec.cls)
      << ", " << spec.nodes << " node(s) x " << spec.ranks_per_node
      << " rank(s)/node" << (spec.htt ? ", HTT on" : "") << ", " << trials
      << " trial(s)\n";
  const auto paper = nas_paper_baseline(spec);
  const double work = nas_work_units(spec.bench, spec.cls);
  out << "  no SMIs:   " << base.mean() << " s";
  if (paper) out << "  (paper baseline " << *paper << " s)";
  out << ", " << work / base.mean() / 1e6 << " M" << nas_work_unit_name(spec.bench)
      << "/s";
  out << "\n  with SMIs: " << noisy.mean() << " s  ("
      << (noisy.mean() / base.mean() - 1.0) * 100.0 << "% slowdown), "
      << work / noisy.mean() / 1e6 << " M" << nas_work_unit_name(spec.bench)
      << "/s\n";
  return 0;
}

int cmd_convolve(const Options& options, std::ostream& out, std::ostream& err) {
  std::string error;
  const std::string which = options.get("case", "cu");
  ConvolveWorkload workload;
  if (which == "cf") workload = ConvolveWorkload::cache_friendly_workload();
  else if (which == "cu") workload = ConvolveWorkload::cache_unfriendly_workload();
  else return fail(err, "unknown --case '" + which + "' (cf|cu)");
  const auto cpus = static_cast<int>(options.get_int("cpus", 8, &error));
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 1, &error));
  const SmiConfig smi = smi_from(options, &error);
  (void)options.get("trace", "");
  if (!error.empty()) return fail(err, error);
  if (const int rc = check_leftovers(options, err)) return rc;
  if (cpus < 1 || cpus > 8) return fail(err, "--cpus must be 1..8");

  const auto base = run_convolve_sim(workload, cpus, SmiConfig::none(), seed);
  const auto noisy = run_convolve_sim(workload, cpus, smi, seed);
  out << "Convolve " << (which == "cf" ? "CacheFriendly" : "CacheUnfriendly")
      << " (" << workload.cache.l1_miss_rate * 100.0 << "% L1 miss), "
      << workload.threads << " threads on " << cpus << " logical CPU(s)\n";
  out << "  no SMIs:   " << base.seconds << " s\n";
  out << "  with SMIs: " << noisy.seconds << " s  ("
      << (noisy.seconds / base.seconds - 1.0) * 100.0 << "% slowdown, "
      << noisy.smi_hits << " SMM hits)\n";
  return 0;
}

int cmd_unixbench(const Options& options, std::ostream& out, std::ostream& err) {
  std::string error;
  UnixBenchOptions ub;
  ub.online_cpus = static_cast<int>(options.get_int("cpus", 8, &error));
  ub.seed = static_cast<std::uint64_t>(options.get_int("seed", 1, &error));
  const SmiConfig smi = smi_from(options, &error);
  (void)options.get("trace", "");
  if (!error.empty()) return fail(err, error);
  if (const int rc = check_leftovers(options, err)) return rc;
  if (ub.online_cpus < 1 || ub.online_cpus > 8) {
    return fail(err, "--cpus must be 1..8");
  }

  const UnixBenchResult clean = run_unixbench(ub);
  ub.smi = smi;
  const UnixBenchResult noisy = run_unixbench(ub);
  out << "UnixBench, " << ub.online_cpus << " logical CPU(s)\n";
  for (int i = 0; i < kUbTestCount; ++i) {
    out << "  " << to_string(static_cast<UbTest>(i)) << ": "
        << clean.score[static_cast<std::size_t>(i)] << " -> "
        << noisy.score[static_cast<std::size_t>(i)] << "\n";
  }
  out << "  total index: " << clean.index << " -> " << noisy.index << "  ("
      << (noisy.index / clean.index - 1.0) * 100.0 << "%)\n";
  return 0;
}

int cmd_detect(const Options& options, std::ostream& out, std::ostream& err) {
  std::string error;
  HwlatConfig config;
  config.duration = seconds(options.get_int("duration-s", 30, &error));
  config.window = milliseconds(options.get_int("window-ms", 500, &error));
  config.period = milliseconds(options.get_int("period-ms", 1000, &error));
  const SmiConfig smi = smi_from(options, &error);
  (void)options.get("trace", "");
  if (!error.empty()) return fail(err, error);
  if (const int rc = check_leftovers(options, err)) return rc;

  SystemConfig cfg;
  cfg.machine = MachineSpec::poweredge_r410_e5620();
  cfg.smi = smi;
  cfg.seed = 1;
  System sys{cfg};
  const HwlatReport report = run_hwlat_detector(sys, config);
  out << "hwlat: " << report.hits << " detection(s) over "
      << report.true_smis_during_windows << " in-window SMI(s)  (recall "
      << report.recall * 100.0 << "%)\n";
  if (report.hits > 0) {
    out << "  gap mean " << report.gap_us.mean() / 1e3 << " ms, max "
        << report.gap_us.max() / 1e3 << " ms, duration error "
        << report.mean_duration_error_us << " us\n";
  }
  maybe_write_trace(options, sys, out, err);
  return 0;
}

int cmd_rim(const Options& options, std::ostream& out, std::ostream& err) {
  std::string error;
  RimConfig rim;
  rim.scanned_bytes = options.get_double("scan-mb", 16.0, &error) * 1e6;
  rim.check_interval_jiffies = options.get_int("interval-ms", 1000, &error);
  const double total_mb = options.get_double("total-mb", 256.0, &error);
  const auto nodes = static_cast<int>(options.get_int("nodes", 1, &error));
  (void)options.get("trace", "");
  if (!error.empty()) return fail(err, error);
  if (const int rc = check_leftovers(options, err)) return rc;

  out << "RIM policy: " << rim.scanned_bytes / 1e6 << " MB per check, every "
      << rim.check_interval_jiffies << " ms\n";
  out << "  SMM residency:      " << rim.smm_duration().seconds() * 1e3 << " ms\n";
  out << "  duty cycle:         " << rim.duty_cycle() * 100.0 << " %\n";
  out << "  detection latency:  " << rim.detection_latency(total_mb * 1e6).seconds()
      << " s to cover " << total_mb << " MB\n";

  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.node_count = nodes;
  cfg.smi = rim.to_smi_config();
  cfg.seed = 5;
  System sys{cfg};
  for (int n = 0; n < nodes; ++n) {
    std::vector<Action> prog;
    prog.push_back(Compute{seconds(20)});
    sys.spawn(TaskSpec::with_actions("app" + std::to_string(n), n, std::move(prog)));
  }
  sys.run();
  const double wall = sys.last_finish_time().seconds();
  out << "  measured slowdown:  " << (wall / 20.0 - 1.0) * 100.0
      << " % on a 20 s compute task\n";
  out << "  BIOSBITS(150us):    "
      << sys.smm_accounting().biosbits_violations() << " violation(s)\n";
  const EnergyReport energy = estimate_energy(sys, PowerModel{});
  out << "  energy:             " << energy.joules << " J ("
      << energy.average_watts << " W avg/node)\n";
  return 0;
}

}  // namespace

const char* cli_usage() { return kUsage; }

int run_cli_command(const Options& options, std::ostream& out,
                    std::ostream& err) {
  const std::string& command = options.command();
  if (command.empty() || command == "help") {
    out << kUsage;
    return command.empty() ? 2 : 0;
  }
  if (command == "nas") return cmd_nas(options, out, err);
  if (command == "convolve") return cmd_convolve(options, out, err);
  if (command == "unixbench") return cmd_unixbench(options, out, err);
  if (command == "detect") return cmd_detect(options, out, err);
  if (command == "rim") return cmd_rim(options, out, err);
  return fail(err, "unknown command '" + command + "' (see 'smilab help')");
}

int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err) {
  std::string error;
  const auto options = Options::parse(argc, argv, &error);
  if (!options) {
    err << "smilab: " << error << "\n" << kUsage;
    return 2;
  }
  return run_cli_command(*options, out, err);
}

}  // namespace smilab
