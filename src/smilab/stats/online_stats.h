// Streaming summary statistics (Welford) and confidence intervals.
#pragma once

#include <cstddef>
#include <limits>

namespace smilab {

/// Numerically stable streaming mean/variance/min/max accumulator.
class OnlineStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;

  /// Standard error of the mean.
  [[nodiscard]] double sem() const;

  /// Half-width of an approximate 95% confidence interval on the mean
  /// (normal approximation — fine for the trial counts used here).
  [[nodiscard]] double ci95_half_width() const;

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const OnlineStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace smilab
