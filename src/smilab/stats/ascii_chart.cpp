#include "smilab/stats/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

namespace smilab {

namespace {

char symbol_for(std::size_t index) {
  constexpr const char* kSymbols = "12345678abcdefgh";
  return kSymbols[index % 16];
}

}  // namespace

std::string render_ascii_chart(const Series& data, const ChartOptions& options) {
  const std::size_t points = data.point_count();
  const std::size_t series_count = data.series_count();
  if (points < 2 || series_count == 0) return "(not enough data to chart)\n";

  double x_min = data.x(0);
  double x_max = data.x(0);
  double y_min = options.y_from_zero ? 0.0 : std::numeric_limits<double>::max();
  double y_max = std::numeric_limits<double>::lowest();
  for (std::size_t i = 0; i < points; ++i) {
    x_min = std::min(x_min, data.x(i));
    x_max = std::max(x_max, data.x(i));
    for (std::size_t s = 0; s < series_count; ++s) {
      y_min = std::min(y_min, data.y(s, i));
      y_max = std::max(y_max, data.y(s, i));
    }
  }
  if (x_max <= x_min || y_max <= y_min) return "(degenerate data range)\n";

  const int width = std::max(16, options.width);
  const int height = std::max(6, options.height);
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));

  auto col_of = [&](double x) {
    return static_cast<int>((x - x_min) / (x_max - x_min) * (width - 1) + 0.5);
  };
  auto row_of = [&](double y) {
    const double t = (y - y_min) / (y_max - y_min);
    return (height - 1) -
           static_cast<int>(t * (height - 1) + 0.5);  // row 0 = top
  };

  // Draw each series with per-column linear interpolation between samples.
  for (std::size_t s = 0; s < series_count; ++s) {
    const char symbol = symbol_for(s);
    for (std::size_t i = 0; i + 1 < points; ++i) {
      const int c0 = col_of(data.x(i));
      const int c1 = col_of(data.x(i + 1));
      const double y0 = data.y(s, i);
      const double y1 = data.y(s, i + 1);
      for (int c = c0; c <= c1; ++c) {
        const double t = c1 == c0 ? 0.0 : static_cast<double>(c - c0) / (c1 - c0);
        const int r = std::clamp(row_of(y0 + (y1 - y0) * t), 0, height - 1);
        grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = symbol;
      }
    }
  }

  std::string out;
  char label[64];
  for (int r = 0; r < height; ++r) {
    const double y =
        y_max - (y_max - y_min) * static_cast<double>(r) / (height - 1);
    if (r % 3 == 0 || r == height - 1) {
      std::snprintf(label, sizeof label, "%9.4g |", y);
    } else {
      std::snprintf(label, sizeof label, "%9s |", "");
    }
    out += label;
    out += grid[static_cast<std::size_t>(r)];
    out += '\n';
  }
  out += "          +";
  out.append(static_cast<std::size_t>(options.width), '-');
  out += '\n';
  std::snprintf(label, sizeof label, "%9s  %-10.4g", "", x_min);
  out += label;
  std::snprintf(label, sizeof label, "%*.4g\n", options.width - 12, x_max);
  out += label;
  if (!options.y_label.empty()) out += "  y: " + options.y_label + "\n";
  out += "  legend:";
  for (std::size_t s = 0; s < series_count; ++s) {
    out += ' ';
    out += symbol_for(s);
    out += '=' + data.series_name(s);
  }
  out += '\n';
  return out;
}

}  // namespace smilab
