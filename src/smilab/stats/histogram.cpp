#include "smilab/stats/histogram.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace smilab {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), bucket_width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  assert(hi > lo);
  assert(buckets > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / bucket_width_);
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + bucket_width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  return lo_ + bucket_width_ * static_cast<double>(i + 1);
}

double Histogram::percentile(double p) const {
  assert(p >= 0.0 && p <= 100.0);
  if (total_ == 0) return lo_;
  const double target = p / 100.0 * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (cum >= target && underflow_ > 0) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bucket_lo(i) + frac * bucket_width_;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::render(std::size_t width) const {
  std::size_t first = 0;
  std::size_t last = counts_.size();
  while (first < last && counts_[first] == 0) ++first;
  while (last > first && counts_[last - 1] == 0) --last;
  std::uint64_t peak = 1;
  for (std::size_t i = first; i < last; ++i) peak = std::max(peak, counts_[i]);

  std::string out;
  char line[160];
  for (std::size_t i = first; i < last; ++i) {
    const auto bars =
        static_cast<std::size_t>(static_cast<double>(counts_[i]) /
                                 static_cast<double>(peak) * static_cast<double>(width));
    std::snprintf(line, sizeof line, "[%10.4g, %10.4g) %8llu |", bucket_lo(i),
                  bucket_hi(i), static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bars, '#');
    out += '\n';
  }
  if (underflow_ > 0)
    out += "underflow: " + std::to_string(underflow_) + "\n";
  if (overflow_ > 0)
    out += "overflow: " + std::to_string(overflow_) + "\n";
  return out;
}

}  // namespace smilab
