// Tabular report construction: the bench binaries print the paper's tables
// as aligned text / markdown / CSV from these.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace smilab {

/// A simple row/column table with formatting helpers. Cells are strings;
/// numeric helpers format with fixed precision like the paper's tables.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Begin a new row; subsequent `cell` calls fill it left to right.
  Table& row();
  Table& cell(std::string text);
  Table& cell(double value, int precision = 2);
  Table& cell(long long value);

  /// A cell rendered as "-" (the paper uses this for configurations that
  /// do not fit in node memory).
  Table& dash();

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const { return headers_.size(); }
  [[nodiscard]] const std::string& at(std::size_t row, std::size_t col) const;

  [[nodiscard]] std::string to_aligned_text() const;
  [[nodiscard]] std::string to_markdown() const;
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// An (x, y-per-series) dataset for regenerating the paper's figures as
/// aligned columns / CSV. Each series is one line on the figure.
class Series {
 public:
  Series(std::string x_label, std::vector<std::string> series_names);

  void add_point(double x, const std::vector<double>& ys);

  [[nodiscard]] std::size_t point_count() const { return xs_.size(); }
  [[nodiscard]] double x(std::size_t i) const { return xs_[i]; }
  [[nodiscard]] double y(std::size_t series, std::size_t i) const {
    return ys_[series][i];
  }
  [[nodiscard]] std::size_t series_count() const { return names_.size(); }
  [[nodiscard]] const std::string& series_name(std::size_t i) const {
    return names_[i];
  }

  [[nodiscard]] std::string to_aligned_text(int precision = 3) const;
  [[nodiscard]] std::string to_csv(int precision = 6) const;

 private:
  std::string x_label_;
  std::vector<std::string> names_;
  std::vector<double> xs_;
  std::vector<std::vector<double>> ys_;  // [series][point]
};

}  // namespace smilab
