// ASCII line-chart rendering for figure benches: regenerating a paper
// *figure* should produce something that reads like one in a terminal, not
// just a column dump.
#pragma once

#include <string>

#include "smilab/stats/table.h"

namespace smilab {

struct ChartOptions {
  int width = 72;    ///< plot-area columns
  int height = 18;   ///< plot-area rows
  bool y_from_zero = true;
  std::string y_label;
};

/// Render every series of `data` into one chart. Series i>=1 is drawn with
/// the last character of its name if unique, else '1'..'9a'..; a legend
/// line maps symbols to series names. Points between samples are linearly
/// interpolated along x columns.
[[nodiscard]] std::string render_ascii_chart(const Series& data,
                                             const ChartOptions& options = {});

}  // namespace smilab
