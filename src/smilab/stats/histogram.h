// Fixed-bucket histogram with percentile queries, used by the SMI latency
// characterization and the hwlat-style detector.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace smilab {

/// Linear-bucket histogram over [lo, hi); values outside the range land in
/// underflow/overflow counters so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);

  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] double bucket_hi(std::size_t i) const;

  /// Approximate percentile (linear interpolation inside the bucket).
  /// `p` in [0, 100]. Returns lo/hi bounds for empty histograms.
  [[nodiscard]] double percentile(double p) const;

  /// ASCII rendering for reports; omits empty leading/trailing buckets.
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  double bucket_width_;
  std::vector<std::uint64_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace smilab
