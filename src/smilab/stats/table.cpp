#include "smilab/stats/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace smilab {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  assert(!headers_.empty());
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(std::string text) {
  assert(!rows_.empty());
  assert(rows_.back().size() < headers_.size());
  rows_.back().push_back(std::move(text));
  return *this;
}

Table& Table::cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return cell(std::string{buf});
}

Table& Table::cell(long long value) {
  return cell(std::to_string(value));
}

Table& Table::dash() { return cell("-"); }

const std::string& Table::at(std::size_t row, std::size_t col) const {
  return rows_.at(row).at(col);
}

namespace {

std::vector<std::size_t> column_widths(const std::vector<std::string>& headers,
                                       const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(headers.size());
  for (std::size_t c = 0; c < headers.size(); ++c) widths[c] = headers[c].size();
  for (const auto& row : rows)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  return widths;
}

void append_padded(std::string& out, const std::string& text, std::size_t width) {
  // Right-align: these tables are numeric.
  if (text.size() < width) out.append(width - text.size(), ' ');
  out += text;
}

}  // namespace

std::string Table::to_aligned_text() const {
  const auto widths = column_widths(headers_, rows_);
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out += "  ";
    append_padded(out, headers_[c], widths[c]);
  }
  out += '\n';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out += "  ";
    out.append(widths[c], '-');
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c) out += "  ";
      append_padded(out, c < row.size() ? row[c] : std::string{}, widths[c]);
    }
    out += '\n';
  }
  return out;
}

std::string Table::to_markdown() const {
  std::string out = "|";
  for (const auto& h : headers_) out += " " + h + " |";
  out += "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) out += "---|";
  out += '\n';
  for (const auto& row : rows_) {
    out += '|';
    for (std::size_t c = 0; c < headers_.size(); ++c)
      out += " " + (c < row.size() ? row[c] : std::string{}) + " |";
    out += '\n';
  }
  return out;
}

std::string Table::to_csv() const {
  std::string out;
  auto append_row = [&out](const std::vector<std::string>& cells, std::size_t n) {
    for (std::size_t c = 0; c < n; ++c) {
      if (c) out += ',';
      if (c < cells.size()) out += cells[c];
    }
    out += '\n';
  };
  append_row(headers_, headers_.size());
  for (const auto& row : rows_) append_row(row, headers_.size());
  return out;
}

Series::Series(std::string x_label, std::vector<std::string> series_names)
    : x_label_(std::move(x_label)), names_(std::move(series_names)),
      ys_(names_.size()) {}

void Series::add_point(double x, const std::vector<double>& ys) {
  assert(ys.size() == names_.size());
  xs_.push_back(x);
  for (std::size_t s = 0; s < ys.size(); ++s) ys_[s].push_back(ys[s]);
}

std::string Series::to_aligned_text(int precision) const {
  Table t{[this] {
    std::vector<std::string> headers{x_label_};
    headers.insert(headers.end(), names_.begin(), names_.end());
    return headers;
  }()};
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    t.row().cell(xs_[i], 0);
    for (std::size_t s = 0; s < names_.size(); ++s) t.cell(ys_[s][i], precision);
  }
  return t.to_aligned_text();
}

std::string Series::to_csv(int precision) const {
  std::string out = x_label_;
  for (const auto& n : names_) out += "," + n;
  out += '\n';
  char buf[64];
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, xs_[i]);
    out += buf;
    for (std::size_t s = 0; s < names_.size(); ++s) {
      std::snprintf(buf, sizeof buf, ",%.*g", precision, ys_[s][i]);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace smilab
