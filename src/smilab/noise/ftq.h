// Fixed Time Quantum (FTQ) noise characterization (Sottile & Minnich):
// execute back-to-back fixed work quanta and record how long each actually
// took; the slip distribution is the machine's noise profile. SMIs appear
// as rare, large slips — the signature that distinguishes them from the
// dense, small slips of OS noise.
#pragma once

#include <vector>

#include "smilab/sim/system.h"
#include "smilab/stats/histogram.h"
#include "smilab/stats/online_stats.h"

namespace smilab {

struct FtqConfig {
  SimDuration quantum = milliseconds(1);  ///< nominal work per sample
  SimDuration duration = seconds(30);
  int node = 0;
  int pinned_cpu = -1;
};

struct FtqReport {
  std::int64_t quanta = 0;
  OnlineStats slip_us;          ///< (actual - nominal) per quantum, us
  std::int64_t big_slips = 0;   ///< slips > 10x the p50 slip
  double max_slip_us = 0.0;
  std::vector<double> slips_us; ///< the full per-quantum slip timeline

  /// Fraction of total time lost to slip (the noise share).
  [[nodiscard]] double noise_fraction(SimDuration quantum) const {
    const double nominal_us = quantum.seconds() * 1e6;
    return slip_us.mean() / (nominal_us + slip_us.mean());
  }
};

/// Run the FTQ benchmark on `sys` (alongside any existing tasks) and
/// summarize the slip distribution.
FtqReport run_ftq(System& sys, const FtqConfig& config);

}  // namespace smilab
