#include "smilab/noise/ftq.h"

#include <algorithm>
#include <memory>
#include <vector>

namespace smilab {

namespace {

struct FtqState {
  FtqConfig config;
  System* sys = nullptr;
  SimTime deadline;
  SimTime last{-1};
  FtqReport report;
  std::vector<double> slips_us;
};

}  // namespace

FtqReport run_ftq(System& sys, const FtqConfig& config) {
  auto state = std::make_shared<FtqState>();
  state->config = config;
  state->sys = &sys;
  state->deadline = sys.now() + config.duration;

  auto generator = [state]() -> std::optional<Action> {
    System& sys_ref = *state->sys;
    if (state->last >= SimTime::zero()) {
      const SimDuration actual = sys_ref.now() - state->last;
      const double slip_us =
          (actual - state->config.quantum).seconds() * 1e6;
      state->report.quanta += 1;
      state->report.slip_us.add(slip_us);
      state->slips_us.push_back(slip_us);
      state->report.max_slip_us = std::max(state->report.max_slip_us, slip_us);
    }
    if (sys_ref.now() >= state->deadline) return std::nullopt;
    state->last = sys_ref.now();
    return Action{Compute{state->config.quantum}};
  };

  TaskSpec spec;
  spec.name = "ftq";
  spec.node = config.node;
  spec.pinned_cpu = config.pinned_cpu;
  spec.profile.hot_set_fraction = 0.05;  // small resident kernel
  spec.wait_policy = WaitPolicy::kBlock;
  spec.actions = std::make_unique<GeneratorActions>(std::move(generator));
  sys.spawn(std::move(spec));
  sys.run();

  FtqReport report = std::move(state->report);
  if (!state->slips_us.empty()) {
    std::vector<double> sorted = state->slips_us;
    std::sort(sorted.begin(), sorted.end());
    const double p50 = sorted[sorted.size() / 2];
    const double cutoff = std::max(10.0 * std::max(p50, 1.0), 100.0);
    for (const double s : sorted) report.big_slips += s > cutoff ? 1 : 0;
  }
  report.slips_us = std::move(state->slips_us);
  return report;
}

}  // namespace smilab
