#include "smilab/noise/injector.h"

#include <string>

namespace smilab {

OsNoiseInjector::OsNoiseInjector(System& sys, OsNoiseConfig config)
    : sys_(sys), config_(config) {
  const int nodes = sys.cluster().node_count();
  node_rng_.reserve(static_cast<std::size_t>(nodes));
  next_cpu_.resize(static_cast<std::size_t>(nodes), config.cpu);
  for (int n = 0; n < nodes; ++n) {
    node_rng_.push_back(sys.make_rng("osnoise." + std::to_string(n)));
    const SimDuration phase =
        config_.fixed_initial_phase >= SimDuration::zero()
            ? config_.fixed_initial_phase
            : node_rng_.back().uniform_duration(SimDuration::zero(),
                                                config_.interval);
    arm(n, phase);
  }
}

void OsNoiseInjector::arm(int node, SimDuration delay) {
  sys_.engine().schedule_after(delay, [this, node] { fire(node); });
}

void OsNoiseInjector::fire(int node) {
  ++events_;
  // Skip the event if the node is mid-SMM (an OS-level wakeup would simply
  // be deferred; keeping the schedules disjoint also keeps freeze state
  // single-owner).
  if (!sys_.node_in_smm(node)) {
    int victim = next_cpu_[static_cast<std::size_t>(node)];
    const Node& topo = sys_.cluster().node(node);
    if (!topo.is_online(victim)) victim = 0;
    sys_.preempt_cpu(node, victim);
    sys_.engine().schedule_after(config_.duration, [this, node, victim] {
      sys_.resume_cpu(node, victim);
    });
    if (config_.rotate_cpus) {
      int next = victim;
      do {
        next = (next + 1) % topo.cpu_count();
      } while (!topo.is_online(next));
      next_cpu_[static_cast<std::size_t>(node)] = next;
    }
  }
  arm(node, config_.interval);
}

}  // namespace smilab
