// Generic OS-level noise injector (Ferreira-style kernel noise injection
// [24]) and the attribution analyzer.
//
// The injector periodically preempts ONE logical CPU per node for a fixed
// duration — a daemon wakeup, an interrupt storm, a kernel thread. The
// contrast with SmiController is the paper's central point: an SMI stops
// every CPU and the NIC; OS noise of identical duty cycle does not, so a
// multithreaded or MPI application can absorb it. The ablation bench
// quantifies the difference.
#pragma once

#include "smilab/sim/system.h"
#include "smilab/time/rng.h"

namespace smilab {

struct OsNoiseConfig {
  SimDuration duration = milliseconds(105);  ///< per event (match long SMIs)
  SimDuration interval = seconds(1);         ///< between events, per node
  int cpu = 0;                               ///< node-local victim CPU
  bool rotate_cpus = false;                  ///< round-robin the victim
  SimDuration fixed_initial_phase = SimDuration{-1};
};

/// Periodic single-CPU preemption on every node of the system. Construct
/// after System; lives as long as the run.
class OsNoiseInjector {
 public:
  OsNoiseInjector(System& sys, OsNoiseConfig config);

  [[nodiscard]] std::int64_t events() const { return events_; }

 private:
  void arm(int node, SimDuration delay);
  void fire(int node);

  System& sys_;
  OsNoiseConfig config_;
  std::vector<Rng> node_rng_;
  std::vector<int> next_cpu_;
  std::int64_t events_ = 0;
};

/// Quantifies what a /proc-based profiler would get wrong about a task:
/// SMM time silently charged to it.
struct AttributionReport {
  SimDuration os_view{};
  SimDuration true_time{};
  SimDuration misattributed{};
  double misattribution_fraction = 0.0;  ///< of the OS-view CPU time

  static AttributionReport from(const TaskStats& stats) {
    AttributionReport report;
    report.os_view = stats.os_view_cpu_time;
    report.true_time = stats.true_cpu_time;
    report.misattributed = stats.os_view_cpu_time - stats.true_cpu_time;
    if (stats.os_view_cpu_time > SimDuration::zero()) {
      report.misattribution_fraction =
          report.misattributed / report.os_view;
    }
    return report;
  }
};

}  // namespace smilab
