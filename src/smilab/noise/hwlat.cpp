#include "smilab/noise/hwlat.h"

#include <algorithm>
#include <cmath>
#include <memory>

namespace smilab {

namespace {

struct DetectorState {
  HwlatConfig config;
  System* sys = nullptr;
  SimTime deadline;
  SimTime last_check{-1};
  int quanta_left_in_window = 0;
  HwlatReport report;
  std::vector<std::pair<SimTime, SimTime>> windows;  // sampling intervals
  SimTime window_start;
};

}  // namespace

HwlatReport run_hwlat_detector(System& sys, const HwlatConfig& config) {
  auto state = std::make_shared<DetectorState>();
  state->config = config;
  state->sys = &sys;
  state->deadline = sys.now() + config.duration;

  const int quanta_per_window =
      std::max(1, static_cast<int>(config.window / config.quantum));
  const SimDuration idle = config.period - config.window;

  auto generator = [state, quanta_per_window, idle]() -> std::optional<Action> {
    System& sys_ref = *state->sys;
    if (state->quanta_left_in_window == 0) {
      // Close the previous window, if any.
      if (state->last_check >= SimTime::zero()) {
        state->windows.emplace_back(state->window_start, sys_ref.now());
      }
      if (sys_ref.now() >= state->deadline) return std::nullopt;
      state->quanta_left_in_window = quanta_per_window;
      state->last_check = SimTime{-1};
      if (idle > SimDuration::zero() && !state->windows.empty()) {
        return Action{Sleep{idle}};
      }
    }
    // Issue the compute; the *next* generator call observes the elapsed
    // time, which is exactly how a spin loop sees TSC gaps.
    state->quanta_left_in_window -= 1;
    if (state->last_check < SimTime::zero()) {
      state->window_start = sys_ref.now();  // first quantum after any sleep
    }
    if (state->last_check >= SimTime::zero()) {
      const SimDuration elapsed = sys_ref.now() - state->last_check;
      const SimDuration gap = elapsed - state->config.quantum;
      state->report.samples += 1;
      if (gap > state->config.threshold) {
        state->report.hits += 1;
        const double gap_us = gap.seconds() * 1e6;
        state->report.gap_us.add(gap_us);
        state->report.gaps_us.push_back(gap_us);
      }
    }
    state->last_check = sys_ref.now();
    return Action{Compute{state->config.quantum}};
  };

  TaskSpec spec;
  spec.name = "hwlat-detector";
  spec.node = config.node;
  spec.pinned_cpu = config.pinned_cpu;
  // A register-resident spin loop: nothing to re-warm after SMM, and it
  // leaves issue slots for an HTT sibling.
  spec.profile.htt_efficiency = 0.85;
  spec.profile.hot_set_fraction = 0.0;
  spec.wait_policy = WaitPolicy::kBlock;
  spec.actions = std::make_unique<GeneratorActions>(std::move(generator));
  sys.spawn(std::move(spec));
  sys.run();

  // Ground truth: SMIs on this node that overlap a sampling window.
  HwlatReport report = std::move(state->report);
  double duration_error_sum = 0.0;
  std::int64_t matched = 0;
  for (const SmmInterval& interval : sys.smm_accounting().intervals()) {
    if (interval.node != config.node) continue;
    const bool in_window = std::any_of(
        state->windows.begin(), state->windows.end(), [&](const auto& w) {
          return interval.enter < w.second && interval.exit > w.first;
        });
    if (!in_window) continue;
    report.true_smis_during_windows += 1;
    // Nearest detection by magnitude: good enough to estimate accuracy.
    const double true_us = interval.duration().seconds() * 1e6;
    double best = -1.0;
    for (const double g : report.gaps_us) {
      if (best < 0 || std::abs(g - true_us) < std::abs(best - true_us)) best = g;
    }
    if (best >= 0) {
      duration_error_sum += std::abs(best - true_us);
      ++matched;
    }
  }
  if (report.true_smis_during_windows > 0) {
    report.recall = static_cast<double>(report.hits) /
                    static_cast<double>(report.true_smis_during_windows);
  }
  if (matched > 0) {
    report.mean_duration_error_us = duration_error_sum / static_cast<double>(matched);
  }
  return report;
}

}  // namespace smilab
