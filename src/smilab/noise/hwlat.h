// hwlat-style SMI detector (the tool latency-sensitive users run [21]).
//
// A detector thread busy-spins reading the TSC and flags any gap between
// consecutive reads above a threshold: because the TSC keeps counting
// through SMM while the CPU cannot execute, a long gap is the signature of
// an SMI (or another preemption). The simulator version samples in fixed
// quanta; anything that freezes the CPU for longer than the threshold is
// caught. The report compares detections against the simulator's ground
// truth, quantifying detector recall and duration accuracy — something a
// real system can never do.
#pragma once

#include <cstdint>
#include <vector>

#include "smilab/sim/system.h"
#include "smilab/stats/histogram.h"
#include "smilab/stats/online_stats.h"

namespace smilab {

struct HwlatConfig {
  /// Busy-sampling window per period (hwlat default: half the period).
  SimDuration window = milliseconds(500);
  SimDuration period = seconds(1);
  /// TSC-read granularity of the spin loop.
  SimDuration quantum = microseconds(100);
  /// Report a hit when a gap exceeds this (hwlat default 10 us).
  SimDuration threshold = microseconds(50);
  /// Total detector runtime.
  SimDuration duration = seconds(30);
  int node = 0;
  int pinned_cpu = -1;
};

struct HwlatReport {
  std::int64_t samples = 0;      ///< TSC-read quanta executed
  std::int64_t hits = 0;         ///< gaps above threshold
  OnlineStats gap_us;            ///< detected gap lengths (microseconds)
  std::vector<double> gaps_us;   ///< individual detections

  // Ground-truth comparison (filled by run_hwlat_detector).
  std::int64_t true_smis_during_windows = 0;  ///< SMIs overlapping sampling
  double recall = 0.0;           ///< hits / true SMIs in-window
  double mean_duration_error_us = 0.0;  ///< |detected - true| average
};

/// Spawn the detector into `sys`, run the system to completion of all
/// tasks, and build the report. Other workload tasks may already be
/// spawned; the detector coexists with them.
HwlatReport run_hwlat_detector(System& sys, const HwlatConfig& config);

}  // namespace smilab
