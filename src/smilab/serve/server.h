// Serve front ends: a stream pump (--stdin-batch, tests) and a Unix-domain
// socket server, both newline-delimited JSON over one SweepService.
//
// Protocol (both transports): one request per line, one response line per
// request, in request order per connection. Responses to different
// connections interleave freely — each connection gets its own handler
// thread, and SweepService::serve_line is fully thread-safe.
//
// The socket server binds AF_UNIX. A path starting with '@' selects the
// Linux abstract namespace ('\0'-prefixed, auto-reclaimed on close — no
// stale socket files for tests and CI); any other path is a filesystem
// socket, unlinked on startup and shutdown.
//
// No wall-clock anywhere here (smilint D1): timeouts and latency belong to
// the client side (bench/serve_loadgen).
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "smilab/serve/service.h"

namespace smilab::serve {

/// Pump requests from `in` to `out` until EOF: one serve_line per input
/// line (blank lines skipped), responses flushed per line. Returns the
/// number of requests handled.
std::int64_t serve_stream(SweepService& service, std::istream& in,
                          std::ostream& out);

/// Newline-delimited JSON over a Unix-domain socket.
class SocketServer {
 public:
  /// Binds and listens immediately; accepting starts on start().
  /// Throws std::runtime_error if the socket cannot be bound.
  SocketServer(SweepService& service, const std::string& path);
  ~SocketServer();
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Launch the accept loop (one thread) — handler threads spawn per
  /// connection.
  void start();

  /// Stop accepting, unblock and join every handler, close all fds.
  /// Idempotent; also run by the destructor.
  void stop();

  [[nodiscard]] const std::string& path() const;

  /// Connections accepted so far (diagnostics).
  [[nodiscard]] std::int64_t connections_accepted() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace smilab::serve
