// Minimal JSON for the serve wire protocol (newline-delimited request and
// response lines, serve/request.h describes the schema).
//
// Deliberately tiny and dependency-free: the requests are flat objects of
// scalars, so the parser supports exactly RFC-8259 structure (objects,
// arrays, strings with the common escapes, numbers, booleans, null) minus
// \uXXXX escapes, and preserves object key order (canonicalization is done
// by serve/request.cpp against the *parsed* fields, so wire-level key order
// and whitespace never matter).
//
// Writing goes through JsonWriter, which emits keys in call order — the
// serve daemon's cached payloads are byte-exact strings, so the writer is
// the single place response formatting lives. Doubles are rendered with
// %.17g (round-trip exact for IEEE-754 binary64): a cache hit replays the
// stored bytes, and a recomputation of the same deterministic simulation
// reproduces them bit-for-bit.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace smilab::serve {

/// A parsed JSON value. Object members keep their wire order.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject
  std::vector<JsonValue> elements;                         // kArray

  /// Find a member of an object (nullptr when absent or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Integral-valued number accessor: nullopt unless the value is a number
  /// representing an exact integer in [lo, hi].
  [[nodiscard]] std::optional<std::int64_t> as_int(
      std::int64_t lo, std::int64_t hi) const;
};

/// Parse one JSON document (must consume the whole input apart from
/// whitespace). Returns nullopt with a position-stamped message in *error.
[[nodiscard]] std::optional<JsonValue> parse_json(std::string_view text,
                                                  std::string* error);

/// Escape a string for embedding in a JSON document (adds no quotes).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Append-only JSON object/array writer with deterministic number
/// formatting (see file comment).
class JsonWriter {
 public:
  JsonWriter() { out_.reserve(128); }

  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array(std::string_view key) {
    key_prefix(key);
    out_.push_back('[');
    first_ = true;
  }
  void end_array() { close(']'); }

  void field(std::string_view key, std::string_view value) {
    key_prefix(key);
    out_.push_back('"');
    out_ += json_escape(value);
    out_.push_back('"');
  }
  void field(std::string_view key, const char* value) {
    field(key, std::string_view{value});
  }
  void field(std::string_view key, bool value) {
    key_prefix(key);
    out_ += value ? "true" : "false";
  }
  void field(std::string_view key, double value);
  void field(std::string_view key, std::int64_t value) {
    key_prefix(key);
    out_ += std::to_string(value);
  }
  void field(std::string_view key, int value) {
    field(key, static_cast<std::int64_t>(value));
  }
  /// A pre-rendered JSON value spliced in verbatim (response envelopes
  /// embed cached payload bytes untouched).
  void raw_field(std::string_view key, std::string_view json) {
    key_prefix(key);
    out_ += json;
  }
  /// Array element (between begin_array/end_array).
  void element(double value);

  [[nodiscard]] std::string take() { return std::move(out_); }
  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  void open(char c) {
    comma();
    out_.push_back(c);
    first_ = true;
  }
  void close(char c) {
    out_.push_back(c);
    first_ = false;
  }
  void comma() {
    if (!first_) out_.push_back(',');
    first_ = false;
  }
  void key_prefix(std::string_view key) {
    comma();
    out_.push_back('"');
    out_ += json_escape(key);
    out_ += "\":";
  }

  std::string out_;
  bool first_ = true;
};

/// Render a 64-bit key as fixed-width lowercase hex (the wire form of a
/// canonical cache key).
[[nodiscard]] std::string key_hex(std::uint64_t key);

}  // namespace smilab::serve
