// Serve request schema and canonicalization.
//
// A request line is one JSON object naming an experiment kind plus its
// parameters, e.g.
//   {"experiment":"nas","workload":"ft","class":"A","nodes":4,"smi":"long"}
// Parsing applies the same defaults the CLI uses and REJECTS unknown keys,
// so the parsed struct — not the wire bytes — is the identity of a request:
// two lines that differ only in key order, whitespace, or spelling out a
// default parse to equal structs.
//
// canonical_key() hashes exactly the fields that are live for the request's
// kind (core/fnv.h FNV-1a over tagged words). That key is the content
// address in the result cache: requests with equal keys are semantically
// the same experiment and, the simulator being deterministic, have
// byte-identical results. Fields of OTHER kinds are deliberately excluded
// so e.g. a ring request can never alias a nas request (the kind tag is
// mixed first) and an unused default can never split the key.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "smilab/apps/nas/nas.h"
#include "smilab/serve/wire.h"
#include "smilab/smm/smi_config.h"

namespace smilab::serve {

enum class ExperimentKind { kRing, kNas, kConvolve, kUnixbench };

[[nodiscard]] const char* to_string(ExperimentKind kind);

/// A parsed, validated, default-filled experiment request.
struct ExperimentRequest {
  ExperimentKind kind = ExperimentKind::kRing;

  // Shared SMI regime + seed (defaults match the CLI commands).
  SmiKind smi = SmiKind::kLong;
  std::int64_t gap_ms = 1000;
  std::uint64_t seed = 1;

  // ring: halo exchange (the `smilab faults` workload without faults).
  int ring_nodes = 4;
  int ring_iters = 200;
  std::int64_t ring_bytes = 32 * 1024;

  // nas: one table cell, `trials` runs under none + the requested regime.
  NasJobSpec nas;
  int nas_trials = 3;

  // convolve: Figure-1 threaded convolution.
  bool convolve_cache_friendly = false;
  int convolve_cpus = 8;

  // unixbench: Figure-2 five-test index.
  int unixbench_cpus = 8;

  /// Parse and validate a request object. Unknown keys, wrong types, and
  /// out-of-range values are errors (nullopt, *error set) — strictness is
  /// what makes the canonical key safe: every accepted field is either
  /// consumed into the struct or rejected, never silently ignored.
  [[nodiscard]] static std::optional<ExperimentRequest> parse(
      const JsonValue& object, std::string* error);

  /// Content address: FNV-1a over the kind tag and the kind's live fields.
  [[nodiscard]] std::uint64_t canonical_key() const;

  /// The request re-rendered with every live field explicit, in schema
  /// order (diagnostics; echoed in responses so clients can audit what the
  /// daemon actually ran).
  [[nodiscard]] std::string canonical_json() const;

  /// The SmiConfig the request describes.
  [[nodiscard]] SmiConfig smi_config() const;
};

/// A request line is either an experiment or a control op.
struct RequestLine {
  enum class Op { kExperiment, kStats, kPing };
  Op op = Op::kExperiment;
  ExperimentRequest experiment;  // when op == kExperiment
};

/// Parse one request line (already split on '\n').
[[nodiscard]] std::optional<RequestLine> parse_request_line(
    std::string_view line, std::string* error);

}  // namespace smilab::serve
