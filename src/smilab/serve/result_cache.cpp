#include "smilab/serve/result_cache.h"

#include "smilab/core/fnv.h"

namespace smilab::serve {

namespace {

[[nodiscard]] int round_up_pow2(int n) {
  int p = 1;
  while (p < n) p *= 2;
  return p;
}

}  // namespace

ResultCache::ResultCache(std::int64_t byte_budget, int shards)
    : byte_budget_(byte_budget < 0 ? 0 : byte_budget) {
  const int count = round_up_pow2(shards < 1 ? 1 : shards);
  shards_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_budget_ = byte_budget_ / count;
}

ResultCache::Shard& ResultCache::shard_for(std::uint64_t key) {
  // Keys are already FNV values, but re-finalizing with splitmix64 keeps
  // shard choice independent of any structure in the low key bits.
  const std::uint64_t spread = splitmix64(key);
  return *shards_[static_cast<std::size_t>(
      spread & (shards_.size() - 1))];
}

std::shared_ptr<const std::string> ResultCache::lookup(std::uint64_t key,
                                                       bool count) {
  Shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock{s.mu};
  const auto it = s.index.find(key);
  if (it == s.index.end()) {
    if (count) ++s.misses;
    return nullptr;
  }
  if (count) ++s.hits;
  s.lru.splice(s.lru.begin(), s.lru, it->second);  // refresh recency
  return it->second->payload;
}

std::shared_ptr<const std::string> ResultCache::insert(std::uint64_t key,
                                                       std::string payload) {
  Shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock{s.mu};
  if (const auto it = s.index.find(key); it != s.index.end()) {
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return it->second->payload;  // first write wins (see header)
  }
  auto shared = std::make_shared<const std::string>(std::move(payload));
  s.bytes += static_cast<std::int64_t>(shared->size());
  s.lru.push_front(Entry{key, shared});
  s.index.emplace(key, s.lru.begin());
  ++s.insertions;
  // Evict cold entries until under the shard budget, but never the entry
  // just inserted (a sole oversized result must remain cacheable).
  while (s.bytes > shard_budget_ && s.lru.size() > 1) {
    const Entry& victim = s.lru.back();
    s.bytes -= static_cast<std::int64_t>(victim.payload->size());
    s.index.erase(victim.key);
    s.lru.pop_back();
    ++s.evictions;
  }
  return shared;
}

CacheStats ResultCache::stats() const {
  CacheStats out;
  out.byte_budget = byte_budget_;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock{shard->mu};
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.insertions += shard->insertions;
    out.evictions += shard->evictions;
    out.entries += static_cast<std::int64_t>(shard->lru.size());
    out.bytes += shard->bytes;
  }
  return out;
}

}  // namespace smilab::serve
