// Content-addressed result cache for the serve daemon.
//
// Keys are ExperimentRequest::canonical_key() values; payloads are the
// canonical result-JSON bytes the service rendered on the first (miss)
// computation. Because the simulator is deterministic and the payload
// renderer is byte-stable (serve/wire.h), a hit replays exactly the bytes a
// fresh simulation would produce — the hit-equals-miss test pins this.
//
// Concurrency: the table is sharded by key so concurrent clients touching
// different keys never contend on one mutex; each shard is an independent
// LRU (intrusive list + index map) under its own lock, held only for
// pointer surgery — never while simulating. Payloads are handed out as
// shared_ptr<const string>, so an entry evicted mid-flight stays alive for
// readers already holding it.
//
// The byte budget is global but enforced per shard (budget/shards each):
// key-sharding spreads load uniformly (keys are FNV values finalized with
// splitmix64), so per-shard budgets approximate a global LRU without a
// global clock. A shard always retains at least its most recent entry,
// even when that entry alone exceeds the shard budget — a cache that
// cannot hold the result it just computed would turn every repeat of a
// large experiment into a miss forever.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace smilab::serve {

struct CacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t insertions = 0;
  std::int64_t evictions = 0;
  std::int64_t entries = 0;
  std::int64_t bytes = 0;        ///< payload bytes currently resident
  std::int64_t byte_budget = 0;  ///< configured global budget
};

class ResultCache {
 public:
  /// `byte_budget` bounds total resident payload bytes (approximately; see
  /// file comment). `shards` is rounded up to a power of two.
  explicit ResultCache(std::int64_t byte_budget, int shards = 16);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Payload for `key`, refreshing its LRU position; nullptr on miss.
  /// Counts a hit or a miss unless `count` is false (the service's
  /// race-closing re-check passes false so one request never books two
  /// stats events).
  [[nodiscard]] std::shared_ptr<const std::string> lookup(std::uint64_t key,
                                                          bool count = true);

  /// Insert (or refresh) the payload for `key`, evicting LRU entries while
  /// the shard is over budget. Returns the resident payload — the existing
  /// one if `key` was already present (first write wins: concurrent
  /// computations of one key are byte-identical anyway, and returning the
  /// incumbent keeps "same key => same pointer" true for the whole
  /// daemon's lifetime).
  std::shared_ptr<const std::string> insert(std::uint64_t key,
                                            std::string payload);

  [[nodiscard]] CacheStats stats() const;

  [[nodiscard]] int shard_count() const {
    return static_cast<int>(shards_.size());
  }

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::shared_ptr<const std::string> payload;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // guarded_by(mu) front = most recent
    // guarded_by(mu)
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
    std::int64_t bytes = 0;       // guarded_by(mu)
    std::int64_t hits = 0;        // guarded_by(mu)
    std::int64_t misses = 0;      // guarded_by(mu)
    std::int64_t insertions = 0;  // guarded_by(mu)
    std::int64_t evictions = 0;   // guarded_by(mu)
  };

  [[nodiscard]] Shard& shard_for(std::uint64_t key);

  std::int64_t byte_budget_;
  std::int64_t shard_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace smilab::serve
