#include "smilab/serve/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <istream>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <vector>

namespace smilab::serve {

std::int64_t serve_stream(SweepService& service, std::istream& in,
                          std::ostream& out) {
  std::int64_t handled = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    out << service.serve_line(line) << '\n';
    out.flush();
    ++handled;
  }
  return handled;
}

namespace {

/// Fill a sockaddr_un for `path` ('@' prefix = abstract namespace).
/// Returns the address length to pass to bind/connect, or 0 if the path is
/// too long.
socklen_t make_unix_addr(const std::string& path, sockaddr_un* addr) {
  std::memset(addr, 0, sizeof *addr);
  addr->sun_family = AF_UNIX;
  if (path.size() >= sizeof addr->sun_path) return 0;
  if (!path.empty() && path.front() == '@') {
    // Abstract namespace: leading NUL, no terminator in the length.
    std::memcpy(addr->sun_path + 1, path.data() + 1, path.size() - 1);
    return static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                  path.size());
  }
  std::memcpy(addr->sun_path, path.data(), path.size());
  return static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                path.size() + 1);
}

void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer gone; the connection loop will notice on next recv
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

struct SocketServer::Impl {
  Impl(SweepService& svc, std::string p) : service(svc), path(std::move(p)) {}

  SweepService& service;
  std::string path;  // guarded_by(init): set in the ctor, read-only after
  // The fd value is set before start() and stays stable while threads run;
  // the single stop() winner (gated by `stopping`) shuts it down to unblock
  // accept() and only closes it after joining every thread.
  // smilint: allow(guarded-by) reason=set before start(); single stop() winner closes after joins
  int listen_fd = -1;
  // smilint: allow(guarded-by) reason=start()/stop() lifecycle; joined by the single stop() winner
  std::thread accept_thread;
  std::atomic<bool> stopping{false};
  std::atomic<std::int64_t> accepted{0};

  std::mutex conn_mu;
  // guarded_by(conn_mu) open connection sockets (for stop())
  std::vector<int> conn_fds;
  // guarded_by(conn_mu) joined on stop()
  std::vector<std::thread> handlers;

  void accept_loop() {
    while (!stopping.load(std::memory_order_acquire)) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // listen fd shut down (stop()) or fatal
      }
      accepted.fetch_add(1, std::memory_order_relaxed);
      const std::lock_guard<std::mutex> lock{conn_mu};
      if (stopping.load(std::memory_order_acquire)) {
        ::close(fd);
        break;
      }
      conn_fds.push_back(fd);
      handlers.emplace_back([this, fd] { connection_loop(fd); });
    }
  }

  void connection_loop(int fd) {
    std::string pending;
    char buf[4096];
    while (true) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;  // EOF, error, or shutdown via stop()
      pending.append(buf, static_cast<std::size_t>(n));
      std::size_t start = 0;
      while (true) {
        const std::size_t nl = pending.find('\n', start);
        if (nl == std::string::npos) break;
        std::string line = pending.substr(start, nl - start);
        start = nl + 1;
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;
        std::string response = service.serve_line(line);
        response.push_back('\n');
        write_all(fd, response);
      }
      pending.erase(0, start);
    }
    ::close(fd);
  }
};

SocketServer::SocketServer(SweepService& service, const std::string& path)
    : impl_(std::make_unique<Impl>(service, path)) {
  sockaddr_un addr;
  const socklen_t len = make_unix_addr(path, &addr);
  if (len == 0) {
    throw std::runtime_error("serve: socket path too long: " + path);
  }
  impl_->listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (impl_->listen_fd < 0) {
    throw std::runtime_error("serve: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  if (path.front() != '@') ::unlink(path.c_str());  // clear a stale socket
  if (::bind(impl_->listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             len) != 0 ||
      ::listen(impl_->listen_fd, 128) != 0) {
    const std::string why = std::strerror(errno);
    ::close(impl_->listen_fd);
    impl_->listen_fd = -1;
    throw std::runtime_error("serve: cannot listen on '" + path +
                             "': " + why);
  }
}

SocketServer::~SocketServer() { stop(); }

void SocketServer::start() {
  impl_->accept_thread = std::thread{[this] { impl_->accept_loop(); }};
}

void SocketServer::stop() {
  Impl& im = *impl_;
  if (im.stopping.exchange(true, std::memory_order_acq_rel)) {
    return;  // already stopped
  }
  if (im.listen_fd >= 0) {
    ::shutdown(im.listen_fd, SHUT_RDWR);  // unblocks accept()
  }
  if (im.accept_thread.joinable()) im.accept_thread.join();
  std::vector<std::thread> handlers;
  {
    const std::lock_guard<std::mutex> lock{im.conn_mu};
    for (const int fd : im.conn_fds) {
      ::shutdown(fd, SHUT_RDWR);  // unblocks recv(); handler closes the fd
    }
    im.conn_fds.clear();
    handlers.swap(im.handlers);
  }
  for (std::thread& t : handlers) t.join();
  if (im.listen_fd >= 0) {
    ::close(im.listen_fd);
    im.listen_fd = -1;
  }
  if (!im.path.empty() && im.path.front() != '@') ::unlink(im.path.c_str());
}

const std::string& SocketServer::path() const { return impl_->path; }

std::int64_t SocketServer::connections_accepted() const {
  return impl_->accepted.load(std::memory_order_relaxed);
}

}  // namespace smilab::serve
