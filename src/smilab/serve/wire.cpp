#include "smilab/serve/wire.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace smilab::serve {

namespace {

/// Recursive-descent parser over a string_view with a cursor. Depth is
/// bounded (requests are flat; a hostile client must not be able to
/// overflow the daemon's stack with `[[[[...`).
class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<JsonValue> run() {
    skip_ws();
    JsonValue v;
    if (!parse_value(v, 0)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      set_error("trailing characters after JSON document");
      return std::nullopt;
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 32;

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return set_error("nesting too deep");
    if (pos_ >= text_.size()) return set_error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"':
        out.type = JsonValue::Type::kString;
        return parse_string(out.string);
      case 't':
        if (!consume("true")) return false;
        out.type = JsonValue::Type::kBool;
        out.boolean = true;
        return true;
      case 'f':
        if (!consume("false")) return false;
        out.type = JsonValue::Type::kBool;
        out.boolean = false;
        return true;
      case 'n':
        if (!consume("null")) return false;
        out.type = JsonValue::Type::kNull;
        return true;
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    out.type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') return set_error("expected object key string");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (peek() != ':') return set_error("expected ':' after object key");
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return true;
      }
      return set_error("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    out.type = JsonValue::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.elements.push_back(std::move(value));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return true;
      }
      return set_error("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          default:
            return set_error("unsupported escape in string");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return set_error("unescaped control character in string");
      }
      out.push_back(c);
    }
    return set_error("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return set_error("expected a JSON value");
    // strtod needs a terminated buffer; number tokens are short.
    const std::string token{text_.substr(start, pos_ - start)};
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(v)) {
      pos_ = start;
      return set_error("malformed number");
    }
    out.type = JsonValue::Type::kNumber;
    out.number = v;
    return true;
  }

  bool consume(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return set_error("invalid literal");
    }
    pos_ += word.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool set_error(const char* message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = message;
      *error_ += " (at byte ";
      *error_ += std::to_string(pos_);
      *error_ += ")";
    }
    return false;
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::optional<std::int64_t> JsonValue::as_int(std::int64_t lo,
                                              std::int64_t hi) const {
  if (type != Type::kNumber) return std::nullopt;
  const double rounded = std::nearbyint(number);
  if (rounded != number) return std::nullopt;
  if (number < static_cast<double>(lo) || number > static_cast<double>(hi)) {
    return std::nullopt;
  }
  return static_cast<std::int64_t>(number);
}

std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error) {
  if (error != nullptr) error->clear();
  return Parser{text, error}.run();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

namespace {

/// %.17g round-trips IEEE-754 binary64 exactly, so cached payload bytes
/// equal freshly recomputed ones. Integral values render without a point
/// ("3" not "3.0000000000000000e+00" — %g trims), which also keeps small
/// counters readable.
void append_double(std::string& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += buf;
}

}  // namespace

void JsonWriter::field(std::string_view key, double value) {
  key_prefix(key);
  append_double(out_, value);
}

void JsonWriter::element(double value) {
  comma();
  append_double(out_, value);
}

std::string key_hex(std::uint64_t key) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

}  // namespace smilab::serve
