#include "smilab/serve/service.h"

#include <atomic>
#include <future>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "smilab/apps/convolve/workload.h"
#include "smilab/apps/nas/runner.h"
#include "smilab/apps/unixbench/unixbench.h"
#include "smilab/core/fnv.h"
#include "smilab/core/sweep.h"
#include "smilab/mpi/job.h"
#include "smilab/sim/system.h"
#include "smilab/stats/online_stats.h"

namespace smilab::serve {

namespace {

// --- Warm worker state ------------------------------------------------------
//
// A pool worker's previous run leaves its NetworkModel behind here; the next
// run on the same thread adopts the cost memo when the parameters match
// (NetworkModel::warm_from — bit-inert, see net/network.h). Thread-local so
// the serve pool's workers warm independently and nothing is shared.
thread_local std::optional<NetworkModel> t_warm_net;

void warm_apply(System& sys) {
  if (t_warm_net.has_value()) sys.warm_network_memo(*t_warm_net);
}

void warm_save(const System& sys) { t_warm_net = sys.network(); }

// --- Experiment runners -----------------------------------------------------

/// Ring halo exchange (the `smilab faults` workload, fault-free), streamed:
/// each rank's program is produced chunk-by-chunk, one iteration per chunk.
/// Every rank allocates the same tag count per chunk, so the per-rank
/// private tag streams stay congruent across ranks.
std::string run_ring(const ExperimentRequest& req) {
  SystemConfig cfg;
  cfg.node_count = req.ring_nodes;
  cfg.seed = req.seed;
  cfg.smi = req.smi_config();
  System sys{cfg};
  warm_apply(sys);

  const int nodes = req.ring_nodes;
  const int iters = req.ring_iters;
  const std::int64_t bytes = req.ring_bytes;
  const auto factory = chunked_rank_sources(nodes, [=](int rank) {
    return [=](int chunk, RankProgram& rp, TagAllocator& tags) {
      if (chunk >= iters) return false;
      const int tag = tags.allocate(2);
      const int next = (rank + 1) % nodes;
      const int prev = (rank + nodes - 1) % nodes;
      rp.compute(microseconds(500));
      rp.sendrecv(next, bytes, tag, prev, tag);
      rp.sendrecv(prev, bytes, tag + 1, next, tag + 1);
      return true;
    };
  });
  std::vector<int> placement(static_cast<std::size_t>(nodes));
  for (int r = 0; r < nodes; ++r) placement[static_cast<std::size_t>(r)] = r;

  const MpiJobResult job = run_mpi_job_streaming(
      sys, nodes, factory, placement, WorkloadProfile{}, "serve-ring");
  warm_save(sys);

  std::int64_t smi_hits = 0;
  std::int64_t messages = 0;
  Fnv64 digest;
  for (const TaskStats& s : job.rank_stats) {
    smi_hits += s.smm_hits;
    messages += s.messages_sent;
    digest.mix_signed(s.start_time.ns());
    digest.mix_signed(s.end_time.ns());
    digest.mix_signed(s.smm_stolen_time.ns());
    digest.mix_signed(s.smm_hits);
    digest.mix_signed(s.messages_sent);
    digest.mix_signed(s.messages_received);
    digest.mix_signed(s.bytes_sent);
  }

  JsonWriter w;
  w.begin_object();
  w.field("elapsed_s", job.elapsed.seconds());
  w.field("smm_stolen_s", job.total_smm_stolen().seconds());
  w.field("smi_hits", smi_hits);
  w.field("messages", messages);
  w.field("stats_digest", key_hex(digest.value()));
  w.end_object();
  return w.take();
}

/// One NAS table cell: `trials` paired (no-SMI, requested-regime) runs on
/// shared per-trial seeds, streamed programs throughout.
std::string run_nas(const ExperimentRequest& req) {
  const NasKnob knob = calibrate_nas_knob(req.nas);
  OnlineStats base, noisy;
  for (int t = 0; t < req.nas_trials; ++t) {
    const std::uint64_t seed = req.seed + static_cast<std::uint64_t>(t);
    base.add(simulate_nas_once(req.nas, knob, SmiConfig::none(), seed, 0.003,
                               TraceMode::kStreaming));
    noisy.add(simulate_nas_once(req.nas, knob, req.smi_config(), seed, 0.003,
                                TraceMode::kStreaming));
  }
  const double work = nas_work_units(req.nas.bench, req.nas.cls);
  JsonWriter w;
  w.begin_object();
  w.field("base_s", base.mean());
  w.field("noisy_s", noisy.mean());
  w.field("slowdown_pct", (noisy.mean() / base.mean() - 1.0) * 100.0);
  w.field("base_mops", work / base.mean() / 1e6);
  w.field("noisy_mops", work / noisy.mean() / 1e6);
  w.field("trials", req.nas_trials);
  w.end_object();
  return w.take();
}

std::string run_convolve(const ExperimentRequest& req) {
  const ConvolveWorkload workload =
      req.convolve_cache_friendly
          ? ConvolveWorkload::cache_friendly_workload()
          : ConvolveWorkload::cache_unfriendly_workload();
  const ConvolveRunResult base = run_convolve_sim(
      workload, req.convolve_cpus, SmiConfig::none(), req.seed);
  const ConvolveRunResult noisy = run_convolve_sim(
      workload, req.convolve_cpus, req.smi_config(), req.seed);
  JsonWriter w;
  w.begin_object();
  w.field("base_s", base.seconds);
  w.field("noisy_s", noisy.seconds);
  w.field("slowdown_pct", (noisy.seconds / base.seconds - 1.0) * 100.0);
  w.field("smi_hits", noisy.smi_hits);
  w.field("smm_stolen_s", noisy.smm_stolen_seconds);
  w.end_object();
  return w.take();
}

std::string run_unixbench_req(const ExperimentRequest& req) {
  UnixBenchOptions ub;
  ub.online_cpus = req.unixbench_cpus;
  ub.seed = req.seed;
  const UnixBenchResult clean = run_unixbench(ub);
  ub.smi = req.smi_config();
  const UnixBenchResult noisy = run_unixbench(ub);
  JsonWriter w;
  w.begin_object();
  w.field("base_index", clean.index);
  w.field("noisy_index", noisy.index);
  w.field("delta_pct", (noisy.index / clean.index - 1.0) * 100.0);
  w.begin_array("base_scores");
  for (const double s : clean.score) w.element(s);
  w.end_array();
  w.begin_array("noisy_scores");
  for (const double s : noisy.score) w.element(s);
  w.end_array();
  w.end_object();
  return w.take();
}

}  // namespace

std::string run_experiment_payload(const ExperimentRequest& request) {
  switch (request.kind) {
    case ExperimentKind::kRing:
      return run_ring(request);
    case ExperimentKind::kNas:
      return run_nas(request);
    case ExperimentKind::kConvolve:
      return run_convolve(request);
    case ExperimentKind::kUnixbench:
      return run_unixbench_req(request);
  }
  return "{}";
}

// --- Service ----------------------------------------------------------------

namespace {

/// What a simulation job hands its waiters.
struct Outcome {
  std::shared_ptr<const std::string> payload;  // null on failure
  std::string error;
};

}  // namespace

struct SweepService::Impl {
  explicit Impl(const ServiceConfig& config)
      : pool(effective_jobs(config.workers)),
        cache(config.cache_bytes, config.cache_shards) {}

  SweepPool pool;     // guarded_by(internal): owns its own mutex/cv
  ResultCache cache;  // guarded_by(internal): per-shard locking inside

  std::mutex flight_mu;
  // guarded_by(flight_mu) key -> in-flight simulation (single-flight map)
  std::unordered_map<std::uint64_t, std::shared_future<Outcome>> inflight;

  std::atomic<std::int64_t> requests{0};
  std::atomic<std::int64_t> simulations{0};
  std::atomic<std::int64_t> coalesced{0};
  std::atomic<std::int64_t> errors{0};
};

SweepService::SweepService(const ServiceConfig& config)
    : impl_(std::make_unique<Impl>(config)) {}

SweepService::~SweepService() {
  // Jobs catch their own exceptions into Outcomes, so the pool's implicit
  // drain on destruction cannot rethrow.
  impl_->pool.drain();
}

SweepService::Served SweepService::serve(const ExperimentRequest& request) {
  Impl& im = *impl_;
  im.requests.fetch_add(1, std::memory_order_relaxed);
  Served out;
  out.key = request.canonical_key();

  if (auto hit = im.cache.lookup(out.key)) {
    out.ok = true;
    out.cached = true;
    out.payload = std::move(hit);
    return out;
  }

  std::shared_future<Outcome> flight;
  bool leader = false;
  {
    const std::lock_guard<std::mutex> lock{im.flight_mu};
    if (const auto it = im.inflight.find(out.key);
        it != im.inflight.end()) {
      flight = it->second;  // join the in-flight computation
    } else if (auto hit = im.cache.lookup(out.key, /*count=*/false)) {
      // The job we missed against completed between our lookup and this
      // lock; its bytes are resident now (already booked as a miss above,
      // so this re-check is stats-silent).
      out.ok = true;
      out.cached = true;
      out.payload = std::move(hit);
      return out;
    } else {
      auto promise = std::make_shared<std::promise<Outcome>>();
      flight = promise->get_future().share();
      im.inflight.emplace(out.key, flight);
      leader = true;
      im.simulations.fetch_add(1, std::memory_order_relaxed);
      im.pool.submit([&im, request, key = out.key,
                      promise = std::move(promise)] {
        Outcome result;
        try {
          result.payload = im.cache.insert(key, run_experiment_payload(request));
        } catch (const std::exception& e) {
          result.error = e.what();
        }
        {
          const std::lock_guard<std::mutex> lock{im.flight_mu};
          im.inflight.erase(key);
        }
        promise->set_value(std::move(result));
      });
    }
  }
  if (!leader) im.coalesced.fetch_add(1, std::memory_order_relaxed);

  const Outcome& outcome = flight.get();
  if (outcome.payload == nullptr) {
    im.errors.fetch_add(1, std::memory_order_relaxed);
    out.error = outcome.error;
    return out;
  }
  out.ok = true;
  // Followers never simulated; their bytes came from the leader's single
  // run, which is "cached" from the client's perspective.
  out.cached = !leader;
  out.payload = outcome.payload;
  return out;
}

std::string SweepService::serve_line(std::string_view line) {
  std::string error;
  const auto request = parse_request_line(line, &error);
  if (!request) {
    impl_->errors.fetch_add(1, std::memory_order_relaxed);
    JsonWriter w;
    w.begin_object();
    w.field("ok", false);
    w.field("error", error);
    w.end_object();
    return w.take();
  }

  if (request->op == RequestLine::Op::kPing) {
    return R"({"ok":true,"op":"ping"})";
  }
  if (request->op == RequestLine::Op::kStats) {
    const ServiceStats s = stats();
    JsonWriter w;
    w.begin_object();
    w.field("ok", true);
    w.field("op", "stats");
    w.field("workers", s.workers);
    w.field("requests", s.requests);
    w.field("simulations", s.simulations);
    w.field("coalesced", s.coalesced);
    w.field("errors", s.errors);
    w.field("cache_hits", s.cache.hits);
    w.field("cache_misses", s.cache.misses);
    w.field("cache_insertions", s.cache.insertions);
    w.field("cache_evictions", s.cache.evictions);
    w.field("cache_entries", s.cache.entries);
    w.field("cache_bytes", s.cache.bytes);
    w.field("cache_byte_budget", s.cache.byte_budget);
    w.end_object();
    return w.take();
  }

  const Served served = serve(request->experiment);
  JsonWriter w;
  w.begin_object();
  w.field("ok", served.ok);
  w.field("key", key_hex(served.key));
  if (served.ok) {
    w.field("cached", served.cached);
    w.raw_field("config", request->experiment.canonical_json());
    w.raw_field("result", *served.payload);
  } else {
    w.field("error", served.error);
  }
  w.end_object();
  return w.take();
}

ServiceStats SweepService::stats() const {
  const Impl& im = *impl_;
  ServiceStats s;
  s.cache = im.cache.stats();
  s.requests = im.requests.load(std::memory_order_relaxed);
  s.simulations = im.simulations.load(std::memory_order_relaxed);
  s.coalesced = im.coalesced.load(std::memory_order_relaxed);
  s.errors = im.errors.load(std::memory_order_relaxed);
  s.workers = im.pool.workers();
  return s;
}

}  // namespace smilab::serve
