// SweepService: the serve daemon's brain, shared by the Unix-socket server,
// the --stdin-batch front end, and the tests (which call serve_line
// directly, no sockets involved).
//
// Request flow for an experiment line:
//   parse -> canonical key -> cache lookup
//     hit   : respond with the cached payload bytes, zero simulation.
//     miss  : single-flight — the FIRST requester of a key submits one
//             simulation job to the SweepPool and everyone with that key
//             (including requesters arriving while it runs) waits on the
//             same shared future, so a thundering herd of identical
//             requests costs exactly one simulation.
//   The response envelope is
//     {"ok":true,"key":"<16-hex>","cached":<bool>,"result":<payload>}
//   where <payload> is the canonical result JSON. Only the payload is
//   cached: the envelope's `cached` flag varies per response, the payload
//   bytes never do (hit-equals-miss is a test-pinned invariant).
//
// Warm workers: simulation jobs run on a persistent SweepPool whose
// threads each hold a warm ActionArena (core/sweep.h) and, via a
// thread-local in service.cpp, the NetworkModel cost memo of their
// previous run — so a busy daemon's steady state allocates no trace
// memory and recomputes no message costs. Neither affects results
// (both are bit-inert by construction).
//
// Determinism: nothing in serve/ reads wall-clock time or
// non-deterministic RNG (smilint D1/D2 apply to this directory).
// Latency is the loadgen client's business.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "smilab/serve/request.h"
#include "smilab/serve/result_cache.h"

namespace smilab::serve {

struct ServiceConfig {
  /// Simulation worker threads (core/sweep.h semantics: <=0 means
  /// hardware concurrency).
  int workers = 0;
  /// Result-cache payload budget in bytes.
  std::int64_t cache_bytes = 64 * 1024 * 1024;
  int cache_shards = 16;
};

struct ServiceStats {
  CacheStats cache;
  std::int64_t requests = 0;     ///< experiment requests parsed OK
  std::int64_t simulations = 0;  ///< jobs actually run (misses after
                                 ///< single-flight coalescing)
  std::int64_t coalesced = 0;    ///< requests that joined an in-flight job
  std::int64_t errors = 0;       ///< parse/validation/simulation failures
  int workers = 0;
};

class SweepService {
 public:
  explicit SweepService(const ServiceConfig& config);
  ~SweepService();
  SweepService(const SweepService&) = delete;
  SweepService& operator=(const SweepService&) = delete;

  /// Handle one request line; returns the response line (no trailing
  /// newline). Never throws: every failure becomes an
  /// {"ok":false,"error":...} response. Blocks until the result is ready;
  /// safe to call from many threads concurrently.
  [[nodiscard]] std::string serve_line(std::string_view line);

  /// A parsed experiment served directly (tests; bypasses JSON parsing but
  /// follows the identical cache/single-flight path).
  struct Served {
    bool ok = false;
    bool cached = false;
    std::uint64_t key = 0;
    /// Canonical result JSON on success (the cached bytes), else empty.
    std::shared_ptr<const std::string> payload;
    std::string error;
  };
  [[nodiscard]] Served serve(const ExperimentRequest& request);

  [[nodiscard]] ServiceStats stats() const;

 private:
  struct Impl;
  // guarded_by(internal): Impl carries flight_mu plus self-synchronizing
  // pool/cache members; see service.cpp for the per-field discipline.
  std::unique_ptr<Impl> impl_;
};

/// Compute one experiment synchronously on the calling thread (no cache,
/// no pool) and render its canonical payload JSON. The single source of
/// truth for payload bytes: the service's miss path calls exactly this.
/// Throws SimulationError if the simulation faults.
[[nodiscard]] std::string run_experiment_payload(
    const ExperimentRequest& request);

}  // namespace smilab::serve
