#include "smilab/serve/request.h"

#include <array>

#include "smilab/core/fnv.h"

namespace smilab::serve {

namespace {

/// Tracks which keys of the request object have been consumed, so the
/// parser can reject leftovers by name (the serve analogue of the CLI's
/// check_leftovers).
class Fields {
 public:
  explicit Fields(const JsonValue& object) : object_(object) {}

  [[nodiscard]] const JsonValue* take(std::string_view key) {
    for (std::size_t i = 0; i < object_.members.size(); ++i) {
      if (object_.members[i].first == key) {
        used_[i] = true;
        return &object_.members[i].second;
      }
    }
    return nullptr;
  }

  /// nullopt + *error on a present-but-invalid value; `fallback` when the
  /// key is absent (defaults are part of the schema, see file comment in
  /// request.h).
  [[nodiscard]] std::optional<std::int64_t> take_int(std::string_view key,
                                                     std::int64_t fallback,
                                                     std::int64_t lo,
                                                     std::int64_t hi,
                                                     std::string* error) {
    const JsonValue* v = take(key);
    if (v == nullptr) return fallback;
    if (const auto n = v->as_int(lo, hi)) return n;
    *error = "field '" + std::string(key) + "' must be an integer in [" +
             std::to_string(lo) + ", " + std::to_string(hi) + "]";
    return std::nullopt;
  }

  [[nodiscard]] std::optional<bool> take_bool(std::string_view key,
                                              bool fallback,
                                              std::string* error) {
    const JsonValue* v = take(key);
    if (v == nullptr) return fallback;
    if (v->type != JsonValue::Type::kBool) {
      *error = "field '" + std::string(key) + "' must be true or false";
      return std::nullopt;
    }
    return v->boolean;
  }

  [[nodiscard]] std::optional<std::string> take_string(std::string_view key,
                                                       std::string fallback,
                                                       std::string* error) {
    const JsonValue* v = take(key);
    if (v == nullptr) return fallback;
    if (v->type != JsonValue::Type::kString) {
      *error = "field '" + std::string(key) + "' must be a string";
      return std::nullopt;
    }
    return v->string;
  }

  /// True when every member was consumed; otherwise names the first
  /// leftover in *error. Unknown keys are hard errors because a typo that
  /// parsed would silently fall back to a default AND collide with the
  /// defaulted request's cache key.
  [[nodiscard]] bool check_all_used(std::string* error) const {
    for (std::size_t i = 0; i < object_.members.size(); ++i) {
      if (!used_[i]) {
        *error = "unknown field '" + object_.members[i].first + "' for " +
                 "this request";
        return false;
      }
    }
    return true;
  }

 private:
  const JsonValue& object_;
  std::array<bool, 64> used_{};  // requests are small flat objects
};

}  // namespace

const char* to_string(ExperimentKind kind) {
  switch (kind) {
    case ExperimentKind::kRing:
      return "ring";
    case ExperimentKind::kNas:
      return "nas";
    case ExperimentKind::kConvolve:
      return "convolve";
    case ExperimentKind::kUnixbench:
      return "unixbench";
  }
  return "?";
}

std::optional<ExperimentRequest> ExperimentRequest::parse(
    const JsonValue& object, std::string* error) {
  if (object.type != JsonValue::Type::kObject) {
    *error = "request must be a JSON object";
    return std::nullopt;
  }
  if (object.members.size() > 64) {
    *error = "request has too many fields";
    return std::nullopt;
  }
  Fields fields{object};
  ExperimentRequest req;

  const auto kind = fields.take_string("experiment", "", error);
  if (!kind) return std::nullopt;
  if (*kind == "ring") req.kind = ExperimentKind::kRing;
  else if (*kind == "nas") req.kind = ExperimentKind::kNas;
  else if (*kind == "convolve") req.kind = ExperimentKind::kConvolve;
  else if (*kind == "unixbench") req.kind = ExperimentKind::kUnixbench;
  else {
    *error = kind->empty()
                 ? "missing 'experiment' (ring|nas|convolve|unixbench)"
                 : "unknown experiment '" + *kind + "'";
    return std::nullopt;
  }

  const auto smi = fields.take_string("smi", "long", error);
  if (!smi) return std::nullopt;
  if (*smi == "none") req.smi = SmiKind::kNone;
  else if (*smi == "short") req.smi = SmiKind::kShort;
  else if (*smi == "long") req.smi = SmiKind::kLong;
  else {
    *error = "unknown smi kind '" + *smi + "' (none|short|long)";
    return std::nullopt;
  }
  const auto gap = fields.take_int("gap_ms", 1000, 1, 3'600'000, error);
  if (!gap) return std::nullopt;
  req.gap_ms = *gap;

  switch (req.kind) {
    case ExperimentKind::kRing: {
      const auto seed = fields.take_int("seed", 1, 0, INT64_MAX, error);
      const auto nodes = fields.take_int("nodes", 4, 2, 64, error);
      const auto iters = fields.take_int("iters", 200, 1, 100'000, error);
      const auto bytes =
          fields.take_int("bytes", 32 * 1024, 0, 1 << 30, error);
      if (!seed || !nodes || !iters || !bytes) return std::nullopt;
      req.seed = static_cast<std::uint64_t>(*seed);
      req.ring_nodes = static_cast<int>(*nodes);
      req.ring_iters = static_cast<int>(*iters);
      req.ring_bytes = *bytes;
      break;
    }
    case ExperimentKind::kNas: {
      const auto workload = fields.take_string("workload", "ep", error);
      if (!workload) return std::nullopt;
      if (*workload == "ep") req.nas.bench = NasBenchmark::kEP;
      else if (*workload == "bt") req.nas.bench = NasBenchmark::kBT;
      else if (*workload == "ft") req.nas.bench = NasBenchmark::kFT;
      else {
        *error = "unknown workload '" + *workload + "' (ep|bt|ft)";
        return std::nullopt;
      }
      const auto cls = fields.take_string("class", "A", error);
      if (!cls) return std::nullopt;
      if (*cls == "A") req.nas.cls = NasClass::kA;
      else if (*cls == "B") req.nas.cls = NasClass::kB;
      else if (*cls == "C") req.nas.cls = NasClass::kC;
      else {
        *error = "unknown class '" + *cls + "' (A|B|C)";
        return std::nullopt;
      }
      const auto seed = fields.take_int("seed", 2016, 0, INT64_MAX, error);
      const auto nodes = fields.take_int("nodes", 4, 1, 64, error);
      const auto rpn = fields.take_int("ranks_per_node", 1, 1, 4, error);
      const auto htt = fields.take_bool("htt", false, error);
      const auto trials = fields.take_int("trials", 3, 1, 64, error);
      if (!seed || !nodes || !rpn || !htt || !trials) return std::nullopt;
      req.seed = static_cast<std::uint64_t>(*seed);
      req.nas.nodes = static_cast<int>(*nodes);
      req.nas.ranks_per_node = static_cast<int>(*rpn);
      req.nas.htt = *htt;
      req.nas_trials = static_cast<int>(*trials);
      if (!nas_valid_rank_count(req.nas.bench, req.nas.ranks())) {
        *error = std::string(smilab::to_string(req.nas.bench)) +
                 " does not support " + std::to_string(req.nas.ranks()) +
                 " ranks (BT: square, FT: power of two)";
        return std::nullopt;
      }
      break;
    }
    case ExperimentKind::kConvolve: {
      const auto seed = fields.take_int("seed", 1, 0, INT64_MAX, error);
      const auto c = fields.take_string("case", "cu", error);
      const auto cpus = fields.take_int("cpus", 8, 1, 8, error);
      if (!seed || !c || !cpus) return std::nullopt;
      if (*c == "cf") req.convolve_cache_friendly = true;
      else if (*c == "cu") req.convolve_cache_friendly = false;
      else {
        *error = "unknown case '" + *c + "' (cf|cu)";
        return std::nullopt;
      }
      req.seed = static_cast<std::uint64_t>(*seed);
      req.convolve_cpus = static_cast<int>(*cpus);
      break;
    }
    case ExperimentKind::kUnixbench: {
      const auto seed = fields.take_int("seed", 1, 0, INT64_MAX, error);
      const auto cpus = fields.take_int("cpus", 8, 1, 8, error);
      if (!seed || !cpus) return std::nullopt;
      req.seed = static_cast<std::uint64_t>(*seed);
      req.unixbench_cpus = static_cast<int>(*cpus);
      break;
    }
  }

  if (!fields.check_all_used(error)) return std::nullopt;
  return req;
}

std::uint64_t ExperimentRequest::canonical_key() const {
  Fnv64 h;
  // A fixed schema-version word first: bump it whenever a kind's semantics
  // change, so stale cross-version cache files (if a persistent tier is
  // ever added) can never alias.
  h.mix(0x736d696c'61623031ull);  // "smilab01"
  h.mix(static_cast<std::uint64_t>(kind));
  h.mix(static_cast<std::uint64_t>(smi));
  // The gap only matters when SMIs fire; folding it to a constant for
  // smi=none makes {"smi":"none","gap_ms":7} hit {"smi":"none"}.
  h.mix_signed(smi == SmiKind::kNone ? 0 : gap_ms);
  h.mix(seed);
  switch (kind) {
    case ExperimentKind::kRing:
      h.mix_signed(ring_nodes);
      h.mix_signed(ring_iters);
      h.mix_signed(ring_bytes);
      break;
    case ExperimentKind::kNas:
      h.mix(static_cast<std::uint64_t>(nas.bench));
      h.mix(static_cast<std::uint64_t>(nas.cls));
      h.mix_signed(nas.nodes);
      h.mix_signed(nas.ranks_per_node);
      h.mix(nas.htt ? 1 : 0);
      h.mix_signed(nas_trials);
      break;
    case ExperimentKind::kConvolve:
      h.mix(convolve_cache_friendly ? 1 : 0);
      h.mix_signed(convolve_cpus);
      break;
    case ExperimentKind::kUnixbench:
      h.mix_signed(unixbench_cpus);
      break;
  }
  return h.value();
}

std::string ExperimentRequest::canonical_json() const {
  JsonWriter w;
  w.begin_object();
  w.field("experiment", to_string(kind));
  w.field("smi", smilab::to_string(smi));
  w.field("gap_ms",
          smi == SmiKind::kNone ? std::int64_t{0} : gap_ms);
  w.field("seed", static_cast<std::int64_t>(seed));
  switch (kind) {
    case ExperimentKind::kRing:
      w.field("nodes", ring_nodes);
      w.field("iters", ring_iters);
      w.field("bytes", ring_bytes);
      break;
    case ExperimentKind::kNas:
      w.field("workload", smilab::to_string(nas.bench));
      w.field("class", smilab::to_string(nas.cls));
      w.field("nodes", nas.nodes);
      w.field("ranks_per_node", nas.ranks_per_node);
      w.field("htt", nas.htt);
      w.field("trials", nas_trials);
      break;
    case ExperimentKind::kConvolve:
      w.field("case", convolve_cache_friendly ? "cf" : "cu");
      w.field("cpus", convolve_cpus);
      break;
    case ExperimentKind::kUnixbench:
      w.field("cpus", unixbench_cpus);
      break;
  }
  w.end_object();
  return w.take();
}

SmiConfig ExperimentRequest::smi_config() const {
  switch (smi) {
    case SmiKind::kNone:
      return SmiConfig::none();
    case SmiKind::kShort:
      return SmiConfig::short_with_gap(gap_ms);
    case SmiKind::kLong:
      return SmiConfig::long_with_gap(gap_ms);
  }
  return SmiConfig::none();
}

std::optional<RequestLine> parse_request_line(std::string_view line,
                                              std::string* error) {
  const auto doc = parse_json(line, error);
  if (!doc) return std::nullopt;
  RequestLine out;
  if (const JsonValue* op = doc->find("op"); op != nullptr) {
    if (op->type != JsonValue::Type::kString) {
      *error = "field 'op' must be a string";
      return std::nullopt;
    }
    if (doc->members.size() != 1) {
      *error = "control requests carry only the 'op' field";
      return std::nullopt;
    }
    if (op->string == "stats") {
      out.op = RequestLine::Op::kStats;
      return out;
    }
    if (op->string == "ping") {
      out.op = RequestLine::Op::kPing;
      return out;
    }
    *error = "unknown op '" + op->string + "' (stats|ping)";
    return std::nullopt;
  }
  const auto req = ExperimentRequest::parse(*doc, error);
  if (!req) return std::nullopt;
  out.op = RequestLine::Op::kExperiment;
  out.experiment = *req;
  return out;
}

}  // namespace smilab::serve
