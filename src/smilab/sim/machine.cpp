#include "smilab/sim/machine.h"

namespace smilab {

MachineSpec MachineSpec::wyeast_e5520() {
  MachineSpec spec;
  spec.model = "Intel Xeon E5520 @ 2.27GHz";
  spec.sockets = 1;
  spec.cores_per_socket = 4;
  spec.threads_per_core = 2;
  spec.ghz = 2.27;
  spec.ram_gb = 12.0;
  spec.cache_refill_bw = 8.0e9;
  spec.hot_set_bytes = 1.5e6;
  return spec;
}

MachineSpec MachineSpec::poweredge_r410_e5620() {
  MachineSpec spec;
  spec.model = "Intel Xeon E5620 @ 2.40GHz (Dell PowerEdge R410)";
  spec.sockets = 1;
  spec.cores_per_socket = 4;
  spec.threads_per_core = 2;
  spec.ghz = 2.40;
  spec.ram_gb = 12.0;
  spec.cache_refill_bw = 10.0e9;
  spec.hot_set_bytes = 2.0e6;
  return spec;
}

Node::Node(int id, const MachineSpec& spec) : id_(id), spec_(spec) {
  const int cores = spec.cores();
  cpus_.reserve(static_cast<std::size_t>(spec.logical_cpus()));
  for (int t = 0; t < spec.threads_per_core; ++t) {
    for (int c = 0; c < cores; ++c) {
      LogicalCpu cpu;
      cpu.node = id;
      cpu.index = t * cores + c;
      cpu.core = c;
      cpu.sibling = spec.threads_per_core == 2 ? ((1 - t) * cores + c) : -1;
      cpus_.push_back(cpu);
    }
  }
}

int Node::online_cpu_count() const {
  int n = 0;
  for (const auto& cpu : cpus_) n += cpu.online ? 1 : 0;
  return n;
}

void Node::set_online(int cpu_index, bool online) {
  cpus_.at(static_cast<std::size_t>(cpu_index)).online = online;
}

void Node::set_online_cpus(int n) {
  assert(n >= 1 && n <= cpu_count());
  for (int i = 0; i < cpu_count(); ++i) set_online(i, i < n);
}

Cluster::Cluster(int node_count, const MachineSpec& spec) : spec_(spec) {
  assert(node_count >= 1);
  nodes_.reserve(static_cast<std::size_t>(node_count));
  for (int i = 0; i < node_count; ++i) nodes_.emplace_back(i, spec);
}

}  // namespace smilab
