// Open-addressed key->value table for the rank-indexed transport fast
// paths (DESIGN.md §16).
//
// std::unordered_map pays a node allocation per insert and a node free per
// erase; the transport's bucket maps churn one insert+erase pair per
// message, so above a few thousand ranks the allocator traffic and pointer
// chases dominate matching. FlatKeyMap stores (key, value) pairs inline in
// one power-of-two slot array: linear probing on a splitmix64-hashed key,
// backward-shift deletion (no tombstones, so probe chains never rot), and
// growth by doubling at 3/4 load. Erase frees nothing and insert allocates
// only on growth, so steady-state churn is allocation-free; memory is
// bounded by the high-water concurrent key count, mirroring the message
// pool's in-flight bound.
//
// Determinism (smilint D3 discipline): the table is match-by-key on the
// hot path — find, get_or_insert, erase. for_each visits slots in probe
// order, which depends on insertion history; callers must sort whatever
// they collect before it can reach simulation state or output, exactly as
// with the unordered_map-backed classic path.
//
// Keys are raw 64-bit values; ~0 is reserved as the empty sentinel. The
// transport's keys — (src<<32)|tag with src >= 0, plain tags, and
// monotonically allocated ack keys — can never collide with it.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "smilab/core/fnv.h"

namespace smilab {

template <typename V>
class FlatKeyMap {
 public:
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

  [[nodiscard]] V* find(std::uint64_t key) {
    assert(key != kEmptyKey);
    if (size_ == 0) return nullptr;
    std::size_t i = home(key);
    while (slots_[i].key != kEmptyKey) {
      if (slots_[i].key == key) return &slots_[i].val;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }
  [[nodiscard]] const V* find(std::uint64_t key) const {
    return const_cast<FlatKeyMap*>(this)->find(key);
  }

  /// Value for `key`, default-constructing it on first sight. The
  /// reference is invalidated by any later insert (growth) or erase
  /// (backward shift) — use it immediately, as with vector growth.
  [[nodiscard]] V& get_or_insert(std::uint64_t key) {
    assert(key != kEmptyKey);
    if ((size_ + 1) * 4 > capacity() * 3) grow();
    std::size_t i = home(key);
    while (slots_[i].key != kEmptyKey) {
      if (slots_[i].key == key) return slots_[i].val;
      i = (i + 1) & mask_;
    }
    slots_[i].key = key;
    slots_[i].val = V{};
    ++size_;
    return slots_[i].val;
  }

  /// Remove `key` if present. Backward-shift deletion: every entry whose
  /// probe chain crossed the vacated slot moves one step back toward its
  /// home, so lookups stay tombstone-free forever.
  void erase(std::uint64_t key) {
    assert(key != kEmptyKey);
    if (size_ == 0) return;
    std::size_t i = home(key);
    while (slots_[i].key != key) {
      if (slots_[i].key == kEmptyKey) return;
      i = (i + 1) & mask_;
    }
    --size_;
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask_;
      if (slots_[j].key == kEmptyKey) break;
      const std::size_t k = home(slots_[j].key);
      // The entry at j may fill the hole at i only if i lies on its probe
      // path, i.e. the cyclic distance home->hole does not exceed the
      // cyclic distance home->current.
      if (((i - k) & mask_) <= ((j - k) & mask_)) {
        slots_[i] = std::move(slots_[j]);
        i = j;
      }
    }
    slots_[i].key = kEmptyKey;
    slots_[i].val = V{};
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Drop every entry, keeping the slot array (steady-state reuse).
  void clear() {
    for (Slot& s : slots_) {
      s.key = kEmptyKey;
      s.val = V{};
    }
    size_ = 0;
  }

  /// Pre-size for about `n` concurrent keys (e.g. a rank-count hint).
  void reserve(std::size_t n) {
    std::size_t want = kMinCapacity;
    while (want * 3 < n * 4) want *= 2;
    if (want > capacity()) rehash(want);
  }

  /// Visit every (key, value) in probe order — NOT deterministic across
  /// insertion histories. Diagnostics and invariant checks only; sort
  /// before any simulation-visible effect (see file header).
  template <typename F>
  void for_each(F&& f) const {
    if (size_ == 0) return;
    for (const Slot& s : slots_) {
      if (s.key != kEmptyKey) f(s.key, s.val);
    }
  }

 private:
  struct Slot {
    std::uint64_t key = kEmptyKey;
    V val{};
  };

  [[nodiscard]] std::size_t home(std::uint64_t key) const {
    return static_cast<std::size_t>(splitmix64(key)) & mask_;
  }

  // First allocation is deliberately tiny: the transport instantiates one
  // map per task per index, and at 64k ranks a 16-slot opening bid costs
  // ~50 MB before any rank holds more than a couple of concurrent keys.
  static constexpr std::size_t kMinCapacity = 4;

  void grow() { rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2); }

  void rehash(std::size_t new_cap) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_cap, Slot{});
    mask_ = new_cap - 1;
    for (Slot& s : old) {
      if (s.key == kEmptyKey) continue;
      std::size_t i = home(s.key);
      while (slots_[i].key != kEmptyKey) i = (i + 1) & mask_;
      slots_[i] = std::move(s);
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace smilab
