// Machine and cluster topology model.
//
// Mirrors the paper's two testbeds:
//  - "Wyeast": 16-node cluster of Intel Xeon E5520 (Nehalem-EP, 4 cores,
//    HTT, 2.27 GHz, 8 MB L3, 12 GB RAM), CentOS 5.10 / kernel 3.0.4.
//  - Dell PowerEdge R410 with Intel Xeon E5620 (Westmere-EP, 4 cores, HTT,
//    2.40 GHz, 12 MB L3, 12 GB RAM), Fedora / kernel 3.17.4, tickless.
//
// Logical CPU numbering follows the Linux convention the paper relies on:
// CPUs [0, cores) are the first hardware thread of each physical core and
// CPUs [cores, 2*cores) are their HTT siblings, so "offline CPUs 5-8" (1-
// based in the paper) removes exactly the sibling threads.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "smilab/time/sim_time.h"

namespace smilab {

/// Static description of one node's hardware.
struct MachineSpec {
  std::string model = "generic-x86";
  int sockets = 1;
  int cores_per_socket = 4;
  int threads_per_core = 2;  ///< 2 with HTT, 1 without
  double ghz = 2.27;         ///< nominal (and TSC) frequency
  double ram_gb = 12.0;
  /// Effective rate at which one core re-fills cache lines after an SMM
  /// interval flushed them (bytes/second). Drives the post-SMI warm-up
  /// penalty.
  double cache_refill_bw = 8.0e9;
  /// Working-set bytes a core typically has live in cache; bounded by L2+
  /// share of L3. Used to size the post-SMI refill penalty.
  double hot_set_bytes = 1.5e6;

  [[nodiscard]] int cores() const { return sockets * cores_per_socket; }
  [[nodiscard]] int logical_cpus() const { return cores() * threads_per_core; }

  /// The MPI cluster node type (Section III.A).
  static MachineSpec wyeast_e5520();
  /// The multithreaded-study node type (Section IV.A).
  static MachineSpec poweredge_r410_e5620();
};

/// One logical CPU (a hardware thread).
struct LogicalCpu {
  int node = 0;
  int index = 0;    ///< node-local CPU index
  int core = 0;     ///< node-local physical core index
  int sibling = -1; ///< node-local index of HTT sibling, or -1
  bool online = true;
};

/// One cluster node: its CPUs plus bookkeeping the runtime needs.
class Node {
 public:
  Node(int id, const MachineSpec& spec);

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] const MachineSpec& spec() const { return spec_; }
  [[nodiscard]] int cpu_count() const { return static_cast<int>(cpus_.size()); }
  [[nodiscard]] const LogicalCpu& cpu(int i) const { return cpus_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] int online_cpu_count() const;

  /// sysfs-style hotplug: `echo 0 > /sys/devices/system/cpu/cpuN/online`.
  /// The runtime forbids offlining a CPU with work on it; topology-level
  /// calls here just flip the flag.
  void set_online(int cpu_index, bool online);
  [[nodiscard]] bool is_online(int cpu_index) const {
    return cpus_.at(static_cast<std::size_t>(cpu_index)).online;
  }

  /// Keep only the first `n` logical CPUs online, mirroring the paper's
  /// sweep over 1-8 logical processor configurations: CPUs 1..cores are
  /// distinct physical cores, cores+1..2*cores add HTT siblings.
  void set_online_cpus(int n);

 private:
  int id_;
  MachineSpec spec_;
  std::vector<LogicalCpu> cpus_;
};

/// A homogeneous cluster of nodes.
class Cluster {
 public:
  Cluster(int node_count, const MachineSpec& spec);

  [[nodiscard]] int node_count() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] Node& node(int i) { return nodes_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] const Node& node(int i) const { return nodes_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] const MachineSpec& spec() const { return spec_; }

 private:
  MachineSpec spec_;
  std::vector<Node> nodes_;
};

}  // namespace smilab
