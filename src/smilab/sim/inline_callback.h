// Small-buffer-optimised move-only callable for the event engine.
//
// std::function allocates for captures beyond ~16 bytes and always pays an
// indirect call through type-erased storage it may have to heap-manage.
// Event callbacks are scheduled and fired millions of times per simulated
// second, so the engine stores them in InlineCallback, which is built
// around one invariant: **storage is always trivially relocatable**.
// Trivially-copyable callables up to kInlineBytes live directly inside the
// slab slot; everything else lives behind a single owned pointer. Either
// way a move is a plain memcpy of the buffer plus an ops-pointer handoff —
// no indirect "relocate" call — which keeps the engine's slab growth and
// the schedule/fire path free of per-event virtual dispatch beyond the one
// unavoidable invoke.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace smilab {

class InlineCallback {
 public:
  /// Covers every capture list the simulator's hot paths use: `this` plus
  /// a handful of ints/pointers/SimTimes. Non-trivially-copyable callables
  /// (e.g. a captured std::function or vector) box instead, so staying
  /// inline never requires a move constructor to run during relocation.
  /// Sized so the engine's whole slab slot (callable + ops pointer + seq +
  /// free-list link) is exactly one 64-byte cache line.
  static constexpr std::size_t kInlineBytes = 40;

  InlineCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    init(std::forward<F>(f));
  }

  /// Destroy the current callable (if any) and construct `f` in place —
  /// the engine's schedule path uses this to build the callable directly
  /// inside its slab slot, skipping the temporary + move a by-value
  /// InlineCallback parameter would cost.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  void emplace(F&& f) {
    reset();
    init(std::forward<F>(f));
  }

  InlineCallback(InlineCallback&& other) noexcept { move_from(other); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

  void reset() {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*destroy)(void*);  // null when storage needs no cleanup
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    // Trivial copyability implies a trivial destructor, so inline storage
    // is bitwise-movable and needs no destroy hook at all.
    return sizeof(Fn) <= kInlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_trivially_copyable_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); },
      nullptr,
  };

  template <typename Fn>
  static constexpr Ops boxed_ops = {
      [](void* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); },
      [](void* p) { delete *std::launder(reinterpret_cast<Fn**>(p)); },
  };

  template <typename F>
  void init(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &boxed_ops<Fn>;
    }
  }

  void move_from(InlineCallback& other) noexcept {
    // Both representations (inline trivially-copyable bytes, owned raw
    // pointer) relocate by bit copy; nulling the source's ops is the
    // ownership transfer.
    ops_ = other.ops_;
    std::memcpy(storage_, other.storage_, sizeof storage_);
    other.ops_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace smilab
