// Task and action model.
//
// A task is a simulated schedulable entity (an MPI rank, a pthread, a
// benchmark process). Its behaviour is a sequence of Actions produced by an
// ActionSource; the System interprets actions against the machine, network
// and SMM state. Trace-driven execution (in the LogGOPSim tradition) keeps
// the noise-injection semantics exact and the interpreter in one place.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <memory_resource>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "smilab/cpu/workload_profile.h"
#include "smilab/time/sim_time.h"
#include "smilab/trace/action_arena.h"

namespace smilab {

struct TaskId {
  std::int32_t value = -1;
  [[nodiscard]] bool valid() const { return value >= 0; }
  bool operator==(const TaskId&) const = default;
};

struct GroupId {
  std::int32_t value = -1;
  [[nodiscard]] bool valid() const { return value >= 0; }
  bool operator==(const GroupId&) const = default;
};

// --- Actions ----------------------------------------------------------------

/// Wildcard source rank for Recv/Irecv (MPI_ANY_SOURCE): matches the
/// earliest-arrival message with the requested tag from any sender.
inline constexpr int kAnySource = -1;

/// Execute `work` seconds of computation at nominal single-thread speed.
/// Actual wall time depends on HTT sibling occupancy, scheduling and SMM.
struct Compute {
  SimDuration work;
};

/// Blocking send to `dst_rank` within the task's group. Messages above the
/// rendezvous threshold additionally wait for the receiver's completion
/// acknowledgement (back-pressure), like a real MPI rendezvous send.
struct Send {
  int dst_rank = 0;
  std::int64_t bytes = 0;
  int tag = 0;
};

/// Blocking receive of a matching (src_rank, tag) message.
struct Recv {
  int src_rank = 0;
  int tag = 0;
};

/// Simultaneous send+receive (MPI_Sendrecv): both directions progress
/// concurrently; the action completes when both complete. Used by the
/// exchange-based collective algorithms, which would deadlock if lowered
/// to sequential blocking Send/Recv.
struct SendRecv {
  int dst_rank = 0;
  std::int64_t send_bytes = 0;
  int send_tag = 0;
  int src_rank = 0;
  int recv_tag = 0;
};

/// Yield the CPU and wake after `dur` (nanosleep-style).
struct Sleep {
  SimDuration dur;
};

/// Nonblocking send (MPI_Isend): pays the CPU-side copy, injects, and
/// completes the *action* immediately; the transfer completes `handle`
/// later (eager: at injection; rendezvous: at the receiver's ack). Handles
/// are task-local identifiers chosen by the program; reusing an
/// uncompleted handle is an error.
struct Isend {
  int dst_rank = 0;
  std::int64_t bytes = 0;
  int tag = 0;
  int handle = 0;
};

/// Nonblocking receive (MPI_Irecv): posts the match immediately and
/// returns; the receive's CPU-side copy cost is charged when the handle is
/// waited on (how real MPI progresses blocking-free receives).
struct Irecv {
  int src_rank = 0;
  int tag = 0;
  int handle = 0;
};

/// Block until every listed handle has completed (MPI_Waitall).
///
/// The handle list lives on the thread's current ActionArena (when a Scope
/// is active), so bulk trace construction is bump-allocated; copies fall
/// back to the default resource (polymorphic_allocator does not propagate
/// on copy), which only costs speed, never correctness.
struct WaitAll {
  std::pmr::vector<int> handles;

  WaitAll() : handles(ActionArena::current()) {}
  WaitAll(std::initializer_list<int> h)
      : handles(h.begin(), h.end(), ActionArena::current()) {}
  explicit WaitAll(const std::vector<int>& h)
      : handles(h.begin(), h.end(), ActionArena::current()) {}
  explicit WaitAll(std::pmr::vector<int> h) : handles(std::move(h)) {}
};

/// Invoke a callback at the point this action is reached, without consuming
/// simulated time. Used by measurement tasks (e.g. the hwlat-style detector
/// reads the TSC between busy-loops).
struct Call {
  std::function<void()> fn;
};

using Action =
    std::variant<Compute, Send, Recv, SendRecv, Sleep, Call, Isend, Irecv,
                 WaitAll>;

// --- Action sources -----------------------------------------------------------

/// Produces a task's actions one at a time. `next()` is called when the
/// previous action completes; returning nullopt ends the task.
class ActionSource {
 public:
  virtual ~ActionSource() = default;
  virtual std::optional<Action> next() = 0;

  /// Actions this source currently holds in memory. The System samples it
  /// at spawn and after every pull to maintain the run-wide
  /// `peak_program_actions` high-water mark: a retained VectorActions
  /// reports its whole program, a streaming source only its live chunk
  /// buffer, a pure generator zero. Purely observational — it never feeds
  /// back into the schedule.
  [[nodiscard]] virtual std::int64_t materialized_actions() const { return 0; }
};

/// Vector-backed source: a fully materialized program (MPI rank traces).
/// Storage is arena-backed when a Scope is active (see WaitAll above).
class VectorActions final : public ActionSource {
 public:
  explicit VectorActions(std::vector<Action> actions)
      : actions_(ActionArena::current()) {
    actions_.reserve(actions.size());
    for (Action& a : actions) actions_.push_back(std::move(a));
  }
  explicit VectorActions(std::pmr::vector<Action> actions)
      : actions_(std::move(actions)) {}

  std::optional<Action> next() override {
    if (pc_ >= actions_.size()) return std::nullopt;
    return std::move(actions_[pc_++]);
  }

  [[nodiscard]] std::int64_t materialized_actions() const override {
    // Consumed slots stay allocated until the task ends (the vector is
    // never shrunk), so the honest figure is the full program size.
    return static_cast<std::int64_t>(actions_.size());
  }

 private:
  std::pmr::vector<Action> actions_;
  std::size_t pc_ = 0;
};

/// Generator-backed source: a callable producing actions lazily; used for
/// unbounded or time-dependent behaviours (detectors, throughput loops).
class GeneratorActions final : public ActionSource {
 public:
  using Generator = std::function<std::optional<Action>()>;
  explicit GeneratorActions(Generator gen) : gen_(std::move(gen)) {}

  std::optional<Action> next() override { return gen_(); }

 private:
  Generator gen_;
};

/// Fixed-count repetition of one prototype action with O(1) state — the
/// streaming form of the "N identical batches" loops (UnixBench's fixed-ops
/// tests). The prototype must be freely copyable (Compute/Sleep/Send-style
/// payloads; not Call, whose callback identity matters, and not WaitAll,
/// whose handles may not be reused while open).
class RepeatActions final : public ActionSource {
 public:
  RepeatActions(Action prototype, std::int64_t count)
      : prototype_(std::move(prototype)), left_(count) {}

  std::optional<Action> next() override {
    if (left_ <= 0) return std::nullopt;
    --left_;
    return prototype_;
  }

  [[nodiscard]] std::int64_t materialized_actions() const override {
    return 1;  // only the prototype lives in memory, however long the run
  }

 private:
  Action prototype_;
  std::int64_t left_ = 0;
};

// --- Task specification --------------------------------------------------------

/// How a task waits for communication.
enum class WaitPolicy {
  kSpin,   ///< busy-poll: CPU stays occupied (MPI default behaviour)
  kBlock,  ///< yield the CPU until the event arrives (pipes, sleeps)
};

struct TaskSpec {
  std::string name;
  int node = 0;
  int pinned_cpu = -1;  ///< node-local CPU index, or -1 for scheduler choice
  WorkloadProfile profile;
  WaitPolicy wait_policy = WaitPolicy::kSpin;
  std::unique_ptr<ActionSource> actions;

  /// Convenience: build from a materialized action vector.
  static TaskSpec with_actions(std::string name, int node,
                               std::vector<Action> actions) {
    TaskSpec spec;
    spec.name = std::move(name);
    spec.node = node;
    spec.actions = std::make_unique<VectorActions>(std::move(actions));
    return spec;
  }
};

/// Per-task accounting visible after the run. `os_view_cpu_time` is what
/// /proc-style accounting would report: it silently includes time the CPU
/// spent frozen in SMM while this task was current — the misattribution the
/// paper warns tool developers about. `true_cpu_time` excludes it.
struct TaskStats {
  SimTime start_time;
  SimTime end_time;
  SimDuration os_view_cpu_time{};
  SimDuration true_cpu_time{};
  SimDuration smm_stolen_time{};  ///< frozen-while-current time
  SimDuration refill_overhead{};  ///< extra work charged after SMM exits
  std::int64_t smm_hits = 0;      ///< SMM intervals that landed on this task
  std::int64_t messages_sent = 0;
  std::int64_t messages_received = 0;
  std::int64_t bytes_sent = 0;
  bool finished = false;
  /// Killed by a fail-stop node crash (fault injection); mutually exclusive
  /// with `finished`. end_time records the crash instant.
  bool failed = false;
};

}  // namespace smilab
