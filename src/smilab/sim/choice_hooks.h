// Schedule-exploration hooks (consumed by src/smilab/mc).
//
// The simulator is deterministic by construction: containers are ordered or
// probed by key, event-heap ties break by insertion sequence, wildcard
// receives match the earliest arrival. That pins ONE schedule — but a real
// cluster exhibits many, and the determinism claim the hot-path rewrites
// rest on is that the *observable* outcome is the same for all of them. The
// model checker therefore needs to enumerate the points where a real system
// could legally diverge, and exactly three exist:
//
//   kEventTie        which of N same-instant engine events fires first
//   kAnySourceMatch  which queued sender an MPI_ANY_SOURCE receive takes
//                    (one candidate per distinct source; within a source,
//                    MPI's non-overtaking rule pins the order)
//   kFaultJitter     which discrete offset within a FaultPlan jitter window
//                    shifts a fault's start time
//
// Contract, relied on by the canonical-schedule tests:
//   * a policy is consulted only when n >= 2 alternatives exist;
//   * alternatives are presented in canonical order, so decision 0 always
//     reproduces the default schedule — an installed policy returning 0
//     everywhere is bit-identical to no policy at all;
//   * with no policy installed (the default) the hooks cost one pointer
//     test on the consulting paths and nothing else.
//
// The interface is a virtual class, not std::function: the consulting
// sites (engine pop, wildcard match) are smilint hot paths (rule D4).
#pragma once

#include <cstddef>
#include <cstdint>

namespace smilab {

enum class ChoiceKind : std::uint8_t {
  kEventTie = 0,
  kAnySourceMatch = 1,
  kFaultJitter = 2,
};

[[nodiscard]] inline const char* to_string(ChoiceKind kind) {
  switch (kind) {
    case ChoiceKind::kEventTie: return "event-tie";
    case ChoiceKind::kAnySourceMatch: return "any-source";
    case ChoiceKind::kFaultJitter: return "fault-jitter";
  }
  return "?";
}

/// Replay-token letter for a choice kind ('t' / 'a' / 'f'); see
/// mc/schedule_trace.h for the token grammar.
[[nodiscard]] inline char token_letter(ChoiceKind kind) {
  switch (kind) {
    case ChoiceKind::kEventTie: return 't';
    case ChoiceKind::kAnySourceMatch: return 'a';
    case ChoiceKind::kFaultJitter: return 'f';
  }
  return '?';
}

/// Decision source for the nondeterministic choice points above. The
/// System (and through it the Engine / transport / FaultInjector) consults
/// the installed policy at every point where n >= 2 alternatives exist;
/// the returned index must be < n. mc::Explorer implements this to drive
/// DFS schedule enumeration and token replay.
class SchedulePolicy {
 public:
  virtual ~SchedulePolicy() = default;
  [[nodiscard]] virtual std::size_t choose(ChoiceKind kind, std::size_t n) = 0;
};

}  // namespace smilab
