// The simulation runtime: interprets task actions against the machine
// model, the OS scheduler, the network, and the SMM injection engine.
//
// Execution semantics (the load-bearing rules):
//  * A task is sticky-placed on one logical CPU at spawn (HPC-style); the
//    placement policy fills distinct physical cores before HTT siblings,
//    like the Linux scheduler's preference for idle cores.
//  * Compute progresses at a rate set by HTT sibling occupancy
//    (cpu/workload_profile.h) and pauses entirely while the node is in SMM.
//  * An SMI freezes EVERY online logical CPU of the node for the sampled
//    SMM duration: no compute, no message injection or drain, no timer
//    wake-ups — only the wire keeps moving. This is the defining property
//    of SMIs versus ordinary interrupts.
//  * The OS-view clock keeps charging the interrupted task during SMM
//    (TaskStats::os_view_cpu_time), reproducing the misattribution the
//    paper calls out for performance tools.
//  * After SMM exit each on-CPU task pays a cache-refill penalty, larger
//    when HTT is active; messages that arrived during the freeze drain
//    cheaper when spare sibling contexts exist (post-SMI backlog drain).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "smilab/net/network.h"
#include "smilab/os/costs.h"
#include "smilab/sim/event_queue.h"
#include "smilab/sim/machine.h"
#include "smilab/sim/run_result.h"
#include "smilab/sim/task.h"
#include "smilab/sim/transport.h"
#include "smilab/smm/accounting.h"
#include "smilab/smm/smi_config.h"
#include "smilab/time/rng.h"
#include "smilab/time/tsc.h"
#include "smilab/trace/action_ring.h"

namespace smilab {

class SmiController;

struct SystemConfig {
  MachineSpec machine = MachineSpec::wyeast_e5520();
  int node_count = 1;
  NetworkParams net{};
  OsCosts os{};
  SmiConfig smi{};
  std::uint64_t seed = 1;

  /// Per-node multiplicative speed jitter (stddev), modelling run-to-run
  /// system noise unrelated to SMIs (daemons, DVFS wiggle). 0 disables.
  double node_speed_sigma = 0.0;

  /// Post-SMM refill multiplier applied when the node has HTT siblings
  /// online (more hardware contexts re-warming the same caches).
  double refill_htt_node_multiplier = 1.35;

  /// Receive-processing cost factor for messages that arrived while the
  /// node was frozen, when HTT siblings are online: spare logical CPUs let
  /// the network stack drain the post-SMI backlog in parallel with the
  /// resumed ranks.
  double post_smi_drain_factor = 0.55;

  /// Extra CPU-side warm-up charged to each on-CPU task after an SMM
  /// interval when HTT siblings are online, as a fraction of the residency
  /// (jittered +/-40%). Twice as many hardware contexts re-populate the
  /// same caches/TLBs and the OS resumes twice as many runqueues, so the
  /// post-SMI recovery grows with the freeze length. This is what makes
  /// long SMIs ~4% more expensive with HTT on (Tables 4-5) while short
  /// SMIs stay invisible — the cost is proportional to residency. Being
  /// CPU-side only, it does NOT stretch the NIC outage, so comm-dominated
  /// jobs (FT at scale) can still come out ahead under HTT via the faster
  /// recovery below.
  double htt_refill_fraction = 0.38;

  /// SMM residency multiplier when HTT siblings are online (SMI rendezvous
  /// cost across twice the hardware threads). Kept at 1.0 by default — the
  /// ablation benches explore it; the refill fraction above carries the
  /// HTT effect in the calibrated model.
  double smm_htt_residency_factor = 1.0;

  /// TCP recovery scale multiplier when HTT siblings are online: softirq /
  /// retransmission processing restarts on spare hardware threads instead
  /// of competing with the resumed ranks, so comm-heavy jobs (FT) recover
  /// faster — the mechanism behind Table 5's negative HTT deltas.
  double htt_nic_recovery_factor = 0.35;

  /// SMM residency at which the handler has effectively flushed all hot
  /// state. Refill penalties scale with min(1, residency/this): a 1-3 ms
  /// handler touches little (short SMIs stay invisible even at high rates,
  /// as the paper reports); a 100+ ms integrity scan evicts everything.
  SimDuration smm_full_flush_residency = milliseconds(30);

  /// Hard ceiling on simulated time; exceeding it aborts the run with an
  /// error (guards against accidental livelock under extreme SMI rates).
  SimDuration max_sim_time = seconds(24 * 3600);

  /// Hang watchdog: if no task makes progress for this much simulated time
  /// while every unfinished task is blocked on communication and nothing is
  /// in flight, the run is diagnosed as stuck instead of grinding on to
  /// max_sim_time (periodic sources like the SMI driver otherwise keep the
  /// event queue alive forever). Zero disables the watchdog.
  SimDuration hang_timeout = seconds(10);
};

/// Transport-level fault decisions, consulted once per inter-node delivery
/// attempt as a message finishes egress service. Implemented by
/// FaultInjector (fault/fault_injector.h); when none is installed the
/// transport is perfectly reliable, exactly as before.
class LinkFaultModel {
 public:
  virtual ~LinkFaultModel() = default;
  /// True: this attempt is lost; the transport schedules a retransmission
  /// (timeout + exponential backoff, up to NetworkParams::max_retries).
  virtual bool should_drop(int src_node, int dst_node) = 0;
  /// True: deliver a duplicate copy that burns ingress wire time at the
  /// destination before transport dedup discards it.
  virtual bool should_duplicate(int src_node, int dst_node) = 0;
};

/// One injected-fault interval, recorded for traces and reports. `end` is
/// SimTime{-1} while the fault is still active (or forever, for crashes
/// record end == start).
struct FaultRecord {
  enum class Kind { kFreeze, kCrash, kLinkDown, kSlowNode };
  Kind kind;
  int node = 0;
  SimTime start;
  SimTime end{-1};
};

[[nodiscard]] const char* to_string(FaultRecord::Kind kind);

/// See file header. Single-threaded, deterministic given (config, seed).
class System {
 public:
  explicit System(SystemConfig cfg);
  ~System();
  System(const System&) = delete;
  System& operator=(const System&) = delete;

  [[nodiscard]] Engine& engine() { return engine_; }
  [[nodiscard]] Cluster& cluster() { return cluster_; }
  [[nodiscard]] const Cluster& cluster() const { return cluster_; }
  [[nodiscard]] const SystemConfig& config() const { return cfg_; }
  [[nodiscard]] SimTime now() const { return engine_.now(); }
  [[nodiscard]] Tsc tsc() const { return Tsc{cfg_.machine.ghz}; }

  /// Take `n` logical CPUs online on every node before spawning tasks
  /// (sysfs-style sweep used by the multithreaded study).
  void set_online_cpus(int n);

  // --- Tasks and groups ------------------------------------------------------

  /// Create a communication group (an MPI communicator / a pipe pair).
  GroupId create_group(int size);

  /// Spawn a standalone task (it gets a singleton group).
  TaskId spawn(TaskSpec spec);

  /// Spawn a task as rank `rank` of group `g`. Send/Recv ranks resolve
  /// within the group.
  TaskId spawn_member(GroupId g, int rank, TaskSpec spec);

  // --- Running -----------------------------------------------------------------

  /// Run until every spawned task has finished (tasks killed by node
  /// crashes count as resolved). Throws SimulationError carrying the
  /// formatted diagnosis if the run deadlocks, hangs, or exceeds
  /// max_sim_time.
  void run();

  /// Non-throwing run: like run(), but a stuck run returns a structured
  /// RunResult (status + per-rank blocked-operation diagnosis + wait-for
  /// cycle if one exists) instead of throwing. The CLI and benches use this
  /// for graceful degradation.
  [[nodiscard]] RunResult try_run();

  /// Run for at most `d` more simulated time. Returns true if events remain.
  bool run_for(SimDuration d);

  [[nodiscard]] bool all_finished() const;
  [[nodiscard]] const TaskStats& task_stats(TaskId t) const;
  [[nodiscard]] const std::string& task_name(TaskId t) const;
  [[nodiscard]] int task_node(TaskId t) const;
  /// Tasks spawned so far; ids are dense: TaskId{0} .. TaskId{count-1}.
  [[nodiscard]] int task_count() const { return static_cast<int>(tasks_.size()); }
  /// Sum of true (executing) CPU time over all tasks.
  [[nodiscard]] SimDuration total_true_cpu_time() const;
  /// Completion time of the last-finishing member of `g`; all members must
  /// have finished.
  [[nodiscard]] SimTime group_finish_time(GroupId g) const;
  /// Completion time of the last-finishing task overall.
  [[nodiscard]] SimTime last_finish_time() const;

  // --- SMM ---------------------------------------------------------------------

  [[nodiscard]] const SmmAccounting& smm_accounting() const { return smm_acct_; }
  /// Non-null when cfg.smi.enabled(): the injection engine.
  [[nodiscard]] SmiController* smi_controller() { return smi_.get(); }

  /// Firmware-side hooks used by SmiController. All online CPUs of `node`
  /// stop at smm_enter and resume at smm_exit.
  void smm_enter(int node);
  void smm_exit(int node, const SmmInterval& interval);
  [[nodiscard]] bool node_in_smm(int node) const;
  /// True when any physical core of the node has both hardware threads
  /// online (drives the HTT-dependent SMM behaviours above).
  [[nodiscard]] bool node_htt_active(int node) const;

  // --- Generic single-CPU noise (noise/ injector) ----------------------------

  /// Preempt one logical CPU (an OS-level noise event: daemon, IRQ storm,
  /// kernel thread). Unlike SMM this stops neither the other CPUs nor the
  /// NIC — the contrast the SMI-vs-OS-noise ablation measures. The CPU must
  /// not already be frozen (by SMM or a previous preemption).
  void preempt_cpu(int node, int cpu);
  /// Undo preempt_cpu: no refill penalty, no SMM accounting.
  void resume_cpu(int node, int cpu);

  // --- Fault hooks (driven by fault/FaultInjector) ---------------------------

  /// Transient whole-node stall begin/end: every online CPU and both NIC
  /// directions stop, like SMM but independent of the SMI controller and
  /// without its accounting (no OS-view charge, no refill model). Freezes
  /// compose with SMM: whichever mechanism releases the node last resumes
  /// it. No-ops on a crashed node.
  void fault_freeze_enter(int node);
  void fault_freeze_exit(int node);
  [[nodiscard]] bool node_fault_frozen(int node) const;

  /// Fail-stop crash: kills every task on the node (TaskStats::failed),
  /// silences its NICs forever, and discards traffic queued for it. Blocked
  /// peers become diagnosable through try_run().
  void crash_node(int node);
  [[nodiscard]] bool node_crashed(int node) const;

  /// Multiplicative compute-rate degradation for every CPU of `node`
  /// (1.0 = nominal). Running tasks re-settle and re-pace immediately.
  void set_node_fault_rate(int node, double scale);

  /// Take both NIC directions of `node` down / back up (refcounted with SMM
  /// pauses). Resuming pays the usual TCP loss-recovery cost.
  void set_link_down(int node, bool down);

  /// Install / clear the per-delivery fault model. `model` must outlive the
  /// run. Null restores the perfectly reliable transport.
  void set_link_fault_model(LinkFaultModel* model) { link_fault_ = model; }

  /// Enable/disable the transport fast paths: pipelined NIC egress/ingress
  /// booking (one merged event per stage instead of per-message service
  /// chains) and lazily matured rendezvous acks (delivery piggybacks on the
  /// sender's next poll instead of a dedicated event). Both are bit-exact —
  /// the fast-path golden tests compare hashes with the knob on and off
  /// under SMM overlap and fault plans — and both self-disable whenever a
  /// pause or fault model makes the short-circuit observable. On by
  /// default; the off position exists for debugging and the equality tests.
  void set_transport_fast_paths(bool on) { fast_paths_ = on; }
  [[nodiscard]] bool transport_fast_paths() const { return fast_paths_; }

  /// Enable/disable the rank-indexed transport stores: flat open-addressed
  /// (src,tag)/tag buckets, posted-receive index, and ack-router slots
  /// instead of unordered_map nodes. Bit-exact — matching stays key-probed
  /// and every iteration sorts before it can have a simulation-visible
  /// effect — so the toggle only moves constants: node alloc/free churn
  /// drops out of the per-message path. Applied to groups of at least
  /// `transport_rank_index_threshold()` members at spawn time (small
  /// groups keep the classic maps, whose nodes fit in cache anyway). On by
  /// default; the off position exists for the scheduler-equality tests.
  void set_transport_rank_indexing(bool on);
  [[nodiscard]] bool transport_rank_indexing() const { return rank_indexing_; }

  /// Group size at or above which spawn_group switches a member's
  /// transport stores to the rank-indexed layout. Tests set 0 to force
  /// flat mode onto the small golden programs.
  void set_transport_rank_index_threshold(int n) { rank_index_threshold_ = n; }
  [[nodiscard]] int transport_rank_index_threshold() const {
    return rank_index_threshold_;
  }

  /// Injected-fault intervals, in injection order (for traces and reports).
  [[nodiscard]] const std::vector<FaultRecord>& fault_log() const {
    return fault_log_;
  }

  // --- Schedule exploration (mc/ model checker) ------------------------------

  /// Install / clear the schedule-exploration policy (sim/choice_hooks.h).
  /// Covers all three choice points: engine same-instant ties (forwarded to
  /// engine().set_tie_break), ANY_SOURCE match order, and FaultInjector
  /// jitter offsets (the injector reads schedule_policy() at construction).
  /// Null — the default — restores the canonical schedule with zero
  /// overhead beyond one pointer test per consulting site. The policy must
  /// outlive its installation.
  void set_schedule_policy(SchedulePolicy* policy) {
    sched_policy_ = policy;
    engine_.set_tie_break(policy);
  }
  [[nodiscard]] SchedulePolicy* schedule_policy() const { return sched_policy_; }

  /// Order-insensitive digest of "where the simulation is": per-task
  /// control state (phase, action index, wait keys, open handles,
  /// unexpected-queue content in arrival order), transport counters, and
  /// the multiset of pending-event times. Two exploration runs reaching
  /// equal digests at the same choice point continue identically, which is
  /// what the model checker's memo pruning relies on. Deliberately excludes
  /// numbering isomorphisms (event seqs, ack keys, arrival_seq values) so
  /// commuted-but-equivalent schedules collapse. O(state); never on the
  /// simulation hot path.
  [[nodiscard]] std::uint64_t progress_digest() const;

  // --- Transport counters ----------------------------------------------------

  [[nodiscard]] std::int64_t messages_dropped() const { return messages_dropped_; }
  [[nodiscard]] std::int64_t messages_duplicated() const { return messages_duplicated_; }
  [[nodiscard]] std::int64_t retransmissions() const { return retransmissions_; }
  /// Messages abandoned after max_retries or because their destination died.
  [[nodiscard]] std::int64_t transport_failures() const { return transport_failures_; }

  /// Message-pool / ack-router resource snapshot (sim/transport.h). The pool
  /// numbers are the proof that transport memory is bounded by in-flight
  /// traffic: `pool_live` returns to 0 when the wire drains and
  /// `pool_capacity` stops at the concurrency high-water mark instead of
  /// growing with every message ever sent.
  [[nodiscard]] TransportStats transport_stats() const;
  /// High-water mark of simultaneously in-flight (injected, not yet
  /// arrived/failed) messages over the run so far.
  [[nodiscard]] std::int64_t peak_in_flight_messages() const {
    return peak_in_flight_messages_;
  }
  /// High-water mark of materialized program actions summed across live
  /// tasks (ActionSource::materialized_actions, sampled at spawn and after
  /// every action pull): the trace-memory analogue of
  /// peak_in_flight_messages.
  [[nodiscard]] std::int64_t peak_program_actions() const {
    return peak_program_actions_;
  }

  /// Keep a bounded window of completed actions for trace rendering
  /// (trace/action_ring.h). Capacity 0 (default) disables recording.
  void set_action_ring_capacity(std::size_t capacity) {
    action_ring_.set_capacity(capacity);
  }
  [[nodiscard]] const ActionRing& action_ring() const { return action_ring_; }

  // --- Diagnostics ----------------------------------------------------------------

  [[nodiscard]] const NetworkModel& network() const { return net_; }
  /// Warm-start the network cost memo from a model left behind by an
  /// earlier run with identical NetworkParams (a no-op otherwise). Used by
  /// the serve daemon's warm workers; bit-inert — see NetworkModel::warm_from.
  void warm_network_memo(const NetworkModel& prev) { net_.warm_from(prev); }
  /// Total bytes that crossed node boundaries.
  [[nodiscard]] std::int64_t inter_node_bytes() const { return inter_node_bytes_; }
  /// Derived per-run RNG stream (deterministic per label).
  [[nodiscard]] Rng make_rng(std::string_view label) const {
    return master_rng_.fork(stream_label(label));
  }

  /// Internal consistency checker (used by the fuzz harness and tests):
  /// every CPU's `current` cross-references a task that believes it is on
  /// that CPU; every queued task sits in exactly its own CPU's runqueue;
  /// frozen flags agree with node SMM state (outside single-CPU
  /// preemptions); finished tasks hold no execution state. Transport side:
  /// the message pool's free-list bookkeeping holds, the in-flight counter
  /// equals the pool's kTransit population, every unexpected queue is
  /// structurally sound and their sizes sum to the pool's kUnexpected
  /// population, and every kConsumed record has a live ack route. Throws
  /// std::logic_error with a description on the first violation.
  void validate() const;

 private:
  struct TaskImpl;
  struct CpuState;
  struct NodeState;

  TaskImpl& task(TaskId id);
  const TaskImpl& task(TaskId id) const;
  CpuState& cpu_state(int node, int cpu);

  // Placement and scheduling.
  int place(const TaskSpec& spec);
  void make_ready(TaskImpl& t);
  void dispatch(int node, int cpu);
  void steal_into(int node, int cpu);
  void preempt_current(int node, int cpu);
  void arm_quantum(int node, int cpu);

  // Execution progress.
  double current_rate(const TaskImpl& t) const;
  void settle(TaskImpl& t);
  void begin_running(TaskImpl& t);
  void stop_running(TaskImpl& t, bool keep_on_cpu);
  void reschedule_completion(TaskImpl& t);
  void on_work_complete(TaskImpl& t);
  void sibling_rate_changed(int node, int cpu);
  [[nodiscard]] bool sibling_busy(const TaskImpl& t) const;

  // Action interpretation.
  void start_next_action(TaskImpl& t);
  void step_action(TaskImpl& t);
  void start_work(TaskImpl& t, SimDuration amount);
  void finish_task(TaskImpl& t);

  // Messaging. Records live in pool_ and are addressed by generation-checked
  // MsgHandles; see sim/transport.h for the lifecycle and recycle policy.
  MsgHandle inject_message(TaskImpl& sender, int dst_rank, std::int64_t bytes,
                           int tag, bool needs_ack, std::uint64_t ack_key);
  void on_message_arrival(MsgHandle h);
  bool try_match_recv(TaskImpl& t, int src_rank, int tag, MessageRec** out);
  void retire_copied(TaskImpl& receiver, MsgHandle h);
  void deliver_ack(const MessageRec& msg);
  void on_ack(std::uint64_t ack_key);
  bool match_posted_irecv(TaskImpl& t, MsgHandle h);
  void wake_waitall(TaskImpl& t);

  // WaitAll progress-counter helpers (TaskImpl::wa_* state).
  static void wa_mark_ready(TaskImpl& t, int pos);
  static void wa_clear_ready(TaskImpl& t, int pos);
  [[nodiscard]] static int wa_first_ready(const TaskImpl& t);

  // Lazily matured rendezvous acks (fast path; see deliver_ack).
  void queue_lazy_ack(TaskImpl& sender, std::uint64_t key, SimTime due);
  void mature_acks(TaskImpl& t, bool allow_wake = false);
  void ensure_ack_wake(TaskImpl& t);
  void apply_ack(std::uint64_t ack_key, bool allow_wake);

  // Event-driven NIC servers (pause while the node is in SMM: a frozen
  // host neither transmits nor ACKs, so TCP stalls with the CPUs).
  struct NicServer;
  NicServer& nic(int node, bool egress);
  void nic_submit(int node, bool egress, MsgHandle h);
  void nic_try_serve(int node, bool egress);
  void nic_service_done(int node, bool egress, std::uint64_t epoch);
  void nic_pause(int node, bool egress);
  void nic_resume(int node, bool egress);

  // NIC pipeline fast path: an idle unpaused server books each message's
  // service interval at submit time and carries it on one event (egress:
  // the handoff; ingress: the merged service-end + propagation arrival).
  // A pause converts outstanding bookings back to the classic
  // active/queue form, after which the original pause/resume/crash logic
  // applies unchanged.
  void nic_book(int node, bool egress, NicServer& server, MsgHandle h);
  void nic_pipe_arm(int node, bool egress, NicServer& server);
  void nic_pipe_handoff(int node, MsgHandle h);
  void nic_pipe_arrival(int node, MsgHandle h);
  void nic_pipe_to_classic(int node, NicServer& server);

  // SMM helpers.
  void apply_refill(TaskImpl& t, Rng& rng, SimDuration frozen_for);

  // Fault and diagnosis helpers.
  void kill_task(TaskImpl& t);
  void fail_message(MsgHandle h);
  void handoff_to_ingress(MsgHandle h);
  void retransmit_later(MsgHandle h);
  void close_fault_record(FaultRecord::Kind kind, int node);
  [[nodiscard]] bool all_unfinished_comm_waiting() const;
  [[nodiscard]] RunResult diagnose(RunStatus status) const;
  void note_progress() { last_progress_ = now(); }

  SystemConfig cfg_;
  Engine engine_;
  Cluster cluster_;
  NetworkModel net_;
  SmmAccounting smm_acct_;
  Rng master_rng_;
  Rng refill_rng_;
  Rng nic_rng_;
  double htt_refill_run_factor_ = 1.0;  ///< per-run HTT warm-up luck
  std::vector<double> node_speed_;  ///< per-node base speed multiplier

  std::vector<std::unique_ptr<TaskImpl>> tasks_;
  std::vector<std::vector<TaskId>> groups_;
  std::vector<std::unique_ptr<NodeState>> node_state_;
  MessagePool pool_;
  AckRouter ack_router_;
  std::uint64_t next_ack_key_ = 1;
  std::int64_t inter_node_bytes_ = 0;
  int unfinished_tasks_ = 0;

  // Fault and watchdog state.
  bool fast_paths_ = true;
  bool rank_indexing_ = true;
  int rank_index_threshold_ = 64;
  LinkFaultModel* link_fault_ = nullptr;
  SchedulePolicy* sched_policy_ = nullptr;  ///< null: canonical schedule
  std::vector<double> fault_rate_;  ///< per-node fault rate degradation
  std::vector<FaultRecord> fault_log_;
  std::int64_t messages_dropped_ = 0;
  std::int64_t messages_duplicated_ = 0;
  std::int64_t retransmissions_ = 0;
  std::int64_t transport_failures_ = 0;
  std::int64_t failed_tasks_ = 0;
  std::int64_t in_flight_messages_ = 0;
  std::int64_t peak_in_flight_messages_ = 0;
  std::int64_t program_actions_ = 0;  ///< sum of materialized_actions()
  std::int64_t peak_program_actions_ = 0;
  ActionRing action_ring_;
  SimTime last_progress_ = SimTime::zero();

  std::unique_ptr<SmiController> smi_;
};

}  // namespace smilab
