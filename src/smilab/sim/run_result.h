// Structured run outcomes and failure diagnostics.
//
// Historically a stuck run surfaced as a bare std::runtime_error with a
// name dump, which is useless for a tool that must degrade gracefully: the
// CLI and the benches need to know *why* the run stopped (deadlock? hang?
// sim-time ceiling?) and *what every rank was doing* at that moment. This
// header defines the non-throwing result type returned by System::try_run()
// and the per-rank diagnosis it carries; System::run() wraps the same data
// in a SimulationError for callers that prefer exceptions.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "smilab/sim/task.h"
#include "smilab/time/sim_time.h"

namespace smilab {

/// Why a run stopped.
enum class RunStatus {
  kOk,           ///< every task finished (crashed-node tasks count as failed)
  kDeadlock,     ///< stuck forever: wait-for cycle or no wake-up possible
  kHang,         ///< no task progressed for hang_timeout; no cycle proven
  kMaxSimTime,   ///< simulated time exceeded SystemConfig::max_sim_time
  kConfigError,  ///< invalid setup (e.g. spawning with no online CPUs);
                 ///< only ever carried by SimulationError, never try_run()
};

[[nodiscard]] const char* to_string(RunStatus status);

/// What a stuck (or merely unfinished) task was blocked on.
enum class BlockedOp {
  kNone,     ///< not blocked (computing or runnable) — max_sim_time reports
  kRecv,     ///< waiting for a (src, tag) message match
  kAckWait,  ///< rendezvous send waiting for the receiver's completion ack
  kWaitAll,  ///< parked in WaitAll with incomplete handles
  kSleep,    ///< waiting for a timer
};

[[nodiscard]] const char* to_string(BlockedOp op);

/// A message sitting in a wedged receiver's unexpected queue (sampled in
/// arrival order): what HAS arrived but failed to match tells you why the
/// blocked receive never fires — typically a tag mismatch, or an
/// ANY_SOURCE receive already consumed by an earlier arrival.
struct QueuedMessage {
  int src_rank = -1;
  int tag = -1;
  std::int64_t bytes = 0;
};

/// One open nonblocking handle of a wedged task (sampled in id order).
struct PendingHandle {
  int id = -1;
  bool is_send = false;
  int peer_rank = -1;  ///< posting src (recv) / destination (send)
  int tag = -1;
  bool any_source = false;  ///< recv posted with kAnySource
};

/// One unfinished task's state at diagnosis time.
struct RankDiagnosis {
  TaskId task;
  std::string name;
  int node = 0;
  int rank = 0;               ///< rank within its group
  BlockedOp op = BlockedOp::kNone;
  int peer_rank = -1;         ///< blocked-on rank, or -1 (any-source / n.a.)
  int tag = -1;               ///< blocked-on tag, or -1
  bool any_source = false;    ///< blocked receive is an ANY_SOURCE wildcard
  bool peer_failed = false;   ///< the blocked-on peer died (node crash)
  std::size_t unexpected_depth = 0;  ///< arrived-but-unmatched messages
  std::size_t posted_recvs = 0;      ///< outstanding Irecv postings
  std::size_t incomplete_handles = 0;  ///< WaitAll handles still open
  /// First few queued-but-unmatched arrivals, in arrival order (capped at
  /// kDiagnosisSampleCap; unexpected_depth is the true total).
  std::vector<QueuedMessage> unexpected_sample;
  /// First few open handles, in id order (capped at kDiagnosisSampleCap;
  /// incomplete_handles is the true total).
  std::vector<PendingHandle> pending_handles;
};

/// Sample cap for RankDiagnosis::unexpected_sample / pending_handles: keeps
/// reports readable when a wedged rank has thousands queued.
inline constexpr std::size_t kDiagnosisSampleCap = 8;

/// Full post-mortem of a run that did not complete.
struct RunDiagnosis {
  SimTime sim_now;                  ///< simulated time at diagnosis
  std::vector<RankDiagnosis> ranks; ///< every unfinished, non-failed task
  /// Wait-for cycle (task ids, first repeated at the end), empty if none.
  std::vector<TaskId> cycle;
  std::int64_t failed_tasks = 0;    ///< tasks killed by node crashes
  std::int64_t in_flight_messages = 0;

  /// Human-readable multi-line report.
  [[nodiscard]] std::string to_string(RunStatus status) const;
};

/// Outcome of System::try_run(): status plus, on failure, the diagnosis.
struct RunResult {
  RunStatus status = RunStatus::kOk;
  RunDiagnosis diagnosis;
  /// High-water mark of simultaneously in-flight messages over the run —
  /// the bound on the transport's pooled-record memory (sim/transport.h).
  std::int64_t peak_in_flight_messages = 0;
  /// High-water mark of materialized program actions summed across tasks —
  /// the bound on trace memory: O(total actions) retained, O(ranks x
  /// chunk) streaming (mpi/streaming.h).
  std::int64_t peak_program_actions = 0;

  [[nodiscard]] bool ok() const { return status == RunStatus::kOk; }
  [[nodiscard]] std::string to_string() const {
    return diagnosis.to_string(status);
  }
};

/// Structured simulation failure. Thrown by the throwing entry points
/// (System::run, task placement); carries the machine-readable status so
/// the CLI can map it to an exit code without parsing the message.
class SimulationError : public std::runtime_error {
 public:
  SimulationError(RunStatus status, std::string message)
      : std::runtime_error(std::move(message)), status_(status) {}

  [[nodiscard]] RunStatus status() const { return status_; }

 private:
  RunStatus status_;
};

}  // namespace smilab
