// Point-to-point transport data structures: the message-path hot layer.
//
// The simulator replays every MPI message through the System, so for the
// NAS table sweeps the message path is wall-clock critical the same way the
// event engine is. Three structures carry it, all O(1) on the hot path and
// all bounded by *in-flight* traffic rather than total traffic:
//
//  * MessagePool — a slab/free-list of MessageRec slots addressed by
//    generation-checked handles. Records are recycled the moment the
//    protocol is done with them (eager: at receive copy; rendezvous: when
//    the sender's ack fires; ghosts/failures: immediately), so a class-C
//    table run keeps a few hundred live records instead of retaining every
//    message ever sent. Stale handles (e.g. a retransmission timer whose
//    message was abandoned) resolve to nullptr instead of poking a
//    recycled slot.
//  * UnexpectedQueue — per-receiver bucketed unexpected-message queues:
//    a (src, tag) bucket map for specific matches plus a per-tag index for
//    MPI_ANY_SOURCE, both as intrusive doubly-linked lists threaded through
//    the pool slots. Matching pops a list head instead of scanning a
//    mailbox vector, and a consumed record is unlinked from BOTH lists
//    eagerly, so mid-queue consumption reclaims immediately (the old
//    mailbox only compacted from the front). Every enqueued record gets a
//    per-receiver arrival sequence number; any-source matching follows the
//    per-tag list, which is arrival-ordered, preserving MPI's global
//    arrival-order semantics for wildcards — check_invariants verifies the
//    sequence is strictly increasing along every list.
//  * AckRouter — a global ack-key -> (task, handle) hash route. A
//    rendezvous completion previously scanned every task and searched two
//    maps per task; now it is one hash lookup. The route also remembers the
//    message's (dst_rank, tag) so a stuck sender can be diagnosed after the
//    record itself has been recycled.
//
// NbHandleTable replaces the per-task std::map<int, NbHandle>: programs use
// small dense task-local handle ids (collectives allocate 0..2p-1 and reuse
// them every invocation), so a flat slot vector indexed by id with slot
// reuse across open/close cycles beats a node-based map. Iteration is in
// ascending handle id — the same order std::map gave — so posted-receive
// matching picks the same handle bit-for-bit.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <memory_resource>
#include <unordered_map>
#include <vector>

#include "smilab/sim/flat_key_map.h"
#include "smilab/sim/task.h"
#include "smilab/time/sim_time.h"
#include "smilab/trace/action_arena.h"

namespace smilab {

class SchedulePolicy;  // sim/choice_hooks.h

/// Generation-checked reference to a pooled MessageRec. Trivially copyable
/// (8 bytes) so deferred events capture it inline. A default-constructed
/// handle is null; a handle outlives its record gracefully: resolving it
/// after the record was recycled yields nullptr, never a stale slot.
struct MsgHandle {
  std::uint32_t index = 0;
  std::uint32_t gen = 0;  ///< 0 = null (live slots have gen >= 1)
  [[nodiscard]] bool valid() const { return gen != 0; }
  bool operator==(const MsgHandle&) const = default;
};

/// One point-to-point message, pooled. Lifecycle:
///   kTransit    injected; on the wire / in a NIC queue / awaiting retry
///   kUnexpected arrived, enqueued at the receiver, not yet matched
///   kMatched    matched to a receive; CPU-side copy not yet done
///   kConsumed   copy done; record held only until the rendezvous ack
///               fires (eager messages skip this state and recycle at copy)
/// Ghost duplicates and transport failures recycle straight from kTransit.
struct MessageRec {
  static constexpr std::uint32_t kNil = 0xffffffffu;

  enum class State : std::uint8_t { kTransit, kUnexpected, kMatched, kConsumed };

  GroupId group;
  int src_rank = 0;
  int dst_rank = 0;
  int src_node = 0;
  int dst_node = 0;
  std::int64_t bytes = 0;
  int tag = 0;
  bool needs_ack = false;
  std::uint64_t ack_key = 0;
  TaskId sender;
  SimDuration xmit{};  ///< per-stage wire service time (inter-node)
  SimTime arrival;
  std::uint64_t arrival_seq = 0;  ///< per-receiver arrival order (wildcards)
  State state = State::kTransit;
  bool arrived = false;
  bool arrived_during_smm = false;
  int attempts = 0;     ///< egress service attempts consumed (fault drops)
  bool ghost = false;   ///< injected duplicate; discarded at transport dedup
  bool failed = false;  ///< abandoned by the transport (dead link / crash)

  // Intrusive UnexpectedQueue links (indices into the pool, kNil-ended):
  // one doubly-linked list per (src, tag) bucket, one per tag index.
  std::uint32_t st_prev = kNil, st_next = kNil;
  std::uint32_t tag_prev = kNil, tag_next = kNil;
};

/// Slab allocator for MessageRec with a free list and generation-checked
/// handles. Capacity grows to the peak number of concurrently live records
/// and is then recycled forever; `live()` is bounded by in-flight traffic.
class MessagePool {
 public:
  /// Fresh record (value-initialized) in kTransit state.
  [[nodiscard]] MsgHandle alloc();

  /// Resolve a handle; nullptr when the record was recycled (stale handle).
  [[nodiscard]] MessageRec* get(MsgHandle h) {
    if (!h.valid() || h.index >= slots_.size()) return nullptr;
    Slot& s = slots_[h.index];
    return (s.live && s.gen == h.gen) ? &s.rec : nullptr;
  }
  [[nodiscard]] const MessageRec* get(MsgHandle h) const {
    return const_cast<MessagePool*>(this)->get(h);
  }

  /// Resolve a handle that must be live (hot path; asserts in debug).
  [[nodiscard]] MessageRec& ref(MsgHandle h);

  /// Record at a raw slab index that the caller knows is live — used by
  /// UnexpectedQueue to walk its intrusive links, which only ever thread
  /// through live kUnexpected records (eager dual unlink at match time).
  [[nodiscard]] MessageRec& at_index(std::uint32_t index) {
    assert(index < slots_.size() && slots_[index].live);
    return slots_[index].rec;
  }
  [[nodiscard]] const MessageRec& at_index(std::uint32_t index) const {
    assert(index < slots_.size() && slots_[index].live);
    return slots_[index].rec;
  }

  /// Live handle for a raw slab index (for releasing linked records).
  [[nodiscard]] MsgHandle handle_at(std::uint32_t index) const {
    assert(index < slots_.size() && slots_[index].live);
    return MsgHandle{index, slots_[index].gen};
  }

  /// Recycle a record. Its generation retires, so outstanding handles to it
  /// become stale rather than dangling.
  void release(MsgHandle h);

  [[nodiscard]] std::size_t live() const { return live_; }
  [[nodiscard]] std::size_t peak_live() const { return peak_live_; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  [[nodiscard]] std::int64_t total_allocated() const { return allocated_; }

  /// Count live records in `state` (diagnostics; O(capacity)).
  [[nodiscard]] std::size_t live_in_state(MessageRec::State state) const;

  /// Free-list / liveness bookkeeping self-check; throws std::logic_error.
  void check_invariants() const;

 private:
  struct Slot {
    MessageRec rec;
    std::uint32_t gen = 1;
    std::uint32_t next_free = MessageRec::kNil;
    bool live = false;
  };

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = MessageRec::kNil;
  std::size_t live_ = 0;
  std::size_t peak_live_ = 0;
  std::int64_t allocated_ = 0;
};

/// Per-receiver unexpected-message queues: (src, tag) buckets plus a
/// per-tag arrival-ordered index for any-source matching. See file header.
class UnexpectedQueue {
 public:
  /// Rank-indexed mode (DESIGN.md §16): back the (src, tag) and per-tag
  /// bucket maps with FlatKeyMap instead of unordered_map, eliminating the
  /// node alloc/free pair every enqueue+match cycle pays. Observable
  /// behavior is bit-identical — both modes are probed by key only, and
  /// the intrusive lists threaded through the pool slots are shared — so
  /// the toggle exists for A/B equality suites and benchmarks (the PR-5
  /// set_transport_fast_paths pattern). System enables it at spawn time
  /// for tasks in groups at or above its rank-index threshold. Must be
  /// called while the queue is empty.
  void set_rank_indexed(bool on) {
    assert(count_ == 0 && "switch indexing mode only while empty");
    rank_indexed_ = on;
  }
  [[nodiscard]] bool rank_indexed() const { return rank_indexed_; }

  /// Enqueue an arrived, unmatched message; assigns its arrival_seq and
  /// moves it to kUnexpected.
  void push(MessagePool& pool, MsgHandle h);

  /// Match and unlink the earliest-arrival message with `tag` from
  /// `src_rank` (or any source when src_rank == kAnySource). Returns a null
  /// handle when nothing matches. The record is left in kMatched state.
  ///
  /// `policy` (model checking; sim/choice_hooks.h) is consulted only for
  /// an ANY_SOURCE match with >= 2 candidate sources: candidates are the
  /// earliest queued message of each distinct source, in arrival order —
  /// MPI's non-overtaking rule pins the within-source order, so these are
  /// exactly the matches a real MPI library could legally make. Decision 0
  /// is the tag-list head, i.e. the default (earliest-arrival) match.
  [[nodiscard]] MsgHandle match(MessagePool& pool, int src_rank, int tag,
                                SchedulePolicy* policy);
  [[nodiscard]] MsgHandle match(MessagePool& pool, int src_rank, int tag) {
    return match(pool, src_rank, tag, nullptr);
  }

  /// Release every queued record back to the pool (receiver killed).
  void clear(MessagePool& pool);

  [[nodiscard]] std::size_t size() const { return count_; }

  /// Visit every queued record in true arrival order (diagnostics: the
  /// wait-for-graph report samples what a wedged receiver has queued but
  /// unmatched). F: void(const MessageRec&). Allocates and sorts — never
  /// on the message hot path.
  template <typename F>
  void for_each_arrival(const MessagePool& pool, F&& f) const {
    std::vector<int> tags = tag_keys();  // sorted; hash order cannot escape
    std::vector<const MessageRec*> recs;
    recs.reserve(count_);
    for (const int tag : tags) {
      for (std::uint32_t i = find_tag_bucket(tag)->head;
           i != MessageRec::kNil; i = pool.at_index(i).tag_next) {
        recs.push_back(&pool.at_index(i));
      }
    }
    std::sort(recs.begin(), recs.end(),
              [](const MessageRec* a, const MessageRec* b) {
                return a->arrival_seq < b->arrival_seq;
              });
    for (const MessageRec* r : recs) f(*r);
  }

  /// Structural self-check: link symmetry, live kUnexpected records only,
  /// strictly increasing arrival_seq along every list, counts consistent.
  void check_invariants(const MessagePool& pool) const;

 private:
  struct Bucket {
    std::uint32_t head = MessageRec::kNil;
    std::uint32_t tail = MessageRec::kNil;
  };

  static std::uint64_t src_tag_key(int src_rank, int tag) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src_rank))
            << 32) |
           static_cast<std::uint32_t>(tag);
  }
  static std::uint64_t tag_key(int tag) {
    return static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag));
  }
  /// Flat-mode (src, tag) key: src + 1 in the high word so the two key
  /// families share one FlatKeyMap without colliding — tag-only keys have
  /// a zero high word, (src, tag) keys never do (src >= 0). One map halves
  /// the per-task header and first-allocation cost; at 64k ranks the pair
  /// was ~10 MB of four-slot opening bids.
  static std::uint64_t flat_st_key(int src_rank, int tag) {
    return ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(src_rank)) +
             1)
            << 32) |
           static_cast<std::uint32_t>(tag);
  }

  /// The classic unordered_map pair, allocated on first classic-mode use.
  /// Behind a pointer so rank-indexed tasks — tens of thousands of them —
  /// do not each carry 112 bytes of never-touched map headers.
  struct ClassicMaps {
    std::unordered_map<std::uint64_t, Bucket> by_src_tag;
    std::unordered_map<int, Bucket> by_tag;
  };
  [[nodiscard]] ClassicMaps& classic() {
    if (!classic_) classic_ = std::make_unique<ClassicMaps>();
    return *classic_;
  }

  // Mode-dispatching bucket accessors: all hot-path callers probe by
  // (src, tag) or tag through these, so push/match/unlink are a single
  // code path over both backing stores.
  [[nodiscard]] Bucket* find_st_bucket(int src_rank, int tag) {
    if (rank_indexed_) return flat_.find(flat_st_key(src_rank, tag));
    return classic_
               ? classic_find(classic_->by_src_tag, src_tag_key(src_rank, tag))
               : nullptr;
  }
  [[nodiscard]] Bucket& get_st_bucket(int src_rank, int tag) {
    return rank_indexed_ ? flat_.get_or_insert(flat_st_key(src_rank, tag))
                         : classic().by_src_tag[src_tag_key(src_rank, tag)];
  }
  void erase_st_bucket(int src_rank, int tag) {
    if (rank_indexed_) {
      flat_.erase(flat_st_key(src_rank, tag));
    } else {
      classic_->by_src_tag.erase(src_tag_key(src_rank, tag));
    }
  }
  [[nodiscard]] Bucket* find_tag_bucket(int tag) {
    if (rank_indexed_) return flat_.find(tag_key(tag));
    return classic_ ? classic_find(classic_->by_tag, tag) : nullptr;
  }
  [[nodiscard]] const Bucket* find_tag_bucket(int tag) const {
    return const_cast<UnexpectedQueue*>(this)->find_tag_bucket(tag);
  }
  [[nodiscard]] Bucket& get_tag_bucket(int tag) {
    return rank_indexed_ ? flat_.get_or_insert(tag_key(tag))
                         : classic().by_tag[tag];
  }
  void erase_tag_bucket(int tag) {
    if (rank_indexed_) {
      flat_.erase(tag_key(tag));
    } else {
      classic_->by_tag.erase(tag);
    }
  }
  template <typename Map, typename K>
  static Bucket* classic_find(Map& m, K key) {
    auto it = m.find(key);
    return it == m.end() ? nullptr : &it->second;
  }

  /// Distinct queued tags, sorted (diagnostics/clear; hash order of either
  /// backing store cannot escape).
  [[nodiscard]] std::vector<int> tag_keys() const;

  /// Unlink `h` from both its (src, tag) bucket and its tag index;
  /// erases buckets that become empty so the maps stay bounded by
  /// *concurrently* queued traffic, not by distinct tags ever seen.
  void unlink(MessagePool& pool, MsgHandle h);

  // Scratch for the policy-driven any-source candidate scan (first queued
  // record per distinct source). Heap members, not locals, so capacity
  // persists across matches and exploration runs don't churn the
  // allocator; boxed because only model-checking runs with wildcard
  // receives ever take that branch.
  struct MatchScratch {
    std::vector<std::uint32_t> cand;
    std::vector<int> seen;
  };
  [[nodiscard]] MatchScratch& scratch() {
    if (!scratch_) scratch_ = std::make_unique<MatchScratch>();
    return *scratch_;
  }

  bool rank_indexed_ = false;
  std::unique_ptr<ClassicMaps> classic_;
  /// Flat-mode store for BOTH bucket families, keyed by flat_st_key /
  /// tag_key (disjoint by construction — see flat_st_key).
  FlatKeyMap<Bucket> flat_;
  std::uint64_t next_seq_ = 0;
  std::size_t count_ = 0;
  std::unique_ptr<MatchScratch> scratch_;
};

/// Where a rendezvous completion ack should land, plus enough routing
/// detail (peer rank, tag) to diagnose a stuck sender after the message
/// record itself has been recycled.
struct AckTarget {
  TaskId task;
  int nb_handle = -1;  ///< nonblocking send handle id, or -1: blocking wait
  MsgHandle msg;       ///< the rendezvous payload (recycled when the ack fires)
  int dst_rank = -1;
  int tag = -1;
  bool failed = false;  ///< the payload was abandoned; the ack never comes
};

/// Global ack-key -> target hash route: one lookup per completion instead
/// of a scan over every task. Keys are globally unique per System.
///
/// Determinism (smilint D3): the router is match-by-key ONLY — add, find,
/// erase, size. It deliberately exposes no iteration or visitation API, so
/// the map's hash order cannot reach simulation state, output, or
/// validate() ordering. If a future change needs to walk outstanding
/// routes (e.g. for diagnostics), it must drain via sorted keys; the
/// AckRouterPermutation test pins this by inserting in permuted orders and
/// hashing the observable drain sequence.
class AckRouter {
 public:
  /// Rank-indexed mode: flat open-addressed slots instead of unordered_map
  /// nodes (one alloc/free pair saved per rendezvous). Both stores are
  /// key-probed only, so routing is bit-identical; the hint pre-sizes the
  /// slot array for the expected concurrent route count (O(ranks) during a
  /// collective phase). Switch only while empty.
  void set_rank_indexed(bool on, std::size_t capacity_hint = 0) {
    assert(size() == 0 && "switch indexing mode only while empty");
    rank_indexed_ = on;
    if (on && capacity_hint != 0) flat_.reserve(capacity_hint);
  }
  [[nodiscard]] bool rank_indexed() const { return rank_indexed_; }

  void add(std::uint64_t key, AckTarget target) {
    if (rank_indexed_) {
      flat_.get_or_insert(key) = target;
    } else {
      map_.emplace(key, target);
    }
  }
  [[nodiscard]] AckTarget* find(std::uint64_t key) {
    if (rank_indexed_) return flat_.find(key);
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const AckTarget* find(std::uint64_t key) const {
    return const_cast<AckRouter*>(this)->find(key);
  }
  void erase(std::uint64_t key) {
    if (rank_indexed_) {
      flat_.erase(key);
    } else {
      map_.erase(key);
    }
  }
  [[nodiscard]] std::size_t size() const {
    return rank_indexed_ ? flat_.size() : map_.size();
  }

 private:
  bool rank_indexed_ = false;
  std::unordered_map<std::uint64_t, AckTarget> map_;
  FlatKeyMap<AckTarget> flat_;
};

/// Per-task nonblocking-communication handle table: a flat slot vector
/// indexed by the program's task-local handle id, slots reused across
/// open/close cycles. Iteration is ascending by id (what std::map iteration
/// gave), which fixes the posted-receive match order.
///
/// Posted receives are additionally indexed by tag (`post_recv` /
/// `match_posted`): an arrival probes its tag bucket instead of scanning
/// every open handle, which is what made dense waitall windows (the
/// rendezvous ack storm) quadratic. The bucket keeps ids ascending, so the
/// match picks the same lowest-id handle the full scan picked, bit-for-bit.
/// Determinism (smilint D3): the tag map is probed by key only and dropped
/// wholesale on clear(); its hash order never reaches simulation state.
class NbHandleTable {
 public:
  struct Entry {
    bool open = false;
    bool is_send = false;
    bool complete = false;
    bool data_arrived = false;   ///< recv: matched message landed
    bool in_waitall = false;     ///< enrolled in the task's active WaitAll
    int wa_pos = -1;             ///< position in that WaitAll's handle list
    MsgHandle msg;               ///< recv: the matched message
    std::uint64_t ack_key = 0;   ///< send: rendezvous ack route key
    int src = -1;                ///< recv posting key
    int tag = 0;
    int peer = -1;               ///< counterpart rank (diagnosis wait-for edge)
  };

  /// Rank-indexed mode: the posted-by-tag index keeps its arena-backed id
  /// vectors but reaches them through a FlatKeyMap of store indices
  /// instead of unordered_map nodes, so post/unpost churn at waitall-
  /// window rate stops paying a node alloc/free per cycle. Match order is
  /// unchanged (ids stay ascending within a bucket). Switch only while no
  /// handle is open.
  void set_rank_indexed(bool on) {
    assert(open_ == 0 && "switch indexing mode only while empty");
    rank_indexed_ = on;
  }
  [[nodiscard]] bool rank_indexed() const { return rank_indexed_; }

  /// Open slot `id` for a send or receive; asserts the id is not already
  /// in use.
  Entry& open_slot(int id, bool is_send);

  /// Enroll an open, unmatched receive slot in the posted-by-tag index.
  /// Call after the entry's `src`/`tag` posting keys are set.
  void post_recv(int id);

  /// Lowest-id posted receive matching (src_rank, tag) — identical to the
  /// ascending full-table scan — or -1. Does not consume; the caller marks
  /// the entry and calls unpost().
  [[nodiscard]] int match_posted(int src_rank, int tag) const;

  /// Remove a receive from the posted index (matched, closed, or killed).
  void unpost(int id);

  /// The open entry with this id, or nullptr.
  [[nodiscard]] Entry* find(int id) {
    if (id < 0 || static_cast<std::size_t>(id) >= entries_.size()) return nullptr;
    Entry& e = entries_[static_cast<std::size_t>(id)];
    return e.open ? &e : nullptr;
  }
  [[nodiscard]] const Entry* find(int id) const {
    return const_cast<NbHandleTable*>(this)->find(id);
  }

  /// Close (free) slot `id` for reuse.
  void close(int id);

  /// Drop every open entry (task killed). Does not touch pool records;
  /// the caller walks entries first to release/unroute them.
  void clear();

  [[nodiscard]] std::size_t open_count() const { return open_; }
  [[nodiscard]] bool any_open_recv() const { return open_recvs_ > 0; }

  /// Visit open entries in ascending handle-id order.
  /// F: void(int id, Entry&) / void(int id, const Entry&).
  template <typename F>
  void for_each_open(F&& f) {
    if (open_ == 0) return;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].open) f(static_cast<int>(i), entries_[i]);
    }
  }
  template <typename F>
  void for_each_open(F&& f) const {
    if (open_ == 0) return;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].open) f(static_cast<int>(i), entries_[i]);
    }
  }

 private:
  /// The posted-id vector for `tag`, or nullptr (either mode).
  [[nodiscard]] const std::pmr::vector<int>* find_posted(int tag) const;
  /// The posted-id vector for `tag`, creating an empty one (either mode).
  [[nodiscard]] std::pmr::vector<int>& get_posted(int tag);
  /// Drop `tag`'s bucket (it must be empty), recycling the store slot.
  void erase_posted(int tag);

  std::vector<Entry> entries_;
  std::size_t open_ = 0;
  std::size_t open_recvs_ = 0;
  bool rank_indexed_ = false;
  /// tag -> ascending ids of open receives still awaiting a message.
  /// Probed by key only; cleared wholesale (smilint D3). Behind a pointer,
  /// allocated on first classic-mode post, so rank-indexed tasks don't
  /// carry the map header.
  ///
  /// The bucket vectors live on the thread's ActionArena (trace/): posting
  /// and unposting churn small id vectors at waitall-window rate, and the
  /// bump resource turns that into pointer arithmetic. Only the vectors are
  /// arena-backed — the outer map stays on the heap, since the arena's
  /// deallocate is a no-op and TagAllocator tags are monotonic: arena-side
  /// map nodes for dead tags would accumulate until reset.
  std::unique_ptr<std::unordered_map<int, std::pmr::vector<int>>>
      posted_by_tag_;
  /// Rank-indexed replacement for the outer map: tag -> (store index + 1)
  /// in a FlatKeyMap (0 = empty sentinel from value-initialization), with
  /// the arena-backed vectors themselves recycled through posted_store_ /
  /// store_free_ so FlatKeyMap only ever relocates 32-bit indices.
  FlatKeyMap<std::uint32_t> posted_flat_;
  std::vector<std::pmr::vector<int>> posted_store_;
  std::vector<std::uint32_t> store_free_;
  std::pmr::memory_resource* arena_ = ActionArena::current();
};

/// Snapshot of the transport's resource usage (System::transport_stats()).
struct TransportStats {
  std::int64_t messages_allocated = 0;  ///< total records ever allocated
  std::int64_t pool_live = 0;           ///< records currently live
  std::int64_t pool_capacity = 0;       ///< slab slots (the memory bound)
  std::int64_t pool_peak_live = 0;      ///< high-water mark of live records
  std::int64_t peak_in_flight = 0;      ///< high-water mark of wire traffic
  std::int64_t ack_routes = 0;          ///< outstanding rendezvous routes
};

}  // namespace smilab
