#include "smilab/sim/event_queue.h"

#include <cassert>
#include <utility>

namespace smilab {

EventId Engine::schedule_at(SimTime t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule in the past");
  assert(fn);
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{t, seq});
  fns_.emplace(seq, std::move(fn));
  return EventId{seq};
}

EventId Engine::schedule_after(SimDuration d, std::function<void()> fn) {
  assert(d >= SimDuration::zero() && "negative delay");
  return schedule_at(now_ + d, std::move(fn));
}

void Engine::cancel(EventId id) {
  if (!id.valid()) return;
  fns_.erase(id.seq);  // heap entry becomes a tombstone, skipped on pop
}

bool Engine::pop_next() {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    auto it = fns_.find(top.seq);
    if (it == fns_.end()) {
      heap_.pop();  // cancelled
      continue;
    }
    assert(top.time >= now_);
    now_ = top.time;
    // Move the callback out before executing: the callback may schedule or
    // cancel other events (rehashing fns_).
    std::function<void()> fn = std::move(it->second);
    fns_.erase(it);
    heap_.pop();
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Engine::run() {
  stopped_ = false;
  while (!stopped_ && pop_next()) {
  }
}

bool Engine::run_until(SimTime t) {
  stopped_ = false;
  while (!stopped_ && !heap_.empty()) {
    // Peek through tombstones without executing.
    while (!heap_.empty() && !fns_.contains(heap_.top().seq)) heap_.pop();
    if (heap_.empty()) break;
    if (heap_.top().time > t) {
      now_ = t;
      return true;
    }
    pop_next();
  }
  if (now_ < t) now_ = t;
  return !fns_.empty();
}

}  // namespace smilab
