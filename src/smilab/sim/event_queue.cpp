#include "smilab/sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "smilab/core/fnv.h"
#include "smilab/sim/choice_hooks.h"

namespace smilab {

void Engine::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.seq = 0;  // retire the generation: stale EventIds can never match again
  s.cancelled = false;
  s.fn.reset();
  s.next_free = free_head_;
  free_head_ = slot;
}

void Engine::heap_push(Entry e) {
  heap_.push_back(e);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Engine::remove_root() {
  const Entry moved = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t i = 0;
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < end; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], moved)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = moved;
}

EventId Engine::finish_schedule(SimTime t, std::uint32_t slot) {
  assert(t >= now_ && "cannot schedule in the past");
  Slot& s = slots_[slot];
  assert(s.fn);
  const std::uint64_t seq = next_seq_++;
  s.seq = seq;
  s.cancelled = false;
  if (lane_enabled_ && tie_break_ == nullptr && t == now_) {
    lane_.push_back(Entry{t, seq, slot});
  } else if (ladder_routing() && t.ns() < win_hi_ns_) {
    ladder_insert(Entry{t, seq, slot});
  } else {
    heap_push(Entry{t, seq, slot});
  }
  ++live_;
  return EventId{seq, slot};
}

EventId Engine::schedule_at(SimTime t, InlineCallback fn) {
  const std::uint32_t slot = acquire_slot();
  slots_[slot].fn = std::move(fn);
  return finish_schedule(t, slot);
}

EventId Engine::schedule_after(SimDuration d, InlineCallback fn) {
  assert(d >= SimDuration::zero() && "negative delay");
  return schedule_at(now_ + d, std::move(fn));
}

void Engine::cancel(EventId id) {
  if (!id.valid() || id.slot >= slots_.size()) return;
  Slot& s = slots_[id.slot];
  // Generation check: the slot only belongs to this id while its seq
  // matches. After the event fires (or a compaction reaps it) the slot is
  // retired or re-tenanted, so a late cancel cannot create a tombstone.
  if (s.seq != id.seq || s.cancelled) return;
  s.cancelled = true;
  s.fn.reset();  // release captured state eagerly
  --live_;
  ++cancelled_;
  ++tombstones_;
  // Keep tombstones a bounded fraction of the pending set so cancel-heavy
  // periodic sources (quantum timers raced by completions) cannot grow it
  // without limit between pops.
  if (tombstones_ > 64 && tombstones_ * 2 > heap_.size() + ladder_size_) {
    compact_tombstones();
  }
}

void Engine::compact_tombstones() {
  std::size_t out = 0;
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    const Entry& e = heap_[i];
    const Slot& s = slots_[e.slot];
    if (s.cancelled && s.seq == e.seq) {
      release_slot(e.slot);
      continue;
    }
    heap_[out++] = e;
  }
  heap_.resize(out);
  // The lane holds tombstones too; sweep it so the counter reset is exact.
  std::size_t lane_out = 0;
  for (std::size_t i = lane_head_; i < lane_.size(); ++i) {
    const Entry& e = lane_[i];
    const Slot& s = slots_[e.slot];
    if (s.cancelled && s.seq == e.seq) {
      release_slot(e.slot);
      continue;
    }
    lane_[lane_out++] = e;
  }
  lane_.resize(lane_out);
  lane_head_ = 0;
  sweep_ladder_tombstones();
  tombstones_ = 0;
  // Floyd heap construction over the surviving entries.
  if (heap_.size() < 2) return;
  const std::size_t n = heap_.size();
  for (std::size_t start = (n - 2) / 4 + 1; start-- > 0;) {
    const Entry moved = heap_[start];
    std::size_t i = start;
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < end; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], moved)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = moved;
  }
}

void Engine::drop_root_tombstones() {
  while (!heap_.empty()) {
    const Entry top = heap_[0];
    const Slot& s = slots_[top.slot];
    if (!(s.cancelled && s.seq == top.seq)) return;
    remove_root();
    release_slot(top.slot);
    --tombstones_;
  }
}

void Engine::drop_lane_tombstones() {
  while (lane_head_ < lane_.size()) {
    const Entry front = lane_[lane_head_];
    const Slot& s = slots_[front.slot];
    if (!(s.cancelled && s.seq == front.seq)) return;
    release_slot(front.slot);
    --tombstones_;
    ++lane_head_;
  }
  lane_.clear();
  lane_head_ = 0;
}

// Move every surviving lane entry into the heap (policy installation or
// lane disable). (time, seq) is a total order, so subsequent pops are
// unchanged by where an entry waits.
void Engine::flush_lane() {
  for (std::size_t i = lane_head_; i < lane_.size(); ++i) {
    const Entry e = lane_[i];
    const Slot& s = slots_[e.slot];
    if (s.cancelled && s.seq == e.seq) {
      release_slot(e.slot);
      --tombstones_;
      continue;
    }
    heap_push(e);
  }
  lane_.clear();
  lane_head_ = 0;
}

void Engine::set_scheduler(Scheduler s) {
  if (s == scheduler_) return;
  scheduler_ = s;
  // kHeap: everything must live in the heap again. kLadder: pending heap
  // entries migrate at the next window refill, no pass needed.
  if (s == Scheduler::kHeap) flush_ladder();
}

std::size_t Engine::bucket_index(SimTime t) const {
  // t may sit below win_lo_ when run_until advanced now_ into a gap before
  // the window anchor; those entries share bucket 0 (still the earliest
  // bucket, and within-bucket order is by (time, seq) regardless).
  const std::int64_t lo = win_lo_.ns();
  if (t.ns() <= lo) return 0;
  const auto idx = static_cast<std::size_t>((t.ns() - lo) / width_);
  return idx < kBucketCount ? idx : kBucketCount - 1;
}

void Engine::ladder_insert(Entry e) {
  const std::size_t b = bucket_index(e.time);
  Bucket& bk = buckets_[b];
  if (!bk.sorted) {
    bk.v.push_back(e);
  } else {
    // Keep the bucket sorted: new entries carry the largest seq, so the
    // insertion point is always at or after the drain cursor. A position
    // exactly at the cursor (the common now()+epsilon reschedule) reuses
    // the gap the cursor left at the front; otherwise shift whichever side
    // is shorter.
    auto pos = std::upper_bound(bk.v.begin() + static_cast<std::ptrdiff_t>(
                                                   bk.head),
                                bk.v.end(), e, before);
    const auto at = static_cast<std::size_t>(pos - bk.v.begin());
    if (at == bk.head && bk.head > 0) {
      bk.v[--bk.head] = e;
    } else if (at - bk.head < bk.v.size() - at && bk.head > 0) {
      std::move(bk.v.begin() + static_cast<std::ptrdiff_t>(bk.head),
                bk.v.begin() + static_cast<std::ptrdiff_t>(at),
                bk.v.begin() + static_cast<std::ptrdiff_t>(bk.head) - 1);
      --bk.head;
      bk.v[at - 1] = e;
    } else {
      bk.v.insert(pos, e);
    }
  }
  if (b < scan_hint_) scan_hint_ = b;
  ++ladder_size_;
  ++win_inserted_;
}

// Re-anchor the window at the heap root and pull every in-horizon heap
// entry into the buckets. The bucket width re-derives from the event-
// horizon statistics of the window just drained: if the window averaged
// more than ~8 live entries per bucket the width halves (sorted-insert
// memmoves were getting long), if it averaged under ~1/4 entry per bucket
// it doubles (pops were mostly scanning empty buckets and refilling).
// Deterministic: inputs are simulation state only.
bool Engine::refill_window() {
  if (tombstones_ != 0) drop_root_tombstones();
  if (heap_.empty()) {
    win_hi_ns_ = std::numeric_limits<std::int64_t>::min();
    return false;
  }
  if (buckets_.empty()) buckets_.resize(kBucketCount);
  if (win_inserted_ > kBucketCount * 8) {
    width_ = std::max(kMinBucketWidthNs, width_ / 2);
  } else if (win_inserted_ * 4 < kBucketCount) {
    width_ = std::min(kMaxBucketWidthNs, width_ * 2);
  }
  win_inserted_ = 0;
  const std::int64_t lo = heap_[0].time.ns();
  const std::int64_t span = width_ * static_cast<std::int64_t>(kBucketCount);
  win_lo_ = SimTime{lo};
  win_hi_ns_ = lo > std::numeric_limits<std::int64_t>::max() - span
                   ? std::numeric_limits<std::int64_t>::max()
                   : lo + span;
  scan_hint_ = 0;
  while (!heap_.empty() && heap_[0].time.ns() < win_hi_ns_) {
    const Entry e = heap_[0];
    remove_root();
    const Slot& s = slots_[e.slot];
    if (s.cancelled && s.seq == e.seq) {
      release_slot(e.slot);
      --tombstones_;
      continue;
    }
    ladder_insert(e);
  }
  return true;
}

const Engine::Entry* Engine::ladder_peek() {
  for (;;) {
    if (ladder_size_ != 0) {
      for (std::size_t b = scan_hint_; b < kBucketCount; ++b) {
        Bucket& bk = buckets_[b];
        while (bk.head < bk.v.size()) {
          if (!bk.sorted) {
            std::sort(bk.v.begin(), bk.v.end(), before);
            bk.sorted = true;
          }
          const Entry& e = bk.v[bk.head];
          const Slot& s = slots_[e.slot];
          if (s.cancelled && s.seq == e.seq) {
            release_slot(e.slot);
            --tombstones_;
            --ladder_size_;
            ++bk.head;
            continue;
          }
          scan_hint_ = b;
          return &e;
        }
        bk.v.clear();
        bk.head = 0;
        bk.sorted = false;
      }
    }
    // Window drained; pull the next horizon out of the overflow heap.
    if (!refill_window()) return nullptr;
  }
}

void Engine::ladder_pop_front() {
  Bucket& bk = buckets_[scan_hint_];
  --ladder_size_;
  if (++bk.head == bk.v.size()) {
    bk.v.clear();
    bk.head = 0;
    bk.sorted = false;
  }
}

// Move every surviving ladder entry into the heap and drop the window
// (policy installation or set_scheduler(kHeap)). Like flush_lane: (time,
// seq) is a total order, so pop order is unchanged by the migration.
void Engine::flush_ladder() {
  if (ladder_size_ != 0) {
    for (Bucket& bk : buckets_) {
      for (std::size_t i = bk.head; i < bk.v.size(); ++i) {
        const Entry e = bk.v[i];
        const Slot& s = slots_[e.slot];
        if (s.cancelled && s.seq == e.seq) {
          release_slot(e.slot);
          --tombstones_;
          continue;
        }
        heap_push(e);
      }
      bk.v.clear();
      bk.head = 0;
      bk.sorted = false;
    }
    ladder_size_ = 0;
  }
  win_hi_ns_ = std::numeric_limits<std::int64_t>::min();
  scan_hint_ = 0;
  win_inserted_ = 0;
}

void Engine::sweep_ladder_tombstones() {
  if (ladder_size_ == 0) return;
  for (Bucket& bk : buckets_) {
    if (bk.v.empty()) continue;
    // Stable in-place removal from the cursor on preserves both the drain
    // position and any established sort.
    std::size_t out = bk.head;
    for (std::size_t i = bk.head; i < bk.v.size(); ++i) {
      const Entry& e = bk.v[i];
      const Slot& s = slots_[e.slot];
      if (s.cancelled && s.seq == e.seq) {
        release_slot(e.slot);
        --ladder_size_;
        continue;
      }
      bk.v[out++] = e;
    }
    bk.v.resize(out);
    if (bk.head == bk.v.size()) {
      bk.v.clear();
      bk.head = 0;
      bk.sorted = false;
    }
  }
}

bool Engine::pop_next() {
  if (tombstones_ != 0) {
    drop_root_tombstones();
    drop_lane_tombstones();
  }
  if (tie_break_ != nullptr) {  // lane and ladder are empty (flushed)
    if (heap_.empty()) return false;
    return pop_tied();
  }
  // Under the ladder the heap is the far-future tier: ladder_peek is the
  // non-lane minimum (refilling the window from the heap as needed).
  const Entry* next = ladder_routing()
                          ? ladder_peek()
                          : (heap_.empty() ? nullptr : heap_.data());
  const bool lane_has = lane_head_ < lane_.size();
  if (next == nullptr && !lane_has) return false;
  // Merge: lane front vs scheduler minimum by (time, seq) — the same total
  // order the heap alone produced.
  const bool from_lane =
      lane_has && (next == nullptr || before(lane_[lane_head_], *next));
  const Entry top = from_lane ? lane_[lane_head_] : *next;
  Slot& slot = slots_[top.slot];
  assert(slot.seq == top.seq);
  assert(top.time >= now_);
  now_ = top.time;
  // Move the callback out before executing: the callback may schedule
  // events (growing the slab) or cancel others (compacting the heap).
  InlineCallback fn = std::move(slot.fn);
  if (from_lane) {
    if (++lane_head_ == lane_.size()) {
      lane_.clear();
      lane_head_ = 0;
    }
  } else if (ladder_routing()) {
    ladder_pop_front();
  } else {
    remove_root();
  }
  release_slot(top.slot);
  --live_;
  ++executed_;
  fn();
  return true;
}

// Tie-break path (model checking only — entered iff a policy is installed).
// Collect every live entry sharing the minimal timestamp by popping roots;
// successive roots come off in (time, seq) order, so tie_buf_[0] is exactly
// the entry the default pop would have fired and "decision 0 == canonical
// schedule" holds by construction. The losers are re-pushed BEFORE the
// chosen callback runs: it may schedule or cancel events and must see a
// consistent heap. (time, seq) is a total order, so the re-pushed entries
// pop in the same relative order regardless of the heap's internal layout.
bool Engine::pop_tied() {
  const SimTime t0 = heap_[0].time;
  tie_buf_.clear();
  while (!heap_.empty() && heap_[0].time == t0) {
    tie_buf_.push_back(heap_[0]);
    remove_root();
    if (tombstones_ != 0) drop_root_tombstones();
  }
  std::size_t pick = 0;
  if (tie_buf_.size() > 1) {
    pick = tie_break_->choose(ChoiceKind::kEventTie, tie_buf_.size());
    assert(pick < tie_buf_.size() && "tie-break decision out of range");
  }
  const Entry chosen = tie_buf_[pick];
  for (std::size_t i = 0; i < tie_buf_.size(); ++i) {
    if (i != pick) heap_push(tie_buf_[i]);
  }
  Slot& slot = slots_[chosen.slot];
  assert(slot.seq == chosen.seq);
  assert(chosen.time >= now_);
  now_ = chosen.time;
  InlineCallback fn = std::move(slot.fn);
  release_slot(chosen.slot);
  --live_;
  ++executed_;
  fn();
  return true;
}

std::uint64_t Engine::pending_time_digest() const {
  // Sum of per-entry finalized hashes: independent of heap layout, seq
  // numbering, and tombstone positions — only live entry times count.
  std::uint64_t acc = 0;
  for (const Entry& e : heap_) {
    const Slot& s = slots_[e.slot];
    if (s.seq != e.seq || s.cancelled) continue;  // tombstone
    acc += splitmix64(static_cast<std::uint64_t>(e.time.ns()));
  }
  for (std::size_t i = lane_head_; i < lane_.size(); ++i) {
    const Entry& e = lane_[i];
    const Slot& s = slots_[e.slot];
    if (s.seq != e.seq || s.cancelled) continue;
    acc += splitmix64(static_cast<std::uint64_t>(e.time.ns()));
  }
  for (const Bucket& bk : buckets_) {
    for (std::size_t i = bk.head; i < bk.v.size(); ++i) {
      const Entry& e = bk.v[i];
      const Slot& s = slots_[e.slot];
      if (s.seq != e.seq || s.cancelled) continue;
      acc += splitmix64(static_cast<std::uint64_t>(e.time.ns()));
    }
  }
  return acc;
}

void Engine::run() {
  stopped_ = false;
  while (!stopped_ && pop_next()) {
  }
}

bool Engine::run_until(SimTime t) {
  stopped_ = false;
  while (!stopped_) {
    // Peek through tombstones without executing.
    if (tombstones_ != 0) {
      drop_root_tombstones();
      drop_lane_tombstones();
    }
    if (lane_head_ < lane_.size()) {
      // Lane entries fire at now_ <= t by the lane invariant.
      pop_next();
      continue;
    }
    const Entry* next = ladder_routing()
                            ? ladder_peek()
                            : (heap_.empty() ? nullptr : heap_.data());
    if (next == nullptr) break;
    if (next->time > t) {
      now_ = t;
      return true;
    }
    pop_next();
  }
  if (now_ < t) now_ = t;
  return live_ != 0;
}

}  // namespace smilab
