#include "smilab/sim/run_result.h"

#include <cstdio>

namespace smilab {

const char* to_string(RunStatus status) {
  switch (status) {
    case RunStatus::kOk: return "ok";
    case RunStatus::kDeadlock: return "deadlock";
    case RunStatus::kHang: return "hang";
    case RunStatus::kMaxSimTime: return "max_sim_time exceeded";
    case RunStatus::kConfigError: return "configuration error";
  }
  return "?";
}

const char* to_string(BlockedOp op) {
  switch (op) {
    case BlockedOp::kNone: return "running";
    case BlockedOp::kRecv: return "Recv";
    case BlockedOp::kAckWait: return "Send(rendezvous ack)";
    case BlockedOp::kWaitAll: return "WaitAll";
    case BlockedOp::kSleep: return "Sleep";
  }
  return "?";
}

std::string RunDiagnosis::to_string(RunStatus status) const {
  char buf[256];
  std::snprintf(buf, sizeof buf, "%s at t=%.6fs: %zu unfinished task(s)",
                smilab::to_string(status), sim_now.seconds(), ranks.size());
  std::string out = buf;
  if (failed_tasks > 0) {
    out += ", " + std::to_string(failed_tasks) + " task(s) killed by crashes";
  }
  if (in_flight_messages > 0) {
    out += ", " + std::to_string(in_flight_messages) + " message(s) in flight";
  }
  if (!cycle.empty()) {
    out += "\n  wait-for cycle:";
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      out += (i == 0 ? " task " : " -> task ") + std::to_string(cycle[i].value);
    }
  }
  for (const RankDiagnosis& r : ranks) {
    out += "\n  '" + r.name + "' (task " + std::to_string(r.task.value) +
           ", rank " + std::to_string(r.rank) + ", node " +
           std::to_string(r.node) + "): ";
    if (r.op == BlockedOp::kNone) {
      out += "running";
    } else {
      out += "blocked in " + std::string(smilab::to_string(r.op));
      if (r.op == BlockedOp::kRecv || r.op == BlockedOp::kAckWait) {
        out += "(peer=" +
               (r.any_source ? std::string("ANY_SOURCE")
                : r.peer_rank < 0 ? std::string("any")
                                  : std::to_string(r.peer_rank));
        if (r.tag >= 0) out += ", tag=" + std::to_string(r.tag);
        out += ")";
      }
      if (r.peer_failed) out += " [peer task failed]";
    }
    out += "; unexpected=" + std::to_string(r.unexpected_depth) +
           " posted=" + std::to_string(r.posted_recvs);
    if (r.incomplete_handles > 0) {
      out += " open_handles=" + std::to_string(r.incomplete_handles);
    }
    if (!r.unexpected_sample.empty()) {
      out += "\n    queued unmatched (arrival order):";
      for (const QueuedMessage& m : r.unexpected_sample) {
        out += " [src=" + std::to_string(m.src_rank) +
               " tag=" + std::to_string(m.tag) +
               " bytes=" + std::to_string(m.bytes) + "]";
      }
      if (r.unexpected_depth > r.unexpected_sample.size()) {
        out += " (+" +
               std::to_string(r.unexpected_depth - r.unexpected_sample.size()) +
               " more)";
      }
    }
    if (!r.pending_handles.empty()) {
      out += "\n    open handles:";
      for (const PendingHandle& h : r.pending_handles) {
        out += " [h" + std::to_string(h.id) +
               (h.is_send ? " send->" : " recv<-") +
               (h.any_source ? std::string("ANY_SOURCE")
                             : std::to_string(h.peer_rank)) +
               " tag=" + std::to_string(h.tag) + "]";
      }
      if (r.incomplete_handles > r.pending_handles.size()) {
        out += " (+" +
               std::to_string(r.incomplete_handles - r.pending_handles.size()) +
               " more)";
      }
    }
  }
  return out;
}

}  // namespace smilab
