// Discrete-event engine: a time-ordered queue of callbacks with stable
// (time, insertion-sequence) ordering so runs are deterministic, plus
// cancellation via generation-checked tombstones.
//
// Internals (see DESIGN.md §8, §16): callbacks live out of line in a slab
// of reusable slots (InlineCallback: no allocation for the captures the
// simulator uses); pending entries are POD {time, seq, slot} records.
// Cancellation marks the slot; the slot's seq acts as a generation counter,
// so cancelling an already-fired id compares against the slot's current
// tenant and is a guaranteed no-op rather than a leaked tombstone.
// Tombstoned entries are skipped on pop and compacted wholesale if they
// ever dominate the pending set.
//
// Two interchangeable schedulers order the entries (set_scheduler):
//  - kHeap: a 4-ary implicit min-heap — sift moves are 24-byte copies, and
//    four children per node share a cache line's worth of entries. O(log n)
//    per event with n = live entries, which grows with rank count.
//  - kLadder (default): a two-tier ladder/calendar queue — a near-future
//    window of fixed-count, adaptive-width time buckets drained in (time,
//    seq) order (each bucket sorted once when first touched), with the
//    4-ary heap demoted to a far-future overflow tier. Amortized O(1) per
//    event independent of n; bucket width re-derives from the previous
//    window's occupancy each time the window is re-anchored (DESIGN.md
//    §16). Pop order is bit-identical to kHeap by construction: (time,
//    seq) is a total order, so it never matters which tier an entry
//    waited in.
#pragma once

#include <cstdint>
#include <limits>
#include <type_traits>
#include <utility>
#include <vector>

#include "smilab/sim/inline_callback.h"
#include "smilab/time/sim_time.h"

namespace smilab {

class SchedulePolicy;  // sim/choice_hooks.h

/// Handle to a scheduled event; can be used to cancel it before it fires.
struct EventId {
  std::uint64_t seq = 0;
  std::uint32_t slot = 0;  ///< slab index; (seq, slot) is generation-checked
  [[nodiscard]] bool valid() const { return seq != 0; }
  bool operator==(const EventId&) const = default;
};

/// The simulation engine. Single-threaded by design: determinism beats
/// parallel event execution for a noise study, where runs must be exactly
/// reproducible from (config, seed). Grid-level parallelism lives in
/// core/sweep.h instead: one Engine per cell, no shared state.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must be >= now()). The callable is
  /// constructed directly inside its slab slot (no temporary, no move).
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback>>>
  EventId schedule_at(SimTime t, F&& fn) {
    const std::uint32_t slot = acquire_slot();
    slots_[slot].fn.emplace(std::forward<F>(fn));
    return finish_schedule(t, slot);
  }

  /// Overload for a pre-built InlineCallback (moved into the slot).
  EventId schedule_at(SimTime t, InlineCallback fn);

  /// Schedule `fn` after a non-negative delay.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback>>>
  EventId schedule_after(SimDuration d, F&& fn) {
    return schedule_at(now_ + d, std::forward<F>(fn));
  }

  EventId schedule_after(SimDuration d, InlineCallback fn);

  /// Cancel a pending event. Cancelling an already-fired or invalid id is a
  /// harmless no-op (common when a completion event races a preemption).
  void cancel(EventId id);

  /// Run until the queue is empty or `stop()` is called.
  void run();

  /// Run until simulated time reaches `t` (events at exactly `t` fire).
  /// Returns true if the queue still has pending events.
  bool run_until(SimTime t);

  /// Execute exactly one event (the earliest pending). Returns false if no
  /// events remain. Lets callers interleave termination checks with event
  /// processing (System::run stops when all tasks finish even though
  /// periodic sources like the SMI driver would keep the queue non-empty).
  bool step() { return pop_next(); }

  /// Request `run()` to return after the current event completes.
  void stop() { stopped_ = true; }

  [[nodiscard]] std::size_t pending_events() const {
    return static_cast<std::size_t>(live_);
  }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }
  [[nodiscard]] std::uint64_t cancelled_events() const { return cancelled_; }
  /// Cancelled entries still occupying heap space (bounded: compacted away
  /// once they would dominate the heap).
  [[nodiscard]] std::size_t tombstones() const {
    return static_cast<std::size_t>(tombstones_);
  }
  /// Slab high-water mark: peak concurrently scheduled events, not total
  /// events ever scheduled (slots are recycled through a free list).
  [[nodiscard]] std::size_t slot_capacity() const { return slots_.size(); }

  /// Install / clear a same-instant tie-break policy (sim/choice_hooks.h).
  /// When set, a pop whose minimal timestamp is shared by n >= 2 live
  /// entries asks `policy->choose(kEventTie, n)` which fires first;
  /// candidates are presented in (time, seq) order, so decision 0 is the
  /// default schedule bit-for-bit. Null (the default) keeps the plain
  /// lowest-(time, seq) pop: one pointer test, no collection pass. The
  /// policy must outlive its installation. Installing a policy flushes and
  /// disables the same-instant lane and the ladder window so pop_tied sees
  /// one candidate set — model-checking schedules are identical with or
  /// without either structure.
  void set_tie_break(SchedulePolicy* policy) {
    tie_break_ = policy;
    if (policy != nullptr) {
      flush_lane();
      flush_ladder();
    }
  }
  [[nodiscard]] SchedulePolicy* tie_break() const { return tie_break_; }

  /// Toggle the same-instant fast lane (default on): events scheduled at
  /// exactly now() append to a FIFO instead of sifting through the heap,
  /// and pop merges lane front vs heap root by (time, seq) — the executed
  /// order is bit-identical either way (the A/B equality test pins it).
  /// Same-instant wakeups dominate dispatch-heavy phases (ack maturation,
  /// run-queue handoffs), where O(1) append/pop beats two O(log n) sifts.
  void set_same_instant_lane(bool on) {
    lane_enabled_ = on;
    if (!on) flush_lane();
  }
  [[nodiscard]] bool same_instant_lane() const { return lane_enabled_; }

  /// Order-insensitive digest of the pending-event schedule: the multiset
  /// of live entry timestamps (seq and heap layout excluded — commuted
  /// same-instant firings must digest equal). Model-checker memo input;
  /// O(heap), never on the simulation hot path.
  [[nodiscard]] std::uint64_t pending_time_digest() const;

  /// Which structure orders pending entries (see file header). Executed
  /// event order is bit-identical under either; the scheduler-equality
  /// suite (tests/scheduler_equality_test.cpp) pins it. Switching to kHeap
  /// flushes the ladder window into the heap; switching to kLadder lets
  /// pending heap entries migrate naturally at the next window refill.
  enum class Scheduler : std::uint8_t { kHeap, kLadder };
  void set_scheduler(Scheduler s);
  [[nodiscard]] Scheduler scheduler() const { return scheduler_; }

 private:
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;

  /// One cache line per slot: schedule, cancel, and fire each touch a
  /// random slab position, so a slot never straddling two lines halves the
  /// miss cost of the slab working set.
  struct alignas(64) Slot {
    InlineCallback fn;      // 48 bytes (40 inline + ops pointer)
    std::uint64_t seq = 0;  ///< current tenant's seq; 0 = free
    std::uint32_t next_free = kNilSlot;
    bool cancelled = false;
  };
  static_assert(sizeof(Slot) == 64, "slab slots must be cache-line sized");

  /// Heap entry: plain data, cheap to shuffle during sifts. Ordering is
  /// (time, seq) — identical tie-breaking to the original binary heap.
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  static bool before(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  /// One near-future time bucket: entries appended unsorted, sorted by
  /// (time, seq) the first time the drain cursor touches the bucket, then
  /// consumed from `head`. Inserts into a sorted bucket binary-insert;
  /// `head` > 0 leaves a gap at the front that absorbs now()+epsilon
  /// inserts without a memmove.
  struct Bucket {
    std::vector<Entry> v;
    std::size_t head = 0;
    bool sorted = false;
  };

  bool pop_next();  // executes one event; false if queue exhausted
  bool pop_tied();  // pop_next with the tie-break policy consulted
  EventId finish_schedule(SimTime t, std::uint32_t slot);
  void heap_push(Entry e);
  void remove_root();
  void drop_root_tombstones();
  void drop_lane_tombstones();
  void flush_lane();
  void compact_tombstones();
  void release_slot(std::uint32_t slot);

  /// Ladder routing is live only when no tie-break policy is installed:
  /// pop_tied needs the whole candidate set in one structure, so policy
  /// installation flushes the ladder (decision 0 stays the canonical
  /// schedule either way).
  [[nodiscard]] bool ladder_routing() const {
    return scheduler_ == Scheduler::kLadder && tie_break_ == nullptr;
  }
  [[nodiscard]] std::size_t bucket_index(SimTime t) const;
  void ladder_insert(Entry e);
  const Entry* ladder_peek();  // min ladder entry; refills window from heap
  void ladder_pop_front();     // consume the entry ladder_peek returned
  bool refill_window();        // re-anchor window at heap root; false: empty
  void flush_ladder();         // move ladder entries to heap, drop window
  void sweep_ladder_tombstones();

  /// Pop a free slot or grow the slab. Inline: the free-list hit is three
  /// loads and sits on every schedule call.
  std::uint32_t acquire_slot() {
    if (free_head_ != kNilSlot) {
      const std::uint32_t slot = free_head_;
      free_head_ = slots_[slot].next_free;
      return slot;
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t live_ = 0;        // scheduled, not yet fired or cancelled
  std::uint64_t tombstones_ = 0;  // cancelled entries still in heap_
  bool stopped_ = false;
  std::vector<Entry> heap_;  // implicit 4-ary min-heap
  // Same-instant lane: FIFO of entries with time == now_. Seqs are
  // monotone, so the lane is (time, seq)-sorted by construction; time
  // cannot advance while it is non-empty because its front beats every
  // later-time heap root in the pop merge.
  std::vector<Entry> lane_;
  std::size_t lane_head_ = 0;
  bool lane_enabled_ = true;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNilSlot;
  SchedulePolicy* tie_break_ = nullptr;  // null: plain (time, seq) pops
  std::vector<Entry> tie_buf_;           // reused same-instant collection

  // Ladder state (scheduler_ == kLadder). The window covers
  // [win_lo_, win_hi_ns_) split into kBucketCount buckets of width_ ns;
  // entries at or past win_hi_ns_ overflow into heap_. win_hi_ns_ ==
  // INT64_MIN means "no window": everything routes to the heap until the
  // first pop re-anchors the window at the heap root (so enabling the
  // ladder mid-run needs no migration pass). Invariant while a window is
  // live: every heap entry's time >= win_hi_ns_, so the ladder minimum is
  // the global non-lane minimum.
  static constexpr std::size_t kBucketCount = 512;
  static constexpr std::int64_t kMinBucketWidthNs = 16;
  static constexpr std::int64_t kMaxBucketWidthNs =
      std::int64_t{1} << 32;  // ~4.3 s
  Scheduler scheduler_ = Scheduler::kLadder;
  std::vector<Bucket> buckets_;  // kBucketCount once first window forms
  SimTime win_lo_ = SimTime::zero();
  std::int64_t win_hi_ns_ = std::numeric_limits<std::int64_t>::min();
  std::int64_t width_ = 1024;     // current bucket width (ns)
  std::size_t scan_hint_ = 0;     // first possibly non-empty bucket
  std::size_t ladder_size_ = 0;   // entries in buckets (incl. tombstones)
  std::size_t win_inserted_ = 0;  // inserts this window: width feedback
};

}  // namespace smilab
