// Discrete-event engine: a time-ordered queue of callbacks with stable
// (time, insertion-sequence) ordering so runs are deterministic, plus
// cancellation via tombstones.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "smilab/time/sim_time.h"

namespace smilab {

/// Handle to a scheduled event; can be used to cancel it before it fires.
struct EventId {
  std::uint64_t seq = 0;
  [[nodiscard]] bool valid() const { return seq != 0; }
  bool operator==(const EventId&) const = default;
};

/// The simulation engine. Single-threaded by design: determinism beats
/// parallel event execution for a noise study, where runs must be exactly
/// reproducible from (config, seed).
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must be >= now()).
  EventId schedule_at(SimTime t, std::function<void()> fn);

  /// Schedule `fn` after a non-negative delay.
  EventId schedule_after(SimDuration d, std::function<void()> fn);

  /// Cancel a pending event. Cancelling an already-fired or invalid id is a
  /// harmless no-op (common when a completion event races a preemption).
  void cancel(EventId id);

  /// Run until the queue is empty or `stop()` is called.
  void run();

  /// Run until simulated time reaches `t` (events at exactly `t` fire).
  /// Returns true if the queue still has pending events.
  bool run_until(SimTime t);

  /// Execute exactly one event (the earliest pending). Returns false if no
  /// events remain. Lets callers interleave termination checks with event
  /// processing (System::run stops when all tasks finish even though
  /// periodic sources like the SMI driver would keep the queue non-empty).
  bool step() { return pop_next(); }

  /// Request `run()` to return after the current event completes.
  void stop() { stopped_ = true; }

  [[nodiscard]] std::size_t pending_events() const { return fns_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    // priority_queue is a max-heap; invert for earliest-first, breaking
    // ties by insertion order for determinism.
    bool operator<(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  bool pop_next();  // executes one event; false if queue exhausted

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  std::priority_queue<Entry> heap_;
  std::unordered_map<std::uint64_t, std::function<void()>> fns_;
};

}  // namespace smilab
