#include "smilab/sim/system.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "smilab/core/fnv.h"
#include "smilab/smm/smi_controller.h"

namespace smilab {

namespace {
constexpr std::int64_t kAckBytes = 64;
}  // namespace

// --- Internal structures -----------------------------------------------------

// MessageRec and the pooled transport structures live in sim/transport.h.

/// One direction of a node's NIC, as a pausable FIFO server. Pauses are
/// refcounted so overlapping causes (SMM freeze, fault freeze, link-down,
/// crash) compose; the server resumes when the last cause clears.
///
/// Two representations carry the same FIFO:
///  * Pipeline (fast path): while the server is unpaused and the classic
///    state is empty, each submit books its service interval immediately
///    ([start, end] with start = max(now, busy_until)) — a burst of N
///    submits is N deque pushes and one running `busy_until` cursor, with
///    no per-message done-event bookkeeping. Only the FRONT booking holds
///    an armed event — egress: the handoff at `end`; ingress: the merged
///    service-end + propagation arrival at `end + latency` — and arms its
///    successor when it fires, so a deep backlog keeps the engine heap at
///    one event per server direction instead of one per in-flight message
///    (booking every event up front measurably loses to the classic chain
///    once backlogs reach tens of thousands: every heap operation pays
///    log N on the ballooned heap). Per-message timestamps are identical
///    to serving the run one event at a time.
///  * Classic (active/remaining/queue): anything a pause can touch. On
///    pause, outstanding bookings convert back to classic form
///    (nic_pipe_to_classic) and the original pause/resume/recovery/crash
///    logic applies unchanged; the classic backlog then drains through
///    per-message done events, and the next submit that finds the server
///    idle re-enters the pipeline.
/// The two are mutually exclusive: bookings require the classic state
/// empty, and conversion empties the pipeline.
// Allocation-lazy FIFO for per-CPU and per-NIC queues. std::deque here
// cost ~600 bytes of chunk map per instance at construction — times 16
// runqueues and 4 NIC queues per node that dominated System construction
// at 8192 nodes (77 MB before a single task spawned). A vector with a
// consumed-prefix head index allocates nothing until first use, pops in
// amortized O(1), and iterates contiguously.
template <typename T>
class ShortFifo {
 public:
  [[nodiscard]] bool empty() const { return head_ == v_.size(); }
  [[nodiscard]] std::size_t size() const { return v_.size() - head_; }
  [[nodiscard]] T& front() { return v_[head_]; }
  [[nodiscard]] const T& front() const { return v_[head_]; }
  void push_back(T x) {
    if (head_ != 0 && head_ == v_.size()) {
      v_.clear();
      head_ = 0;
    }
    v_.push_back(std::move(x));
  }
  void pop_front() {
    ++head_;
    if (head_ == v_.size()) {
      v_.clear();
      head_ = 0;
    } else if (head_ > 64 && head_ * 2 > v_.size()) {
      v_.erase(v_.begin(), v_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }
  void clear() {
    v_.clear();
    head_ = 0;
  }
  [[nodiscard]] auto begin() { return v_.begin() + static_cast<std::ptrdiff_t>(head_); }
  [[nodiscard]] auto end() { return v_.end(); }
  [[nodiscard]] auto begin() const { return v_.begin() + static_cast<std::ptrdiff_t>(head_); }
  [[nodiscard]] auto end() const { return v_.end(); }

 private:
  std::vector<T> v_;
  std::size_t head_ = 0;
};

struct System::NicServer {
  struct PipeEntry {
    MsgHandle h;
    SimTime start;  // service begins (for the contiguity invariant)
    SimTime end;    // service ends: egress handoff / ingress + latency
    EventId ev{};   // armed only while this entry is the front
  };

  ShortFifo<PipeEntry> pipe;         // booked services (fast path), FIFO
  SimTime busy_until;                // end of the last booked service
  ShortFifo<MsgHandle> queue;        // messages awaiting service (classic)
  MsgHandle active;                  // null = idle
  SimDuration remaining{};
  SimTime since;
  SimTime paused_at;                 // start of the outermost pause
  int pause_depth = 0;
  std::uint64_t epoch = 0;
  EventId done_ev{};

  [[nodiscard]] bool paused() const { return pause_depth > 0; }
  [[nodiscard]] bool classic_busy() const {
    return active.valid() || !queue.empty();
  }
};

// Field order is deliberate (64k-rank residency: every byte here is
// paid per rank): the interpreter/scheduler state the per-action hot
// path touches sits in the first cache lines, flags and small ints are
// clustered so padding does not reappear between 8-byte members, and
// cold identity/config/stats fields trail.
struct System::TaskImpl {
  enum class State : std::uint8_t {
    kReady,       ///< runnable, waiting for its CPU
    kRunning,     ///< current on its CPU (executing or spin-waiting)
    kBlocked,     ///< off-CPU, waiting for a message/ack (kBlock policy)
    kSleeping,    ///< off-CPU, waiting for a timer
    kDone,
  };

  // --- Flag/small-int cluster (one packed block, hot path first) ---
  State state = State::kReady;
  bool on_cpu = false;
  bool queued = false;
  bool pinned = false;  ///< hard affinity: never migrated by idle stealing
  bool sr_send_injected = false;  // SendRecv: send half injected
  bool waiting_msg = false;
  bool waiting_ack = false;
  bool ack_arrived = false;
  bool waiting_all = false;  // parked in WaitAll
  /// Spawn-time rank-indexing decision, applied when nbs_ materializes.
  bool nb_rank_indexed = false;
  bool maturing_acks = false;  ///< re-entrancy guard: a wake may step us
  WaitPolicy wait_policy = WaitPolicy::kSpin;
  int phase = 0;
  int wait_src = kAnySource;
  int wait_tag = 0;
  int rank = 0;
  int node = 0;
  int cpu = -1;  ///< node-local CPU this task is sticky-placed on
  TaskId id;
  GroupId group;

  // Current action interpreter state.
  std::uint64_t pending_ack_key = 0;  // ack we are (or will be) waiting for
  MsgHandle active_msg;               // matched message being copied
  std::optional<Action> action;

  // Nonblocking communication state (Isend/Irecv/WaitAll), boxed: a task
  // that never issues a nonblocking op never allocates it, and at 64k
  // ranks a blocking-only workload (e.g. the sendrecv ring cell) saves
  // ~190 inline bytes per rank — about 12 MB of dead residency. Only
  // `waiting_all` stays inline; hot wake paths test it for every task.
  // Rendezvous isend acks route through the System-wide AckRouter, not a
  // per-task map.
  struct NbState {
    NbHandleTable table;
    int active_nb_handle = -1;  ///< recv copy in progress

    // Active-WaitAll progress counters: armed once on entry, maintained
    // by completion events, so each re-poll is O(1) instead of a scan
    // over the handle list (the scan made dense waitall windows
    // quadratic). The ready bitmap is indexed by handle-list position;
    // find-first-set picks the same list-order-first receive the scan
    // picked.
    bool wa_armed = false;
    int wa_incomplete = 0;
    std::vector<std::uint64_t> wa_ready_bits;
  };
  std::unique_ptr<NbState> nbs_;

  NbState& nbs() {
    if (!nbs_) {
      nbs_ = std::make_unique<NbState>();
      if (nb_rank_indexed) nbs_->table.set_rank_indexed(true);
    }
    return *nbs_;
  }

  // Lazily matured rendezvous acks (transport fast path): acks owed to
  // this sender whose delivery instant is already fixed but whose effects
  // are applied at the task's next poll — or by a wake event at exactly
  // the delivery instant whenever the task parks first, so wake timing is
  // identical to a dedicated per-ack event.
  struct PendingAck {
    SimTime due;
    std::uint64_t seq = 0;  ///< delivery order among same-instant acks
    std::uint64_t key = 0;
  };
  std::vector<PendingAck> pending_acks;
  std::uint64_t pending_ack_seq = 0;
  EventId ack_wake_ev{};
  SimTime ack_wake_due;

  // Work execution state.
  SimDuration work_left{};
  SimDuration pending_overhead{};  // refill / context-switch charged at next work
  SimTime run_since;
  double rate = 0.0;
  std::uint64_t epoch = 0;
  EventId completion_ev{};

  // Arrived-but-unmatched messages, bucketed by (src, tag) with a per-tag
  // arrival-order index for kAnySource (sim/transport.h).
  UnexpectedQueue unexpected;

  // --- Cold tail: identity, configuration, accounting ---
  std::string name;
  WorkloadProfile profile;
  std::unique_ptr<ActionSource> source;
  TaskStats stats;
  /// Last-sampled source->materialized_actions(), mirrored into the
  /// System-wide program_actions_ sum by delta updates.
  std::int64_t materialized = 0;
  // Current action's provenance for the completed-action ring (only
  // maintained when the ring is enabled).
  int action_kind = -1;
  SimTime action_start;
};

struct System::CpuState {
  // A vector, not a deque: runqueues are short (a few sticky tasks), and
  // an untouched vector holds no heap block — see ShortFifo above for why
  // that matters at 8192 nodes x 16 CPUs.
  std::vector<std::int32_t> runqueue;  // task indices
  std::int32_t current = -1;
  bool frozen = false;
  EventId quantum_ev{};
  std::int32_t last_task = -1;
  int assigned = 0;  ///< sticky placements on this CPU (for balancing)
};

struct System::NodeState {
  std::vector<CpuState> cpus;
  NicServer egress;
  NicServer ingress;
  bool in_smm = false;
  bool fault_frozen = false;  ///< transient whole-node fault stall active
  bool crashed = false;       ///< fail-stop: permanently dead
  SimTime freeze_start;
  SimTime last_smm_exit{-1};  ///< negative: never been in SMM
  std::vector<std::int32_t> deferred_wakes;  // timer wakes that fired frozen
};

// --- Construction -----------------------------------------------------------

System::System(SystemConfig cfg)
    : cfg_(cfg),
      cluster_(cfg.node_count, cfg.machine),
      net_(cfg.net),
      smm_acct_(cfg.node_count),
      master_rng_(cfg.seed),
      refill_rng_(master_rng_.fork(stream_label("refill"))),
      nic_rng_(master_rng_.fork(stream_label("nic"))) {
  // Collectives over p ranks touch O(log p) distinct segment sizes per
  // phase and different phases use different bases, so scale the cost memo
  // with the node count (4 lines/node keeps 64k ranks comfortably under a
  // few MB while a 1-node run stays at the 64-line floor).
  net_.resize_cache(std::max<std::size_t>(
      NetworkModel::kDefaultLines, static_cast<std::size_t>(cfg.node_count) * 4));
  htt_refill_run_factor_ =
      master_rng_.fork(stream_label("htt_luck")).uniform(0.5, 1.8);
  node_speed_.resize(static_cast<std::size_t>(cfg.node_count), 1.0);
  if (cfg_.node_speed_sigma > 0) {
    Rng speed_rng = master_rng_.fork(stream_label("node_speed"));
    for (auto& s : node_speed_) {
      s = std::clamp(speed_rng.normal(1.0, cfg_.node_speed_sigma), 0.5, 1.5);
    }
  }
  fault_rate_.resize(static_cast<std::size_t>(cfg.node_count), 1.0);
  node_state_.reserve(static_cast<std::size_t>(cfg.node_count));
  for (int n = 0; n < cfg.node_count; ++n) {
    auto ns = std::make_unique<NodeState>();
    ns->cpus.resize(static_cast<std::size_t>(cfg.machine.logical_cpus()));
    node_state_.push_back(std::move(ns));
  }
  if (cfg_.smi.enabled()) {
    smi_ = std::make_unique<SmiController>(*this, cfg_.smi);
  }
  // The ack router is system-wide (keys are monotonic, access is probe-
  // only), so unlike the per-task stores it follows the rank-indexing
  // toggle directly rather than the group-size threshold.
  set_transport_rank_indexing(rank_indexing_);
}

void System::set_transport_rank_indexing(bool on) {
  rank_indexing_ = on;
  ack_router_.set_rank_indexed(
      on, on ? static_cast<std::size_t>(cfg_.node_count) * 4 : 0);
}

System::~System() = default;

void System::set_online_cpus(int n) {
  assert(tasks_.empty() && "change CPU topology before spawning tasks");
  for (int i = 0; i < cluster_.node_count(); ++i) {
    cluster_.node(i).set_online_cpus(n);
  }
}

System::TaskImpl& System::task(TaskId id) {
  return *tasks_.at(static_cast<std::size_t>(id.value));
}
const System::TaskImpl& System::task(TaskId id) const {
  return *tasks_.at(static_cast<std::size_t>(id.value));
}
System::CpuState& System::cpu_state(int node, int cpu) {
  return node_state_.at(static_cast<std::size_t>(node))
      ->cpus.at(static_cast<std::size_t>(cpu));
}

// --- Groups and spawning -------------------------------------------------------

GroupId System::create_group(int size) {
  assert(size >= 1);
  groups_.emplace_back(static_cast<std::size_t>(size), TaskId{});
  return GroupId{static_cast<std::int32_t>(groups_.size() - 1)};
}

TaskId System::spawn(TaskSpec spec) {
  const GroupId g = create_group(1);
  return spawn_member(g, 0, std::move(spec));
}

TaskId System::spawn_member(GroupId g, int rank, TaskSpec spec) {
  assert(g.valid());
  assert(spec.actions && "task needs an action source");
  auto& members = groups_.at(static_cast<std::size_t>(g.value));
  assert(rank >= 0 && rank < static_cast<int>(members.size()));
  assert(!members[static_cast<std::size_t>(rank)].valid() && "rank already spawned");

  auto t = std::make_unique<TaskImpl>();
  t->id = TaskId{static_cast<std::int32_t>(tasks_.size())};
  t->group = g;
  t->rank = rank;
  t->name = std::move(spec.name);
  t->node = spec.node;
  t->profile = spec.profile;
  t->wait_policy = spec.wait_policy;
  t->source = std::move(spec.actions);
  t->stats.start_time = now();
  t->pinned = spec.pinned_cpu >= 0;
  t->cpu = spec.pinned_cpu >= 0 ? spec.pinned_cpu : place(spec);
  assert(cluster_.node(t->node).is_online(t->cpu) && "placed on offline CPU");

  members[static_cast<std::size_t>(rank)] = t->id;
  cpu_state(t->node, t->cpu).assigned += 1;
  ++unfinished_tasks_;

  t->materialized = t->source->materialized_actions();
  program_actions_ += t->materialized;
  if (program_actions_ > peak_program_actions_) {
    peak_program_actions_ = program_actions_;
  }

  // Large groups get the rank-indexed stores before any traffic exists;
  // small groups keep the classic maps (bit-exact either way — the
  // scheduler-equality suite pins both layouts to the same hashes).
  if (rank_indexing_ &&
      static_cast<int>(members.size()) >= rank_index_threshold_) {
    t->unexpected.set_rank_indexed(true);
    t->nb_rank_indexed = true;
  }

  TaskImpl& ref = *t;
  tasks_.push_back(std::move(t));
  make_ready(ref);
  return ref.id;
}

int System::place(const TaskSpec& spec) {
  const Node& node = cluster_.node(spec.node);
  auto& cpus = node_state_.at(static_cast<std::size_t>(spec.node))->cpus;
  int best = -1;
  // Linux-style preference: least-loaded CPU, idle physical cores before
  // HTT siblings of busy cores, lowest index as the deterministic tie-break.
  long best_key0 = 0, best_key1 = 0;
  for (int i = 0; i < node.cpu_count(); ++i) {
    if (!node.is_online(i)) continue;
    const int sib = node.cpu(i).sibling;
    const int sib_assigned =
        (sib >= 0 && node.is_online(sib)) ? cpus[static_cast<std::size_t>(sib)].assigned : 0;
    const long key0 = cpus[static_cast<std::size_t>(i)].assigned;
    const long key1 = sib_assigned;
    if (best < 0 || key0 < best_key0 || (key0 == best_key0 && key1 < best_key1)) {
      best = i;
      best_key0 = key0;
      best_key1 = key1;
    }
  }
  if (best < 0) {
    // Structured config error: name the node and its online-CPU mask so a
    // bad hotplug sweep is diagnosable from the message alone.
    std::uint64_t mask = 0;
    for (int i = 0; i < node.cpu_count() && i < 64; ++i) {
      if (node.is_online(i)) mask |= 1ull << i;
    }
    char hex[32];
    std::snprintf(hex, sizeof hex, "0x%llx",
                  static_cast<unsigned long long>(mask));
    throw SimulationError(
        RunStatus::kConfigError,
        "no online CPU available on node " + std::to_string(node.id()) +
            " (" + std::to_string(node.online_cpu_count()) + " of " +
            std::to_string(node.cpu_count()) + " CPUs online, mask " + hex +
            ")");
  }
  return best;
}

// --- Scheduling ------------------------------------------------------------------

void System::make_ready(TaskImpl& t) {
  assert(!t.on_cpu);
  if (t.queued) return;
  t.state = TaskImpl::State::kReady;
  t.queued = true;
  auto& cs = cpu_state(t.node, t.cpu);
  cs.runqueue.push_back(t.id.value);
  if (cs.current < 0) {
    dispatch(t.node, t.cpu);
  } else {
    arm_quantum(t.node, t.cpu);
  }
}

void System::dispatch(int node, int cpu) {
  auto& cs = cpu_state(node, cpu);
  if (cs.frozen || cs.current >= 0) return;
  if (cs.runqueue.empty()) steal_into(node, cpu);
  if (cs.runqueue.empty()) return;
  const std::int32_t idx = cs.runqueue.front();
  cs.runqueue.erase(cs.runqueue.begin());
  TaskImpl& t = *tasks_[static_cast<std::size_t>(idx)];
  assert(t.queued);
  t.queued = false;
  t.state = TaskImpl::State::kRunning;
  t.on_cpu = true;
  cs.current = idx;
  if (cs.last_task >= 0 && cs.last_task != idx) {
    t.pending_overhead += cfg_.os.context_switch;
  }
  cs.last_task = idx;
  arm_quantum(node, cpu);
  sibling_rate_changed(node, cpu);
  begin_running(t);
}

void System::arm_quantum(int node, int cpu) {
  auto& cs = cpu_state(node, cpu);
  if (cs.quantum_ev.valid() || cs.frozen || cs.current < 0 || cs.runqueue.empty())
    return;
  cs.quantum_ev = engine_.schedule_after(
      cfg_.os.quantum, [this, node, cpu] {
        auto& s = cpu_state(node, cpu);
        s.quantum_ev = EventId{};
        if (s.frozen || s.current < 0 || s.runqueue.empty()) return;
        preempt_current(node, cpu);
      });
}

// CFS-style idle balancing: an idle CPU pulls a waiting task from the most
// loaded runqueue of its node. Without this, uneven thread counts on HTT
// configurations leave whole cores idle while a shared core grinds — real
// kernels rebalance, and the paper's Convolve (a block work queue) depends
// on it. Tasks with hard affinity (TaskSpec::pinned_cpu) are never moved.
void System::steal_into(int node, int cpu) {
  const Node& topo = cluster_.node(node);
  auto& ns = *node_state_[static_cast<std::size_t>(node)];
  int donor = -1;
  std::size_t donor_depth = 0;
  for (int i = 0; i < topo.cpu_count(); ++i) {
    if (i == cpu || !topo.is_online(i)) continue;
    std::size_t stealable = 0;
    for (const std::int32_t idx :
         ns.cpus[static_cast<std::size_t>(i)].runqueue) {
      if (!tasks_[static_cast<std::size_t>(idx)]->pinned) ++stealable;
    }
    if (stealable > donor_depth) {
      donor = i;
      donor_depth = stealable;
    }
  }
  if (donor < 0 || donor_depth == 0) return;
  auto& donor_queue = ns.cpus[static_cast<std::size_t>(donor)].runqueue;
  // Take the most recently queued unpinned task (coldest cache footprint).
  for (auto it = donor_queue.rbegin(); it != donor_queue.rend(); ++it) {
    TaskImpl& t = *tasks_[static_cast<std::size_t>(*it)];
    if (t.pinned) continue;
    assert(t.queued && t.cpu == donor);
    const std::int32_t idx = *it;
    donor_queue.erase(std::next(it).base());
    t.cpu = cpu;
    cpu_state(node, cpu).runqueue.push_back(idx);
    return;
  }
}

void System::preempt_current(int node, int cpu) {
  auto& cs = cpu_state(node, cpu);
  assert(cs.current >= 0);
  TaskImpl& t = *tasks_[static_cast<std::size_t>(cs.current)];
  stop_running(t, /*keep_on_cpu=*/false);
  make_ready(t);
  dispatch(node, cpu);
}

// --- Execution progress ----------------------------------------------------------

bool System::sibling_busy(const TaskImpl& t) const {
  const Node& node = cluster_.node(t.node);
  const int sib = node.cpu(t.cpu).sibling;
  if (sib < 0 || !node.is_online(sib)) return false;
  const auto& scs = node_state_[static_cast<std::size_t>(t.node)]
                        ->cpus[static_cast<std::size_t>(sib)];
  if (scs.current < 0) return false;
  const TaskImpl& other = *tasks_[static_cast<std::size_t>(scs.current)];
  // A spin-waiting sibling (no work) uses PAUSE loops that release the
  // shared execution ports; only real work contends.
  return other.work_left > SimDuration::zero();
}

double System::current_rate(const TaskImpl& t) const {
  double rate = node_speed_[static_cast<std::size_t>(t.node)] *
                fault_rate_[static_cast<std::size_t>(t.node)] *
                execution_rate(t.profile, sibling_busy(t));
  if (!cfg_.os.tickless) {
    rate *= 1.0 - cfg_.os.tick_cost / cfg_.os.tick_period;
  }
  return rate;
}

void System::settle(TaskImpl& t) {
  if (!t.on_cpu) return;
  const SimDuration elapsed = now() - t.run_since;
  if (elapsed <= SimDuration::zero()) return;
  t.stats.os_view_cpu_time += elapsed;
  t.stats.true_cpu_time += elapsed;
  if (t.work_left > SimDuration::zero() && t.rate > 0) {
    const auto progress = static_cast<std::int64_t>(
        std::llround(static_cast<double>(elapsed.ns()) * t.rate));
    t.work_left = SimDuration{std::max<std::int64_t>(0, t.work_left.ns() - progress)};
  }
  t.run_since = now();
}

void System::begin_running(TaskImpl& t) {
  assert(t.on_cpu);
  assert(!cpu_state(t.node, t.cpu).frozen);
  t.run_since = now();
  t.rate = current_rate(t);
  if (t.work_left > SimDuration::zero()) {
    reschedule_completion(t);
  } else {
    step_action(t);
  }
}

void System::stop_running(TaskImpl& t, bool keep_on_cpu) {
  settle(t);
  ++t.epoch;
  engine_.cancel(t.completion_ev);
  t.completion_ev = EventId{};
  if (!keep_on_cpu && t.on_cpu) {
    auto& cs = cpu_state(t.node, t.cpu);
    assert(cs.current == t.id.value);
    cs.current = -1;
    t.on_cpu = false;
    if (cs.quantum_ev.valid()) {
      engine_.cancel(cs.quantum_ev);
      cs.quantum_ev = EventId{};
    }
    sibling_rate_changed(t.node, t.cpu);
  }
}

void System::reschedule_completion(TaskImpl& t) {
  assert(t.on_cpu && t.work_left > SimDuration::zero());
  ++t.epoch;
  engine_.cancel(t.completion_ev);
  assert(t.rate > 0);
  SimDuration d = scale(t.work_left, 1.0 / t.rate);
  if (d <= SimDuration::zero()) d = SimDuration{1};
  t.completion_ev = engine_.schedule_after(d, [this, id = t.id, ep = t.epoch] {
    TaskImpl& task_ref = task(id);
    if (task_ref.epoch != ep) return;
    on_work_complete(task_ref);
  });
}

void System::on_work_complete(TaskImpl& t) {
  settle(t);
  if (t.work_left > SimDuration{1}) {
    // Integer rounding left a sliver; finish it.
    reschedule_completion(t);
    return;
  }
  t.work_left = SimDuration::zero();
  ++t.epoch;
  t.completion_ev = EventId{};
  step_action(t);
}

void System::sibling_rate_changed(int node, int cpu) {
  const int sib = cluster_.node(node).cpu(cpu).sibling;
  if (sib < 0) return;
  auto& scs = cpu_state(node, sib);
  if (scs.current < 0 || scs.frozen) return;
  TaskImpl& other = *tasks_[static_cast<std::size_t>(scs.current)];
  if (!other.on_cpu) return;
  settle(other);
  const double new_rate = current_rate(other);
  if (new_rate == other.rate) return;
  other.rate = new_rate;
  if (other.work_left > SimDuration::zero()) reschedule_completion(other);
}

// --- Action interpretation ---------------------------------------------------------

void System::start_work(TaskImpl& t, SimDuration amount) {
  assert(t.on_cpu);
  amount += t.pending_overhead;
  t.pending_overhead = SimDuration::zero();
  if (amount <= SimDuration::zero()) amount = SimDuration{1};
  t.work_left = amount;
  t.run_since = now();
  t.rate = current_rate(t);
  sibling_rate_changed(t.node, t.cpu);  // we went from idle/spin to busy
  reschedule_completion(t);
}

void System::start_next_action(TaskImpl& t) {
  note_progress();  // an action retired: the hang watchdog re-arms
  if (action_ring_.enabled() && t.action_kind >= 0) {
    action_ring_.record({t.id.value, t.action_kind, t.action_start, now()});
    t.action_kind = -1;
  }
  while (true) {
    std::optional<Action> a = t.source->next();
    // Streaming sources change their materialized footprint on refill;
    // retained ones report a constant, so the delta is usually zero.
    const std::int64_t m = t.source->materialized_actions();
    if (m != t.materialized) {
      program_actions_ += m - t.materialized;
      t.materialized = m;
      if (program_actions_ > peak_program_actions_) {
        peak_program_actions_ = program_actions_;
      }
    }
    if (!a) {
      finish_task(t);
      return;
    }
    if (auto* call = std::get_if<Call>(&*a)) {
      call->fn();
      continue;  // zero-time action; keep pulling
    }
    if (action_ring_.enabled()) {
      t.action_kind = static_cast<int>(a->index());
      t.action_start = now();
    }
    t.action = std::move(a);
    t.phase = 0;
    t.sr_send_injected = false;
    t.waiting_msg = false;
    t.waiting_ack = false;
    t.ack_arrived = false;
    t.pending_ack_key = 0;
    t.active_msg = MsgHandle{};
    step_action(t);
    return;
  }
}

// --- WaitAll progress counters (see TaskImpl::wa_*) ------------------------

void System::wa_mark_ready(TaskImpl& t, int pos) {
  assert(t.nbs_ && t.nbs_->wa_armed && pos >= 0);
  TaskImpl::NbState& nb = *t.nbs_;
  const auto word = static_cast<std::size_t>(pos) / 64;
  assert(word < nb.wa_ready_bits.size());
  nb.wa_ready_bits[word] |= std::uint64_t{1}
                            << (static_cast<unsigned>(pos) % 64);
}

void System::wa_clear_ready(TaskImpl& t, int pos) {
  assert(t.nbs_ && t.nbs_->wa_armed && pos >= 0);
  TaskImpl::NbState& nb = *t.nbs_;
  const auto word = static_cast<std::size_t>(pos) / 64;
  assert(word < nb.wa_ready_bits.size());
  nb.wa_ready_bits[word] &=
      ~(std::uint64_t{1} << (static_cast<unsigned>(pos) % 64));
}

int System::wa_first_ready(const TaskImpl& t) {
  assert(t.nbs_);
  const TaskImpl::NbState& nb = *t.nbs_;
  for (std::size_t w = 0; w < nb.wa_ready_bits.size(); ++w) {
    if (nb.wa_ready_bits[w] != 0) {
      return static_cast<int>(w * 64) + std::countr_zero(nb.wa_ready_bits[w]);
    }
  }
  return -1;
}

// The per-action state machine. Invoked whenever the task is on its CPU,
// unfrozen, and needs driving: action entry, work completion, wait
// satisfaction, post-SMM resume.
void System::step_action(TaskImpl& t) {
  assert(t.on_cpu);
  // Apply any rendezvous acks whose delivery instant has passed before the
  // poll reads the completion flags (unless this step IS such a delivery:
  // the maturation loop below already interleaves them in event order).
  if (!t.pending_acks.empty() && !t.maturing_acks) {
    mature_acks(t);
  }
  if (!t.action) {
    start_next_action(t);
    return;
  }
  t.state = TaskImpl::State::kRunning;

  if (auto* comp = std::get_if<Compute>(&*t.action)) {
    if (t.phase == 0) {
      t.phase = 1;
      start_work(t, comp->work);
      return;
    }
    t.action.reset();
    start_next_action(t);
    return;
  }

  if (auto* send = std::get_if<Send>(&*t.action)) {
    switch (t.phase) {
      case 0:  // pay the CPU-side injection cost
        t.phase = 1;
        start_work(t, net_.send_cpu_cost(send->bytes));
        return;
      case 1: {  // hand to the wire
        const bool needs_ack = net_.is_rendezvous(send->bytes);
        const std::uint64_t key = needs_ack ? next_ack_key_++ : 0;
        const MsgHandle h = inject_message(t, send->dst_rank, send->bytes,
                                           send->tag, needs_ack, key);
        if (!needs_ack) {
          t.action.reset();
          start_next_action(t);
          return;
        }
        ack_router_.add(key, AckTarget{t.id, /*nb_handle=*/-1, h,
                                       send->dst_rank, send->tag});
        t.pending_ack_key = key;
        t.phase = 2;
        [[fallthrough]];
      }
      case 2:  // rendezvous: wait for the receiver's completion ack
        if (t.ack_arrived) {
          t.action.reset();
          start_next_action(t);
          return;
        }
        t.waiting_ack = true;
        ensure_ack_wake(t);
        if (t.wait_policy == WaitPolicy::kBlock) {
          t.state = TaskImpl::State::kBlocked;
          stop_running(t, /*keep_on_cpu=*/false);
          dispatch(t.node, t.cpu);
        }
        return;
      default:
        assert(false);
    }
  }

  if (auto* recv = std::get_if<Recv>(&*t.action)) {
    switch (t.phase) {
      case 0: {  // wait for / match the message
        MessageRec* msg = nullptr;
        if (try_match_recv(t, recv->src_rank, recv->tag, &msg)) {
          t.phase = 1;
          SimDuration cost = net_.recv_cpu_cost(msg->bytes);
          if (msg->arrived_during_smm && node_htt_active(t.node)) {
            cost = scale(cost, cfg_.post_smi_drain_factor);
          }
          start_work(t, cost);
          return;
        }
        t.waiting_msg = true;
        t.wait_src = recv->src_rank;
        t.wait_tag = recv->tag;
        ensure_ack_wake(t);
        if (t.wait_policy == WaitPolicy::kBlock) {
          t.state = TaskImpl::State::kBlocked;
          stop_running(t, /*keep_on_cpu=*/false);
          dispatch(t.node, t.cpu);
        }
        return;
      }
      case 1: {  // copy complete
        assert(t.active_msg.valid());
        const MsgHandle h = t.active_msg;
        t.active_msg = MsgHandle{};
        t.stats.messages_received += 1;
        retire_copied(t, h);
        t.action.reset();
        start_next_action(t);
        return;
      }
      default:
        assert(false);
    }
  }

  if (auto* sr = std::get_if<SendRecv>(&*t.action)) {
    switch (t.phase) {
      case 0:  // send half: CPU injection cost
        t.phase = 1;
        start_work(t, net_.send_cpu_cost(sr->send_bytes));
        return;
      case 1: {  // inject send, then progress the receive half
        if (!t.sr_send_injected) {
          t.sr_send_injected = true;
          const bool needs_ack = net_.is_rendezvous(sr->send_bytes);
          const std::uint64_t key = needs_ack ? next_ack_key_++ : 0;
          const MsgHandle h = inject_message(t, sr->dst_rank, sr->send_bytes,
                                             sr->send_tag, needs_ack, key);
          if (needs_ack) {
            ack_router_.add(key, AckTarget{t.id, /*nb_handle=*/-1, h,
                                           sr->dst_rank, sr->send_tag});
          }
          t.pending_ack_key = needs_ack ? key : 0;
        }
        MessageRec* msg = nullptr;
        if (try_match_recv(t, sr->src_rank, sr->recv_tag, &msg)) {
          t.phase = 2;
          SimDuration cost = net_.recv_cpu_cost(msg->bytes);
          if (msg->arrived_during_smm && node_htt_active(t.node)) {
            cost = scale(cost, cfg_.post_smi_drain_factor);
          }
          start_work(t, cost);
          return;
        }
        t.waiting_msg = true;
        t.wait_src = sr->src_rank;
        t.wait_tag = sr->recv_tag;
        ensure_ack_wake(t);
        if (t.wait_policy == WaitPolicy::kBlock) {
          t.state = TaskImpl::State::kBlocked;
          stop_running(t, /*keep_on_cpu=*/false);
          dispatch(t.node, t.cpu);
        }
        return;
      }
      case 2: {  // recv copy complete
        assert(t.active_msg.valid());
        const MsgHandle h = t.active_msg;
        t.active_msg = MsgHandle{};
        t.stats.messages_received += 1;
        retire_copied(t, h);
        t.phase = 3;
        [[fallthrough]];
      }
      case 3:  // wait for our own send's ack, if rendezvous
        if (t.pending_ack_key == 0 || t.ack_arrived) {
          t.action.reset();
          start_next_action(t);
          return;
        }
        t.waiting_ack = true;
        ensure_ack_wake(t);
        if (t.wait_policy == WaitPolicy::kBlock) {
          t.state = TaskImpl::State::kBlocked;
          stop_running(t, /*keep_on_cpu=*/false);
          dispatch(t.node, t.cpu);
        }
        return;
      default:
        assert(false);
    }
  }

  if (auto* isend = std::get_if<Isend>(&*t.action)) {
    switch (t.phase) {
      case 0:  // CPU-side injection cost, as for blocking Send
        t.phase = 1;
        start_work(t, net_.send_cpu_cost(isend->bytes));
        return;
      case 1: {
        NbHandleTable::Entry& entry = t.nbs().table.open_slot(isend->handle,
                                                              /*is_send=*/true);
        entry.peer = isend->dst_rank;
        const bool needs_ack = net_.is_rendezvous(isend->bytes);
        const std::uint64_t key = needs_ack ? next_ack_key_++ : 0;
        const MsgHandle h = inject_message(t, isend->dst_rank, isend->bytes,
                                           isend->tag, needs_ack, key);
        if (needs_ack) {
          entry.ack_key = key;
          ack_router_.add(key, AckTarget{t.id, isend->handle, h,
                                         isend->dst_rank, isend->tag});
        } else {
          entry.complete = true;  // eager: locally complete at injection
        }
        t.action.reset();
        start_next_action(t);
        return;
      }
      default:
        assert(false);
    }
  }

  if (auto* irecv = std::get_if<Irecv>(&*t.action)) {
    NbHandleTable& nb_table = t.nbs().table;
    NbHandleTable::Entry& entry = nb_table.open_slot(irecv->handle,
                                                     /*is_send=*/false);
    entry.src = irecv->src_rank;
    entry.peer = irecv->src_rank;
    entry.tag = irecv->tag;
    // Match an already-arrived message immediately (late post); only
    // still-waiting receives enter the posted-by-tag index.
    MessageRec* msg = nullptr;
    if (try_match_recv(t, irecv->src_rank, irecv->tag, &msg)) {
      entry.data_arrived = true;
      entry.msg = t.active_msg;
      t.active_msg = MsgHandle{};
    } else {
      nb_table.post_recv(irecv->handle);
    }
    t.action.reset();
    start_next_action(t);
    return;
  }

  if (auto* wait = std::get_if<WaitAll>(&*t.action)) {
    // Not parked while actively progressing: a wake that lands during a
    // receive copy must not re-enter this state machine (see wake_waitall).
    t.waiting_all = false;
    TaskImpl::NbState& nb = t.nbs();
    if (!nb.wa_armed) {
      // Arm the progress counters: one walk over the handle list on entry,
      // after which completion events (acks, arrivals, copy retirements)
      // maintain them and every re-poll is O(1). The old re-poll scanned
      // the whole list each time, which made dense waitall windows (the
      // rendezvous ack storm) quadratic.
      nb.wa_armed = true;
      nb.wa_incomplete = 0;
      nb.wa_ready_bits.assign((wait->handles.size() + 63) / 64, 0);
      for (std::size_t i = 0; i < wait->handles.size(); ++i) {
        NbHandleTable::Entry* entry = nb.table.find(wait->handles[i]);
        assert(entry != nullptr && "WaitAll on unknown handle");
        entry->in_waitall = true;
        entry->wa_pos = static_cast<int>(i);
        if (entry->complete) continue;
        ++nb.wa_incomplete;
        if (!entry->is_send && entry->data_arrived) {
          wa_mark_ready(t, static_cast<int>(i));
        }
      }
    }
    if (t.phase == 1) {
      // A receive's copy just finished: complete that handle.
      NbHandleTable::Entry* entry = nb.table.find(nb.active_nb_handle);
      assert(entry != nullptr);
      entry->complete = true;
      --nb.wa_incomplete;
      t.stats.messages_received += 1;
      const MsgHandle done = entry->msg;
      entry->msg = MsgHandle{};
      retire_copied(t, done);
      nb.active_nb_handle = -1;
      t.phase = 0;
    }
    // Re-poll: charge the next arrived-but-uncopied receive, or finish.
    // First-set-bit is the first ready receive in handle-list order — the
    // same pick the full scan made.
    const int pos = wa_first_ready(t);
    if (pos >= 0) {
      const int h = wait->handles[static_cast<std::size_t>(pos)];
      NbHandleTable::Entry* entry = nb.table.find(h);
      assert(entry != nullptr && !entry->is_send && !entry->complete &&
             entry->data_arrived);
      wa_clear_ready(t, pos);
      // Progress this receive now: CPU-side copy.
      nb.active_nb_handle = h;
      t.phase = 1;
      const MessageRec& msg = pool_.ref(entry->msg);
      SimDuration cost = net_.recv_cpu_cost(msg.bytes);
      if (msg.arrived_during_smm && node_htt_active(t.node)) {
        cost = scale(cost, cfg_.post_smi_drain_factor);
      }
      start_work(t, cost);
      return;
    }
    if (nb.wa_incomplete == 0) {
      for (const int h : wait->handles) nb.table.close(h);
      t.waiting_all = false;
      nb.wa_armed = false;
      t.action.reset();
      start_next_action(t);
      return;
    }
    t.waiting_all = true;
    ensure_ack_wake(t);
    if (t.wait_policy == WaitPolicy::kBlock) {
      t.state = TaskImpl::State::kBlocked;
      stop_running(t, /*keep_on_cpu=*/false);
      dispatch(t.node, t.cpu);
    }
    return;
  }

  if (auto* sleep = std::get_if<Sleep>(&*t.action)) {
    switch (t.phase) {
      case 0: {
        t.phase = 1;
        t.state = TaskImpl::State::kSleeping;
        stop_running(t, /*keep_on_cpu=*/false);
        engine_.schedule_after(sleep->dur, [this, id = t.id] {
          TaskImpl& task_ref = task(id);
          if (task_ref.state != TaskImpl::State::kSleeping) return;
          // Timer interrupts are deferred while the node is frozen (SMM or
          // an injected fault stall).
          if (node_in_smm(task_ref.node) || node_fault_frozen(task_ref.node)) {
            node_state_[static_cast<std::size_t>(task_ref.node)]
                ->deferred_wakes.push_back(task_ref.id.value);
            return;
          }
          make_ready(task_ref);
        });
        dispatch(t.node, t.cpu);
        return;
      }
      case 1:
        t.action.reset();
        start_next_action(t);
        return;
      default:
        assert(false);
    }
  }

  assert(false && "Call actions are consumed by start_next_action");
}

void System::finish_task(TaskImpl& t) {
  assert(!t.stats.finished);
  // A finishing task cannot be awaiting a rendezvous ack (every wait
  // consumes its acks first), but acks queued for it with a delivery
  // instant still in the future must keep their wire-time effects (route
  // erase, payload recycle, note_progress) — hand them to the wake chain.
  ensure_ack_wake(t);
  t.stats.finished = true;
  t.stats.end_time = now();
  t.state = TaskImpl::State::kDone;
  program_actions_ -= t.materialized;
  t.materialized = 0;
  stop_running(t, /*keep_on_cpu=*/false);
  --unfinished_tasks_;
  dispatch(t.node, t.cpu);
}

// --- Messaging -------------------------------------------------------------------

MsgHandle System::inject_message(TaskImpl& sender, int dst_rank,
                                 std::int64_t bytes, int tag, bool needs_ack,
                                 std::uint64_t ack_key) {
  const auto& members = groups_.at(static_cast<std::size_t>(sender.group.value));
  assert(dst_rank >= 0 && dst_rank < static_cast<int>(members.size()));
  const TaskId dst_id = members[static_cast<std::size_t>(dst_rank)];
  assert(dst_id.valid() && "destination rank not spawned");
  TaskImpl& dst = task(dst_id);

  const MsgHandle h = pool_.alloc();
  MessageRec& msg = pool_.ref(h);
  msg.group = sender.group;
  msg.src_rank = sender.rank;
  msg.dst_rank = dst_rank;
  msg.src_node = sender.node;
  msg.dst_node = dst.node;
  msg.bytes = bytes;
  msg.tag = tag;
  msg.needs_ack = needs_ack;
  msg.ack_key = ack_key;
  msg.sender = sender.id;
  msg.xmit = net_.wire_xmit(bytes);

  sender.stats.messages_sent += 1;
  sender.stats.bytes_sent += bytes;
  if (++in_flight_messages_ > peak_in_flight_messages_) {
    peak_in_flight_messages_ = in_flight_messages_;
  }

  if (sender.node == dst.node) {
    // Shared-memory transport: the copy is CPU work already charged to the
    // sender; the residual is a small transfer delay. Arrival during SMM
    // just lands in the unexpected queue (DMA); the frozen receiver drains
    // it later.
    engine_.schedule_after(net_.intra_transfer(bytes),
                           [this, h] { on_message_arrival(h); });
    return h;
  }
  inter_node_bytes_ += bytes;
  nic_submit(sender.node, /*egress=*/true, h);
  return h;
}

// --- NIC servers ---------------------------------------------------------------

System::NicServer& System::nic(int node, bool egress) {
  auto& ns = *node_state_.at(static_cast<std::size_t>(node));
  return egress ? ns.egress : ns.ingress;
}

void System::nic_submit(int node, bool egress, MsgHandle h) {
  NicServer& server = nic(node, egress);
  if (fast_paths_ && !server.paused() && !server.classic_busy()) {
    nic_book(node, egress, server, h);
    return;
  }
  server.queue.push_back(h);
  nic_try_serve(node, egress);
}

// Pipeline booking: fix the message's service interval now; the armed
// event stays with the front entry only (see the NicServer comment).
void System::nic_book(int node, bool egress, NicServer& server, MsgHandle h) {
  const SimTime start = std::max(now(), server.busy_until);
  const SimTime end = start + pool_.ref(h).xmit;
  server.busy_until = end;
  server.pipe.push_back(NicServer::PipeEntry{h, start, end, EventId{}});
  if (server.pipe.size() == 1) nic_pipe_arm(node, egress, server);
}

// Arm the front booking's merged event. Called when a booking lands in an
// empty pipe and when a fired front hands the chain to its successor; the
// target instants were fixed at booking time, so arming order never moves
// a timestamp.
void System::nic_pipe_arm(int node, bool egress, NicServer& server) {
  assert(!server.pipe.empty());
  NicServer::PipeEntry& e = server.pipe.front();
  assert(!e.ev.valid());
  if (egress) {
    e.ev = engine_.schedule_at(e.end,
                               [this, node, h = e.h] { nic_pipe_handoff(node, h); });
  } else {
    e.ev = engine_.schedule_at(e.end + net_.latency(),
                               [this, node, h = e.h] { nic_pipe_arrival(node, h); });
  }
}

// A booked egress service ended: same instant the classic done event fired.
// Mirrors the classic handler's order — handoff (which may book at the
// destination ingress) before arming this server's next service.
void System::nic_pipe_handoff(int node, MsgHandle h) {
  NicServer& server = nic(node, /*egress=*/true);
  assert(!server.pipe.empty() && server.pipe.front().h == h);
  server.pipe.pop_front();
  handoff_to_ingress(h);
  if (!server.pipe.empty()) nic_pipe_arm(node, /*egress=*/true, server);
  // No try_serve: the classic queue is empty by the booking precondition (a
  // pause would have converted the pipeline away before admitting classic
  // traffic).
}

// A booked ingress service ended and the propagation delay elapsed: the
// merged event lands exactly where the classic done -> latency -> arrival
// chain landed. The entry may already be gone (a pause converted the pipe
// while this message was in propagation flight); the successor hand-over
// happens before the arrival side effects, like the classic chain's next
// done event which was already armed by now.
void System::nic_pipe_arrival(int node, MsgHandle h) {
  NicServer& server = nic(node, /*egress=*/false);
  if (!server.pipe.empty() && server.pipe.front().h == h) {
    server.pipe.pop_front();
    if (!server.pipe.empty()) nic_pipe_arm(node, /*egress=*/false, server);
  }
  on_message_arrival(h);
}

// A pause landed while bookings are outstanding: rebuild the classic state
// the pause/resume/crash logic expects. Entries whose service already
// ended (ingress only) are in pure propagation flight — pause-immune, so
// each leaves with an armed arrival event: the front already has its
// merged event; successors get theirs here, at the exact instants the
// classic chain used. The front still-in-service booking becomes `active`
// with its true remaining time; the rest re-queue in order. Ties
// (end == now, event not yet fired) stay with the server, matching the
// classic tie where the pause beat the done event: the message pays the
// recovery draw.
void System::nic_pipe_to_classic(int node, NicServer& server) {
  while (!server.pipe.empty() && server.pipe.front().end < now()) {
    NicServer::PipeEntry& e = server.pipe.front();
    if (!e.ev.valid()) {
      e.ev = engine_.schedule_at(e.end + net_.latency(),
                                 [this, node, h = e.h] { nic_pipe_arrival(node, h); });
    }
    server.pipe.pop_front();  // its arrival event now owns the delivery
  }
  for (NicServer::PipeEntry& e : server.pipe) {
    engine_.cancel(e.ev);  // no-op for entries past the front
    if (!server.active.valid()) {
      assert(e.start <= now());
      server.active = e.h;
      server.remaining = e.end - now();
      server.since = now();
    } else {
      server.queue.push_back(e.h);
    }
  }
  server.pipe.clear();
  server.busy_until = SimTime::zero();
}

void System::nic_try_serve(int node, bool egress) {
  NicServer& server = nic(node, egress);
  if (server.paused() || server.active.valid() || server.queue.empty()) return;
  const MsgHandle h = server.queue.front();
  server.queue.pop_front();
  server.active = h;
  server.remaining = pool_.ref(h).xmit;
  server.since = now();
  ++server.epoch;
  server.done_ev = engine_.schedule_after(
      server.remaining, [this, node, egress, ep = server.epoch] {
        nic_service_done(node, egress, ep);
      });
}

void System::nic_service_done(int node, bool egress, std::uint64_t epoch) {
  NicServer& server = nic(node, egress);
  if (server.epoch != epoch || server.paused() || !server.active.valid()) return;
  const MsgHandle h = server.active;
  server.active = MsgHandle{};
  server.done_ev = EventId{};
  if (egress) {
    handoff_to_ingress(h);
  } else {
    // Delivered at the destination after propagation.
    engine_.schedule_after(net_.latency(),
                           [this, h] { on_message_arrival(h); });
  }
  nic_try_serve(node, egress);
}

// Bits left the source NIC: apply the link fault model, then serialize into
// the destination NIC. A dropped attempt re-enters the source egress queue
// after the retransmission timeout; a duplicated one additionally burns
// ingress service time at the destination before transport dedup eats it.
void System::handoff_to_ingress(MsgHandle h) {
  MessageRec& msg = pool_.ref(h);
  ++msg.attempts;
  if (node_crashed(msg.dst_node)) {
    // The destination died while the bits were on the wire: undeliverable.
    fail_message(h);
    return;
  }
  if (link_fault_ != nullptr && !msg.ghost &&
      link_fault_->should_drop(msg.src_node, msg.dst_node)) {
    ++messages_dropped_;
    if (msg.attempts > net_.params().max_retries) {
      ++transport_failures_;  // dead link: the transport gives up
      fail_message(h);
      return;
    }
    retransmit_later(h);
    return;
  }
  nic_submit(msg.dst_node, /*egress=*/false, h);
  if (link_fault_ != nullptr && !pool_.ref(h).ghost &&
      link_fault_->should_duplicate(pool_.ref(h).src_node,
                                    pool_.ref(h).dst_node)) {
    ++messages_duplicated_;
    const MsgHandle dup_h = pool_.alloc();
    MessageRec& src = pool_.ref(h);  // alloc may have moved the slab
    MessageRec& dup = pool_.ref(dup_h);
    dup.src_node = src.src_node;
    dup.dst_node = src.dst_node;
    dup.bytes = src.bytes;
    dup.xmit = src.xmit;
    dup.ghost = true;
    if (++in_flight_messages_ > peak_in_flight_messages_) {
      peak_in_flight_messages_ = in_flight_messages_;
    }
    nic_submit(dup.dst_node, /*egress=*/false, dup_h);
  }
}

void System::retransmit_later(MsgHandle h) {
  MessageRec& msg = pool_.ref(h);
  ++retransmissions_;
  // RFC 6298-style exponential backoff from the base RTO.
  SimDuration rto = net_.params().retrans_timeout;
  for (int i = 1; i < msg.attempts; ++i) {
    rto = scale(rto, net_.params().retrans_backoff);
  }
  engine_.schedule_after(rto, [this, h] {
    MessageRec* m = pool_.get(h);
    if (m == nullptr || m->failed) return;  // abandoned and recycled meanwhile
    if (node_crashed(m->src_node) || node_crashed(m->dst_node)) {
      fail_message(h);
      return;
    }
    nic_submit(m->src_node, /*egress=*/true, h);
  });
}

void System::fail_message(MsgHandle h) {
  MessageRec& msg = pool_.ref(h);
  if (msg.failed || msg.arrived) return;
  msg.failed = true;
  --in_flight_messages_;
  if (msg.needs_ack) {
    // The sender's ack will never come; keep the route (marked failed) so a
    // stuck sender's diagnosis can still name its peer, but drop the record.
    if (AckTarget* route = ack_router_.find(msg.ack_key)) {
      route->failed = true;
      route->msg = MsgHandle{};
    }
  }
  pool_.release(h);
}

void System::nic_pause(int node, bool egress) {
  NicServer& server = nic(node, egress);
  if (++server.pause_depth > 1) return;  // already stopped by another cause
  server.paused_at = now();
  if (!server.pipe.empty()) nic_pipe_to_classic(node, server);
  if (server.active.valid()) {
    server.remaining -= now() - server.since;
    if (server.remaining < SimDuration{1}) server.remaining = SimDuration{1};
    ++server.epoch;
    engine_.cancel(server.done_ev);
    server.done_ev = EventId{};
  }
}

void System::nic_resume(int node, bool egress) {
  NicServer& server = nic(node, egress);
  assert(server.paused());
  if (--server.pause_depth > 0) return;  // another cause still holds it
  if (server.active.valid()) {
    // TCP loss recovery after the stall: retransmission plus congestion-
    // window rebuild, proportional to how long the host was frozen.
    double recovery = net_.params().tcp_recovery_scale;
    if (recovery > 0.0 && node_htt_active(node)) {
      recovery *= cfg_.htt_nic_recovery_factor;
    }
    if (recovery > 0.0) {
      const SimDuration stall = now() - server.paused_at;
      server.remaining += nic_rng_.uniform_duration(
          SimDuration::zero(),
          std::max(SimDuration{1}, scale(stall, recovery)));
    }
    server.since = now();
    ++server.epoch;
    server.done_ev = engine_.schedule_after(
        server.remaining, [this, node, egress, ep = server.epoch] {
          nic_service_done(node, egress, ep);
        });
  } else {
    nic_try_serve(node, egress);
  }
}

void System::on_message_arrival(MsgHandle h) {
  MessageRec& msg = pool_.ref(h);
  --in_flight_messages_;
  note_progress();
  if (msg.ghost) {
    // Transport dedup swallows injected duplicates; the ghost burned its
    // ingress wire time, so the record's job is done.
    pool_.release(h);
    return;
  }
  const auto& members = groups_.at(static_cast<std::size_t>(msg.group.value));
  TaskImpl& dst = task(members[static_cast<std::size_t>(msg.dst_rank)]);
  msg.arrived = true;
  msg.arrival = now();
  msg.arrived_during_smm = node_in_smm(dst.node);

  // Posted nonblocking receives match first (MPI posted-queue semantics);
  // only unmatched arrivals enter the unexpected queue.
  if (match_posted_irecv(dst, h)) {
    wake_waitall(dst);
    return;
  }
  dst.unexpected.push(pool_, h);

  if (!dst.waiting_msg) return;
  if (msg.tag != dst.wait_tag) return;
  if (dst.wait_src != kAnySource && msg.src_rank != dst.wait_src) return;

  if (dst.on_cpu) {
    if (!cpu_state(dst.node, dst.cpu).frozen) {
      step_action(dst);  // spin-waiter picks it up immediately
    }
    // else: the post-SMM resume re-polls.
  } else if (dst.state == TaskImpl::State::kBlocked) {
    make_ready(dst);
  }
  // else: queued (preempted while spinning); re-polled at dispatch.
}

bool System::try_match_recv(TaskImpl& t, int src_rank, int tag,
                            MessageRec** out) {
  const MsgHandle h = t.unexpected.match(pool_, src_rank, tag, sched_policy_);
  if (!h.valid()) return false;
  t.waiting_msg = false;
  t.active_msg = h;
  *out = &pool_.ref(h);
  return true;
}

// A matched message's CPU-side copy finished: send the rendezvous ack if one
// is owed, then recycle the record — immediately for eager messages, or at
// the ack's completion for rendezvous ones (kConsumed holds the routing
// fields the ack path still reads).
void System::retire_copied(TaskImpl& /*receiver*/, MsgHandle h) {
  MessageRec& msg = pool_.ref(h);
  if (msg.needs_ack) {
    deliver_ack(msg);
    if (ack_router_.find(msg.ack_key) != nullptr) {
      msg.state = MessageRec::State::kConsumed;
      return;
    }
    // The sender was killed and its route erased: the ack will land on
    // nobody, so nothing holds the record past this point.
  }
  pool_.release(h);
}

bool System::match_posted_irecv(TaskImpl& t, MsgHandle h) {
  if (!t.nbs_ || !t.nbs_->table.any_open_recv()) return false;
  NbHandleTable& nb_table = t.nbs_->table;
  MessageRec& msg = pool_.ref(h);
  // The posted-by-tag index holds exactly the open, unmatched receives (a
  // receive can only complete after its data arrives, so !data_arrived
  // implies !complete) and yields the lowest id — the same handle the old
  // ascending full-table scan picked.
  const int id = nb_table.match_posted(msg.src_rank, msg.tag);
  if (id < 0) return false;
  NbHandleTable::Entry* hit = nb_table.find(id);
  assert(hit != nullptr && !hit->is_send && !hit->complete);
  nb_table.unpost(id);
  hit->data_arrived = true;
  hit->msg = h;
  msg.state = MessageRec::State::kMatched;
  if (hit->in_waitall) wa_mark_ready(t, hit->wa_pos);
  return true;
}

void System::wake_waitall(TaskImpl& t) {
  if (!t.waiting_all) return;
  if (t.on_cpu) {
    if (!cpu_state(t.node, t.cpu).frozen) step_action(t);
    // else: the post-SMM resume re-polls.
  } else if (t.state == TaskImpl::State::kBlocked) {
    make_ready(t);
  }
  // else: queued; re-polled at dispatch.
}

void System::deliver_ack(const MessageRec& msg) {
  // Control traffic: tiny, skips the queue servers (a real NIC prioritizes
  // pure ACKs and their wire time is negligible). If the sender's node is
  // frozen when it lands, the spinning sender picks it up at SMM exit.
  const SimDuration wire = msg.src_node == msg.dst_node
                               ? net_.intra_transfer(kAckBytes)
                               : net_.latency() + net_.wire_xmit(kAckBytes);
  // Fast path: the delivery instant is fixed here and acks fire
  // unconditionally (they skip the NIC servers, so no pause or fault can
  // move them) — record it on the sender and piggyback the effects on its
  // next poll instead of paying a dedicated event. Falls back to the full
  // event chain whenever a link fault model is armed (drops/dups change
  // route lifetimes mid-flight) or the sender is already gone.
  if (fast_paths_ && link_fault_ == nullptr) {
    if (AckTarget* route = ack_router_.find(msg.ack_key)) {
      queue_lazy_ack(task(route->task), msg.ack_key, now() + wire);
      return;
    }
  }
  engine_.schedule_after(wire, [this, key = msg.ack_key] { on_ack(key); });
}

void System::on_ack(std::uint64_t ack_key) {
  apply_ack(ack_key, /*allow_wake=*/true);
}

// The ack's effects. `allow_wake` is false when the owning sender is being
// stepped right now (lazy maturation at the top of its own poll): the
// ongoing poll reads the flags itself, and waking would re-enter its state
// machine.
void System::apply_ack(std::uint64_t ack_key, bool allow_wake) {
  note_progress();
  // O(1) hash route: ack keys are globally unique per System.
  AckTarget* route = ack_router_.find(ack_key);
  if (route == nullptr) return;  // sender was killed; route already erased
  const AckTarget target = *route;
  ack_router_.erase(ack_key);
  // The consumed rendezvous payload was held only for this moment.
  if (target.msg.valid()) {
    assert(pool_.ref(target.msg).state == MessageRec::State::kConsumed);
    pool_.release(target.msg);
  }
  TaskImpl& t = task(target.task);
  if (target.nb_handle >= 0) {
    // Nonblocking rendezvous send completion.
    if (NbHandleTable::Entry* entry =
            t.nbs_ ? t.nbs_->table.find(target.nb_handle) : nullptr) {
      entry->complete = true;
      entry->ack_key = 0;
      if (entry->in_waitall) {
        assert(t.nbs_->wa_armed);
        --t.nbs_->wa_incomplete;
      }
    }
    if (allow_wake) wake_waitall(t);
    return;
  }
  if (t.state == TaskImpl::State::kDone) return;
  if (t.pending_ack_key != ack_key) return;
  t.ack_arrived = true;
  t.pending_ack_key = 0;
  if (!t.waiting_ack) return;  // arrived before the task started waiting
  t.waiting_ack = false;
  if (!allow_wake) return;  // the ongoing poll continues from the flag
  if (t.on_cpu) {
    if (!cpu_state(t.node, t.cpu).frozen) step_action(t);
  } else if (t.state == TaskImpl::State::kBlocked) {
    make_ready(t);
  }
}

// --- Lazy ack maturation (transport fast path) -------------------------------
//
// deliver_ack computes the ack's delivery instant exactly as before, but —
// when no fault model is armed — records {due, key} on the sender instead
// of scheduling an event. Acks skip the NIC servers and fire
// unconditionally in the classic path, so their only observable effects
// are the sender-side completion flags, which the sender can only read at
// a poll. A parked sender gets a wake event at exactly the earliest due
// instant, so wake timing (and the hang watchdog's note_progress) is
// unchanged; a busy sender absorbs the acks into its next poll, which is
// where the event savings come from (the ack storm's senders are almost
// always mid-copy).

void System::queue_lazy_ack(TaskImpl& sender, std::uint64_t key, SimTime due) {
  sender.pending_acks.push_back(
      TaskImpl::PendingAck{due, sender.pending_ack_seq++, key});
  if (sender.waiting_msg || sender.waiting_ack || sender.waiting_all) {
    ensure_ack_wake(sender);
  }
}

// Apply every pending ack whose delivery instant has passed, in delivery
// order (due, then queue order) — the order dedicated events fired in.
void System::mature_acks(TaskImpl& t, bool allow_wake) {
  assert(!t.maturing_acks);
  t.maturing_acks = true;
  while (!t.pending_acks.empty()) {
    std::size_t best = t.pending_acks.size();
    for (std::size_t i = 0; i < t.pending_acks.size(); ++i) {
      const TaskImpl::PendingAck& p = t.pending_acks[i];
      if (p.due > now()) continue;
      if (best == t.pending_acks.size() ||
          p.due < t.pending_acks[best].due ||
          (p.due == t.pending_acks[best].due &&
           p.seq < t.pending_acks[best].seq)) {
        best = i;
      }
    }
    if (best == t.pending_acks.size()) break;
    const std::uint64_t key = t.pending_acks[best].key;
    t.pending_acks[best] = t.pending_acks.back();
    t.pending_acks.pop_back();
    apply_ack(key, allow_wake);
  }
  t.maturing_acks = false;
}

// Arm (or tighten) the one wake event that stands in for every dedicated
// ack event while the task is parked.
void System::ensure_ack_wake(TaskImpl& t) {
  if (t.pending_acks.empty()) return;
  SimTime due = t.pending_acks[0].due;
  for (const TaskImpl::PendingAck& p : t.pending_acks) {
    if (p.due < due) due = p.due;
  }
  if (t.ack_wake_ev.valid() && t.ack_wake_due <= due) return;
  engine_.cancel(t.ack_wake_ev);
  t.ack_wake_due = due;
  t.ack_wake_ev = engine_.schedule_at(due, [this, id = t.id] {
    TaskImpl& task_ref = task(id);
    task_ref.ack_wake_ev = EventId{};
    mature_acks(task_ref, /*allow_wake=*/true);
    ensure_ack_wake(task_ref);  // later dues may remain
  });
}

// --- SMM ---------------------------------------------------------------------------

bool System::node_in_smm(int node) const {
  return node_state_.at(static_cast<std::size_t>(node))->in_smm;
}

bool System::node_htt_active(int node) const {
  const Node& n = cluster_.node(node);
  if (n.spec().threads_per_core < 2) return false;
  for (int i = 0; i < n.cpu_count(); ++i) {
    const auto& cpu = n.cpu(i);
    if (cpu.online && cpu.sibling >= 0 && n.is_online(cpu.sibling)) return true;
  }
  return false;
}

void System::smm_enter(int node) {
  auto& ns = *node_state_.at(static_cast<std::size_t>(node));
  assert(!ns.in_smm && "nested SMM entry");
  ns.in_smm = true;
  ns.freeze_start = now();
  // TCP stalls with the host: neither direction of the NIC makes progress.
  nic_pause(node, /*egress=*/true);
  nic_pause(node, /*egress=*/false);
  const Node& topo = cluster_.node(node);
  for (int i = 0; i < topo.cpu_count(); ++i) {
    if (!topo.is_online(i)) continue;
    auto& cs = ns.cpus[static_cast<std::size_t>(i)];
    if (cs.frozen) continue;  // already stopped by a single-CPU preemption
    cs.frozen = true;
    if (cs.quantum_ev.valid()) {
      engine_.cancel(cs.quantum_ev);
      cs.quantum_ev = EventId{};
    }
    if (cs.current >= 0) {
      TaskImpl& t = *tasks_[static_cast<std::size_t>(cs.current)];
      settle(t);
      ++t.epoch;  // invalidate any scheduled completion
      engine_.cancel(t.completion_ev);
      t.completion_ev = EventId{};
    }
  }
}

void System::smm_exit(int node, const SmmInterval& interval) {
  auto& ns = *node_state_.at(static_cast<std::size_t>(node));
  assert(ns.in_smm);
  ns.in_smm = false;
  smm_acct_.record(interval);
  nic_resume(node, /*egress=*/true);
  nic_resume(node, /*egress=*/false);
  if (ns.fault_frozen || ns.crashed) {
    // An injected fault stall outlasts the SMI (or the node died inside
    // it): keep the CPUs down — fault_freeze_exit resumes them. The hung
    // node gets no refill or OS-view charge for this interval; nothing on
    // it observed the handler return.
    ns.last_smm_exit = now();
    return;
  }

  const SimDuration frozen_for = now() - ns.freeze_start;
  // The state worth re-warming after SMM is bounded by what was rebuilt
  // since the previous SMM interval: at high SMI rates caches never get
  // fully hot, so the per-SMI warm-up shrinks with the gap. The quadratic
  // damping reflects that a barely-warm cache both has less to lose and
  // loses it more cheaply (the lines it still needs are the recent ones).
  const double warm_fraction = [&] {
    if (ns.last_smm_exit < SimTime::zero()) return 1.0;
    const SimDuration warm = ns.freeze_start - ns.last_smm_exit;
    const double f = warm / (warm + frozen_for);
    return f * f;
  }();
  ns.last_smm_exit = now();
  const SimDuration effective_residency = scale(frozen_for, warm_fraction);
  const Node& topo = cluster_.node(node);
  for (int i = 0; i < topo.cpu_count(); ++i) {
    if (!topo.is_online(i)) continue;
    auto& cs = ns.cpus[static_cast<std::size_t>(i)];
    cs.frozen = false;
    if (cs.current >= 0) {
      TaskImpl& t = *tasks_[static_cast<std::size_t>(cs.current)];
      // The OS never saw the freeze: it keeps charging the task.
      t.stats.os_view_cpu_time += frozen_for;
      t.stats.smm_stolen_time += frozen_for;
      t.stats.smm_hits += 1;
      apply_refill(t, refill_rng_, effective_residency);
      begin_running(t);
      // The freeze cancelled the preemption timer; restore timeslicing for
      // oversubscribed CPUs (a spinning waiter must not starve its queue).
      arm_quantum(node, i);
    }
  }
  // Timer wake-ups that fired during the freeze are serviced now.
  const std::vector<std::int32_t> wakes = std::move(ns.deferred_wakes);
  ns.deferred_wakes.clear();
  for (const std::int32_t idx : wakes) {
    TaskImpl& t = *tasks_[static_cast<std::size_t>(idx)];
    if (t.state == TaskImpl::State::kSleeping) make_ready(t);
  }
  for (int i = 0; i < topo.cpu_count(); ++i) {
    if (topo.is_online(i)) dispatch(node, i);
  }
}

void System::preempt_cpu(int node, int cpu) {
  assert(!node_in_smm(node) && "use SMM entry for whole-node freezes");
  auto& cs = cpu_state(node, cpu);
  assert(!cs.frozen && "CPU already preempted");
  cs.frozen = true;
  if (cs.quantum_ev.valid()) {
    engine_.cancel(cs.quantum_ev);
    cs.quantum_ev = EventId{};
  }
  if (cs.current >= 0) {
    TaskImpl& t = *tasks_[static_cast<std::size_t>(cs.current)];
    settle(t);
    ++t.epoch;
    engine_.cancel(t.completion_ev);
    t.completion_ev = EventId{};
  }
}

void System::resume_cpu(int node, int cpu) {
  if (node_in_smm(node)) return;  // SMM superseded; its exit restores the CPU
  auto& cs = cpu_state(node, cpu);
  if (!cs.frozen) return;  // already restored by an SMM exit
  cs.frozen = false;
  if (cs.current >= 0) {
    // OS-level noise is visible to the kernel: unlike SMM it is NOT charged
    // to the victim task's CPU time, so no os_view adjustment here.
    begin_running(*tasks_[static_cast<std::size_t>(cs.current)]);
    arm_quantum(node, cpu);  // the preemption timer was cancelled at freeze
  }
  dispatch(node, cpu);
}

void System::apply_refill(TaskImpl& t, Rng& rng, SimDuration frozen_for) {
  if (cfg_.machine.hot_set_bytes <= 0) return;  // nothing to re-warm
  // How much of the hot state the handler actually evicted: a millisecond
  // handler touches almost nothing; a long scan flushes everything.
  const double evicted =
      std::min(1.0, frozen_for / cfg_.smm_full_flush_residency);
  SimDuration refill = scale(
      refill_work(t.profile, cfg_.machine.hot_set_bytes,
                  cfg_.machine.cache_refill_bw, sibling_busy(t), rng),
      evicted);
  if (node_htt_active(t.node)) {
    refill = scale(refill, cfg_.refill_htt_node_multiplier);
    // Residency-proportional warm-up with twice the hardware contexts
    // competing for the same caches (see SystemConfig::htt_refill_fraction),
    // scaled by how much hot state this task actually keeps (a register-
    // resident spin loop loses nothing; a streaming kernel loses little).
    // The per-run factor models how (un)lucky this run's post-SMI thread
    // placement is — the paper's HTT variance at high SMI rates.
    if (cfg_.htt_refill_fraction > 0 && t.profile.hot_set_fraction > 0) {
      const double hot = std::min(1.0, t.profile.hot_set_fraction);
      const double jittered = cfg_.htt_refill_fraction * hot * evicted *
                              htt_refill_run_factor_ * rng.uniform(0.7, 1.3);
      refill += scale(frozen_for, jittered);
    }
  }
  t.stats.refill_overhead += refill;
  if (t.work_left > SimDuration::zero()) {
    t.work_left += refill;
  } else {
    t.pending_overhead += refill;
  }
}

// --- Fault injection hooks ---------------------------------------------------------

const char* to_string(FaultRecord::Kind kind) {
  switch (kind) {
    case FaultRecord::Kind::kFreeze: return "FREEZE";
    case FaultRecord::Kind::kCrash: return "CRASH";
    case FaultRecord::Kind::kLinkDown: return "LINKDOWN";
    case FaultRecord::Kind::kSlowNode: return "SLOW";
  }
  return "?";
}

void System::close_fault_record(FaultRecord::Kind kind, int node) {
  for (auto it = fault_log_.rbegin(); it != fault_log_.rend(); ++it) {
    if (it->kind == kind && it->node == node && it->end < SimTime::zero()) {
      it->end = now();
      return;
    }
  }
  assert(false && "closing a fault interval that was never opened");
}

bool System::node_fault_frozen(int node) const {
  return node_state_.at(static_cast<std::size_t>(node))->fault_frozen;
}

bool System::node_crashed(int node) const {
  return node_state_.at(static_cast<std::size_t>(node))->crashed;
}

void System::fault_freeze_enter(int node) {
  auto& ns = *node_state_.at(static_cast<std::size_t>(node));
  if (ns.crashed) return;
  assert(!ns.fault_frozen && "nested fault freeze");
  ns.fault_frozen = true;
  fault_log_.push_back({FaultRecord::Kind::kFreeze, node, now(), SimTime{-1}});
  nic_pause(node, /*egress=*/true);
  nic_pause(node, /*egress=*/false);
  if (ns.in_smm) return;  // CPUs already down; the freeze merely outlasts SMM
  const Node& topo = cluster_.node(node);
  for (int i = 0; i < topo.cpu_count(); ++i) {
    if (!topo.is_online(i)) continue;
    auto& cs = ns.cpus[static_cast<std::size_t>(i)];
    if (cs.frozen) continue;  // already stopped by a single-CPU preemption
    cs.frozen = true;
    if (cs.quantum_ev.valid()) {
      engine_.cancel(cs.quantum_ev);
      cs.quantum_ev = EventId{};
    }
    if (cs.current >= 0) {
      TaskImpl& t = *tasks_[static_cast<std::size_t>(cs.current)];
      settle(t);
      ++t.epoch;
      engine_.cancel(t.completion_ev);
      t.completion_ev = EventId{};
    }
  }
}

void System::fault_freeze_exit(int node) {
  auto& ns = *node_state_.at(static_cast<std::size_t>(node));
  if (ns.crashed) return;  // the crash superseded the stall
  assert(ns.fault_frozen);
  ns.fault_frozen = false;
  close_fault_record(FaultRecord::Kind::kFreeze, node);
  nic_resume(node, /*egress=*/true);
  nic_resume(node, /*egress=*/false);
  if (ns.in_smm) return;  // SMM still holds the node; its exit resumes CPUs
  // Unlike smm_exit there is no refill penalty and no OS-view charge: a
  // hang stops the kernel's clocks along with everything else.
  const Node& topo = cluster_.node(node);
  for (int i = 0; i < topo.cpu_count(); ++i) {
    if (!topo.is_online(i)) continue;
    auto& cs = ns.cpus[static_cast<std::size_t>(i)];
    cs.frozen = false;
    if (cs.current >= 0) {
      begin_running(*tasks_[static_cast<std::size_t>(cs.current)]);
      arm_quantum(node, i);
    }
  }
  const std::vector<std::int32_t> wakes = std::move(ns.deferred_wakes);
  ns.deferred_wakes.clear();
  for (const std::int32_t idx : wakes) {
    TaskImpl& t = *tasks_[static_cast<std::size_t>(idx)];
    if (t.state == TaskImpl::State::kSleeping) make_ready(t);
  }
  for (int i = 0; i < topo.cpu_count(); ++i) {
    if (topo.is_online(i)) dispatch(node, i);
  }
}

void System::kill_task(TaskImpl& t) {
  assert(!t.stats.finished && !t.stats.failed);
  auto& cs = cpu_state(t.node, t.cpu);
  if (t.on_cpu) {
    if (!cs.frozen) settle(t);  // frozen tasks were settled at freeze time
    assert(cs.current == t.id.value);
    cs.current = -1;
    t.on_cpu = false;
    if (cs.quantum_ev.valid()) {
      engine_.cancel(cs.quantum_ev);
      cs.quantum_ev = EventId{};
    }
  }
  if (t.queued) {
    auto& q = cs.runqueue;
    q.erase(std::remove(q.begin(), q.end(), t.id.value), q.end());
    t.queued = false;
  }
  ++t.epoch;
  engine_.cancel(t.completion_ev);
  t.completion_ev = EventId{};
  t.state = TaskImpl::State::kDone;
  t.stats.failed = true;
  t.stats.end_time = now();
  t.work_left = SimDuration::zero();
  t.pending_overhead = SimDuration::zero();
  t.action.reset();
  t.action_kind = -1;
  program_actions_ -= t.materialized;
  t.materialized = 0;
  t.waiting_msg = t.waiting_ack = t.waiting_all = false;
  if (t.nbs_) t.nbs_->wa_armed = false;
  // Release every pool record this task holds and unhook its ack routes:
  // the message in mid-copy, matched-but-uncopied nonblocking receives,
  // queued unexpected traffic, and outstanding rendezvous-send routes
  // (whose acks must now fall on the floor, not on a recycled slot). A
  // routed payload is released only once it is kConsumed — in any other
  // state the wire or the receiving task still owns it, and the receiver's
  // retire_copied path will find the route gone and recycle it then.
  auto drop_route = [&](std::uint64_t key) {
    if (key == 0) return;
    const AckTarget* route = ack_router_.find(key);
    if (route == nullptr) return;
    if (MessageRec* m = pool_.get(route->msg);
        m != nullptr && m->state == MessageRec::State::kConsumed) {
      pool_.release(route->msg);
    }
    ack_router_.erase(key);
  };
  if (t.active_msg.valid()) {
    pool_.release(t.active_msg);
    t.active_msg = MsgHandle{};
  }
  if (t.nbs_) {
    t.nbs_->table.for_each_open([&](int, NbHandleTable::Entry& entry) {
      if (entry.data_arrived && entry.msg.valid()) pool_.release(entry.msg);
      if (entry.is_send) drop_route(entry.ack_key);
    });
    t.nbs_->table.clear();
  }
  drop_route(t.pending_ack_key);
  t.pending_ack_key = 0;
  t.unexpected.clear(pool_);
  // Pending lazy acks stay queued: their routes are gone (drop_route), but
  // the wake chain still fires at each delivery instant so the watchdog
  // sees the same note_progress sequence dedicated ack events produced.
  ensure_ack_wake(t);
  --unfinished_tasks_;
  ++failed_tasks_;
  note_progress();
}

void System::crash_node(int node) {
  auto& ns = *node_state_.at(static_cast<std::size_t>(node));
  if (ns.crashed) return;
  ns.crashed = true;
  if (ns.fault_frozen) {
    ns.fault_frozen = false;
    close_fault_record(FaultRecord::Kind::kFreeze, node);
  }
  fault_log_.push_back({FaultRecord::Kind::kCrash, node, now(), now()});
  // The NICs go silent forever; traffic parked at them is undeliverable.
  nic_pause(node, /*egress=*/true);
  nic_pause(node, /*egress=*/false);
  for (NicServer* server : {&ns.egress, &ns.ingress}) {
    if (server->active.valid()) {
      fail_message(server->active);
      server->active = MsgHandle{};
      ++server->epoch;
      engine_.cancel(server->done_ev);
      server->done_ev = EventId{};
    }
    for (const MsgHandle h : server->queue) fail_message(h);
    server->queue.clear();
  }
  // Fail-stop: every task placed here dies where it stands.
  for (const auto& tp : tasks_) {
    TaskImpl& t = *tp;
    if (t.node != node || t.stats.finished || t.stats.failed) continue;
    kill_task(t);
  }
  ns.deferred_wakes.clear();
}

void System::set_node_fault_rate(int node, double scale) {
  assert(scale > 0.0 && "a zero rate is a freeze, not a slow node");
  double& slot = fault_rate_.at(static_cast<std::size_t>(node));
  if (slot == scale) return;
  if (slot == 1.0) {
    fault_log_.push_back(
        {FaultRecord::Kind::kSlowNode, node, now(), SimTime{-1}});
  } else if (scale == 1.0) {
    close_fault_record(FaultRecord::Kind::kSlowNode, node);
  }
  slot = scale;
  if (node_state_[static_cast<std::size_t>(node)]->crashed) return;
  // Re-pace everything currently executing on the node.
  const Node& topo = cluster_.node(node);
  for (int i = 0; i < topo.cpu_count(); ++i) {
    if (!topo.is_online(i)) continue;
    auto& cs = cpu_state(node, i);
    if (cs.frozen || cs.current < 0) continue;
    TaskImpl& t = *tasks_[static_cast<std::size_t>(cs.current)];
    if (!t.on_cpu) continue;
    settle(t);
    const double new_rate = current_rate(t);
    if (new_rate == t.rate) continue;
    t.rate = new_rate;
    if (t.work_left > SimDuration::zero()) reschedule_completion(t);
  }
}

void System::set_link_down(int node, bool down) {
  if (node_state_.at(static_cast<std::size_t>(node))->crashed) return;
  if (down) {
    fault_log_.push_back(
        {FaultRecord::Kind::kLinkDown, node, now(), SimTime{-1}});
    nic_pause(node, /*egress=*/true);
    nic_pause(node, /*egress=*/false);
  } else {
    close_fault_record(FaultRecord::Kind::kLinkDown, node);
    nic_resume(node, /*egress=*/true);
    nic_resume(node, /*egress=*/false);
  }
}

// --- Running -----------------------------------------------------------------------

void System::validate() const {
  auto fail = [](const std::string& what) {
    throw std::logic_error("System::validate: " + what);
  };
  // CPU <-> task cross-references.
  for (int n = 0; n < cluster_.node_count(); ++n) {
    const auto& ns = *node_state_[static_cast<std::size_t>(n)];
    const Node& topo = cluster_.node(n);
    for (int c = 0; c < topo.cpu_count(); ++c) {
      const auto& cs = ns.cpus[static_cast<std::size_t>(c)];
      if (cs.current >= 0) {
        const TaskImpl& t = *tasks_[static_cast<std::size_t>(cs.current)];
        if (!t.on_cpu || t.node != n || t.cpu != c) {
          fail("cpu " + std::to_string(n) + "/" + std::to_string(c) +
               " current task '" + t.name + "' does not point back");
        }
        if (!topo.is_online(c)) fail("offline CPU has a current task");
      }
      for (const std::int32_t idx : cs.runqueue) {
        const TaskImpl& t = *tasks_[static_cast<std::size_t>(idx)];
        if (!t.queued || t.on_cpu || t.node != n || t.cpu != c) {
          fail("runqueue entry '" + t.name + "' state mismatch");
        }
      }
      if (ns.in_smm && topo.is_online(c) && !cs.frozen) {
        fail("node in SMM but CPU not frozen");
      }
    }
  }
  // Task-side invariants.
  for (const auto& tp : tasks_) {
    const TaskImpl& t = *tp;
    if (t.stats.finished) {
      if (t.on_cpu || t.queued || t.work_left > SimDuration::zero()) {
        fail("finished task '" + t.name + "' retains execution state");
      }
      if (t.stats.os_view_cpu_time <
          t.stats.true_cpu_time + t.stats.smm_stolen_time - SimDuration{1}) {
        fail("ledger mismatch for '" + t.name + "'");
      }
    }
    if (t.on_cpu && t.queued) fail("task '" + t.name + "' both on CPU and queued");
    if (t.on_cpu) {
      const auto& cs = node_state_[static_cast<std::size_t>(t.node)]
                           ->cpus[static_cast<std::size_t>(t.cpu)];
      if (cs.current != t.id.value) {
        fail("task '" + t.name + "' thinks it is current but is not");
      }
    }
  }
  // Transport invariants: the pool's bookkeeping is sound, the in-flight
  // counter matches the kTransit population, the per-task unexpected queues
  // are structurally valid and account for every kUnexpected record, and
  // every consumed-but-retained record is awaiting a routed ack.
  pool_.check_invariants();
  if (static_cast<std::int64_t>(pool_.live_in_state(
          MessageRec::State::kTransit)) != in_flight_messages_) {
    fail("in-flight counter disagrees with the pool's kTransit population");
  }
  std::size_t unexpected_total = 0;
  for (const auto& tp : tasks_) {
    tp->unexpected.check_invariants(pool_);
    unexpected_total += tp->unexpected.size();
  }
  if (unexpected_total != pool_.live_in_state(MessageRec::State::kUnexpected)) {
    fail("unexpected queues do not cover the pool's kUnexpected records");
  }
  if (in_flight_messages_ > peak_in_flight_messages_) {
    fail("in-flight counter exceeds its recorded peak");
  }
  const std::size_t consumed =
      pool_.live_in_state(MessageRec::State::kConsumed);
  if (consumed > ack_router_.size()) {
    fail("kConsumed records outnumber outstanding ack routes");
  }
  // NIC pipeline invariants: bookings and classic state are mutually
  // exclusive, a paused server holds no bookings, and every pipeline is a
  // contiguous FIFO of live records.
  for (int n = 0; n < cluster_.node_count(); ++n) {
    const auto& ns = *node_state_[static_cast<std::size_t>(n)];
    for (const NicServer* server : {&ns.egress, &ns.ingress}) {
      if (server->pipe.empty()) continue;
      if (server->paused()) fail("paused NIC server holds pipeline bookings");
      if (server->classic_busy()) {
        fail("NIC pipeline and classic service state coexist");
      }
      SimTime prev_end = SimTime::zero();
      for (const NicServer::PipeEntry& e : server->pipe) {
        if (pool_.get(e.h) == nullptr) fail("NIC booking holds a stale handle");
        if (e.end < e.start || e.start < prev_end) {
          fail("NIC pipeline bookings are not a contiguous FIFO");
        }
        prev_end = e.end;
      }
      if (server->busy_until != prev_end) {
        fail("NIC busy_until disagrees with the last booking");
      }
    }
  }
}

TransportStats System::transport_stats() const {
  TransportStats s;
  s.messages_allocated = pool_.total_allocated();
  s.pool_live = static_cast<std::int64_t>(pool_.live());
  s.pool_capacity = static_cast<std::int64_t>(pool_.capacity());
  s.pool_peak_live = static_cast<std::int64_t>(pool_.peak_live());
  s.peak_in_flight = peak_in_flight_messages_;
  s.ack_routes = static_cast<std::int64_t>(ack_router_.size());
  return s;
}

std::uint64_t System::progress_digest() const {
  // See the header contract: a stable digest of control state, transport
  // counters, and the pending-event time multiset. Excluded on purpose:
  // event seqs, ack keys, and arrival_seq values (numbering isomorphisms
  // that differ between commuted-but-equivalent schedules) and pool/slab
  // capacities (allocation-order artifacts).
  Fnv64 h;
  h.mix(static_cast<std::uint64_t>(now().ns()));
  h.mix(static_cast<std::uint64_t>(unfinished_tasks_));
  for (const auto& tp : tasks_) {
    const TaskImpl& t = *tp;
    h.mix_signed(t.id.value);
    h.mix(static_cast<std::uint64_t>(t.state));
    h.mix(static_cast<std::uint64_t>(t.phase));
    h.mix((t.stats.finished ? 1u : 0u) | (t.stats.failed ? 2u : 0u) |
          (t.waiting_msg ? 4u : 0u) | (t.waiting_ack ? 8u : 0u) |
          (t.waiting_all ? 16u : 0u) | (t.on_cpu ? 32u : 0u) |
          (t.queued ? 64u : 0u) | (t.ack_arrived ? 128u : 0u) |
          (t.action.has_value() ? 256u : 0u));
    h.mix_signed(t.wait_src);
    h.mix_signed(t.wait_tag);
    h.mix(static_cast<std::uint64_t>(t.work_left.ns()));
    h.mix(t.stats.messages_sent);
    h.mix(t.stats.messages_received);
    h.mix(static_cast<std::uint64_t>(t.stats.bytes_sent));
    h.mix(static_cast<std::uint64_t>(t.pending_acks.size()));
    // Unexpected-queue CONTENT in arrival order (relative order matters for
    // future matches; absolute arrival_seq values do not).
    h.mix(static_cast<std::uint64_t>(t.unexpected.size()));
    t.unexpected.for_each_arrival(pool_, [&h](const MessageRec& msg) {
      h.mix_signed(msg.src_rank);
      h.mix_signed(msg.tag);
      h.mix(static_cast<std::uint64_t>(msg.bytes));
    });
    // An absent nb box hashes exactly like a constructed-but-empty table:
    // count 0, no entries.
    h.mix(static_cast<std::uint64_t>(t.nbs_ ? t.nbs_->table.open_count() : 0));
    if (t.nbs_)
      t.nbs_->table.for_each_open([&h](int id,
                                       const NbHandleTable::Entry& entry) {
      h.mix_signed(id);
      h.mix((entry.is_send ? 1u : 0u) | (entry.complete ? 2u : 0u) |
            (entry.data_arrived ? 4u : 0u) | (entry.in_waitall ? 8u : 0u));
      h.mix_signed(entry.src);
      h.mix_signed(entry.tag);
      h.mix_signed(entry.peer);
    });
  }
  h.mix(static_cast<std::uint64_t>(messages_dropped_));
  h.mix(static_cast<std::uint64_t>(messages_duplicated_));
  h.mix(static_cast<std::uint64_t>(retransmissions_));
  h.mix(static_cast<std::uint64_t>(transport_failures_));
  h.mix(static_cast<std::uint64_t>(inter_node_bytes_));
  h.mix(static_cast<std::uint64_t>(in_flight_messages_));
  // The pending-event schedule: without it, states whose counters coincide
  // but whose futures differ (e.g. the same fault at two jitter offsets,
  // neither fired yet) would falsely collapse in the memo.
  h.mix(engine_.pending_time_digest());
  return h.value();
}

bool System::all_unfinished_comm_waiting() const {
  for (const auto& tp : tasks_) {
    const TaskImpl& t = *tp;
    if (t.stats.finished || t.stats.failed) continue;
    if (!(t.waiting_msg || t.waiting_ack || t.waiting_all)) return false;
  }
  return true;
}

RunResult System::diagnose(RunStatus status) const {
  RunResult result;
  RunDiagnosis& d = result.diagnosis;
  d.sim_now = now();
  d.failed_tasks = failed_tasks_;
  d.in_flight_messages = in_flight_messages_;

  auto peer_of = [&](const TaskImpl& t, int rank) -> const TaskImpl* {
    if (rank < 0 || !t.group.valid()) return nullptr;
    const auto& members = groups_[static_cast<std::size_t>(t.group.value)];
    if (static_cast<std::size_t>(rank) >= members.size()) return nullptr;
    const TaskId id = members[static_cast<std::size_t>(rank)];
    return id.valid() ? &task(id) : nullptr;
  };

  // Wait-for graph over task indices: an edge u -> v means u cannot make
  // progress until v acts (sends the awaited message, consumes the
  // rendezvous payload, or completes a handle's transfer).
  std::vector<std::vector<std::int32_t>> edges(tasks_.size());
  auto add_edge = [&](const TaskImpl& from, const TaskImpl* to) {
    if (to != nullptr && !to->stats.finished && !to->stats.failed) {
      edges[static_cast<std::size_t>(from.id.value)].push_back(to->id.value);
    }
  };

  for (const auto& tp : tasks_) {
    const TaskImpl& t = *tp;
    if (t.stats.finished || t.stats.failed) continue;
    RankDiagnosis r;
    r.task = t.id;
    r.name = t.name;
    r.node = t.node;
    r.rank = t.rank;
    r.unexpected_depth = t.unexpected.size();
    // Sample what HAS arrived but failed to match (arrival order): the key
    // evidence for diagnosing an ANY_SOURCE wedge, where the receive the
    // user expected to fire was satisfied by a different sender earlier.
    t.unexpected.for_each_arrival(pool_, [&](const MessageRec& msg) {
      if (r.unexpected_sample.size() >= kDiagnosisSampleCap) return;
      r.unexpected_sample.push_back(
          QueuedMessage{msg.src_rank, msg.tag, msg.bytes});
    });
    if (t.nbs_)
      t.nbs_->table.for_each_open([&](int id,
                                      const NbHandleTable::Entry& entry) {
      if (entry.complete) return;
      ++r.incomplete_handles;
      if (!entry.is_send) ++r.posted_recvs;
      if (r.pending_handles.size() < kDiagnosisSampleCap) {
        r.pending_handles.push_back(PendingHandle{
            id, entry.is_send, entry.is_send ? entry.peer : entry.src,
            entry.tag, !entry.is_send && entry.src == kAnySource});
      }
    });
    if (t.waiting_msg) {
      r.op = BlockedOp::kRecv;
      r.peer_rank = t.wait_src;
      r.tag = t.wait_tag;
      r.any_source = t.wait_src == kAnySource;
      if (t.wait_src == kAnySource) {
        // Any of the group could unblock us; conservatively depend on all.
        if (t.group.valid()) {
          for (const TaskId id :
               groups_[static_cast<std::size_t>(t.group.value)]) {
            if (id.valid() && !(id == t.id)) add_edge(t, &task(id));
          }
        }
      } else {
        const TaskImpl* p = peer_of(t, t.wait_src);
        r.peer_failed = p != nullptr && p->stats.failed;
        add_edge(t, p);
      }
    } else if (t.waiting_ack) {
      r.op = BlockedOp::kAckWait;
      // The ack comes from whoever consumes our rendezvous payload: the ack
      // route remembers the peer (rank, tag) even after the payload record
      // itself has been recycled.
      if (const AckTarget* route = ack_router_.find(t.pending_ack_key)) {
        r.peer_rank = route->dst_rank;
        r.tag = route->tag;
        const TaskImpl* p = peer_of(t, route->dst_rank);
        r.peer_failed = p != nullptr && p->stats.failed;
        add_edge(t, p);
      }
    } else if (t.waiting_all) {
      r.op = BlockedOp::kWaitAll;
      if (t.nbs_)
        t.nbs_->table.for_each_open([&](int, const NbHandleTable::Entry& entry) {
        if (entry.complete) return;
        if (r.peer_rank < 0) r.peer_rank = entry.peer;
        const TaskImpl* p = peer_of(t, entry.peer);
        if (r.peer_rank == entry.peer) {
          r.peer_failed = p != nullptr && p->stats.failed;
        }
        add_edge(t, p);
      });
    } else if (t.state == TaskImpl::State::kSleeping) {
      r.op = BlockedOp::kSleep;
    }
    d.ranks.push_back(std::move(r));
  }

  // Cycle detection (DFS, three colours). A cycle proves deadlock; report
  // it as task ids with the entry repeated at the end.
  std::vector<int> color(tasks_.size(), 0);
  std::vector<std::int32_t> path;
  // smilint: allow(std-function) reason=recursive diagnosis DFS; runs once per failed run, never on the event hot path
  const std::function<bool(std::int32_t)> dfs = [&](std::int32_t u) -> bool {
    color[static_cast<std::size_t>(u)] = 1;
    path.push_back(u);
    for (const std::int32_t v : edges[static_cast<std::size_t>(u)]) {
      if (color[static_cast<std::size_t>(v)] == 1) {
        auto it = std::find(path.begin(), path.end(), v);
        for (; it != path.end(); ++it) d.cycle.push_back(TaskId{*it});
        d.cycle.push_back(TaskId{v});
        return true;
      }
      if (color[static_cast<std::size_t>(v)] == 0 && dfs(v)) return true;
    }
    color[static_cast<std::size_t>(u)] = 2;
    path.pop_back();
    return false;
  };
  for (const auto& tp : tasks_) {
    const TaskImpl& t = *tp;
    if (t.stats.finished || t.stats.failed) continue;
    if (color[static_cast<std::size_t>(t.id.value)] == 0 && dfs(t.id.value)) {
      break;
    }
  }
  if (status == RunStatus::kHang && !d.cycle.empty()) {
    status = RunStatus::kDeadlock;  // the watchdog fired on a provable cycle
  }
  result.status = status;
  result.peak_in_flight_messages = peak_in_flight_messages_;
  result.peak_program_actions = peak_program_actions_;
  return result;
}

RunResult System::try_run() {
  while (unfinished_tasks_ > 0) {
    if (!engine_.step()) {
      // No pending events but tasks remain: nothing can ever wake them.
      return diagnose(RunStatus::kDeadlock);
    }
    if (now() - SimTime::zero() > cfg_.max_sim_time) {
      return diagnose(RunStatus::kMaxSimTime);
    }
    if (cfg_.hang_timeout > SimDuration::zero() &&
        now() - last_progress_ > cfg_.hang_timeout &&
        in_flight_messages_ == 0 && all_unfinished_comm_waiting()) {
      // Nothing on the wire, every survivor parked in communication, and
      // no action has retired for hang_timeout of simulated time: stuck.
      // (Spin-waiters keep generating quantum events, so the event queue
      // alone cannot distinguish this from forward progress.)
      return diagnose(RunStatus::kHang);
    }
  }
  RunResult result;
  result.peak_in_flight_messages = peak_in_flight_messages_;
  result.peak_program_actions = peak_program_actions_;
  return result;
}

void System::run() {
  const RunResult result = try_run();
  if (!result.ok()) {
    throw SimulationError(result.status,
                          "smilab::System::run: " + result.to_string());
  }
}

bool System::run_for(SimDuration d) { return engine_.run_until(now() + d); }

bool System::all_finished() const { return unfinished_tasks_ == 0; }

const TaskStats& System::task_stats(TaskId t) const { return task(t).stats; }

const std::string& System::task_name(TaskId t) const { return task(t).name; }

int System::task_node(TaskId t) const { return task(t).node; }

SimDuration System::total_true_cpu_time() const {
  SimDuration total{};
  for (const auto& tp : tasks_) total += tp->stats.true_cpu_time;
  return total;
}

SimTime System::group_finish_time(GroupId g) const {
  const auto& members = groups_.at(static_cast<std::size_t>(g.value));
  SimTime latest = SimTime::zero();
  for (const TaskId id : members) {
    assert(id.valid());
    const TaskStats& stats = task(id).stats;
    assert(stats.finished && "group member still running");
    latest = std::max(latest, stats.end_time);
  }
  return latest;
}

SimTime System::last_finish_time() const {
  SimTime latest = SimTime::zero();
  for (const auto& tp : tasks_) {
    if (tp->stats.finished) latest = std::max(latest, tp->stats.end_time);
  }
  return latest;
}

}  // namespace smilab
