#include "smilab/sim/transport.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "smilab/sim/choice_hooks.h"

namespace smilab {

// --- MessagePool -------------------------------------------------------------

MsgHandle MessagePool::alloc() {
  std::uint32_t index;
  if (free_head_ != MessageRec::kNil) {
    index = free_head_;
    Slot& s = slots_[index];
    free_head_ = s.next_free;
    s.next_free = MessageRec::kNil;
    s.rec = MessageRec{};
    s.live = true;
  } else {
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    slots_.back().live = true;
  }
  ++allocated_;
  ++live_;
  if (live_ > peak_live_) peak_live_ = live_;
  return MsgHandle{index, slots_[index].gen};
}

MessageRec& MessagePool::ref(MsgHandle h) {
  assert(h.valid() && h.index < slots_.size());
  Slot& s = slots_[h.index];
  assert(s.live && s.gen == h.gen && "stale MsgHandle on the hot path");
  return s.rec;
}

void MessagePool::release(MsgHandle h) {
  assert(h.valid() && h.index < slots_.size());
  Slot& s = slots_[h.index];
  assert(s.live && s.gen == h.gen && "double release / stale handle");
  s.live = false;
  ++s.gen;  // retire outstanding handles
  s.next_free = free_head_;
  free_head_ = h.index;
  --live_;
}

std::size_t MessagePool::live_in_state(MessageRec::State state) const {
  std::size_t n = 0;
  for (const Slot& s : slots_) {
    if (s.live && s.rec.state == state) ++n;
  }
  return n;
}

void MessagePool::check_invariants() const {
  auto fail = [](const std::string& what) {
    throw std::logic_error("MessagePool::check_invariants: " + what);
  };
  std::size_t live_seen = 0;
  for (const Slot& s : slots_) {
    if (s.live) ++live_seen;
  }
  if (live_seen != live_) fail("live slot count disagrees with counter");
  if (live_ > peak_live_) fail("live exceeds recorded peak");
  // Free list: every entry a dead slot, no cycles, covers all dead slots.
  std::size_t free_seen = 0;
  for (std::uint32_t i = free_head_; i != MessageRec::kNil;
       i = slots_[i].next_free) {
    if (i >= slots_.size()) fail("free-list index out of range");
    if (slots_[i].live) fail("live slot on the free list");
    if (++free_seen > slots_.size()) fail("free-list cycle");
  }
  if (free_seen + live_ != slots_.size()) {
    fail("free list does not cover every dead slot");
  }
}

// --- UnexpectedQueue ---------------------------------------------------------

void UnexpectedQueue::push(MessagePool& pool, MsgHandle h) {
  MessageRec& rec = pool.ref(h);
  assert(rec.arrived && !rec.ghost);
  rec.state = MessageRec::State::kUnexpected;
  rec.arrival_seq = next_seq_++;
  rec.st_prev = rec.st_next = MessageRec::kNil;
  rec.tag_prev = rec.tag_next = MessageRec::kNil;

  Bucket& st = get_st_bucket(rec.src_rank, rec.tag);
  if (st.tail == MessageRec::kNil) {
    st.head = st.tail = h.index;
  } else {
    pool.at_index(st.tail).st_next = h.index;
    rec.st_prev = st.tail;
    st.tail = h.index;
  }

  Bucket& tg = get_tag_bucket(rec.tag);
  if (tg.tail == MessageRec::kNil) {
    tg.head = tg.tail = h.index;
  } else {
    pool.at_index(tg.tail).tag_next = h.index;
    rec.tag_prev = tg.tail;
    tg.tail = h.index;
  }
  ++count_;
}

void UnexpectedQueue::unlink(MessagePool& pool, MsgHandle h) {
  MessageRec& rec = pool.ref(h);

  {  // (src, tag) bucket list
    Bucket* b = find_st_bucket(rec.src_rank, rec.tag);
    assert(b != nullptr);
    if (rec.st_prev != MessageRec::kNil) {
      pool.at_index(rec.st_prev).st_next = rec.st_next;
    } else {
      b->head = rec.st_next;
    }
    if (rec.st_next != MessageRec::kNil) {
      pool.at_index(rec.st_next).st_prev = rec.st_prev;
    } else {
      b->tail = rec.st_prev;
    }
    if (b->head == MessageRec::kNil) erase_st_bucket(rec.src_rank, rec.tag);
  }

  {  // tag index list
    Bucket* b = find_tag_bucket(rec.tag);
    assert(b != nullptr);
    if (rec.tag_prev != MessageRec::kNil) {
      pool.at_index(rec.tag_prev).tag_next = rec.tag_next;
    } else {
      b->head = rec.tag_next;
    }
    if (rec.tag_next != MessageRec::kNil) {
      pool.at_index(rec.tag_next).tag_prev = rec.tag_prev;
    } else {
      b->tail = rec.tag_prev;
    }
    if (b->head == MessageRec::kNil) erase_tag_bucket(rec.tag);
  }

  rec.st_prev = rec.st_next = MessageRec::kNil;
  rec.tag_prev = rec.tag_next = MessageRec::kNil;
  assert(count_ > 0);
  --count_;
}

MsgHandle UnexpectedQueue::match(MessagePool& pool, int src_rank, int tag,
                                 SchedulePolicy* policy) {
  std::uint32_t index = MessageRec::kNil;
  if (src_rank == kAnySource) {
    // The tag index is arrival-ordered across sources: its head IS the
    // globally earliest arrival with this tag (MPI wildcard semantics).
    if (const Bucket* b = find_tag_bucket(tag)) index = b->head;
    if (policy != nullptr && index != MessageRec::kNil) {
      // Candidate set for exploration: the FIRST queued record of each
      // distinct source, walked in arrival order so cand[0] is the
      // tag-list head and decision 0 reproduces the default match.
      MatchScratch& sc = scratch();
      sc.cand.clear();
      sc.seen.clear();
      for (std::uint32_t i = index; i != MessageRec::kNil;
           i = pool.at_index(i).tag_next) {
        const int src = pool.at_index(i).src_rank;
        if (std::find(sc.seen.begin(), sc.seen.end(), src) != sc.seen.end()) {
          continue;  // later message from a seen source: non-overtaking
        }
        sc.seen.push_back(src);
        sc.cand.push_back(i);
      }
      if (sc.cand.size() > 1) {
        const std::size_t pick =
            policy->choose(ChoiceKind::kAnySourceMatch, sc.cand.size());
        assert(pick < sc.cand.size() && "any-source decision out of range");
        index = sc.cand[pick];
      }
    }
  } else {
    if (const Bucket* b = find_st_bucket(src_rank, tag)) {
      index = b->head;
    }
  }
  if (index == MessageRec::kNil) return MsgHandle{};
  const MsgHandle h = pool.handle_at(index);
  unlink(pool, h);
  pool.ref(h).state = MessageRec::State::kMatched;
  return h;
}

std::vector<int> UnexpectedQueue::tag_keys() const {
  std::vector<int> tags;
  if (rank_indexed_) {
    flat_.for_each([&tags](std::uint64_t key, const Bucket&) {
      // Tag-family keys only: (src, tag) keys carry src + 1 up top.
      if ((key >> 32) == 0) {
        tags.push_back(
            static_cast<std::int32_t>(static_cast<std::uint32_t>(key)));
      }
    });
  } else if (classic_) {
    tags.reserve(classic_->by_tag.size());
    // smilint: allow(unordered-iter) reason=keys are sorted before any effect; hash order cannot escape
    for (const auto& [tag, bucket] : classic_->by_tag) tags.push_back(tag);
  }
  std::sort(tags.begin(), tags.end());
  return tags;
}

void UnexpectedQueue::clear(MessagePool& pool) {
  // Drain via sorted tag keys. Releasing in probe/hash-iteration order
  // would push records onto the pool free list in an order that varies
  // with insertion history (flat mode) or across libstdc++ hash
  // implementations (classic) — and free-list order decides the slab
  // index of every future allocation. Sorting first makes the post-kill
  // pool state a deterministic function of queue content alone; each
  // per-tag list is already arrival-ordered, covering every queued record
  // exactly once.
  for (const int tag : tag_keys()) {
    std::uint32_t i = find_tag_bucket(tag)->head;
    while (i != MessageRec::kNil) {
      const std::uint32_t next = pool.at_index(i).tag_next;
      pool.release(pool.handle_at(i));
      i = next;
    }
  }
  if (classic_) {
    classic_->by_tag.clear();
    classic_->by_src_tag.clear();
  }
  flat_.clear();
  count_ = 0;
}

void UnexpectedQueue::check_invariants(const MessagePool& pool) const {
  auto fail = [](const std::string& what) {
    throw std::logic_error("UnexpectedQueue::check_invariants: " + what);
  };
  // Collect buckets from whichever store is active; validation is order-
  // insensitive (every failure throws regardless of visit order).
  std::vector<std::pair<int, Bucket>> tag_buckets;
  std::vector<std::pair<std::uint64_t, Bucket>> st_buckets;
  if (rank_indexed_) {
    flat_.for_each([&tag_buckets, &st_buckets](std::uint64_t key,
                                               const Bucket& b) {
      if ((key >> 32) == 0) {
        tag_buckets.emplace_back(
            static_cast<std::int32_t>(static_cast<std::uint32_t>(key)), b);
      } else {
        // Re-encode to the classic (src << 32) | tag layout the checks
        // below decode (flat keys bias src by +1; see flat_st_key).
        st_buckets.emplace_back(((key >> 32) - 1) << 32 |
                                    (key & 0xffffffffu),
                                b);
      }
    });
  } else if (classic_) {
    // smilint: allow(unordered-iter) reason=validation only; every failure throws regardless of visit order
    for (const auto& [tag, bucket] : classic_->by_tag) {
      tag_buckets.emplace_back(tag, bucket);
    }
    // smilint: allow(unordered-iter) reason=validation only; every failure throws regardless of visit order
    for (const auto& [key, bucket] : classic_->by_src_tag) {
      st_buckets.emplace_back(key, bucket);
    }
  }

  std::size_t tag_seen = 0;
  for (const auto& [tag, bucket] : tag_buckets) {
    if (bucket.head == MessageRec::kNil) fail("empty bucket not erased");
    std::uint64_t last_seq = 0;
    bool first = true;
    std::uint32_t prev = MessageRec::kNil;
    for (std::uint32_t i = bucket.head; i != MessageRec::kNil;) {
      const MessageRec& rec = pool.at_index(i);
      if (rec.state != MessageRec::State::kUnexpected) {
        fail("linked record not kUnexpected");
      }
      if (rec.tag != tag) fail("record in the wrong tag list");
      if (rec.tag_prev != prev) fail("tag-list prev link broken");
      if (!first && rec.arrival_seq <= last_seq) {
        fail("arrival_seq not strictly increasing along tag list");
      }
      last_seq = rec.arrival_seq;
      first = false;
      prev = i;
      i = rec.tag_next;
      ++tag_seen;
      if (tag_seen > count_) fail("tag lists longer than queue count");
    }
    if (bucket.tail != prev) fail("tag-list tail stale");
  }
  if (tag_seen != count_) fail("tag lists do not cover the queue");

  std::size_t st_seen = 0;
  for (const auto& [key, bucket] : st_buckets) {
    if (bucket.head == MessageRec::kNil) fail("empty (src,tag) bucket");
    const int src = static_cast<std::int32_t>(key >> 32);
    const int tag = static_cast<std::int32_t>(key & 0xffffffffu);
    std::uint64_t last_seq = 0;
    bool first = true;
    std::uint32_t prev = MessageRec::kNil;
    for (std::uint32_t i = bucket.head; i != MessageRec::kNil;) {
      const MessageRec& rec = pool.at_index(i);
      if (rec.src_rank != src || rec.tag != tag) {
        fail("record in the wrong (src,tag) bucket");
      }
      if (rec.st_prev != prev) fail("(src,tag) prev link broken");
      if (!first && rec.arrival_seq <= last_seq) {
        fail("arrival_seq not strictly increasing along (src,tag) list");
      }
      last_seq = rec.arrival_seq;
      first = false;
      prev = i;
      i = rec.st_next;
      ++st_seen;
      if (st_seen > count_) fail("(src,tag) lists longer than queue count");
    }
    if (bucket.tail != prev) fail("(src,tag) tail stale");
  }
  if (st_seen != count_) fail("(src,tag) buckets do not cover the queue");
}

// --- NbHandleTable -----------------------------------------------------------

NbHandleTable::Entry& NbHandleTable::open_slot(int id, bool is_send) {
  assert(id >= 0 && "nonblocking handle ids must be non-negative");
  if (static_cast<std::size_t>(id) >= entries_.size()) {
    entries_.resize(static_cast<std::size_t>(id) + 1);
  }
  Entry& e = entries_[static_cast<std::size_t>(id)];
  assert(!e.open && "nonblocking handle already in use");
  e = Entry{};
  e.open = true;
  e.is_send = is_send;
  ++open_;
  if (!is_send) ++open_recvs_;
  return e;
}

const std::pmr::vector<int>* NbHandleTable::find_posted(int tag) const {
  if (rank_indexed_) {
    const std::uint32_t* idx = posted_flat_.find(
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)));
    if (idx == nullptr) return nullptr;
    return &posted_store_[*idx - 1];
  }
  if (!posted_by_tag_) return nullptr;
  auto it = posted_by_tag_->find(tag);
  return it == posted_by_tag_->end() ? nullptr : &it->second;
}

std::pmr::vector<int>& NbHandleTable::get_posted(int tag) {
  if (rank_indexed_) {
    // The flat map holds (store index + 1) so a value-initialized slot
    // reads as "no bucket"; the pmr vectors never move — FlatKeyMap only
    // relocates the 32-bit indices during rehash / backward shift.
    std::uint32_t& ref = posted_flat_.get_or_insert(
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)));
    if (ref == 0) {
      if (!store_free_.empty()) {
        ref = store_free_.back() + 1;
        store_free_.pop_back();
      } else {
        posted_store_.emplace_back(arena_);
        ref = static_cast<std::uint32_t>(posted_store_.size());
      }
    }
    return posted_store_[ref - 1];
  }
  if (!posted_by_tag_) {
    posted_by_tag_ =
        std::make_unique<std::unordered_map<int, std::pmr::vector<int>>>();
  }
  return posted_by_tag_->try_emplace(tag, arena_).first->second;
}

void NbHandleTable::erase_posted(int tag) {
  if (rank_indexed_) {
    const std::uint64_t key =
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag));
    std::uint32_t* idx = posted_flat_.find(key);
    assert(idx != nullptr);
    assert(posted_store_[*idx - 1].empty());
    store_free_.push_back(*idx - 1);
    posted_flat_.erase(key);
    return;
  }
  posted_by_tag_->erase(tag);
}

void NbHandleTable::post_recv(int id) {
  const Entry* e = find(id);
  assert(e != nullptr && !e->is_send && !e->data_arrived);
  std::pmr::vector<int>& ids = get_posted(e->tag);
  // Ids arrive mostly in ascending order (collectives allocate densely),
  // so the insertion point is almost always the back.
  auto it = std::lower_bound(ids.begin(), ids.end(), id);
  assert(it == ids.end() || *it != id);
  ids.insert(it, id);
}

int NbHandleTable::match_posted(int src_rank, int tag) const {
  const std::pmr::vector<int>* ids = find_posted(tag);
  if (ids == nullptr) return -1;
  for (const int id : *ids) {
    const Entry& e = entries_[static_cast<std::size_t>(id)];
    assert(e.open && !e.is_send && !e.data_arrived && e.tag == tag);
    if (e.src == kAnySource || e.src == src_rank) return id;
  }
  return -1;
}

void NbHandleTable::unpost(int id) {
  const Entry* e = find(id);
  assert(e != nullptr && !e->is_send);
  std::pmr::vector<int>* ids = const_cast<std::pmr::vector<int>*>(
      static_cast<const NbHandleTable*>(this)->find_posted(e->tag));
  if (ids == nullptr) return;
  auto it = std::lower_bound(ids->begin(), ids->end(), id);
  if (it == ids->end() || *it != id) return;  // not posted (already matched)
  ids->erase(it);
  if (ids->empty()) erase_posted(e->tag);
}

void NbHandleTable::close(int id) {
  Entry* e = find(id);
  assert(e != nullptr && "closing an unknown handle");
  if (!e->is_send) {
    assert(open_recvs_ > 0);
    --open_recvs_;
    if (!e->data_arrived) unpost(id);
  }
  e->open = false;
  assert(open_ > 0);
  --open_;
}

void NbHandleTable::clear() {
  for (Entry& e : entries_) e.open = false;
  open_ = 0;
  open_recvs_ = 0;
  posted_by_tag_.reset();
  // Match the classic wholesale drop: the pmr vectors point into an arena
  // whose lifetime the caller is about to recycle, so release them rather
  // than keeping them on the free list.
  posted_flat_.clear();
  posted_store_.clear();
  store_free_.clear();
}

}  // namespace smilab
