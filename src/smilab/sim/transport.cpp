#include "smilab/sim/transport.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "smilab/sim/choice_hooks.h"

namespace smilab {

// --- MessagePool -------------------------------------------------------------

MsgHandle MessagePool::alloc() {
  std::uint32_t index;
  if (free_head_ != MessageRec::kNil) {
    index = free_head_;
    Slot& s = slots_[index];
    free_head_ = s.next_free;
    s.next_free = MessageRec::kNil;
    s.rec = MessageRec{};
    s.live = true;
  } else {
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    slots_.back().live = true;
  }
  ++allocated_;
  ++live_;
  if (live_ > peak_live_) peak_live_ = live_;
  return MsgHandle{index, slots_[index].gen};
}

MessageRec& MessagePool::ref(MsgHandle h) {
  assert(h.valid() && h.index < slots_.size());
  Slot& s = slots_[h.index];
  assert(s.live && s.gen == h.gen && "stale MsgHandle on the hot path");
  return s.rec;
}

void MessagePool::release(MsgHandle h) {
  assert(h.valid() && h.index < slots_.size());
  Slot& s = slots_[h.index];
  assert(s.live && s.gen == h.gen && "double release / stale handle");
  s.live = false;
  ++s.gen;  // retire outstanding handles
  s.next_free = free_head_;
  free_head_ = h.index;
  --live_;
}

std::size_t MessagePool::live_in_state(MessageRec::State state) const {
  std::size_t n = 0;
  for (const Slot& s : slots_) {
    if (s.live && s.rec.state == state) ++n;
  }
  return n;
}

void MessagePool::check_invariants() const {
  auto fail = [](const std::string& what) {
    throw std::logic_error("MessagePool::check_invariants: " + what);
  };
  std::size_t live_seen = 0;
  for (const Slot& s : slots_) {
    if (s.live) ++live_seen;
  }
  if (live_seen != live_) fail("live slot count disagrees with counter");
  if (live_ > peak_live_) fail("live exceeds recorded peak");
  // Free list: every entry a dead slot, no cycles, covers all dead slots.
  std::size_t free_seen = 0;
  for (std::uint32_t i = free_head_; i != MessageRec::kNil;
       i = slots_[i].next_free) {
    if (i >= slots_.size()) fail("free-list index out of range");
    if (slots_[i].live) fail("live slot on the free list");
    if (++free_seen > slots_.size()) fail("free-list cycle");
  }
  if (free_seen + live_ != slots_.size()) {
    fail("free list does not cover every dead slot");
  }
}

// --- UnexpectedQueue ---------------------------------------------------------

void UnexpectedQueue::push(MessagePool& pool, MsgHandle h) {
  MessageRec& rec = pool.ref(h);
  assert(rec.arrived && !rec.ghost);
  rec.state = MessageRec::State::kUnexpected;
  rec.arrival_seq = next_seq_++;
  rec.st_prev = rec.st_next = MessageRec::kNil;
  rec.tag_prev = rec.tag_next = MessageRec::kNil;

  Bucket& st = by_src_tag_[src_tag_key(rec.src_rank, rec.tag)];
  if (st.tail == MessageRec::kNil) {
    st.head = st.tail = h.index;
  } else {
    pool.at_index(st.tail).st_next = h.index;
    rec.st_prev = st.tail;
    st.tail = h.index;
  }

  Bucket& tg = by_tag_[rec.tag];
  if (tg.tail == MessageRec::kNil) {
    tg.head = tg.tail = h.index;
  } else {
    pool.at_index(tg.tail).tag_next = h.index;
    rec.tag_prev = tg.tail;
    tg.tail = h.index;
  }
  ++count_;
}

void UnexpectedQueue::unlink(MessagePool& pool, MsgHandle h) {
  MessageRec& rec = pool.ref(h);

  {  // (src, tag) bucket list
    const std::uint64_t key = src_tag_key(rec.src_rank, rec.tag);
    auto it = by_src_tag_.find(key);
    assert(it != by_src_tag_.end());
    Bucket& b = it->second;
    if (rec.st_prev != MessageRec::kNil) {
      pool.at_index(rec.st_prev).st_next = rec.st_next;
    } else {
      b.head = rec.st_next;
    }
    if (rec.st_next != MessageRec::kNil) {
      pool.at_index(rec.st_next).st_prev = rec.st_prev;
    } else {
      b.tail = rec.st_prev;
    }
    if (b.head == MessageRec::kNil) by_src_tag_.erase(it);
  }

  {  // tag index list
    auto it = by_tag_.find(rec.tag);
    assert(it != by_tag_.end());
    Bucket& b = it->second;
    if (rec.tag_prev != MessageRec::kNil) {
      pool.at_index(rec.tag_prev).tag_next = rec.tag_next;
    } else {
      b.head = rec.tag_next;
    }
    if (rec.tag_next != MessageRec::kNil) {
      pool.at_index(rec.tag_next).tag_prev = rec.tag_prev;
    } else {
      b.tail = rec.tag_prev;
    }
    if (b.head == MessageRec::kNil) by_tag_.erase(it);
  }

  rec.st_prev = rec.st_next = MessageRec::kNil;
  rec.tag_prev = rec.tag_next = MessageRec::kNil;
  assert(count_ > 0);
  --count_;
}

MsgHandle UnexpectedQueue::match(MessagePool& pool, int src_rank, int tag,
                                 SchedulePolicy* policy) {
  std::uint32_t index = MessageRec::kNil;
  if (src_rank == kAnySource) {
    // The tag index is arrival-ordered across sources: its head IS the
    // globally earliest arrival with this tag (MPI wildcard semantics).
    auto it = by_tag_.find(tag);
    if (it != by_tag_.end()) index = it->second.head;
    if (policy != nullptr && index != MessageRec::kNil) {
      // Candidate set for exploration: the FIRST queued record of each
      // distinct source, walked in arrival order so cand_buf_[0] is the
      // tag-list head and decision 0 reproduces the default match.
      cand_buf_.clear();
      seen_buf_.clear();
      for (std::uint32_t i = index; i != MessageRec::kNil;
           i = pool.at_index(i).tag_next) {
        const int src = pool.at_index(i).src_rank;
        if (std::find(seen_buf_.begin(), seen_buf_.end(), src) !=
            seen_buf_.end()) {
          continue;  // later message from a seen source: non-overtaking
        }
        seen_buf_.push_back(src);
        cand_buf_.push_back(i);
      }
      if (cand_buf_.size() > 1) {
        const std::size_t pick =
            policy->choose(ChoiceKind::kAnySourceMatch, cand_buf_.size());
        assert(pick < cand_buf_.size() && "any-source decision out of range");
        index = cand_buf_[pick];
      }
    }
  } else {
    auto it = by_src_tag_.find(src_tag_key(src_rank, tag));
    if (it != by_src_tag_.end()) index = it->second.head;
  }
  if (index == MessageRec::kNil) return MsgHandle{};
  const MsgHandle h = pool.handle_at(index);
  unlink(pool, h);
  pool.ref(h).state = MessageRec::State::kMatched;
  return h;
}

void UnexpectedQueue::clear(MessagePool& pool) {
  // Drain via sorted tag keys. Releasing in hash-iteration order would
  // push records onto the pool free list in an order that varies across
  // libstdc++ hash implementations — and free-list order decides the slab
  // index of every future allocation. Sorting first makes the post-kill
  // pool state a deterministic function of queue content alone; each
  // per-tag list is already arrival-ordered, covering every queued record
  // exactly once.
  std::vector<int> tags;
  tags.reserve(by_tag_.size());
  // smilint: allow(unordered-iter) reason=keys are sorted before any effect; hash order cannot escape
  for (const auto& [tag, bucket] : by_tag_) tags.push_back(tag);
  std::sort(tags.begin(), tags.end());
  for (const int tag : tags) {
    std::uint32_t i = by_tag_.find(tag)->second.head;
    while (i != MessageRec::kNil) {
      const std::uint32_t next = pool.at_index(i).tag_next;
      pool.release(pool.handle_at(i));
      i = next;
    }
  }
  by_tag_.clear();
  by_src_tag_.clear();
  count_ = 0;
}

void UnexpectedQueue::check_invariants(const MessagePool& pool) const {
  auto fail = [](const std::string& what) {
    throw std::logic_error("UnexpectedQueue::check_invariants: " + what);
  };
  std::size_t tag_seen = 0;
  // smilint: allow(unordered-iter) reason=validation only; every failure throws regardless of visit order
  for (const auto& [tag, bucket] : by_tag_) {
    if (bucket.head == MessageRec::kNil) fail("empty bucket not erased");
    std::uint64_t last_seq = 0;
    bool first = true;
    std::uint32_t prev = MessageRec::kNil;
    for (std::uint32_t i = bucket.head; i != MessageRec::kNil;) {
      const MessageRec& rec = pool.at_index(i);
      if (rec.state != MessageRec::State::kUnexpected) {
        fail("linked record not kUnexpected");
      }
      if (rec.tag != tag) fail("record in the wrong tag list");
      if (rec.tag_prev != prev) fail("tag-list prev link broken");
      if (!first && rec.arrival_seq <= last_seq) {
        fail("arrival_seq not strictly increasing along tag list");
      }
      last_seq = rec.arrival_seq;
      first = false;
      prev = i;
      i = rec.tag_next;
      ++tag_seen;
      if (tag_seen > count_) fail("tag lists longer than queue count");
    }
    if (bucket.tail != prev) fail("tag-list tail stale");
  }
  if (tag_seen != count_) fail("tag lists do not cover the queue");

  std::size_t st_seen = 0;
  // smilint: allow(unordered-iter) reason=validation only; every failure throws regardless of visit order
  for (const auto& [key, bucket] : by_src_tag_) {
    if (bucket.head == MessageRec::kNil) fail("empty (src,tag) bucket");
    const int src = static_cast<std::int32_t>(key >> 32);
    const int tag = static_cast<std::int32_t>(key & 0xffffffffu);
    std::uint64_t last_seq = 0;
    bool first = true;
    std::uint32_t prev = MessageRec::kNil;
    for (std::uint32_t i = bucket.head; i != MessageRec::kNil;) {
      const MessageRec& rec = pool.at_index(i);
      if (rec.src_rank != src || rec.tag != tag) {
        fail("record in the wrong (src,tag) bucket");
      }
      if (rec.st_prev != prev) fail("(src,tag) prev link broken");
      if (!first && rec.arrival_seq <= last_seq) {
        fail("arrival_seq not strictly increasing along (src,tag) list");
      }
      last_seq = rec.arrival_seq;
      first = false;
      prev = i;
      i = rec.st_next;
      ++st_seen;
      if (st_seen > count_) fail("(src,tag) lists longer than queue count");
    }
    if (bucket.tail != prev) fail("(src,tag) tail stale");
  }
  if (st_seen != count_) fail("(src,tag) buckets do not cover the queue");
}

// --- NbHandleTable -----------------------------------------------------------

NbHandleTable::Entry& NbHandleTable::open_slot(int id, bool is_send) {
  assert(id >= 0 && "nonblocking handle ids must be non-negative");
  if (static_cast<std::size_t>(id) >= entries_.size()) {
    entries_.resize(static_cast<std::size_t>(id) + 1);
  }
  Entry& e = entries_[static_cast<std::size_t>(id)];
  assert(!e.open && "nonblocking handle already in use");
  e = Entry{};
  e.open = true;
  e.is_send = is_send;
  ++open_;
  if (!is_send) ++open_recvs_;
  return e;
}

void NbHandleTable::post_recv(int id) {
  const Entry* e = find(id);
  assert(e != nullptr && !e->is_send && !e->data_arrived);
  std::pmr::vector<int>& ids =
      posted_by_tag_.try_emplace(e->tag, arena_).first->second;
  // Ids arrive mostly in ascending order (collectives allocate densely),
  // so the insertion point is almost always the back.
  auto it = std::lower_bound(ids.begin(), ids.end(), id);
  assert(it == ids.end() || *it != id);
  ids.insert(it, id);
}

int NbHandleTable::match_posted(int src_rank, int tag) const {
  auto bucket = posted_by_tag_.find(tag);
  if (bucket == posted_by_tag_.end()) return -1;
  for (const int id : bucket->second) {
    const Entry& e = entries_[static_cast<std::size_t>(id)];
    assert(e.open && !e.is_send && !e.data_arrived && e.tag == tag);
    if (e.src == kAnySource || e.src == src_rank) return id;
  }
  return -1;
}

void NbHandleTable::unpost(int id) {
  const Entry* e = find(id);
  assert(e != nullptr && !e->is_send);
  auto bucket = posted_by_tag_.find(e->tag);
  if (bucket == posted_by_tag_.end()) return;
  std::pmr::vector<int>& ids = bucket->second;
  auto it = std::lower_bound(ids.begin(), ids.end(), id);
  if (it == ids.end() || *it != id) return;  // not posted (already matched)
  ids.erase(it);
  if (ids.empty()) posted_by_tag_.erase(bucket);
}

void NbHandleTable::close(int id) {
  Entry* e = find(id);
  assert(e != nullptr && "closing an unknown handle");
  if (!e->is_send) {
    assert(open_recvs_ > 0);
    --open_recvs_;
    if (!e->data_arrived) unpost(id);
  }
  e->open = false;
  assert(open_ > 0);
  --open_;
}

void NbHandleTable::clear() {
  for (Entry& e : entries_) e.open = false;
  open_ = 0;
  open_recvs_ = 0;
  posted_by_tag_.clear();
}

}  // namespace smilab
