// Node energy model.
//
// The predecessor study (Delgado & Karavanic, IISWC'13) found SMIs increase
// energy usage: the machine keeps burning near-peak power inside SMM while
// doing no application work, and the stretched runtime adds idle/overhead
// energy on every other component. This model reconstructs run energy from
// the simulator's exact time ledgers.
#pragma once

#include "smilab/time/sim_time.h"

namespace smilab {

class System;

/// Per-node power states (watts). Defaults approximate a 2010 dual-socket
/// Xeon server measured at the wall.
struct PowerModel {
  double node_idle_w = 120.0;  ///< powered on, all cores idle
  double core_busy_w = 18.0;   ///< additional per busy core
  double smm_w = 65.0;         ///< additional while the node sits in SMM
                               ///< (all cores spinning in the handler)
};

struct EnergyReport {
  double joules = 0.0;
  double average_watts = 0.0;
  double busy_core_seconds = 0.0;
  double smm_node_seconds = 0.0;
  double wall_seconds = 0.0;
};

/// Estimate the energy of a completed run:
///   E = wall * nodes * idle + busy-core-seconds * core_busy + smm * smm_w.
/// Call after System::run(); uses the task CPU-time and SMM residency
/// ledgers.
EnergyReport estimate_energy(const System& sys, const PowerModel& power);

}  // namespace smilab
