#include "smilab/cpu/energy.h"

#include "smilab/sim/system.h"

namespace smilab {

EnergyReport estimate_energy(const System& sys, const PowerModel& power) {
  EnergyReport report;
  report.wall_seconds = sys.last_finish_time().seconds();
  report.busy_core_seconds = sys.total_true_cpu_time().seconds();
  for (int n = 0; n < sys.cluster().node_count(); ++n) {
    report.smm_node_seconds += sys.smm_accounting().residency(n).seconds();
  }
  const double nodes = sys.cluster().node_count();
  report.joules = report.wall_seconds * nodes * power.node_idle_w +
                  report.busy_core_seconds * power.core_busy_w +
                  report.smm_node_seconds * power.smm_w;
  if (report.wall_seconds > 0) {
    report.average_watts = report.joules / (report.wall_seconds * nodes);
  }
  return report;
}

}  // namespace smilab
