// Workload execution profiles: how a task's instruction mix interacts with
// Hyper-Threading sibling sharing and with post-SMM cache refill.
//
// HTT model. Each physical core exposes two hardware threads that share
// execution ports and the cache hierarchy. When both siblings are busy,
// each runs at `htt_efficiency` of its solo rate:
//   - 0.50  => combined throughput 1.0x: no SMT benefit. Dense FP codes
//              already saturate the ports (Leng et al. [4]); two cache-
//              hostile threads also defeat each other (Cieslewicz [6]).
//   - 0.65  => combined 1.3x: typical gain when stalls leave issue gaps
//              (I/O- or latency-bound mixes).
// When the sibling is idle the task runs at 1.0.
//
// Post-SMM refill. SMM entry/exit flushes caches and TLBs, so the first
// moments after resume run cold. We charge each task that was on-CPU during
// the SMM interval `refill_work()` extra work, scaled up when its HTT
// sibling is also refilling (both threads miss into the same caches).
#pragma once

#include <algorithm>

#include "smilab/time/sim_time.h"
#include "smilab/time/rng.h"

namespace smilab {

struct WorkloadProfile {
  /// Per-sibling throughput fraction when both hardware threads of a core
  /// are busy. In [0.5, 1.0]; 0.5 means SMT gives no aggregate speedup.
  double htt_efficiency = 0.55;

  /// Fraction of the node's `hot_set_bytes` this task actually keeps warm;
  /// sizes the post-SMM refill penalty. In [0, ~4].
  double hot_set_fraction = 1.0;

  /// Extra refill multiplier when the HTT sibling is busy after SMM exit
  /// (shared-cache competition during warm-up).
  double refill_htt_multiplier = 1.6;

  /// Coefficient of variation of the refill penalty; models the paper's
  /// observed run-to-run variance at high SMI frequency, which grows with
  /// the number of active logical threads.
  double refill_jitter_cv = 0.35;

  // --- Common mixes ---------------------------------------------------------

  /// Dense floating-point compute (NAS EP/BT/FT inner loops, Whetstone).
  static WorkloadProfile dense_fp() {
    return WorkloadProfile{.htt_efficiency = 0.53,
                           .hot_set_fraction = 1.0,
                           .refill_htt_multiplier = 1.5,
                           .refill_jitter_cv = 0.30};
  }

  /// Cache-resident integer/string work (Dhrystone, CacheFriendly convolve).
  static WorkloadProfile cache_friendly() {
    return WorkloadProfile{.htt_efficiency = 0.55,
                           .hot_set_fraction = 1.2,
                           .refill_htt_multiplier = 1.8,
                           .refill_jitter_cv = 0.40};
  }

  /// Streaming, high-miss work (CacheUnfriendly convolve). Two thrashing
  /// siblings do not help each other: efficiency ~0.52.
  static WorkloadProfile cache_unfriendly() {
    return WorkloadProfile{.htt_efficiency = 0.52,
                           .hot_set_fraction = 0.3,  // little to re-warm
                           .refill_htt_multiplier = 1.2,
                           .refill_jitter_cv = 0.50};
  }

  /// Kernel-interaction heavy mixes (pipe, syscall tests): frequent stalls
  /// leave gaps for the sibling, so SMT pays off.
  static WorkloadProfile syscall_heavy() {
    return WorkloadProfile{.htt_efficiency = 0.66,
                           .hot_set_fraction = 0.6,
                           .refill_htt_multiplier = 1.4,
                           .refill_jitter_cv = 0.35};
  }
};

/// Rate (fraction of nominal core speed) for a task given sibling state.
[[nodiscard]] inline double execution_rate(const WorkloadProfile& profile,
                                           bool sibling_busy) {
  return sibling_busy ? profile.htt_efficiency : 1.0;
}

/// Deterministic refill work charged to a task after an SMM interval.
/// `hot_set_bytes`/`refill_bw` come from the MachineSpec; jitter is drawn
/// from the caller's RNG stream.
[[nodiscard]] inline SimDuration refill_work(const WorkloadProfile& profile,
                                             double hot_set_bytes,
                                             double refill_bw,
                                             bool sibling_busy, Rng& rng) {
  double bytes = hot_set_bytes * profile.hot_set_fraction;
  if (sibling_busy) bytes *= profile.refill_htt_multiplier;
  double secs = bytes / refill_bw;
  if (profile.refill_jitter_cv > 0) {
    // Multiplicative jitter, clamped so the penalty stays positive; the
    // right tail models the occasional pathological warm-up the paper sees
    // as HTT variance.
    const double jitter = rng.normal(1.0, profile.refill_jitter_cv);
    secs *= std::clamp(jitter, 0.2, 3.0);
  }
  return seconds_d(secs);
}

}  // namespace smilab
