#include "smilab/cache/cache.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <stdexcept>

namespace smilab {

std::string CacheConfig::validation_error() const {
  char buf[160];
  if (line_bytes <= 0 || (line_bytes & (line_bytes - 1)) != 0) {
    std::snprintf(buf, sizeof buf,
                  "CacheConfig: line_bytes must be a positive power of two, got %d",
                  line_bytes);
    return buf;
  }
  if (associativity <= 0) {
    std::snprintf(buf, sizeof buf,
                  "CacheConfig: associativity must be positive, got %d",
                  associativity);
    return buf;
  }
  const std::size_t way_bytes = static_cast<std::size_t>(line_bytes) *
                                static_cast<std::size_t>(associativity);
  if (size_bytes == 0 || size_bytes % way_bytes != 0) {
    std::snprintf(buf, sizeof buf,
                  "CacheConfig: size_bytes (%zu) must be a positive multiple of "
                  "line_bytes*associativity (%zu)",
                  size_bytes, way_bytes);
    return buf;
  }
  return {};
}

namespace {

int log2_exact(int v) {
  int shift = 0;
  while ((1 << shift) < v) ++shift;
  return shift;
}

}  // namespace

SetAssocCache::SetAssocCache(CacheConfig config)
    : config_(config), set_count_(0), line_shift_(0) {
  if (const std::string error = config.validation_error(); !error.empty()) {
    throw std::invalid_argument(error);
  }
  set_count_ = config.sets();
  line_shift_ = log2_exact(config.line_bytes);
  ways_.resize(set_count_ * static_cast<std::size_t>(config.associativity));
}

void SetAssocCache::set_fast_path(bool enabled) {
  fast_path_ = enabled;
  last_line_ = ~0ull;
  last_way_ = nullptr;
}

bool SetAssocCache::access(std::uint64_t addr) {
  ++accesses_;
  ++clock_;
  const std::uint64_t line = line_of(addr);
  if (line == last_line_ && last_way_ != nullptr) {
    last_way_->lru = clock_;
    return true;
  }
  return access_slow(line);
}

bool SetAssocCache::access_slow(std::uint64_t line) {
  const std::size_t set = static_cast<std::size_t>(line % set_count_);
  const std::uint64_t tag = line / set_count_;
  Way* base = &ways_[set * static_cast<std::size_t>(config_.associativity)];

  Way* victim = base;
  for (int w = 0; w < config_.associativity; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru = clock_;
      if (fast_path_) {
        last_line_ = line;
        last_way_ = &way;
      }
      return true;
    }
    if (!way.valid) {
      victim = &way;  // prefer an invalid way
    } else if (victim->valid && way.lru < victim->lru) {
      victim = &way;
    }
  }
  ++misses_;
  victim->valid = true;
  victim->tag = tag;
  victim->lru = clock_;
  if (fast_path_) {
    // The install may have evicted the memoised line's way; pointing the
    // memo at the just-installed line keeps it trivially valid.
    last_line_ = line;
    last_way_ = victim;
  }
  return false;
}

SetAssocCache::Way* SetAssocCache::find_resident(std::uint64_t line) {
  const std::size_t set = static_cast<std::size_t>(line % set_count_);
  const std::uint64_t tag = line / set_count_;
  Way* base = &ways_[set * static_cast<std::size_t>(config_.associativity)];
  for (int w = 0; w < config_.associativity; ++w) {
    if (base[w].valid && base[w].tag == tag) return &base[w];
  }
  return nullptr;
}

bool SetAssocCache::contains(std::uint64_t addr) const {
  const std::uint64_t line = line_of(addr);
  const std::size_t set = static_cast<std::size_t>(line % set_count_);
  const std::uint64_t tag = line / set_count_;
  const Way* base = &ways_[set * static_cast<std::size_t>(config_.associativity)];
  for (int w = 0; w < config_.associativity; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

void SetAssocCache::flush() {
  for (auto& way : ways_) way.valid = false;
  last_line_ = ~0ull;
  last_way_ = nullptr;
}

std::string HierarchyStats::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "refs=%llu L1=%.2f%% L2=%.2f%% L3=%.2f%% mem=%.2f%% "
                "(L1 miss rate %.2f%%)",
                static_cast<unsigned long long>(accesses),
                100.0 * static_cast<double>(l1_hits) / static_cast<double>(accesses ? accesses : 1),
                100.0 * static_cast<double>(l2_hits) / static_cast<double>(accesses ? accesses : 1),
                100.0 * static_cast<double>(l3_hits) / static_cast<double>(accesses ? accesses : 1),
                100.0 * static_cast<double>(memory_accesses) / static_cast<double>(accesses ? accesses : 1),
                100.0 * l1_miss_rate());
  return buf;
}

CacheHierarchy::CacheHierarchy(CacheConfig l1, CacheConfig l2, CacheConfig l3)
    : l1_(l1), l2_(l2), l3_(l3) {}

CacheHierarchy CacheHierarchy::e5620() {
  return CacheHierarchy{
      CacheConfig{.size_bytes = 32 * 1024, .line_bytes = 64, .associativity = 8},
      CacheConfig{.size_bytes = 256 * 1024, .line_bytes = 64, .associativity = 8},
      CacheConfig{.size_bytes = 12 * 1024 * 1024, .line_bytes = 64, .associativity = 16}};
}

CacheLevel CacheHierarchy::access(std::uint64_t addr) {
  ++stats_.accesses;
  if (l1_.access(addr)) {
    ++stats_.l1_hits;
    return CacheLevel::kL1;
  }
  if (l2_.access(addr)) {
    ++stats_.l2_hits;
    return CacheLevel::kL2;
  }
  if (l3_.access(addr)) {
    ++stats_.l3_hits;
    return CacheLevel::kL3;
  }
  ++stats_.memory_accesses;
  return CacheLevel::kMemory;
}

void CacheHierarchy::access_run(std::uint64_t addr, std::int64_t count,
                                std::uint64_t stride) {
  const auto line_bytes =
      static_cast<std::uint64_t>(l1_.config().line_bytes);
  if (stride == 0 || stride >= line_bytes || !l1_.fast_path_enabled()) {
    for (std::int64_t i = 0; i < count; ++i, addr += stride) access(addr);
    return;
  }
  std::int64_t i = 0;
  while (i < count) {
    access(addr);  // full walk: installs the line at every level if needed
    // Accesses i+1..i+k stay on this L1 line: guaranteed L1 hits on the
    // memoised way, so they collapse to counter updates.
    const std::uint64_t to_boundary = line_bytes - (addr & (line_bytes - 1));
    std::uint64_t k = (to_boundary - 1) / stride;
    k = std::min<std::uint64_t>(k, static_cast<std::uint64_t>(count - i - 1));
    if (k > 0) {
      l1_.touch_last(k);
      stats_.accesses += k;
      stats_.l1_hits += k;
    }
    i += static_cast<std::int64_t>(1 + k);
    addr += (1 + k) * stride;
  }
}

void CacheHierarchy::access_interleaved(std::uint64_t a, std::uint64_t stride_a,
                                        std::uint64_t b, std::uint64_t stride_b,
                                        std::int64_t pairs) {
  const auto line_bytes =
      static_cast<std::uint64_t>(l1_.config().line_bytes);
  const bool batchable = l1_.fast_path_enabled() && stride_a > 0 &&
                         stride_a < line_bytes && stride_b > 0 &&
                         stride_b < line_bytes;
  std::int64_t i = 0;
  while (i < pairs) {
    access(a);
    access(b);
    ++i;
    if (!batchable) {
      a += stride_a;
      b += stride_b;
      continue;
    }
    // Pairs i..i+k-1 keep both streams on their current lines. b is
    // resident (just accessed); a may have been evicted by b's install if
    // they conflict in a set — then batching is off for this stretch.
    const std::uint64_t ka = (line_bytes - (a & (line_bytes - 1)) - 1) / stride_a;
    const std::uint64_t kb = (line_bytes - (b & (line_bytes - 1)) - 1) / stride_b;
    std::uint64_t k = std::min(ka, kb);
    k = std::min<std::uint64_t>(k, static_cast<std::uint64_t>(pairs - i));
    a += stride_a;
    b += stride_b;
    if (k == 0) continue;
    SetAssocCache::Way* way_a = l1_.find_resident(l1_.line_of(a));
    SetAssocCache::Way* way_b = l1_.find_resident(l1_.line_of(b));
    if (way_a == nullptr || way_b == nullptr || way_a == way_b) continue;
    l1_.touch_pair(*way_a, *way_b, l1_.line_of(b), k);
    stats_.accesses += 2 * k;
    stats_.l1_hits += 2 * k;
    i += static_cast<std::int64_t>(k);
    a += k * stride_a;
    b += k * stride_b;
  }
}

void CacheHierarchy::flush() {
  l1_.flush();
  l2_.flush();
  l3_.flush();
}

void CacheHierarchy::set_fast_path(bool enabled) {
  l1_.set_fast_path(enabled);
  l2_.set_fast_path(enabled);
  l3_.set_fast_path(enabled);
}

double CacheHierarchy::average_latency_cycles(double l1_cy, double l2_cy,
                                              double l3_cy, double mem_cy) const {
  if (stats_.accesses == 0) return l1_cy;
  const auto n = static_cast<double>(stats_.accesses);
  return (static_cast<double>(stats_.l1_hits) * l1_cy +
          static_cast<double>(stats_.l2_hits) * l2_cy +
          static_cast<double>(stats_.l3_hits) * l3_cy +
          static_cast<double>(stats_.memory_accesses) * mem_cy) /
         n;
}

}  // namespace smilab
