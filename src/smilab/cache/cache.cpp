#include "smilab/cache/cache.h"

#include <cassert>
#include <cstdio>

namespace smilab {

SetAssocCache::SetAssocCache(CacheConfig config)
    : config_(config), set_count_(config.sets()) {
  assert(config.line_bytes > 0 && (config.line_bytes & (config.line_bytes - 1)) == 0);
  assert(config.associativity > 0);
  assert(set_count_ > 0);
  ways_.resize(set_count_ * static_cast<std::size_t>(config.associativity));
}

bool SetAssocCache::access(std::uint64_t addr) {
  ++accesses_;
  ++clock_;
  const std::uint64_t line = line_of(addr);
  const std::size_t set = static_cast<std::size_t>(line % set_count_);
  const std::uint64_t tag = line / set_count_;
  Way* base = &ways_[set * static_cast<std::size_t>(config_.associativity)];

  Way* victim = base;
  for (int w = 0; w < config_.associativity; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru = clock_;
      return true;
    }
    if (!way.valid) {
      victim = &way;  // prefer an invalid way
    } else if (victim->valid && way.lru < victim->lru) {
      victim = &way;
    }
  }
  ++misses_;
  victim->valid = true;
  victim->tag = tag;
  victim->lru = clock_;
  return false;
}

bool SetAssocCache::contains(std::uint64_t addr) const {
  const std::uint64_t line = line_of(addr);
  const std::size_t set = static_cast<std::size_t>(line % set_count_);
  const std::uint64_t tag = line / set_count_;
  const Way* base = &ways_[set * static_cast<std::size_t>(config_.associativity)];
  for (int w = 0; w < config_.associativity; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

void SetAssocCache::flush() {
  for (auto& way : ways_) way.valid = false;
}

std::string HierarchyStats::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "refs=%llu L1=%.2f%% L2=%.2f%% L3=%.2f%% mem=%.2f%% "
                "(L1 miss rate %.2f%%)",
                static_cast<unsigned long long>(accesses),
                100.0 * static_cast<double>(l1_hits) / static_cast<double>(accesses ? accesses : 1),
                100.0 * static_cast<double>(l2_hits) / static_cast<double>(accesses ? accesses : 1),
                100.0 * static_cast<double>(l3_hits) / static_cast<double>(accesses ? accesses : 1),
                100.0 * static_cast<double>(memory_accesses) / static_cast<double>(accesses ? accesses : 1),
                100.0 * l1_miss_rate());
  return buf;
}

CacheHierarchy::CacheHierarchy(CacheConfig l1, CacheConfig l2, CacheConfig l3)
    : l1_(l1), l2_(l2), l3_(l3) {}

CacheHierarchy CacheHierarchy::e5620() {
  return CacheHierarchy{
      CacheConfig{.size_bytes = 32 * 1024, .line_bytes = 64, .associativity = 8},
      CacheConfig{.size_bytes = 256 * 1024, .line_bytes = 64, .associativity = 8},
      CacheConfig{.size_bytes = 12 * 1024 * 1024, .line_bytes = 64, .associativity = 16}};
}

CacheLevel CacheHierarchy::access(std::uint64_t addr) {
  ++stats_.accesses;
  if (l1_.access(addr)) {
    ++stats_.l1_hits;
    return CacheLevel::kL1;
  }
  if (l2_.access(addr)) {
    ++stats_.l2_hits;
    return CacheLevel::kL2;
  }
  if (l3_.access(addr)) {
    ++stats_.l3_hits;
    return CacheLevel::kL3;
  }
  ++stats_.memory_accesses;
  return CacheLevel::kMemory;
}

void CacheHierarchy::flush() {
  l1_.flush();
  l2_.flush();
  l3_.flush();
}

double CacheHierarchy::average_latency_cycles(double l1_cy, double l2_cy,
                                              double l3_cy, double mem_cy) const {
  if (stats_.accesses == 0) return l1_cy;
  const auto n = static_cast<double>(stats_.accesses);
  return (static_cast<double>(stats_.l1_hits) * l1_cy +
          static_cast<double>(stats_.l2_hits) * l2_cy +
          static_cast<double>(stats_.l3_hits) * l3_cy +
          static_cast<double>(stats_.memory_accesses) * mem_cy) /
         n;
}

}  // namespace smilab
