// Set-associative cache hierarchy simulator (cachegrind-style).
//
// The paper selected its CacheFriendly (~1% miss) and CacheUnfriendly
// (~70% miss) Convolve configurations with cachegrind; we reproduce that
// selection by running the actual Convolve access pattern through this
// model (see apps/convolve). The same model also sizes the post-SMM refill
// penalty inputs.
//
// Hot-path design (DESIGN.md §8): each level memoises the last-accessed
// line and its way, so consecutive same-line references — the dominant case
// for unit-stride replay — skip the set walk entirely, and the hierarchy
// exposes batched replay entry points (access_run / access_interleaved)
// that collapse whole same-line runs into counter updates. Both are
// bit-identical to the scalar path: stats, LRU stamps, and residency evolve
// exactly as if access() had been called per reference.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace smilab {

struct CacheConfig {
  std::size_t size_bytes = 32 * 1024;
  int line_bytes = 64;
  int associativity = 8;

  /// Empty if the geometry is consistent; otherwise a message naming the
  /// offending field. A size not divisible by line*associativity used to
  /// silently truncate in sets(); now it is a construction error.
  [[nodiscard]] std::string validation_error() const;

  [[nodiscard]] std::size_t sets() const {
    return size_bytes / (static_cast<std::size_t>(line_bytes) *
                         static_cast<std::size_t>(associativity));
  }
};

/// One level: physically indexed, true-LRU, write-allocate. We only track
/// hit/miss (no dirty writeback modelling: the study needs miss *rates*).
class SetAssocCache {
 public:
  /// Throws std::invalid_argument (CacheConfig::validation_error) on an
  /// inconsistent geometry.
  explicit SetAssocCache(CacheConfig config);

  /// Access one byte address; returns true on hit. A miss installs the line
  /// (the caller decides whether to probe the next level first).
  bool access(std::uint64_t addr);

  /// Probe without installing or updating LRU (diagnostics).
  [[nodiscard]] bool contains(std::uint64_t addr) const;

  /// Drop every line (what SMM entry/exit effectively does to hot state).
  void flush();

  /// Debug knob: disable the last-line memo so tests can prove the fast
  /// path changes nothing observable.
  void set_fast_path(bool enabled);
  [[nodiscard]] bool fast_path_enabled() const { return fast_path_; }

  [[nodiscard]] const CacheConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t accesses() const { return accesses_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] double miss_rate() const {
    return accesses_ ? static_cast<double>(misses_) / static_cast<double>(accesses_)
                     : 0.0;
  }
  void reset_stats() {
    accesses_ = 0;
    misses_ = 0;
  }

 private:
  friend class CacheHierarchy;

  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  // last-use stamp
    bool valid = false;
  };

  [[nodiscard]] std::uint64_t line_of(std::uint64_t addr) const {
    return addr >> line_shift_;
  }

  bool access_slow(std::uint64_t line);

  /// Resident way for `line`, or nullptr; no stats or LRU side effects.
  [[nodiscard]] Way* find_resident(std::uint64_t line);

  /// Count `n` further hits on the line of the immediately preceding
  /// access without re-walking the set. Caller (CacheHierarchy batching)
  /// guarantees the previous access touched that line and it is resident;
  /// final accesses/clock/LRU state is bit-identical to n scalar hits.
  void touch_last(std::uint64_t n) {
    accesses_ += n;
    clock_ += n;
    last_way_->lru = clock_;
  }

  /// Count `pairs` alternating hits on two resident lines (a before b per
  /// pair), leaving b as the most recent. Bit-identical to the scalar
  /// interleaving: a's final stamp is clock-1, b's is clock.
  void touch_pair(Way& a, Way& b, std::uint64_t line_b, std::uint64_t pairs) {
    accesses_ += 2 * pairs;
    clock_ += 2 * pairs;
    a.lru = clock_ - 1;
    b.lru = clock_;
    last_line_ = line_b;
    last_way_ = &b;
  }

  CacheConfig config_;
  std::size_t set_count_;
  int line_shift_;
  std::vector<Way> ways_;  // set-major: ways_[set * assoc + way]
  std::uint64_t accesses_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t clock_ = 0;
  // Last-line memo: the way holding the most recently accessed line. Only
  // access() installs/evicts lines, so the memo stays valid until the next
  // flush or differently-lined access.
  std::uint64_t last_line_ = ~0ull;
  Way* last_way_ = nullptr;
  bool fast_path_ = true;
};

/// Per-level hit statistics for a full hierarchy walk.
enum class CacheLevel { kL1 = 1, kL2 = 2, kL3 = 3, kMemory = 4 };

struct HierarchyStats {
  std::uint64_t accesses = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l3_hits = 0;
  std::uint64_t memory_accesses = 0;

  bool operator==(const HierarchyStats&) const = default;

  /// cachegrind-style overall miss rate: fraction of references that left
  /// the L1 (what the paper's ~1% / ~70% numbers describe).
  [[nodiscard]] double l1_miss_rate() const {
    return accesses ? static_cast<double>(accesses - l1_hits) /
                          static_cast<double>(accesses)
                    : 0.0;
  }
  [[nodiscard]] double memory_miss_rate() const {
    return accesses ? static_cast<double>(memory_accesses) /
                          static_cast<double>(accesses)
                    : 0.0;
  }
  [[nodiscard]] std::string summary() const;
};

/// Three-level inclusive-enough hierarchy: misses walk down and install at
/// every level on the way back up.
class CacheHierarchy {
 public:
  CacheHierarchy(CacheConfig l1, CacheConfig l2, CacheConfig l3);

  /// The multithreaded-study machine (Westmere E5620): 32 KB L1d, 256 KB
  /// L2 per core, 12 MB shared L3.
  static CacheHierarchy e5620();

  /// Access one address; returns the level that satisfied it.
  CacheLevel access(std::uint64_t addr);

  /// Replay `count` accesses starting at `addr`, advancing by `stride`
  /// bytes each time. Equivalent to count access() calls; same-line runs
  /// (stride < L1 line size) collapse into one walk plus counter updates.
  void access_run(std::uint64_t addr, std::int64_t count, std::uint64_t stride);

  /// Replay `pairs` interleaved accesses a0,b0,a1,b1,... with each stream
  /// advancing by its stride. Equivalent to the scalar interleaving; this
  /// is the shape of the Convolve inner loop (image row and kernel row in
  /// lockstep), where both streams stay within their lines for many pairs.
  void access_interleaved(std::uint64_t a, std::uint64_t stride_a,
                          std::uint64_t b, std::uint64_t stride_b,
                          std::int64_t pairs);

  /// Flush all levels (SMM entry/exit effect).
  void flush();

  /// Debug knob: toggles the per-level last-line memo (tests prove stats
  /// equality with and without it).
  void set_fast_path(bool enabled);

  [[nodiscard]] const HierarchyStats& stats() const { return stats_; }
  void reset_stats() { stats_ = HierarchyStats{}; }

  /// Average access latency in cycles given per-level costs; used to turn
  /// measured miss behaviour into per-reference work for the simulator.
  [[nodiscard]] double average_latency_cycles(double l1_cy, double l2_cy,
                                              double l3_cy, double mem_cy) const;

 private:
  SetAssocCache l1_;
  SetAssocCache l2_;
  SetAssocCache l3_;
  HierarchyStats stats_;
};

}  // namespace smilab
