// Set-associative cache hierarchy simulator (cachegrind-style).
//
// The paper selected its CacheFriendly (~1% miss) and CacheUnfriendly
// (~70% miss) Convolve configurations with cachegrind; we reproduce that
// selection by running the actual Convolve access pattern through this
// model (see apps/convolve). The same model also sizes the post-SMM refill
// penalty inputs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace smilab {

struct CacheConfig {
  std::size_t size_bytes = 32 * 1024;
  int line_bytes = 64;
  int associativity = 8;

  [[nodiscard]] std::size_t sets() const {
    return size_bytes / (static_cast<std::size_t>(line_bytes) *
                         static_cast<std::size_t>(associativity));
  }
};

/// One level: physically indexed, true-LRU, write-allocate. We only track
/// hit/miss (no dirty writeback modelling: the study needs miss *rates*).
class SetAssocCache {
 public:
  explicit SetAssocCache(CacheConfig config);

  /// Access one byte address; returns true on hit. A miss installs the line
  /// (the caller decides whether to probe the next level first).
  bool access(std::uint64_t addr);

  /// Probe without installing or updating LRU (diagnostics).
  [[nodiscard]] bool contains(std::uint64_t addr) const;

  /// Drop every line (what SMM entry/exit effectively does to hot state).
  void flush();

  [[nodiscard]] const CacheConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t accesses() const { return accesses_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] double miss_rate() const {
    return accesses_ ? static_cast<double>(misses_) / static_cast<double>(accesses_)
                     : 0.0;
  }
  void reset_stats() {
    accesses_ = 0;
    misses_ = 0;
  }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  // last-use stamp
    bool valid = false;
  };

  [[nodiscard]] std::uint64_t line_of(std::uint64_t addr) const {
    return addr / static_cast<std::uint64_t>(config_.line_bytes);
  }

  CacheConfig config_;
  std::size_t set_count_;
  std::vector<Way> ways_;  // set-major: ways_[set * assoc + way]
  std::uint64_t accesses_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t clock_ = 0;
};

/// Per-level hit statistics for a full hierarchy walk.
enum class CacheLevel { kL1 = 1, kL2 = 2, kL3 = 3, kMemory = 4 };

struct HierarchyStats {
  std::uint64_t accesses = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l3_hits = 0;
  std::uint64_t memory_accesses = 0;

  /// cachegrind-style overall miss rate: fraction of references that left
  /// the L1 (what the paper's ~1% / ~70% numbers describe).
  [[nodiscard]] double l1_miss_rate() const {
    return accesses ? static_cast<double>(accesses - l1_hits) /
                          static_cast<double>(accesses)
                    : 0.0;
  }
  [[nodiscard]] double memory_miss_rate() const {
    return accesses ? static_cast<double>(memory_accesses) /
                          static_cast<double>(accesses)
                    : 0.0;
  }
  [[nodiscard]] std::string summary() const;
};

/// Three-level inclusive-enough hierarchy: misses walk down and install at
/// every level on the way back up.
class CacheHierarchy {
 public:
  CacheHierarchy(CacheConfig l1, CacheConfig l2, CacheConfig l3);

  /// The multithreaded-study machine (Westmere E5620): 32 KB L1d, 256 KB
  /// L2 per core, 12 MB shared L3.
  static CacheHierarchy e5620();

  /// Access one address; returns the level that satisfied it.
  CacheLevel access(std::uint64_t addr);

  /// Flush all levels (SMM entry/exit effect).
  void flush();

  [[nodiscard]] const HierarchyStats& stats() const { return stats_; }
  void reset_stats() { stats_ = HierarchyStats{}; }

  /// Average access latency in cycles given per-level costs; used to turn
  /// measured miss behaviour into per-reference work for the simulator.
  [[nodiscard]] double average_latency_cycles(double l1_cy, double l2_cy,
                                              double l3_cy, double mem_cy) const;

 private:
  SetAssocCache l1_;
  SetAssocCache l2_;
  SetAssocCache l3_;
  HierarchyStats stats_;
};

}  // namespace smilab
