#include "smilab/trace/action_arena.h"

#include <cassert>
#include <new>

namespace smilab {

namespace {

thread_local smilab::ActionArena* g_current = nullptr;

[[nodiscard]] std::size_t align_up(std::size_t n, std::size_t align) {
  return (n + align - 1) & ~(align - 1);
}

}  // namespace

ActionArena::~ActionArena() {
  for (const Oversized& o : oversized_) {
    ::operator delete(o.ptr, o.bytes, std::align_val_t{o.align});
  }
}

void ActionArena::reset() {
  for (Chunk& c : chunks_) c.used = 0;
  for (const Oversized& o : oversized_) {
    ::operator delete(o.ptr, o.bytes, std::align_val_t{o.align});
  }
  oversized_.clear();
  active_ = 0;
  in_use_ = 0;
}

std::pmr::memory_resource* ActionArena::current() {
  return g_current != nullptr ? g_current : std::pmr::new_delete_resource();
}

void ActionArena::reset_current() {
  if (g_current != nullptr) g_current->reset();
}

ActionArena::Scope::Scope(ActionArena& arena) : prev_(g_current) {
  g_current = &arena;
}

ActionArena::Scope::~Scope() { g_current = prev_; }

void* ActionArena::do_allocate(std::size_t bytes, std::size_t align) {
  assert(align != 0 && (align & (align - 1)) == 0);
  // new[] of std::byte guarantees only the default new alignment; requests
  // that exceed it, or that would dominate a chunk, go out of band.
  if (align > __STDCPP_DEFAULT_NEW_ALIGNMENT__ || bytes > kMaxChunkBytes / 2) {
    void* p = ::operator new(bytes, std::align_val_t{align});
    oversized_.push_back({p, bytes, align});
    in_use_ += bytes;
    return p;
  }
  while (active_ < chunks_.size()) {
    Chunk& c = chunks_[active_];
    const std::size_t at = align_up(c.used, align);
    if (at + bytes <= c.size) {
      c.used = at + bytes;
      in_use_ += bytes;
      return c.data.get() + at;
    }
    ++active_;  // chunk full; its tail is reclaimed at the next reset()
  }
  std::size_t want = chunks_.empty()
                         ? kFirstChunkBytes
                         : std::min(chunks_.back().size * 2, kMaxChunkBytes);
  if (want < bytes) want = align_up(bytes, kFirstChunkBytes);
  Chunk c;
  c.data = std::make_unique<std::byte[]>(want);
  c.size = want;
  c.used = bytes;
  reserved_ += want;
  chunks_.push_back(std::move(c));
  active_ = chunks_.size() - 1;
  in_use_ += bytes;
  return chunks_.back().data.get();
}

}  // namespace smilab
