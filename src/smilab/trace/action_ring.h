// Bounded sink for completed-action records.
//
// The retained trace path keeps every rank's full program alive for the
// whole run; streaming sources (mpi/streaming.h) drop that, but renderers
// and wait-for diagnostics still want recent per-action history. The
// ActionRing keeps a fixed-capacity window of the most recently completed
// actions — O(capacity) memory regardless of run length — which
// chrome_trace renders as the trailing slice window when enabled.
//
// Statistics never come from the ring: residency, per-phase timings and
// slowdown accumulate online in TaskStats/SmmAccounting/OnlineStats, so
// bounding the ring loses diagnostics depth only, never accuracy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "smilab/time/sim_time.h"

namespace smilab {

/// One finished action, as the trace renderer needs it.
struct CompletedAction {
  std::int64_t task = 0;  ///< TaskId value
  int kind = -1;          ///< Action variant index (std::variant::index())
  SimTime start;
  SimTime end;
};

/// Fixed-capacity ring of the most recent CompletedActions. Capacity 0
/// disables recording entirely (the default: zero cost on the hot path).
class ActionRing {
 public:
  ActionRing() = default;
  explicit ActionRing(std::size_t capacity) { set_capacity(capacity); }

  /// Resize and clear. Called before a run, not during one.
  void set_capacity(std::size_t capacity) {
    slots_.assign(capacity, CompletedAction{});
    head_ = 0;
    recorded_ = 0;
  }

  [[nodiscard]] bool enabled() const { return !slots_.empty(); }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  /// Total actions ever offered to the ring (exceeds size() once wrapped).
  [[nodiscard]] std::int64_t recorded() const { return recorded_; }
  [[nodiscard]] std::size_t size() const {
    return recorded_ < static_cast<std::int64_t>(slots_.size())
               ? static_cast<std::size_t>(recorded_)
               : slots_.size();
  }

  void record(const CompletedAction& a) {
    if (slots_.empty()) return;
    slots_[head_] = a;
    head_ = (head_ + 1) % slots_.size();
    ++recorded_;
  }

  /// i-th retained record, oldest first (i in [0, size())).
  [[nodiscard]] const CompletedAction& at(std::size_t i) const {
    const std::size_t base =
        recorded_ < static_cast<std::int64_t>(slots_.size()) ? 0 : head_;
    return slots_[(base + i) % slots_.size()];
  }

 private:
  std::vector<CompletedAction> slots_;
  std::size_t head_ = 0;
  std::int64_t recorded_ = 0;
};

}  // namespace smilab
