#include "smilab/trace/chrome_trace.h"

#include <cstdio>
#include <iterator>

#include "smilab/sim/system.h"

namespace smilab {

namespace {

void append_event(std::string& out, bool& first, const std::string& name,
                  const char* category, int pid, int tid, double ts_us,
                  double dur_us) {
  char buf[384];
  std::snprintf(buf, sizeof buf,
                "%s\n  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
                "\"pid\": %d, \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f}",
                first ? "" : ",", name.c_str(), category, pid, tid, ts_us,
                dur_us);
  first = false;
  out += buf;
}

std::string sanitized(std::string name) {
  for (char& c : name) {
    if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20) c = '_';
  }
  return name;
}

}  // namespace

std::string to_chrome_trace(const System& sys) {
  std::string out = "{\"traceEvents\": [";
  bool first = true;

  // Task lifetimes, grouped by node (pid = node, tid = task id + 1).
  // Crash-killed tasks render too, flagged by category, ending at the
  // crash instant; tasks still running at trace time are omitted.
  for (int i = 0; i < sys.task_count(); ++i) {
    const TaskId id{i};
    const TaskStats& stats = sys.task_stats(id);
    if (!stats.finished && !stats.failed) continue;
    const double start_us = static_cast<double>(stats.start_time.ns()) / 1e3;
    const double dur_us =
        static_cast<double>((stats.end_time - stats.start_time).ns()) / 1e3;
    std::string name = sanitized(sys.task_name(id));
    if (stats.failed) name += " [killed]";
    append_event(out, first, name, stats.failed ? "task_failed" : "task",
                 sys.task_node(id), i + 1, start_us, dur_us);
  }

  // SMM intervals (tid 0 on each node's row).
  for (const SmmInterval& interval : sys.smm_accounting().intervals()) {
    append_event(out, first, "SMM", "smm", interval.node, 0,
                 static_cast<double>(interval.enter.ns()) / 1e3,
                 static_cast<double>(interval.duration().ns()) / 1e3);
  }

  // Injected-fault intervals share the nodes' tid-0 noise row. Still-open
  // intervals close at the current simulated time for rendering.
  for (const FaultRecord& rec : sys.fault_log()) {
    const SimTime end = rec.end >= SimTime::zero() ? rec.end : sys.now();
    append_event(out, first, to_string(rec.kind), "fault", rec.node, 0,
                 static_cast<double>(rec.start.ns()) / 1e3,
                 static_cast<double>((end - rec.start).ns()) / 1e3);
  }

  // Completed-action window (opt-in: System::set_action_ring_capacity).
  // Each retained record renders as a slice on its task's row, so the
  // trailing window of per-action history survives even when the programs
  // themselves streamed through and were never retained.
  static constexpr const char* kActionNames[] = {
      "compute", "send", "recv", "sendrecv", "sleep",
      "call",    "isend", "irecv", "waitall"};
  const ActionRing& ring = sys.action_ring();
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const CompletedAction& a = ring.at(i);
    const TaskId id{static_cast<std::int32_t>(a.task)};
    const char* name =
        a.kind >= 0 && a.kind < static_cast<int>(std::size(kActionNames))
            ? kActionNames[a.kind]
            : "action";
    append_event(out, first, name, "action", sys.task_node(id),
                 static_cast<int>(a.task) + 1,
                 static_cast<double>(a.start.ns()) / 1e3,
                 static_cast<double>((a.end - a.start).ns()) / 1e3);
  }

  out += "\n]}\n";
  return out;
}

}  // namespace smilab
