#include "smilab/trace/chrome_trace.h"

#include <cstdio>

#include "smilab/sim/system.h"

namespace smilab {

namespace {

void append_event(std::string& out, bool& first, const std::string& name,
                  const char* category, int pid, int tid, double ts_us,
                  double dur_us) {
  char buf[384];
  std::snprintf(buf, sizeof buf,
                "%s\n  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
                "\"pid\": %d, \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f}",
                first ? "" : ",", name.c_str(), category, pid, tid, ts_us,
                dur_us);
  first = false;
  out += buf;
}

std::string sanitized(std::string name) {
  for (char& c : name) {
    if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20) c = '_';
  }
  return name;
}

}  // namespace

std::string to_chrome_trace(const System& sys) {
  std::string out = "{\"traceEvents\": [";
  bool first = true;

  // Task lifetimes, grouped by node (pid = node, tid = task id + 1).
  for (int i = 0; i < sys.task_count(); ++i) {
    const TaskId id{i};
    const TaskStats& stats = sys.task_stats(id);
    if (!stats.finished) continue;
    const double start_us = static_cast<double>(stats.start_time.ns()) / 1e3;
    const double dur_us =
        static_cast<double>((stats.end_time - stats.start_time).ns()) / 1e3;
    append_event(out, first, sanitized(sys.task_name(id)), "task",
                 sys.task_node(id), i + 1, start_us, dur_us);
  }

  // SMM intervals (tid 0 on each node's row).
  for (const SmmInterval& interval : sys.smm_accounting().intervals()) {
    append_event(out, first, "SMM", "smm", interval.node, 0,
                 static_cast<double>(interval.enter.ns()) / 1e3,
                 static_cast<double>(interval.duration().ns()) / 1e3);
  }

  out += "\n]}\n";
  return out;
}

}  // namespace smilab
