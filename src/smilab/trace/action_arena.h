// Bump arena for per-task action traces.
//
// Building an MPI job materializes one action vector per rank, and a table
// sweep rebuilds all of them for every grid cell. Under the general-purpose
// heap that is hundreds of thousands of small, identically-sized
// allocations per cell, all freed together when the cell's System dies.
// ActionArena replaces them with a chunked bump allocator: a
// std::pmr::memory_resource whose deallocate is a no-op and whose reset()
// rewinds the bump pointers while RETAINING the chunks, so every grid cell
// after the first allocates its whole trace without touching the heap.
//
// Lifecycle contract:
//   * ActionArena::Scope installs an arena as the thread-local current
//     resource; RankProgram / VectorActions / WaitAll pick it up at
//     construction time via ActionArena::current().
//   * Containers allocated from the arena must be destroyed before reset()
//     (in a sweep: the cell's System and programs die, then reset runs).
//   * With no Scope active, current() returns new_delete_resource() —
//     standalone construction keeps working, just unpooled.
//
// The thread-local current pointer (not std::pmr::set_default_resource,
// which is process-global) keeps `--jobs=N` sweep workers independent:
// each worker thread owns one arena for its lifetime, so allocation
// addresses never depend on cross-thread interleaving and simulation
// results stay bit-identical at any job count.
#pragma once

#include <cstddef>
#include <memory>
#include <memory_resource>
#include <vector>

namespace smilab {

class ActionArena final : public std::pmr::memory_resource {
 public:
  ActionArena() = default;
  ActionArena(const ActionArena&) = delete;
  ActionArena& operator=(const ActionArena&) = delete;
  ~ActionArena() override;

  /// Rewind every chunk's bump pointer, retaining the chunk storage.
  /// Everything previously allocated from this arena must already be
  /// destroyed. Oversized out-of-band allocations are released.
  void reset();

  /// The thread's current trace resource: the innermost live Scope's
  /// arena, or new_delete_resource() when none is active.
  [[nodiscard]] static std::pmr::memory_resource* current();

  /// reset() the innermost live Scope's arena on this thread, if any (the
  /// same everything-already-destroyed contract applies). Lets batch jobs
  /// running on a pooled worker (core/sweep.h SweepPool) recycle the
  /// worker's arena between cells without holding a reference to it.
  static void reset_current();

  /// Bytes handed out since construction/reset (diagnostics/tests).
  [[nodiscard]] std::size_t bytes_in_use() const { return in_use_; }
  /// Total chunk storage retained across resets (diagnostics/tests).
  [[nodiscard]] std::size_t bytes_reserved() const { return reserved_; }

  /// RAII: installs the arena as the thread-local current resource,
  /// restoring the previous one (nesting is allowed) on destruction.
  class Scope {
   public:
    explicit Scope(ActionArena& arena);
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope();

   private:
    ActionArena* prev_;
  };

 protected:
  void* do_allocate(std::size_t bytes, std::size_t align) override;
  void do_deallocate(void*, std::size_t, std::size_t) override {
    // Bump arena: individual frees are no-ops; reset() reclaims wholesale.
  }
  [[nodiscard]] bool do_is_equal(
      const std::pmr::memory_resource& other) const noexcept override {
    return this == &other;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  // Requests too large (or over-aligned) for the doubling chunk ladder go
  // to the upstream heap and are freed on reset()/destruction.
  struct Oversized {
    void* ptr = nullptr;
    std::size_t bytes = 0;
    std::size_t align = 0;
  };

  static constexpr std::size_t kFirstChunkBytes = 64 * 1024;
  static constexpr std::size_t kMaxChunkBytes = 4 * 1024 * 1024;

  std::vector<Chunk> chunks_;
  std::vector<Oversized> oversized_;
  std::size_t active_ = 0;  // index of the chunk currently being filled
  std::size_t in_use_ = 0;
  std::size_t reserved_ = 0;
};

}  // namespace smilab
