// Chrome-tracing (about://tracing, Perfetto) export of a completed run:
// one row per task (lifetime slice) and one row per node's SMM activity.
// Gives a visual timeline of exactly how SMIs interleave with application
// work — the view the paper's authors could only infer indirectly.
#pragma once

#include <string>

namespace smilab {

class System;

/// Build a Chrome trace-event JSON document ("traceEvents" array format)
/// from a finished run. Durations are emitted in microseconds per the
/// format's convention.
[[nodiscard]] std::string to_chrome_trace(const System& sys);

}  // namespace smilab
