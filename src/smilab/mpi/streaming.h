// Streaming program sources: a rank's trace produced chunk by chunk with
// O(1) retained state, so a job's memory is O(ranks), not O(ranks x actions).
//
// The retained path materializes every rank's full program up front
// (RankProgram -> VectorActions) and keeps it in the ActionArena until the
// run ends; that caps rank counts long before CPU does (ROADMAP item 2). A
// ChunkedProgramSource instead owns one reusable RankProgram buffer and a
// private TagAllocator, and re-runs an iteration-body emitter per chunk:
// the same emitter the retained builder loops over, so the per-rank action
// and tag sequences are bit-identical — the streaming/retained equality
// suite (tests/streaming_equality_test.cpp) pins it.
//
// Memory discipline: the buffer's vector is cleared (capacity retained)
// between refills, so steady-state refills allocate nothing. Chunk bodies
// should avoid WaitAll when the source lives inside an arena Scope: WaitAll
// handle lists bump-allocate from the arena per chunk, and arena
// deallocation is a no-op until the cell resets (see DESIGN.md §13).
#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "smilab/mpi/program.h"
#include "smilab/sim/task.h"

namespace smilab {

/// ActionSource that materializes one chunk of a rank's program at a time.
class ChunkedProgramSource final : public ActionSource {
 public:
  /// Append chunk `chunk` (0-based) of this rank's program to `rp`,
  /// advancing `tags` exactly as the retained builder would have by the end
  /// of that chunk. Return false (appending nothing) when `chunk` is past
  /// the end of the program. Called with strictly increasing chunk indices.
  // smilint: allow(std-function) reason=called once per chunk refill, not per event; chunk granularity amortizes the indirect call
  using ChunkEmitter = std::function<bool(int chunk, RankProgram& rp,
                                          TagAllocator& tags)>;

  ChunkedProgramSource(int rank, int nranks, ChunkEmitter emit)
      : emit_(std::move(emit)), buffer_(rank, nranks) {}

  std::optional<Action> next() override {
    while (pc_ >= buffer_.size()) {
      if (done_) return std::nullopt;
      pc_ = 0;
      buffer_.clear();
      // Skip empty chunks (e.g. a p==1 collective round) without yielding.
      if (!emit_(next_chunk_++, buffer_, tags_)) {
        done_ = true;
        return std::nullopt;
      }
    }
    return std::move(buffer_.mutable_actions()[pc_++]);
  }

  [[nodiscard]] std::int64_t materialized_actions() const override {
    return static_cast<std::int64_t>(buffer_.size());
  }

  /// Chunks emitted so far (tests / diagnostics).
  [[nodiscard]] int chunks_emitted() const { return done_ ? next_chunk_ - 1
                                                          : next_chunk_; }

 private:
  ChunkEmitter emit_;
  TagAllocator tags_;   // this rank's private, deterministic tag stream
  RankProgram buffer_;  // reusable chunk buffer (cleared, never shrunk)
  std::size_t pc_ = 0;
  int next_chunk_ = 0;
  bool done_ = false;
};

/// Factory handed to the streaming job entry points: called once per rank
/// at spawn time to build that rank's source.
using RankSourceFactory =  // smilint: allow(std-function) reason=called once per rank at spawn time only
    std::function<std::unique_ptr<ActionSource>(int rank)>;

/// Convenience: a RankSourceFactory producing ChunkedProgramSources from a
/// per-rank chunk-emitter factory.
[[nodiscard]] inline RankSourceFactory chunked_rank_sources(
    // smilint: allow(std-function) reason=factory runs once per rank at spawn time only
    int nranks, std::function<ChunkedProgramSource::ChunkEmitter(int rank)>
                    emitter_for_rank) {
  return [nranks, emitter_for_rank = std::move(emitter_for_rank)](int rank) {
    return std::make_unique<ChunkedProgramSource>(rank, nranks,
                                                  emitter_for_rank(rank));
  };
}

}  // namespace smilab
