// Collective communication algorithms, lowered onto blocking point-to-point
// actions. The algorithms are the textbook/MPICH ones:
//   barrier    — dissemination (Hensgen/Finkel/Manber)
//   broadcast  — binomial tree
//   reduce     — binomial tree (mirror of broadcast)
//   allreduce  — recursive doubling (power-of-two), reduce+bcast otherwise
//   allgather  — ring
//   alltoall   — pairwise XOR exchange (power-of-two), ring otherwise
//
// The point of implementing them for real: an SMI that freezes one node
// delays exactly the rounds that depend on that node, which is the
// mechanism behind the max-of-N amplification in Tables 1-3.
#pragma once

#include <cstdint>
#include <span>

#include "smilab/mpi/program.h"

namespace smilab {

// Every collective comes in two forms:
//
//   span form      — append to every rank of a materialized program vector
//                    (the retained build path, unchanged semantics);
//   per-rank form  — append ONE rank's share of the collective to a single
//                    RankProgram, advancing that rank's TagAllocator.
//
// The span form is implemented as a loop over the per-rank form with the
// allocator copied in and out (TagAllocator is a plain counter, so every
// rank sees the identical pre-collective tag state and all ranks leave in
// lockstep). The per-rank form is what streaming sources (mpi/streaming.h)
// call from inside chunk emitters: a rank's actions can be produced without
// any other rank's program existing. Per-rank emitters take the
// communicator size from `rp.nranks()`.
//
// Per-rank action order is identical between the two forms: the simulation
// consumes each rank's sequence independently, so the retained/streaming
// equality tests pin bit-identical results.

/// Append a dissemination barrier to every rank's program.
void barrier(std::span<RankProgram> ranks, TagAllocator& tags);
/// Per-rank form (see above).
void barrier(RankProgram& rp, TagAllocator& tags);

/// Binomial-tree broadcast of `bytes` from `root`.
void broadcast(std::span<RankProgram> ranks, int root, std::int64_t bytes,
               TagAllocator& tags);
/// Per-rank form (see above).
void broadcast(RankProgram& rp, int root, std::int64_t bytes,
               TagAllocator& tags);

/// Binomial-tree reduction of `bytes` to `root`.
void reduce(std::span<RankProgram> ranks, int root, std::int64_t bytes,
            TagAllocator& tags);
/// Per-rank form (see above).
void reduce(RankProgram& rp, int root, std::int64_t bytes, TagAllocator& tags);

/// Allreduce of a `bytes`-sized vector on every rank.
void allreduce(std::span<RankProgram> ranks, std::int64_t bytes,
               TagAllocator& tags);
/// Per-rank form (see above).
void allreduce(RankProgram& rp, std::int64_t bytes, TagAllocator& tags);

/// Ring allgather: every rank contributes `bytes_per_rank` and ends with
/// all contributions.
void allgather(std::span<RankProgram> ranks, std::int64_t bytes_per_rank,
               TagAllocator& tags);
/// Per-rank form (see above).
void allgather(RankProgram& rp, std::int64_t bytes_per_rank,
               TagAllocator& tags);

/// All-to-all personalized exchange: every rank sends `bytes_per_pair` to
/// every other rank (FT's transpose step).
void alltoall(std::span<RankProgram> ranks, std::int64_t bytes_per_pair,
              TagAllocator& tags);
/// Per-rank form (see above).
void alltoall(RankProgram& rp, std::int64_t bytes_per_pair,
              TagAllocator& tags);

/// Binomial-tree gather of `bytes_per_rank` from every rank to `root`.
/// Interior tree nodes forward their accumulated subtree payloads.
void gather(std::span<RankProgram> ranks, int root, std::int64_t bytes_per_rank,
            TagAllocator& tags);
/// Per-rank form (see above).
void gather(RankProgram& rp, int root, std::int64_t bytes_per_rank,
            TagAllocator& tags);

/// Binomial-tree scatter of `bytes_per_rank` from `root` to every rank
/// (mirror of gather: interior nodes receive their subtree's payload and
/// split it downward).
void scatter(std::span<RankProgram> ranks, int root, std::int64_t bytes_per_rank,
             TagAllocator& tags);
/// Per-rank form (see above).
void scatter(RankProgram& rp, int root, std::int64_t bytes_per_rank,
             TagAllocator& tags);

/// Reduce-scatter of a vector of `bytes_per_rank * p` bytes: recursive
/// halving for powers of two, reduce+scatter otherwise.
void reduce_scatter(std::span<RankProgram> ranks, std::int64_t bytes_per_rank,
                    TagAllocator& tags);
/// Per-rank form (see above).
void reduce_scatter(RankProgram& rp, std::int64_t bytes_per_rank,
                    TagAllocator& tags);

/// Inclusive prefix scan of `bytes` (linear chain: rank r receives from
/// r-1, combines, forwards to r+1 — the dependency spine that makes scans
/// maximally noise-sensitive).
void scan(std::span<RankProgram> ranks, std::int64_t bytes, TagAllocator& tags);
/// Per-rank form (see above).
void scan(RankProgram& rp, std::int64_t bytes, TagAllocator& tags);

/// Nonblocking all-to-all: every rank posts all its receives, starts all
/// its sends, then waits on everything at once (the MPI_Ialltoall shape).
/// Compared with the pairwise blocking algorithm there is no per-round
/// dependency chain, so SMI delays on one node overlap the other ranks'
/// remaining transfers — the overlap ablation measures the difference.
void alltoall_nonblocking(std::span<RankProgram> ranks,
                          std::int64_t bytes_per_pair, TagAllocator& tags);
/// Per-rank form (see above).
void alltoall_nonblocking(RankProgram& rp, std::int64_t bytes_per_pair,
                          TagAllocator& tags);

[[nodiscard]] constexpr bool is_power_of_two(int n) {
  return n > 0 && (n & (n - 1)) == 0;
}

}  // namespace smilab
