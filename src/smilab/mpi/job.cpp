#include "smilab/mpi/job.h"

#include <cassert>
#include <stdexcept>

namespace smilab {

MpiJobResult run_mpi_job(System& sys, std::vector<RankProgram> programs,
                         const std::vector<int>& placement,
                         const WorkloadProfile& profile,
                         const std::string& job_name) {
  const int p = static_cast<int>(programs.size());
  assert(p >= 1);
  if (placement.size() != programs.size()) {
    throw std::invalid_argument("placement size != rank count");
  }

  MpiJobResult result;
  result.group = sys.create_group(p);
  result.rank_tasks.reserve(static_cast<std::size_t>(p));
  const SimTime start = sys.now();

  for (int r = 0; r < p; ++r) {
    TaskSpec spec;
    spec.name = job_name + ".rank" + std::to_string(r);
    spec.node = placement[static_cast<std::size_t>(r)];
    spec.profile = profile;
    spec.wait_policy = WaitPolicy::kSpin;  // MPI busy-polls by default
    spec.actions = std::make_unique<VectorActions>(
        programs[static_cast<std::size_t>(r)].take());
    result.rank_tasks.push_back(sys.spawn_member(result.group, r, std::move(spec)));
  }

  sys.run();

  result.elapsed = sys.group_finish_time(result.group) - start;
  result.rank_stats.reserve(static_cast<std::size_t>(p));
  for (const TaskId id : result.rank_tasks) {
    result.rank_stats.push_back(sys.task_stats(id));
  }
  return result;
}

}  // namespace smilab
