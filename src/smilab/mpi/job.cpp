#include "smilab/mpi/job.h"

#include <cassert>
#include <stdexcept>

namespace smilab {

namespace {

/// Shared spawn path: create the group and one spin-waiting task per rank.
MpiJobResult spawn_mpi_job(System& sys, std::vector<RankProgram>& programs,
                           const std::vector<int>& placement,
                           const WorkloadProfile& profile,
                           const std::string& job_name) {
  const int p = static_cast<int>(programs.size());
  assert(p >= 1);
  if (placement.size() != programs.size()) {
    throw std::invalid_argument("placement size != rank count");
  }

  MpiJobResult result;
  result.group = sys.create_group(p);
  result.rank_tasks.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    TaskSpec spec;
    spec.name = job_name + ".rank" + std::to_string(r);
    spec.node = placement[static_cast<std::size_t>(r)];
    spec.profile = profile;
    spec.wait_policy = WaitPolicy::kSpin;  // MPI busy-polls by default
    spec.actions = std::make_unique<VectorActions>(
        programs[static_cast<std::size_t>(r)].take());
    result.rank_tasks.push_back(
        sys.spawn_member(result.group, r, std::move(spec)));
  }
  return result;
}

void collect_rank_stats(const System& sys, MpiJobResult& result) {
  result.rank_stats.clear();
  result.rank_stats.reserve(result.rank_tasks.size());
  for (const TaskId id : result.rank_tasks) {
    result.rank_stats.push_back(sys.task_stats(id));
  }
}

}  // namespace

MpiJobResult run_mpi_job(System& sys, std::vector<RankProgram> programs,
                         const std::vector<int>& placement,
                         const WorkloadProfile& profile,
                         const std::string& job_name) {
  const SimTime start = sys.now();
  MpiJobResult result =
      spawn_mpi_job(sys, programs, placement, profile, job_name);

  sys.run();

  result.elapsed = sys.group_finish_time(result.group) - start;
  collect_rank_stats(sys, result);
  result.transport = sys.transport_stats();
  return result;
}

MpiJobRunResult try_run_mpi_job(System& sys, std::vector<RankProgram> programs,
                                const std::vector<int>& placement,
                                const WorkloadProfile& profile,
                                const std::string& job_name) {
  const SimTime start = sys.now();
  MpiJobRunResult out;
  out.job = spawn_mpi_job(sys, programs, placement, profile, job_name);

  out.run = sys.try_run();

  collect_rank_stats(sys, out.job);
  // group_finish_time requires every member to have finished; a stuck run
  // or a crash-killed rank reports the diagnosis time instead.
  bool clean = out.run.ok();
  for (const TaskStats& s : out.job.rank_stats) {
    if (!s.finished) clean = false;
  }
  out.job.elapsed = clean ? sys.group_finish_time(out.job.group) - start
                          : sys.now() - start;
  out.job.transport = sys.transport_stats();
  return out;
}

}  // namespace smilab
