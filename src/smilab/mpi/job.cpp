#include "smilab/mpi/job.h"

#include <cassert>
#include <stdexcept>

namespace smilab {

namespace {

/// Shared spawn path: create the group and one spin-waiting task per rank,
/// with the rank's ActionSource supplied by `source_for` (retained:
/// VectorActions over the materialized program; streaming: whatever the
/// RankSourceFactory builds — the only difference between the two modes).
template <typename SourceFor>
MpiJobResult spawn_mpi_job(System& sys, int nranks,
                           const std::vector<int>& placement,
                           const WorkloadProfile& profile,
                           const std::string& job_name, SourceFor&& source_for) {
  assert(nranks >= 1);
  if (placement.size() != static_cast<std::size_t>(nranks)) {
    throw std::invalid_argument("placement size != rank count");
  }

  MpiJobResult result;
  result.group = sys.create_group(nranks);
  result.rank_tasks.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    TaskSpec spec;
    spec.name = job_name + ".rank" + std::to_string(r);
    spec.node = placement[static_cast<std::size_t>(r)];
    spec.profile = profile;
    spec.wait_policy = WaitPolicy::kSpin;  // MPI busy-polls by default
    spec.actions = source_for(r);
    result.rank_tasks.push_back(
        sys.spawn_member(result.group, r, std::move(spec)));
  }
  return result;
}

MpiJobResult spawn_retained(System& sys, std::vector<RankProgram>& programs,
                            const std::vector<int>& placement,
                            const WorkloadProfile& profile,
                            const std::string& job_name) {
  return spawn_mpi_job(
      sys, static_cast<int>(programs.size()), placement, profile, job_name,
      [&](int r) {
        return std::make_unique<VectorActions>(
            programs[static_cast<std::size_t>(r)].take());
      });
}

void collect_rank_stats(const System& sys, MpiJobResult& result) {
  result.rank_stats.clear();
  result.rank_stats.reserve(result.rank_tasks.size());
  for (const TaskId id : result.rank_tasks) {
    result.rank_stats.push_back(sys.task_stats(id));
  }
}

MpiJobResult finish_run(System& sys, MpiJobResult result, SimTime start) {
  sys.run();
  result.elapsed = sys.group_finish_time(result.group) - start;
  collect_rank_stats(sys, result);
  result.transport = sys.transport_stats();
  return result;
}

MpiJobRunResult finish_try_run(System& sys, MpiJobRunResult out, SimTime start) {
  out.run = sys.try_run();

  collect_rank_stats(sys, out.job);
  // group_finish_time requires every member to have finished; a stuck run
  // or a crash-killed rank reports the diagnosis time instead.
  bool clean = out.run.ok();
  for (const TaskStats& s : out.job.rank_stats) {
    if (!s.finished) clean = false;
  }
  out.job.elapsed = clean ? sys.group_finish_time(out.job.group) - start
                          : sys.now() - start;
  out.job.transport = sys.transport_stats();
  return out;
}

}  // namespace

MpiJobResult run_mpi_job(System& sys, std::vector<RankProgram> programs,
                         const std::vector<int>& placement,
                         const WorkloadProfile& profile,
                         const std::string& job_name) {
  const SimTime start = sys.now();
  return finish_run(
      sys, spawn_retained(sys, programs, placement, profile, job_name), start);
}

MpiJobRunResult try_run_mpi_job(System& sys, std::vector<RankProgram> programs,
                                const std::vector<int>& placement,
                                const WorkloadProfile& profile,
                                const std::string& job_name) {
  const SimTime start = sys.now();
  MpiJobRunResult out;
  out.job = spawn_retained(sys, programs, placement, profile, job_name);
  return finish_try_run(sys, std::move(out), start);
}

MpiJobResult run_mpi_job_streaming(System& sys, int nranks,
                                   const RankSourceFactory& sources,
                                   const std::vector<int>& placement,
                                   const WorkloadProfile& profile,
                                   const std::string& job_name) {
  const SimTime start = sys.now();
  return finish_run(sys,
                    spawn_mpi_job(sys, nranks, placement, profile, job_name,
                                  [&](int r) { return sources(r); }),
                    start);
}

MpiJobRunResult try_run_mpi_job_streaming(System& sys, int nranks,
                                          const RankSourceFactory& sources,
                                          const std::vector<int>& placement,
                                          const WorkloadProfile& profile,
                                          const std::string& job_name) {
  const SimTime start = sys.now();
  MpiJobRunResult out;
  out.job = spawn_mpi_job(sys, nranks, placement, profile, job_name,
                          [&](int r) { return sources(r); });
  return finish_try_run(sys, std::move(out), start);
}

}  // namespace smilab
