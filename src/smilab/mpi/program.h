// Rank program construction for the simulated MPI runtime ("simmpi").
//
// An MPI job is a vector of RankPrograms, one per rank; collectives are
// lowered onto blocking point-to-point actions by the algorithms in
// collectives.h, so noise propagates through the real dependency structure
// of each algorithm rather than a closed-form cost model.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "smilab/sim/task.h"

namespace smilab {

/// Monotonic tag source; every collective invocation gets a distinct tag
/// window so matching is unambiguous even with identical partners.
class TagAllocator {
 public:
  /// Reserve `width` consecutive tags; returns the first.
  int allocate(int width = 1) {
    const int base = next_;
    next_ += width;
    return base;
  }

 private:
  int next_ = 1000;  // below 1000: reserved for application p2p
};

/// Builder for one rank's action trace.
class RankProgram {
 public:
  RankProgram(int rank, int nranks) : rank_(rank), nranks_(nranks) {
    assert(rank >= 0 && rank < nranks);
  }

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int nranks() const { return nranks_; }

  void compute(SimDuration work) {
    if (work > SimDuration::zero()) actions_.push_back(Compute{work});
  }
  void send(int dst, std::int64_t bytes, int tag) {
    assert(dst >= 0 && dst < nranks_ && dst != rank_);
    actions_.push_back(Send{dst, bytes, tag});
  }
  void recv(int src, int tag) {
    assert(src >= 0 && src < nranks_ && src != rank_);
    actions_.push_back(Recv{src, tag});
  }
  /// MPI_ANY_SOURCE receive: matches the globally earliest-arrival message
  /// with `tag` from any rank (funnel/master-worker patterns).
  void recv_any(int tag) { actions_.push_back(Recv{kAnySource, tag}); }
  void sendrecv(int dst, std::int64_t send_bytes, int send_tag, int src,
                int recv_tag) {
    assert(dst >= 0 && dst < nranks_ && dst != rank_);
    assert(src >= 0 && src < nranks_ && src != rank_);
    actions_.push_back(SendRecv{dst, send_bytes, send_tag, src, recv_tag});
  }
  void sleep(SimDuration d) { actions_.push_back(Sleep{d}); }

  // Nonblocking primitives: handles are rank-local; the caller is
  // responsible for waiting on every handle it opens.
  void isend(int dst, std::int64_t bytes, int tag, int handle) {
    assert(dst >= 0 && dst < nranks_ && dst != rank_);
    actions_.push_back(Isend{dst, bytes, tag, handle});
  }
  void irecv(int src, int tag, int handle) {
    assert(src >= 0 && src < nranks_ && src != rank_);
    actions_.push_back(Irecv{src, tag, handle});
  }
  /// Nonblocking MPI_ANY_SOURCE receive (see recv_any).
  void irecv_any(int tag, int handle) {
    actions_.push_back(Irecv{kAnySource, tag, handle});
  }
  void waitall(std::vector<int> handles) {
    actions_.push_back(Action{WaitAll{handles}});
  }
  void waitall(std::initializer_list<int> handles) {
    actions_.push_back(Action{WaitAll{handles}});
  }
  /// Arena-friendly overload: an already-pmr handle list is adopted without
  /// copying (used by the nonblocking collective lowerings).
  void waitall(std::pmr::vector<int> handles) {
    actions_.push_back(Action{WaitAll{std::move(handles)}});
  }

  [[nodiscard]] std::size_t size() const { return actions_.size(); }
  [[nodiscard]] const std::pmr::vector<Action>& actions() const {
    return actions_;
  }

  /// Move the built trace out (the builder is spent afterwards).
  [[nodiscard]] std::pmr::vector<Action> take() { return std::move(actions_); }

  // Streaming support (mpi/streaming.h): a ChunkedProgramSource reuses one
  // builder as its per-chunk buffer, clearing between refills so capacity
  // is retained and chunk storage never grows with chunk count.
  void clear() { actions_.clear(); }
  [[nodiscard]] std::pmr::vector<Action>& mutable_actions() { return actions_; }

 private:
  int rank_;
  int nranks_;
  // Arena-backed when an ActionArena::Scope is active at construction time
  // (sweeps install one per grid cell); plain heap otherwise.
  std::pmr::vector<Action> actions_{ActionArena::current()};
};

/// Create one builder per rank.
[[nodiscard]] inline std::vector<RankProgram> make_rank_programs(int nranks) {
  std::vector<RankProgram> programs;
  programs.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) programs.emplace_back(r, nranks);
  return programs;
}

/// Round-robin block placement of `nranks` ranks over `nodes` nodes with
/// `ranks_per_node` slots per node, matching how the paper launched NPB:
/// ranks fill node 0's slots first, then node 1, ... Returns rank -> node.
[[nodiscard]] inline std::vector<int> block_placement(int nranks,
                                                      int ranks_per_node) {
  assert(nranks >= 1 && ranks_per_node >= 1);
  std::vector<int> nodes(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) nodes[static_cast<std::size_t>(r)] = r / ranks_per_node;
  return nodes;
}

/// Number of nodes the placement uses.
[[nodiscard]] inline int node_count_for(int nranks, int ranks_per_node) {
  return (nranks + ranks_per_node - 1) / ranks_per_node;
}

}  // namespace smilab
