#include "smilab/mpi/collectives.h"

#include <algorithm>
#include <cassert>

namespace smilab {

namespace {
constexpr std::int64_t kControlBytes = 8;  // barrier token payload

int rounds_for(int p) {
  int rounds = 0;
  for (int span = 1; span < p; span <<= 1) ++rounds;
  return rounds;
}

// --- Per-rank emitters ------------------------------------------------------
//
// Each emitter appends exactly rank `rp.rank()`'s share of the collective,
// with the communicator size passed explicitly (`p`): the span forms use
// the span size, the public per-rank forms use rp.nranks(). Every emitter
// advances `tags` by the same amount on every rank — that lockstep is what
// lets the span form run them rank-by-rank from a copied-in allocator, and
// what lets a streaming source reproduce rank r's tags without building
// any other rank.
//
// Round-structured algorithms (barrier, allreduce, allgather, alltoall,
// reduce_scatter) were historically built round-major across ranks; per
// rank the emitted order is still round order, so these loops are the same
// sequences transposed — per-rank output is unchanged.

void barrier_rank(RankProgram& rp, int p, TagAllocator& tags) {
  if (p <= 1) return;
  const int base = tags.allocate(rounds_for(p));
  const int r = rp.rank();
  int round = 0;
  for (int span = 1; span < p; span <<= 1, ++round) {
    const int to = (r + span) % p;
    const int from = (r - span % p + p) % p;
    rp.sendrecv(to, kControlBytes, base + round, from, base + round);
  }
}

void broadcast_rank(RankProgram& rp, int p, int root, std::int64_t bytes,
                    TagAllocator& tags) {
  assert(root >= 0 && root < p);
  if (p <= 1) return;
  const int tag = tags.allocate();
  const int r = rp.rank();
  const int rel = (r - root + p) % p;
  // Receive phase: the lowest set bit of `rel` names the round in which
  // this rank receives its copy.
  int mask = 1;
  while (mask < p) {
    if (rel & mask) {
      const int src = (r - mask + p) % p;
      rp.recv(src, tag);
      break;
    }
    mask <<= 1;
  }
  // Send phase: forward to increasingly distant children.
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < p) {
      const int dst = (r + mask) % p;
      rp.send(dst, bytes, tag);
    }
    mask >>= 1;
  }
}

void reduce_rank(RankProgram& rp, int p, int root, std::int64_t bytes,
                 TagAllocator& tags) {
  assert(root >= 0 && root < p);
  if (p <= 1) return;
  const int tag = tags.allocate();
  const int r = rp.rank();
  const int rel = (r - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if ((rel & mask) == 0) {
      const int src_rel = rel | mask;
      if (src_rel < p) {
        const int src = (src_rel + root) % p;
        rp.recv(src, tag);
      }
    } else {
      const int dst = ((rel & ~mask) + root) % p;
      rp.send(dst, bytes, tag);
      break;
    }
    mask <<= 1;
  }
}

void allreduce_rank(RankProgram& rp, int p, std::int64_t bytes,
                    TagAllocator& tags) {
  if (p <= 1) return;
  if (!is_power_of_two(p)) {
    // MPICH falls back to reduce+bcast for awkward sizes; good enough here
    // (the paper's rank counts are all powers of two).
    reduce_rank(rp, p, /*root=*/0, bytes, tags);
    broadcast_rank(rp, p, /*root=*/0, bytes, tags);
    return;
  }
  const int rounds = rounds_for(p);
  const int base = tags.allocate(rounds);
  int round = 0;
  for (int span = 1; span < p; span <<= 1, ++round) {
    const int partner = rp.rank() ^ span;
    rp.sendrecv(partner, bytes, base + round, partner, base + round);
  }
}

void allgather_rank(RankProgram& rp, int p, std::int64_t bytes_per_rank,
                    TagAllocator& tags) {
  if (p <= 1) return;
  const int base = tags.allocate(p - 1);
  // Ring: in step s every rank passes the block it received in step s-1 to
  // its right neighbour.
  const int r = rp.rank();
  const int to = (r + 1) % p;
  const int from = (r - 1 + p) % p;
  for (int s = 0; s < p - 1; ++s) {
    rp.sendrecv(to, bytes_per_rank, base + s, from, base + s);
  }
}

void alltoall_rank(RankProgram& rp, int p, std::int64_t bytes_per_pair,
                   TagAllocator& tags) {
  if (p <= 1) return;
  const int base = tags.allocate(p - 1);
  const int r = rp.rank();
  if (is_power_of_two(p)) {
    // Pairwise XOR exchange: step s pairs rank with rank^s; every step is a
    // perfect matching, so one frozen node stalls every pair it joins.
    for (int s = 1; s < p; ++s) {
      const int partner = r ^ s;
      rp.sendrecv(partner, bytes_per_pair, base + s - 1, partner, base + s - 1);
    }
    return;
  }
  for (int s = 1; s < p; ++s) {
    const int to = (r + s) % p;
    const int from = (r - s + p) % p;
    rp.sendrecv(to, bytes_per_pair, base + s - 1, from, base + s - 1);
  }
}

void gather_rank(RankProgram& rp, int p, int root, std::int64_t bytes_per_rank,
                 TagAllocator& tags) {
  assert(root >= 0 && root < p);
  if (p <= 1) return;
  const int tag = tags.allocate();
  const int r = rp.rank();
  const int rel = (r - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if ((rel & mask) == 0) {
      const int src_rel = rel | mask;
      if (src_rel < p) rp.recv((src_rel + root) % p, tag);
    } else {
      // Forward the whole subtree accumulated so far to the parent.
      const int subtree = std::min(mask, p - rel);
      const int parent = ((rel & ~mask) + root) % p;
      rp.send(parent, bytes_per_rank * subtree, tag);
      break;
    }
    mask <<= 1;
  }
}

void scatter_rank(RankProgram& rp, int p, int root, std::int64_t bytes_per_rank,
                  TagAllocator& tags) {
  assert(root >= 0 && root < p);
  if (p <= 1) return;
  const int tag = tags.allocate();
  const int r = rp.rank();
  const int rel = (r - root + p) % p;
  // Receive the subtree payload once (non-root ranks).
  int mask = 1;
  while (mask < p) {
    if (rel & mask) {
      const int src = (r - mask + p) % p;
      rp.recv(src, tag);
      break;
    }
    mask <<= 1;
  }
  // Split downward, farthest child first.
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < p) {
      const int subtree = std::min(mask, p - rel - mask);
      rp.send((r + mask) % p, bytes_per_rank * subtree, tag);
    }
    mask >>= 1;
  }
}

void reduce_scatter_rank(RankProgram& rp, int p, std::int64_t bytes_per_rank,
                         TagAllocator& tags) {
  if (p <= 1) return;
  if (!is_power_of_two(p)) {
    reduce_rank(rp, p, /*root=*/0, bytes_per_rank * p, tags);
    scatter_rank(rp, p, /*root=*/0, bytes_per_rank, tags);
    return;
  }
  // Recursive halving: each round exchanges the half of the vector the
  // partner's side is responsible for; payload halves every round.
  int rounds = 0;
  for (int span = p / 2; span >= 1; span /= 2) ++rounds;
  const int base = tags.allocate(rounds);
  int round = 0;
  for (int half = p / 2; half >= 1; half /= 2, ++round) {
    const std::int64_t bytes = bytes_per_rank * half;
    const int partner = rp.rank() ^ half;
    rp.sendrecv(partner, bytes, base + round, partner, base + round);
  }
}

void scan_rank(RankProgram& rp, int p, std::int64_t bytes, TagAllocator& tags) {
  if (p <= 1) return;
  const int tag = tags.allocate();
  const int r = rp.rank();
  if (r > 0) rp.recv(r - 1, tag);
  if (r < p - 1) rp.send(r + 1, bytes, tag);
}

void alltoall_nonblocking_rank(RankProgram& rp, int p,
                               std::int64_t bytes_per_pair,
                               TagAllocator& tags) {
  if (p <= 1) return;
  const int base = tags.allocate(p);
  const int r = rp.rank();
  // Arena-backed (when a Scope is active) so the list is adopted by the
  // WaitAll action without a copy.
  std::pmr::vector<int> handles{ActionArena::current()};
  handles.reserve(static_cast<std::size_t>(2 * (p - 1)));
  // Post every receive first (pre-posted matches avoid unexpected-queue
  // copies in real MPI; here it exercises the posted-queue path).
  for (int peer = 0; peer < p; ++peer) {
    if (peer == r) continue;
    const int handle = 2 * peer;
    rp.irecv(peer, base + peer, handle);  // tag keyed by the sender
    handles.push_back(handle);
  }
  for (int peer = 0; peer < p; ++peer) {
    if (peer == r) continue;
    const int handle = 2 * peer + 1;
    rp.isend(peer, bytes_per_pair, base + r, handle);
    handles.push_back(handle);
  }
  rp.waitall(std::move(handles));
}

/// Span driver: run the per-rank emitter for every rank from the identical
/// copied-in allocator state, then publish the (lockstep) advanced state.
/// An empty span leaves `tags` untouched, exactly like the old early-outs.
template <typename Emit>
void for_each_rank(std::span<RankProgram> ranks, TagAllocator& tags,
                   Emit&& emit) {
  const int p = static_cast<int>(ranks.size());
  const TagAllocator start = tags;
  for (auto& rp : ranks) {
    TagAllocator t = start;
    emit(rp, p, t);
    tags = t;
  }
}

}  // namespace

// --- Span forms ------------------------------------------------------------

void barrier(std::span<RankProgram> ranks, TagAllocator& tags) {
  for_each_rank(ranks, tags, [](RankProgram& rp, int p, TagAllocator& t) {
    barrier_rank(rp, p, t);
  });
}

void broadcast(std::span<RankProgram> ranks, int root, std::int64_t bytes,
               TagAllocator& tags) {
  for_each_rank(ranks, tags, [&](RankProgram& rp, int p, TagAllocator& t) {
    broadcast_rank(rp, p, root, bytes, t);
  });
}

void reduce(std::span<RankProgram> ranks, int root, std::int64_t bytes,
            TagAllocator& tags) {
  for_each_rank(ranks, tags, [&](RankProgram& rp, int p, TagAllocator& t) {
    reduce_rank(rp, p, root, bytes, t);
  });
}

void allreduce(std::span<RankProgram> ranks, std::int64_t bytes,
               TagAllocator& tags) {
  for_each_rank(ranks, tags, [&](RankProgram& rp, int p, TagAllocator& t) {
    allreduce_rank(rp, p, bytes, t);
  });
}

void allgather(std::span<RankProgram> ranks, std::int64_t bytes_per_rank,
               TagAllocator& tags) {
  for_each_rank(ranks, tags, [&](RankProgram& rp, int p, TagAllocator& t) {
    allgather_rank(rp, p, bytes_per_rank, t);
  });
}

void alltoall(std::span<RankProgram> ranks, std::int64_t bytes_per_pair,
              TagAllocator& tags) {
  for_each_rank(ranks, tags, [&](RankProgram& rp, int p, TagAllocator& t) {
    alltoall_rank(rp, p, bytes_per_pair, t);
  });
}

void gather(std::span<RankProgram> ranks, int root, std::int64_t bytes_per_rank,
            TagAllocator& tags) {
  for_each_rank(ranks, tags, [&](RankProgram& rp, int p, TagAllocator& t) {
    gather_rank(rp, p, root, bytes_per_rank, t);
  });
}

void scatter(std::span<RankProgram> ranks, int root, std::int64_t bytes_per_rank,
             TagAllocator& tags) {
  for_each_rank(ranks, tags, [&](RankProgram& rp, int p, TagAllocator& t) {
    scatter_rank(rp, p, root, bytes_per_rank, t);
  });
}

void reduce_scatter(std::span<RankProgram> ranks, std::int64_t bytes_per_rank,
                    TagAllocator& tags) {
  for_each_rank(ranks, tags, [&](RankProgram& rp, int p, TagAllocator& t) {
    reduce_scatter_rank(rp, p, bytes_per_rank, t);
  });
}

void scan(std::span<RankProgram> ranks, std::int64_t bytes, TagAllocator& tags) {
  for_each_rank(ranks, tags, [&](RankProgram& rp, int p, TagAllocator& t) {
    scan_rank(rp, p, bytes, t);
  });
}

void alltoall_nonblocking(std::span<RankProgram> ranks,
                          std::int64_t bytes_per_pair, TagAllocator& tags) {
  for_each_rank(ranks, tags, [&](RankProgram& rp, int p, TagAllocator& t) {
    alltoall_nonblocking_rank(rp, p, bytes_per_pair, t);
  });
}

// --- Per-rank forms ---------------------------------------------------------

void barrier(RankProgram& rp, TagAllocator& tags) {
  barrier_rank(rp, rp.nranks(), tags);
}

void broadcast(RankProgram& rp, int root, std::int64_t bytes,
               TagAllocator& tags) {
  broadcast_rank(rp, rp.nranks(), root, bytes, tags);
}

void reduce(RankProgram& rp, int root, std::int64_t bytes, TagAllocator& tags) {
  reduce_rank(rp, rp.nranks(), root, bytes, tags);
}

void allreduce(RankProgram& rp, std::int64_t bytes, TagAllocator& tags) {
  allreduce_rank(rp, rp.nranks(), bytes, tags);
}

void allgather(RankProgram& rp, std::int64_t bytes_per_rank,
               TagAllocator& tags) {
  allgather_rank(rp, rp.nranks(), bytes_per_rank, tags);
}

void alltoall(RankProgram& rp, std::int64_t bytes_per_pair,
              TagAllocator& tags) {
  alltoall_rank(rp, rp.nranks(), bytes_per_pair, tags);
}

void gather(RankProgram& rp, int root, std::int64_t bytes_per_rank,
            TagAllocator& tags) {
  gather_rank(rp, rp.nranks(), root, bytes_per_rank, tags);
}

void scatter(RankProgram& rp, int root, std::int64_t bytes_per_rank,
             TagAllocator& tags) {
  scatter_rank(rp, rp.nranks(), root, bytes_per_rank, tags);
}

void reduce_scatter(RankProgram& rp, std::int64_t bytes_per_rank,
                    TagAllocator& tags) {
  reduce_scatter_rank(rp, rp.nranks(), bytes_per_rank, tags);
}

void scan(RankProgram& rp, std::int64_t bytes, TagAllocator& tags) {
  scan_rank(rp, rp.nranks(), bytes, tags);
}

void alltoall_nonblocking(RankProgram& rp, std::int64_t bytes_per_pair,
                          TagAllocator& tags) {
  alltoall_nonblocking_rank(rp, rp.nranks(), bytes_per_pair, tags);
}

}  // namespace smilab
