#include "smilab/mpi/collectives.h"

#include <algorithm>
#include <cassert>

namespace smilab {

namespace {
constexpr std::int64_t kControlBytes = 8;  // barrier token payload

int rounds_for(int p) {
  int rounds = 0;
  for (int span = 1; span < p; span <<= 1) ++rounds;
  return rounds;
}
}  // namespace

void barrier(std::span<RankProgram> ranks, TagAllocator& tags) {
  const int p = static_cast<int>(ranks.size());
  if (p <= 1) return;
  const int base = tags.allocate(rounds_for(p));
  int round = 0;
  for (int span = 1; span < p; span <<= 1, ++round) {
    for (auto& rp : ranks) {
      const int r = rp.rank();
      const int to = (r + span) % p;
      const int from = (r - span % p + p) % p;
      rp.sendrecv(to, kControlBytes, base + round, from, base + round);
    }
  }
}

void broadcast(std::span<RankProgram> ranks, int root, std::int64_t bytes,
               TagAllocator& tags) {
  const int p = static_cast<int>(ranks.size());
  assert(root >= 0 && root < p);
  if (p <= 1) return;
  const int tag = tags.allocate();
  for (auto& rp : ranks) {
    const int r = rp.rank();
    const int rel = (r - root + p) % p;
    // Receive phase: the lowest set bit of `rel` names the round in which
    // this rank receives its copy.
    int mask = 1;
    while (mask < p) {
      if (rel & mask) {
        const int src = (r - mask + p) % p;
        rp.recv(src, tag);
        break;
      }
      mask <<= 1;
    }
    // Send phase: forward to increasingly distant children.
    mask >>= 1;
    while (mask > 0) {
      if (rel + mask < p) {
        const int dst = (r + mask) % p;
        rp.send(dst, bytes, tag);
      }
      mask >>= 1;
    }
  }
}

void reduce(std::span<RankProgram> ranks, int root, std::int64_t bytes,
            TagAllocator& tags) {
  const int p = static_cast<int>(ranks.size());
  assert(root >= 0 && root < p);
  if (p <= 1) return;
  const int tag = tags.allocate();
  for (auto& rp : ranks) {
    const int r = rp.rank();
    const int rel = (r - root + p) % p;
    int mask = 1;
    while (mask < p) {
      if ((rel & mask) == 0) {
        const int src_rel = rel | mask;
        if (src_rel < p) {
          const int src = (src_rel + root) % p;
          rp.recv(src, tag);
        }
      } else {
        const int dst = ((rel & ~mask) + root) % p;
        rp.send(dst, bytes, tag);
        break;
      }
      mask <<= 1;
    }
  }
}

void allreduce(std::span<RankProgram> ranks, std::int64_t bytes,
               TagAllocator& tags) {
  const int p = static_cast<int>(ranks.size());
  if (p <= 1) return;
  if (!is_power_of_two(p)) {
    // MPICH falls back to reduce+bcast for awkward sizes; good enough here
    // (the paper's rank counts are all powers of two).
    reduce(ranks, /*root=*/0, bytes, tags);
    broadcast(ranks, /*root=*/0, bytes, tags);
    return;
  }
  const int rounds = rounds_for(p);
  const int base = tags.allocate(rounds);
  int round = 0;
  for (int span = 1; span < p; span <<= 1, ++round) {
    for (auto& rp : ranks) {
      const int partner = rp.rank() ^ span;
      rp.sendrecv(partner, bytes, base + round, partner, base + round);
    }
  }
}

void allgather(std::span<RankProgram> ranks, std::int64_t bytes_per_rank,
               TagAllocator& tags) {
  const int p = static_cast<int>(ranks.size());
  if (p <= 1) return;
  const int base = tags.allocate(p - 1);
  // Ring: in step s every rank passes the block it received in step s-1 to
  // its right neighbour.
  for (int s = 0; s < p - 1; ++s) {
    for (auto& rp : ranks) {
      const int r = rp.rank();
      const int to = (r + 1) % p;
      const int from = (r - 1 + p) % p;
      rp.sendrecv(to, bytes_per_rank, base + s, from, base + s);
    }
  }
}

void alltoall(std::span<RankProgram> ranks, std::int64_t bytes_per_pair,
              TagAllocator& tags) {
  const int p = static_cast<int>(ranks.size());
  if (p <= 1) return;
  const int base = tags.allocate(p - 1);
  if (is_power_of_two(p)) {
    // Pairwise XOR exchange: step s pairs rank with rank^s; every step is a
    // perfect matching, so one frozen node stalls every pair it joins.
    for (int s = 1; s < p; ++s) {
      for (auto& rp : ranks) {
        const int partner = rp.rank() ^ s;
        rp.sendrecv(partner, bytes_per_pair, base + s - 1, partner,
                    base + s - 1);
      }
    }
    return;
  }
  for (int s = 1; s < p; ++s) {
    for (auto& rp : ranks) {
      const int r = rp.rank();
      const int to = (r + s) % p;
      const int from = (r - s + p) % p;
      rp.sendrecv(to, bytes_per_pair, base + s - 1, from, base + s - 1);
    }
  }
}

void gather(std::span<RankProgram> ranks, int root, std::int64_t bytes_per_rank,
            TagAllocator& tags) {
  const int p = static_cast<int>(ranks.size());
  assert(root >= 0 && root < p);
  if (p <= 1) return;
  const int tag = tags.allocate();
  for (auto& rp : ranks) {
    const int r = rp.rank();
    const int rel = (r - root + p) % p;
    int mask = 1;
    while (mask < p) {
      if ((rel & mask) == 0) {
        const int src_rel = rel | mask;
        if (src_rel < p) rp.recv((src_rel + root) % p, tag);
      } else {
        // Forward the whole subtree accumulated so far to the parent.
        const int subtree = std::min(mask, p - rel);
        const int parent = ((rel & ~mask) + root) % p;
        rp.send(parent, bytes_per_rank * subtree, tag);
        break;
      }
      mask <<= 1;
    }
  }
}

void scatter(std::span<RankProgram> ranks, int root, std::int64_t bytes_per_rank,
             TagAllocator& tags) {
  const int p = static_cast<int>(ranks.size());
  assert(root >= 0 && root < p);
  if (p <= 1) return;
  const int tag = tags.allocate();
  for (auto& rp : ranks) {
    const int r = rp.rank();
    const int rel = (r - root + p) % p;
    // Receive the subtree payload once (non-root ranks).
    int mask = 1;
    while (mask < p) {
      if (rel & mask) {
        const int src = (r - mask + p) % p;
        rp.recv(src, tag);
        break;
      }
      mask <<= 1;
    }
    // Split downward, farthest child first.
    mask >>= 1;
    while (mask > 0) {
      if (rel + mask < p) {
        const int subtree = std::min(mask, p - rel - mask);
        rp.send((r + mask) % p, bytes_per_rank * subtree, tag);
      }
      mask >>= 1;
    }
  }
}

void reduce_scatter(std::span<RankProgram> ranks, std::int64_t bytes_per_rank,
                    TagAllocator& tags) {
  const int p = static_cast<int>(ranks.size());
  if (p <= 1) return;
  if (!is_power_of_two(p)) {
    reduce(ranks, /*root=*/0, bytes_per_rank * p, tags);
    scatter(ranks, /*root=*/0, bytes_per_rank, tags);
    return;
  }
  // Recursive halving: each round exchanges the half of the vector the
  // partner's side is responsible for; payload halves every round.
  int rounds = 0;
  for (int span = p / 2; span >= 1; span /= 2) ++rounds;
  const int base = tags.allocate(rounds);
  int round = 0;
  for (int half = p / 2; half >= 1; half /= 2, ++round) {
    const std::int64_t bytes = bytes_per_rank * half;
    for (auto& rp : ranks) {
      const int partner = rp.rank() ^ half;
      rp.sendrecv(partner, bytes, base + round, partner, base + round);
    }
  }
}

void alltoall_nonblocking(std::span<RankProgram> ranks,
                          std::int64_t bytes_per_pair, TagAllocator& tags) {
  const int p = static_cast<int>(ranks.size());
  if (p <= 1) return;
  const int base = tags.allocate(p);
  for (auto& rp : ranks) {
    const int r = rp.rank();
    // Arena-backed (when a Scope is active) so the list is adopted by the
    // WaitAll action without a copy.
    std::pmr::vector<int> handles{ActionArena::current()};
    handles.reserve(static_cast<std::size_t>(2 * (p - 1)));
    // Post every receive first (pre-posted matches avoid unexpected-queue
    // copies in real MPI; here it exercises the posted-queue path).
    for (int peer = 0; peer < p; ++peer) {
      if (peer == r) continue;
      const int handle = 2 * peer;
      rp.irecv(peer, base + peer, handle);  // tag keyed by the sender
      handles.push_back(handle);
    }
    for (int peer = 0; peer < p; ++peer) {
      if (peer == r) continue;
      const int handle = 2 * peer + 1;
      rp.isend(peer, bytes_per_pair, base + r, handle);
      handles.push_back(handle);
    }
    rp.waitall(std::move(handles));
  }
}

void scan(std::span<RankProgram> ranks, std::int64_t bytes, TagAllocator& tags) {
  const int p = static_cast<int>(ranks.size());
  if (p <= 1) return;
  const int tag = tags.allocate();
  for (auto& rp : ranks) {
    const int r = rp.rank();
    if (r > 0) rp.recv(r - 1, tag);
    if (r < p - 1) rp.send(r + 1, bytes, tag);
  }
}

}  // namespace smilab
