// MPI job launcher: spawn one task per rank onto the cluster and run to
// completion, reporting per-rank stats and the job's wall time.
#pragma once

#include <string>
#include <vector>

#include "smilab/mpi/program.h"
#include "smilab/mpi/streaming.h"
#include "smilab/sim/system.h"

namespace smilab {

/// How a job's rank programs are held in memory. Retained is the historical
/// bit-pinned path (whole program materialized per rank); streaming holds
/// one chunk per rank (mpi/streaming.h) and produces identical statistics.
enum class TraceMode {
  kRetained,
  kStreaming,
};

[[nodiscard]] constexpr const char* to_string(TraceMode mode) {
  return mode == TraceMode::kRetained ? "retained" : "streaming";
}

struct MpiJobResult {
  SimDuration elapsed;               ///< start -> last rank finish
  GroupId group;
  std::vector<TaskId> rank_tasks;
  std::vector<TaskStats> rank_stats;
  /// Message pool / ack-router usage at job completion (sim/transport.h);
  /// pool_live == 0 here means the transport drained fully.
  TransportStats transport;

  [[nodiscard]] SimDuration total_smm_stolen() const {
    SimDuration total{};
    for (const auto& s : rank_stats) total += s.smm_stolen_time;
    return total;
  }
};

/// Spawn `programs[r]` as rank r on node `placement[r]` and run the system
/// until every task (including unrelated ones) finishes.
MpiJobResult run_mpi_job(System& sys, std::vector<RankProgram> programs,
                         const std::vector<int>& placement,
                         const WorkloadProfile& profile,
                         const std::string& job_name = "mpi");

/// Outcome of try_run_mpi_job. When `run.ok()` the job-level fields are
/// fully populated; otherwise `run.diagnosis` explains what every stuck
/// rank was blocked on, `job.rank_stats` still carries per-rank accounting
/// up to the stall (elapsed covers start -> diagnosis time).
struct MpiJobRunResult {
  RunResult run;
  MpiJobResult job;

  [[nodiscard]] bool ok() const { return run.ok(); }
};

/// Non-throwing variant of run_mpi_job for fault-injection experiments: a
/// deadlocked, hung or timed-out run returns the structured diagnosis
/// instead of propagating SimulationError.
MpiJobRunResult try_run_mpi_job(System& sys, std::vector<RankProgram> programs,
                                const std::vector<int>& placement,
                                const WorkloadProfile& profile,
                                const std::string& job_name = "mpi");

/// Streaming launcher: spawn `nranks` ranks whose actions come from
/// `sources(rank)` (typically ChunkedProgramSources) instead of
/// materialized programs. Scheduling, placement and stats collection are
/// identical to run_mpi_job; only program residency differs.
MpiJobResult run_mpi_job_streaming(System& sys, int nranks,
                                   const RankSourceFactory& sources,
                                   const std::vector<int>& placement,
                                   const WorkloadProfile& profile,
                                   const std::string& job_name = "mpi");

/// Non-throwing streaming variant (fault-injection experiments).
MpiJobRunResult try_run_mpi_job_streaming(System& sys, int nranks,
                                          const RankSourceFactory& sources,
                                          const std::vector<int>& placement,
                                          const WorkloadProfile& profile,
                                          const std::string& job_name = "mpi");

}  // namespace smilab
