// Simulated threading substrate: a work-queue / thread-pool facade over
// System, matching how the paper's Convolve actually runs ("splitting R up
// into blocks and spawning a thread for each", bounded to 24 scheduled
// simultaneously) and how most multithreaded kernels are structured.
//
// `run_work_queue` spawns `workers` tasks that pull work items (compute
// durations, optionally tagged with a profile) from a shared queue until it
// drains — so load balances dynamically even when items are uneven or a
// worker is slowed by an SMI or an HTT sibling.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "smilab/cpu/workload_profile.h"
#include "smilab/sim/system.h"

namespace smilab {

struct WorkQueueSpec {
  std::string name = "worker";
  int node = 0;
  int workers = 1;
  WorkloadProfile profile;
  /// One entry per work item: compute duration at nominal speed.
  std::vector<SimDuration> items;
  /// Uniform tail of the queue: `uniform_count` additional items of
  /// `uniform_item` each, drawn after any explicit `items`. Equivalent to
  /// appending that many copies, but O(1) memory regardless of item count
  /// (even_items at convolve scale materializes tens of thousands of
  /// identical entries per cell).
  std::int64_t uniform_count = 0;
  SimDuration uniform_item{};
};

struct WorkQueueResult {
  SimTime finished;               ///< last worker's completion
  std::vector<TaskId> workers;
  std::vector<int> items_per_worker;

  [[nodiscard]] SimDuration elapsed(SimTime start = SimTime::zero()) const {
    return finished - start;
  }
};

/// Spawn the pool into `sys` and run the system to completion of all tasks.
WorkQueueResult run_work_queue(System& sys, WorkQueueSpec spec);

/// Convenience: split `total` work into `items` equal chunks.
[[nodiscard]] std::vector<SimDuration> even_items(SimDuration total, int items);

/// Streaming analogue of even_items: the same split expressed as a uniform
/// tail, without materializing the vector. Workers pull the identical
/// durations in the identical order, so results match even_items exactly.
void set_even_items(WorkQueueSpec& spec, SimDuration total, int items);

}  // namespace smilab
