// Simulated threading substrate: a work-queue / thread-pool facade over
// System, matching how the paper's Convolve actually runs ("splitting R up
// into blocks and spawning a thread for each", bounded to 24 scheduled
// simultaneously) and how most multithreaded kernels are structured.
//
// `run_work_queue` spawns `workers` tasks that pull work items (compute
// durations, optionally tagged with a profile) from a shared queue until it
// drains — so load balances dynamically even when items are uneven or a
// worker is slowed by an SMI or an HTT sibling.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "smilab/cpu/workload_profile.h"
#include "smilab/sim/system.h"

namespace smilab {

struct WorkQueueSpec {
  std::string name = "worker";
  int node = 0;
  int workers = 1;
  WorkloadProfile profile;
  /// One entry per work item: compute duration at nominal speed.
  std::vector<SimDuration> items;
};

struct WorkQueueResult {
  SimTime finished;               ///< last worker's completion
  std::vector<TaskId> workers;
  std::vector<int> items_per_worker;

  [[nodiscard]] SimDuration elapsed(SimTime start = SimTime::zero()) const {
    return finished - start;
  }
};

/// Spawn the pool into `sys` and run the system to completion of all tasks.
WorkQueueResult run_work_queue(System& sys, WorkQueueSpec spec);

/// Convenience: split `total` work into `items` equal chunks.
[[nodiscard]] std::vector<SimDuration> even_items(SimDuration total, int items);

}  // namespace smilab
