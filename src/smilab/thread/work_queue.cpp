#include "smilab/thread/work_queue.h"

#include <cassert>
#include <memory>

namespace smilab {

namespace {

/// Shared pull-queue state: workers take the next index atomically (in
/// simulation terms: at action-fetch time, which is serialized by the
/// engine, so a plain counter is exact).
struct QueueState {
  std::vector<SimDuration> items;
  std::int64_t uniform_count = 0;
  SimDuration uniform_item{};
  std::int64_t next = 0;

  [[nodiscard]] std::int64_t total() const {
    return static_cast<std::int64_t>(items.size()) + uniform_count;
  }
  [[nodiscard]] SimDuration item(std::int64_t i) const {
    return i < static_cast<std::int64_t>(items.size())
               ? items[static_cast<std::size_t>(i)]
               : uniform_item;
  }
};

}  // namespace

WorkQueueResult run_work_queue(System& sys, WorkQueueSpec spec) {
  assert(spec.workers >= 1);
  auto queue = std::make_shared<QueueState>();
  queue->items = std::move(spec.items);
  queue->uniform_count = spec.uniform_count;
  queue->uniform_item = spec.uniform_item;

  WorkQueueResult result;
  result.items_per_worker.assign(static_cast<std::size_t>(spec.workers), 0);
  auto counts = std::make_shared<std::vector<int>>(
      static_cast<std::size_t>(spec.workers), 0);

  for (int w = 0; w < spec.workers; ++w) {
    TaskSpec task;
    task.name = spec.name + "." + std::to_string(w);
    task.node = spec.node;
    task.profile = spec.profile;
    task.wait_policy = WaitPolicy::kBlock;
    task.actions = std::make_unique<GeneratorActions>(
        [queue, counts, w]() -> std::optional<Action> {
          if (queue->next >= queue->total()) return std::nullopt;
          const SimDuration work = queue->item(queue->next++);
          (*counts)[static_cast<std::size_t>(w)] += 1;
          return Action{Compute{work}};
        });
    result.workers.push_back(sys.spawn(std::move(task)));
  }
  sys.run();
  result.finished = sys.last_finish_time();
  result.items_per_worker = *counts;
  return result;
}

std::vector<SimDuration> even_items(SimDuration total, int items) {
  assert(items >= 1);
  return std::vector<SimDuration>(static_cast<std::size_t>(items),
                                  total / items);
}

void set_even_items(WorkQueueSpec& spec, SimDuration total, int items) {
  assert(items >= 1);
  spec.uniform_count = items;
  spec.uniform_item = total / items;
}

}  // namespace smilab
