// Network timing model: LogGP-flavoured parameters plus cost helpers.
//
// The actual per-node NIC queueing lives in the System as event-driven
// egress/ingress servers so that transfers PAUSE while a node is in SMM —
// on the paper's TCP/GigE cluster a frozen host neither transmits nor ACKs,
// so the wire stalls with the CPUs. This coupling is what lets long SMIs
// perturb bandwidth-bound MPI phases (FT's all-to-all) the way Table 3
// shows; a closed-form delivery model would let backlogs drain for free
// during the freeze.
//
// Cost structure of a message src -> dst of B bytes:
//   CPU (sender):  send_overhead + B / cpu_copy_bw        (task work)
//   wire (inter):  egress server: per_message_wire_overhead + B / bandwidth
//                  ingress server: same, at the destination
//                  + latency (propagation; SMM-immune)
//   wire (intra):  intra_latency + B / intra_bandwidth    (shared memory)
//   CPU (recv):    recv_overhead + B / cpu_copy_bw        (task work)
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "smilab/time/sim_time.h"

namespace smilab {

struct NetworkParams {
  // Wire-level (inter-node).
  SimDuration latency = microseconds(55);          ///< one-way propagation
  double bandwidth_bytes_per_s = 117e6;            ///< ~GigE payload rate
  SimDuration per_message_wire_overhead = microseconds(6);

  // Intra-node (shared-memory transport).
  SimDuration intra_latency = microseconds(1);
  double intra_bandwidth_bytes_per_s = 3.0e9;

  // CPU-side costs, charged as task work.
  SimDuration send_overhead = microseconds(3);     ///< LogGP o (send)
  SimDuration recv_overhead = microseconds(3);     ///< LogGP o (recv)
  double cpu_copy_bytes_per_s = 2.5e9;             ///< memcpy into/out of MPI

  /// Messages larger than this use the rendezvous protocol: the sender
  /// blocks until the receiver's completion acknowledgement.
  std::int64_t rendezvous_threshold = 64 * 1024;

  /// Extra outage added to an in-flight transfer when a NIC resumes after
  /// an SMM freeze, sampled uniform in [0, scale * stall]. Models TCP loss
  /// recovery: the longer the host was frozen, the more timers fire and the
  /// further the congestion window collapses, so a ~105 ms freeze costs up
  /// to another ~stall of degraded throughput while a 1-3 ms blip costs
  /// nothing noticeable. Zero disables the effect.
  double tcp_recovery_scale = 0.0;

  // Retransmission state machine (the generalization of the one-shot
  // recovery outage above). Fires only when a LinkFaultModel drops a
  // delivery attempt: the lost attempt is retried retrans_timeout after the
  // drop, doubling (retrans_backoff) per consecutive loss, RFC 6298-style.
  // After max_retries consecutive losses the transport declares the message
  // undeliverable (a dead link) and abandons it; the blocked receiver then
  // shows up in the run diagnosis.
  SimDuration retrans_timeout = milliseconds(200);  ///< initial RTO
  double retrans_backoff = 2.0;                     ///< RTO growth per loss
  int max_retries = 10;                             ///< attempts before giving up

  /// The Wyeast cluster interconnect fitted to the paper's SMM-0 columns
  /// (see apps/nas/calibration notes in DESIGN.md).
  static NetworkParams wyeast();

  /// Memberwise equality (gates NetworkModel::warm_from: a memo may only
  /// be adopted between identically parameterized models).
  [[nodiscard]] bool operator==(const NetworkParams&) const = default;
};

/// Pure cost calculator over NetworkParams (no NIC queue state; that is
/// owned by the System's event-driven servers).
///
/// Message-size costs are memoized in a set-associative cache: MPI traffic
/// reuses a handful of sizes (per-collective payloads, the ack size)
/// millions of times per run, and each cost involves a double division.
/// Sets are indexed by Fibonacci-hashed size with kWays lines each and
/// round-robin fill, so the power-of-two size clusters that thrash a
/// direct-mapped table coexist within a set. The set count scales with the
/// simulated rank count (resize_cache; the System sizes it from
/// node_count) because collectives over p ranks touch O(log p) distinct
/// segment sizes — at 64k ranks a fixed 64-line table misses its way
/// through every reduction.
///
/// Each line holds exactly the expressions the uncached code used — same
/// operations, same order — so memoized results are bit-identical whatever
/// the geometry, and the goldens cannot move. The cache is `mutable`
/// per-model, never shared across threads (each System owns its model, and
/// sweep workers each own their Systems).
class NetworkModel {
 public:
  explicit NetworkModel(NetworkParams params) : params_(params) {
    resize_cache(kDefaultLines);
  }

  [[nodiscard]] const NetworkParams& params() const { return params_; }

  /// Re-size the memo to hold about `line_hint` cost lines (rounded up to
  /// a power-of-two set count, floor kDefaultLines). Drops every cached
  /// line — values are pure functions of (params, bytes), so refills are
  /// bit-identical and resizing is always safe.
  void resize_cache(std::size_t line_hint);

  /// Cost lines the memo can hold (sets × ways); for tests and reports.
  [[nodiscard]] std::size_t cache_lines() const {
    return sets_.size() * kWays;
  }

  /// Service time of one message at one NIC stage (egress or ingress).
  [[nodiscard]] SimDuration wire_xmit(std::int64_t bytes) const {
    return line(bytes).wire_xmit;
  }

  /// End-to-end transfer time of an intra-node (shared memory) message.
  [[nodiscard]] SimDuration intra_transfer(std::int64_t bytes) const {
    return line(bytes).intra_transfer;
  }

  [[nodiscard]] SimDuration latency() const { return params_.latency; }

  /// CPU work the sender performs to hand `bytes` to the transport.
  [[nodiscard]] SimDuration send_cpu_cost(std::int64_t bytes) const {
    return line(bytes).send_cpu;
  }
  /// CPU work the receiver performs to drain a matched message.
  [[nodiscard]] SimDuration recv_cpu_cost(std::int64_t bytes) const {
    return line(bytes).recv_cpu;
  }

  [[nodiscard]] bool is_rendezvous(std::int64_t bytes) const {
    return bytes > params_.rendezvous_threshold;
  }

  /// Adopt `other`'s already-filled cost lines when the parameters match
  /// exactly (no-op otherwise). Bit-inert by construction: every line is a
  /// pure function of (params, bytes), so a pre-warmed line holds exactly
  /// the values this model would compute on first miss. Works across
  /// geometries: matching shapes copy wholesale, otherwise the donor's
  /// lines are re-inserted into this model's sets. The serve daemon's warm
  /// workers carry the memo from one request's System to the next so
  /// repeated message sizes never recompute their division chain.
  void warm_from(const NetworkModel& other);

  static constexpr std::size_t kWays = 4;
  static constexpr std::size_t kDefaultLines = 64;

 private:
  struct CostLine {
    std::int64_t bytes = -1;  // -1: empty (real sizes are >= 0)
    SimDuration wire_xmit{};
    SimDuration intra_transfer{};
    SimDuration send_cpu{};
    SimDuration recv_cpu{};
  };
  struct Set {
    std::array<CostLine, kWays> way{};
    std::uint8_t fill = 0;  ///< round-robin victim cursor (deterministic)
  };

  /// Fetch (fill on miss) the cost line for `bytes`. Defined in
  /// network.cpp so the fill expressions sit next to the calibration data.
  [[nodiscard]] const CostLine& line(std::int64_t bytes) const;

  [[nodiscard]] std::size_t set_of(std::int64_t bytes) const {
    // Fibonacci hashing: message sizes cluster on powers of two, which a
    // plain low-bits index would collide badly.
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(bytes) * 0x9E3779B97F4A7C15ull) >>
        set_shift_);
  }

  NetworkParams params_;
  mutable std::vector<Set> sets_;
  int set_shift_ = 64;  ///< 64 - log2(sets_.size())
};

}  // namespace smilab
