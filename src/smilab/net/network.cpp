#include "smilab/net/network.h"

namespace smilab {

NetworkParams NetworkParams::wyeast() {
  NetworkParams p;
  // The absolute BT/FT baselines in Tables 1/3 imply a heavily contended
  // commodity interconnect: effective point-to-point payload bandwidth well
  // below line rate and tens-of-microseconds latency. These values are the
  // calibration fit; the SMI deltas do not depend on them being exact.
  p.latency = microseconds(60);
  p.bandwidth_bytes_per_s = 85e6;
  p.per_message_wire_overhead = microseconds(10);
  p.intra_latency = microseconds(1);
  p.intra_bandwidth_bytes_per_s = 2.5e9;
  p.send_overhead = microseconds(4);
  p.recv_overhead = microseconds(4);
  p.cpu_copy_bytes_per_s = 2.2e9;
  p.rendezvous_threshold = 64 * 1024;
  // Stall-proportional loss recovery: a 100-110 ms freeze costs up to about
  // as much again in retransmission and congestion-window rebuild on busy
  // flows; millisecond blips are absorbed by the socket buffers.
  p.tcp_recovery_scale = 1.0;
  // Linux-flavoured retransmission behaviour on the GigE fabric: 200 ms
  // minimum RTO, doubling per loss, ~15 retries before the connection is
  // declared dead (net.ipv4.tcp_retries2 territory, truncated — backoff
  // past 10 doublings already exceeds any experiment horizon).
  p.retrans_timeout = milliseconds(200);
  p.retrans_backoff = 2.0;
  p.max_retries = 10;
  return p;
}

void NetworkModel::resize_cache(std::size_t line_hint) {
  std::size_t set_count = kDefaultLines / kWays;
  while (set_count * kWays < line_hint) set_count *= 2;
  sets_.assign(set_count, Set{});
  int log2 = 0;
  while ((std::size_t{1} << log2) < set_count) ++log2;
  set_shift_ = 64 - log2;
}

const NetworkModel::CostLine& NetworkModel::line(std::int64_t bytes) const {
  Set& s = sets_[set_of(bytes)];
  for (CostLine& l : s.way) {
    if (l.bytes == bytes) return l;
  }
  // Miss: round-robin victim within the set. Any deterministic policy
  // works — lines are pure functions of (params, bytes), so an evicted
  // size refills to the bit-identical values on its next miss.
  CostLine& l = s.way[s.fill];
  s.fill = static_cast<std::uint8_t>((s.fill + 1) % kWays);
  // Exactly the pre-memoization expressions: one division plus one
  // addition per cost, in the same order, so cached values are
  // bit-identical to computing on every call.
  const double b = static_cast<double>(bytes);
  l.bytes = bytes;
  l.wire_xmit = params_.per_message_wire_overhead +
                seconds_d(b / params_.bandwidth_bytes_per_s);
  l.intra_transfer = params_.intra_latency +
                     seconds_d(b / params_.intra_bandwidth_bytes_per_s);
  l.send_cpu = params_.send_overhead +
               seconds_d(b / params_.cpu_copy_bytes_per_s);
  l.recv_cpu = params_.recv_overhead +
               seconds_d(b / params_.cpu_copy_bytes_per_s);
  return l;
}

void NetworkModel::warm_from(const NetworkModel& other) {
  if (params_ != other.params_) return;
  if (sets_.size() == other.sets_.size()) {
    sets_ = other.sets_;
    return;
  }
  // Geometry mismatch: re-home the donor's filled lines into our sets.
  // Values carry over verbatim; only the placement is recomputed.
  for (const Set& src : other.sets_) {
    for (const CostLine& l : src.way) {
      if (l.bytes < 0) continue;
      Set& dst = sets_[set_of(l.bytes)];
      bool present = false;
      for (const CostLine& have : dst.way) present |= have.bytes == l.bytes;
      if (present) continue;
      dst.way[dst.fill] = l;
      dst.fill = static_cast<std::uint8_t>((dst.fill + 1) % kWays);
    }
  }
}

}  // namespace smilab
