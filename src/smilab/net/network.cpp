#include "smilab/net/network.h"

namespace smilab {

NetworkParams NetworkParams::wyeast() {
  NetworkParams p;
  // The absolute BT/FT baselines in Tables 1/3 imply a heavily contended
  // commodity interconnect: effective point-to-point payload bandwidth well
  // below line rate and tens-of-microseconds latency. These values are the
  // calibration fit; the SMI deltas do not depend on them being exact.
  p.latency = microseconds(60);
  p.bandwidth_bytes_per_s = 85e6;
  p.per_message_wire_overhead = microseconds(10);
  p.intra_latency = microseconds(1);
  p.intra_bandwidth_bytes_per_s = 2.5e9;
  p.send_overhead = microseconds(4);
  p.recv_overhead = microseconds(4);
  p.cpu_copy_bytes_per_s = 2.2e9;
  p.rendezvous_threshold = 64 * 1024;
  // Stall-proportional loss recovery: a 100-110 ms freeze costs up to about
  // as much again in retransmission and congestion-window rebuild on busy
  // flows; millisecond blips are absorbed by the socket buffers.
  p.tcp_recovery_scale = 1.0;
  // Linux-flavoured retransmission behaviour on the GigE fabric: 200 ms
  // minimum RTO, doubling per loss, ~15 retries before the connection is
  // declared dead (net.ipv4.tcp_retries2 territory, truncated — backoff
  // past 10 doublings already exceeds any experiment horizon).
  p.retrans_timeout = milliseconds(200);
  p.retrans_backoff = 2.0;
  p.max_retries = 10;
  return p;
}

}  // namespace smilab
