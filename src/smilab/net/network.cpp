#include "smilab/net/network.h"

namespace smilab {

NetworkParams NetworkParams::wyeast() {
  NetworkParams p;
  // The absolute BT/FT baselines in Tables 1/3 imply a heavily contended
  // commodity interconnect: effective point-to-point payload bandwidth well
  // below line rate and tens-of-microseconds latency. These values are the
  // calibration fit; the SMI deltas do not depend on them being exact.
  p.latency = microseconds(60);
  p.bandwidth_bytes_per_s = 85e6;
  p.per_message_wire_overhead = microseconds(10);
  p.intra_latency = microseconds(1);
  p.intra_bandwidth_bytes_per_s = 2.5e9;
  p.send_overhead = microseconds(4);
  p.recv_overhead = microseconds(4);
  p.cpu_copy_bytes_per_s = 2.2e9;
  p.rendezvous_threshold = 64 * 1024;
  // Stall-proportional loss recovery: a 100-110 ms freeze costs up to about
  // as much again in retransmission and congestion-window rebuild on busy
  // flows; millisecond blips are absorbed by the socket buffers.
  p.tcp_recovery_scale = 1.0;
  // Linux-flavoured retransmission behaviour on the GigE fabric: 200 ms
  // minimum RTO, doubling per loss, ~15 retries before the connection is
  // declared dead (net.ipv4.tcp_retries2 territory, truncated — backoff
  // past 10 doublings already exceeds any experiment horizon).
  p.retrans_timeout = milliseconds(200);
  p.retrans_backoff = 2.0;
  p.max_retries = 10;
  return p;
}

const NetworkModel::CostLine& NetworkModel::line(std::int64_t bytes) const {
  // Fibonacci hashing: message sizes cluster on powers of two, which a
  // plain low-bits index would collide badly.
  const std::size_t slot = static_cast<std::size_t>(
      (static_cast<std::uint64_t>(bytes) * 0x9E3779B97F4A7C15ull) >>
      (64 - 6));
  static_assert(kCostLines == std::size_t{1} << 6);
  CostLine& l = cost_cache_[slot];
  if (l.bytes != bytes) {
    // Exactly the pre-memoization expressions: one division plus one
    // addition per cost, in the same order, so cached values are
    // bit-identical to computing on every call.
    const double b = static_cast<double>(bytes);
    l.bytes = bytes;
    l.wire_xmit = params_.per_message_wire_overhead +
                  seconds_d(b / params_.bandwidth_bytes_per_s);
    l.intra_transfer = params_.intra_latency +
                       seconds_d(b / params_.intra_bandwidth_bytes_per_s);
    l.send_cpu = params_.send_overhead +
                 seconds_d(b / params_.cpu_copy_bytes_per_s);
    l.recv_cpu = params_.recv_overhead +
                 seconds_d(b / params_.cpu_copy_bytes_per_s);
  }
  return l;
}

}  // namespace smilab
