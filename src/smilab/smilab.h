// smilab — a discrete-event laboratory for studying System Management
// Interrupt (SMI) noise on multithreaded, hyper-threaded, and MPI
// applications.
//
// This umbrella header exposes the full public API:
//
//   Simulation substrate
//     sim/event_queue.h   deterministic discrete-event engine
//     sim/machine.h       node/core/HTT topology, sysfs-style hotplug
//     sim/task.h          task + action model (trace-driven execution)
//     sim/system.h        the runtime: scheduler, HTT sharing, SMM freezes,
//                         NIC queue servers, accounting
//     net/network.h       LogGP-flavoured network cost model
//     cache/cache.h       set-associative cache hierarchy simulator
//     cpu/workload_profile.h  HTT efficiency / refill profiles
//
//   SMM / SMI
//     smm/smi_config.h    short/long SMI regimes, intervals in jiffies
//     smm/smi_controller.h  the blackbox-driver equivalent
//     smm/accounting.h    MSR_SMI_COUNT-style counters, BIOSBITS check
//
//   Simulated MPI ("simmpi")
//     mpi/program.h       per-rank trace builder, placement helpers
//     mpi/collectives.h   barrier/bcast/reduce/allreduce/allgather/alltoall
//     mpi/job.h           job launcher
//
//   Workloads
//     apps/nas/...        NAS EP/BT/FT models + paper-table calibration
//     apps/convolve/...   real convolution kernel, cachegrind-style
//                         measurement, Figure-1 workload
//     apps/unixbench/...  five-test UnixBench index model
//
//   Fault injection
//     fault/fault_plan.h      declarative freeze/crash/link/slow schedules
//     fault/fault_injector.h  plan -> simulator events + link noise
//     sim/run_result.h        structured run outcomes + hang/deadlock
//                             diagnosis (System::try_run)
//
//   Noise tooling
//     noise/hwlat.h       TSC-gap SMI detector with ground-truth scoring
//     noise/ftq.h         fixed-time-quantum noise characterization
//     noise/injector.h    single-CPU OS-noise injector + attribution
//
//   Support
//     core/experiment.h   multi-trial runners
//     stats/...           online stats, histograms, table/series output
//     time/...            SimTime, jiffies, TSC, deterministic RNG
#pragma once

#include "smilab/apps/convolve/access_stream.h"
#include "smilab/apps/convolve/convolve.h"
#include "smilab/apps/convolve/workload.h"
#include "smilab/apps/nas/nas.h"
#include "smilab/apps/nas/runner.h"
#include "smilab/apps/unixbench/unixbench.h"
#include "smilab/cache/cache.h"
#include "smilab/core/experiment.h"
#include "smilab/cpu/energy.h"
#include "smilab/fault/fault_injector.h"
#include "smilab/fault/fault_plan.h"
#include "smilab/cpu/workload_profile.h"
#include "smilab/mpi/collectives.h"
#include "smilab/mpi/job.h"
#include "smilab/mpi/program.h"
#include "smilab/net/network.h"
#include "smilab/noise/ftq.h"
#include "smilab/noise/hwlat.h"
#include "smilab/noise/injector.h"
#include "smilab/serve/server.h"
#include "smilab/serve/service.h"
#include "smilab/sim/event_queue.h"
#include "smilab/sim/machine.h"
#include "smilab/sim/system.h"
#include "smilab/sim/task.h"
#include "smilab/smm/accounting.h"
#include "smilab/smm/clock_skew.h"
#include "smilab/smm/rim.h"
#include "smilab/smm/smi_config.h"
#include "smilab/smm/smi_controller.h"
#include "smilab/stats/ascii_chart.h"
#include "smilab/stats/histogram.h"
#include "smilab/stats/online_stats.h"
#include "smilab/stats/table.h"
#include "smilab/thread/work_queue.h"
#include "smilab/time/rng.h"
#include "smilab/time/sim_time.h"
#include "smilab/time/tsc.h"
#include "smilab/trace/chrome_trace.h"
