#include "smilab/time/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace smilab {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  origin_seed_ = seed;
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % span);
}

SimDuration Rng::uniform_duration(SimDuration lo, SimDuration hi) {
  assert(lo <= hi);
  if (lo == hi) return lo;
  return SimDuration{uniform_int(lo.ns(), hi.ns() - 1)};
}

double Rng::exponential(double mean) {
  assert(mean > 0);
  double u = next_double();
  if (u <= 0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1 = next_double();
  if (u1 <= 0) u1 = 0x1.0p-53;
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

Rng Rng::fork(std::uint64_t salt) const {
  std::uint64_t sm = origin_seed_ ^ (salt * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull);
  return Rng{splitmix64(sm)};
}

}  // namespace smilab
