// Simulated time primitives.
//
// All simulator time is kept in integer nanoseconds (`SimTime`). Integer
// ticks keep event ordering exact and runs bit-reproducible across
// platforms; helpers convert to/from seconds and the paper's units
// (jiffies, TSC cycles).
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace smilab {

/// A point in simulated time, in nanoseconds since simulation start.
///
/// Strong type: cannot be silently mixed with raw integers or durations in
/// other units. Arithmetic with `SimDuration` is provided below.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(ns_) * 1e-9;
  }

  [[nodiscard]] static constexpr SimTime zero() { return SimTime{0}; }
  [[nodiscard]] static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr auto operator<=>(const SimTime&) const = default;

 private:
  std::int64_t ns_ = 0;
};

/// A span of simulated time, in nanoseconds. May be negative in
/// intermediate arithmetic but scheduling negative delays is an error.
class SimDuration {
 public:
  constexpr SimDuration() = default;
  constexpr explicit SimDuration(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(ns_) * 1e-9;
  }

  [[nodiscard]] static constexpr SimDuration zero() { return SimDuration{0}; }

  constexpr auto operator<=>(const SimDuration&) const = default;

  constexpr SimDuration& operator+=(SimDuration other) {
    ns_ += other.ns_;
    return *this;
  }
  constexpr SimDuration& operator-=(SimDuration other) {
    ns_ -= other.ns_;
    return *this;
  }

 private:
  std::int64_t ns_ = 0;
};

// --- Construction helpers -------------------------------------------------

[[nodiscard]] constexpr SimDuration nanoseconds(std::int64_t n) {
  return SimDuration{n};
}
[[nodiscard]] constexpr SimDuration microseconds(std::int64_t us) {
  return SimDuration{us * 1'000};
}
[[nodiscard]] constexpr SimDuration milliseconds(std::int64_t ms) {
  return SimDuration{ms * 1'000'000};
}
[[nodiscard]] constexpr SimDuration seconds_d(double s) {
  return SimDuration{static_cast<std::int64_t>(s * 1e9)};
}
[[nodiscard]] constexpr SimDuration seconds(std::int64_t s) {
  return SimDuration{s * 1'000'000'000};
}

/// One scheduler jiffy. The paper's systems have CONFIG_HZ=1000, i.e.
/// 1 jiffy == 1 ms; the SMI driver's interval knob is expressed in jiffies.
inline constexpr SimDuration kJiffy = milliseconds(1);

[[nodiscard]] constexpr SimDuration jiffies(std::int64_t n) {
  return SimDuration{n * kJiffy.ns()};
}

// --- Arithmetic -------------------------------------------------------------

constexpr SimTime operator+(SimTime t, SimDuration d) {
  return SimTime{t.ns() + d.ns()};
}
constexpr SimTime operator-(SimTime t, SimDuration d) {
  return SimTime{t.ns() - d.ns()};
}
constexpr SimDuration operator-(SimTime a, SimTime b) {
  return SimDuration{a.ns() - b.ns()};
}
constexpr SimDuration operator+(SimDuration a, SimDuration b) {
  return SimDuration{a.ns() + b.ns()};
}
constexpr SimDuration operator-(SimDuration a, SimDuration b) {
  return SimDuration{a.ns() - b.ns()};
}
constexpr SimDuration operator*(SimDuration d, std::int64_t k) {
  return SimDuration{d.ns() * k};
}
constexpr SimDuration operator*(std::int64_t k, SimDuration d) {
  return d * k;
}
constexpr SimDuration operator/(SimDuration d, std::int64_t k) {
  return SimDuration{d.ns() / k};
}
/// Ratio of two durations as a double (e.g. duty cycles).
constexpr double operator/(SimDuration a, SimDuration b) {
  return static_cast<double>(a.ns()) / static_cast<double>(b.ns());
}

/// Scale a duration by a real factor, rounding to the nearest nanosecond.
[[nodiscard]] constexpr SimDuration scale(SimDuration d, double factor) {
  const double scaled = static_cast<double>(d.ns()) * factor;
  return SimDuration{static_cast<std::int64_t>(scaled + (scaled >= 0 ? 0.5 : -0.5))};
}

/// Human-readable rendering, e.g. "1.500ms", "2.000s".
[[nodiscard]] std::string to_string(SimDuration d);
[[nodiscard]] std::string to_string(SimTime t);

}  // namespace smilab
