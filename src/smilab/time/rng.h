// Deterministic random number generation.
//
// Every stochastic element of the simulator (SMI phases/durations, workload
// jitter, placement tie-breaks) draws from an explicitly seeded stream so a
// run is reproducible bit-for-bit from (config, seed). Streams are derived
// from a master seed with SplitMix64 so adding a consumer never perturbs the
// draws seen by existing consumers.
#pragma once

#include <cstdint>
#include <string_view>

#include "smilab/time/sim_time.h"

namespace smilab {

/// xoshiro256** by Blackman & Vigna — fast, high-quality, tiny state.
/// Seeded via SplitMix64 per the authors' recommendation.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform duration in [lo, hi).
  SimDuration uniform_duration(SimDuration lo, SimDuration hi);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Normally distributed value (Box–Muller; one value per call, the
  /// second draw is discarded to keep the stream position simple).
  double normal(double mean, double stddev);

  /// Derive an independent child stream. `salt` distinguishes consumers;
  /// pass a stable label hash so stream identity survives code motion.
  [[nodiscard]] Rng fork(std::uint64_t salt) const;

 private:
  std::uint64_t s_[4] = {};
  std::uint64_t origin_seed_ = 0;
};

/// FNV-1a hash of a label, for naming RNG streams.
[[nodiscard]] constexpr std::uint64_t stream_label(std::string_view name) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace smilab
