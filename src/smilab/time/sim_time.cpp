#include "smilab/time/sim_time.h"

#include <cmath>
#include <cstdio>

namespace smilab {

std::string to_string(SimDuration d) {
  const std::int64_t ns = d.ns();
  const std::int64_t mag = std::abs(ns);
  char buf[64];
  if (mag >= 1'000'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fs", static_cast<double>(ns) * 1e-9);
  } else if (mag >= 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fms", static_cast<double>(ns) * 1e-6);
  } else if (mag >= 1'000) {
    std::snprintf(buf, sizeof buf, "%.3fus", static_cast<double>(ns) * 1e-3);
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns));
  }
  return buf;
}

std::string to_string(SimTime t) { return to_string(t - SimTime::zero()); }

}  // namespace smilab
