// Simulated time-stamp counter.
//
// The paper's blackbox SMI driver measures SMM residency with RDTSC; the
// hwlat-style detector in `noise/` does the same. The TSC keeps counting
// through SMM (it is not stopped by the interrupt), which is exactly what
// makes TSC-gap detection of SMIs possible.
#pragma once

#include <cstdint>

#include "smilab/time/sim_time.h"

namespace smilab {

/// Converts simulated wall time to TSC cycle counts at a fixed invariant
/// frequency (constant_tsc, as on the paper's Nehalem/Westmere parts).
class Tsc {
 public:
  /// @param ghz Nominal TSC frequency in GHz (e.g. 2.27 for the E5520).
  constexpr explicit Tsc(double ghz) : hz_(ghz * 1e9) {}

  [[nodiscard]] constexpr std::uint64_t read(SimTime now) const {
    return static_cast<std::uint64_t>(static_cast<double>(now.ns()) * 1e-9 * hz_);
  }

  /// Convert a cycle delta back to a duration.
  [[nodiscard]] constexpr SimDuration to_duration(std::uint64_t cycles) const {
    return SimDuration{static_cast<std::int64_t>(static_cast<double>(cycles) / hz_ * 1e9)};
  }

  [[nodiscard]] constexpr double hz() const { return hz_; }

 private:
  double hz_;
};

}  // namespace smilab
