#include "smilab/mc/explorer.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "smilab/core/fnv.h"

namespace smilab {
namespace mc {

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kDeterministic: return "deterministic";
    case Verdict::kDeadlock: return "deadlock";
    case Verdict::kDivergent: return "divergent";
    case Verdict::kCheckerBug: return "checker-bug";
  }
  return "?";
}

std::uint64_t hash_observable(const System& sys) {
  Fnv64 h;
  const int n = sys.task_count();
  h.mix_signed(n);
  for (int i = 0; i < n; ++i) {
    const TaskStats& s = sys.task_stats(TaskId{i});
    h.mix(static_cast<std::uint64_t>(s.start_time.ns()));
    h.mix(static_cast<std::uint64_t>(s.end_time.ns()));
    h.mix(static_cast<std::uint64_t>(s.os_view_cpu_time.ns()));
    h.mix(static_cast<std::uint64_t>(s.true_cpu_time.ns()));
    h.mix(static_cast<std::uint64_t>(s.smm_stolen_time.ns()));
    h.mix(static_cast<std::uint64_t>(s.refill_overhead.ns()));
    h.mix(static_cast<std::uint64_t>(s.smm_hits));
    h.mix(static_cast<std::uint64_t>(s.messages_sent));
    h.mix(static_cast<std::uint64_t>(s.messages_received));
    h.mix(static_cast<std::uint64_t>(s.bytes_sent));
    h.mix((s.finished ? 1u : 0u) | (s.failed ? 2u : 0u));
  }
  h.mix(static_cast<std::uint64_t>(sys.messages_dropped()));
  h.mix(static_cast<std::uint64_t>(sys.messages_duplicated()));
  h.mix(static_cast<std::uint64_t>(sys.retransmissions()));
  h.mix(static_cast<std::uint64_t>(sys.transport_failures()));
  h.mix(static_cast<std::uint64_t>(sys.inter_node_bytes()));
  h.mix(static_cast<std::uint64_t>(sys.last_finish_time().ns()));
  return h.value();
}

Explorer::Explorer(McTarget target, ExplorerOptions opts)
    : target_(target), opts_(opts), policy_(*this) {
  assert(target_.make_system != nullptr);
  if (opts_.max_schedules == 0) opts_.max_schedules = 1;
}

std::size_t Explorer::CursorPolicy::choose(ChoiceKind kind, std::size_t n) {
  return owner_.on_choose(kind, n);
}

std::size_t Explorer::on_choose(ChoiceKind kind, std::size_t n) {
  assert(n >= 2 && "policy consulted without real alternatives");

  if (replay_trace_ != nullptr) {
    // Replay mode: follow the token, canonical past its end.
    if (cursor_ < replay_trace_->choices.size()) {
      const Choice& c = replay_trace_->choices[cursor_];
      if (c.kind != kind || c.n != n) {
        run_mismatch_ = true;
        run_mismatch_note_ =
            "replay token mismatch at decision " + std::to_string(cursor_) +
            ": token says " + std::string(to_string(c.kind)) + " with " +
            std::to_string(c.n) + " alternative(s), program presented " +
            std::string(to_string(kind)) + " with " + std::to_string(n);
        run_trace_.choices.push_back(Choice{kind, 0, n});
        ++cursor_;
        return 0;
      }
      run_trace_.choices.push_back(c);
      ++cursor_;
      return c.chosen;
    }
    run_trace_.choices.push_back(Choice{kind, 0, n});
    ++cursor_;
    return 0;
  }

  if (cursor_ < frames_.size()) {
    // Prefix replay: the simulator must present the same choice structure
    // it presented last run, or the stateless-rerun premise is broken.
    Frame& f = frames_[cursor_];
    if (f.kind != kind || f.n != n) {
      run_mismatch_ = true;
      run_mismatch_note_ =
          "schedule prefix diverged at decision " + std::to_string(cursor_) +
          ": previous run saw " + std::string(to_string(f.kind)) + " with " +
          std::to_string(f.n) + " alternative(s), this run presents " +
          std::string(to_string(kind)) + " with " + std::to_string(n) +
          " — the target is not a pure function of its schedule decisions";
      run_trace_.choices.push_back(Choice{kind, 0, n});
      ++cursor_;
      return 0;
    }
    run_trace_.choices.push_back(Choice{kind, f.chosen, n});
    ++cursor_;
    return f.chosen;
  }

  // Frontier. Once this run is pruned or clipped it stays canonical: a
  // memo hit certifies the whole remaining subtree, and a clipped run
  // must not open frames its backtrack would then wrongly walk.
  if (run_pruned_ || run_mismatch_) {
    run_trace_.choices.push_back(Choice{kind, 0, n});
    return 0;
  }
  if (frames_.size() >= opts_.max_depth) {
    run_clipped_ = true;
    run_trace_.choices.push_back(Choice{kind, 0, n});
    return 0;
  }

  Fnv64 digest;
  digest.mix(sys_ != nullptr ? sys_->progress_digest() : 0);
  digest.mix(static_cast<std::uint64_t>(kind));
  digest.mix(static_cast<std::uint64_t>(n));
  const std::uint64_t key = digest.value();

  if (opts_.prune && memo_.contains(key)) {
    run_pruned_ = true;
    run_trace_.choices.push_back(Choice{kind, 0, n});
    return 0;
  }

  frames_.push_back(Frame{kind, n, 0, key});
  ++choice_points_opened_;
  ++cursor_;
  run_trace_.choices.push_back(Choice{kind, 0, n});
  return 0;
}

Explorer::RunOutcome Explorer::run_one() {
  cursor_ = 0;
  run_trace_.choices.clear();
  run_pruned_ = false;
  run_clipped_ = false;
  run_mismatch_ = false;
  run_mismatch_note_.clear();

  std::unique_ptr<System> sys = target_.make_system();
  sys_ = sys.get();
  sys->engine().set_scheduler(opts_.scheduler);
  sys->set_schedule_policy(&policy_);
  std::unique_ptr<FaultInjector> injector;
  if (target_.make_injector != nullptr) {
    injector = target_.make_injector(*sys);  // kFaultJitter choices fire here
  }

  RunOutcome out;
  out.result = sys->try_run();
  if (out.result.ok()) out.hash = hash_observable(*sys);
  out.trace = run_trace_;
  out.pruned = run_pruned_;
  out.structure_mismatch = run_mismatch_;
  out.mismatch_note = run_mismatch_note_;

  // A run that consumed fewer decisions than the replayed prefix is the
  // same structural divergence as a kind/arity mismatch.
  if (replay_trace_ == nullptr && !run_mismatch_ && cursor_ < frames_.size()) {
    out.structure_mismatch = true;
    out.mismatch_note =
        "schedule prefix diverged: previous run made " +
        std::to_string(frames_.size()) + " decisions, this run ended after " +
        std::to_string(cursor_);
  }

  sys_ = nullptr;
  return out;
}

bool Explorer::record(const RunOutcome& outcome, ExplorationReport& report) {
  ++report.schedules_run;
  if (outcome.pruned) ++report.schedules_pruned;
  report.max_depth_seen =
      std::max(report.max_depth_seen, outcome.trace.choices.size());

  if (outcome.structure_mismatch) {
    report.verdict = Verdict::kCheckerBug;
    report.checker_note = outcome.mismatch_note;
    return false;
  }

  if (outcome.result.ok()) {
    if (!report.any_completed) {
      report.any_completed = true;
      report.canonical_hash = outcome.hash;
    } else if (outcome.hash != report.canonical_hash &&
               report.verdict != Verdict::kDivergent) {
      report.verdict = Verdict::kDivergent;
      report.divergent_token = outcome.trace.to_token();
      report.divergent_hash = outcome.hash;
    }
    return true;
  }

  // Wedged. Genuine deadlock needs proof: an empty event queue with tasks
  // remaining (kDeadlock — no wake is possible), a wait-for cycle, or a
  // dead peer. A hang or sim-time blowout without any of those means the
  // checker drove the simulator somewhere unexplained.
  bool peer_died = false;
  for (const RankDiagnosis& r : outcome.result.diagnosis.ranks) {
    if (r.peer_failed) peer_died = true;
  }
  const bool genuine = outcome.result.status == RunStatus::kDeadlock ||
                       !outcome.result.diagnosis.cycle.empty() || peer_died;
  if (!genuine) {
    report.verdict = Verdict::kCheckerBug;
    report.checker_note =
        "schedule " + outcome.trace.to_token() + " wedged with status '" +
        std::string(smilab::to_string(outcome.result.status)) +
        "' but no deadlock evidence (no cycle, no dead peer)";
    return false;
  }
  if (report.deadlock_token.empty() && report.deadlock_status == RunStatus::kOk) {
    report.deadlock_status = outcome.result.status;
    report.deadlock_token = outcome.trace.to_token();
    report.deadlock_report = outcome.result.to_string();
  }
  if (report.verdict == Verdict::kDeterministic) {
    report.verdict = Verdict::kDeadlock;
  }
  return true;
}

bool Explorer::backtrack() {
  while (!frames_.empty()) {
    Frame& f = frames_.back();
    if (f.chosen + 1 < f.n) {
      ++f.chosen;
      return true;
    }
    // Every alternative of this choice point has been explored: memoize
    // its state digest so equivalent states reached later prune.
    memo_.insert(f.digest);
    frames_.pop_back();
  }
  return false;
}

ExplorationReport Explorer::explore() {
  frames_.clear();
  memo_.clear();
  choice_points_opened_ = 0;
  replay_trace_ = nullptr;

  ExplorationReport report;
  for (;;) {
    const RunOutcome outcome = run_one();
    if (run_clipped_) report.depth_clipped = true;
    if (!record(outcome, report)) break;
    if (report.schedules_run >= opts_.max_schedules) {
      // Budget spent; the tree is unfinished iff decisions remain.
      report.budget_exhausted = backtrack();
      break;
    }
    if (!backtrack()) break;
  }
  report.choice_points = choice_points_opened_;
  return report;
}

ExplorationReport Explorer::replay(const ScheduleTrace& trace) {
  frames_.clear();
  memo_.clear();
  choice_points_opened_ = 0;
  replay_trace_ = &trace;

  ExplorationReport report;
  const RunOutcome outcome = run_one();
  replay_trace_ = nullptr;
  record(outcome, report);
  report.choice_points = outcome.trace.choices.size();
  return report;
}

}  // namespace mc
}  // namespace smilab
