#include "smilab/mc/corpus.h"

#include <memory>
#include <utility>
#include <vector>

namespace smilab {
namespace mc {

namespace {

/// Minimal, noise-free base: no SMIs, no speed jitter — every choice point
/// the explorer sees comes from the program, not the environment.
SystemConfig corpus_config(int nodes) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::poweredge_r410_e5620();
  cfg.node_count = nodes;
  cfg.seed = 7;
  return cfg;
}

// --- Deterministic programs --------------------------------------------------

/// Strictly alternating eager ping-pong: the control structure serializes
/// everything, so the canonical schedule is the ONLY schedule (token "-").
std::unique_ptr<System> make_pingpong() {
  auto sys = std::make_unique<System>(corpus_config(1));
  const GroupId g = sys->create_group(2);
  {
    std::vector<Action> p;
    p.push_back(Send{1, 1024, 5});
    p.push_back(Recv{1, 6});
    p.push_back(Send{1, 1024, 7});
    p.push_back(Recv{1, 8});
    sys->spawn_member(g, 0, TaskSpec::with_actions("r0", 0, std::move(p)));
  }
  {
    std::vector<Action> p;
    p.push_back(Recv{0, 5});
    p.push_back(Send{0, 1024, 6});
    p.push_back(Recv{0, 7});
    p.push_back(Send{0, 1024, 8});
    sys->spawn_member(g, 1, TaskSpec::with_actions("r1", 0, std::move(p)));
  }
  return sys;
}

/// Rendezvous round trip (over-threshold payloads, ack machinery live):
/// still fully serialized, still exactly one schedule.
std::unique_ptr<System> make_rendezvous_pingpong() {
  auto sys = std::make_unique<System>(corpus_config(2));
  const GroupId g = sys->create_group(2);
  const std::int64_t big = 256 * 1024;
  {
    std::vector<Action> p;
    p.push_back(Send{1, big, 5});
    p.push_back(Recv{1, 6});
    sys->spawn_member(g, 0, TaskSpec::with_actions("r0", 0, std::move(p)));
  }
  {
    std::vector<Action> p;
    p.push_back(Recv{0, 5});
    p.push_back(Send{0, big, 6});
    sys->spawn_member(g, 1, TaskSpec::with_actions("r1", 1, std::move(p)));
  }
  return sys;
}

/// Two identical computes on separate nodes complete at the same instant:
/// one kEventTie with two alternatives, whose orders commute.
std::unique_ptr<System> make_tie_twins() {
  auto sys = std::make_unique<System>(corpus_config(2));
  for (int n = 0; n < 2; ++n) {
    std::vector<Action> p;
    p.push_back(Compute{milliseconds(1)});
    sys->spawn(TaskSpec::with_actions("twin" + std::to_string(n), n,
                                      std::move(p)));
  }
  return sys;
}

/// Two back-to-back identical compute rounds: a tie at t=1ms and another
/// at t=2ms. The first tie's orders commute BEFORE the second tie fires,
/// so with pruning the second choice point is explored once and the [1,*]
/// subtree collapses to a memo hit — the smallest DPOR win.
std::unique_ptr<System> make_tie_commute() {
  auto sys = std::make_unique<System>(corpus_config(2));
  for (int n = 0; n < 2; ++n) {
    std::vector<Action> p;
    p.push_back(Compute{milliseconds(1)});
    p.push_back(Compute{milliseconds(1)});
    sys->spawn(TaskSpec::with_actions("twin" + std::to_string(n), n,
                                      std::move(p)));
  }
  return sys;
}

/// Wildcard funnel: three skewed senders queue tag-5 messages while rank 0
/// computes; its three ANY_SOURCE receives then drain them. Choice points
/// of arity 3 and 2 (the last match has one candidate): 3! = 6 schedules,
/// every one ending with identical stats.
std::unique_ptr<System> make_anysource_fan3() {
  auto sys = std::make_unique<System>(corpus_config(4));
  const GroupId g = sys->create_group(4);
  {
    std::vector<Action> p;
    p.push_back(Compute{milliseconds(10)});
    p.push_back(Recv{kAnySource, 5});
    p.push_back(Recv{kAnySource, 5});
    p.push_back(Recv{kAnySource, 5});
    sys->spawn_member(g, 0, TaskSpec::with_actions("root", 0, std::move(p)));
  }
  for (int r = 1; r < 4; ++r) {
    std::vector<Action> p;
    // Distinct skews: arrivals land in rank order, no event ties.
    p.push_back(Compute{microseconds(100 * r)});
    p.push_back(Send{0, 1024, 5});
    sys->spawn_member(g, r,
                      TaskSpec::with_actions("w" + std::to_string(r), r,
                                             std::move(p)));
  }
  return sys;
}

/// Nonblocking wildcard pair: the Irecv(ANY_SOURCE) postings match against
/// the already-queued arrivals, so the first posting is a 2-way choice.
std::unique_ptr<System> make_wildcard_irecv() {
  auto sys = std::make_unique<System>(corpus_config(3));
  const GroupId g = sys->create_group(3);
  {
    std::vector<Action> p;
    p.push_back(Compute{milliseconds(10)});
    p.push_back(Irecv{kAnySource, 5, 0});
    p.push_back(Irecv{kAnySource, 5, 1});
    p.push_back(WaitAll{{0, 1}});
    sys->spawn_member(g, 0, TaskSpec::with_actions("root", 0, std::move(p)));
  }
  for (int r = 1; r < 3; ++r) {
    std::vector<Action> p;
    p.push_back(Compute{microseconds(200 * r)});
    p.push_back(Send{0, 1024, 5});
    sys->spawn_member(g, r,
                      TaskSpec::with_actions("w" + std::to_string(r), r,
                                             std::move(p)));
  }
  return sys;
}

/// A freeze whose whole jitter range sits inside the task's Sleep: the
/// node is idle throughout, so all three offsets are observably identical
/// — the checker proves the jitter window inert.
std::unique_ptr<System> make_jitter_sleep() {
  auto sys = std::make_unique<System>(corpus_config(1));
  std::vector<Action> p;
  p.push_back(Sleep{milliseconds(100)});
  sys->spawn(TaskSpec::with_actions("sleeper", 0, std::move(p)));
  return sys;
}

std::unique_ptr<FaultInjector> make_jitter_sleep_injector(System& sys) {
  FaultPlan plan;
  plan.freeze(0, SimTime::zero() + milliseconds(10), milliseconds(5))
      .with_jitter(milliseconds(3), 3);
  return std::make_unique<FaultInjector>(sys, std::move(plan));
}

/// A jittered freeze scheduled long after the program quiesces: the run
/// ends before any offset fires, so all four schedules coincide.
std::unique_ptr<System> make_jitter_quiesce() {
  auto sys = std::make_unique<System>(corpus_config(1));
  std::vector<Action> p;
  p.push_back(Compute{milliseconds(1)});
  sys->spawn(TaskSpec::with_actions("worker", 0, std::move(p)));
  return sys;
}

std::unique_ptr<FaultInjector> make_jitter_quiesce_injector(System& sys) {
  FaultPlan plan;
  plan.freeze(0, SimTime::zero() + seconds(1), milliseconds(10)).with_jitter(milliseconds(4), 4);
  return std::make_unique<FaultInjector>(sys, std::move(plan));
}

// --- Seeded-deadlock fixtures ------------------------------------------------

std::unique_ptr<System> make_sendsend_cycle() {
  auto sys = std::make_unique<System>(corpus_config(2));
  spawn_sendsend_cycle(*sys);
  return sys;
}

std::unique_ptr<System> make_waitall_never() {
  auto sys = std::make_unique<System>(corpus_config(1));
  spawn_waitall_never(*sys);
  return sys;
}

std::unique_ptr<System> make_anysource_starve() {
  auto sys = std::make_unique<System>(corpus_config(1));
  spawn_anysource_starve(*sys);
  return sys;
}

std::unique_ptr<System> make_crashed_peer() {
  auto sys = std::make_unique<System>(corpus_config(2));
  spawn_crashed_peer(*sys);
  return sys;
}

std::unique_ptr<FaultInjector> make_crashed_peer_injector(System& sys) {
  return std::make_unique<FaultInjector>(sys, crashed_peer_plan());
}

}  // namespace

void spawn_sendsend_cycle(System& sys) {
  const GroupId g = sys.create_group(2);
  const std::int64_t big = 256 * 1024;  // > rendezvous threshold
  for (int r = 0; r < 2; ++r) {
    std::vector<Action> p;
    // Skewed starts keep the two transfer arrivals off the same instant:
    // the deadlock needs no event tie, so the fixture has zero choice
    // points and wedges on the one (canonical) schedule.
    p.push_back(Compute{microseconds(50 * r)});
    p.push_back(Send{1 - r, big, 4});
    p.push_back(Recv{1 - r, 4});
    sys.spawn_member(
        g, r, TaskSpec::with_actions("s" + std::to_string(r), r, std::move(p)));
  }
}

void spawn_waitall_never(System& sys) {
  const GroupId g = sys.create_group(2);
  {
    std::vector<Action> p;
    p.push_back(Irecv{1, 5, 0});
    p.push_back(WaitAll{{0}});
    sys.spawn_member(g, 0, TaskSpec::with_actions("waiter", 0, std::move(p)));
  }
  {
    std::vector<Action> p;
    p.push_back(Compute{milliseconds(1)});  // finishes without sending
    sys.spawn_member(g, 1, TaskSpec::with_actions("silent", 0, std::move(p)));
  }
}

void spawn_anysource_starve(System& sys) {
  const GroupId g = sys.create_group(3);
  {
    std::vector<Action> p;
    p.push_back(Compute{milliseconds(10)});  // both sends arrive meanwhile
    p.push_back(Recv{kAnySource, 5});
    p.push_back(Recv{1, 5});
    sys.spawn_member(g, 0, TaskSpec::with_actions("root", 0, std::move(p)));
  }
  {
    std::vector<Action> p;
    p.push_back(Compute{microseconds(200)});  // arrives SECOND
    p.push_back(Send{0, 1024, 5});
    sys.spawn_member(g, 1, TaskSpec::with_actions("late", 0, std::move(p)));
  }
  {
    std::vector<Action> p;
    p.push_back(Send{0, 1024, 5});  // arrives first: the canonical match
    sys.spawn_member(g, 2, TaskSpec::with_actions("early", 0, std::move(p)));
  }
}

void spawn_crashed_peer(System& sys) {
  const GroupId g = sys.create_group(2);
  {
    std::vector<Action> p;
    p.push_back(Recv{1, 5});
    sys.spawn_member(g, 0, TaskSpec::with_actions("survivor", 0, std::move(p)));
  }
  {
    std::vector<Action> p;
    p.push_back(Compute{milliseconds(50)});  // killed mid-compute
    p.push_back(Send{0, 1024, 5});
    sys.spawn_member(g, 1, TaskSpec::with_actions("victim", 1, std::move(p)));
  }
}

FaultPlan crashed_peer_plan() {
  FaultPlan plan;
  plan.crash(1, SimTime::zero() + milliseconds(1));
  return plan;
}

const std::vector<McCase>& corpus() {
  // Expected counts are measured once and pinned; a mismatch means a
  // simulator change altered the nondeterminism surface (see file header).
  static const std::vector<McCase> kCases = {
      {"pingpong", "alternating eager ping-pong; no nondeterminism",
       McTarget{&make_pingpong, nullptr}, Verdict::kDeterministic, 1, 1, 0},
      {"rendezvous-pingpong", "over-threshold round trip; no nondeterminism",
       McTarget{&make_rendezvous_pingpong, nullptr}, Verdict::kDeterministic,
       1, 1, 0},
      {"tie-twins", "one 2-way same-instant completion tie",
       McTarget{&make_tie_twins, nullptr}, Verdict::kDeterministic, 2, 2, 0},
      {"tie-commute", "two commuting 2-way ties; pruning collapses one",
       McTarget{&make_tie_commute, nullptr}, Verdict::kDeterministic, 3, 4, 1},
      {"anysource-fan3", "3-sender wildcard funnel; 3! match orders",
       McTarget{&make_anysource_fan3, nullptr}, Verdict::kDeterministic, 6, 6,
       0},
      {"wildcard-irecv", "nonblocking wildcard pair over queued arrivals",
       McTarget{&make_wildcard_irecv, nullptr}, Verdict::kDeterministic, 2, 2,
       0},
      {"jitter-sleep", "freeze jittered inside a sleep; 3 inert offsets",
       McTarget{&make_jitter_sleep, &make_jitter_sleep_injector},
       Verdict::kDeterministic, 3, 3, 0},
      {"jitter-quiesce", "jittered freeze after quiesce; 4 inert offsets",
       McTarget{&make_jitter_quiesce, &make_jitter_quiesce_injector},
       Verdict::kDeterministic, 4, 4, 0},
      {"deadlock-sendsend", "head-to-head rendezvous send cycle",
       McTarget{&make_sendsend_cycle, nullptr}, Verdict::kDeadlock, 1, 1, 0},
      {"deadlock-waitall", "waitall on a handle nobody ever sends",
       McTarget{&make_waitall_never, nullptr}, Verdict::kDeadlock, 1, 1, 0},
      {"anysource-starve", "wildcard starvation on the non-canonical match",
       McTarget{&make_anysource_starve, nullptr}, Verdict::kDeadlock, 2, 2, 0},
      {"deadlock-crashed-peer", "blocking recv from a crashed node",
       McTarget{&make_crashed_peer, &make_crashed_peer_injector},
       Verdict::kDeadlock, 1, 1, 0},
  };
  return kCases;
}

const McCase* find_case(std::string_view name) {
  for (const McCase& c : corpus()) {
    if (name == c.name) return &c;
  }
  return nullptr;
}

}  // namespace mc
}  // namespace smilab
