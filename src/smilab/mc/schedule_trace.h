// Replayable schedule traces for the model checker.
//
// A ScheduleTrace records one complete path through a program's choice
// tree: the ordered list of (kind, chosen, n) decisions the explorer made.
// Its token form is a one-line string a user can paste back into
// `smilab check --replay=...` to reproduce exactly one schedule — e.g. the
// schedule that deadlocked — without re-exploring anything.
//
// Token grammar (one token per decision, '.'-joined, "-" for the empty
// trace, i.e. the program has no nondeterminism):
//
//   trace    := "-" | token ("." token)*
//   token    := letter chosen "/" n
//   letter   := "t"            event-tie      (ChoiceKind::kEventTie)
//             | "a"            any-source     (ChoiceKind::kAnySourceMatch)
//             | "f"            fault-jitter   (ChoiceKind::kFaultJitter)
//   chosen   := decimal index, 0 <= chosen < n
//   n        := decimal alternative count, n >= 2
//
// Example: "t1/2.a0/3.t0/2" — at the first same-instant tie take the
// second event, at the wildcard match take the first of three candidate
// sources, at the next tie take the canonical event. n is carried in the
// token so replay can verify the program still presents the same choice
// structure (a mismatch means the binary or config changed — the token is
// from a different program — and is reported instead of silently
// misreplayed).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "smilab/sim/choice_hooks.h"

namespace smilab {
namespace mc {

/// One recorded decision.
struct Choice {
  ChoiceKind kind = ChoiceKind::kEventTie;
  std::size_t chosen = 0;  ///< index taken, < n
  std::size_t n = 0;       ///< alternatives presented (>= 2)
};

/// An ordered decision path; see the token grammar above.
struct ScheduleTrace {
  std::vector<Choice> choices;

  [[nodiscard]] std::string to_token() const;

  /// Parse a token string; std::nullopt on any syntax violation (unknown
  /// letter, chosen >= n, n < 2, malformed number, empty token).
  [[nodiscard]] static std::optional<ScheduleTrace> parse(
      const std::string& token);
};

}  // namespace mc
}  // namespace smilab
