// Stateless model checking for smilab programs (DESIGN.md §12).
//
// The Explorer re-runs a target program from scratch once per schedule,
// driving the simulator's three choice points (sim/choice_hooks.h) through
// a DFS over the choice tree:
//
//   * Each run replays a recorded decision prefix, then extends it: the
//     first choice point past the prefix becomes a new stack frame taking
//     alternative 0 (the canonical branch).
//   * After a run completes, the deepest frame with unexplored
//     alternatives is advanced and everything below it is discarded —
//     plain depth-first backtracking with no cross-run simulator state
//     (each schedule gets a fresh System; the stack IS the schedule).
//
// Pruning (DPOR-lite): at every NEW choice point the explorer digests
// "where the simulation is" (System::progress_digest + the choice's kind
// and arity). When a frame has had all alternatives explored, its digest
// enters a memo; a later run reaching a memoized digest at a new choice
// point takes the canonical tail instead of branching — the subtree was
// already covered from an equivalent state, which is exactly the case
// when two earlier commuting choices lead to the same state. Runs that
// complete through a memo hit still have their outcome verified, so a
// digest collision can cost coverage but can never fake a verdict.
//
// Verdicts, in priority order:
//   kCheckerBug      replay structure diverged (the same prefix presented
//                    different choice points — the simulator is not the
//                    deterministic function of its decisions the checker
//                    assumes), or a run wedged without deadlock evidence.
//   kDivergent       two completed schedules produced different observable
//                    outcomes (per-task stats + transport counters): the
//                    program's RESULT depends on scheduling.
//   kDeadlock        some schedule wedged with proof (wait-for cycle, dead
//                    peer, or an empty event queue with tasks remaining).
//                    The report carries a replay token for the first one.
//   kDeterministic   every explored schedule completed with the same
//                    observable hash.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "smilab/fault/fault_injector.h"
#include "smilab/mc/schedule_trace.h"
#include "smilab/sim/choice_hooks.h"
#include "smilab/sim/run_result.h"
#include "smilab/sim/system.h"

namespace smilab {
namespace mc {

/// A program under check. Plain function pointers, not std::function: mc/
/// is a smilint hot path (rule D4) and corpus targets capture nothing.
struct McTarget {
  /// Fresh System with every task spawned, ready to run. Called once per
  /// schedule. The explorer installs its policy right after this returns
  /// (spawn-time execution pops no events, so no choice can fire inside).
  using MakeSystemFn = std::unique_ptr<System> (*)();
  /// Optional fault attachment, constructed AFTER the policy is installed
  /// so kFaultJitter choices route through the explorer; null for
  /// fault-free programs. The injector must outlive the run.
  using MakeInjectorFn = std::unique_ptr<FaultInjector> (*)(System& sys);

  MakeSystemFn make_system = nullptr;
  MakeInjectorFn make_injector = nullptr;
};

struct ExplorerOptions {
  /// Complete runs before giving up (the tree may be larger than any
  /// budget; exhausted() on the report says whether exploration finished).
  std::size_t max_schedules = 4096;
  /// Decision-stack depth cap: choice points deeper than this take the
  /// canonical branch without opening alternatives.
  std::size_t max_depth = 64;
  /// Digest-memo subtree pruning (see file header). Off = plain DFS.
  bool prune = true;
  /// Event scheduler installed on every System the target builds. The
  /// corpus pins (exact schedule counts, canonical hashes) must be
  /// identical under both — the scheduler-equality suite runs the whole
  /// corpus twice through this knob.
  Engine::Scheduler scheduler = Engine::Scheduler::kLadder;
};

enum class Verdict : std::uint8_t {
  kDeterministic = 0,
  kDeadlock = 1,
  kDivergent = 2,
  kCheckerBug = 3,
};

[[nodiscard]] const char* to_string(Verdict v);

struct ExplorationReport {
  Verdict verdict = Verdict::kDeterministic;

  std::size_t schedules_run = 0;     ///< completed runs (includes pruned)
  std::size_t schedules_pruned = 0;  ///< runs completed via a memo-hit tail
  std::size_t choice_points = 0;     ///< frontier frames ever opened
  std::size_t max_depth_seen = 0;    ///< deepest decision stack reached
  bool depth_clipped = false;        ///< some subtree cut by max_depth
  bool budget_exhausted = false;     ///< stopped by max_schedules

  /// Observable-outcome hash of the canonical schedule (first completed
  /// run); 0 if no schedule ever completed (all-deadlock programs).
  std::uint64_t canonical_hash = 0;
  bool any_completed = false;

  /// kDivergent evidence: the first schedule whose hash disagreed.
  std::string divergent_token;
  std::uint64_t divergent_hash = 0;

  /// kDeadlock evidence: the first wedged schedule.
  std::string deadlock_token;
  RunStatus deadlock_status = RunStatus::kOk;
  std::string deadlock_report;  ///< formatted RunResult diagnosis

  /// kCheckerBug explanation (empty otherwise).
  std::string checker_note;

  /// True when the full choice tree was explored within budget and depth.
  [[nodiscard]] bool exhausted() const {
    return !budget_exhausted && !depth_clipped;
  }
};

/// Observable-outcome hash of a completed run: FNV-1a over every task's
/// stats, the transport/fault counters, total inter-node bytes, and the
/// last finish time. Deliberately excludes engine/pool internals (event
/// counts, slab capacities) — those legitimately differ between equivalent
/// schedules; what must NOT differ is what an experiment would measure.
[[nodiscard]] std::uint64_t hash_observable(const System& sys);

class Explorer {
 public:
  Explorer(McTarget target, ExplorerOptions opts);

  /// Enumerate schedules depth-first until the tree or the budget is
  /// exhausted (or a checker bug aborts exploration).
  [[nodiscard]] ExplorationReport explore();

  /// Run exactly ONE schedule, following `trace`'s decisions and taking
  /// the canonical branch past its end. Reports structure mismatches
  /// (token from a different program/config) as kCheckerBug.
  [[nodiscard]] ExplorationReport replay(const ScheduleTrace& trace);

 private:
  /// One decision-stack frame: a choice point on the current DFS path.
  struct Frame {
    ChoiceKind kind;
    std::size_t n = 0;
    std::size_t chosen = 0;
    std::uint64_t digest = 0;  ///< memo key (state + kind + n)
  };

  /// SchedulePolicy wired to the DFS stack: replays frames_[0..], then
  /// extends at the frontier. Owned by the Explorer so run_one can reach
  /// the flags it raises.
  class CursorPolicy final : public SchedulePolicy {
   public:
    explicit CursorPolicy(Explorer& owner) : owner_(owner) {}
    [[nodiscard]] std::size_t choose(ChoiceKind kind, std::size_t n) override;

   private:
    Explorer& owner_;
  };

  /// Outcome of one schedule execution.
  struct RunOutcome {
    RunResult result;
    std::uint64_t hash = 0;  ///< valid only when result.ok()
    ScheduleTrace trace;     ///< full decision path (replayed + extended)
    bool pruned = false;     ///< completed through a memo-hit tail
    bool structure_mismatch = false;
    std::string mismatch_note;
  };

  RunOutcome run_one();
  /// Fold one outcome into `report`; false to abort exploration (checker
  /// bug — further schedules prove nothing).
  bool record(const RunOutcome& outcome, ExplorationReport& report);
  /// Advance the deepest non-exhausted frame; false when the tree is done.
  bool backtrack();

  std::size_t on_choose(ChoiceKind kind, std::size_t n);

  McTarget target_;
  ExplorerOptions opts_;
  CursorPolicy policy_;

  // DFS state across runs.
  std::vector<Frame> frames_;
  // Memo of fully-explored choice-point digests. unordered_set is
  // deliberate and smilint-D3-legal: contains/insert only, never iterated.
  std::unordered_set<std::uint64_t> memo_;

  // Per-run state (reset by run_one).
  System* sys_ = nullptr;  ///< live only while a schedule executes
  std::size_t cursor_ = 0;
  ScheduleTrace run_trace_;
  bool run_pruned_ = false;
  bool run_clipped_ = false;
  bool run_mismatch_ = false;
  std::string run_mismatch_note_;
  const ScheduleTrace* replay_trace_ = nullptr;  ///< replay() mode
  std::size_t choice_points_opened_ = 0;
};

}  // namespace mc
}  // namespace smilab
