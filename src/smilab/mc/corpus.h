// The model-checking corpus: small MPI programs with known, pinned
// exploration results.
//
// Each case is a self-contained target (capture-less factory functions —
// McTarget takes plain function pointers) plus the EXACT numbers the
// explorer must report for it at the corpus budgets: schedule count with
// and without pruning, pruned-run count, and verdict. The counts are part
// of the regression surface — a simulator change that adds or removes a
// nondeterministic choice point shows up as a count mismatch in
// tests/mc_test.cpp and in the CI `smilab check` run, exactly like a
// golden-hash break.
//
// The deadlock fixtures double as diagnosis_test fixtures (the wait-for
// report and the checker must agree on what a wedge looks like); spawn
// helpers for them are exported below.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "smilab/fault/fault_plan.h"
#include "smilab/mc/explorer.h"

namespace smilab {
namespace mc {

/// Exploration budgets used by the corpus expectations, the mc tests, and
/// the CI check job. Generous: the largest corpus tree is ~6 schedules.
inline constexpr std::size_t kCorpusMaxSchedules = 256;
inline constexpr std::size_t kCorpusMaxDepth = 32;

struct McCase {
  const char* name;
  const char* summary;
  McTarget target;
  Verdict expect_verdict = Verdict::kDeterministic;
  /// Completed runs with pruning on, at the corpus budgets.
  std::size_t expect_schedules = 0;
  /// Completed runs with pruning off (>= expect_schedules).
  std::size_t expect_schedules_noprune = 0;
  /// Runs completed through a memo-hit canonical tail (pruning on).
  std::size_t expect_pruned = 0;
};

[[nodiscard]] const std::vector<McCase>& corpus();
[[nodiscard]] const McCase* find_case(std::string_view name);

// --- Seeded-deadlock fixtures (shared with diagnosis_test) -------------------

/// Head-to-head rendezvous sends: rank 0 and rank 1 (separate nodes) each
/// issue a blocking over-threshold Send to the other before any Recv; each
/// waits for an ack only the other's progress could produce. Deadlocks on
/// EVERY schedule, with a provable wait-for cycle.
void spawn_sendsend_cycle(System& sys);

/// Mismatched waitall: rank 0 posts Irecv(src=1) and parks in WaitAll;
/// rank 1 computes and finishes without ever sending. The event queue
/// drains with rank 0 still parked — deadlock by exhaustion, no cycle.
void spawn_waitall_never(System& sys);

/// Schedule-DEPENDENT wildcard starvation: rank 0 computes while ranks 1
/// and 2 each send one tag-5 message (rank 1's arrives second), then rank 0
/// does Recv(ANY_SOURCE, 5) followed by Recv(src=1, 5). The canonical
/// wildcard match takes the earliest arrival (rank 2's), leaving rank 1's
/// for the specific receive: completes. The alternative match consumes
/// rank 1's message first — the specific receive then waits forever while
/// rank 2's sits unmatched. Only exploration finds it.
void spawn_anysource_starve(System& sys);

/// Crashed-peer receive: rank 0 blocks in Recv(src=1) while node 1 — which
/// hosts rank 1, still computing toward its send — is crashed by the fault
/// plan below. Deadlocks with peer_failed evidence on every schedule.
void spawn_crashed_peer(System& sys);
[[nodiscard]] FaultPlan crashed_peer_plan();

}  // namespace mc
}  // namespace smilab
