#include "smilab/mc/schedule_trace.h"

namespace smilab {
namespace mc {

namespace {

/// Parse a decimal run starting at `pos`; advances `pos` past it. False if
/// no digits are present or the value overflows a reasonable bound.
bool parse_number(const std::string& s, std::size_t& pos, std::size_t& out) {
  const std::size_t start = pos;
  std::size_t value = 0;
  while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
    value = value * 10 + static_cast<std::size_t>(s[pos] - '0');
    if (value > 1'000'000) return false;  // no real choice point is this wide
    ++pos;
  }
  if (pos == start) return false;
  out = value;
  return true;
}

}  // namespace

std::string ScheduleTrace::to_token() const {
  if (choices.empty()) return "-";
  std::string out;
  for (std::size_t i = 0; i < choices.size(); ++i) {
    if (i != 0) out += '.';
    const Choice& c = choices[i];
    out += token_letter(c.kind);
    out += std::to_string(c.chosen);
    out += '/';
    out += std::to_string(c.n);
  }
  return out;
}

std::optional<ScheduleTrace> ScheduleTrace::parse(const std::string& token) {
  ScheduleTrace trace;
  if (token == "-") return trace;
  if (token.empty()) return std::nullopt;
  std::size_t pos = 0;
  for (;;) {
    if (pos >= token.size()) return std::nullopt;  // trailing '.'
    Choice c;
    switch (token[pos]) {
      case 't': c.kind = ChoiceKind::kEventTie; break;
      case 'a': c.kind = ChoiceKind::kAnySourceMatch; break;
      case 'f': c.kind = ChoiceKind::kFaultJitter; break;
      default: return std::nullopt;
    }
    ++pos;
    if (!parse_number(token, pos, c.chosen)) return std::nullopt;
    if (pos >= token.size() || token[pos] != '/') return std::nullopt;
    ++pos;
    if (!parse_number(token, pos, c.n)) return std::nullopt;
    if (c.n < 2 || c.chosen >= c.n) return std::nullopt;
    trace.choices.push_back(c);
    if (pos == token.size()) return trace;
    if (token[pos] != '.') return std::nullopt;
    ++pos;
  }
}

}  // namespace mc
}  // namespace smilab
