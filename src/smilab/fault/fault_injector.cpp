#include "smilab/fault/fault_injector.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>

#include "smilab/sim/choice_hooks.h"

namespace smilab {

namespace {

void config_error(const std::string& what) {
  throw SimulationError(RunStatus::kConfigError, "FaultPlan: " + what);
}

void check_node(int node, int node_count, const char* kind) {
  if (node < 0 || node >= node_count) {
    config_error(std::string(kind) + " targets node " + std::to_string(node) +
                 " but the cluster has " + std::to_string(node_count) +
                 " node(s)");
  }
}

void check_interval(SimTime at, SimDuration duration, const char* kind) {
  if (at < SimTime::zero()) {
    config_error(std::string(kind) + " scheduled before t=0");
  }
  if (duration <= SimDuration::zero()) {
    config_error(std::string(kind) + " has non-positive duration");
  }
}

}  // namespace

FaultInjector::FaultInjector(System& sys, FaultPlan plan)
    : sys_(sys), plan_(std::move(plan)), rng_(sys.make_rng("fault/link")) {
  const int nodes = sys_.config().node_count;

  for (const NodeFreeze& f : plan_.freezes) {
    check_node(f.node, nodes, "freeze");
    check_interval(f.at, f.duration, "freeze");
  }
  // Freezes on one node must not overlap: the runtime models a fault stall
  // as a single whole-node condition, not a stack of them.
  std::vector<NodeFreeze> sorted = plan_.freezes;
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.node != b.node ? a.node < b.node : a.at < b.at;
  });
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].node == sorted[i - 1].node &&
        sorted[i].at < sorted[i - 1].at + sorted[i - 1].duration) {
      config_error("overlapping freezes on node " +
                   std::to_string(sorted[i].node));
    }
  }
  for (const NodeCrash& c : plan_.crashes) {
    check_node(c.node, nodes, "crash");
    if (c.at < SimTime::zero()) config_error("crash scheduled before t=0");
  }
  for (const LinkDown& l : plan_.link_downs) {
    check_node(l.node, nodes, "link_down");
    check_interval(l.at, l.duration, "link_down");
  }
  for (const SlowNode& s : plan_.slow_nodes) {
    check_node(s.node, nodes, "slow");
    check_interval(s.at, s.duration, "slow");
    if (s.rate_scale <= 0.0 || s.rate_scale > 1.0) {
      config_error("slow-node rate_scale must be in (0, 1], got " +
                   std::to_string(s.rate_scale));
    }
  }
  const auto& noise = plan_.link_noise;
  if (noise.drop_prob < 0.0 || noise.drop_prob > 1.0 ||
      noise.dup_prob < 0.0 || noise.dup_prob > 1.0) {
    config_error("link noise probabilities must be in [0, 1]");
  }
  if (plan_.jitter.window < SimDuration::zero()) {
    config_error("jitter window must be non-negative");
  }
  if (plan_.jitter.steps < 1 || plan_.jitter.steps > 16) {
    config_error("jitter steps must be in [1, 16], got " +
                 std::to_string(plan_.jitter.steps));
  }
  if (plan_.jitter.active()) {
    // Re-check the freeze overlap with every interval expanded by the full
    // window: no jittered placement may collide, whichever offsets the
    // explorer picks.
    for (std::size_t i = 1; i < sorted.size(); ++i) {
      if (sorted[i].node == sorted[i - 1].node &&
          sorted[i].at < sorted[i - 1].at + sorted[i - 1].duration +
                             plan_.jitter.window) {
        config_error("freezes on node " + std::to_string(sorted[i].node) +
                     " may overlap under the jitter window");
      }
    }
  }

  // Fault start-time jitter (schedule exploration): each timed fault asks
  // the installed SchedulePolicy which of the plan's discrete offsets to
  // take, in plan order (freezes, crashes, link_downs, slow_nodes — the
  // same order the kFaultJitter choice points appear in a replay token).
  // Offset 0 — always, with no policy — is the plan's literal start time.
  // The whole interval shifts: durations never change under jitter.
  SchedulePolicy* policy = sys_.schedule_policy();
  auto jittered = [&](SimTime at) -> SimTime {
    if (!plan_.jitter.active()) return at;
    std::size_t step = 0;
    if (policy != nullptr) {
      step = policy->choose(ChoiceKind::kFaultJitter,
                            static_cast<std::size_t>(plan_.jitter.steps));
      assert(step < static_cast<std::size_t>(plan_.jitter.steps));
    }
    return at + nanoseconds(plan_.jitter.window.ns() *
                            static_cast<std::int64_t>(step) /
                            plan_.jitter.steps);
  };

  Engine& engine = sys_.engine();
  for (const NodeFreeze& f : plan_.freezes) {
    const SimTime at = jittered(f.at);
    engine.schedule_at(at,
                       [this, node = f.node] { sys_.fault_freeze_enter(node); });
    engine.schedule_at(at + f.duration,
                       [this, node = f.node] { sys_.fault_freeze_exit(node); });
  }
  for (const NodeCrash& c : plan_.crashes) {
    engine.schedule_at(jittered(c.at),
                       [this, node = c.node] { sys_.crash_node(node); });
  }
  for (const LinkDown& l : plan_.link_downs) {
    const SimTime at = jittered(l.at);
    engine.schedule_at(at, [this, node = l.node] {
      sys_.set_link_down(node, /*down=*/true);
    });
    engine.schedule_at(at + l.duration, [this, node = l.node] {
      sys_.set_link_down(node, /*down=*/false);
    });
  }
  for (const SlowNode& s : plan_.slow_nodes) {
    const SimTime at = jittered(s.at);
    engine.schedule_at(at, [this, node = s.node, scale = s.rate_scale] {
      sys_.set_node_fault_rate(node, scale);
    });
    engine.schedule_at(at + s.duration, [this, node = s.node] {
      sys_.set_node_fault_rate(node, 1.0);
    });
  }
  if (noise.drop_prob > 0.0 || noise.dup_prob > 0.0) {
    sys_.set_link_fault_model(this);
    registered_ = true;
  }
}

FaultInjector::~FaultInjector() {
  if (registered_) sys_.set_link_fault_model(nullptr);
}

bool FaultInjector::should_drop(int /*src_node*/, int /*dst_node*/) {
  const double p = plan_.link_noise.drop_prob;
  return p > 0.0 && rng_.next_double() < p;
}

bool FaultInjector::should_duplicate(int /*src_node*/, int /*dst_node*/) {
  const double p = plan_.link_noise.dup_prob;
  return p > 0.0 && rng_.next_double() < p;
}

}  // namespace smilab
