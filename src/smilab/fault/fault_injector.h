// Turns a FaultPlan into simulator events.
//
// The injector is a pure client of System's public fault hooks: it schedules
// freeze/crash/link/slow transitions on the engine at construction time and
// (only when the plan carries link noise) installs itself as the transport's
// LinkFaultModel. Its RNG is an independent stream forked from the system
// master seed under the label "fault/link", so enabling fault injection never
// perturbs the draws seen by the SMI controller, the workload jitter, or any
// other consumer — and an *empty* plan schedules nothing and installs
// nothing, making the run bit-identical to one with no injector at all.
#pragma once

#include "smilab/fault/fault_plan.h"
#include "smilab/sim/system.h"
#include "smilab/time/rng.h"

namespace smilab {

class FaultInjector final : public LinkFaultModel {
 public:
  /// Validates `plan` against `sys` (node ranges, interval sanity,
  /// probability ranges; throws SimulationError with RunStatus::kConfigError
  /// on violations) and schedules every fault transition. Must be
  /// constructed before System::run()/try_run() and outlive the run.
  FaultInjector(System& sys, FaultPlan plan);
  ~FaultInjector() override;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  // LinkFaultModel: one decision per inter-node delivery attempt.
  bool should_drop(int src_node, int dst_node) override;
  bool should_duplicate(int src_node, int dst_node) override;

 private:
  System& sys_;
  FaultPlan plan_;
  Rng rng_;
  bool registered_ = false;
};

}  // namespace smilab
