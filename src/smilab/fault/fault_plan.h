// Deterministic fault plans.
//
// A FaultPlan is a declarative schedule of everything that can go wrong in
// a cluster *besides* SMIs: transient whole-node freezes (a hung hypervisor,
// a thermal throttle event), fail-stop node crashes, NIC link faults
// (message drop, duplication, link-down intervals) and slow-node
// degradation. The plan is pure data — the FaultInjector turns it into
// simulator events — so experiments can serialize, sweep and reproduce
// fault scenarios exactly: the same (seed, plan) pair always yields the
// same run, and an empty plan is guaranteed to reproduce the baseline run
// bit-for-bit (the injector installs nothing at all).
#pragma once

#include <vector>

#include "smilab/time/sim_time.h"

namespace smilab {

/// Transient whole-node stall: every online CPU and both NIC directions
/// stop for `duration`, like an SMM freeze but independent of the SMI
/// controller and without its firmware-specific accounting (no OS-view
/// misattribution, no cache-refill model — a hang, not a handler).
struct NodeFreeze {
  int node = 0;
  SimTime at;
  SimDuration duration;
};

/// Fail-stop crash: at `at` the node's tasks are killed (marked failed),
/// its NICs go silent forever, and queued or future traffic to the node is
/// discarded. Survivors that depend on the dead ranks become diagnosable
/// through System::try_run().
struct NodeCrash {
  int node = 0;
  SimTime at;
};

/// Both NIC directions of `node` stop serving for `duration`; in-flight
/// transfers resume afterwards and pay the usual stall-proportional TCP
/// recovery cost (NetworkParams::tcp_recovery_scale).
struct LinkDown {
  int node = 0;
  SimTime at;
  SimDuration duration;
};

/// Multiplicative compute-rate degradation of every CPU on `node` over
/// [at, at+duration): rate_scale 0.5 halves execution speed (thermal
/// throttling, a co-scheduled daemon, memory-bandwidth contention).
struct SlowNode {
  int node = 0;
  SimTime at;
  SimDuration duration;
  double rate_scale = 1.0;
};

/// Per-delivery-attempt link noise, applied to inter-node messages as they
/// leave the source NIC. Drops are retried by the transport's retransmission
/// state machine (timeout + exponential backoff + retry cap, see
/// NetworkParams); duplicates burn ingress wire time at the destination and
/// are then suppressed by transport-level dedup, so MPI matching semantics
/// stay exact.
struct LinkNoise {
  double drop_prob = 0.0;
  double dup_prob = 0.0;
};

/// Start-time jitter window for schedule exploration (mc/). When active,
/// every timed fault in the plan may start at one of `steps` discrete
/// offsets in [0, window): offset k is window * k / steps, so step 0 is
/// the plan's literal start time — the canonical schedule. The offsets are
/// CHOSEN, not drawn: with no SchedulePolicy installed the injector always
/// takes step 0, making an inactive-or-unexplored jitter window
/// bit-identical to no jitter at all. The model checker enumerates the
/// steps as kFaultJitter choice points.
struct FaultJitter {
  SimDuration window{};
  int steps = 1;
  [[nodiscard]] bool active() const {
    return window > SimDuration::zero() && steps > 1;
  }
};

/// The full fault schedule for one run. Build fluently:
///
///   FaultPlan plan;
///   plan.freeze(0, milliseconds(500), milliseconds(105))
///       .crash(3, seconds(2))
///       .drop(0.01);
struct FaultPlan {
  std::vector<NodeFreeze> freezes;
  std::vector<NodeCrash> crashes;
  std::vector<LinkDown> link_downs;
  std::vector<SlowNode> slow_nodes;
  LinkNoise link_noise;
  FaultJitter jitter;

  FaultPlan& freeze(int node, SimTime at, SimDuration duration) {
    freezes.push_back({node, at, duration});
    return *this;
  }
  FaultPlan& crash(int node, SimTime at) {
    crashes.push_back({node, at});
    return *this;
  }
  FaultPlan& link_down(int node, SimTime at, SimDuration duration) {
    link_downs.push_back({node, at, duration});
    return *this;
  }
  FaultPlan& slow(int node, SimTime at, SimDuration duration, double scale) {
    slow_nodes.push_back({node, at, duration, scale});
    return *this;
  }
  FaultPlan& drop(double prob) {
    link_noise.drop_prob = prob;
    return *this;
  }
  FaultPlan& duplicate(double prob) {
    link_noise.dup_prob = prob;
    return *this;
  }
  FaultPlan& with_jitter(SimDuration window, int steps) {
    jitter.window = window;
    jitter.steps = steps;
    return *this;
  }

  /// True when the plan perturbs nothing; the injector then guarantees a
  /// bit-identical run versus no injector at all.
  [[nodiscard]] bool empty() const {
    return freezes.empty() && crashes.empty() && link_downs.empty() &&
           slow_nodes.empty() && link_noise.drop_prob <= 0.0 &&
           link_noise.dup_prob <= 0.0;
  }
};

}  // namespace smilab
