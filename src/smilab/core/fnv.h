// Shared FNV-1a mixing for determinism digests.
//
// The model checker (mc/) and System::progress_digest() both need a cheap,
// platform-stable hash of simulation state: FNV-1a over the little-endian
// bytes of each mixed word, the same construction the golden-hash tests use
// for their trace hashes. splitmix64 is provided for order-INSENSITIVE
// combinations (hashing a multiset of pending-event times, where the heap's
// internal layout must not leak into the digest).
#pragma once

#include <cstdint>

namespace smilab {

/// Incremental FNV-1a over 64-bit words (mixed byte-wise, low byte first).
class Fnv64 {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xffu;
      h_ *= 0x100000001b3ull;
    }
  }
  void mix_signed(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }

  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

/// Stateless 64-bit finalizer (Vigna's splitmix64). Summing splitmix64 of
/// each element hashes a multiset independently of visit order.
[[nodiscard]] inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace smilab
