// Parallel experiment sweep: every table and figure in the paper is a grid
// of independent (config, seed) simulations, so the grid — not the event
// loop — is the parallel axis. ExperimentSweep fans cell indices across a
// pool of OS threads; each cell owns its System/Engine/RNG (no shared
// mutable state), and results land in a pre-sized vector at the cell's own
// grid index, so output order is deterministic and byte-identical to the
// serial run regardless of jobs or interleaving.
//
// Determinism contract (DESIGN.md §8): a cell function must be a pure
// function of its index — derive every seed from the index, never from
// shared counters or the thread id. Under that contract, jobs=N and jobs=1
// produce identical bytes; jobs=1 runs inline on the calling thread with no
// pool at all (exactly the historical serial path).
//
// SweepPool is the persistent form of the same worker loop: each worker
// thread owns one warm ActionArena for the thread's whole lifetime (reset —
// chunks retained — after every job), so a long-lived consumer like
// `smilab serve` reuses trace storage across thousands of requests instead
// of re-growing an arena per batch. ExperimentSweep::for_each runs its
// batches on a transient SweepPool, so both paths share one worker loop.
#pragma once

#include <functional>
#include <memory>
#include <vector>

namespace smilab {

/// Resolve a --jobs request: n >= 1 is taken as-is, anything else (0 or
/// negative, the "default" sentinel) becomes hardware concurrency.
[[nodiscard]] int effective_jobs(int requested);

/// Persistent worker pool with warm per-worker trace arenas.
///
/// Each worker thread installs an ActionArena::Scope for its lifetime and
/// resets the arena (retaining chunk storage) after every job, so steady-
/// state jobs bump-allocate their whole trace without touching the heap.
/// Jobs are drained FIFO; completion is observable via drain(). A job that
/// throws records the first exception, which drain() (and the destructor's
/// implicit drain) rethrows — matching ExperimentSweep's first-error
/// semantics. Consumers that must not lose a worker to an exception (the
/// serve daemon) catch inside the job itself.
class SweepPool {
 public:
  explicit SweepPool(int workers);
  ~SweepPool();
  SweepPool(const SweepPool&) = delete;
  SweepPool& operator=(const SweepPool&) = delete;

  [[nodiscard]] int workers() const { return workers_; }

  /// Enqueue a job. Never blocks on job execution.
  void submit(std::function<void()> job);

  /// Block until every submitted job has completed. Rethrows the first
  /// exception thrown by a job since the last drain() (further jobs are
  /// not cancelled; cancellation policy belongs to the caller's jobs).
  void drain();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;  // guarded_by(internal): Impl locks its mu
  int workers_;                 // guarded_by(init): fixed at construction
};

class ExperimentSweep {
 public:
  explicit ExperimentSweep(int jobs = 1) : jobs_(effective_jobs(jobs)) {}

  [[nodiscard]] int jobs() const { return jobs_; }

  /// Invoke fn(i) for i in [0, cells), fanned across min(jobs, cells)
  /// threads. Blocks until every cell completes. The first exception thrown
  /// by a cell is rethrown here (remaining cells are abandoned).
  void for_each(int cells, const std::function<void(int)>& fn) const;

  /// for_each, collecting fn(i) into result[i] (deterministic grid order).
  template <typename Result>
  [[nodiscard]] std::vector<Result> map(
      int cells, const std::function<Result(int)>& fn) const {
    std::vector<Result> results(static_cast<std::size_t>(cells));
    for_each(cells, [&](int i) {
      results[static_cast<std::size_t>(i)] = fn(i);
    });
    return results;
  }

 private:
  int jobs_;
};

}  // namespace smilab
