// Generic multi-trial experiment helpers shared by benches and examples:
// run a seeded measurement N times, accumulate statistics, and compare a
// treatment against a baseline.
#pragma once

#include <cstdint>
#include <functional>

#include "smilab/stats/online_stats.h"

namespace smilab {

/// Runs a seeded trial function several times with decorrelated seeds.
class ExperimentRunner {
 public:
  explicit ExperimentRunner(int trials, std::uint64_t base_seed = 2016)
      : trials_(trials), base_seed_(base_seed) {}

  [[nodiscard]] int trials() const { return trials_; }

  /// `trial(seed)` returns one measurement (e.g. seconds).
  [[nodiscard]] OnlineStats run(
      const std::function<double(std::uint64_t)>& trial) const {
    OnlineStats stats;
    for (int i = 0; i < trials_; ++i) {
      stats.add(trial(base_seed_ * 2654435761ull +
                      static_cast<std::uint64_t>(i) * 1013904223ull));
    }
    return stats;
  }

 private:
  int trials_;
  std::uint64_t base_seed_;
};

/// Baseline-vs-treatment comparison in the paper's delta/% format.
struct Comparison {
  OnlineStats base;
  OnlineStats treatment;

  [[nodiscard]] double delta() const { return treatment.mean() - base.mean(); }
  [[nodiscard]] double pct() const {
    return (treatment.mean() / base.mean() - 1.0) * 100.0;
  }
};

}  // namespace smilab
