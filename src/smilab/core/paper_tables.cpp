#include "smilab/core/paper_tables.h"

#include <string>

#include "smilab/core/sweep.h"

namespace smilab {

// Both builders split cell *execution* from row *formatting*: the grid of
// reported cells fans across the sweep pool (options.jobs; cells are
// independent once calibrated), results come back indexed by grid position,
// and the serial formatting pass below reads them in the original row
// order — so the rendered table is byte-identical at any job count.

Table build_nas_table(NasBenchmark bench, const std::vector<int>& node_rows,
                      int ranks_per_node, const NasRunOptions& options) {
  struct Row {
    NasClass cls;
    int nodes;
    NasJobSpec spec;
    bool reported = false;
    int cell = -1;  ///< index into `cells` when reported
  };
  std::vector<Row> rows;
  std::vector<NasJobSpec> reported;
  for (const NasClass cls : {NasClass::kA, NasClass::kB, NasClass::kC}) {
    for (const int nodes : node_rows) {
      NasJobSpec spec{bench, cls, nodes, ranks_per_node};
      if (!nas_valid_rank_count(bench, spec.ranks())) continue;
      Row row{cls, nodes, spec};
      if (nas_paper_reports(spec)) {
        row.reported = true;
        row.cell = static_cast<int>(reported.size());
        reported.push_back(spec);
      }
      rows.push_back(row);
    }
  }

  NasRunOptions cell_options = options;
  cell_options.jobs = 1;  // the cell grid is the parallel axis
  const ExperimentSweep sweep{options.jobs};
  const std::vector<NasCellResult> cells = sweep.map<NasCellResult>(
      static_cast<int>(reported.size()),
      [&](int i) { return run_nas_cell(reported[static_cast<std::size_t>(i)],
                                       cell_options); });

  Table table{{"class", "nodes", "ranks", "SMM0", "SMM1", "d1", "%1", "SMM2",
               "d2", "%2", "paper %1", "paper %2"}};
  for (const Row& row : rows) {
    table.row()
        .cell(std::string{to_string(row.cls)})
        .cell(static_cast<long long>(row.nodes))
        .cell(static_cast<long long>(row.spec.ranks()));
    if (!row.reported) {
      for (int c = 0; c < 9; ++c) table.dash();
      continue;
    }
    const NasCellResult& cell = cells[static_cast<std::size_t>(row.cell)];
    const double b = cell.smm0.mean();
    const double s1 = cell.smm1.mean();
    const double s2 = cell.smm2.mean();
    table.cell(b).cell(s1).cell(s1 - b).cell((s1 / b - 1.0) * 100.0)
        .cell(s2).cell(s2 - b).cell((s2 / b - 1.0) * 100.0);
    if (const auto paper = nas_paper_cell(row.spec)) {
      table.cell(paper->short_pct()).cell(paper->long_pct());
    } else {
      table.dash().dash();
    }
  }
  return table;
}

Table build_htt_table(NasBenchmark bench, const NasRunOptions& options) {
  struct Row {
    NasJobSpec off;
    NasJobSpec on;
  };
  std::vector<Row> rows;
  for (const NasClass cls : {NasClass::kA, NasClass::kB, NasClass::kC}) {
    for (const int nodes : {1, 2, 4, 8, 16}) {
      NasJobSpec off{bench, cls, nodes, 4, /*htt=*/false};
      NasJobSpec on{bench, cls, nodes, 4, /*htt=*/true};
      if (!nas_valid_rank_count(bench, off.ranks())) continue;
      rows.push_back(Row{off, on});
    }
  }

  struct RowResult {
    NasCellResult off;
    NasCellResult on;
  };
  NasRunOptions cell_options = options;
  cell_options.jobs = 1;
  const ExperimentSweep sweep{options.jobs};
  const std::vector<RowResult> results = sweep.map<RowResult>(
      static_cast<int>(rows.size()), [&](int i) {
        const Row& row = rows[static_cast<std::size_t>(i)];
        // off first: both variants share one calibration (HTT does not
        // change the no-SMI runtime), matching the serial memo order.
        RowResult r;
        r.off = run_nas_cell(row.off, cell_options);
        r.on = run_nas_cell(row.on, cell_options);
        return r;
      });

  Table table{{"class", "nodes", "ranks", "SMM0 ht0", "SMM0 ht1", "d0",
               "SMM1 ht0", "SMM1 ht1", "d1", "SMM2 ht0", "SMM2 ht1", "d2",
               "d2 %", "paper d2 %"}};
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    const NasCellResult& r_off = results[i].off;
    const NasCellResult& r_on = results[i].on;
    table.row()
        .cell(std::string{to_string(row.off.cls)})
        .cell(static_cast<long long>(row.off.nodes))
        .cell(static_cast<long long>(row.off.ranks()))
        .cell(r_off.smm0.mean())
        .cell(r_on.smm0.mean())
        .cell(r_on.smm0.mean() - r_off.smm0.mean())
        .cell(r_off.smm1.mean())
        .cell(r_on.smm1.mean())
        .cell(r_on.smm1.mean() - r_off.smm1.mean())
        .cell(r_off.smm2.mean())
        .cell(r_on.smm2.mean())
        .cell(r_on.smm2.mean() - r_off.smm2.mean())
        .cell((r_on.smm2.mean() / r_off.smm2.mean() - 1.0) * 100.0);
    const auto p_off = nas_paper_cell(row.off);
    const auto p_on = nas_paper_cell(row.on);
    if (p_off && p_on) {
      table.cell((p_on->smm2 / p_off->smm2 - 1.0) * 100.0);
    } else {
      table.dash();
    }
  }
  return table;
}

}  // namespace smilab
