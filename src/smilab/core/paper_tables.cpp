#include "smilab/core/paper_tables.h"

#include <string>

namespace smilab {

Table build_nas_table(NasBenchmark bench, const std::vector<int>& node_rows,
                      int ranks_per_node, const NasRunOptions& options) {
  Table table{{"class", "nodes", "ranks", "SMM0", "SMM1", "d1", "%1", "SMM2",
               "d2", "%2", "paper %1", "paper %2"}};
  for (const NasClass cls : {NasClass::kA, NasClass::kB, NasClass::kC}) {
    for (const int nodes : node_rows) {
      NasJobSpec spec{bench, cls, nodes, ranks_per_node};
      if (!nas_valid_rank_count(bench, spec.ranks())) continue;
      table.row()
          .cell(std::string{to_string(cls)})
          .cell(static_cast<long long>(nodes))
          .cell(static_cast<long long>(spec.ranks()));
      if (!nas_paper_reports(spec)) {
        for (int c = 0; c < 9; ++c) table.dash();
        continue;
      }
      const NasCellResult cell = run_nas_cell(spec, options);
      const double b = cell.smm0.mean();
      const double s1 = cell.smm1.mean();
      const double s2 = cell.smm2.mean();
      table.cell(b).cell(s1).cell(s1 - b).cell((s1 / b - 1.0) * 100.0)
          .cell(s2).cell(s2 - b).cell((s2 / b - 1.0) * 100.0);
      if (const auto paper = nas_paper_cell(spec)) {
        table.cell(paper->short_pct()).cell(paper->long_pct());
      } else {
        table.dash().dash();
      }
    }
  }
  return table;
}

Table build_htt_table(NasBenchmark bench, const NasRunOptions& options) {
  Table table{{"class", "nodes", "ranks", "SMM0 ht0", "SMM0 ht1", "d0",
               "SMM1 ht0", "SMM1 ht1", "d1", "SMM2 ht0", "SMM2 ht1", "d2",
               "d2 %", "paper d2 %"}};
  for (const NasClass cls : {NasClass::kA, NasClass::kB, NasClass::kC}) {
    for (const int nodes : {1, 2, 4, 8, 16}) {
      NasJobSpec off{bench, cls, nodes, 4, /*htt=*/false};
      NasJobSpec on{bench, cls, nodes, 4, /*htt=*/true};
      if (!nas_valid_rank_count(bench, off.ranks())) continue;
      const NasCellResult r_off = run_nas_cell(off, options);
      const NasCellResult r_on = run_nas_cell(on, options);
      table.row()
          .cell(std::string{to_string(cls)})
          .cell(static_cast<long long>(nodes))
          .cell(static_cast<long long>(off.ranks()))
          .cell(r_off.smm0.mean())
          .cell(r_on.smm0.mean())
          .cell(r_on.smm0.mean() - r_off.smm0.mean())
          .cell(r_off.smm1.mean())
          .cell(r_on.smm1.mean())
          .cell(r_on.smm1.mean() - r_off.smm1.mean())
          .cell(r_off.smm2.mean())
          .cell(r_on.smm2.mean())
          .cell(r_on.smm2.mean() - r_off.smm2.mean())
          .cell((r_on.smm2.mean() / r_off.smm2.mean() - 1.0) * 100.0);
      const auto p_off = nas_paper_cell(off);
      const auto p_on = nas_paper_cell(on);
      if (p_off && p_on) {
        table.cell((p_on->smm2 / p_off->smm2 - 1.0) * 100.0);
      } else {
        table.dash();
      }
    }
  }
  return table;
}

}  // namespace smilab
