#include "smilab/core/sweep.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "smilab/trace/action_arena.h"

namespace smilab {

int effective_jobs(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void ExperimentSweep::for_each(int cells,
                               const std::function<void(int)>& fn) const {
  if (cells <= 0) return;
  const int workers = std::min(jobs_, cells);
  if (workers <= 1) {
    // The historical serial path: same thread, same order, no pool. One
    // arena serves every cell: traces bump-allocate into it, and reset()
    // after each cell (the cell's System and programs are gone by then)
    // recycles the chunks so later cells never touch the heap.
    ActionArena arena;
    const ActionArena::Scope scope{arena};
    for (int i = 0; i < cells; ++i) {
      fn(i);
      arena.reset();
    }
    return;
  }

  std::atomic<int> next{0};
  std::atomic<bool> abort{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker = [&] {
    // Each worker owns its arena (the current-resource pointer is
    // thread-local), so cells never share allocation state across threads
    // and results stay bit-identical at any --jobs value.
    ActionArena arena;
    const ActionArena::Scope scope{arena};
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= cells || abort.load(std::memory_order_relaxed)) return;
      try {
        fn(i);
        arena.reset();
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock{error_mu};
          if (!first_error) first_error = std::current_exception();
        }
        abort.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace smilab
