#include "smilab/core/sweep.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "smilab/trace/action_arena.h"

namespace smilab {

int effective_jobs(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

struct SweepPool::Impl {
  std::mutex mu;
  std::condition_variable work_cv;   // workers wait for jobs / stop
  std::condition_variable idle_cv;   // drain() waits for quiescence
  std::deque<std::function<void()>> queue;  // guarded_by(mu)
  std::exception_ptr first_error;           // guarded_by(mu)
  int running = 0;                          // guarded_by(mu) executing jobs
  bool stop = false;                        // guarded_by(mu)
  // Filled by the ctor before any worker runs, joined by the dtor after
  // stop; never touched while workers are live.
  std::vector<std::thread> threads;  // guarded_by(init)

  void worker() {
    // Each worker owns its arena for the THREAD's lifetime (the current-
    // resource pointer is thread-local): jobs never share allocation state
    // across threads, results stay bit-identical at any worker count, and
    // chunk storage stays warm across jobs — the serve daemon's warm-worker
    // path and the sweep's per-cell recycling are the same mechanism.
    ActionArena arena;
    const ActionArena::Scope scope{arena};
    std::unique_lock<std::mutex> lock{mu};
    for (;;) {
      work_cv.wait(lock, [&] { return stop || !queue.empty(); });
      if (queue.empty()) return;  // stop requested and nothing left
      std::function<void()> job = std::move(queue.front());
      queue.pop_front();
      ++running;
      lock.unlock();
      try {
        job();
      } catch (...) {
        const std::lock_guard<std::mutex> elock{mu};
        if (!first_error) first_error = std::current_exception();
      }
      arena.reset();
      lock.lock();
      --running;
      if (queue.empty() && running == 0) idle_cv.notify_all();
    }
  }
};

SweepPool::SweepPool(int workers)
    : impl_(std::make_unique<Impl>()), workers_(effective_jobs(workers)) {
  impl_->threads.reserve(static_cast<std::size_t>(workers_));
  for (int w = 0; w < workers_; ++w) {
    impl_->threads.emplace_back([this] { impl_->worker(); });
  }
}

SweepPool::~SweepPool() {
  {
    const std::lock_guard<std::mutex> lock{impl_->mu};
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (auto& t : impl_->threads) t.join();
}

void SweepPool::submit(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock{impl_->mu};
    impl_->queue.push_back(std::move(job));
  }
  impl_->work_cv.notify_one();
}

void SweepPool::drain() {
  std::unique_lock<std::mutex> lock{impl_->mu};
  impl_->idle_cv.wait(lock, [&] {
    return impl_->queue.empty() && impl_->running == 0;
  });
  if (impl_->first_error) {
    std::exception_ptr error = impl_->first_error;
    impl_->first_error = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ExperimentSweep::for_each(int cells,
                               const std::function<void(int)>& fn) const {
  if (cells <= 0) return;
  const int workers = std::min(jobs_, cells);
  if (workers <= 1) {
    // The historical serial path: same thread, same order, no pool. One
    // arena serves every cell: traces bump-allocate into it, and reset()
    // after each cell (the cell's System and programs are gone by then)
    // recycles the chunks so later cells never touch the heap.
    ActionArena arena;
    const ActionArena::Scope scope{arena};
    for (int i = 0; i < cells; ++i) {
      fn(i);
      arena.reset();
    }
    return;
  }

  // One drainer job per worker, pulling cell indices from a shared atomic
  // counter — the same work-stealing structure the dedicated-thread
  // implementation used, now running on the shared SweepPool worker loop.
  // (The pool resets each worker's arena after the drainer returns; the
  // per-cell resets below keep memory bounded within the batch.)
  std::atomic<int> next{0};
  std::atomic<bool> abort{false};
  SweepPool pool{workers};
  for (int w = 0; w < workers; ++w) {
    pool.submit([&] {
      for (;;) {
        const int i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= cells || abort.load(std::memory_order_relaxed)) return;
        try {
          fn(i);
        } catch (...) {
          abort.store(true, std::memory_order_relaxed);
          throw;  // SweepPool records the first exception for drain()
        }
        ActionArena::reset_current();
      }
    });
  }
  pool.drain();
}

}  // namespace smilab
