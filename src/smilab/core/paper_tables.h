// Library-level generation of the paper's tables (1-5): the bench binaries
// are thin mains over these, and the structure (headers, row set, the "-"
// cells, paper-reference columns) is unit-tested here rather than by
// scraping bench stdout.
#pragma once

#include <vector>

#include "smilab/apps/nas/nas.h"
#include "smilab/apps/nas/runner.h"
#include "smilab/stats/table.h"

namespace smilab {

/// One rank-per-node half of Tables 1-3 for `bench`: columns
/// class, nodes, ranks, SMM0, SMM1, d1, %1, SMM2, d2, %2, paper %1, paper %2.
/// Unreported cells ("-" in the paper) render as dashes.
[[nodiscard]] Table build_nas_table(NasBenchmark bench,
                                    const std::vector<int>& node_rows,
                                    int ranks_per_node,
                                    const NasRunOptions& options);

/// Tables 4-5: the HTT comparison (4 ranks per node, ht=0 vs ht=1) under
/// SMM 0/1/2, with the paper's SMM2 HTT delta as the reference column.
[[nodiscard]] Table build_htt_table(NasBenchmark bench,
                                    const NasRunOptions& options);

}  // namespace smilab
