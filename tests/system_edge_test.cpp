// Edge-case tests for the System runtime: the interaction corners that the
// main suites don't reach — blocked rendezvous wake-ups, preempted
// spinners, cross-scheduling with sleeps, idle stealing boundaries, SMM
// racing with in-flight messages, tick accounting, and generator tasks.
#include <gtest/gtest.h>

#include "smilab/sim/system.h"

namespace smilab {
namespace {

SystemConfig one_node() {
  SystemConfig cfg;
  cfg.machine = MachineSpec::poweredge_r410_e5620();
  cfg.seed = 31;
  return cfg;
}

SystemConfig two_nodes() {
  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.node_count = 2;
  cfg.net = NetworkParams::wyeast();
  cfg.seed = 31;
  return cfg;
}

TEST(SystemEdgeTest, BlockedRendezvousSenderWakesOnAck) {
  // kBlock sender of a rendezvous-sized message yields its CPU while
  // waiting for the ack; a co-located compute task runs meanwhile, and the
  // sender completes after the receiver drains.
  System sys{two_nodes()};
  const GroupId g = sys.create_group(2);

  std::vector<Action> send_prog;
  send_prog.push_back(Send{1, 4 << 20, 1});
  send_prog.push_back(Compute{milliseconds(1)});
  TaskSpec sender = TaskSpec::with_actions("s", 0, std::move(send_prog));
  sender.pinned_cpu = 0;
  sender.wait_policy = WaitPolicy::kBlock;
  const TaskId sid = sys.spawn_member(g, 0, std::move(sender));

  std::vector<Action> recv_prog;
  recv_prog.push_back(Compute{milliseconds(200)});
  recv_prog.push_back(Recv{0, 1});
  sys.spawn_member(g, 1, TaskSpec::with_actions("r", 1, std::move(recv_prog)));

  std::vector<Action> bg_prog;
  bg_prog.push_back(Compute{milliseconds(100)});
  TaskSpec bg = TaskSpec::with_actions("bg", 0, std::move(bg_prog));
  bg.pinned_cpu = 0;
  const TaskId bgid = sys.spawn(std::move(bg));

  sys.run();
  // Background task ran while the sender was blocked: finished well before
  // the 200ms+transfer rendezvous completion.
  EXPECT_LT(sys.task_stats(bgid).end_time.seconds(), 0.15);
  EXPECT_GT(sys.task_stats(sid).end_time.seconds(), 0.2);
}

TEST(SystemEdgeTest, PreemptedSpinnerPicksUpMessageWhenRedispatched) {
  // A spinning receiver shares its CPU with a compute hog; the message
  // arrives while the spinner is preempted. It must complete on its next
  // timeslice, not hang.
  SystemConfig cfg = one_node();
  cfg.os.quantum = milliseconds(5);
  System sys{cfg};
  const GroupId g = sys.create_group(2);

  std::vector<Action> send_prog;
  send_prog.push_back(Compute{milliseconds(8)});
  send_prog.push_back(Send{1, 64, 3});
  TaskSpec sender = TaskSpec::with_actions("s", 0, std::move(send_prog));
  sender.pinned_cpu = 1;
  sys.spawn_member(g, 0, std::move(sender));

  std::vector<Action> recv_prog;
  recv_prog.push_back(Recv{0, 3});
  TaskSpec receiver = TaskSpec::with_actions("r", 0, std::move(recv_prog));
  receiver.pinned_cpu = 0;
  receiver.wait_policy = WaitPolicy::kSpin;
  const TaskId rid = sys.spawn_member(g, 1, std::move(receiver));

  std::vector<Action> hog_prog;
  hog_prog.push_back(Compute{milliseconds(50)});
  TaskSpec hog = TaskSpec::with_actions("hog", 0, std::move(hog_prog));
  hog.pinned_cpu = 0;
  sys.spawn(std::move(hog));

  sys.run();
  EXPECT_TRUE(sys.task_stats(rid).finished);
  EXPECT_EQ(sys.task_stats(rid).messages_received, 1);
}

TEST(SystemEdgeTest, AckBeforeWaitDoesNotStall) {
  // Fast receiver: the rendezvous ack can land while the sender is still
  // finishing its copy phase bookkeeping; the sender must not re-wait.
  System sys{one_node()};
  const GroupId g = sys.create_group(2);
  std::vector<Action> send_prog;
  send_prog.push_back(Send{1, 1 << 20, 9});  // intra-node: ack returns fast
  const TaskId sid =
      sys.spawn_member(g, 0, TaskSpec::with_actions("s", 0, std::move(send_prog)));
  std::vector<Action> recv_prog;
  recv_prog.push_back(Recv{0, 9});
  sys.spawn_member(g, 1, TaskSpec::with_actions("r", 0, std::move(recv_prog)));
  sys.run();
  EXPECT_TRUE(sys.task_stats(sid).finished);
}

TEST(SystemEdgeTest, FinishingTaskDispatchesQueuedWork) {
  SystemConfig cfg = one_node();
  cfg.os.quantum = seconds(100);  // no timeslicing: test run-to-completion
  System sys{cfg};
  std::vector<TaskId> ids;
  for (int i = 0; i < 3; ++i) {
    TaskSpec spec;
    spec.name = "t" + std::to_string(i);
    spec.node = 0;
    spec.pinned_cpu = 0;
    std::vector<Action> prog;
    prog.push_back(Compute{milliseconds(10)});
    spec.actions = std::make_unique<VectorActions>(std::move(prog));
    ids.push_back(sys.spawn(std::move(spec)));
  }
  sys.run();
  // FIFO completion, back to back.
  EXPECT_NEAR(sys.task_stats(ids[0]).end_time.seconds(), 0.010, 1e-4);
  EXPECT_NEAR(sys.task_stats(ids[1]).end_time.seconds(), 0.020, 1e-4);
  EXPECT_NEAR(sys.task_stats(ids[2]).end_time.seconds(), 0.030, 1e-4);
}

TEST(SystemEdgeTest, StealingStaysWithinTheNode) {
  // Node 0 oversubscribed, node 1 idle: the idle node must NOT steal (no
  // cross-node migration in this model), so node-0 work timeshares.
  System sys{two_nodes()};
  std::vector<TaskId> ids;
  for (int i = 0; i < 8; ++i) {
    TaskSpec spec;
    spec.name = "t" + std::to_string(i);
    spec.node = 0;
    spec.pinned_cpu = i % 4;  // only the 4 physical cores of node 0... but
    // pinned means sticky; use 8 tasks over 4 pins -> 2 per CPU.
    std::vector<Action> prog;
    prog.push_back(Compute{milliseconds(100)});
    spec.actions = std::make_unique<VectorActions>(std::move(prog));
    ids.push_back(sys.spawn(std::move(spec)));
  }
  sys.run();
  // If cross-node stealing existed, makespan would be ~100ms (8 idle CPUs
  // on node 1 + HTT); without it, 2 tasks per CPU -> ~200ms.
  EXPECT_GT(sys.last_finish_time().seconds(), 0.19);
}

TEST(SystemEdgeTest, IdleCpuStealsFromLoadedQueue) {
  // 2 CPUs online; placement gives CPU 0 two long tasks and CPU 1 one
  // short task. When CPU 1 goes idle it must pull the waiting long task,
  // so the makespan is ~110-130 ms, not ~200 ms of timesharing on CPU 0.
  SystemConfig cfg = one_node();
  System sys{cfg};
  sys.set_online_cpus(2);
  auto spawn_ms = [&](int ms) {
    TaskSpec spec;
    spec.name = "t" + std::to_string(ms);
    spec.node = 0;
    std::vector<Action> prog;
    prog.push_back(Compute{milliseconds(ms)});
    spec.actions = std::make_unique<VectorActions>(std::move(prog));
    return sys.spawn(std::move(spec));
  };
  spawn_ms(100);  // cpu 0
  spawn_ms(10);   // cpu 1
  spawn_ms(100);  // queued on cpu 0 (least-loaded tie-break after assign)
  sys.run();
  EXPECT_LT(sys.last_finish_time().seconds(), 0.150);
  EXPECT_GT(sys.last_finish_time().seconds(), 0.100);
}

TEST(SystemEdgeTest, PinnedTasksAreNeverStolen) {
  // Same shape, but the queued task is pinned to CPU 0: the idle CPU must
  // leave it alone and the makespan reflects timesharing on CPU 0.
  SystemConfig cfg = one_node();
  System sys{cfg};
  sys.set_online_cpus(2);
  auto spawn_ms = [&](int ms, int pin) {
    TaskSpec spec;
    spec.name = "t";
    spec.node = 0;
    spec.pinned_cpu = pin;
    std::vector<Action> prog;
    prog.push_back(Compute{milliseconds(ms)});
    spec.actions = std::make_unique<VectorActions>(std::move(prog));
    return sys.spawn(std::move(spec));
  };
  spawn_ms(100, 0);
  spawn_ms(10, 1);
  spawn_ms(100, 0);
  sys.run();
  EXPECT_GT(sys.last_finish_time().seconds(), 0.195);
}

TEST(SystemEdgeTest, MessageArrivingDuringSmmDrainsAfterExit) {
  SystemConfig cfg = two_nodes();
  cfg.smi = SmiConfig::long_every_second();
  cfg.smi.fixed_initial_phase = milliseconds(50);  // both nodes freeze at 50ms
  cfg.smi.synchronized_across_nodes = true;
  cfg.machine.hot_set_bytes = 0;
  System sys{cfg};
  const GroupId g = sys.create_group(2);
  // Sender injects just before the freeze; the transfer is mid-wire when
  // both nodes enter SMM at 50 ms (window [50, ~155] ms), so the NIC pauses
  // and delivery completes only after SMM exit.
  std::vector<Action> send_prog;
  send_prog.push_back(Compute{seconds_d(0.0495)});
  send_prog.push_back(Send{1, 60'000, 2});  // eager, ~1.4ms of wire time
  sys.spawn_member(g, 0, TaskSpec::with_actions("s", 0, std::move(send_prog)));
  std::vector<Action> recv_prog;
  recv_prog.push_back(Recv{0, 2});
  const TaskId rid =
      sys.spawn_member(g, 1, TaskSpec::with_actions("r", 1, std::move(recv_prog)));
  sys.run();
  const TaskStats& stats = sys.task_stats(rid);
  EXPECT_TRUE(stats.finished);
  // Receiver could not complete before its node's SMM exit (~155ms).
  EXPECT_GT(stats.end_time.seconds(), 0.150);
  EXPECT_LT(stats.end_time.seconds(), 0.20);
}

TEST(SystemEdgeTest, TickyKernelRunsSlightlySlower) {
  auto wall_with_tickless = [](bool tickless) {
    SystemConfig cfg;
    cfg.machine = MachineSpec::wyeast_e5520();
    cfg.os.tickless = tickless;
    cfg.seed = 3;
    System sys{cfg};
    std::vector<Action> prog;
    prog.push_back(Compute{seconds(10)});
    const TaskId id = sys.spawn(TaskSpec::with_actions("t", 0, std::move(prog)));
    sys.run();
    return (sys.task_stats(id).end_time - sys.task_stats(id).start_time).seconds();
  };
  const double tickless = wall_with_tickless(true);
  const double ticky = wall_with_tickless(false);
  EXPECT_DOUBLE_EQ(tickless, 10.0);
  EXPECT_GT(ticky, 10.0);
  EXPECT_LT(ticky, 10.1);  // ~0.2% tick overhead
}

TEST(SystemEdgeTest, GeneratorTaskRunsUntilExhausted) {
  System sys{one_node()};
  int produced = 0;
  TaskSpec spec;
  spec.name = "gen";
  spec.node = 0;
  spec.actions = std::make_unique<GeneratorActions>(
      [&produced]() -> std::optional<Action> {
        if (produced >= 5) return std::nullopt;
        ++produced;
        return Action{Compute{milliseconds(2)}};
      });
  const TaskId id = sys.spawn(std::move(spec));
  sys.run();
  EXPECT_EQ(produced, 5);
  EXPECT_NEAR(sys.task_stats(id).end_time.seconds(), 0.010, 1e-6);
}

TEST(SystemEdgeTest, CallActionsExecuteInOrderWithoutTime) {
  System sys{one_node()};
  std::vector<int> order;
  std::vector<Action> prog;
  prog.push_back(Call{[&order] { order.push_back(1); }});
  prog.push_back(Compute{milliseconds(1)});
  prog.push_back(Call{[&order] { order.push_back(2); }});
  prog.push_back(Call{[&order] { order.push_back(3); }});
  const TaskId id = sys.spawn(TaskSpec::with_actions("t", 0, std::move(prog)));
  sys.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_NEAR(sys.task_stats(id).end_time.seconds(), 0.001, 1e-9);
}

TEST(SystemEdgeTest, SleepChainAccumulatesExactly) {
  System sys{one_node()};
  std::vector<Action> prog;
  for (int i = 0; i < 10; ++i) {
    prog.push_back(Sleep{milliseconds(3)});
    prog.push_back(Compute{milliseconds(2)});
  }
  const TaskId id = sys.spawn(TaskSpec::with_actions("t", 0, std::move(prog)));
  sys.run();
  EXPECT_NEAR(sys.task_stats(id).end_time.seconds(), 0.050, 1e-9);
  EXPECT_NEAR(sys.task_stats(id).true_cpu_time.seconds(), 0.020, 1e-9);
}

TEST(SystemEdgeTest, RunForAdvancesPartially) {
  System sys{one_node()};
  std::vector<Action> prog;
  prog.push_back(Compute{seconds(1)});
  const TaskId id = sys.spawn(TaskSpec::with_actions("t", 0, std::move(prog)));
  EXPECT_TRUE(sys.run_for(milliseconds(400)));
  EXPECT_FALSE(sys.all_finished());
  EXPECT_EQ(sys.now().seconds(), 0.4);
  sys.run();
  EXPECT_TRUE(sys.all_finished());
  EXPECT_EQ(sys.task_stats(id).end_time.seconds(), 1.0);
}

TEST(SystemEdgeTest, SmmExitRestoresTimeslicingForSpinners) {
  // Regression (found by the fuzz harness): SMM entry cancels the quantum
  // timer; if exit failed to re-arm it, a spinning receiver sharing the
  // CPU with its own sender would starve the sender forever.
  SystemConfig cfg = one_node();
  cfg.smi = SmiConfig::short_with_gap(50);  // frequent SMIs to hit the race
  cfg.os.quantum = milliseconds(5);
  System sys{cfg};
  sys.set_online_cpus(1);
  const GroupId g = sys.create_group(2);

  std::vector<Action> receiver;
  receiver.push_back(Recv{1, 4});
  TaskSpec r = TaskSpec::with_actions("r", 0, std::move(receiver));
  r.wait_policy = WaitPolicy::kSpin;
  const TaskId rid = sys.spawn_member(g, 0, std::move(r));

  std::vector<Action> sender;
  sender.push_back(Compute{milliseconds(120)});  // spans several SMIs
  sender.push_back(Send{0, 64, 4});
  sys.spawn_member(g, 1, TaskSpec::with_actions("s", 0, std::move(sender)));

  sys.run();  // would throw max_sim_time before the fix
  EXPECT_TRUE(sys.task_stats(rid).finished);
  EXPECT_LT(sys.last_finish_time().seconds(), 1.0);
  sys.validate();
}

TEST(SystemEdgeTest, HotplugLimitsHttActivation) {
  // With 4 CPUs online there are no sibling pairs: node_htt_active false,
  // so the HTT refill extra never fires even under long SMIs.
  SystemConfig cfg = one_node();
  cfg.smi = SmiConfig::long_every_second();
  cfg.htt_refill_fraction = 10.0;  // absurd on purpose: visible if active
  System sys{cfg};
  sys.set_online_cpus(4);
  std::vector<Action> prog;
  prog.push_back(Compute{seconds(5)});
  const TaskId id = sys.spawn(TaskSpec::with_actions("t", 0, std::move(prog)));
  sys.run();
  // Slowdown stays near the duty cycle: the x10 refill never applied.
  const double wall =
      (sys.task_stats(id).end_time - sys.task_stats(id).start_time).seconds();
  EXPECT_LT(wall, 5.0 * 1.13);
}

}  // namespace
}  // namespace smilab
