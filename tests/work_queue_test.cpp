// Tests for the work-queue thread substrate: dynamic load balancing across
// workers, HTT interaction, SMI stretching, and determinism.
#include <gtest/gtest.h>

#include <numeric>

#include "smilab/thread/work_queue.h"

namespace smilab {
namespace {

SystemConfig base() {
  SystemConfig cfg;
  cfg.machine = MachineSpec::poweredge_r410_e5620();
  cfg.seed = 13;
  return cfg;
}

TEST(WorkQueueTest, EvenItemsSplitExactly) {
  const auto items = even_items(seconds(1), 8);
  ASSERT_EQ(items.size(), 8u);
  SimDuration total{};
  for (const auto& item : items) total += item;
  EXPECT_EQ(total, seconds(1));
}

TEST(WorkQueueTest, AllItemsProcessedExactlyOnce) {
  System sys{base()};
  WorkQueueSpec spec;
  spec.workers = 4;
  spec.items = even_items(milliseconds(400), 40);
  const WorkQueueResult result = run_work_queue(sys, std::move(spec));
  const int total = std::accumulate(result.items_per_worker.begin(),
                                    result.items_per_worker.end(), 0);
  EXPECT_EQ(total, 40);
  for (const int n : result.items_per_worker) EXPECT_EQ(n, 10);  // 4 cores
}

TEST(WorkQueueTest, MakespanScalesWithWorkers) {
  auto makespan = [](int workers) {
    System sys{base()};
    WorkQueueSpec spec;
    spec.workers = workers;
    spec.items = even_items(seconds(4), 64);
    return run_work_queue(sys, std::move(spec)).finished.seconds();
  };
  EXPECT_NEAR(makespan(1), 4.0, 1e-6);
  EXPECT_NEAR(makespan(4), 1.0, 0.01);
}

TEST(WorkQueueTest, UnevenItemsBalanceDynamically) {
  // One huge item plus many small ones: static partitioning would give a
  // makespan near the big item's duration plus its share of small items;
  // the pull queue keeps the other workers busy on the smalls.
  System sys{base()};
  WorkQueueSpec spec;
  spec.workers = 4;
  spec.items.push_back(milliseconds(400));
  for (int i = 0; i < 120; ++i) spec.items.push_back(milliseconds(10));
  const WorkQueueResult result = run_work_queue(sys, std::move(spec));
  EXPECT_NEAR(result.finished.seconds(), 0.410, 0.02);
  // Worker 0 took the big item; the others split the smalls.
  EXPECT_GE(*std::max_element(result.items_per_worker.begin(),
                              result.items_per_worker.end()),
            35);
}

TEST(WorkQueueTest, MoreWorkersThanCpusTimeshare) {
  System sys{base()};
  sys.set_online_cpus(2);
  WorkQueueSpec spec;
  spec.workers = 8;
  spec.items = even_items(seconds(2), 64);
  const WorkQueueResult result = run_work_queue(sys, std::move(spec));
  EXPECT_NEAR(result.finished.seconds(), 1.0, 0.05);  // 2s over 2 CPUs
}

TEST(WorkQueueTest, LongSmisStretchTheMakespan) {
  auto makespan = [](SmiConfig smi) {
    SystemConfig cfg = base();
    cfg.smi = smi;
    cfg.machine.hot_set_bytes = 0;
    System sys{cfg};
    sys.set_online_cpus(4);
    WorkQueueSpec spec;
    spec.workers = 4;
    spec.items = even_items(seconds(8), 128);
    return run_work_queue(sys, std::move(spec)).finished.seconds();
  };
  const double clean = makespan(SmiConfig::none());
  const double noisy = makespan(SmiConfig::long_every_second());
  EXPECT_NEAR(noisy / clean, 1.105, 0.03);  // the duty cycle, no sync losses
}

TEST(WorkQueueTest, DeterministicPerSeed) {
  auto once = [] {
    SystemConfig cfg = base();
    cfg.smi = SmiConfig::long_with_gap(300);
    System sys{cfg};
    WorkQueueSpec spec;
    spec.workers = 6;
    spec.items = even_items(seconds(3), 48);
    return run_work_queue(sys, std::move(spec)).finished.ns();
  };
  EXPECT_EQ(once(), once());
}

}  // namespace
}  // namespace smilab
