// Tests for the clock-skew analyzer (IISWC'13 "time scaling
// discrepancies") and the ASCII chart renderer used by the figure benches.
#include <gtest/gtest.h>

#include "smilab/sim/system.h"
#include "smilab/smm/clock_skew.h"
#include "smilab/stats/ascii_chart.h"

namespace smilab {
namespace {

TEST(ClockSkewTest, NoSmmMeansNoSkew) {
  SmmAccounting acct{1};
  const auto report = analyze_clock_skew(acct, 0, SimTime::zero() + seconds(10),
                                         milliseconds(1));
  EXPECT_EQ(report.expected_ticks, 10'000);
  EXPECT_EQ(report.lost_ticks, 0);
  EXPECT_EQ(report.skew_fraction, 0.0);
}

TEST(ClockSkewTest, LongIntervalSwallowsItsTicks) {
  SmmAccounting acct{1};
  // SMM [1000.5ms, 1105.5ms): ticks due at 1001..1105 ms are lost (105),
  // the 1106ms tick fires normally.
  acct.record(SmmInterval{0, SimTime::zero() + microseconds(1'000'500),
                          SimTime::zero() + microseconds(1'105'500)});
  const auto report = analyze_clock_skew(acct, 0, SimTime::zero() + seconds(10),
                                         milliseconds(1));
  EXPECT_EQ(report.lost_ticks, 105);
  EXPECT_EQ(report.tick_clock_behind, milliseconds(105));
  EXPECT_NEAR(report.skew_fraction, 0.0105, 1e-4);
}

TEST(ClockSkewTest, ShortIntervalsLoseFewTicks) {
  SmmAccounting acct{1};
  for (int i = 0; i < 10; ++i) {
    const SimTime enter = SimTime::zero() + seconds(i) + microseconds(300);
    acct.record(SmmInterval{0, enter, enter + milliseconds(2)});
  }
  const auto report = analyze_clock_skew(acct, 0, SimTime::zero() + seconds(10),
                                         milliseconds(1));
  EXPECT_LE(report.lost_ticks, 20);
  EXPECT_GE(report.lost_ticks, 10);
}

TEST(ClockSkewTest, OtherNodesIntervalsIgnored) {
  SmmAccounting acct{2};
  acct.record(SmmInterval{1, SimTime::zero() + seconds(1),
                          SimTime::zero() + seconds(1) + milliseconds(105)});
  const auto report = analyze_clock_skew(acct, 0, SimTime::zero() + seconds(5),
                                         milliseconds(1));
  EXPECT_EQ(report.lost_ticks, 0);
}

TEST(ClockSkewTest, EndToEndSkewTracksDutyCycle) {
  // A real run: the jiffy clock on a long-SMI node falls behind by about
  // the SMM residency share of wall time.
  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.smi = SmiConfig::long_every_second();
  cfg.seed = 11;
  System sys{cfg};
  std::vector<Action> prog;
  prog.push_back(Compute{seconds(30)});
  sys.spawn(TaskSpec::with_actions("t", 0, std::move(prog)));
  sys.run();
  const auto report = analyze_clock_skew(sys.smm_accounting(), 0,
                                         sys.last_finish_time(),
                                         milliseconds(1));
  EXPECT_NEAR(report.skew_fraction, 0.095, 0.015);  // ~duty cycle
  EXPECT_GT(report.tick_clock_behind, seconds(2));
}

TEST(AsciiChartTest, RendersSymbolsAndLegend) {
  Series series{"x", {"alpha", "beta"}};
  for (int i = 0; i <= 10; ++i) {
    series.add_point(i, {static_cast<double>(i), 10.0 - i});
  }
  const std::string chart = render_ascii_chart(series);
  EXPECT_NE(chart.find('1'), std::string::npos);
  EXPECT_NE(chart.find('2'), std::string::npos);
  EXPECT_NE(chart.find("legend: 1=alpha 2=beta"), std::string::npos);
  // Axis labels include the extremes.
  EXPECT_NE(chart.find("10"), std::string::npos);
}

TEST(AsciiChartTest, MonotoneSeriesSlopesAcrossRows) {
  Series series{"x", {"up"}};
  for (int i = 0; i <= 20; ++i) series.add_point(i, {static_cast<double>(i)});
  ChartOptions options;
  options.height = 10;
  options.width = 40;
  const std::string chart = render_ascii_chart(series, options);
  // The first plotted row (top) must contain the symbol near the right
  // edge and the bottom row near the left edge.
  const auto first_line_end = chart.find('\n');
  const std::string top = chart.substr(0, first_line_end);
  EXPECT_GT(top.rfind('1'), top.size() / 2);
}

TEST(AsciiChartTest, DegenerateInputsHandled) {
  Series empty{"x", {"a"}};
  EXPECT_NE(render_ascii_chart(empty).find("not enough data"), std::string::npos);
  Series flat{"x", {"a"}};
  flat.add_point(1, {5});
  flat.add_point(1, {5});
  EXPECT_NE(render_ascii_chart(flat).find("degenerate"), std::string::npos);
}

}  // namespace
}  // namespace smilab
