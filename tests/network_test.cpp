// Unit and integration tests for the network model: cost helpers, NIC
// queue serialization, and the SMM coupling (NIC pauses, TCP recovery).
#include <gtest/gtest.h>

#include "smilab/net/network.h"
#include "smilab/sim/system.h"

namespace smilab {
namespace {

TEST(NetworkModelTest, WireXmitScalesWithBytes) {
  NetworkParams params;
  params.bandwidth_bytes_per_s = 100e6;
  params.per_message_wire_overhead = microseconds(10);
  const NetworkModel net{params};
  EXPECT_NEAR(net.wire_xmit(0).seconds(), 10e-6, 1e-12);
  EXPECT_NEAR(net.wire_xmit(1'000'000).seconds(), 10e-6 + 0.01, 1e-9);
}

TEST(NetworkModelTest, CpuCostsIncludeOverheadAndCopy) {
  const NetworkModel net{NetworkParams{}};
  const auto& p = net.params();
  EXPECT_EQ(net.send_cpu_cost(0), p.send_overhead);
  EXPECT_GT(net.send_cpu_cost(1 << 20), p.send_overhead);
  EXPECT_GT(net.recv_cpu_cost(1 << 20), net.recv_cpu_cost(1 << 10));
}

TEST(NetworkModelTest, RendezvousThreshold) {
  const NetworkModel net{NetworkParams{}};
  EXPECT_FALSE(net.is_rendezvous(64 * 1024));
  EXPECT_TRUE(net.is_rendezvous(64 * 1024 + 1));
}

TEST(NetworkModelTest, IntraNodeIsFasterThanWire) {
  const NetworkModel net{NetworkParams::wyeast()};
  const std::int64_t bytes = 1 << 20;
  EXPECT_LT(net.intra_transfer(bytes).ns(), net.wire_xmit(bytes).ns());
}

// --- NIC behaviour through the System ---------------------------------------

SystemConfig two_node_config() {
  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.node_count = 2;
  cfg.net = NetworkParams::wyeast();
  cfg.net.tcp_recovery_scale = 0.0;  // isolate pure serialization
  cfg.seed = 4;
  return cfg;
}

double one_transfer_seconds(std::int64_t bytes, int senders) {
  System sys{two_node_config()};
  const GroupId g = sys.create_group(2 * senders);
  for (int s = 0; s < senders; ++s) {
    std::vector<Action> send_prog;
    send_prog.push_back(Send{senders + s, bytes, s});
    sys.spawn_member(g, s, TaskSpec::with_actions("s", 0, std::move(send_prog)));
    std::vector<Action> recv_prog;
    recv_prog.push_back(Recv{s, s});
    sys.spawn_member(g, senders + s,
                     TaskSpec::with_actions("r", 1, std::move(recv_prog)));
  }
  sys.run();
  return sys.last_finish_time().seconds();
}

TEST(NicTest, ConcurrentFlowsSerializeOnTheNic) {
  // 4 concurrent 1MB transfers across the same node pair: the egress NIC
  // serializes all four (4x one stage) and the last message still pays its
  // ingress stage, so ~(4+1)/2 of a single transfer's two-stage time —
  // well above "they all complete together" (1x) and below fully serial
  // end-to-end (4x).
  const double one = one_transfer_seconds(1 << 20, 1);
  const double four = one_transfer_seconds(1 << 20, 4);
  EXPECT_GT(four, one * 2.2);
  EXPECT_LT(four, one * 3.0);
}

TEST(NicTest, InterNodeBytesCounted) {
  System sys{two_node_config()};
  const GroupId g = sys.create_group(2);
  std::vector<Action> send_prog;
  send_prog.push_back(Send{1, 12345, 1});
  sys.spawn_member(g, 0, TaskSpec::with_actions("s", 0, std::move(send_prog)));
  std::vector<Action> recv_prog;
  recv_prog.push_back(Recv{0, 1});
  sys.spawn_member(g, 1, TaskSpec::with_actions("r", 1, std::move(recv_prog)));
  sys.run();
  EXPECT_EQ(sys.inter_node_bytes(), 12345);
}

TEST(NicTest, IntraNodeTrafficSkipsTheNic) {
  System sys{two_node_config()};
  const GroupId g = sys.create_group(2);
  std::vector<Action> send_prog;
  send_prog.push_back(Send{1, 1 << 16, 1});
  sys.spawn_member(g, 0, TaskSpec::with_actions("s", 0, std::move(send_prog)));
  std::vector<Action> recv_prog;
  recv_prog.push_back(Recv{0, 1});
  sys.spawn_member(g, 1, TaskSpec::with_actions("r", 0, std::move(recv_prog)));
  sys.run();
  EXPECT_EQ(sys.inter_node_bytes(), 0);
}

TEST(NicTest, TransferStallsWhileReceiverInSmm) {
  // A big transfer injected right before the receiver's node enters a long
  // SMM interval: its ingress pauses, so completion slips by ~the residency.
  auto run_with = [](SmiKind kind) {
    SystemConfig cfg = two_node_config();
    cfg.smi.kind = kind;
    cfg.smi.interval_jiffies = 10'000;           // one SMI in-run
    cfg.smi.fixed_initial_phase = milliseconds(5);  // hits node 1 early
    cfg.machine.hot_set_bytes = 0;
    System sys{cfg};
    const GroupId g = sys.create_group(2);
    std::vector<Action> send_prog;
    send_prog.push_back(Send{1, 4 << 20, 1});  // ~100ms of wire time
    sys.spawn_member(g, 0, TaskSpec::with_actions("s", 0, std::move(send_prog)));
    std::vector<Action> recv_prog;
    recv_prog.push_back(Recv{0, 1});
    sys.spawn_member(g, 1, TaskSpec::with_actions("r", 1, std::move(recv_prog)));
    sys.run();
    return sys.last_finish_time().seconds();
  };
  const double clean = run_with(SmiKind::kNone);
  const double frozen = run_with(SmiKind::kLong);
  EXPECT_GT(frozen, clean + 0.080);  // at least most of one 100-110ms freeze
  EXPECT_LT(frozen, clean + 0.35);
}

TEST(NicTest, TcpRecoveryAddsOutageAfterSmm) {
  auto run_with = [](double recovery_scale) {
    SystemConfig cfg = two_node_config();
    cfg.net.tcp_recovery_scale = recovery_scale;
    cfg.smi = SmiConfig::long_every_second();
    cfg.smi.fixed_initial_phase = milliseconds(10);
    cfg.machine.hot_set_bytes = 0;
    System sys{cfg};
    const GroupId g = sys.create_group(2);
    std::vector<Action> send_prog;
    for (int i = 0; i < 20; ++i) send_prog.push_back(Send{1, 4 << 20, i});
    sys.spawn_member(g, 0, TaskSpec::with_actions("s", 0, std::move(send_prog)));
    std::vector<Action> recv_prog;
    for (int i = 0; i < 20; ++i) recv_prog.push_back(Recv{0, i});
    sys.spawn_member(g, 1, TaskSpec::with_actions("r", 1, std::move(recv_prog)));
    sys.run();
    return sys.last_finish_time().seconds();
  };
  EXPECT_GT(run_with(1.5), run_with(0.0) * 1.02);
}

}  // namespace
}  // namespace smilab
