// Tests for the SMI injection engine: interval/duration contracts, re-arm
// policies, phase behaviour, HTT residency knob, and accounting.
#include <gtest/gtest.h>

#include "smilab/sim/system.h"
#include "smilab/smm/smi_controller.h"

namespace smilab {
namespace {

SystemConfig config_with(SmiConfig smi, int nodes = 1) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.node_count = nodes;
  cfg.smi = smi;
  cfg.machine.hot_set_bytes = 0;
  cfg.seed = 21;
  return cfg;
}

void run_busy(System& sys, SimDuration work, int node = 0) {
  std::vector<Action> prog;
  prog.push_back(Compute{work});
  sys.spawn(TaskSpec::with_actions("busy", node, std::move(prog)));
  sys.run();
}

TEST(SmiConfigTest, PresetsMatchPaper) {
  const SmiConfig shrt = SmiConfig::short_every_second();
  EXPECT_EQ(shrt.kind, SmiKind::kShort);
  EXPECT_EQ(shrt.interval_jiffies, 1000);
  EXPECT_EQ(shrt.interval(), seconds(1));
  EXPECT_EQ(shrt.mean_duration(), milliseconds(2));

  const SmiConfig lng = SmiConfig::long_every_second();
  EXPECT_EQ(lng.mean_duration(), milliseconds(105));
  EXPECT_TRUE(lng.enabled());
  EXPECT_FALSE(SmiConfig::none().enabled());
  EXPECT_EQ(SmiConfig::long_with_gap(50).interval(), milliseconds(50));
}

TEST(SmiControllerTest, DurationsStayInBand) {
  System sys{config_with(SmiConfig::long_every_second())};
  run_busy(sys, seconds(30));
  const auto& acct = sys.smm_accounting();
  ASSERT_GT(acct.total_smi_count(), 20);
  for (const auto& interval : acct.intervals()) {
    EXPECT_GE(interval.duration(), milliseconds(100));
    EXPECT_LT(interval.duration(), milliseconds(110));
  }
}

TEST(SmiControllerTest, GapMeasuredFromExit) {
  System sys{config_with(SmiConfig::long_every_second())};
  run_busy(sys, seconds(20));
  const auto& intervals = sys.smm_accounting().intervals();
  ASSERT_GE(intervals.size(), 3u);
  for (std::size_t i = 1; i < intervals.size(); ++i) {
    const SimDuration gap = intervals[i].enter - intervals[i - 1].exit;
    EXPECT_EQ(gap, seconds(1)) << "at interval " << i;
  }
}

TEST(SmiControllerTest, RearmFromEntryKeepsNominalPeriodWhenPossible) {
  SmiConfig smi = SmiConfig::short_with_gap(100);  // 1-3ms every 100ms
  smi.rearm_from_entry = true;
  System sys{config_with(smi)};
  run_busy(sys, seconds(5));
  const auto& intervals = sys.smm_accounting().intervals();
  ASSERT_GE(intervals.size(), 10u);
  for (std::size_t i = 1; i < intervals.size(); ++i) {
    const SimDuration period = intervals[i].enter - intervals[i - 1].enter;
    EXPECT_EQ(period, milliseconds(100)) << "at interval " << i;
  }
}

TEST(SmiControllerTest, RearmFromEntryStarvesBelowDuration) {
  // Long SMIs (>=100ms) at a 50ms from-entry period: near-zero availability.
  SmiConfig smi = SmiConfig::long_with_gap(50);
  smi.rearm_from_entry = true;
  System sys{config_with(smi)};
  std::vector<Action> prog;
  prog.push_back(Compute{milliseconds(50)});
  const TaskId id = sys.spawn(TaskSpec::with_actions("t", 0, std::move(prog)));
  sys.run();
  const double wall =
      (sys.task_stats(id).end_time - sys.task_stats(id).start_time).seconds();
  EXPECT_GT(wall, 5.0);  // 50ms of work takes >100x longer
}

TEST(SmiControllerTest, FixedPhaseIsExact) {
  SmiConfig smi = SmiConfig::long_every_second();
  smi.fixed_initial_phase = milliseconds(250);
  System sys{config_with(smi)};
  run_busy(sys, seconds(3));
  const auto& intervals = sys.smm_accounting().intervals();
  ASSERT_FALSE(intervals.empty());
  EXPECT_EQ(intervals[0].enter, SimTime::zero() + milliseconds(250));
}

TEST(SmiControllerTest, IndependentPhasesAcrossNodes) {
  System sys{config_with(SmiConfig::long_every_second(), 4)};
  for (int n = 0; n < 4; ++n) {
    std::vector<Action> prog;
    prog.push_back(Compute{seconds(3)});
    sys.spawn(TaskSpec::with_actions("t", n, std::move(prog)));
  }
  sys.run();
  // First SMI per node: all distinct with overwhelming probability.
  std::vector<SimTime> firsts(4, SimTime::max());
  for (const auto& interval : sys.smm_accounting().intervals()) {
    auto& first = firsts[static_cast<std::size_t>(interval.node)];
    first = std::min(first, interval.enter);
  }
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      EXPECT_NE(firsts[static_cast<std::size_t>(a)],
                firsts[static_cast<std::size_t>(b)]);
    }
  }
}

TEST(SmiControllerTest, HttResidencyFactorStretchesIntervals) {
  SystemConfig cfg = config_with(SmiConfig::long_every_second());
  cfg.smm_htt_residency_factor = 1.5;
  System sys{cfg};  // all 8 logical CPUs online -> HTT active
  run_busy(sys, seconds(10));
  for (const auto& interval : sys.smm_accounting().intervals()) {
    EXPECT_GE(interval.duration(), milliseconds(150));
    EXPECT_LT(interval.duration(), milliseconds(165));
  }
}

TEST(SmiControllerTest, ResidencyFactorInertWithoutSiblings) {
  SystemConfig cfg = config_with(SmiConfig::long_every_second());
  cfg.smm_htt_residency_factor = 1.5;
  System sys{cfg};
  sys.set_online_cpus(4);  // no sibling pairs online
  run_busy(sys, seconds(10));
  for (const auto& interval : sys.smm_accounting().intervals()) {
    EXPECT_LT(interval.duration(), milliseconds(110));
  }
}

TEST(SmiControllerTest, FiredCounterMatchesAccounting) {
  System sys{config_with(SmiConfig::short_every_second(), 3)};
  for (int n = 0; n < 3; ++n) {
    std::vector<Action> prog;
    prog.push_back(Compute{seconds(5)});
    sys.spawn(TaskSpec::with_actions("t", n, std::move(prog)));
  }
  sys.run();
  ASSERT_NE(sys.smi_controller(), nullptr);
  // Fired >= recorded: the last SMI on each node may still be in flight.
  EXPECT_GE(sys.smi_controller()->fired(),
            sys.smm_accounting().total_smi_count());
  EXPECT_LE(sys.smi_controller()->fired() -
                sys.smm_accounting().total_smi_count(),
            3);
}

TEST(SmmAccountingTest, PerNodeCountersAndBiosbits) {
  SmmAccounting acct{2};
  acct.record(SmmInterval{0, SimTime{0}, SimTime{0} + microseconds(100)});
  acct.record(SmmInterval{0, SimTime::zero() + seconds(1),
                          SimTime::zero() + seconds(1) + milliseconds(2)});
  acct.record(SmmInterval{1, SimTime::zero() + seconds(2),
                          SimTime::zero() + seconds(2) + milliseconds(105)});
  EXPECT_EQ(acct.smi_count(0), 2);
  EXPECT_EQ(acct.smi_count(1), 1);
  EXPECT_EQ(acct.total_smi_count(), 3);
  EXPECT_EQ(acct.residency(0), microseconds(100) + milliseconds(2));
  // 100us interval is within the BIOSBITS guidance; the other two violate.
  EXPECT_EQ(acct.biosbits_violations(), 2);
}

}  // namespace
}  // namespace smilab
