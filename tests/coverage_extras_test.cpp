// Additional coverage: new collectives under SMI noise, nonblocking
// builder structure, option parser corners, and chart options.
#include <gtest/gtest.h>

#include <variant>

#include "smilab/apps/nas/nas.h"
#include "smilab/cli/options.h"
#include "smilab/mpi/collectives.h"
#include "smilab/mpi/job.h"
#include "smilab/stats/ascii_chart.h"

namespace smilab {
namespace {

double run_programs(std::vector<RankProgram> programs, SmiConfig smi,
                    std::uint64_t seed) {
  const int p = static_cast<int>(programs.size());
  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.node_count = p;
  cfg.net = NetworkParams::wyeast();
  cfg.smi = smi;
  cfg.seed = seed;
  System sys{cfg};
  return run_mpi_job(sys, std::move(programs), block_placement(p, 1),
                     WorkloadProfile::dense_fp())
      .elapsed.seconds();
}

class TreeCollectivesUnderSmi : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Sizes, TreeCollectivesUnderSmi,
                         ::testing::Values(4, 8, 16));

TEST_P(TreeCollectivesUnderSmi, GatherScatterChainsSurviveNoise) {
  const int p = GetParam();
  auto build = [&] {
    auto programs = make_rank_programs(p);
    TagAllocator tags;
    for (int iter = 0; iter < 10; ++iter) {
      for (auto& rp : programs) rp.compute(milliseconds(50));
      gather(programs, 0, 4096, tags);
      scatter(programs, 0, 4096, tags);
      reduce_scatter(programs, 512, tags);
      scan(programs, 256, tags);
    }
    return programs;
  };
  const double base = run_programs(build(), SmiConfig::none(), 5);
  const double noisy = run_programs(build(), SmiConfig::long_every_second(), 5);
  // Four chained collectives per iteration amplify hard at 16 nodes; the
  // bound is the all-nodes-serially-frozen worst case, not a target value.
  EXPECT_GT(noisy / base, 1.08);
  EXPECT_LT(noisy / base, 7.0);
}

TEST(RankProgramTest, NonblockingBuilderEmitsActions) {
  RankProgram rp{0, 4};
  rp.isend(1, 1024, 5, 7);
  rp.irecv(2, 6, 8);
  rp.waitall({7, 8});
  const auto actions = RankProgram{rp}.take();
  ASSERT_EQ(actions.size(), 3u);
  const auto* isend = std::get_if<Isend>(&actions[0]);
  ASSERT_NE(isend, nullptr);
  EXPECT_EQ(isend->dst_rank, 1);
  EXPECT_EQ(isend->handle, 7);
  const auto* irecv = std::get_if<Irecv>(&actions[1]);
  ASSERT_NE(irecv, nullptr);
  EXPECT_EQ(irecv->src_rank, 2);
  const auto* wait = std::get_if<WaitAll>(&actions[2]);
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->handles, (std::pmr::vector<int>{7, 8}));
}

TEST(OptionsTest, ExplicitFalseBoolean) {
  const char* argv[] = {"smilab", "nas", "--htt=false", "--flag=0"};
  std::string error;
  const auto options = Options::parse(4, argv, &error);
  ASSERT_TRUE(options.has_value());
  EXPECT_FALSE(options->get_bool("htt", true));
  EXPECT_FALSE(options->get_bool("flag", true));
  EXPECT_TRUE(options->get_bool("absent", true));
}

TEST(AsciiChartTest, YFromDataWhenNotZeroBased) {
  Series series{"x", {"a"}};
  series.add_point(0, {100.0});
  series.add_point(10, {110.0});
  ChartOptions options;
  options.y_from_zero = false;
  options.height = 8;
  const std::string chart = render_ascii_chart(series, options);
  // Axis labels should show the data band, not zero.
  EXPECT_EQ(chart.find("   0 |"), std::string::npos);
  EXPECT_NE(chart.find("100"), std::string::npos);
}

TEST(NasWorkUnitsTest, UnitsAndRates) {
  EXPECT_DOUBLE_EQ(nas_work_units(NasBenchmark::kEP, NasClass::kA),
                   static_cast<double>(1LL << 28));
  EXPECT_DOUBLE_EQ(nas_work_units(NasBenchmark::kBT, NasClass::kA),
                   64.0 * 64 * 64 * 200);
  EXPECT_STREQ(nas_work_unit_name(NasBenchmark::kEP), "pairs");
  EXPECT_STREQ(nas_work_unit_name(NasBenchmark::kFT), "cell updates");
}

}  // namespace
}  // namespace smilab
