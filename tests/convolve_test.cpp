// Tests for the real Convolve kernel: correctness of the reference,
// blocked, and threaded implementations, plus Gaussian kernel properties.
#include <gtest/gtest.h>

#include <cmath>

#include "smilab/apps/convolve/convolve.h"

namespace smilab {
namespace {

bool images_equal(const Image& a, const Image& b, float tol = 1e-5f) {
  if (a.width() != b.width() || a.height() != b.height()) return false;
  for (int y = 0; y < a.height(); ++y) {
    for (int x = 0; x < a.width(); ++x) {
      if (std::abs(a.at(x, y) - b.at(x, y)) > tol) return false;
    }
  }
  return true;
}

TEST(KernelTest, GaussianIsNormalized) {
  for (const int size : {3, 5, 61}) {
    const Kernel k = Kernel::gaussian(size);
    double sum = 0;
    for (int j = 0; j < size; ++j) {
      for (int i = 0; i < size; ++i) sum += k.at(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5) << "size " << size;
  }
}

TEST(KernelTest, GaussianIsSymmetricAndPeaked) {
  const Kernel k = Kernel::gaussian(5);
  const int c = k.radius();
  for (int j = 0; j < 5; ++j) {
    for (int i = 0; i < 5; ++i) {
      EXPECT_FLOAT_EQ(k.at(i, j), k.at(4 - i, j));
      EXPECT_FLOAT_EQ(k.at(i, j), k.at(i, 4 - j));
      EXPECT_LE(k.at(i, j), k.at(c, c));
    }
  }
}

TEST(ConvolveTest, IdentityKernelCopiesImage) {
  Kernel identity{3};
  identity.at(1, 1) = 1.0f;
  const Image img = make_test_image(17, 13, 1);
  const Image out = convolve_reference(img, identity);
  EXPECT_TRUE(images_equal(img, out));
}

TEST(ConvolveTest, ConstantImageStaysConstantInside) {
  // Away from borders, a normalized kernel over a constant image returns
  // the constant.
  Image img{32, 32};
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 32; ++x) img.at(x, y) = 2.5f;
  const Image out = convolve_reference(img, Kernel::gaussian(5));
  for (int y = 2; y < 30; ++y) {
    for (int x = 2; x < 30; ++x) {
      EXPECT_NEAR(out.at(x, y), 2.5f, 1e-4f);
    }
  }
}

TEST(ConvolveTest, BordersAttenuatedByZeroPadding) {
  Image img{16, 16};
  for (int y = 0; y < 16; ++y)
    for (int x = 0; x < 16; ++x) img.at(x, y) = 1.0f;
  const Image out = convolve_reference(img, Kernel::gaussian(5));
  EXPECT_LT(out.at(0, 0), out.at(8, 8));
}

TEST(ConvolveTest, BlockDecompositionCoversExactly) {
  const auto blocks = decompose_blocks(100, 60, 32, 32);
  std::vector<int> cover(100 * 60, 0);
  for (const Block& b : blocks) {
    for (int y = b.y0; y < b.y0 + b.h; ++y) {
      for (int x = b.x0; x < b.x0 + b.w; ++x) {
        cover[static_cast<std::size_t>(y * 100 + x)] += 1;
      }
    }
  }
  for (const int c : cover) EXPECT_EQ(c, 1);
  EXPECT_EQ(blocks.size(), 4u * 2u);
}

TEST(ConvolveTest, BlockedMatchesReference) {
  const Image img = make_test_image(50, 40, 7);
  const Kernel k = Kernel::gaussian(7);
  const Image ref = convolve_reference(img, k);
  Image blocked{50, 40};
  for (const Block& b : decompose_blocks(50, 40, 16, 8)) {
    convolve_block(img, k, blocked, b.x0, b.y0, b.w, b.h);
  }
  EXPECT_TRUE(images_equal(ref, blocked));
}

class ConvolveThreadCounts : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Threads, ConvolveThreadCounts,
                         ::testing::Values(1, 2, 4, 8, 24));

TEST_P(ConvolveThreadCounts, ThreadedMatchesReference) {
  // The paper's parallelization: no data dependencies between blocks, so
  // any thread count must give identical output.
  const Image img = make_test_image(64, 48, 11);
  const Kernel k = Kernel::gaussian(5);
  const Image ref = convolve_reference(img, k);
  const Image par = convolve_threaded(img, k, 8, 8, GetParam());
  EXPECT_TRUE(images_equal(ref, par));
}

TEST(ConvolveSeparableTest, GaussianIsSeparable) {
  EXPECT_TRUE(is_separable(Kernel::gaussian(3)));
  EXPECT_TRUE(is_separable(Kernel::gaussian(61)));
}

TEST(ConvolveSeparableTest, NonSeparableKernelDetected) {
  Kernel cross{3};
  cross.at(1, 0) = 1.0f;
  cross.at(0, 1) = 1.0f;
  cross.at(2, 1) = 1.0f;
  cross.at(1, 2) = 1.0f;  // plus-shape: rank 2
  EXPECT_FALSE(is_separable(cross));
}

TEST(ConvolveSeparableTest, MatchesReferenceOnGaussian) {
  const Image img = make_test_image(48, 36, 21);
  for (const int size : {3, 7, 13}) {
    const Kernel k = Kernel::gaussian(size);
    const Image ref = convolve_reference(img, k);
    const Image sep = convolve_separable(img, k);
    for (int y = 0; y < img.height(); ++y) {
      for (int x = 0; x < img.width(); ++x) {
        EXPECT_NEAR(sep.at(x, y), ref.at(x, y), 2e-4f)
            << "kernel " << size << " at " << x << "," << y;
      }
    }
  }
}

TEST(ConvolveTest, TestImageIsDeterministic) {
  const Image a = make_test_image(20, 20, 3);
  const Image b = make_test_image(20, 20, 3);
  EXPECT_TRUE(images_equal(a, b, 0.0f));
  const Image c = make_test_image(20, 20, 4);
  EXPECT_FALSE(images_equal(a, c, 1e-9f));
}

}  // namespace
}  // namespace smilab
