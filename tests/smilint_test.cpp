// smilint self-test: the fixture corpus produces exactly the expected
// findings (file:line:column), suppressions behave (same-line, line-above,
// multi-rule, mandatory reason), the cross-file rules (D7 taint, C1
// guarded-by) and D8 fire and suppress correctly, the baseline ratchet
// gates only NEW findings, the manifest verbs do what they say, and — the
// CI invariant — the real tree is clean: zero unsuppressed violations,
// every suppression reasoned.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "smilint.h"

#ifndef SMILAB_SOURCE_ROOT
#error "SMILAB_SOURCE_ROOT must point at the repository root"
#endif

namespace {

using smilint::Baseline;
using smilint::Finding;
using smilint::Manifest;
using smilint::Report;
using smilint::Rule;
using smilint::RulePolicy;
using smilint::Severity;

const std::string kRoot = SMILAB_SOURCE_ROOT;

Report fixture_report() {
  const Manifest manifest = Manifest::parse(
      "hot-path tools/smilint/fixtures\n"
      "concurrent tools/smilint/fixtures\n");
  return smilint::run_tree(kRoot, {"tools/smilint/fixtures"}, manifest);
}

TEST(SmilintFixtureTest, CorpusFindingsExact) {
  const Report report = fixture_report();
  struct Expect {
    const char* file;
    int line;
    int column;
    Rule rule;
    bool suppressed;
  };
  // Sorted by (file, line, column, rule) — the report's order. clean.cpp
  // and d7_taint_helper.cpp (the taint SOURCE: a seed alone is not a
  // finding) contribute nothing by design.
  const std::vector<Expect> expected = {
      {"tools/smilint/fixtures/c1_guarded_by.cpp", 16, 33, Rule::kGuardedBy,
       false},
      {"tools/smilint/fixtures/c1_guarded_by.cpp", 23, 10, Rule::kGuardedBy,
       false},
      {"tools/smilint/fixtures/c1_guarded_by.cpp", 24, 7, Rule::kGuardedBy,
       false},
      {"tools/smilint/fixtures/d1_wall_clock.cpp", 8, 19, Rule::kWallClock,
       false},
      {"tools/smilint/fixtures/d1_wall_clock.cpp", 10, 3, Rule::kWallClock,
       false},
      {"tools/smilint/fixtures/d1_wall_clock.cpp", 12, 22, Rule::kWallClock,
       false},
      {"tools/smilint/fixtures/d2_rng.cpp", 7, 17, Rule::kUnseededRng, false},
      {"tools/smilint/fixtures/d2_rng.cpp", 9, 8, Rule::kUnseededRng, false},
      {"tools/smilint/fixtures/d2_rng.cpp", 10, 8, Rule::kUnseededRng, false},
      {"tools/smilint/fixtures/d3_unordered_iter.cpp", 7, 3,
       Rule::kUnorderedIter, false},
      {"tools/smilint/fixtures/d3_unordered_iter.cpp", 16, 18,
       Rule::kUnorderedIter, false},
      {"tools/smilint/fixtures/d4_std_function.cpp", 6, 3, Rule::kStdFunction,
       false},
      {"tools/smilint/fixtures/d5_new_delete.cpp", 7, 14, Rule::kRawNewDelete,
       false},
      {"tools/smilint/fixtures/d5_new_delete.cpp", 9, 5, Rule::kRawNewDelete,
       false},
      {"tools/smilint/fixtures/d6_float_reduce.cpp", 10, 3,
       Rule::kUnorderedIter, false},
      {"tools/smilint/fixtures/d6_float_reduce.cpp", 11, 5, Rule::kFloatReduce,
       false},
      {"tools/smilint/fixtures/d6_float_reduce.cpp", 15, 12,
       Rule::kFloatReduce, false},
      {"tools/smilint/fixtures/d7_taint_use.cpp", 23, 29, Rule::kNondetTaint,
       false},
      {"tools/smilint/fixtures/d7_taint_use.cpp", 24, 5, Rule::kNondetTaint,
       false},
      {"tools/smilint/fixtures/d8_pointer_map.cpp", 17, 8, Rule::kPointerOrder,
       false},
      {"tools/smilint/fixtures/d8_pointer_map.cpp", 19, 14,
       Rule::kPointerOrder, false},
      {"tools/smilint/fixtures/d8_pointer_map.cpp", 21, 14,
       Rule::kPointerOrder, false},
      {"tools/smilint/fixtures/suppressed_missing_reason.cpp", 5, 1,
       Rule::kSuppression, false},
      {"tools/smilint/fixtures/suppressed_missing_reason.cpp", 6, 34,
       Rule::kUnseededRng, false},
      {"tools/smilint/fixtures/suppressed_ok.cpp", 8, 19, Rule::kWallClock,
       true},
      {"tools/smilint/fixtures/suppressed_ok.cpp", 10, 17, Rule::kUnseededRng,
       true},
      {"tools/smilint/fixtures/suppressed_ok.cpp", 13, 3, Rule::kUnorderedIter,
       true},
      {"tools/smilint/fixtures/suppressed_ok.cpp", 13, 34, Rule::kFloatReduce,
       true},
  };
  ASSERT_EQ(report.findings.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE("finding " + std::to_string(i));
    EXPECT_EQ(report.findings[i].file, expected[i].file);
    EXPECT_EQ(report.findings[i].line, expected[i].line);
    EXPECT_EQ(report.findings[i].column, expected[i].column);
    EXPECT_EQ(report.findings[i].rule, expected[i].rule);
    EXPECT_EQ(report.findings[i].suppressed, expected[i].suppressed);
    EXPECT_FALSE(report.findings[i].snippet.empty());
  }
  EXPECT_EQ(report.unsuppressed_count(), 24);
  EXPECT_EQ(report.suppressed_count(), 4);
  EXPECT_EQ(report.baselined_count(), 0);
  EXPECT_EQ(report.info_count(), 0);
}

TEST(SmilintFixtureTest, SuppressionsCarryTheirReasons) {
  const Report report = fixture_report();
  int suppressed = 0;
  for (const Finding& f : report.findings) {
    if (!f.suppressed) continue;
    ++suppressed;
    EXPECT_FALSE(f.reason.empty()) << f.file << ":" << f.line;
    EXPECT_NE(f.reason.find("fixture"), std::string::npos);
  }
  EXPECT_EQ(suppressed, 4);
}

TEST(SmilintTreeTest, RealTreeHasZeroUnsuppressedViolations) {
  const Manifest manifest =
      Manifest::load(kRoot + "/tools/smilint/smilint.rules");
  const Report report =
      smilint::run_tree(kRoot, {"src", "bench", "tools"}, manifest);
  EXPECT_GE(report.files_scanned, 100);
  for (const Finding& f : report.findings) {
    EXPECT_TRUE(f.suppressed)
        << f.file << ":" << f.line << " [" << smilint::rule_id(f.rule) << "] "
        << f.message;
    EXPECT_FALSE(f.reason.empty()) << f.file << ":" << f.line;
  }
  EXPECT_EQ(report.unsuppressed_count(), 0);
  EXPECT_EQ(report.info_count(), 0);
}

TEST(SmilintUnitTest, SameLineAndLineAboveSuppressionForms) {
  RulePolicy policy;
  const auto same_line = smilint::analyze_source(
      "x.cpp", "int f() { return rand(); }  // smilint: allow(unseeded-rng) reason=test\n",
      {}, policy);
  ASSERT_EQ(same_line.size(), 1u);
  EXPECT_TRUE(same_line[0].suppressed);
  EXPECT_EQ(same_line[0].reason, "test");

  const auto above = smilint::analyze_source(
      "x.cpp",
      "// smilint: allow(unseeded-rng) reason=test above\n"
      "int f() { return rand(); }\n",
      {}, policy);
  ASSERT_EQ(above.size(), 1u);
  EXPECT_TRUE(above[0].suppressed);
  EXPECT_EQ(above[0].reason, "test above");
}

TEST(SmilintUnitTest, SuppressionForTheWrongRuleDoesNotApply) {
  RulePolicy policy;
  const auto findings = smilint::analyze_source(
      "x.cpp", "int f() { return rand(); }  // smilint: allow(wall-clock) reason=mismatched\n",
      {}, policy);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_FALSE(findings[0].suppressed);
}

TEST(SmilintUnitTest, ReasonlessSuppressionIsItselfAFinding) {
  RulePolicy policy;
  const auto findings = smilint::analyze_source(
      "x.cpp", "int f() { return rand(); }  // smilint: allow(unseeded-rng)\n",
      {}, policy);
  ASSERT_EQ(findings.size(), 2u);
  // The S0 finding anchors at column 1 of the directive's line, so it
  // sorts ahead of the unsuppressed D2 at the rand() call site.
  EXPECT_EQ(findings[0].rule, Rule::kSuppression);
  EXPECT_EQ(findings[1].rule, Rule::kUnseededRng);
  EXPECT_FALSE(findings[1].suppressed);
}

TEST(SmilintUnitTest, FindingsCarryColumnAndSnippet) {
  RulePolicy policy;
  const auto findings = smilint::analyze_source(
      "x.cpp", "int f() { return rand(); }\n", {}, policy);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_EQ(findings[0].column, 18);  // 1-based column of `rand`
  EXPECT_EQ(findings[0].snippet, "int f() { return rand(); }");
}

TEST(SmilintUnitTest, PointerOrderFiresAndSuppresses) {
  RulePolicy policy;
  const auto findings = smilint::analyze_source(
      "x.cpp",
      "struct N { int id; };\n"
      "int f() { std::map<N*, int> m; return (int)m.size(); }\n",
      {}, policy);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, Rule::kPointerOrder);

  const auto suppressed = smilint::analyze_source(
      "x.cpp",
      "struct N { int id; };\n"
      "// smilint: allow(pointer-order) reason=freed before any output\n"
      "int f() { std::map<N*, int> m; return (int)m.size(); }\n",
      {}, policy);
  ASSERT_EQ(suppressed.size(), 1u);
  EXPECT_TRUE(suppressed[0].suppressed);
}

TEST(SmilintUnitTest, GuardedByLockScopeWithinOneTu) {
  RulePolicy policy;  // guarded_by on by default; concurrent off
  const auto findings = smilint::analyze_source(
      "x.cpp",
      "class C {\n"
      " public:\n"
      "  void locked() { const std::lock_guard<std::mutex> l{mu_}; n_ = 1; }\n"
      "  void unlocked() { n_ = 2; }\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  int n_ = 0;  // guarded_by(mu_)\n"
      "};\n",
      {}, policy);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, Rule::kGuardedBy);
  EXPECT_EQ(findings[0].line, 4);
}

TEST(SmilintUnitTest, ConcurrentPolicyRequiresAnnotations) {
  RulePolicy policy;
  policy.concurrent = true;
  const auto findings = smilint::analyze_source(
      "x.cpp",
      "class C {\n"
      "  std::mutex mu_;\n"
      "  std::atomic<int> hits_{0};\n"  // atomic: exempt
      "  int n_ = 0;\n"                 // C1: unannotated
      "};\n",
      {}, policy);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, Rule::kGuardedBy);
  EXPECT_EQ(findings[0].line, 4);
  // Without `concurrent`, annotation is optional.
  policy.concurrent = false;
  EXPECT_TRUE(smilint::analyze_source("x.cpp",
                                      "class C {\n"
                                      "  std::mutex mu_;\n"
                                      "  int n_ = 0;\n"
                                      "};\n",
                                      {}, policy)
                  .empty());
}

TEST(SmilintUnitTest, TaintFlowsFromSeedToSinkWithinOneTu) {
  RulePolicy policy;
  const auto findings = smilint::analyze_source(
      "x.cpp",
      "std::uint64_t token(const int* p) {\n"
      "  return reinterpret_cast<std::uintptr_t>(p);\n"
      "}\n"
      "struct H { std::uint64_t mix(std::uint64_t v); };\n"
      "std::uint64_t g(H& h, const int* p) {\n"
      "  const std::uint64_t t = token(p);\n"
      "  return h.mix(t);\n"
      "}\n",
      {}, policy);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, Rule::kNondetTaint);
  EXPECT_EQ(findings[0].line, 7);
  EXPECT_NE(findings[0].message.find("mix"), std::string::npos);
}

TEST(SmilintUnitTest, SanctionedSeedDoesNotTaint) {
  // A reasoned D1 suppression at the seed site is the sanction: the
  // wall-clock value must not re-surface as D7 taint downstream (this is
  // what keeps bench timers from poisoning same-named simulation code).
  RulePolicy policy;
  const auto findings = smilint::analyze_source(
      "x.cpp",
      "// smilint: allow(wall-clock) reason=host calibration only\n"
      "double now_s() { return std::chrono::x(); }\n"
      "struct H { std::uint64_t mix(std::uint64_t v); };\n"
      "std::uint64_t g(H& h) {\n"
      "  const auto t = now_s();\n"
      "  return h.mix(t);\n"
      "}\n",
      {}, policy);
  ASSERT_EQ(findings.size(), 1u);  // only the suppressed D1 itself
  EXPECT_EQ(findings[0].rule, Rule::kWallClock);
  EXPECT_TRUE(findings[0].suppressed);
}

TEST(SmilintUnitTest, TaintUnknownOnFunctionPointerEscapeIsInfo) {
  RulePolicy policy;
  const auto findings = smilint::analyze_source(
      "x.cpp",
      "int jitter() { return rand(); }\n"
      "using Fn = int (*)();\n"
      "Fn pick() { return jitter; }\n",
      {}, policy);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, Rule::kUnseededRng);
  EXPECT_EQ(findings[1].rule, Rule::kTaintUnknown);
  EXPECT_EQ(findings[1].severity, Severity::kInfo);

  Report report;
  report.findings = findings;
  EXPECT_EQ(report.unsuppressed_count(), 1);  // info never gates
  EXPECT_EQ(report.info_count(), 1);
}

TEST(SmilintUnitTest, BaselineRatchetGatesOnlyNewFindings) {
  RulePolicy policy;
  Report report;
  report.files_scanned = 1;
  report.findings = smilint::analyze_source(
      "x.cpp", "int f() { return rand(); }\n", {}, policy);
  ASSERT_EQ(report.unsuppressed_count(), 1);

  Baseline baseline = Baseline::parse(Baseline::render(report));
  EXPECT_EQ(baseline.size(), 1);
  baseline.apply(report);
  EXPECT_EQ(report.unsuppressed_count(), 0);
  EXPECT_EQ(report.baselined_count(), 1);
  EXPECT_TRUE(baseline.unmatched().empty());

  // A different violation does not match the baseline and still gates;
  // the old entry surfaces as stale.
  Report fresh;
  fresh.findings = smilint::analyze_source(
      "y.cpp", "int g(unsigned s) { srand(s); return 0; }\n", {}, policy);
  Baseline again = Baseline::parse(Baseline::render(report));
  again.apply(fresh);
  EXPECT_EQ(fresh.unsuppressed_count(), 1);
  EXPECT_EQ(fresh.baselined_count(), 0);
  EXPECT_EQ(again.unmatched().size(), 1u);
}

TEST(SmilintUnitTest, BaselineDoesNotHideASeededCorpusViolation) {
  // The acceptance criterion: baseline the whole fixture corpus, then
  // introduce a new violation — the gate must trip on exactly that one.
  Report corpus = fixture_report();
  Baseline baseline = Baseline::parse(Baseline::render(corpus));
  baseline.apply(corpus);
  EXPECT_EQ(corpus.unsuppressed_count(), 0);

  RulePolicy policy;
  auto seeded = smilint::analyze_source(
      "tools/smilint/fixtures/new_leak.cpp",
      "double f() { return std::chrono::x(); }\n", {}, policy);
  ASSERT_EQ(seeded.size(), 1u);
  corpus.findings.insert(corpus.findings.end(), seeded.begin(), seeded.end());
  baseline.apply(corpus);
  EXPECT_EQ(corpus.unsuppressed_count(), 1);
}

TEST(SmilintUnitTest, BaselineRejectsMalformedEntries) {
  EXPECT_THROW(Baseline::parse("not-a-fingerprint\n"), std::runtime_error);
  EXPECT_THROW(Baseline::parse("a.cpp|wall-clok|0123456789abcdef\n"),
               std::runtime_error);
  EXPECT_THROW(Baseline::parse("a.cpp|wall-clock|xyz\n"), std::runtime_error);
  EXPECT_EQ(Baseline::parse("# just a comment\n").size(), 0);
  EXPECT_EQ(Baseline::parse("a.cpp|wall-clock|0123456789abcdef\n").size(), 1);
}

TEST(SmilintUnitTest, ManifestVerbsShapePolicy) {
  const Manifest m = Manifest::parse(
      "skip gen/\n"
      "off bench/ wall-clock,float-reduce\n"
      "hot-path src/hot\n"
      "slab src/slab\n"
      "concurrent src/mt\n");
  EXPECT_TRUE(m.skipped("gen/x.cpp"));
  EXPECT_FALSE(m.skipped("src/x.cpp"));

  const RulePolicy bench = m.policy_for("bench/b.cpp");
  EXPECT_FALSE(bench.wall_clock);
  EXPECT_FALSE(bench.float_reduce);
  EXPECT_TRUE(bench.unseeded_rng);

  EXPECT_FALSE(m.policy_for("src/other.cpp").std_function);
  EXPECT_TRUE(m.policy_for("src/hot/a.h").std_function);
  EXPECT_TRUE(m.policy_for("src/hot/a.h").hot_path);
  EXPECT_TRUE(m.policy_for("src/other.cpp").raw_new_delete);
  EXPECT_FALSE(m.policy_for("src/slab/pool.cpp").raw_new_delete);
  EXPECT_TRUE(m.policy_for("src/mt/svc.cpp").concurrent);
  EXPECT_FALSE(m.policy_for("src/other.cpp").concurrent);

  const Manifest off = Manifest::parse("off src/ nondet-taint,guarded-by,pointer-order\n");
  const RulePolicy p = off.policy_for("src/a.cpp");
  EXPECT_FALSE(p.nondet_taint);
  EXPECT_FALSE(p.guarded_by);
  EXPECT_FALSE(p.pointer_order);
  EXPECT_FALSE(p.enabled(Rule::kTaintUnknown));  // rides with nondet-taint
}

TEST(SmilintUnitTest, ManifestRejectsTypos) {
  EXPECT_THROW(Manifest::parse("off src/ wall-clok"), std::runtime_error);
  EXPECT_THROW(Manifest::parse("enable src/ wall-clock"), std::runtime_error);
  EXPECT_THROW(Manifest::parse("off src/"), std::runtime_error);
  EXPECT_THROW(Manifest::parse("concurent src/"), std::runtime_error);
}

TEST(SmilintUnitTest, DisabledRuleReportsNothing) {
  RulePolicy policy;
  policy.unseeded_rng = false;
  const auto findings =
      smilint::analyze_source("x.cpp", "int f() { return rand(); }\n", {},
                              policy);
  EXPECT_TRUE(findings.empty());
}

TEST(SmilintUnitTest, JsonReportCarriesTheGateFields) {
  RulePolicy policy;
  Report report;
  report.files_scanned = 1;
  report.findings = smilint::analyze_source(
      "x.cpp", "int f() { return rand(); }\n", {}, policy);
  const std::string json = smilint::to_json(report);
  EXPECT_NE(json.find("\"unsuppressed\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"unseeded-rng\""), std::string::npos);
  EXPECT_NE(json.find("\"code\": \"D2\""), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\": false"), std::string::npos);
  EXPECT_NE(json.find("\"column\": 18"), std::string::npos);
  EXPECT_NE(json.find("\"snippet\": \"int f() { return rand(); }\""),
            std::string::npos);
  EXPECT_NE(json.find("\"baselined\": false"), std::string::npos);
}

TEST(SmilintUnitTest, SarifReportIsWellFormedEnoughForUpload) {
  RulePolicy policy;
  Report report;
  report.files_scanned = 1;
  report.findings = smilint::analyze_source(
      "x.cpp", "int f() { return rand(); }\n", {}, policy);
  const std::string sarif = smilint::to_sarif(report);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"smilint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"unseeded-rng\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 1"), std::string::npos);
  EXPECT_NE(sarif.find("\"startColumn\": 18"), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"error\""), std::string::npos);
}

TEST(SmilintUnitTest, PairedHeaderNamesReachTheSource) {
  RulePolicy policy;
  const auto findings = smilint::analyze_source(
      "x.cpp",
      "long walk() { long s = 0; for (const auto& kv : table_) { s += kv.second; } return s; }\n",
      "struct T { std::unordered_map<int, long> table_; };\n", policy);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, Rule::kUnorderedIter);
}

}  // namespace
