// smilint self-test: the fixture corpus produces exactly the expected
// findings, suppressions behave (same-line, line-above, multi-rule,
// mandatory reason), the manifest verbs do what they say, and — the CI
// invariant — the real tree is clean: zero unsuppressed violations, every
// suppression reasoned.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "smilint.h"

#ifndef SMILAB_SOURCE_ROOT
#error "SMILAB_SOURCE_ROOT must point at the repository root"
#endif

namespace {

using smilint::Finding;
using smilint::Manifest;
using smilint::Report;
using smilint::Rule;
using smilint::RulePolicy;

const std::string kRoot = SMILAB_SOURCE_ROOT;

Report fixture_report() {
  const Manifest manifest = Manifest::parse("hot-path tools/smilint/fixtures");
  return smilint::run_tree(kRoot, {"tools/smilint/fixtures"}, manifest);
}

TEST(SmilintFixtureTest, CorpusFindingsExact) {
  const Report report = fixture_report();
  struct Expect {
    const char* file;
    int line;
    Rule rule;
    bool suppressed;
  };
  // Sorted by (file, line, rule) — the report's order. clean.cpp
  // contributes nothing by design.
  const std::vector<Expect> expected = {
      {"tools/smilint/fixtures/d1_wall_clock.cpp", 8, Rule::kWallClock, false},
      {"tools/smilint/fixtures/d1_wall_clock.cpp", 10, Rule::kWallClock, false},
      {"tools/smilint/fixtures/d1_wall_clock.cpp", 12, Rule::kWallClock, false},
      {"tools/smilint/fixtures/d2_rng.cpp", 7, Rule::kUnseededRng, false},
      {"tools/smilint/fixtures/d2_rng.cpp", 9, Rule::kUnseededRng, false},
      {"tools/smilint/fixtures/d2_rng.cpp", 10, Rule::kUnseededRng, false},
      {"tools/smilint/fixtures/d3_unordered_iter.cpp", 7, Rule::kUnorderedIter,
       false},
      {"tools/smilint/fixtures/d3_unordered_iter.cpp", 16, Rule::kUnorderedIter,
       false},
      {"tools/smilint/fixtures/d4_std_function.cpp", 6, Rule::kStdFunction,
       false},
      {"tools/smilint/fixtures/d5_new_delete.cpp", 7, Rule::kRawNewDelete,
       false},
      {"tools/smilint/fixtures/d5_new_delete.cpp", 9, Rule::kRawNewDelete,
       false},
      {"tools/smilint/fixtures/d6_float_reduce.cpp", 10, Rule::kUnorderedIter,
       false},
      {"tools/smilint/fixtures/d6_float_reduce.cpp", 11, Rule::kFloatReduce,
       false},
      {"tools/smilint/fixtures/d6_float_reduce.cpp", 15, Rule::kFloatReduce,
       false},
      {"tools/smilint/fixtures/suppressed_missing_reason.cpp", 5,
       Rule::kSuppression, false},
      {"tools/smilint/fixtures/suppressed_missing_reason.cpp", 6,
       Rule::kUnseededRng, false},
      {"tools/smilint/fixtures/suppressed_ok.cpp", 8, Rule::kWallClock, true},
      {"tools/smilint/fixtures/suppressed_ok.cpp", 10, Rule::kUnseededRng,
       true},
      {"tools/smilint/fixtures/suppressed_ok.cpp", 13, Rule::kUnorderedIter,
       true},
      {"tools/smilint/fixtures/suppressed_ok.cpp", 13, Rule::kFloatReduce,
       true},
  };
  ASSERT_EQ(report.findings.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE("finding " + std::to_string(i));
    EXPECT_EQ(report.findings[i].file, expected[i].file);
    EXPECT_EQ(report.findings[i].line, expected[i].line);
    EXPECT_EQ(report.findings[i].rule, expected[i].rule);
    EXPECT_EQ(report.findings[i].suppressed, expected[i].suppressed);
  }
  EXPECT_EQ(report.unsuppressed_count(), 16);
  EXPECT_EQ(report.suppressed_count(), 4);
}

TEST(SmilintFixtureTest, SuppressionsCarryTheirReasons) {
  const Report report = fixture_report();
  int suppressed = 0;
  for (const Finding& f : report.findings) {
    if (!f.suppressed) continue;
    ++suppressed;
    EXPECT_FALSE(f.reason.empty()) << f.file << ":" << f.line;
    EXPECT_NE(f.reason.find("fixture"), std::string::npos);
  }
  EXPECT_EQ(suppressed, 4);
}

TEST(SmilintTreeTest, RealTreeHasZeroUnsuppressedViolations) {
  const Manifest manifest =
      Manifest::load(kRoot + "/tools/smilint/smilint.rules");
  const Report report =
      smilint::run_tree(kRoot, {"src", "bench", "tools"}, manifest);
  EXPECT_GE(report.files_scanned, 100);
  for (const Finding& f : report.findings) {
    EXPECT_TRUE(f.suppressed)
        << f.file << ":" << f.line << " [" << smilint::rule_id(f.rule) << "] "
        << f.message;
    EXPECT_FALSE(f.reason.empty()) << f.file << ":" << f.line;
  }
  EXPECT_EQ(report.unsuppressed_count(), 0);
}

TEST(SmilintUnitTest, SameLineAndLineAboveSuppressionForms) {
  RulePolicy policy;
  const auto same_line = smilint::analyze_source(
      "x.cpp", "int f() { return rand(); }  // smilint: allow(unseeded-rng) reason=test\n",
      {}, policy);
  ASSERT_EQ(same_line.size(), 1u);
  EXPECT_TRUE(same_line[0].suppressed);
  EXPECT_EQ(same_line[0].reason, "test");

  const auto above = smilint::analyze_source(
      "x.cpp",
      "// smilint: allow(unseeded-rng) reason=test above\n"
      "int f() { return rand(); }\n",
      {}, policy);
  ASSERT_EQ(above.size(), 1u);
  EXPECT_TRUE(above[0].suppressed);
  EXPECT_EQ(above[0].reason, "test above");
}

TEST(SmilintUnitTest, SuppressionForTheWrongRuleDoesNotApply) {
  RulePolicy policy;
  const auto findings = smilint::analyze_source(
      "x.cpp", "int f() { return rand(); }  // smilint: allow(wall-clock) reason=mismatched\n",
      {}, policy);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_FALSE(findings[0].suppressed);
}

TEST(SmilintUnitTest, ReasonlessSuppressionIsItselfAFinding) {
  RulePolicy policy;
  const auto findings = smilint::analyze_source(
      "x.cpp", "int f() { return rand(); }  // smilint: allow(unseeded-rng)\n",
      {}, policy);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, Rule::kUnseededRng);
  EXPECT_FALSE(findings[0].suppressed);
  EXPECT_EQ(findings[1].rule, Rule::kSuppression);
}

TEST(SmilintUnitTest, ManifestVerbsShapePolicy) {
  const Manifest m = Manifest::parse(
      "skip gen/\n"
      "off bench/ wall-clock,float-reduce\n"
      "hot-path src/hot\n"
      "slab src/slab\n");
  EXPECT_TRUE(m.skipped("gen/x.cpp"));
  EXPECT_FALSE(m.skipped("src/x.cpp"));

  const RulePolicy bench = m.policy_for("bench/b.cpp");
  EXPECT_FALSE(bench.wall_clock);
  EXPECT_FALSE(bench.float_reduce);
  EXPECT_TRUE(bench.unseeded_rng);

  EXPECT_FALSE(m.policy_for("src/other.cpp").std_function);
  EXPECT_TRUE(m.policy_for("src/hot/a.h").std_function);
  EXPECT_TRUE(m.policy_for("src/other.cpp").raw_new_delete);
  EXPECT_FALSE(m.policy_for("src/slab/pool.cpp").raw_new_delete);
}

TEST(SmilintUnitTest, ManifestRejectsTypos) {
  EXPECT_THROW(Manifest::parse("off src/ wall-clok"), std::runtime_error);
  EXPECT_THROW(Manifest::parse("enable src/ wall-clock"), std::runtime_error);
  EXPECT_THROW(Manifest::parse("off src/"), std::runtime_error);
}

TEST(SmilintUnitTest, DisabledRuleReportsNothing) {
  RulePolicy policy;
  policy.unseeded_rng = false;
  const auto findings =
      smilint::analyze_source("x.cpp", "int f() { return rand(); }\n", {},
                              policy);
  EXPECT_TRUE(findings.empty());
}

TEST(SmilintUnitTest, JsonReportCarriesTheGateFields) {
  RulePolicy policy;
  Report report;
  report.files_scanned = 1;
  report.findings = smilint::analyze_source(
      "x.cpp", "int f() { return rand(); }\n", {}, policy);
  const std::string json = smilint::to_json(report);
  EXPECT_NE(json.find("\"unsuppressed\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"unseeded-rng\""), std::string::npos);
  EXPECT_NE(json.find("\"code\": \"D2\""), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\": false"), std::string::npos);
}

TEST(SmilintUnitTest, PairedHeaderNamesReachTheSource) {
  RulePolicy policy;
  const auto findings = smilint::analyze_source(
      "x.cpp",
      "long walk() { long s = 0; for (const auto& kv : table_) { s += kv.second; } return s; }\n",
      "struct T { std::unordered_map<int, long> table_; };\n", policy);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, Rule::kUnorderedIter);
}

}  // namespace
