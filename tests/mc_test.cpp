// Exhaustive exploration of the model-checking corpus (DESIGN.md §12):
// exact schedule counts, 100% observable-hash agreement for deterministic
// programs, deadlock verdicts with working replay tokens, and proof that
// the choice-point hooks leave the canonical schedule bit-for-bit alone.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "smilab/mc/corpus.h"
#include "smilab/mc/explorer.h"
#include "smilab/mc/schedule_trace.h"
#include "smilab/sim/choice_hooks.h"
#include "smilab/sim/system.h"

namespace smilab {
namespace mc {
namespace {

ExplorerOptions corpus_options(bool prune = true) {
  ExplorerOptions opts;
  opts.max_schedules = kCorpusMaxSchedules;
  opts.max_depth = kCorpusMaxDepth;
  opts.prune = prune;
  return opts;
}

/// The do-nothing policy: always the canonical branch. Installing it must
/// be indistinguishable from installing no policy at all.
class ZeroPolicy final : public SchedulePolicy {
 public:
  std::size_t choose(ChoiceKind, std::size_t) override { return 0; }
};

// --- Pinned corpus expectations ---------------------------------------------

TEST(McCorpus, EveryCaseMatchesItsPinsWithPruning) {
  for (const McCase& c : corpus()) {
    SCOPED_TRACE(c.name);
    Explorer explorer{c.target, corpus_options()};
    const ExplorationReport rep = explorer.explore();
    EXPECT_EQ(rep.verdict, c.expect_verdict) << to_string(rep.verdict);
    EXPECT_EQ(rep.schedules_run, c.expect_schedules);
    EXPECT_EQ(rep.schedules_pruned, c.expect_pruned);
    EXPECT_TRUE(rep.exhausted());
    EXPECT_FALSE(rep.budget_exhausted);
    EXPECT_FALSE(rep.depth_clipped);
  }
}

TEST(McCorpus, EveryCaseMatchesItsPinsWithoutPruning) {
  for (const McCase& c : corpus()) {
    SCOPED_TRACE(c.name);
    Explorer explorer{c.target, corpus_options(/*prune=*/false)};
    const ExplorationReport rep = explorer.explore();
    EXPECT_EQ(rep.verdict, c.expect_verdict) << to_string(rep.verdict);
    EXPECT_EQ(rep.schedules_run, c.expect_schedules_noprune);
    EXPECT_EQ(rep.schedules_pruned, 0u);
    EXPECT_TRUE(rep.exhausted());
  }
}

TEST(McCorpus, DeterministicCasesAgreeOnEveryScheduleHash) {
  // kDeterministic already means every completed schedule hashed equal;
  // assert the surrounding evidence so a reporting bug can't fake it.
  for (const McCase& c : corpus()) {
    if (c.expect_verdict != Verdict::kDeterministic) continue;
    SCOPED_TRACE(c.name);
    Explorer explorer{c.target, corpus_options()};
    const ExplorationReport rep = explorer.explore();
    EXPECT_TRUE(rep.any_completed);
    EXPECT_NE(rep.canonical_hash, 0u);
    EXPECT_TRUE(rep.divergent_token.empty());
    EXPECT_TRUE(rep.deadlock_token.empty());
  }
}

TEST(McCorpus, PruningNeverChangesTheCanonicalHash) {
  for (const McCase& c : corpus()) {
    SCOPED_TRACE(c.name);
    Explorer with{c.target, corpus_options()};
    Explorer without{c.target, corpus_options(/*prune=*/false)};
    const ExplorationReport a = with.explore();
    const ExplorationReport b = without.explore();
    EXPECT_EQ(a.verdict, b.verdict);
    EXPECT_EQ(a.canonical_hash, b.canonical_hash);
  }
}

TEST(McCorpus, PruningActuallyFiresSomewhere) {
  // tie-commute exists to prove the memo works: its two ties commute, so
  // the second first-tie branch hits the memoized digest and collapses.
  const McCase* c = find_case("tie-commute");
  ASSERT_NE(c, nullptr);
  EXPECT_GT(c->expect_pruned, 0u);
  EXPECT_LT(c->expect_schedules, c->expect_schedules_noprune);
}

// --- Deadlock fixtures -------------------------------------------------------

TEST(McDeadlocks, EveryDeadlockCaseYieldsAReplayableToken) {
  for (const McCase& c : corpus()) {
    if (c.expect_verdict != Verdict::kDeadlock) continue;
    SCOPED_TRACE(c.name);
    Explorer explorer{c.target, corpus_options()};
    const ExplorationReport rep = explorer.explore();
    ASSERT_EQ(rep.verdict, Verdict::kDeadlock);
    ASSERT_FALSE(rep.deadlock_token.empty());
    EXPECT_FALSE(rep.deadlock_report.empty());

    // The token must reproduce the wedge in exactly ONE re-run.
    const auto trace = ScheduleTrace::parse(rep.deadlock_token);
    ASSERT_TRUE(trace.has_value()) << rep.deadlock_token;
    Explorer replayer{c.target, corpus_options()};
    const ExplorationReport again = replayer.replay(*trace);
    EXPECT_EQ(again.schedules_run, 1u);
    EXPECT_EQ(again.verdict, Verdict::kDeadlock) << to_string(again.verdict);
    EXPECT_EQ(again.deadlock_token, rep.deadlock_token);
    EXPECT_EQ(again.deadlock_status, rep.deadlock_status);
  }
}

TEST(McDeadlocks, AnySourceStarvationIsScheduleDependent) {
  // The flagship case: the canonical schedule completes, and ONLY the
  // alternative wildcard match wedges — a bug invisible to any single run.
  const McCase* c = find_case("anysource-starve");
  ASSERT_NE(c, nullptr);
  Explorer explorer{c->target, corpus_options()};
  const ExplorationReport rep = explorer.explore();
  EXPECT_EQ(rep.verdict, Verdict::kDeadlock);
  EXPECT_TRUE(rep.any_completed);  // the canonical schedule finished
  EXPECT_EQ(rep.deadlock_token, "a1/2");
  EXPECT_EQ(rep.deadlock_status, RunStatus::kDeadlock);
}

TEST(McDeadlocks, CrashedPeerWedgeCarriesPeerEvidence) {
  const McCase* c = find_case("deadlock-crashed-peer");
  ASSERT_NE(c, nullptr);
  Explorer explorer{c->target, corpus_options()};
  const ExplorationReport rep = explorer.explore();
  ASSERT_EQ(rep.verdict, Verdict::kDeadlock);
  EXPECT_NE(rep.deadlock_report.find("peer"), std::string::npos)
      << rep.deadlock_report;
}

// --- Canonical-schedule inertness --------------------------------------------

TEST(McInertness, ZeroPolicyIsBitForBitIdenticalToNoPolicy) {
  // The hooks' contract: decision 0 IS the pre-hook behaviour. Run every
  // corpus program with no policy and with an always-zero policy; the
  // observable hash (and the explorer's canonical hash) must all agree.
  for (const McCase& c : corpus()) {
    SCOPED_TRACE(c.name);

    std::unique_ptr<System> bare = c.target.make_system();
    std::unique_ptr<FaultInjector> bare_inj;
    if (c.target.make_injector != nullptr) {
      bare_inj = c.target.make_injector(*bare);
    }
    const RunResult bare_result = bare->try_run();

    ZeroPolicy zero;
    std::unique_ptr<System> wired = c.target.make_system();
    wired->set_schedule_policy(&zero);
    std::unique_ptr<FaultInjector> wired_inj;
    if (c.target.make_injector != nullptr) {
      wired_inj = c.target.make_injector(*wired);
    }
    const RunResult wired_result = wired->try_run();

    ASSERT_EQ(bare_result.ok(), wired_result.ok());
    if (bare_result.ok()) {
      EXPECT_EQ(hash_observable(*bare), hash_observable(*wired));
      Explorer explorer{c.target, corpus_options()};
      const ExplorationReport rep = explorer.explore();
      if (rep.any_completed) {
        EXPECT_EQ(rep.canonical_hash, hash_observable(*bare));
      }
    } else {
      EXPECT_EQ(bare_result.status, wired_result.status);
    }
  }
}

// --- Budgets -----------------------------------------------------------------

TEST(McBudgets, ScheduleBudgetStopsExplorationAndSaysSo) {
  const McCase* c = find_case("anysource-fan3");
  ASSERT_NE(c, nullptr);
  ExplorerOptions opts = corpus_options();
  opts.max_schedules = 2;
  Explorer explorer{c->target, opts};
  const ExplorationReport rep = explorer.explore();
  EXPECT_EQ(rep.schedules_run, 2u);
  EXPECT_TRUE(rep.budget_exhausted);
  EXPECT_FALSE(rep.exhausted());
}

TEST(McBudgets, DepthCapClipsDeepChoicePoints) {
  const McCase* c = find_case("tie-commute");
  ASSERT_NE(c, nullptr);
  ExplorerOptions opts = corpus_options();
  opts.max_depth = 1;
  Explorer explorer{c->target, opts};
  const ExplorationReport rep = explorer.explore();
  // Only the first tie branches; the second takes the canonical arm.
  EXPECT_EQ(rep.schedules_run, 2u);
  EXPECT_TRUE(rep.depth_clipped);
  EXPECT_FALSE(rep.exhausted());
  EXPECT_EQ(rep.verdict, Verdict::kDeterministic);
}

// --- Replay ------------------------------------------------------------------

TEST(McReplay, StructureMismatchIsACheckerBugNotACrash) {
  // tie-twins presents an event tie; feed it a wildcard-match token.
  const McCase* c = find_case("tie-twins");
  ASSERT_NE(c, nullptr);
  const auto trace = ScheduleTrace::parse("a1/2");
  ASSERT_TRUE(trace.has_value());
  Explorer explorer{c->target, corpus_options()};
  const ExplorationReport rep = explorer.replay(*trace);
  EXPECT_EQ(rep.verdict, Verdict::kCheckerBug);
  EXPECT_NE(rep.checker_note.find("mismatch"), std::string::npos)
      << rep.checker_note;
}

TEST(McReplay, CanonicalTokenReplaysTheCanonicalSchedule) {
  const McCase* c = find_case("tie-twins");
  ASSERT_NE(c, nullptr);
  Explorer explorer{c->target, corpus_options()};
  const ExplorationReport full = explorer.explore();

  const auto trace = ScheduleTrace::parse("t0/2");
  ASSERT_TRUE(trace.has_value());
  Explorer replayer{c->target, corpus_options()};
  const ExplorationReport rep = replayer.replay(*trace);
  EXPECT_EQ(rep.schedules_run, 1u);
  EXPECT_EQ(rep.verdict, Verdict::kDeterministic);
  EXPECT_EQ(rep.canonical_hash, full.canonical_hash);
}

// --- Trace tokens ------------------------------------------------------------

TEST(ScheduleTraceTest, TokenRoundTrips) {
  ScheduleTrace trace;
  trace.choices.push_back(Choice{ChoiceKind::kEventTie, 1, 3});
  trace.choices.push_back(Choice{ChoiceKind::kAnySourceMatch, 0, 2});
  trace.choices.push_back(Choice{ChoiceKind::kFaultJitter, 2, 4});
  const std::string token = trace.to_token();
  EXPECT_EQ(token, "t1/3.a0/2.f2/4");
  const auto parsed = ScheduleTrace::parse(token);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->choices.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(parsed->choices[i].kind, trace.choices[i].kind);
    EXPECT_EQ(parsed->choices[i].chosen, trace.choices[i].chosen);
    EXPECT_EQ(parsed->choices[i].n, trace.choices[i].n);
  }
}

TEST(ScheduleTraceTest, EmptyTraceIsDash) {
  const ScheduleTrace trace;
  EXPECT_EQ(trace.to_token(), "-");
  const auto parsed = ScheduleTrace::parse("-");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->choices.empty());
}

TEST(ScheduleTraceTest, MalformedTokensAreRejected) {
  const char* bad[] = {
      "",       "x0/2",   "t",      "t0",     "t0/",    "t0/1",
      "t2/2",   "t0/2.",  ".t0/2",  "t0/2..t1/2", "t0-2", "t99999999/2",
  };
  for (const char* token : bad) {
    EXPECT_FALSE(ScheduleTrace::parse(token).has_value()) << token;
  }
}

}  // namespace
}  // namespace mc
}  // namespace smilab
