// Integration-level tests of the System runtime: compute progress, HTT
// sharing, scheduling, SMM freezes, accounting, and messaging semantics.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "smilab/sim/system.h"
#include "smilab/smm/smi_controller.h"

namespace smilab {
namespace {

SystemConfig base_config(int nodes = 1) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::poweredge_r410_e5620();
  cfg.node_count = nodes;
  cfg.seed = 42;
  return cfg;
}

std::vector<Action> compute_only(SimDuration work) {
  std::vector<Action> actions;
  actions.push_back(Compute{work});
  return actions;
}

double wall_seconds(const TaskStats& s) {
  return (s.end_time - s.start_time).seconds();
}

TEST(SystemComputeTest, SingleTaskRunsAtNominalSpeed) {
  System sys{base_config()};
  const TaskId id = sys.spawn(TaskSpec::with_actions("t", 0, compute_only(seconds(5))));
  sys.run();
  const auto& stats = sys.task_stats(id);
  EXPECT_TRUE(stats.finished);
  EXPECT_NEAR(wall_seconds(stats), 5.0, 1e-6);
  EXPECT_NEAR(stats.true_cpu_time.seconds(), 5.0, 1e-6);
  EXPECT_NEAR(stats.os_view_cpu_time.seconds(), 5.0, 1e-6);
  EXPECT_EQ(stats.smm_hits, 0);
}

TEST(SystemComputeTest, TasksOnSeparateCoresDoNotInterfere) {
  System sys{base_config()};
  std::vector<TaskId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(sys.spawn(TaskSpec::with_actions("t" + std::to_string(i), 0,
                                                   compute_only(seconds(3)))));
  }
  sys.run();
  for (const TaskId id : ids) {
    EXPECT_NEAR(wall_seconds(sys.task_stats(id)), 3.0, 1e-6);
  }
}

TEST(SystemComputeTest, PlacementFillsPhysicalCoresFirst) {
  // 4 tasks on a 4-core/8-thread node must each get their own core: no HTT
  // slowdown, so all finish in nominal time even with htt_efficiency 0.5.
  System sys{base_config()};
  WorkloadProfile profile;
  profile.htt_efficiency = 0.5;
  std::vector<TaskId> ids;
  for (int i = 0; i < 4; ++i) {
    TaskSpec spec = TaskSpec::with_actions("t", 0, compute_only(seconds(1)));
    spec.profile = profile;
    ids.push_back(sys.spawn(std::move(spec)));
  }
  sys.run();
  for (const TaskId id : ids) {
    EXPECT_NEAR(wall_seconds(sys.task_stats(id)), 1.0, 1e-6);
  }
}

TEST(SystemHttTest, SiblingsShareACore) {
  // Pin two tasks on HTT siblings (CPU 0 and CPU 4 share core 0): with
  // htt_efficiency = 0.5, each runs at half speed -> 2x wall time.
  System sys{base_config()};
  WorkloadProfile profile;
  profile.htt_efficiency = 0.5;
  std::vector<TaskId> ids;
  for (const int cpu : {0, 4}) {
    TaskSpec spec = TaskSpec::with_actions("t", 0, compute_only(seconds(1)));
    spec.profile = profile;
    spec.pinned_cpu = cpu;
    ids.push_back(sys.spawn(std::move(spec)));
  }
  sys.run();
  for (const TaskId id : ids) {
    EXPECT_NEAR(wall_seconds(sys.task_stats(id)), 2.0, 1e-5);
  }
}

TEST(SystemHttTest, EfficiencyAboveHalfGivesAggregateSpeedup) {
  System sys{base_config()};
  WorkloadProfile profile;
  profile.htt_efficiency = 0.65;  // combined throughput 1.3x
  std::vector<TaskId> ids;
  for (const int cpu : {0, 4}) {
    TaskSpec spec = TaskSpec::with_actions("t", 0, compute_only(seconds(1)));
    spec.profile = profile;
    spec.pinned_cpu = cpu;
    ids.push_back(sys.spawn(std::move(spec)));
  }
  sys.run();
  for (const TaskId id : ids) {
    EXPECT_NEAR(wall_seconds(sys.task_stats(id)), 1.0 / 0.65, 1e-5);
  }
}

TEST(SystemHttTest, RateRecoversWhenSiblingFinishes) {
  // Unequal work: after the short task ends, the long task speeds back up.
  // Short: 0.5s of work at rate 0.5 -> done at t=1.0. Long task has then
  // completed 0.5s of its 1.5s and finishes the rest at full rate:
  // total = 1.0 + 1.0 = 2.0s.
  System sys{base_config()};
  WorkloadProfile profile;
  profile.htt_efficiency = 0.5;
  TaskSpec short_spec = TaskSpec::with_actions("short", 0, compute_only(seconds_d(0.5)));
  short_spec.profile = profile;
  short_spec.pinned_cpu = 0;
  TaskSpec long_spec = TaskSpec::with_actions("long", 0, compute_only(seconds_d(1.5)));
  long_spec.profile = profile;
  long_spec.pinned_cpu = 4;
  const TaskId short_id = sys.spawn(std::move(short_spec));
  const TaskId long_id = sys.spawn(std::move(long_spec));
  sys.run();
  EXPECT_NEAR(wall_seconds(sys.task_stats(short_id)), 1.0, 1e-5);
  EXPECT_NEAR(wall_seconds(sys.task_stats(long_id)), 2.0, 1e-5);
}

TEST(SystemSchedulerTest, OversubscriptionTimeshares) {
  // Two equal tasks pinned to one CPU: each takes ~2x its solo time and
  // they finish within one quantum of each other.
  SystemConfig cfg = base_config();
  cfg.os.context_switch = SimDuration::zero();  // isolate timesharing
  System sys{cfg};
  std::vector<TaskId> ids;
  for (int i = 0; i < 2; ++i) {
    TaskSpec spec = TaskSpec::with_actions("t", 0, compute_only(seconds(1)));
    spec.pinned_cpu = 0;
    ids.push_back(sys.spawn(std::move(spec)));
  }
  sys.run();
  const double w0 = wall_seconds(sys.task_stats(ids[0]));
  const double w1 = wall_seconds(sys.task_stats(ids[1]));
  EXPECT_NEAR(w0 + w1, 4.0, 0.05);  // total CPU demand 2s, each waits ~1s
  EXPECT_LE(std::abs(w0 - w1), cfg.os.quantum.seconds() + 1e-9);
  EXPECT_NEAR(sys.task_stats(ids[0]).true_cpu_time.seconds(), 1.0, 1e-6);
}

TEST(SystemSchedulerTest, ContextSwitchesCostTime) {
  SystemConfig with_cs = base_config();
  with_cs.os.context_switch = microseconds(50);
  SystemConfig no_cs = base_config();
  no_cs.os.context_switch = SimDuration::zero();

  auto run_pair = [](SystemConfig cfg) {
    System sys{cfg};
    for (int i = 0; i < 2; ++i) {
      TaskSpec spec;
      spec.name = "t";
      spec.node = 0;
      spec.pinned_cpu = 0;
      std::vector<Action> prog;
      prog.push_back(Compute{seconds(1)});
      spec.actions = std::make_unique<VectorActions>(std::move(prog));
      sys.spawn(std::move(spec));
    }
    sys.run();
    return sys.last_finish_time().seconds();
  };

  EXPECT_GT(run_pair(with_cs), run_pair(no_cs));
}

TEST(SystemSmmTest, LongSmiStealsDutyCycleFraction) {
  // 105 ms mean residency per 1000 ms -> ~10.5% duty cycle.
  SystemConfig cfg = base_config();
  cfg.smi = SmiConfig::long_every_second();
  cfg.machine.hot_set_bytes = 0;  // isolate the pure freeze effect
  System sys{cfg};
  const TaskId id = sys.spawn(TaskSpec::with_actions("t", 0, compute_only(seconds(20))));
  sys.run();
  const auto& stats = sys.task_stats(id);
  const double wall = wall_seconds(stats);
  EXPECT_NEAR(wall, 20.0 * 1.105, 0.35);
  EXPECT_GT(stats.smm_hits, 15);
  // Invariant: wall = true cpu + stolen (single task, no waiting).
  EXPECT_NEAR(wall,
              stats.true_cpu_time.seconds() + stats.smm_stolen_time.seconds(),
              1e-6);
  // The OS view misattributes the frozen time to the task.
  EXPECT_NEAR(stats.os_view_cpu_time.seconds(), wall, 1e-6);
}

TEST(SystemSmmTest, ShortSmiHasSmallEffect) {
  SystemConfig cfg = base_config();
  cfg.smi = SmiConfig::short_every_second();
  System sys{cfg};
  const TaskId id = sys.spawn(TaskSpec::with_actions("t", 0, compute_only(seconds(20))));
  sys.run();
  const double wall = wall_seconds(sys.task_stats(id));
  EXPECT_LT(wall, 20.0 * 1.01);  // well under 1% including refill
  EXPECT_GT(wall, 20.0);
}

TEST(SystemSmmTest, FreezeHaltsAllCpusOfTheNode) {
  // Tasks on different cores of the same node are all stretched.
  SystemConfig cfg = base_config();
  cfg.smi = SmiConfig::long_every_second();
  cfg.machine.hot_set_bytes = 0;
  System sys{cfg};
  std::vector<TaskId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(sys.spawn(TaskSpec::with_actions("t", 0, compute_only(seconds(10)))));
  }
  sys.run();
  for (const TaskId id : ids) {
    EXPECT_GT(wall_seconds(sys.task_stats(id)), 10.5);
    EXPECT_GT(sys.task_stats(id).smm_hits, 5);
  }
}

TEST(SystemSmmTest, OtherNodesKeepRunning) {
  // Independent per-node SMI phases: node 1's task is stretched by its own
  // SMIs only; with SMIs enabled the accounting shows both nodes hit.
  SystemConfig cfg = base_config(2);
  cfg.smi = SmiConfig::long_every_second();
  cfg.machine.hot_set_bytes = 0;
  System sys{cfg};
  const TaskId a = sys.spawn(TaskSpec::with_actions("a", 0, compute_only(seconds(10))));
  const TaskId b = sys.spawn(TaskSpec::with_actions("b", 1, compute_only(seconds(10))));
  sys.run();
  EXPECT_GT(sys.smm_accounting().smi_count(0), 0);
  EXPECT_GT(sys.smm_accounting().smi_count(1), 0);
  EXPECT_GT(wall_seconds(sys.task_stats(a)), 10.0);
  EXPECT_GT(wall_seconds(sys.task_stats(b)), 10.0);
}

TEST(SystemSmmTest, RefillPenaltyAddsOverhead) {
  SystemConfig no_refill = base_config();
  no_refill.smi = SmiConfig::long_every_second();
  no_refill.smi.fixed_initial_phase = milliseconds(500);
  no_refill.machine.hot_set_bytes = 0;

  SystemConfig with_refill = no_refill;
  with_refill.machine.hot_set_bytes = 4e6;

  auto run_one = [](SystemConfig cfg) {
    System sys{cfg};
    const TaskId id = sys.spawn(TaskSpec::with_actions("t", 0, compute_only(seconds(20))));
    sys.run();
    return sys.task_stats(id);
  };
  const TaskStats plain = run_one(no_refill);
  const TaskStats refilled = run_one(with_refill);
  EXPECT_EQ(plain.refill_overhead, SimDuration::zero());
  EXPECT_GT(refilled.refill_overhead, SimDuration::zero());
  EXPECT_GT(wall_seconds(refilled), wall_seconds(plain));
}

TEST(SystemSmmTest, SynchronizedModeFreezesNodesTogether) {
  SystemConfig cfg = base_config(4);
  cfg.smi = SmiConfig::long_every_second();
  cfg.smi.synchronized_across_nodes = true;
  cfg.machine.hot_set_bytes = 0;
  System sys{cfg};
  for (int n = 0; n < 4; ++n) {
    sys.spawn(TaskSpec::with_actions("t", n, compute_only(seconds(5))));
  }
  sys.run();
  const auto& intervals = sys.smm_accounting().intervals();
  ASSERT_GE(intervals.size(), 8u);
  // Intervals come in groups of 4 with identical enter/exit times.
  for (std::size_t i = 0; i + 3 < intervals.size(); i += 4) {
    for (int k = 1; k < 4; ++k) {
      EXPECT_EQ(intervals[i].enter, intervals[i + static_cast<std::size_t>(k)].enter);
      EXPECT_EQ(intervals[i].exit, intervals[i + static_cast<std::size_t>(k)].exit);
    }
  }
}

TEST(SystemMessagingTest, EagerSendRecvDeliversWithLatency) {
  System sys{base_config(2)};
  const GroupId g = sys.create_group(2);

  std::vector<Action> sender;
  sender.push_back(Compute{milliseconds(10)});
  sender.push_back(Send{1, 1024, 7});
  std::vector<Action> receiver;
  receiver.push_back(Recv{0, 7});

  TaskSpec s0 = TaskSpec::with_actions("s", 0, std::move(sender));
  TaskSpec s1 = TaskSpec::with_actions("r", 1, std::move(receiver));
  sys.spawn_member(g, 0, std::move(s0));
  const TaskId rid = sys.spawn_member(g, 1, std::move(s1));
  sys.run();
  const auto& stats = sys.task_stats(rid);
  EXPECT_TRUE(stats.finished);
  EXPECT_EQ(stats.messages_received, 1);
  // Receiver can't finish before the sender's 10ms compute plus wire time.
  EXPECT_GT(wall_seconds(stats), 0.010);
  EXPECT_LT(wall_seconds(stats), 0.012);
}

TEST(SystemMessagingTest, RendezvousSenderWaitsForReceiver) {
  // Large message: the sender must not complete until the receiver has
  // drained it (ack). Receiver delays 50ms before posting its recv.
  System sys{base_config(2)};
  const GroupId g = sys.create_group(2);
  const std::int64_t big = 1 << 20;

  std::vector<Action> sender;
  sender.push_back(Send{1, big, 9});
  std::vector<Action> receiver;
  receiver.push_back(Compute{milliseconds(50)});
  receiver.push_back(Recv{0, 9});

  const TaskId sid = sys.spawn_member(g, 0, TaskSpec::with_actions("s", 0, std::move(sender)));
  sys.spawn_member(g, 1, TaskSpec::with_actions("r", 1, std::move(receiver)));
  sys.run();
  EXPECT_GT(wall_seconds(sys.task_stats(sid)), 0.050);
}

TEST(SystemMessagingTest, SendRecvPairExchanges) {
  System sys{base_config(2)};
  const GroupId g = sys.create_group(2);
  for (int r = 0; r < 2; ++r) {
    std::vector<Action> prog;
    prog.push_back(SendRecv{1 - r, 4096, 5, 1 - r, 5});
    prog.push_back(Compute{milliseconds(1)});
    sys.spawn_member(g, r, TaskSpec::with_actions("x", r, std::move(prog)));
  }
  sys.run();
  for (int r = 0; r < 2; ++r) {
    SUCCEED();  // completion without deadlock is the property under test
  }
  EXPECT_TRUE(sys.all_finished());
}

TEST(SystemMessagingTest, LargeSendRecvPairDoesNotDeadlock) {
  // Rendezvous-sized sendrecv in both directions: the composite action must
  // progress both halves concurrently.
  System sys{base_config(2)};
  const GroupId g = sys.create_group(2);
  for (int r = 0; r < 2; ++r) {
    std::vector<Action> prog;
    prog.push_back(SendRecv{1 - r, 1 << 22, 5, 1 - r, 5});
    sys.spawn_member(g, r, TaskSpec::with_actions("x", r, std::move(prog)));
  }
  sys.run();
  EXPECT_TRUE(sys.all_finished());
}

TEST(SystemMessagingTest, MessagesMatchInFifoOrderPerTag) {
  System sys{base_config(1)};
  const GroupId g = sys.create_group(2);
  std::vector<Action> sender;
  for (int i = 0; i < 3; ++i) sender.push_back(Send{1, 256, 4});
  std::vector<Action> receiver;
  for (int i = 0; i < 3; ++i) receiver.push_back(Recv{0, 4});
  sys.spawn_member(g, 0, TaskSpec::with_actions("s", 0, std::move(sender)));
  const TaskId rid = sys.spawn_member(g, 1, TaskSpec::with_actions("r", 0, std::move(receiver)));
  sys.run();
  EXPECT_EQ(sys.task_stats(rid).messages_received, 3);
}

TEST(SystemMessagingTest, BlockedReceiverYieldsCpu) {
  // Receiver (kBlock) shares a CPU with a compute task; while waiting for a
  // late message the compute task should make full progress.
  System sys{base_config(1)};
  const GroupId g = sys.create_group(2);

  std::vector<Action> sender;
  sender.push_back(Compute{milliseconds(100)});
  sender.push_back(Send{1, 64, 2});
  TaskSpec s0 = TaskSpec::with_actions("s", 0, std::move(sender));
  s0.pinned_cpu = 1;
  sys.spawn_member(g, 0, std::move(s0));

  std::vector<Action> receiver;
  receiver.push_back(Recv{0, 2});
  TaskSpec s1 = TaskSpec::with_actions("r", 0, std::move(receiver));
  s1.pinned_cpu = 0;
  s1.wait_policy = WaitPolicy::kBlock;
  sys.spawn_member(g, 1, std::move(s1));

  TaskSpec other = TaskSpec::with_actions("bg", 0, compute_only(milliseconds(50)));
  other.pinned_cpu = 0;
  const TaskId bg = sys.spawn(std::move(other));

  sys.run();
  // The background task gets the CPU while the receiver blocks: finishes in
  // ~50ms (+ scheduling overhead), far before the 100ms message.
  EXPECT_LT(wall_seconds(sys.task_stats(bg)), 0.06);
}

TEST(SystemMessagingTest, SpinningReceiverHoldsCpu) {
  // Same setup but spinning: the background task now timeshares with the
  // spinning receiver and takes roughly twice as long.
  System sys{base_config(1)};
  const GroupId g = sys.create_group(2);

  std::vector<Action> sender;
  sender.push_back(Compute{milliseconds(100)});
  sender.push_back(Send{1, 64, 2});
  TaskSpec s0 = TaskSpec::with_actions("s", 0, std::move(sender));
  s0.pinned_cpu = 1;
  sys.spawn_member(g, 0, std::move(s0));

  std::vector<Action> receiver;
  receiver.push_back(Recv{0, 2});
  TaskSpec s1 = TaskSpec::with_actions("r", 0, std::move(receiver));
  s1.pinned_cpu = 0;
  s1.wait_policy = WaitPolicy::kSpin;
  sys.spawn_member(g, 1, std::move(s1));

  TaskSpec other = TaskSpec::with_actions("bg", 0, compute_only(milliseconds(50)));
  other.pinned_cpu = 0;
  const TaskId bg = sys.spawn(std::move(other));

  sys.run();
  EXPECT_GT(wall_seconds(sys.task_stats(bg)), 0.09);
}

TEST(SystemSleepTest, SleepWakesOnTime) {
  System sys{base_config()};
  std::vector<Action> prog;
  prog.push_back(Sleep{milliseconds(25)});
  prog.push_back(Compute{milliseconds(5)});
  const TaskId id = sys.spawn(TaskSpec::with_actions("t", 0, std::move(prog)));
  sys.run();
  EXPECT_NEAR(wall_seconds(sys.task_stats(id)), 0.030, 1e-6);
}

TEST(SystemSleepTest, TimerWakeDeferredBySmm) {
  // A sleep that expires mid-SMM is serviced only at SMM exit: SMIs defer
  // even timer interrupts, unlike ordinary IRQ handling.
  SystemConfig cfg = base_config();
  cfg.smi = SmiConfig::long_every_second();
  cfg.smi.fixed_initial_phase = milliseconds(100);  // SMM [100, ~205]ms
  cfg.machine.hot_set_bytes = 0;
  System sys{cfg};
  std::vector<Action> prog;
  prog.push_back(Sleep{milliseconds(150)});  // expires inside the SMM window
  const TaskId id = sys.spawn(TaskSpec::with_actions("t", 0, std::move(prog)));
  sys.run();
  EXPECT_GT(wall_seconds(sys.task_stats(id)), 0.200);  // waited for SMM exit
}

TEST(SystemRunTest, DeadlockIsDetected) {
  System sys{base_config()};
  const GroupId g = sys.create_group(2);
  for (int r = 0; r < 2; ++r) {
    std::vector<Action> prog;
    prog.push_back(Recv{1 - r, 1});  // both wait forever
    sys.spawn_member(g, r, TaskSpec::with_actions("d", 0, std::move(prog)));
  }
  EXPECT_THROW(sys.run(), std::runtime_error);
}

TEST(SystemRunTest, DeterministicAcrossIdenticalRuns) {
  auto run_once = [] {
    SystemConfig cfg;
    cfg.machine = MachineSpec::wyeast_e5520();
    cfg.node_count = 2;
    cfg.smi = SmiConfig::long_every_second();
    cfg.seed = 123;
    System sys{cfg};
    const GroupId g = sys.create_group(2);
    for (int r = 0; r < 2; ++r) {
      std::vector<Action> prog;
      prog.push_back(Compute{seconds(2)});
      prog.push_back(SendRecv{1 - r, 1 << 16, 3, 1 - r, 3});
      prog.push_back(Compute{seconds(1)});
      sys.spawn_member(g, r, TaskSpec::with_actions("t", r, std::move(prog)));
    }
    sys.run();
    return sys.group_finish_time(g).ns();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SystemRunTest, DifferentSeedsShiftSmiPhases) {
  auto run_once = [](std::uint64_t seed) {
    SystemConfig cfg;
    cfg.machine = MachineSpec::wyeast_e5520();
    cfg.smi = SmiConfig::long_every_second();
    cfg.seed = seed;
    System sys{cfg};
    const TaskId id = sys.spawn(TaskSpec::with_actions("t", 0, compute_only(seconds(3))));
    sys.run();
    return (sys.task_stats(id).end_time - SimTime::zero()).ns();
  };
  EXPECT_NE(run_once(1), run_once(2));
}

TEST(SystemTopologyTest, OnlineCpuSweepLimitsPlacement) {
  SystemConfig cfg = base_config();
  System sys{cfg};
  sys.set_online_cpus(2);
  // 4 tasks on 2 online CPUs must timeshare: total wall ~2x solo.
  std::vector<TaskId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(sys.spawn(TaskSpec::with_actions("t", 0, compute_only(seconds(1)))));
  }
  sys.run();
  EXPECT_GE(sys.last_finish_time().seconds(), 2.0 - 1e-6);
}

TEST(SystemTopologyTest, GroupFinishTimeIsMaxOverRanks) {
  System sys{base_config()};
  const GroupId g = sys.create_group(2);
  sys.spawn_member(g, 0, TaskSpec::with_actions("fast", 0, compute_only(seconds(1))));
  sys.spawn_member(g, 1, TaskSpec::with_actions("slow", 0, compute_only(seconds(2))));
  sys.run();
  EXPECT_NEAR(sys.group_finish_time(g).seconds(), 2.0, 1e-6);
}

TEST(SystemNoiseTest, NodeSpeedJitterPerturbsRuntime) {
  auto wall_with_sigma = [](double sigma) {
    SystemConfig cfg;
    cfg.machine = MachineSpec::wyeast_e5520();
    cfg.node_speed_sigma = sigma;
    cfg.seed = 5;
    System sys{cfg};
    const TaskId id = sys.spawn(TaskSpec::with_actions("t", 0, compute_only(seconds(10))));
    sys.run();
    return (sys.task_stats(id).end_time - sys.task_stats(id).start_time).seconds();
  };
  EXPECT_DOUBLE_EQ(wall_with_sigma(0.0), 10.0);
  const double jittered = wall_with_sigma(0.005);
  EXPECT_NE(jittered, 10.0);
  EXPECT_NEAR(jittered, 10.0, 0.3);
}

}  // namespace
}  // namespace smilab
