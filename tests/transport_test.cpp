// Transport regression suite: golden trace hashes pinned to the seed
// build's byte-exact output, matching-semantics pins (arrival order,
// any-source, posted-vs-late receives), and message-pool bounds.
//
// The golden hashes freeze the observable outcome of transport-heavy runs
// (per-rank finish times and ledgers plus the System's transport counters)
// so the message-path internals can be rebuilt — pooled records, bucketed
// matching, O(1) ack routing — under a proof of bit-identical simulation.
// If a hash test fails, the transport CHANGED SIMULATION BEHAVIOUR; do not
// re-pin without understanding why.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "smilab/apps/nas/nas.h"
#include "smilab/fault/fault_injector.h"
#include "smilab/fault/fault_plan.h"
#include "smilab/mpi/collectives.h"
#include "smilab/mpi/job.h"
#include "smilab/sim/system.h"

namespace smilab {
namespace {

// FNV-1a over a stream of 64-bit words: platform-independent because every
// ingredient is integer nanoseconds / counters, never doubles.
class TraceHash {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= 0x100000001b3ull;
    }
  }
  void mix_signed(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

void mix_stats(TraceHash& h, const TaskStats& s) {
  h.mix_signed(s.end_time.ns());
  h.mix_signed(s.os_view_cpu_time.ns());
  h.mix_signed(s.true_cpu_time.ns());
  h.mix_signed(s.smm_stolen_time.ns());
  h.mix_signed(s.refill_overhead.ns());
  h.mix_signed(s.smm_hits);
  h.mix_signed(s.messages_sent);
  h.mix_signed(s.messages_received);
  h.mix_signed(s.bytes_sent);
  h.mix(s.finished ? 1 : 0);
  h.mix(s.failed ? 1 : 0);
}

void mix_system(TraceHash& h, const System& sys) {
  for (int t = 0; t < sys.task_count(); ++t) {
    mix_stats(h, sys.task_stats(TaskId{t}));
  }
  h.mix_signed(sys.inter_node_bytes());
  h.mix_signed(sys.messages_dropped());
  h.mix_signed(sys.messages_duplicated());
  h.mix_signed(sys.retransmissions());
  h.mix_signed(sys.transport_failures());
}

// Golden values captured from the seed (pre-pool) build; see file header.
constexpr std::uint64_t kTable2SubGridHash = 2027882165916727799ull;
constexpr std::uint64_t kCollectiveMixHash = 17019758979342947237ull;
constexpr std::uint64_t kFaultTransportHash = 5726809821179165383ull;
constexpr std::uint64_t kAnySourceFunnelHash = 8648991470962502853ull;

SystemConfig wyeast_cfg(int nodes, std::uint64_t seed) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::wyeast_e5520();
  cfg.node_count = nodes;
  cfg.net = NetworkParams::wyeast();
  cfg.seed = seed;
  return cfg;
}

// --- Golden trace hashes -----------------------------------------------------

// A Table-2 (NAS EP) sub-grid: {4 nodes x 1 rank, 2 nodes x 4 ranks} under
// {short, long} SMIs across two seeds — inter- and intra-node transport,
// small allreduce traffic, SMM freeze/drain interleavings.
TEST(TransportGoldenTest, Table2SubGridHashPinned) {
  TraceHash h;
  for (const bool long_smi : {false, true}) {
    for (const std::uint64_t seed : {1ull, 2ull}) {
      for (const int ranks_per_node : {1, 4}) {
        const NasJobSpec spec{NasBenchmark::kEP, NasClass::kA,
                              ranks_per_node == 1 ? 4 : 2, ranks_per_node};
        SystemConfig cfg = wyeast_cfg(spec.nodes, seed);
        cfg.smi = long_smi ? SmiConfig::long_every_second()
                           : SmiConfig::short_every_second();
        System sys{cfg};
        auto programs = build_nas_trace(spec, NasKnob{4096, 0});
        auto result =
            run_mpi_job(sys, std::move(programs),
                        block_placement(spec.ranks(), spec.ranks_per_node),
                        WorkloadProfile::dense_fp());
        h.mix_signed(result.elapsed.ns());
        mix_system(h, sys);
      }
    }
  }
  EXPECT_EQ(h.value(), kTable2SubGridHash);
}

// Mixed blocking/nonblocking collectives with rendezvous-sized payloads:
// alltoall (pairwise SendRecv), nonblocking alltoall (isend/irecv/waitall
// with the ack-completed rendezvous path), allreduce, and a barrier, under
// long SMIs.
TEST(TransportGoldenTest, CollectiveMixHashPinned) {
  TraceHash h;
  for (const std::uint64_t seed : {3ull, 11ull}) {
    SystemConfig cfg = wyeast_cfg(8, seed);
    cfg.smi = SmiConfig::long_every_second();
    System sys{cfg};
    auto programs = make_rank_programs(8);
    TagAllocator tags;
    for (int iter = 0; iter < 6; ++iter) {
      for (auto& rp : programs) rp.compute(milliseconds(40));
      alltoall(programs, 96 * 1024, tags);  // above rendezvous threshold
      alltoall_nonblocking(programs, 80 * 1024, tags);
      allreduce(programs, 1024, tags);
      barrier(programs, tags);
    }
    auto result = run_mpi_job(sys, std::move(programs), block_placement(8, 1),
                              WorkloadProfile::dense_fp());
    h.mix_signed(result.elapsed.ns());
    mix_system(h, sys);
  }
  EXPECT_EQ(h.value(), kCollectiveMixHash);
}

// The fault transport path: probabilistic drops and duplicates recycle
// retransmitted and ghost records; a mid-run crash abandons traffic.
TEST(TransportGoldenTest, FaultTransportHashPinned) {
  TraceHash h;
  SystemConfig cfg = wyeast_cfg(6, 7);
  cfg.smi = SmiConfig::long_every_second();
  System sys{cfg};
  FaultPlan plan;
  plan.drop(0.05).duplicate(0.05).crash(5, SimTime{2'500'000'000});
  FaultInjector injector{sys, plan};
  auto programs = make_rank_programs(6);
  TagAllocator tags;
  for (int iter = 0; iter < 8; ++iter) {
    for (auto& rp : programs) rp.compute(milliseconds(30));
    alltoall(programs, 128 * 1024, tags);
    allreduce(programs, 2048, tags);
  }
  auto out = try_run_mpi_job(sys, std::move(programs), block_placement(6, 1),
                             WorkloadProfile::dense_fp());
  h.mix(static_cast<std::uint64_t>(out.run.status));
  mix_system(h, sys);
  EXPECT_EQ(h.value(), kFaultTransportHash);
}

// Any-source funnel under noise: rank 0 drains kAnySource receives while
// three senders race; arrival order decides matching, so this pins the
// global-order semantics of the wildcard path.
TEST(TransportGoldenTest, AnySourceFunnelHashPinned) {
  TraceHash h;
  for (const std::uint64_t seed : {5ull, 9ull}) {
    SystemConfig cfg = wyeast_cfg(4, seed);
    cfg.smi = SmiConfig::long_every_second();
    System sys{cfg};
    const GroupId g = sys.create_group(4);
    std::vector<Action> sink;
    for (int i = 0; i < 60; ++i) {
      sink.push_back(Recv{/*src_rank=*/-1, /*tag=*/7});
      sink.push_back(Compute{microseconds(150)});
    }
    sys.spawn_member(g, 0, TaskSpec::with_actions("sink", 0, std::move(sink)));
    for (int r = 1; r < 4; ++r) {
      std::vector<Action> prog;
      for (int i = 0; i < 20; ++i) {
        prog.push_back(Compute{microseconds(100 + 37 * r)});
        prog.push_back(Send{0, 32 * 1024, 7});
      }
      sys.spawn_member(
          g, r, TaskSpec::with_actions("src" + std::to_string(r), r, std::move(prog)));
    }
    sys.run();
    mix_system(h, sys);
  }
  EXPECT_EQ(h.value(), kAnySourceFunnelHash);
}

// --- Pool / queue primitives -------------------------------------------------

TEST(TransportTest, PoolRecyclesSlotsAndRetiresHandles) {
  MessagePool pool;
  const MsgHandle a = pool.alloc();
  const MsgHandle b = pool.alloc();
  const MsgHandle c = pool.alloc();
  EXPECT_EQ(pool.live(), 3u);
  EXPECT_EQ(pool.capacity(), 3u);

  pool.release(b);
  EXPECT_EQ(pool.get(b), nullptr) << "released handle must go stale";
  EXPECT_NE(pool.get(a), nullptr);
  pool.check_invariants();

  const MsgHandle d = pool.alloc();  // must reuse b's slot, not grow
  EXPECT_EQ(pool.capacity(), 3u);
  EXPECT_EQ(d.index, b.index);
  EXPECT_NE(d.gen, b.gen) << "recycled slot must carry a new generation";
  EXPECT_EQ(pool.get(b), nullptr) << "old handle stays stale after reuse";
  EXPECT_NE(pool.get(d), nullptr);
  EXPECT_EQ(pool.peak_live(), 3u);
  EXPECT_EQ(pool.total_allocated(), 4);

  pool.release(a);
  pool.release(c);
  pool.release(d);
  EXPECT_EQ(pool.live(), 0u);
  pool.check_invariants();
}

TEST(TransportTest, UnexpectedQueueMatchesArrivalOrderAcrossSources) {
  MessagePool pool;
  auto arrive = [&](int src, int tag) {
    const MsgHandle h = pool.alloc();
    MessageRec& rec = pool.ref(h);
    rec.src_rank = src;
    rec.tag = tag;
    rec.arrived = true;
    return h;
  };
  UnexpectedQueue q;
  const MsgHandle first = arrive(2, 7);
  const MsgHandle second = arrive(1, 7);
  const MsgHandle third = arrive(2, 7);
  const MsgHandle other_tag = arrive(1, 9);
  q.push(pool, first);
  q.push(pool, second);
  q.push(pool, third);
  q.push(pool, other_tag);
  q.check_invariants(pool);
  EXPECT_EQ(q.size(), 4u);

  // A specific-source match skips other sources but keeps arrival order
  // within the (src, tag) bucket.
  EXPECT_EQ(q.match(pool, 1, 7), second);
  q.check_invariants(pool);
  // Any-source follows global arrival order: first (src 2) precedes third.
  EXPECT_EQ(q.match(pool, kAnySource, 7), first);
  EXPECT_EQ(q.match(pool, kAnySource, 7), third);
  EXPECT_FALSE(q.match(pool, kAnySource, 7).valid());
  EXPECT_EQ(q.match(pool, kAnySource, 9), other_tag);
  EXPECT_EQ(q.size(), 0u);
  q.check_invariants(pool);
}

// --- Matching semantics through the System -----------------------------------

// Any-source matching must follow GLOBAL arrival order, not sender rank.
// One wildcard receive and two racing rendezvous senders: only the sender
// whose message arrived first gets its completion ack and finishes; the
// other stays stuck in ack-wait. Run both orderings.
TEST(TransportTest, AnySourceMatchesGlobalArrivalOrder) {
  for (const int early_rank : {1, 2}) {
    SystemConfig cfg = wyeast_cfg(3, 42);
    cfg.hang_timeout = seconds(1);
    System sys{cfg};
    const GroupId g = sys.create_group(3);
    std::vector<Action> sink;
    sink.push_back(Recv{kAnySource, 5});
    sys.spawn_member(g, 0, TaskSpec::with_actions("sink", 0, std::move(sink)));
    for (int r = 1; r <= 2; ++r) {
      std::vector<Action> prog;
      if (r != early_rank) prog.push_back(Compute{milliseconds(20)});
      prog.push_back(Send{0, 128 * 1024, 5});  // rendezvous: waits for ack
      sys.spawn_member(
          g, r, TaskSpec::with_actions("s" + std::to_string(r), r, std::move(prog)));
    }
    const RunResult run = sys.try_run();
    EXPECT_FALSE(run.ok()) << "the unmatched sender must be diagnosed stuck";
    EXPECT_GT(run.peak_in_flight_messages, 0);
    const int late_rank = early_rank == 1 ? 2 : 1;
    EXPECT_TRUE(sys.task_stats(TaskId{early_rank}).finished)
        << "earliest arrival must match the wildcard (early rank "
        << early_rank << ")";
    EXPECT_FALSE(sys.task_stats(TaskId{late_rank}).finished)
        << "later arrival must stay unmatched";
    sys.validate();
  }
}

// Posting the irecv before the message arrives and after it arrived must be
// observably equivalent: both complete, deliver the same messages, and
// leave the pool fully drained.
TEST(TransportTest, PostedBeforeAndAfterArrivalAreEquivalent) {
  auto run_variant = [](bool pre_post) {
    SystemConfig cfg = wyeast_cfg(2, 13);
    System sys{cfg};
    auto programs = make_rank_programs(2);
    for (int i = 0; i < 8; ++i) {
      const int tag = 100 + i;
      if (pre_post) {
        programs[0].irecv_any(tag, /*handle=*/0);
        programs[0].compute(milliseconds(30));  // message arrives while posted
      } else {
        programs[0].compute(milliseconds(30));  // message arrives first
        programs[0].irecv_any(tag, /*handle=*/0);
      }
      programs[0].waitall({0});
      programs[1].send(0, 96 * 1024, tag);  // rendezvous-sized
    }
    auto result = run_mpi_job(sys, std::move(programs), block_placement(2, 1),
                              WorkloadProfile::dense_fp());
    sys.validate();
    EXPECT_EQ(result.transport.pool_live, 0)
        << "transport must drain fully (pre_post=" << pre_post << ")";
    EXPECT_EQ(result.transport.ack_routes, 0);
    return result.rank_stats[0].messages_received;
  };
  EXPECT_EQ(run_variant(true), 8);
  EXPECT_EQ(run_variant(false), 8);
}

// --- Pool bounds under flood + out-of-order drain ----------------------------

// The old mailbox only compacted consumed entries from the FRONT, so a
// receiver draining in reverse tag order retained every record until the
// round completed — and the record vector itself grew forever. The bucketed
// queue unlinks mid-queue eagerly and the pool recycles slots, so capacity
// is bounded by one round's flood, not by total traffic.
TEST(TransportTest, FloodThenReverseDrainKeepsPoolBounded) {
  constexpr int kTags = 120;
  constexpr int kRounds = 6;
  SystemConfig cfg = wyeast_cfg(2, 21);
  System sys{cfg};
  const GroupId g = sys.create_group(2);
  std::vector<Action> recv_prog;
  std::vector<Action> send_prog;
  for (int round = 0; round < kRounds; ++round) {
    // Flood: eager messages, distinct tags, all arriving unexpected while
    // the receiver computes...
    for (int tg = 0; tg < kTags; ++tg) send_prog.push_back(Send{0, 1024, tg});
    send_prog.push_back(Compute{milliseconds(60)});  // next-round spacing
    recv_prog.push_back(Compute{milliseconds(50)});
    // ...then drained in REVERSE order: every match hits the queue tail.
    for (int tg = kTags - 1; tg >= 0; --tg) recv_prog.push_back(Recv{1, tg});
  }
  sys.spawn_member(g, 0, TaskSpec::with_actions("recv", 0, std::move(recv_prog)));
  sys.spawn_member(g, 1, TaskSpec::with_actions("send", 1, std::move(send_prog)));
  sys.run();
  sys.validate();

  const TransportStats stats = sys.transport_stats();
  EXPECT_EQ(stats.messages_allocated, kTags * kRounds);
  EXPECT_EQ(stats.pool_live, 0) << "every record must recycle after its copy";
  EXPECT_LE(stats.pool_peak_live, kTags + 4)
      << "peak live records must be bounded by one round's flood";
  EXPECT_LE(stats.pool_capacity, kTags + 4)
      << "slab capacity must stop at the concurrency high-water mark";
  EXPECT_EQ(sys.task_stats(TaskId{0}).messages_received, kTags * kRounds);
  EXPECT_GT(sys.peak_in_flight_messages(), 0);
}

}  // namespace
}  // namespace smilab
