// Fault-injection subsystem tests: deterministic replay, the zero-fault
// bit-identity guarantee, freeze/crash/slow/link-fault semantics, and the
// transport's retransmission state machine.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "smilab/fault/fault_injector.h"
#include "smilab/fault/fault_plan.h"
#include "smilab/mpi/job.h"
#include "smilab/mpi/program.h"
#include "smilab/sim/system.h"
#include "smilab/trace/chrome_trace.h"

namespace smilab {
namespace {

SystemConfig base_config(int nodes = 2) {
  SystemConfig cfg;
  cfg.machine = MachineSpec::poweredge_r410_e5620();
  cfg.node_count = nodes;
  cfg.seed = 42;
  return cfg;
}

/// A small ring-exchange MPI job: every rank depends on both neighbours
/// each iteration, so faults anywhere propagate job-wide.
std::vector<RankProgram> ring_job(int nranks, int iters,
                                  std::int64_t bytes = 4 * 1024) {
  auto programs = make_rank_programs(nranks);
  TagAllocator tags;
  for (int it = 0; it < iters; ++it) {
    const int tag = tags.allocate(1);
    for (auto& prog : programs) {
      const int r = prog.rank();
      prog.compute(microseconds(200));
      prog.sendrecv((r + 1) % nranks, bytes, tag, (r + nranks - 1) % nranks,
                    tag);
    }
  }
  return programs;
}

std::vector<int> one_rank_per_node(int nranks) {
  std::vector<int> placement(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) placement[static_cast<std::size_t>(r)] = r;
  return placement;
}

/// Run the ring job under SMI noise, optionally with a fault injector, and
/// return the full Chrome trace (a complete serialization of every task
/// lifetime and SMM interval — byte equality means identical runs).
std::string traced_run(bool with_injector, const FaultPlan& plan) {
  SystemConfig cfg = base_config(4);
  cfg.smi = SmiConfig::long_every_second();
  System sys{cfg};
  std::optional<FaultInjector> injector;
  if (with_injector) injector.emplace(sys, plan);
  run_mpi_job(sys, ring_job(4, 100), one_rank_per_node(4), WorkloadProfile{});
  return to_chrome_trace(sys);
}

TEST(FaultPlanTest, EmptyPlanReproducesBaselineBitForBit) {
  // The headline guarantee: constructing a FaultInjector with an empty plan
  // perturbs nothing — not the RNG streams, not the NIC service order, not
  // a single event timestamp.
  const std::string baseline = traced_run(/*with_injector=*/false, {});
  const std::string with_empty_plan = traced_run(/*with_injector=*/true, {});
  EXPECT_EQ(baseline, with_empty_plan);
}

TEST(FaultPlanTest, SameSeedAndPlanAreDeterministic) {
  FaultPlan plan;
  plan.freeze(1, SimTime::zero() + milliseconds(40), milliseconds(80))
      .slow(2, SimTime::zero() + milliseconds(10), milliseconds(500), 0.5)
      .drop(0.1)
      .duplicate(0.05);
  const std::string first = traced_run(/*with_injector=*/true, plan);
  const std::string second = traced_run(/*with_injector=*/true, plan);
  EXPECT_EQ(first, second);
  // And the faults actually changed the run versus baseline.
  EXPECT_NE(first, traced_run(/*with_injector=*/false, {}));
}

TEST(FaultInjectorTest, FreezeDelaysComputeByItsDuration) {
  System sys{base_config(1)};
  FaultPlan plan;
  plan.freeze(0, SimTime::zero() + milliseconds(200), milliseconds(300));
  const FaultInjector injector{sys, plan};
  std::vector<Action> prog;
  prog.push_back(Compute{seconds(1)});
  const TaskId id = sys.spawn(TaskSpec::with_actions("t", 0, std::move(prog)));
  sys.run();
  const TaskStats& stats = sys.task_stats(id);
  EXPECT_TRUE(stats.finished);
  // 1 s of work with a 300 ms whole-node stall in the middle, and no SMM
  // refill model: exactly 1.3 s wall, 1.0 s true CPU.
  EXPECT_NEAR((stats.end_time - stats.start_time).seconds(), 1.3, 1e-6);
  EXPECT_NEAR(stats.true_cpu_time.seconds(), 1.0, 1e-6);
  ASSERT_EQ(sys.fault_log().size(), 1u);
  const FaultRecord& rec = sys.fault_log()[0];
  EXPECT_EQ(rec.kind, FaultRecord::Kind::kFreeze);
  EXPECT_NEAR(rec.start.seconds(), 0.2, 1e-9);
  EXPECT_NEAR(rec.end.seconds(), 0.5, 1e-9);
}

TEST(FaultInjectorTest, FreezeComposesWithSmi) {
  // A fault freeze that straddles an SMM interval: whichever mechanism
  // releases the node last resumes it, and the run still completes.
  SystemConfig cfg = base_config(1);
  cfg.smi = SmiConfig::long_every_second();
  cfg.smi.fixed_initial_phase = milliseconds(100);  // SMM roughly [100,205]ms
  System sys{cfg};
  FaultPlan plan;
  plan.freeze(0, SimTime::zero() + milliseconds(150), milliseconds(400));
  const FaultInjector injector{sys, plan};
  std::vector<Action> prog;
  prog.push_back(Compute{seconds(1)});
  const TaskId id = sys.spawn(TaskSpec::with_actions("t", 0, std::move(prog)));
  sys.run();
  const TaskStats& stats = sys.task_stats(id);
  EXPECT_TRUE(stats.finished);
  // At least the freeze tail past the SMM exit is added on top of the work.
  EXPECT_GT((stats.end_time - stats.start_time).seconds(), 1.3);
}

TEST(FaultInjectorTest, DroppedMessagesAreRetransmitted) {
  SystemConfig cfg = base_config(2);
  System sys{cfg};
  FaultPlan plan;
  plan.drop(0.3);
  const FaultInjector injector{sys, plan};
  const auto result = try_run_mpi_job(sys, ring_job(2, 100),
                                      one_rank_per_node(2), WorkloadProfile{});
  ASSERT_TRUE(result.ok()) << result.run.to_string();
  EXPECT_GT(sys.messages_dropped(), 0);
  EXPECT_EQ(sys.retransmissions(), sys.messages_dropped());
  EXPECT_EQ(sys.transport_failures(), 0);
  // Every rank still received every message exactly once.
  for (const TaskStats& s : result.job.rank_stats) {
    EXPECT_TRUE(s.finished);
    EXPECT_EQ(s.messages_received, 100);
  }
}

TEST(FaultInjectorTest, DuplicatesAreSuppressedByTransportDedup) {
  SystemConfig cfg = base_config(2);
  System sys{cfg};
  FaultPlan plan;
  plan.duplicate(1.0);  // every delivery also ships a ghost copy
  const FaultInjector injector{sys, plan};
  const auto result = try_run_mpi_job(sys, ring_job(2, 50),
                                      one_rank_per_node(2), WorkloadProfile{});
  ASSERT_TRUE(result.ok()) << result.run.to_string();
  EXPECT_GT(sys.messages_duplicated(), 0);
  for (const TaskStats& s : result.job.rank_stats) {
    EXPECT_TRUE(s.finished);
    EXPECT_EQ(s.messages_received, 50);  // ghosts never reach MPI matching
  }
}

TEST(FaultInjectorTest, TotalLossExhaustsRetriesAndDiagnoses) {
  SystemConfig cfg = base_config(2);
  cfg.net.max_retries = 3;
  cfg.hang_timeout = seconds(2);
  System sys{cfg};
  FaultPlan plan;
  plan.drop(1.0);
  const FaultInjector injector{sys, plan};
  const GroupId g = sys.create_group(2);
  {
    std::vector<Action> prog;
    prog.push_back(Send{1, 1024, 7});  // eager: the sender itself finishes
    sys.spawn_member(g, 0, TaskSpec::with_actions("tx", 0, std::move(prog)));
  }
  {
    std::vector<Action> prog;
    prog.push_back(Recv{0, 7});
    sys.spawn_member(g, 1, TaskSpec::with_actions("rx", 1, std::move(prog)));
  }
  const RunResult result = sys.try_run();
  EXPECT_FALSE(result.ok());
  // Once the transport gives up the event queue drains completely (the
  // sender already finished), which is provably stuck: deadlock, no cycle.
  EXPECT_EQ(result.status, RunStatus::kDeadlock);
  EXPECT_TRUE(result.diagnosis.cycle.empty());
  EXPECT_GE(sys.transport_failures(), 1);
  EXPECT_EQ(sys.retransmissions(), 3);  // the full retry budget was spent
  ASSERT_EQ(result.diagnosis.ranks.size(), 1u);
  const RankDiagnosis& r = result.diagnosis.ranks[0];
  EXPECT_EQ(r.name, "rx");
  EXPECT_EQ(r.op, BlockedOp::kRecv);
  EXPECT_EQ(r.peer_rank, 0);
  EXPECT_EQ(r.tag, 7);
}

TEST(FaultInjectorTest, CrashKillsNodeAndDiagnosesBlockedPeers) {
  SystemConfig cfg = base_config(2);
  System sys{cfg};
  FaultPlan plan;
  plan.crash(1, SimTime::zero() + milliseconds(100));
  const FaultInjector injector{sys, plan};
  const GroupId g = sys.create_group(2);
  {
    std::vector<Action> prog;
    prog.push_back(Recv{1, 5});  // waits on a rank that will die first
    sys.spawn_member(g, 0, TaskSpec::with_actions("waiter", 0, std::move(prog)));
  }
  TaskId victim;
  {
    std::vector<Action> prog;
    prog.push_back(Compute{seconds(1)});
    prog.push_back(Send{0, 1024, 5});
    victim =
        sys.spawn_member(g, 1, TaskSpec::with_actions("victim", 1, std::move(prog)));
  }
  const RunResult result = sys.try_run();
  EXPECT_FALSE(result.ok());
  const TaskStats& dead = sys.task_stats(victim);
  EXPECT_TRUE(dead.failed);
  EXPECT_FALSE(dead.finished);
  EXPECT_NEAR(dead.end_time.seconds(), 0.1, 1e-9);
  EXPECT_EQ(result.diagnosis.failed_tasks, 1);
  ASSERT_EQ(result.diagnosis.ranks.size(), 1u);
  const RankDiagnosis& r = result.diagnosis.ranks[0];
  EXPECT_EQ(r.name, "waiter");
  EXPECT_EQ(r.op, BlockedOp::kRecv);
  EXPECT_EQ(r.peer_rank, 1);
  EXPECT_TRUE(r.peer_failed);
  ASSERT_EQ(sys.fault_log().size(), 1u);
  EXPECT_EQ(sys.fault_log()[0].kind, FaultRecord::Kind::kCrash);
}

TEST(FaultInjectorTest, SlowNodeStretchesComputeByItsScale) {
  System sys{base_config(1)};
  FaultPlan plan;
  plan.slow(0, SimTime::zero(), seconds(10), 0.5);
  const FaultInjector injector{sys, plan};
  std::vector<Action> prog;
  prog.push_back(Compute{seconds(1)});
  const TaskId id = sys.spawn(TaskSpec::with_actions("t", 0, std::move(prog)));
  sys.run();
  const TaskStats& stats = sys.task_stats(id);
  EXPECT_TRUE(stats.finished);
  EXPECT_NEAR((stats.end_time - stats.start_time).seconds(), 2.0, 1e-3);
}

TEST(FaultInjectorTest, LinkDownStallsDeliveryUntilRestored) {
  SystemConfig cfg = base_config(2);
  System sys{cfg};
  FaultPlan plan;
  plan.link_down(1, SimTime::zero(), milliseconds(500));
  const FaultInjector injector{sys, plan};
  const GroupId g = sys.create_group(2);
  {
    std::vector<Action> prog;
    prog.push_back(Send{1, 1024, 3});
    sys.spawn_member(g, 0, TaskSpec::with_actions("tx", 0, std::move(prog)));
  }
  TaskId rx;
  {
    std::vector<Action> prog;
    prog.push_back(Recv{0, 3});
    rx = sys.spawn_member(g, 1, TaskSpec::with_actions("rx", 1, std::move(prog)));
  }
  sys.run();
  const TaskStats& stats = sys.task_stats(rx);
  EXPECT_TRUE(stats.finished);
  // The payload parked at the dead ingress until t = 0.5 s.
  EXPECT_GT(stats.end_time.seconds(), 0.5);
  EXPECT_LT(stats.end_time.seconds(), 0.6);
}

TEST(FaultInjectorTest, RejectsInvalidPlans) {
  System sys{base_config(2)};
  {
    FaultPlan plan;
    plan.crash(7, SimTime::zero());  // only 2 nodes exist
    EXPECT_THROW(FaultInjector(sys, plan), SimulationError);
  }
  {
    FaultPlan plan;
    plan.freeze(0, SimTime::zero(), milliseconds(100))
        .freeze(0, SimTime::zero() + milliseconds(50), milliseconds(100));
    EXPECT_THROW(FaultInjector(sys, plan), SimulationError);
  }
  {
    FaultPlan plan;
    plan.drop(1.5);
    EXPECT_THROW(FaultInjector(sys, plan), SimulationError);
  }
  {
    FaultPlan plan;
    plan.slow(0, SimTime::zero(), seconds(1), 0.0);
    EXPECT_THROW(FaultInjector(sys, plan), SimulationError);
  }
}

TEST(FaultInjectorTest, ChromeTraceRendersFaultRowsAndKilledTasks) {
  System sys{base_config(2)};
  FaultPlan plan;
  plan.freeze(0, SimTime::zero() + milliseconds(10), milliseconds(20))
      .crash(1, SimTime::zero() + milliseconds(100));
  const FaultInjector injector{sys, plan};
  std::vector<Action> short_prog;
  short_prog.push_back(Compute{milliseconds(50)});
  sys.spawn(TaskSpec::with_actions("ok", 0, std::move(short_prog)));
  std::vector<Action> long_prog;
  long_prog.push_back(Compute{seconds(5)});
  sys.spawn(TaskSpec::with_actions("doomed", 1, std::move(long_prog)));
  const RunResult result = sys.try_run();
  EXPECT_TRUE(result.ok());  // survivors finished; the victim counts as resolved
  const std::string trace = to_chrome_trace(sys);
  EXPECT_NE(trace.find("\"cat\": \"fault\""), std::string::npos);
  EXPECT_NE(trace.find("FREEZE"), std::string::npos);
  EXPECT_NE(trace.find("CRASH"), std::string::npos);
  EXPECT_NE(trace.find("doomed [killed]"), std::string::npos);
  EXPECT_NE(trace.find("task_failed"), std::string::npos);
}

}  // namespace
}  // namespace smilab
